// Ablation benchmarks for the design choices DESIGN.md calls out: SDRAM
// page mode, LTLB capacity, C-Switch port count, and network distance.
// Each reports measured simulated cycles as metrics so the sensitivity of
// the design point is visible in `go test -bench`.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
)

// pageSweepCycles runs a workload that revisits 8 distinct pages (mapped in
// the LPT only) for several rounds, under the given LTLB capacity.
func pageSweepCycles(b *testing.B, ltlbEntries int) int64 {
	cfg := chip.DefaultConfig()
	cfg.Mem.LTLBEntries = ltlbEntries
	s, err := core.NewSim(core.Options{Nodes: 1, Chip: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	for vpn := uint64(0); vpn < 8; vpn++ {
		s.MapLocal(0, vpn, mem.BSReadWrite, false)
	}
	// Each round touches a fresh block of every page so the virtually
	// tagged cache cannot satisfy the access and the LTLB is consulted
	// (a cache hit needs no translation, so re-reading cached words would
	// never expose LTLB capacity).
	src := `
    movi i2, #0
    movi i3, #6             ; rounds
round:
    shl i1, i2, #3          ; block offset = round*8
    movi i4, #0
    movi i8, #8
page:
    ld i5, [i1]
    add i6, i6, i5
    movi i7, #512
    add i1, i1, i7
    add i4, i4, #1
    lt i7, i4, i8
    brt i7, page
    add i2, i2, #1
    lt i7, i2, i3
    brt i7, round
    halt
`
	if err := s.LoadASM(0, 0, 0, src); err != nil {
		b.Fatal(err)
	}
	cycles, err := s.Run(1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return cycles
}

// BenchmarkAblationLTLBSize compares a 64-entry LTLB (every page resident
// after the first round) against a 4-entry one (capacity misses on every
// revisit of the 8-page working set).
func BenchmarkAblationLTLBSize(b *testing.B) {
	var big, small int64
	for i := 0; i < b.N; i++ {
		big = pageSweepCycles(b, 64)
		small = pageSweepCycles(b, 4)
	}
	b.ReportMetric(float64(big), "cycles_ltlb64")
	b.ReportMetric(float64(small), "cycles_ltlb4")
	if small <= big {
		b.Fatalf("LTLB capacity misses had no cost: %d vs %d", small, big)
	}
}

// blockSweepCycles measures a sequential 64-word sweep under an SDRAM
// configuration.
func blockSweepCycles(b *testing.B, sdram mem.SDRAMConfig) int64 {
	cfg := chip.DefaultConfig()
	cfg.Mem.SDRAM = sdram
	s, err := core.NewSim(core.Options{Nodes: 1, Chip: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	s.MapLocal(0, 0, mem.BSReadWrite, true)
	if err := s.LoadASM(0, 0, 0, `
    movi i1, #0
    movi i2, #0
    movi i3, #64
loop:
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #1
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`); err != nil {
		b.Fatal(err)
	}
	cycles, err := s.Run(1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	return cycles
}

// BenchmarkAblationSDRAMPageMode compares the paper's page-mode SDRAM
// (row hits cheaper than row misses) against a flat-latency device: the
// sequential sweep must benefit from the open row.
func BenchmarkAblationSDRAMPageMode(b *testing.B) {
	pageMode := mem.DefaultSDRAMConfig()
	flat := pageMode
	flat.RowHitLat = flat.RowMissLat
	var withPM, without int64
	for i := 0; i < b.N; i++ {
		withPM = blockSweepCycles(b, pageMode)
		without = blockSweepCycles(b, flat)
	}
	b.ReportMetric(float64(withPM), "cycles_page_mode")
	b.ReportMetric(float64(without), "cycles_flat")
	if withPM >= without {
		b.Fatalf("page mode had no benefit: %d vs %d", withPM, without)
	}
}

// cswitchCycles runs four clusters each streaming cross-cluster register
// writes, under a given C-Switch port budget.
func cswitchCycles(b *testing.B, ports int) int64 {
	cfg := chip.DefaultConfig()
	cfg.CSwitchPorts = ports
	s, err := core.NewSim(core.Options{Nodes: 1, Chip: &cfg})
	if err != nil {
		b.Fatal(err)
	}
	for cl := 0; cl < isa.NumClusters; cl++ {
		dst := (cl + 1) % isa.NumClusters
		// Dense transfer traffic: four cross-cluster writes per loop so the
		// aggregate demand (~2.3 transfers/cycle) exceeds one port.
		if err := s.LoadASM(0, 0, cl, fmt.Sprintf(`
    movi i1, #0
    movi i2, #64
loop:
    mov @%[1]d.i5, i1
    mov @%[1]d.i6, i1
    mov @%[1]d.i7, i1
    mov @%[1]d.i8, i1
    add i1, i1, #1
    lt i3, i1, i2
    brt i3, loop
    halt
`, dst)); err != nil {
			b.Fatal(err)
		}
	}
	cycles, err := s.Run(100_000)
	if err != nil {
		b.Fatal(err)
	}
	return cycles
}

// BenchmarkAblationCSwitchPorts compares the paper's 4-transfer-per-cycle
// C-Switch against a single-ported one under all-cluster transfer traffic.
func BenchmarkAblationCSwitchPorts(b *testing.B) {
	var four, one int64
	for i := 0; i < b.N; i++ {
		four = cswitchCycles(b, 4)
		one = cswitchCycles(b, 1)
	}
	b.ReportMetric(float64(four), "cycles_4ports")
	b.ReportMetric(float64(one), "cycles_1port")
	if one <= four {
		b.Fatalf("C-Switch contention had no cost: %d vs %d", one, four)
	}
}

// BenchmarkNetworkSweep reports remote read latency against mesh distance
// (E12).
func BenchmarkNetworkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.NetworkSweepExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.ReadCycles), fmt.Sprintf("read_cycles_%dhops", r.Hops))
			}
		}
	}
}

// BenchmarkGridSmoothScaling reports the distributed smoothing pass's
// cycles at each machine size (E13).
func BenchmarkGridSmoothScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.GridSmoothExperiment()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Cycles), fmt.Sprintf("cycles_%dnodes", r.Nodes))
			}
		}
	}
}
