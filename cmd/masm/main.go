// Command masm assembles MAP assembly and prints the disassembly with
// instruction indices, schedule statistics, and label table — useful for
// inspecting schedule depth (the Figure 5 metric) and DIP values.
//
// Usage:
//
//	masm prog.masm
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/asm"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: masm prog.masm")
		os.Exit(2)
	}
	src, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "masm: %v\n", err)
		os.Exit(1)
	}
	p, err := asm.Assemble(os.Args[1], string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "masm: %v\n", err)
		os.Exit(1)
	}

	rev := map[int][]string{}
	for name, idx := range p.Labels {
		rev[idx] = append(rev[idx], name)
	}
	ops := 0
	for i := range p.Insts {
		for _, l := range rev[i] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("%4d  %s\n", i, p.Insts[i].String())
		ops += p.Insts[i].Width()
	}
	fmt.Printf("\n%d instructions, %d operations (%.2f ops/instruction)\n",
		p.Len(), ops, float64(ops)/float64(p.Len()))

	if len(p.Labels) > 0 {
		fmt.Println("\nlabels (usable as DIPs):")
		names := make([]string, 0, len(p.Labels))
		for n := range p.Labels {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return p.Labels[names[i]] < p.Labels[names[j]] })
		for _, n := range names {
			fmt.Printf("  %-20s %d\n", n, p.Labels[n])
		}
	}
}
