package main

// Flag-validation tests: the -workload exclusivity matrix as a unit test
// over workloadFlagConflict, and the msim binary end-to-end asserting
// the documented exit codes (2 for usage errors, 0 for a valid run).

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestWorkloadFlagConflict(t *testing.T) {
	// Model msim's flag surface on a private FlagSet so the test can
	// choose what was "explicitly set" without touching flag.CommandLine.
	newSet := func(args ...string) *flag.FlagSet {
		fs := flag.NewFlagSet("msim", flag.PanicOnError)
		fs.Int("nodes", 2, "")
		fs.Int("node", 0, "")
		fs.Int("vthread", 0, "")
		fs.Int("cluster", 0, "")
		fs.Int64("cycles", 1_000_000, "")
		fs.Bool("caching", false, "")
		fs.String("save", "", "")
		fs.String("restore", "", "")
		fs.Bool("naive", false, "")
		fs.Int("workers", 0, "")
		fs.Bool("trace", false, "")
		fs.Duration("timeout", 0, "")
		fs.String("crash-dump", "", "")
		fs.String("workload", "", "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-workload", "s.wl"}, ""},
		{[]string{"-workload", "s.wl", "-restore", "m.snap"}, "restore"},
		{[]string{"-workload", "s.wl", "-save", "m.snap"}, "save"},
		{[]string{"-workload", "s.wl", "-nodes", "4"}, "nodes"},
		{[]string{"-workload", "s.wl", "-cycles", "99"}, "cycles"},
		{[]string{"-workload", "s.wl", "-caching"}, "caching"},
		{[]string{"-workload", "s.wl", "-vthread", "1", "-cluster", "2"}, "cluster"}, // Visit walks lexically
		// The engine and supervision flags stay compatible.
		{[]string{"-workload", "s.wl", "-naive", "-workers", "2", "-trace", "-timeout", "1s", "-crash-dump", "d"}, ""},
	} {
		fs := newSet(tc.args...)
		if got := workloadFlagConflict(fs.Visit); got != tc.want {
			t.Errorf("workloadFlagConflict(%v) = %q, want %q", tc.args, got, tc.want)
		}
	}
}

func TestDistFlagConflict(t *testing.T) {
	newSet := func(args ...string) *flag.FlagSet {
		fs := flag.NewFlagSet("msim", flag.PanicOnError)
		fs.Bool("naive", false, "")
		fs.Int("workers", 0, "")
		fs.Int("dist", 0, "")
		fs.Bool("trace", false, "")
		fs.Duration("timeout", 0, "")
		fs.String("crash-dump", "", "")
		fs.String("workload", "", "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-workload", "s.wl", "-dist", "2"}, ""},
		{[]string{"-workload", "s.wl", "-dist", "2", "-trace"}, ""},
		{[]string{"-workload", "s.wl", "-dist", "2", "-naive"}, "naive"},
		{[]string{"-workload", "s.wl", "-dist", "2", "-workers", "4"}, "workers"},
		{[]string{"-workload", "s.wl", "-dist", "2", "-timeout", "1s"}, "timeout"},
		{[]string{"-workload", "s.wl", "-dist", "2", "-crash-dump", "d"}, "crash-dump"},
	} {
		fs := newSet(tc.args...)
		if got := distFlagConflict(fs.Visit); got != tc.want {
			t.Errorf("distFlagConflict(%v) = %q, want %q", tc.args, got, tc.want)
		}
	}
}

func buildMsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "msim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestUsageErrorsExitTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildMsim(t)
	wl := filepath.Join(t.TempDir(), "spin.wl")
	src := "workload \"spin\"\nmesh 1\ngenerate sp spinloop iters=10\nload sp on node 0\nrun 1000\n"
	if err := os.WriteFile(wl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		args    []string
		wantErr string
	}{
		{[]string{"-workload", wl, "-restore", "m.snap"}, "-restore does not combine with -workload"},
		{[]string{"-workload", wl, "-save", "m.snap"}, "-save does not combine with -workload"},
		{[]string{"-workload", wl, "-nodes", "4"}, "-nodes does not combine with -workload"},
		{[]string{"-workload", wl, "prog.masm"}, "positional program argument"},
		{[]string{"-vthread", "9", "prog.masm"}, "-vthread 9 outside"},
		{[]string{"-node", "5", "prog.masm"}, "-node 5 outside"},
	} {
		cmd := exec.Command(bin, tc.args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("msim %v: err %v, want exit 2 (stderr: %s)", tc.args, err, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.wantErr) {
			t.Errorf("msim %v stderr = %q, want substring %q", tc.args, stderr.String(), tc.wantErr)
		}
		if !strings.Contains(stderr.String(), "msim -h") {
			t.Errorf("msim %v stderr lacks the usage hint: %q", tc.args, stderr.String())
		}
	}

	// The compatible combination runs the scenario and exits 0.
	out, err := exec.Command(bin, "-naive", "-timeout", "30s", "-workload", wl).CombinedOutput()
	if err != nil {
		t.Fatalf("msim -naive -timeout 30s -workload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), fmt.Sprintf("workload: %s", "spin")) {
		t.Errorf("workload run output: %s", out)
	}
}
