// Command msim assembles a MAP assembly file and runs it on a simulated
// M-Machine, printing final register state and machine statistics.
//
// Usage:
//
//	msim [-nodes N] [-node I] [-vthread V] [-cluster C] [-cycles MAX]
//	     [-caching] [-trace] [-restore FILE] [-save FILE] prog.masm
//
// The program runs privileged (raw addressing) on the selected H-Thread
// slot; the software runtime (LTLB miss, message, and fault handlers) is
// installed on every node, and node i homes virtual words
// [i*4096, (i+1)*4096).
//
// -restore loads a machine snapshot (written by a previous -save) before
// the program is loaded, so long scenarios can resume instead of
// replaying from cycle 0; -save writes the post-run state. A snapshot
// only restores into a machine with the same mesh and chip
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of nodes (x-axis mesh)")
	node := flag.Int("node", 0, "node to load the program on")
	vthread := flag.Int("vthread", 0, "V-Thread slot (0-3)")
	clusterID := flag.Int("cluster", 0, "cluster (0-3)")
	cycles := flag.Int64("cycles", 1_000_000, "cycle budget")
	caching := flag.Bool("caching", false, "cache remote data in local DRAM")
	showTrace := flag.Bool("trace", false, "print the event trace")
	restorePath := flag.String("restore", "", "restore machine state from this snapshot before running")
	savePath := flag.String("save", "", "write a machine snapshot to this file after the run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msim [flags] prog.masm")
		flag.Usage()
		os.Exit(2)
	}
	// Validate flag ranges up front: out-of-range slots used to reach
	// machine construction and panic or index out of bounds.
	if *nodes < 1 {
		usageErr("-nodes must be at least 1 (got %d)", *nodes)
	}
	if *node < 0 || *node >= *nodes {
		usageErr("-node %d outside the %d-node mesh (valid: 0-%d)", *node, *nodes, *nodes-1)
	}
	if *vthread < 0 || *vthread > 3 {
		usageErr("-vthread %d outside the user V-Thread slots (valid: 0-3)", *vthread)
	}
	if *clusterID < 0 || *clusterID > 3 {
		usageErr("-cluster %d outside the chip's clusters (valid: 0-3)", *clusterID)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	s, err := core.NewSim(core.Options{Nodes: *nodes, Caching: *caching})
	if err != nil {
		fatal(err)
	}
	if *restorePath != "" {
		f, err := os.Open(*restorePath)
		if err != nil {
			fatal(err)
		}
		err = s.Restore(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if err := s.LoadASM(*node, *vthread, *clusterID, string(src)); err != nil {
		fatal(err)
	}
	ran, err := s.Run(*cycles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msim: %v\n", err)
	}

	fmt.Printf("completed in %d cycles\n\ninteger registers (node %d, vthread %d, cluster %d):\n",
		ran, *node, *vthread, *clusterID)
	for i := 0; i < 16; i++ {
		v := s.Reg(*node, *vthread, *clusterID, i)
		if v != 0 {
			fmt.Printf("  i%-2d = %-20d %#x\n", i, int64(v), v)
		}
	}
	st := s.Stats()
	fmt.Printf("\nstats: %d instructions, %d ops, %d messages, %d LTLB faults, %d status faults, %d sync faults\n",
		st.Instructions, st.Operations, st.MsgsInjected, st.LTLBFaults, st.StatusFaults, st.SyncFaults)

	for i := 0; i < *nodes; i++ {
		if out := s.M.Chip(i).Console.String(); out != "" {
			fmt.Printf("\nconsole (node %d):\n%s", i, out)
		}
	}

	if *showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(trace.Timeline(s.Recorder.Events))
	}
	if *savePath != "" {
		if err := saveSnapshot(s, *savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("\nsnapshot written to %s\n", *savePath)
	}
	if err != nil {
		os.Exit(1)
	}
}

// saveSnapshot writes the machine state to path atomically enough for a
// CLI: create, save, close, rename on success.
func saveSnapshot(s *core.Sim, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// usageErr reports a flag validation error on one line and exits 2, the
// conventional usage-error status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "msim: "+format+"\n", args...)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msim: %v\n", err)
	os.Exit(1)
}
