// Command msim runs programs on a simulated M-Machine: either a single
// MAP assembly file loaded on one H-Thread slot, or a declarative
// workload scenario (a .wl file, see docs/wdsl.md) describing a whole
// multi-node, multi-phase experiment.
//
// Usage:
//
//	msim [flags] prog.masm          assemble and run one program
//	msim -workload scenario.wl      compile and run a DSL scenario
//	msim -gen-seed N                replay one generated-fuzzer seed
//
// Flags are grouped:
//
//	run control:  -nodes -node -vthread -cluster -cycles -trace
//	engine:       -naive -workers -caching -dist
//	snapshot:     -save -restore
//	workload:     -workload
//	generator:    -gen-seed -gen-dump
//
// In single-program mode the program runs privileged (raw addressing) on
// the selected H-Thread slot; the software runtime (LTLB miss, message,
// and fault handlers) is installed on every node, and node i homes
// virtual words [i*4096, (i+1)*4096). -restore loads a machine snapshot
// (written by a previous -save) before the program is loaded; -save
// writes the post-run state. A snapshot only restores into a machine
// with the same mesh and chip configuration.
//
// In workload mode the mesh shape, caching mode, cycle budgets, and
// placement all come from the scenario file, so -nodes/-node/-vthread/
// -cluster/-cycles and the snapshot flags do not combine with -workload;
// the engine flags (-naive, -workers), -trace, and the supervision flags
// (-timeout, -crash-dump) do. -dist N (workload mode only) runs the
// scenario on the distributed engine instead: the mesh is partitioned
// across N shard worker processes supervised by a coordinator with
// checkpoint-based recovery — see cmd/mshard for the full-featured
// distributed front end with fault drills and tunable supervision.
//
// -gen-seed N replays seed N of the scenario fuzzer (internal/wgen):
// the seed's generated scenario runs under every engine of the
// determinism matrix, exactly what `mbench -gen` (the `make gen` CI
// leg) did when it printed N as a failing seed. -gen-dump prints the
// generated source instead of running it.
//
// Every run is supervised (internal/guard): panics are contained,
// -timeout (or a scenario's deadline/budget directives) cuts off runaway
// runs between cycles, and -crash-dump names a file that receives a
// regular machine snapshot on any crash or cutoff — load it back with
// -restore to replay the failure. The exit code classifies the outcome:
//
//	0  success
//	1  scenario fault (failed expectation, program fault, bad input file)
//	2  usage error (bad flags or arguments)
//	3  timeout or cycle-budget exhaustion (supervision watchdog fired)
//	4  internal crash (contained panic; a bug in the simulator)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/guard"
	"repro/internal/machine"
	"repro/internal/snap"
	"repro/internal/trace"
	"repro/internal/wgen"
)

// flagGroups drives the grouped -h output: every flag msim defines is
// listed here under the group it belongs to.
var flagGroups = []struct {
	name  string
	flags []string
}{
	{"run control", []string{"nodes", "node", "vthread", "cluster", "cycles", "trace"}},
	{"engine", []string{"naive", "workers", "caching", "dist"}},
	{"snapshot", []string{"save", "restore"}},
	{"supervision", []string{"timeout", "crash-dump"}},
	{"workload", []string{"workload"}},
	{"generator", []string{"gen-seed", "gen-dump"}},
}

func main() {
	// When this binary was launched by a distributed-run coordinator it is
	// a shard worker, not a CLI; MaybeWorker serves the shard and exits.
	dist.MaybeWorker()

	// Run control.
	nodes := flag.Int("nodes", 2, "number of nodes (x-axis mesh)")
	node := flag.Int("node", 0, "node to load the program on")
	vthread := flag.Int("vthread", 0, "V-Thread slot (0-3)")
	clusterID := flag.Int("cluster", 0, "cluster (0-3)")
	cycles := flag.Int64("cycles", 1_000_000, "cycle budget")
	showTrace := flag.Bool("trace", false, "print the event trace")
	// Engine.
	naive := flag.Bool("naive", false, "use the reference per-cycle loop instead of the event engine")
	workers := flag.Int("workers", 0, "parallel chip engine worker count (0 serial, -1 all cores)")
	caching := flag.Bool("caching", false, "cache remote data in local DRAM")
	distShards := flag.Int("dist", 0, "run -workload across this many shard worker processes (0 in-process)")
	// Snapshot.
	restorePath := flag.String("restore", "", "restore machine state from this snapshot before running")
	savePath := flag.String("save", "", "write a machine snapshot to this file after the run")
	// Supervision.
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog; 0 disables (a scenario's deadline directive still applies)")
	crashDump := flag.String("crash-dump", "", "write a machine snapshot here on crash, timeout, or budget exhaustion")
	// Workload.
	workloadPath := flag.String("workload", "", "run a declarative workload scenario (.wl file)")
	// Generator.
	genSeed := flag.Int64("gen-seed", -1, "run the wgen scenario for this seed through the engine determinism matrix (repro for mbench -gen / make gen failures)")
	genDump := flag.Bool("gen-dump", false, "with -gen-seed, print the generated scenario source instead of running it")

	flag.Usage = usage
	flag.Parse()

	if *genSeed >= 0 {
		if flag.NArg() != 0 {
			usageErr("-gen-seed generates its own scenario; the positional program argument does not apply")
		}
		if name := genFlagConflict(flag.Visit); name != "" {
			usageErr("-%s does not combine with -gen-seed (the generated scenario and the verification matrix define it)", name)
		}
		runGenSeed(uint64(*genSeed), *genDump)
		return
	}
	if *genDump {
		usageErr("-gen-dump requires -gen-seed")
	}

	engine := core.Options{NaiveEngine: *naive, Workers: *workers, Timeout: *timeout, CrashDump: *crashDump}
	if *workloadPath != "" {
		if flag.NArg() != 0 {
			usageErr("-workload runs a scenario file; the positional program argument does not apply")
		}
		if name := workloadFlagConflict(flag.Visit); name != "" {
			usageErr("-%s does not combine with -workload (the scenario file defines it)", name)
		}
		if *distShards > 0 {
			if name := distFlagConflict(flag.Visit); name != "" {
				usageErr("-%s does not combine with -dist (the coordinator owns the engine and supervision)", name)
			}
			runWorkloadDist(*workloadPath, *distShards, *showTrace)
			return
		}
		runWorkload(*workloadPath, engine, *showTrace)
		return
	}
	if *distShards > 0 {
		usageErr("-dist requires -workload (single programs run in-process)")
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msim [flags] prog.masm | msim -workload scenario.wl")
		flag.Usage()
		os.Exit(2)
	}
	// Validate flag ranges up front: out-of-range slots used to reach
	// machine construction and panic or index out of bounds.
	if *nodes < 1 {
		usageErr("-nodes must be at least 1 (got %d)", *nodes)
	}
	if *node < 0 || *node >= *nodes {
		usageErr("-node %d outside the %d-node mesh (valid: 0-%d)", *node, *nodes, *nodes-1)
	}
	if *vthread < 0 || *vthread > 3 {
		usageErr("-vthread %d outside the user V-Thread slots (valid: 0-3)", *vthread)
	}
	if *clusterID < 0 || *clusterID > 3 {
		usageErr("-cluster %d outside the chip's clusters (valid: 0-3)", *clusterID)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	o := engine
	o.Nodes = *nodes
	o.Caching = *caching
	s, err := core.NewSim(o)
	if err != nil {
		fatal(err)
	}
	defer s.M.Close()
	if *restorePath != "" {
		f, rerr := os.Open(*restorePath)
		if rerr != nil {
			fatal(rerr)
		}
		rerr = s.Restore(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	}
	if err := s.LoadASM(*node, *vthread, *clusterID, string(src)); err != nil {
		fatal(err)
	}
	ran, err := s.RunSupervised(*cycles, guard.Options{Timeout: *timeout, DumpPath: *crashDump})
	if err != nil {
		reportFailure(err)
		if guard.IsHang(err) {
			// A wedged run goroutine still owns the machine; don't touch it
			// further (no register dump, no -save), just classify and leave.
			os.Exit(3)
		}
		os.Exit(exitCode(err))
	}

	fmt.Printf("completed in %d cycles\n\ninteger registers (node %d, vthread %d, cluster %d):\n",
		ran, *node, *vthread, *clusterID)
	for i := 0; i < 16; i++ {
		v := s.Reg(*node, *vthread, *clusterID, i)
		if v != 0 {
			fmt.Printf("  i%-2d = %-20d %#x\n", i, int64(v), v)
		}
	}
	printStats(s)

	for i := 0; i < *nodes; i++ {
		if out := s.M.Chip(i).Console.String(); out != "" {
			fmt.Printf("\nconsole (node %d):\n%s", i, out)
		}
	}

	if *showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(trace.Timeline(s.Recorder.Events))
	}
	if *savePath != "" {
		if err := saveSnapshot(s, *savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("\nsnapshot written to %s\n", *savePath)
	}
}

// runWorkload compiles and runs a .wl scenario, printing the per-phase
// cycle counts, the verified expectations, and machine statistics.
func runWorkload(path string, engine core.Options, showTrace bool) {
	sc, err := core.ScenarioFromFile(path)
	if err != nil {
		// Compile errors are positional wdsl errors ("file:line:col: msg");
		// print them verbatim, they already point at the offending token.
		fatal(err)
	}
	res, s, err := sc.RunSim(engine)
	if err != nil {
		reportFailure(err)
		os.Exit(exitCode(err))
	}
	fmt.Printf("workload: %s\n", sc.Title())
	fmt.Printf("mesh:     %dx%dx%d", sc.Plan.Dims[0], sc.Plan.Dims[1], sc.Plan.Dims[2])
	if sc.Plan.Caching {
		fmt.Print(", caching on")
	}
	fmt.Println()
	fmt.Println()
	for _, ph := range res.Phases {
		fmt.Printf("  phase %-12s %10d cycles\n", ph.Name, ph.Cycles)
	}
	fmt.Printf("  %-18s %10d cycles\n", "total", res.TotalCycles)
	fmt.Printf("\n%d expectation(s) verified\n", res.Checks)
	printStats(s)
	for i := 0; i < s.M.NumNodes(); i++ {
		if out := s.M.Chip(i).Console.String(); out != "" {
			fmt.Printf("\nconsole (node %d):\n%s", i, out)
		}
	}
	if showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(trace.Timeline(s.Recorder.Events))
	}
}

// runWorkloadDist runs a .wl scenario on the distributed engine: this
// binary re-executed as shard worker processes, a coordinator
// partitioning the mesh across them. Output matches runWorkload plus
// the supervision summary; the digest line lets a user compare runs
// (drilled vs. undisturbed, different shard counts) directly.
func runWorkloadDist(path string, shards int, showTrace bool) {
	sc, err := core.ScenarioFromFile(path)
	if err != nil {
		fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	res, s, err := dist.RunScenario(sc, core.Options{}, dist.Config{
		Shards:   shards,
		Launcher: &dist.ProcLauncher{Exe: exe},
	})
	if err != nil {
		reportFailure(err)
		os.Exit(exitCode(err))
	}
	fmt.Printf("workload: %s\n", sc.Title())
	fmt.Printf("mesh:     %dx%dx%d, %d shard worker(s)\n\n",
		sc.Plan.Dims[0], sc.Plan.Dims[1], sc.Plan.Dims[2], res.Shards)
	for _, ph := range res.Phases {
		fmt.Printf("  phase %-12s %10d cycles\n", ph.Name, ph.Cycles)
	}
	fmt.Printf("  %-18s %10d cycles\n", "total", res.TotalCycles)
	fmt.Printf("\n%d expectation(s) verified\n", res.Checks)
	printStats(s)
	fmt.Printf("digest: %s\n", res.Digest)
	if res.Recoveries > 0 {
		fmt.Printf("supervision: %d recover(ies) from %d failure(s)\n", res.Recoveries, len(res.Failures))
	}
	if showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(trace.Timeline(s.Recorder.Events))
	}
}

// runGenSeed reproduces one seed of the generated-scenario determinism
// fuzzer: with dump, print the seed's scenario source (pipe it to a file
// and run it with -workload to poke at it manually); otherwise run the
// full engine matrix, exactly what `mbench -gen` ran when it printed
// this seed as failing.
func runGenSeed(seed uint64, dump bool) {
	name, src := wgen.Source(seed)
	if dump {
		fmt.Print(src)
		return
	}
	if err := wgen.Verify(seed); err != nil {
		fmt.Fprintf(os.Stderr, "msim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("seed %d (%s.wl): determinism matrix verified\n", seed, name)
}

// printStats renders the machine statistics line shared by both modes.
func printStats(s *core.Sim) {
	st := s.Stats()
	fmt.Printf("\nstats: %d instructions, %d ops, %d messages, %d LTLB faults, %d status faults, %d sync faults\n",
		st.Instructions, st.Operations, st.MsgsInjected, st.LTLBFaults, st.StatusFaults, st.SyncFaults)
}

// usage prints the grouped flag reference.
func usage() {
	w := flag.CommandLine.Output()
	fmt.Fprintf(w, "usage: msim [flags] prog.masm\n")
	fmt.Fprintf(w, "       msim [engine flags] [-trace] -workload scenario.wl\n")
	fmt.Fprintf(w, "       msim -gen-seed N [-gen-dump]\n")
	for _, g := range flagGroups {
		fmt.Fprintf(w, "\n%s:\n", g.name)
		for _, name := range g.flags {
			f := flag.Lookup(name)
			if f == nil {
				continue
			}
			def := ""
			if f.DefValue != "" && f.DefValue != "false" {
				def = fmt.Sprintf(" (default %s)", f.DefValue)
			}
			fmt.Fprintf(w, "  -%-10s %s%s\n", f.Name, f.Usage, def)
		}
	}
	fmt.Fprintf(w, "\nSee docs/wdsl.md for the workload scenario language.\n")
}

// saveSnapshot writes the machine state to path with the shared atomic
// temp-file-and-rename discipline (snap.WriteFileAtomic), so an
// interrupted save never leaves a torn snapshot at path.
func saveSnapshot(s *core.Sim, path string) error {
	return snap.WriteFileAtomic(path, s.Save)
}

// reportFailure prints a run failure the way a user should see it: the
// one-line classification, the supervisor's livelock/deadlock diagnostic
// when there is one, and where the crash dump went — never a raw Go
// stack trace (those stay in *guard.CrashError.Stack for bug reports).
func reportFailure(err error) {
	fmt.Fprintf(os.Stderr, "msim: %v\n", err)
	var diag, dump string
	var ce *guard.CrashError
	var se *guard.StallError
	switch {
	case errors.As(err, &ce):
		diag, dump = ce.Diagnostic, ce.DumpPath
	case errors.As(err, &se):
		diag, dump = se.Diagnostic, se.DumpPath
	}
	if diag != "" {
		fmt.Fprintf(os.Stderr, "\nmachine state at cutoff:\n%s\n", diag)
	}
	if dump != "" {
		fmt.Fprintf(os.Stderr, "\ncrash dump written to %s (replay with msim -restore %s)\n", dump, dump)
	}
}

// exitCode classifies a run error per the documented table: 3 for
// watchdog cutoffs (wall clock, cycle budget, hang, or the plain -cycles
// bound expiring), 4 for a contained internal panic, 1 for everything
// else (failed expectations, program faults).
func exitCode(err error) int {
	var ce *guard.CrashError
	if errors.As(err, &ce) {
		return 4
	}
	var se *guard.StallError
	if errors.As(err, &se) || errors.Is(err, machine.ErrCycleLimit) {
		return 3
	}
	return 1
}

// workloadFlagConflict scans the explicitly-set flags (via a
// flag.Visit-shaped walker, so tests can drive it with their own
// FlagSet) and returns the name of the first one -workload does not
// combine with, or "" when the set is compatible. The scenario file owns
// the mesh, placement, caching mode, cycle budgets, and machine state,
// so any of those set on the command line would be silently overridden —
// reject them rather than drop the user's request on the floor.
func workloadFlagConflict(visit func(func(*flag.Flag))) string {
	incompatible := map[string]bool{
		"nodes": true, "node": true, "vthread": true, "cluster": true,
		"cycles": true, "caching": true, "save": true, "restore": true,
	}
	conflict := ""
	visit(func(f *flag.Flag) {
		if conflict == "" && incompatible[f.Name] {
			conflict = f.Name
		}
	})
	return conflict
}

// distFlagConflict returns the first explicitly-set flag that -dist does
// not combine with. The distributed coordinator owns the engine choice
// (workers never step the hub machine; determinism requires its fixed
// exchange schedule) and the supervision story (heartbeats, window
// deadlines, and checkpoint recovery replace the in-process guard).
func distFlagConflict(visit func(func(*flag.Flag))) string {
	incompatible := map[string]bool{
		"naive": true, "workers": true, "timeout": true, "crash-dump": true,
	}
	conflict := ""
	visit(func(f *flag.Flag) {
		if conflict == "" && incompatible[f.Name] {
			conflict = f.Name
		}
	})
	return conflict
}

// genFlagConflict returns the first explicitly-set flag that -gen-seed
// does not combine with. The generated scenario owns the mesh and
// placement, and the verification matrix owns the engines and
// supervision, so only -gen-dump rides along.
func genFlagConflict(visit func(func(*flag.Flag))) string {
	compatible := map[string]bool{"gen-seed": true, "gen-dump": true}
	conflict := ""
	visit(func(f *flag.Flag) {
		if conflict == "" && !compatible[f.Name] {
			conflict = f.Name
		}
	})
	return conflict
}

// usageErr reports a flag validation error on one line and exits 2, the
// conventional usage-error status.
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "msim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run 'msim -h' for the full flag reference")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msim: %v\n", err)
	os.Exit(1)
}
