// Command msim assembles a MAP assembly file and runs it on a simulated
// M-Machine, printing final register state and machine statistics.
//
// Usage:
//
//	msim [-nodes N] [-node I] [-vthread V] [-cluster C] [-cycles MAX]
//	     [-caching] [-trace] prog.masm
//
// The program runs privileged (raw addressing) on the selected H-Thread
// slot; the software runtime (LTLB miss, message, and fault handlers) is
// installed on every node, and node i homes virtual words
// [i*4096, (i+1)*4096).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of nodes (x-axis mesh)")
	node := flag.Int("node", 0, "node to load the program on")
	vthread := flag.Int("vthread", 0, "V-Thread slot (0-3)")
	clusterID := flag.Int("cluster", 0, "cluster (0-3)")
	cycles := flag.Int64("cycles", 1_000_000, "cycle budget")
	caching := flag.Bool("caching", false, "cache remote data in local DRAM")
	showTrace := flag.Bool("trace", false, "print the event trace")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: msim [flags] prog.masm")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	s, err := core.NewSim(core.Options{Nodes: *nodes, Caching: *caching})
	if err != nil {
		fatal(err)
	}
	if err := s.LoadASM(*node, *vthread, *clusterID, string(src)); err != nil {
		fatal(err)
	}
	ran, err := s.Run(*cycles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msim: %v\n", err)
	}

	fmt.Printf("completed in %d cycles\n\ninteger registers (node %d, vthread %d, cluster %d):\n",
		ran, *node, *vthread, *clusterID)
	for i := 0; i < 16; i++ {
		v := s.Reg(*node, *vthread, *clusterID, i)
		if v != 0 {
			fmt.Printf("  i%-2d = %-20d %#x\n", i, int64(v), v)
		}
	}
	st := s.Stats()
	fmt.Printf("\nstats: %d instructions, %d ops, %d messages, %d LTLB faults, %d status faults, %d sync faults\n",
		st.Instructions, st.Operations, st.MsgsInjected, st.LTLBFaults, st.StatusFaults, st.SyncFaults)

	for i := 0; i < *nodes; i++ {
		if out := s.M.Chip(i).Console.String(); out != "" {
			fmt.Printf("\nconsole (node %d):\n%s", i, out)
		}
	}

	if *showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(trace.Timeline(s.Recorder.Events))
	}
	if err != nil {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msim: %v\n", err)
	os.Exit(1)
}
