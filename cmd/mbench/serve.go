package main

// The -serve soak: the msimd chaos recovery proof (ISSUE 7 acceptance).
// It stands up two in-process serve.Servers over the same scenario
// corpus — a chaos-free control and a chaotic twin with injected worker
// panics and wall-clock stalls — floods the chaotic one with concurrent
// sessions, and asserts the service's robustness contracts:
//
//  1. every transient-failure session completes after retry with a
//     final-state digest bit-identical to the control run's;
//  2. chaos never leaks across sessions: untouched sessions match their
//     controls too (trivially covered by 1, since every digest must
//     match, crashed or not);
//  3. load shedding is bounded: a full admission queue answers busy
//     instead of accepting unboundedly (exercised with a throttled pool);
//  4. drain suspends in-flight sessions with spooled checkpoints, and a
//     second server over the same spool re-adopts and finishes them —
//     digests again bit-identical to the control.
//
// Everything is seeded and slice sizes match across servers, so a soak
// failure reproduces exactly. This leg is not part of the -json metric
// record: its wall time is host-dependent by construction (injected
// stalls sleep real time).

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/serve"
)

// serveScenario generates the i-th soak scenario: distinct spinloop
// lengths so every session has its own expected digest.
func serveScenario(i int) (name, src string) {
	iters := 200 + 40*i
	return fmt.Sprintf("soak%03d.wl", i),
		fmt.Sprintf("workload \"soak%03d\"\nmesh 1\ngenerate sp spinloop iters=%d\nload sp on node 0\nrun 1000000\nexpect reg node=0 cluster=0 reg=1 value=%d\n",
			i, iters, iters)
}

// serveSoakSessions is the soak's session count ("hundreds of concurrent
// sessions": they are all admitted up front and drained by the pool).
const serveSoakSessions = 200

func serveConfig(spool string) serve.Config {
	return serve.Config{
		Spool:           spool,
		Workers:         8,
		Queue:           serveSoakSessions + 8,
		DefaultWall:     20 * time.Second,
		DefaultCycles:   1 << 22,
		CheckpointEvery: 512,
		Retries:         3,
		Backoff:         time.Millisecond,
		BackoffCap:      20 * time.Millisecond,
		Grace:           5 * time.Second,
	}
}

// runServeSoak executes the soak, printing one line per leg to w; any
// violated contract aborts with a descriptive error.
func runServeSoak(w io.Writer) error {
	dir, err := os.MkdirTemp("", "mbench-serve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	spool := func(leg string) string { return dir + "/" + leg }

	// Control: every scenario uninterrupted. The digests recorded here
	// are the ground truth every chaotic execution must reproduce.
	control, err := serve.New(serveConfig(spool("control")))
	if err != nil {
		return err
	}
	want := make(map[string]string) // scenario name -> digest
	var controlSessions []*serve.Session
	for i := 0; i < serveSoakSessions; i++ {
		name, src := serveScenario(i)
		s, serr := control.Submit(name, src)
		if serr != nil {
			return fmt.Errorf("control: submit %s: %v", name, serr)
		}
		controlSessions = append(controlSessions, s)
	}
	for _, s := range controlSessions {
		<-s.Done()
		info := s.Info()
		if info.State != serve.StateDone {
			return fmt.Errorf("control: %s: %s (%s: %s)", info.Name, info.State, info.FailureClass, info.Failure)
		}
		want[info.Name] = info.Digest
	}
	control.Drain()
	fmt.Fprintf(w, "serve control: %d sessions done\n", len(want))

	// Chaos: injected panics on every 3rd admission and stalls past the
	// (shortened) deadline on every 7th; seq divisible by both panics.
	cfg := serveConfig(spool("chaos"))
	cfg.DefaultWall = 2 * time.Second // stalls must overrun it quickly
	cfg.Chaos = &serve.Chaos{Seed: 1234, PanicEvery: 3, StallEvery: 7,
		StallDelay: 3 * time.Second, MaxCycle: 600}
	chaotic, err := serve.New(cfg)
	if err != nil {
		return err
	}
	var sessions []*serve.Session
	for i := 0; i < serveSoakSessions; i++ {
		name, src := serveScenario(i)
		s, serr := chaotic.Submit(name, src)
		if serr != nil {
			return fmt.Errorf("chaos: submit %s: %v", name, serr)
		}
		sessions = append(sessions, s)
	}
	recovered, clean := 0, 0
	byClass := make(map[string]int)
	for _, s := range sessions {
		<-s.Done()
		info := s.Info()
		if info.State != serve.StateDone {
			return fmt.Errorf("chaos: %s did not recover: %s (%s: %s)",
				info.Name, info.State, info.FailureClass, info.Failure)
		}
		if info.Digest != want[info.Name] {
			return fmt.Errorf("chaos: %s: recovered digest %s != control %s — recovery is not bit-identical",
				info.Name, info.Digest, want[info.Name])
		}
		if info.Retries > 0 {
			recovered++
			byClass[info.FailureClass]++
		} else {
			clean++
		}
	}
	chaotic.Drain()
	if recovered == 0 {
		return fmt.Errorf("chaos: no session was ever faulted; the soak proved nothing")
	}
	if byClass[serve.FailCrash] == 0 {
		return fmt.Errorf("chaos: no session recovered from a worker panic")
	}
	if byClass[serve.FailStallTimeout]+byClass[serve.FailStallHang] == 0 {
		return fmt.Errorf("chaos: no session recovered from a stall")
	}
	st := chaotic.Stats()
	fmt.Fprintf(w, "serve chaos: %d sessions done, %d recovered (%d crash, %d stall; %d retries), %d untouched — all digests match control\n",
		len(sessions), recovered, byClass[serve.FailCrash],
		byClass[serve.FailStallTimeout]+byClass[serve.FailStallHang], st.Retries, clean)

	// Load shedding: a throttled server (1 worker, tiny queue) must answer
	// busy rather than queue unboundedly.
	shedCfg := serveConfig(spool("shed"))
	shedCfg.Workers = 1
	shedCfg.Queue = 2
	shed, err := serve.New(shedCfg)
	if err != nil {
		return err
	}
	shedded := false
	for i := 0; i < 32 && !shedded; i++ {
		name, src := serveScenario(i)
		_, serr := shed.Submit(name, src)
		if rej, ok := serr.(*serve.Rejection); ok && rej.Code == "busy" {
			shedded = true
		} else if serr != nil {
			return fmt.Errorf("shed: submit: %v", serr)
		}
	}
	shed.Drain()
	if !shedded {
		return fmt.Errorf("shed: 32 submissions into a 2-deep single-worker queue never shed load")
	}
	fmt.Fprintf(w, "serve shed: full queue answers busy (shed=%d)\n", shed.Stats().Shed)

	// Drain + re-adopt: start long sessions, drain mid-flight, boot a new
	// server over the same spool, and require bit-identical completions.
	longSrc := func(i int) (string, string) {
		iters := 150000 + 10000*i
		return fmt.Sprintf("long%d.wl", i),
			fmt.Sprintf("workload \"long%d\"\nmesh 1\ngenerate sp spinloop iters=%d\nload sp on node 0\nrun 10000000\nexpect reg node=0 cluster=0 reg=1 value=%d\n",
				i, iters, iters)
	}
	const longN = 4
	ctrl2, err := serve.New(serveConfig(spool("drain-control")))
	if err != nil {
		return err
	}
	wantLong := make(map[string]string)
	var ctrl2Sessions []*serve.Session
	for i := 0; i < longN; i++ {
		name, src := longSrc(i)
		s, serr := ctrl2.Submit(name, src)
		if serr != nil {
			return serr
		}
		ctrl2Sessions = append(ctrl2Sessions, s)
	}
	for _, s := range ctrl2Sessions {
		<-s.Done()
		info := s.Info()
		if info.State != serve.StateDone {
			return fmt.Errorf("drain control: %s: %s (%s)", info.Name, info.State, info.Failure)
		}
		wantLong[info.Name] = info.Digest
	}
	ctrl2.Drain()

	drainCfg := serveConfig(spool("drain"))
	drainCfg.Workers = 2
	sv1, err := serve.New(drainCfg)
	if err != nil {
		return err
	}
	for i := 0; i < longN; i++ {
		name, src := longSrc(i)
		if _, err := sv1.Submit(name, src); err != nil {
			return err
		}
	}
	time.Sleep(50 * time.Millisecond) // let the pool get mid-run
	sv1.Drain()
	suspended := 0
	for _, s := range sv1.List() {
		if s.Info().State == serve.StateSuspended {
			suspended++
		}
	}
	sv2, err := serve.New(drainCfg)
	if err != nil {
		return err
	}
	adopted := sv2.Stats().Adopted
	for _, s := range sv2.List() {
		<-s.Done()
		info := s.Info()
		if info.State != serve.StateDone {
			return fmt.Errorf("re-adopt: %s: %s (%s: %s)", info.Name, info.State, info.FailureClass, info.Failure)
		}
		if info.Digest != wantLong[info.Name] {
			return fmt.Errorf("re-adopt: %s: resumed digest %s != control %s",
				info.Name, info.Digest, wantLong[info.Name])
		}
	}
	sv2.Drain()
	fmt.Fprintf(w, "serve drain: %d suspended, %d re-adopted, resumed digests match control\n",
		suspended, adopted)
	return nil
}
