package main

// Drift guard for the workload-scenario corpus: every file checked in
// under testdata/workloads/ must be picked up by the default -wl glob
// (and therefore run by `make wl`, the BENCH trajectory, and the
// glob-driven core.TestScenarioFiles). A scenario that falls out of the
// pickup — a typo'd extension, a glob edit, a moved directory — stops
// being tested without any test knowing its name; this test knows the
// directory instead.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const workloadDir = "../../testdata/workloads"

func TestScenarioPickup(t *testing.T) {
	entries, err := os.ReadDir(workloadDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			t.Errorf("unexpected directory %s under %s", e.Name(), workloadDir)
			continue
		}
		// Anything that is not a .wl file silently escapes both the
		// glob here and the core test suite's pickup.
		if !strings.HasSuffix(e.Name(), ".wl") {
			t.Errorf("%s/%s is not a .wl file: it will never be run by any test or bench leg", workloadDir, e.Name())
			continue
		}
		files = append(files, e.Name())
	}
	if len(files) < 9 {
		t.Fatalf("expected at least 9 checked-in scenarios, found %d", len(files))
	}

	exps, err := scenarioExperiments(filepath.Join("../..", defaultWLGlob))
	if err != nil {
		t.Fatal(err)
	}
	picked := make(map[string]bool, len(exps))
	for _, e := range exps {
		picked[e.name] = true
	}
	for _, f := range files {
		if want := "wl-" + strings.TrimSuffix(f, ".wl"); !picked[want] {
			t.Errorf("scenario %s is not picked up as experiment %s by the default -wl glob", f, want)
		}
	}
	if len(exps) != len(files) {
		t.Errorf("pickup count %d != scenario file count %d", len(exps), len(files))
	}

	// The DSL v2 anchors must stay in the corpus by name: sweepexchange
	// is the sweep bit-identity fixture (core.TestSweepMatchesStandalone)
	// and gpwalk the user-mode grant fixture (core.TestGrantProtection).
	for _, name := range []string{"wl-sweepexchange", "wl-gpwalk"} {
		if !picked[name] {
			t.Errorf("anchor scenario %s missing from the pickup", name)
		}
	}
}
