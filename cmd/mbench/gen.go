package main

// The generated-scenario determinism matrix (-gen N): seeds 0..N-1 of
// the internal/wgen fuzzer, each compiled and run under every engine
// with bit-identical results required. This is the `make gen` CI leg;
// a failing seed prints an `msim -gen-seed` line that replays exactly
// the failing matrix.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/wgen"
)

// runGenMatrix verifies seeds 0..n-1, fanned out across the host's
// cores (each seed's matrix owns its machines; nothing is shared).
// ForEachMachine reports the lowest failing seed, the same one a
// serial sweep would have hit first, so the printed repro is stable
// run to run.
func runGenMatrix(w io.Writer, n int) error {
	fmt.Fprintf(w, "generated-scenario determinism matrix: %d seeds x %d engines (+ dist subsample)\n",
		n, wgen.Modes())
	var sweeps, multiNode int
	for seed := 0; seed < n; seed++ {
		_, src := wgen.Source(uint64(seed))
		if strings.Contains(src, "sweep P") {
			sweeps++
		}
		if !strings.Contains(src, "mesh 1 1 1") {
			multiNode++
		}
	}
	if err := core.ForEachMachine(n, func(i int) error {
		return wgen.Verify(uint64(i))
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "all %d scenarios bit-identical across engines (%d sweeps, %d multi-node)\n",
		n, sweeps, multiNode)
	return nil
}
