// Command mbench regenerates every quantitative result of the M-Machine
// paper on the simulator: Table 1 (access latencies), Figure 9 (remote
// access timelines), the Figure 5 stencil schedules, the Figure 6 loop
// synchronization protocol, the Section 1/5 area model, the mechanism
// experiments (V-Thread latency tolerance, SEND throttling, GTLB
// interleaving, guarded pointers, synchronization bits, block caching),
// and the scaling extensions (network sweep, grid smoothing, large-mesh
// scaling under the parallel engine).
//
// Independent experiments fan out across runtime.GOMAXPROCS worker
// goroutines (most experiments additionally run their own machines
// concurrently); output is always printed in table order. -json runs the
// experiments serially so each recorded wall time is that experiment's
// own cost.
//
// Checked-in declarative workload scenarios (testdata/workloads/*.wl,
// see docs/wdsl.md) are picked up as additional experiments named
// wl-<file>; their per-phase simulated cycle counts are metrics like any
// other, so the scenarios join the BENCH_<n>.json determinism
// trajectory. -wl overrides the glob ("" disables the pickup).
//
// Usage:
//
//	mbench                # run everything
//	mbench -exp table1    # one experiment by name
//	mbench -json          # machine-readable results: per-experiment
//	                      # metrics (cycles etc.) plus host ns wall time
//	mbench -faults        # deterministic fault-injection soak (faults.go):
//	                      # injected panics/stalls/corrupt snapshots must
//	                      # all be contained by the supervision layer
//	mbench -gen 200       # generated-scenario determinism matrix (gen.go):
//	                      # wgen seeds 0..199, every engine, bit-identical
//	                      # results; failures print an msim -gen-seed repro
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/area"
	"repro/internal/core"
	"repro/internal/dist"
)

// Metric is one machine-readable quantity of an experiment's result.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

type experiment struct {
	name  string
	title string
	run   func() (string, []Metric, error)
}

// Result is one experiment's outcome in -json mode.
type Result struct {
	Name    string   `json:"name"`
	Title   string   `json:"title"`
	WallNs  int64    `json:"wall_ns"`
	Metrics []Metric `json:"metrics,omitempty"`

	out string // formatted table for text mode
}

// report is the top-level -json document.
type report struct {
	Schema     string   `json:"schema"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

func cyc(name string, v int64) Metric { return Metric{Name: name, Value: float64(v), Unit: "cycles"} }

// defaultWLGlob is the -wl default: every checked-in workload scenario.
// Named so the drift-guard test (main_test.go) can pin the pickup set
// against the directory contents.
const defaultWLGlob = "testdata/workloads/*.wl"

var experiments = []experiment{
	{"table1", "E1. Table 1: local and remote access times", func() (string, []Metric, error) {
		rows, err := core.Table1()
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rows {
			base := strings.ReplaceAll(strings.ToLower(r.Class.String()), " ", "_")
			ms = append(ms, cyc(base+"_read", r.Read), cyc(base+"_write", r.Write))
		}
		return core.FormatTable1(rows), ms, nil
	}},
	{"fig9", "E2. Figure 9: remote read and write timelines", func() (string, []Metric, error) {
		r, w, err := core.Figure9()
		if err != nil {
			return "", nil, err
		}
		return r.Format() + "\n" + w.Format(),
			[]Metric{cyc("remote_read", r.Total), cyc("remote_write", w.Total)}, nil
	}},
	{"stencil", "E3. Figure 5 / Section 3.1: stencil schedule depths", func() (string, []Metric, error) {
		rs, err := core.StencilExperiment()
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rs {
			base := fmt.Sprintf("%s_x%d", strings.Fields(r.Name)[0], r.HThreads)
			ms = append(ms,
				Metric{Name: base + "_depth", Value: float64(r.Depth), Unit: "insts"},
				cyc(base, r.Cycles))
		}
		return core.FormatStencil(rs), ms, nil
	}},
	{"loopsync", "E4. Figure 6: H-Thread loop synchronization via global CCs", func() (string, []Metric, error) {
		rs, err := core.LoopSyncExperiment(100)
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rs {
			ms = append(ms, Metric{
				Name:  fmt.Sprintf("overhead_per_iter_x%d", r.HThreads),
				Value: r.PerIter - r.BaselinePerIter, Unit: "cycles/iter",
			})
		}
		return core.FormatLoopSync(rs), ms, nil
	}},
	{"area", "E5. Sections 1/5: area and peak-performance model", func() (string, []Metric, error) {
		in := area.PaperInputs()
		r := area.Evaluate(in)
		return area.Format(in, r), []Metric{
			{Name: "perf_per_area_gain", Value: r.PerfPerAreaGain},
			{Name: "area_ratio", Value: r.AreaRatio},
		}, nil
	}},
	{"vthreads", "E6. Section 3.2: V-Thread latency tolerance", func() (string, []Metric, error) {
		rs, err := core.VThreadExperiment(200)
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rs {
			ms = append(ms, Metric{
				Name:  fmt.Sprintf("loads_per_kcycle_x%d", r.VThreads),
				Value: math.Round(r.LoadsPerKCycle*10) / 10,
			})
		}
		return core.FormatVThreads(rs), ms, nil
	}},
	{"throttle", "E7. Section 4.1: return-to-sender throttling", func() (string, []Metric, error) {
		r, err := core.ThrottleExperiment(24, 2)
		if err != nil {
			return "", nil, err
		}
		return r.Format(), []Metric{
			{Name: "send_stalls", Value: float64(r.SendsBlocked)},
			{Name: "messages_returned", Value: float64(r.Returned)},
			cyc("flood", r.Cycles),
		}, nil
	}},
	{"gtlb", "E8. Figure 8: GTLB block/cyclic interleaving", func() (string, []Metric, error) {
		return core.FormatGTLB(core.GTLBExperiment()), nil, nil
	}},
	{"gp", "E9. Section 2: guarded-pointer overhead", func() (string, []Metric, error) {
		r, err := core.GuardedPtrExperiment(500)
		if err != nil {
			return "", nil, err
		}
		return r.Format(), []Metric{
			cyc("guarded", r.GuardedCycles), cyc("raw", r.RawCycles),
		}, nil
	}},
	{"syncbits", "E10. Section 2: synchronization bits", func() (string, []Metric, error) {
		r, err := core.SyncBitsExperiment()
		if err != nil {
			return "", nil, err
		}
		return r.Format(), []Metric{
			cyc("handoff", r.Cycles),
			{Name: "sync_faults", Value: float64(r.SyncFaults)},
		}, nil
	}},
	{"blockcache", "E11. Section 4.3: caching remote data in local DRAM", func() (string, []Metric, error) {
		r, err := core.BlockCacheExperiment()
		if err != nil {
			return "", nil, err
		}
		return r.Format(), []Metric{
			cyc("cached_pass1", r.CachedPass1), cyc("cached_pass2", r.CachedPass2),
			cyc("uncached_pass1", r.UncachedPass1), cyc("uncached_pass2", r.UncachedPass2),
		}, nil
	}},
	{"netsweep", "E12 (extension). Remote read latency vs. mesh distance", func() (string, []Metric, error) {
		rows, err := core.NetworkSweepExperiment()
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rows {
			ms = append(ms, cyc(fmt.Sprintf("read_hops%d", r.Hops), r.ReadCycles))
		}
		return core.FormatNetSweep(rows), ms, nil
	}},
	{"gridsmooth", "E13 (extension). Distributed grid smoothing: node scaling", func() (string, []Metric, error) {
		rows, err := core.GridSmoothExperiment()
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rows {
			ms = append(ms, cyc(fmt.Sprintf("smooth_nodes%d", r.Nodes), r.Cycles))
		}
		return core.FormatGridSmooth(rows), ms, nil
	}},
	{"meshscale", "E14 (extension). Large-mesh scaling under the parallel engine", func() (string, []Metric, error) {
		rows, err := core.MeshScaleExperiment()
		if err != nil {
			return "", nil, err
		}
		var ms []Metric
		for _, r := range rows {
			ms = append(ms, cyc(fmt.Sprintf("smooth_mesh%dx%dx%d", r.Dims.X, r.Dims.Y, r.Dims.Z), r.Cycles))
		}
		return core.FormatMeshScale(rows), ms, nil
	}},
}

// scenarioExperiments turns every .wl file matching glob into an
// experiment: one metric per phase plus the total cycle count, all
// simulated results and therefore part of the determinism trajectory.
func scenarioExperiments(glob string) ([]experiment, error) {
	if glob == "" {
		return nil, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []experiment
	for _, path := range files {
		path := path
		base := strings.TrimSuffix(filepath.Base(path), ".wl")
		sc, err := core.ScenarioFromFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, experiment{
			name:  "wl-" + base,
			title: fmt.Sprintf("W. workload scenario %s: %s", path, sc.Title()),
			run: func() (string, []Metric, error) {
				res, err := sc.Run(core.Options{})
				if err != nil {
					return "", nil, err
				}
				var b strings.Builder
				var ms []Metric
				fmt.Fprintf(&b, "%-16s %10s\n", "phase", "cycles")
				for _, ph := range res.Phases {
					fmt.Fprintf(&b, "%-16s %10d\n", ph.Name, ph.Cycles)
					ms = append(ms, cyc(ph.Name+"_cycles", ph.Cycles))
				}
				fmt.Fprintf(&b, "%-16s %10d   (%d expectation(s) verified)\n",
					"total", res.TotalCycles, res.Checks)
				ms = append(ms, cyc("total_cycles", res.TotalCycles))
				return b.String(), ms, nil
			},
		})
	}
	return out, nil
}

func main() {
	// The -dist soak re-executes this binary as shard worker processes;
	// when launched that way, serve the shard and exit.
	dist.MaybeWorker()

	exp := flag.String("exp", "", "run a single experiment by name")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (metrics + wall time per experiment)")
	wlGlob := flag.String("wl", defaultWLGlob, "glob of workload scenarios to run as experiments (\"\" disables)")
	faults := flag.Bool("faults", false, "run the deterministic fault-injection soak instead of the experiments")
	serveSoak := flag.Bool("serve", false, "run the msimd service chaos-recovery soak instead of the experiments")
	distSoak := flag.Bool("dist", false, "run the distributed-engine determinism and recovery soak instead of the experiments")
	gen := flag.Int("gen", 0, "run this many generated scenarios (seeds 0..N-1) through the engine determinism matrix instead of the experiments")
	flag.Parse()

	if *gen > 0 {
		if err := runGenMatrix(os.Stdout, *gen); err != nil {
			fmt.Fprintf(os.Stderr, "mbench: gen matrix: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faults {
		if err := runFaultSoak(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mbench: fault soak: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveSoak {
		if err := runServeSoak(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mbench: serve soak: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *distSoak {
		if err := runDistSoak(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mbench: dist soak: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scenarios, err := scenarioExperiments(*wlGlob)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbench: %v\n", err)
		os.Exit(1)
	}
	experiments := append(experiments, scenarios...)

	selected := experiments
	if *exp != "" {
		selected = nil
		for _, e := range experiments {
			if e.name == *exp {
				selected = []experiment{e}
				break
			}
		}
		if selected == nil {
			fmt.Fprintf(os.Stderr, "mbench: unknown experiment %q; valid names:\n", *exp)
			for _, e := range experiments {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", e.name, e.title)
			}
			os.Exit(2)
		}
	}

	// Fan the experiments out across the host's cores (core.ForEachMachine
	// collects by index, so output order never depends on scheduling) —
	// except in -json mode, which runs them serially so the recorded
	// wall_ns is each experiment's own cost rather than contention noise;
	// the perf trajectory in BENCH_<n>.json must be comparable across
	// records. Experiments still fan their internal machines out in both
	// modes.
	results := make([]Result, len(selected))
	runOne := func(i int) error {
		e := selected[i]
		start := time.Now()
		out, ms, runErr := e.run()
		if runErr != nil {
			return fmt.Errorf("%s: %w", e.name, runErr)
		}
		results[i] = Result{
			Name: e.name, Title: e.title,
			WallNs:  time.Since(start).Nanoseconds(),
			Metrics: ms, out: out,
		}
		return nil
	}
	if *jsonOut {
		for i := range selected {
			if err = runOne(i); err != nil {
				break
			}
		}
	} else {
		err = core.ForEachMachine(len(selected), runOne)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mbench: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Schema:     "mbench/v1",
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Results:    results,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "mbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range results {
		fmt.Printf("=== %s ===\n%s\n", r.Title, r.out)
	}
}
