// Command mbench regenerates every quantitative result of the M-Machine
// paper on the simulator: Table 1 (access latencies), Figure 9 (remote
// access timelines), the Figure 5 stencil schedules, the Figure 6 loop
// synchronization protocol, the Section 1/5 area model, and the mechanism
// experiments (V-Thread latency tolerance, SEND throttling, GTLB
// interleaving, guarded pointers, synchronization bits, block caching).
//
// Usage:
//
//	mbench                # run everything
//	mbench -exp table1    # one experiment: table1, fig9, stencil,
//	                      # loopsync, area, vthreads, throttle, gtlb,
//	                      # gp, syncbits, blockcache
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/area"
	"repro/internal/core"
)

var experiments = []struct {
	name  string
	title string
	run   func() (string, error)
}{
	{"table1", "E1. Table 1: local and remote access times", func() (string, error) {
		rows, err := core.Table1()
		if err != nil {
			return "", err
		}
		return core.FormatTable1(rows), nil
	}},
	{"fig9", "E2. Figure 9: remote read and write timelines", func() (string, error) {
		r, w, err := core.Figure9()
		if err != nil {
			return "", err
		}
		return r.Format() + "\n" + w.Format(), nil
	}},
	{"stencil", "E3. Figure 5 / Section 3.1: stencil schedule depths", func() (string, error) {
		rs, err := core.StencilExperiment()
		if err != nil {
			return "", err
		}
		return core.FormatStencil(rs), nil
	}},
	{"loopsync", "E4. Figure 6: H-Thread loop synchronization via global CCs", func() (string, error) {
		rs, err := core.LoopSyncExperiment(100)
		if err != nil {
			return "", err
		}
		return core.FormatLoopSync(rs), nil
	}},
	{"area", "E5. Sections 1/5: area and peak-performance model", func() (string, error) {
		in := area.PaperInputs()
		return area.Format(in, area.Evaluate(in)), nil
	}},
	{"vthreads", "E6. Section 3.2: V-Thread latency tolerance", func() (string, error) {
		rs, err := core.VThreadExperiment(200)
		if err != nil {
			return "", err
		}
		return core.FormatVThreads(rs), nil
	}},
	{"throttle", "E7. Section 4.1: return-to-sender throttling", func() (string, error) {
		r, err := core.ThrottleExperiment(24, 2)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	}},
	{"gtlb", "E8. Figure 8: GTLB block/cyclic interleaving", func() (string, error) {
		return core.FormatGTLB(core.GTLBExperiment()), nil
	}},
	{"gp", "E9. Section 2: guarded-pointer overhead", func() (string, error) {
		r, err := core.GuardedPtrExperiment(500)
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	}},
	{"syncbits", "E10. Section 2: synchronization bits", func() (string, error) {
		r, err := core.SyncBitsExperiment()
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	}},
	{"blockcache", "E11. Section 4.3: caching remote data in local DRAM", func() (string, error) {
		r, err := core.BlockCacheExperiment()
		if err != nil {
			return "", err
		}
		return r.Format(), nil
	}},
	{"netsweep", "E12 (extension). Remote read latency vs. mesh distance", func() (string, error) {
		rows, err := core.NetworkSweepExperiment()
		if err != nil {
			return "", err
		}
		return core.FormatNetSweep(rows), nil
	}},
	{"gridsmooth", "E13 (extension). Distributed grid smoothing: node scaling", func() (string, error) {
		rows, err := core.GridSmoothExperiment()
		if err != nil {
			return "", err
		}
		return core.FormatGridSmooth(rows), nil
	}},
}

func main() {
	exp := flag.String("exp", "", "run a single experiment by name")
	flag.Parse()

	ran := 0
	for _, e := range experiments {
		if *exp != "" && e.name != *exp {
			continue
		}
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", e.title, out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "mbench: unknown experiment %q; available:", *exp)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, " %s", e.name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
