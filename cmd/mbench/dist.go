package main

// The distributed-engine soak (-dist): the determinism matrix and the
// supervised-recovery drills from internal/dist's tests, run end to end
// as a CI gate. Every checked scenario must finish bit-identical to the
// in-process event engine — same total cycles, same check count, same
// final-state digest — across shard counts, across local-pipe and real
// OS-process workers, and across runs where the coordinator loses
// workers to injected panics, wedges, and SIGKILL mid-flight.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
)

// distSoakScenarios are the workloads exercised by the soak; they cover
// multi-phase runs, cross-shard message traffic, and barrier patterns.
var distSoakScenarios = []string{"meshsmooth4.wl", "stencil7x2.wl", "redblack.wl"}

func runDistSoak(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "distributed-engine soak: %d scenario(s)\n\n", len(distSoakScenarios))

	type ref struct {
		sc     *core.Scenario
		res    *core.ScenarioResult
		digest string
	}
	refs := map[string]ref{}
	for _, name := range distSoakScenarios {
		sc, err := core.ScenarioFromFile(filepath.Join("testdata", "workloads", name))
		if err != nil {
			return err
		}
		res, s, err := sc.RunSim(core.Options{})
		if err != nil {
			return fmt.Errorf("%s: in-process reference: %v", name, err)
		}
		digest, err := dist.Digest(s.M)
		if err != nil {
			return err
		}
		refs[name] = ref{sc: sc, res: res, digest: digest}
	}

	check := func(name, leg string, r *dist.RunResult, err error) error {
		if err != nil {
			return fmt.Errorf("%s [%s]: %v", name, leg, err)
		}
		want := refs[name]
		if r.TotalCycles != want.res.TotalCycles || r.Checks != want.res.Checks || r.Digest != want.digest {
			return fmt.Errorf("%s [%s]: diverged: %d cycles / %d checks / %s, want %d / %d / %s",
				name, leg, r.TotalCycles, r.Checks, r.Digest,
				want.res.TotalCycles, want.res.Checks, want.digest)
		}
		fmt.Fprintf(w, "  %-16s %-24s %8d cycles  %d ckpt  %d recoveries  OK\n",
			name, leg, r.TotalCycles, r.Checkpoints, r.Recoveries)
		return nil
	}

	// Leg 1: the shard-count determinism matrix over local pipe workers,
	// with mid-phase checkpoints exercising the skip/pull/adopt path.
	for _, name := range distSoakScenarios {
		for _, shards := range []int{2, 3} {
			r, _, err := dist.RunScenario(refs[name].sc, core.Options{}, dist.Config{
				Shards: shards, Launcher: dist.LocalLauncher{}, CheckpointEvery: 256,
			})
			if err := check(name, fmt.Sprintf("local x%d", shards), r, err); err != nil {
				return err
			}
		}
	}

	// Leg 2: recovery drills. Each injected failure class must be
	// classified, recovered from the latest checkpoint, and still land on
	// the reference digest.
	type drillCase struct {
		name, leg string
		cfg       dist.Config
		wantClass dist.FailureClass
		minRecov  int
	}
	drills := []drillCase{
		{"meshsmooth4.wl", "crash drill", dist.Config{
			Shards: 2, Launcher: dist.LocalLauncher{}, CheckpointEvery: 200,
			Chaos: []dist.ChaosSpec{
				{Node: 1, Cycle: 600, Kind: "panic"},
				{Node: 3, Cycle: 2000, Kind: "panic"},
			},
		}, dist.FailCrash, 2},
		{"meshsmooth4.wl", "stall drill", dist.Config{
			Shards: 2, Launcher: dist.LocalLauncher{}, CheckpointEvery: 200,
			WindowTimeout: 400 * time.Millisecond, HeartbeatEvery: 50 * time.Millisecond,
			SilenceTimeout: 2 * time.Second,
			Chaos:          []dist.ChaosSpec{{Node: 2, Cycle: 900, Kind: "hang"}},
		}, dist.FailStall, 1},
		{"redblack.wl", "lost drill", dist.Config{
			Shards: 2, Launcher: dist.LocalLauncher{}, CheckpointEvery: 128,
			Kill: []dist.KillSpec{{Shard: 1, Cycle: 500}},
		}, dist.FailLost, 1},
		{"meshsmooth4.wl", "sigkill drill (procs)", dist.Config{
			Shards: 2, Launcher: &dist.ProcLauncher{Exe: exe},
			CheckpointEvery: 256,
			Kill:            []dist.KillSpec{{Shard: 0, Cycle: 700}, {Shard: 1, Cycle: 1900}},
		}, dist.FailLost, 2},
	}
	fmt.Fprintln(w)
	for _, d := range drills {
		r, _, err := dist.RunScenario(refs[d.name].sc, core.Options{}, d.cfg)
		if err := check(d.name, d.leg, r, err); err != nil {
			return err
		}
		if r.Recoveries < d.minRecov {
			return fmt.Errorf("%s [%s]: %d recoveries, want >= %d", d.name, d.leg, r.Recoveries, d.minRecov)
		}
		classed := 0
		for _, f := range r.Failures {
			if f.Class == d.wantClass {
				classed++
			}
		}
		if classed < d.minRecov {
			return fmt.Errorf("%s [%s]: %d %s-class failures (%+v), want >= %d",
				d.name, d.leg, classed, d.wantClass, r.Failures, d.minRecov)
		}
	}

	// Leg 3: real-process determinism without drills — the everyday
	// mshard configuration.
	fmt.Fprintln(w)
	for _, name := range []string{"meshsmooth4.wl", "stencil7x2.wl"} {
		r, _, err := dist.RunScenario(refs[name].sc, core.Options{}, dist.Config{
			Shards:   2,
			Launcher: &dist.ProcLauncher{Exe: exe},
		})
		if err := check(name, "procs x2", r, err); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "\ndistributed-engine soak: all legs bit-identical to the in-process engines")
	return nil
}
