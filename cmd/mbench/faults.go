package main

// The -faults soak: a deterministic battery of injected failures
// (internal/faultinject) driven through the supervision layer
// (internal/guard), asserting the containment contracts CI relies on —
// an injected worker panic at a chosen (chip, cycle) surfaces as a
// *guard.CrashError naming that site under every engine; cycle budgets
// cut off at the same deterministic cycle under every engine; wall-clock
// stalls trip the watchdog; crash dumps restore at the crash cycle; and
// seeded corruptions of a snapshot stream are always rejected cleanly
// or round-trip as valid checkpoints, never panicking and never leaving
// the target half-mutated. Everything is seeded, so a soak failure
// reproduces exactly.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/guard"
)

// soakEngines are the engine configurations every containment contract
// is exercised under.
var soakEngines = []struct {
	name    string
	naive   bool
	workers int
}{
	{"naive", true, 0},
	{"event", false, 0},
	{"parallel3", false, 3},
}

const soakNodes = 6

// soakSpin boots a mesh where every node increments forever, the
// canonical runaway workload: always busy, never completing.
func soakSpin(naive bool, workers int) (*core.Sim, error) {
	s, err := core.NewSim(core.Options{Nodes: soakNodes, NaiveEngine: naive, Workers: workers})
	if err != nil {
		return nil, err
	}
	for n := 0; n < soakNodes; n++ {
		if err := s.LoadASM(n, 0, 0, "spin:\n    add i1, i1, #1\n    br spin\n"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// runFaultSoak executes the soak, printing one line per leg to w; any
// violated contract aborts with a descriptive error.
func runFaultSoak(w io.Writer) error {
	dir, err := os.MkdirTemp("", "mbench-faults")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Leg 1: injected panics at chosen (chip, cycle) sites, every engine.
	sites := []struct {
		node  int
		cycle int64
	}{{0, 100}, {4, 777}, {5, 2048}}
	for _, eng := range soakEngines {
		for _, site := range sites {
			s, err := soakSpin(eng.naive, eng.workers)
			if err != nil {
				return err
			}
			s.M.SetFaultProbe(faultinject.PanicAt(site.node, site.cycle))
			_, err = s.RunSupervised(1<<40, guard.Options{Timeout: time.Minute})
			var ce *guard.CrashError
			if !errors.As(err, &ce) {
				return fmt.Errorf("%s: injected panic at node %d cycle %d not contained: %v",
					eng.name, site.node, site.cycle, err)
			}
			if ce.Node != site.node || ce.Cycle != site.cycle {
				return fmt.Errorf("%s: crash reported at node %d cycle %d, injected at node %d cycle %d",
					eng.name, ce.Node, ce.Cycle, site.node, site.cycle)
			}
			s.M.Close()
		}
	}
	fmt.Fprintf(w, "faults: %d injected panics contained at their exact sites across %d engines\n",
		len(sites)*len(soakEngines), len(soakEngines))

	// Leg 2: cycle budgets cut off at the same deterministic cycle under
	// every engine.
	const budget = 3000
	for _, eng := range soakEngines {
		s, err := soakSpin(eng.naive, eng.workers)
		if err != nil {
			return err
		}
		_, err = s.RunSupervised(1<<40, guard.Options{CycleBudget: budget})
		var se *guard.StallError
		if !errors.As(err, &se) || se.Kind != guard.StallBudget {
			return fmt.Errorf("%s: budget did not trip: %v", eng.name, err)
		}
		if s.M.Cycle != budget {
			return fmt.Errorf("%s: budget stopped at cycle %d, want exactly %d", eng.name, s.M.Cycle, budget)
		}
		s.M.Close()
	}
	fmt.Fprintf(w, "faults: %d-cycle budget cut off at exactly cycle %d under every engine\n", budget, budget)

	// Leg 3: a wall-clock stall (injected per-step delay) trips the
	// watchdog with a diagnostic attached.
	{
		s, err := soakSpin(false, 0)
		if err != nil {
			return err
		}
		s.M.SetFaultProbe(faultinject.StallAt(0, 0, 2*time.Millisecond))
		_, err = s.RunSupervised(1<<40, guard.Options{Timeout: 100 * time.Millisecond})
		var se *guard.StallError
		if !errors.As(err, &se) || se.Kind != guard.StallTimeout {
			return fmt.Errorf("stall: watchdog did not trip: %v", err)
		}
		if se.Diagnostic == "" {
			return fmt.Errorf("stall: no diagnostic attached")
		}
		s.M.Close()
		fmt.Fprintf(w, "faults: injected stall tripped the wall-clock watchdog with a diagnostic\n")
	}

	// Leg 4: the crash dump written at an injected panic restores at the
	// crash cycle.
	{
		dump := dir + "/crash.msnap"
		s, err := soakSpin(false, 0)
		if err != nil {
			return err
		}
		s.M.SetFaultProbe(faultinject.PanicAt(2, 500))
		_, err = s.RunSupervised(1<<40, guard.Options{Timeout: time.Minute, DumpPath: dump})
		var ce *guard.CrashError
		if !errors.As(err, &ce) || ce.DumpPath != dump {
			return fmt.Errorf("crash dump not written: %v", err)
		}
		s.M.Close()
		r, err := core.NewSim(core.Options{Nodes: soakNodes})
		if err != nil {
			return err
		}
		f, err := os.Open(dump)
		if err != nil {
			return err
		}
		err = r.M.Restore(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("crash dump does not restore: %v", err)
		}
		if r.M.Cycle != 500 {
			return fmt.Errorf("crash dump restored at cycle %d, want the crash cycle 500", r.M.Cycle)
		}
		r.M.Close()
		fmt.Fprintf(w, "faults: crash dump restored at the crash cycle\n")
	}

	// Leg 5: seeded snapshot-stream corruption. Every mutation must be
	// rejected cleanly (target provably untouched) or accepted as a valid
	// round-trippable checkpoint; a panic anywhere fails the soak.
	{
		const mutations = 48
		s, err := soakSpin(false, 0)
		if err != nil {
			return err
		}
		if _, err := s.RunSupervised(1<<40, guard.Options{CycleBudget: 1000}); err == nil {
			return fmt.Errorf("corrupt: spin workload claimed completion")
		}
		var baseline bytes.Buffer
		if err := s.M.Save(&baseline); err != nil {
			return err
		}
		c := faultinject.NewCorrupter(0xdecade)
		rejected := 0
		for i := 0; i < mutations; i++ {
			bad := c.Mutate(baseline.Bytes())
			if err := s.M.Restore(bytes.NewReader(bad)); err != nil {
				var after bytes.Buffer
				if err := s.M.Save(&after); err != nil {
					return err
				}
				if !bytes.Equal(baseline.Bytes(), after.Bytes()) {
					return fmt.Errorf("corrupt: mutation %d rejected but the machine was left half-mutated", i)
				}
				rejected++
				continue
			}
			// Accepted: must round-trip, then reset to the baseline.
			var again bytes.Buffer
			if err := s.M.Save(&again); err != nil {
				return err
			}
			if err := s.M.Restore(bytes.NewReader(again.Bytes())); err != nil {
				return fmt.Errorf("corrupt: mutation %d accepted but does not round-trip: %v", i, err)
			}
			if err := s.M.Restore(bytes.NewReader(baseline.Bytes())); err != nil {
				return err
			}
		}
		s.M.Close()
		fmt.Fprintf(w, "faults: %d seeded stream corruptions handled (%d rejected cleanly, %d valid round trips)\n",
			mutations, rejected, mutations-rejected)
	}

	fmt.Fprintf(w, "faults: soak OK\n")
	return nil
}
