// msimd is the M-Machine simulation service: an HTTP/JSON server that
// accepts .wl scenario submissions, runs each one as an isolated,
// supervised, budgeted session, streams per-phase results, and recovers
// crashed or stalled sessions from periodic checkpoints — bit-identically
// to an uninterrupted run. See docs/msimd.md for the API and semantics.
//
// Exit codes: 0 clean shutdown (including SIGTERM/SIGINT drain),
// 1 runtime failure (listen/serve error), 2 usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("msimd", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:7774", "listen address")
		spool = fs.String("spool", "msimd-spool", "checkpoint spool directory (sessions recover from here)")

		workers = fs.Int("workers", 0, "concurrent sessions (0 = GOMAXPROCS, capped at 8)")
		queue   = fs.Int("queue", 64, "admission queue depth; beyond it submissions get 429")

		maxNodes      = fs.Int("max-nodes", 1024, "admission cap: largest mesh a session may declare")
		maxCycles     = fs.Int64("max-cycles", 1e9, "admission cap: largest cycle budget a session may declare")
		defaultCycles = fs.Int64("default-cycles", 50e6, "cycle budget for scenarios without a budget directive")
		maxWall       = fs.Duration("max-wall", 5*time.Minute, "admission cap: longest per-attempt deadline")
		defaultWall   = fs.Duration("default-wall", time.Minute, "deadline for scenarios without a deadline directive")

		checkpointEvery = fs.Int64("checkpoint-every", 4096, "cycles per run slice; checkpoint cadence")
		retries         = fs.Int("retries", 3, "max transient-failure retries per session (-1 = none)")
		backoff         = fs.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per retry)")
		backoffCap      = fs.Duration("backoff-cap", 5*time.Second, "retry backoff ceiling")
		grace           = fs.Duration("grace", 0, "hang grace after a watchdog stop (0 = guard default)")
		simWorkers      = fs.Int("sim-workers", 1, "per-session engine workers (1 = serial)")

		chaos = fs.String("chaos", "", "fault injection, e.g. seed=1,panic=3,stall=5,delay=2s,maxcycle=4096 (testing only)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: msimd [flags]\n\n"+
			"msimd serves .wl scenarios over HTTP (POST /api/v1/sessions) with\n"+
			"supervised execution, checkpoint-based crash recovery, admission\n"+
			"control, and graceful drain on SIGTERM/SIGINT. See docs/msimd.md.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "msimd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}

	logger := log.New(os.Stderr, "msimd: ", log.LstdFlags)
	cfg := serve.Config{
		Spool:           *spool,
		Workers:         *workers,
		Queue:           *queue,
		MaxNodes:        *maxNodes,
		MaxCycles:       *maxCycles,
		DefaultCycles:   *defaultCycles,
		MaxWall:         *maxWall,
		DefaultWall:     *defaultWall,
		CheckpointEvery: *checkpointEvery,
		Retries:         *retries,
		Backoff:         *backoff,
		BackoffCap:      *backoffCap,
		Grace:           *grace,
		SimWorkers:      *simWorkers,
		Logf:            logger.Printf,
	}
	if *chaos != "" {
		c, err := serve.ParseChaos(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msimd: -chaos: %v\n", err)
			return 2
		}
		cfg.Chaos = c
		logger.Printf("chaos enabled: %+v", *c)
	}

	sv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msimd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "msimd: %v\n", err)
		return 1
	}
	logger.Printf("listening on %s (spool %s)", ln.Addr(), *spool)

	hs := &http.Server{Handler: sv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }() //mlint:allow gocheck HTTP accept loop; simulation work stays on serve's supervised workers

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigs:
		logger.Printf("%v: draining (in-flight sessions checkpoint and suspend)", sig)
		// Drain first — it flips /healthz to 503 immediately and returns
		// once the pool is idle and every in-flight session has its
		// checkpoint in the spool — then stop the HTTP server, so clients
		// can poll session state for the whole drain window.
		sv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		st := sv.Stats()
		logger.Printf("drained: %d done, %d suspended, %d failed, %d canceled",
			st.Done, st.Suspended, st.Failed, st.Canceled)
		return 0
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "msimd: %v\n", err)
		return 1
	}
}
