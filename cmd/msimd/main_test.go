package main

// End-to-end test of the msimd binary: build it, start it on an
// ephemeral port, submit scenarios over HTTP, SIGTERM it mid-session,
// and assert the drain contract — exit code 0 and a checkpoint in the
// spool for the in-flight session.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildMsimd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "msimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startMsimd launches the daemon and waits for /healthz.
func startMsimd(t *testing.T, bin, spool string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	// Ephemeral port: ask the kernel, then hand it to msimd. The tiny
	// race window is acceptable in a test.
	addr := freeAddr(t)
	args := append([]string{"-addr", addr, "-spool", spool}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return cmd, base
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("msimd did not come up")
	return nil, ""
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// submit posts a scenario and returns the decoded session info.
func submit(t *testing.T, base, name, src string) map[string]any {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"source":%q}`, name, src)
	resp, err := http.Post(base+"/api/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, b)
	}
	var info map[string]any
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func spinSrc(iters int) string {
	return fmt.Sprintf("workload \"spin\"\nmesh 1\ngenerate sp spinloop iters=%d\nload sp on node 0\nrun 10000000\nexpect reg node=0 cluster=0 reg=1 value=%d\n", iters, iters)
}

func TestDaemonLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildMsimd(t)
	spool := t.TempDir()

	cmd, base := startMsimd(t, bin, spool, "-checkpoint-every", "8192")

	// A quick session completes.
	quick := submit(t, base, "quick.wl", spinSrc(500))
	id := quick["id"].(string)
	resp, err := http.Get(base + "/api/v1/sessions/" + id + "/wait")
	if err != nil {
		t.Fatal(err)
	}
	var done map[string]any
	json.NewDecoder(resp.Body).Decode(&done)
	resp.Body.Close()
	if done["state"] != "done" {
		t.Fatalf("quick session: %+v", done)
	}
	digest := done["digest"].(string)
	if digest == "" {
		t.Fatal("no digest")
	}

	// A long session gets SIGTERMed mid-run: drain must suspend it with a
	// checkpoint and the process must exit 0.
	long := submit(t, base, "long.wl", spinSrc(600000))
	longID := long["id"].(string)
	ckpt := filepath.Join(spool, longID+".ckpt")
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := os.Stat(ckpt); err == nil && st.Size() > 4096 {
			break // a machine-bearing checkpoint landed
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("msimd exited non-zero after SIGTERM: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("drained session left no checkpoint: %v", err)
	}

	// Restart over the same spool: the session is re-adopted and runs to
	// completion; a fresh uninterrupted run of the same scenario on the
	// same server must produce the identical digest.
	cmd2, base2 := startMsimd(t, bin, spool, "-checkpoint-every", "8192")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	resp, err = http.Get(base2 + "/api/v1/sessions/" + longID + "/wait")
	if err != nil {
		t.Fatal(err)
	}
	var resumed map[string]any
	json.NewDecoder(resp.Body).Decode(&resumed)
	resp.Body.Close()
	if resumed["state"] != "done" {
		t.Fatalf("re-adopted session: %+v", resumed)
	}

	control := submit(t, base2, "control.wl", spinSrc(600000))
	resp, err = http.Get(base2 + "/api/v1/sessions/" + control["id"].(string) + "/wait")
	if err != nil {
		t.Fatal(err)
	}
	var ctrl map[string]any
	json.NewDecoder(resp.Body).Decode(&ctrl)
	resp.Body.Close()
	if ctrl["state"] != "done" {
		t.Fatalf("control session: %+v", ctrl)
	}
	if resumed["digest"] != ctrl["digest"] {
		t.Fatalf("resumed digest %v != uninterrupted %v", resumed["digest"], ctrl["digest"])
	}
}

func TestDaemonUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildMsimd(t)
	for _, args := range [][]string{
		{"-chaos", "wibble"},
		{"-chaos", "panic=x"},
		{"stray-arg"},
	} {
		cmd := exec.Command(bin, args...)
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("msimd %v: err %v, want exit 2", args, err)
		}
	}
}
