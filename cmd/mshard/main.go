// Command mshard runs a workload scenario on the distributed
// multi-process engine (internal/dist, DESIGN.md "The distributed
// engine"): a coordinator partitions the mesh across shard worker
// processes on this host — each a re-execution of this binary — and
// supervises them with heartbeats, window deadlines, and checkpoint-
// based recovery. Results are bit-identical to msim's in-process
// engines, including runs that lost and recovered workers.
//
// Usage:
//
//	mshard -shards 2 scenario.wl
//
// Fault drills (deterministic, for demos and soak tests):
//
//	-drill-kill shard@cycle    SIGKILL a worker mid-run (lost connection)
//	-drill-panic node@cycle    inject a contained worker panic (crash)
//	-drill-hang node@cycle     wedge a worker mid-step (stall)
//
// A drilled run must end with the same cycle counts, checks, and machine
// digest as an undisturbed one — mshard prints the digest so two runs
// can be compared directly. Exit codes match msim: 0 success, 1 scenario
// fault, 2 usage, 3 cycle-budget exhaustion, 4 unrecoverable engine
// failure (e.g. the recovery cap tripped).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/guard"
	"repro/internal/machine"
	"repro/internal/trace"
)

func main() {
	// When launched by a coordinator, this process is a shard worker and
	// never returns from here.
	dist.MaybeWorker()

	shards := flag.Int("shards", 2, "shard worker process count (clamped to the mesh size)")
	ckEvery := flag.Int64("checkpoint-every", 4096, "coordinated checkpoint cadence in cycles")
	ckPath := flag.String("checkpoint", "", "also spool each checkpoint to this file (atomic rename)")
	windowTimeout := flag.Duration("window-timeout", 30*time.Second, "per-exchange wall deadline before a shard counts as stalled")
	heartbeat := flag.Duration("heartbeat", 250*time.Millisecond, "worker heartbeat cadence")
	silence := flag.Duration("silence-timeout", 3*time.Second, "heartbeat silence before a shard counts as lost")
	maxRecoveries := flag.Int("max-recoveries", 8, "checkpoint recoveries before giving up")
	showTrace := flag.Bool("trace", false, "print the event trace")
	var kills, panics, hangs drillList
	flag.Var(&kills, "drill-kill", "kill worker shard@cycle (repeatable)")
	flag.Var(&panics, "drill-panic", "inject worker panic node@cycle (repeatable)")
	flag.Var(&hangs, "drill-hang", "wedge worker node@cycle (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mshard [flags] scenario.wl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	sc, err := core.ScenarioFromFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	cfg := dist.Config{
		Shards:          *shards,
		Launcher:        &dist.ProcLauncher{Exe: exe},
		CheckpointEvery: *ckEvery,
		CheckpointPath:  *ckPath,
		WindowTimeout:   *windowTimeout,
		HeartbeatEvery:  *heartbeat,
		SilenceTimeout:  *silence,
		MaxRecoveries:   *maxRecoveries,
	}
	for _, d := range kills {
		cfg.Kill = append(cfg.Kill, dist.KillSpec{Shard: d.a, Cycle: d.cycle})
	}
	for _, d := range panics {
		cfg.Chaos = append(cfg.Chaos, dist.ChaosSpec{Node: d.a, Cycle: d.cycle, Kind: "panic"})
	}
	for _, d := range hangs {
		cfg.Chaos = append(cfg.Chaos, dist.ChaosSpec{Node: d.a, Cycle: d.cycle, Kind: "hang"})
	}

	res, s, err := dist.RunScenario(sc, core.Options{}, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mshard: %v\n", err)
		os.Exit(exitCode(err))
	}

	fmt.Printf("workload: %s\n", sc.Title())
	fmt.Printf("mesh:     %dx%dx%d, %d shard worker(s)\n\n",
		sc.Plan.Dims[0], sc.Plan.Dims[1], sc.Plan.Dims[2], res.Shards)
	for _, ph := range res.Phases {
		fmt.Printf("  phase %-12s %10d cycles\n", ph.Name, ph.Cycles)
	}
	fmt.Printf("  %-18s %10d cycles\n", "total", res.TotalCycles)
	fmt.Printf("\n%d expectation(s) verified\n", res.Checks)
	st := res.Stats
	fmt.Printf("\nstats: %d instructions, %d ops, %d messages, %d LTLB faults, %d status faults, %d sync faults\n",
		st.Instructions, st.Operations, st.MsgsInjected, st.LTLBFaults, st.StatusFaults, st.SyncFaults)
	fmt.Printf("digest: %s\n", res.Digest)
	fmt.Printf("\nsupervision: %d checkpoint(s), %d recover(ies)\n", res.Checkpoints, res.Recoveries)
	for _, f := range res.Failures {
		detail, _, _ := strings.Cut(f.Detail, "\n")
		fmt.Printf("  shard %d %-5s at cycle %-8d %s\n", f.Shard, f.Class, f.Cycle, detail)
	}
	if *showTrace {
		fmt.Println("\ntrace:")
		fmt.Print(trace.Timeline(s.Recorder.Events))
	}
}

// drill is one parsed a@cycle drill directive.
type drill struct {
	a     int
	cycle int64
}

// drillList parses repeatable "<int>@<cycle>" flags.
type drillList []drill

func (l *drillList) String() string {
	parts := make([]string, len(*l))
	for i, d := range *l {
		parts[i] = fmt.Sprintf("%d@%d", d.a, d.cycle)
	}
	return strings.Join(parts, ",")
}

func (l *drillList) Set(v string) error {
	a, c, ok := strings.Cut(v, "@")
	if !ok {
		return fmt.Errorf("want <n>@<cycle>, got %q", v)
	}
	n, err := strconv.Atoi(a)
	if err != nil {
		return err
	}
	cy, err := strconv.ParseInt(c, 10, 64)
	if err != nil {
		return err
	}
	*l = append(*l, drill{a: n, cycle: cy})
	return nil
}

func exitCode(err error) int {
	var se *guard.StallError
	if errors.As(err, &se) || errors.Is(err, machine.ErrCycleLimit) {
		return 3
	}
	if strings.Contains(err.Error(), "recovery limit") {
		return 4
	}
	return 1
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mshard: %v\n", err)
	os.Exit(1)
}
