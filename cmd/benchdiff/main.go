// Command benchdiff compares two mbench -json records (BENCH_<n>.json, the
// per-PR performance trajectory) and flags two kinds of drift:
//
//   - Metric deltas. Every metric mbench records is a simulated result
//     (cycle counts and derived figures), so any change between records is
//     a determinism break — the engines are contractually bit-identical
//     across versions unless a PR deliberately changes simulated behavior.
//     These fail the comparison (exit 1) unless -advisory is set.
//
//   - Wall-time regressions. Each experiment's wall_ns is compared under a
//     multiplicative tolerance (-tol) that absorbs host noise; regressions
//     beyond it are reported. Wall time is advisory by default (records
//     may come from different hosts); -strict-wall makes it fail too.
//
// Usage:
//
//	benchdiff [-tol 1.5] [-advisory] [-strict-wall] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// metric mirrors mbench's Metric.
type metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// result mirrors mbench's Result.
type result struct {
	Name    string   `json:"name"`
	Title   string   `json:"title"`
	WallNs  int64    `json:"wall_ns"`
	Metrics []metric `json:"metrics,omitempty"`
}

// report mirrors mbench's top-level -json document.
type report struct {
	Schema     string   `json:"schema"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "mbench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q (want mbench/v1)", path, r.Schema)
	}
	return &r, nil
}

func main() {
	tol := flag.Float64("tol", 1.5, "wall-time regression tolerance (new/old ratio)")
	advisory := flag.Bool("advisory", false, "always exit 0, even on metric deltas")
	strictWall := flag.Bool("strict-wall", false, "treat wall-time regressions beyond -tol as failures")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol f] [-advisory] [-strict-wall] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	oldBy := make(map[string]*result, len(oldRep.Results))
	for i := range oldRep.Results {
		oldBy[oldRep.Results[i].Name] = &oldRep.Results[i]
	}

	var breaks, wallRegs, compared int
	seen := make(map[string]bool)
	for i := range newRep.Results {
		nr := &newRep.Results[i]
		seen[nr.Name] = true
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("NEW        %-12s (no baseline)\n", nr.Name)
			continue
		}
		compared++
		oldM := make(map[string]metric, len(or.Metrics))
		for _, m := range or.Metrics {
			oldM[m.Name] = m
		}
		for _, m := range nr.Metrics {
			om, ok := oldM[m.Name]
			if !ok {
				fmt.Printf("NEW METRIC %-12s %s\n", nr.Name, m.Name)
				continue
			}
			delete(oldM, m.Name)
			if om.Value != m.Value {
				breaks++
				fmt.Printf("BREAK      %-12s %-28s %v -> %v %s (determinism: simulated results must not drift)\n",
					nr.Name, m.Name, om.Value, m.Value, m.Unit)
			}
		}
		// A metric that vanished is as much a break as one that drifted:
		// a silently dropped result must not evade the determinism gate.
		for name := range oldM {
			breaks++
			fmt.Printf("BREAK      %-12s %-28s missing from new record\n", nr.Name, name)
		}
		ratio := float64(nr.WallNs) / float64(or.WallNs)
		switch {
		case ratio > *tol:
			wallRegs++
			fmt.Printf("SLOWER     %-12s wall %.2fx (%.1fms -> %.1fms, tol %.2fx)\n",
				nr.Name, ratio, float64(or.WallNs)/1e6, float64(nr.WallNs)/1e6, *tol)
		case ratio < 1 / *tol:
			fmt.Printf("faster     %-12s wall %.2fx (%.1fms -> %.1fms)\n",
				nr.Name, ratio, float64(or.WallNs)/1e6, float64(nr.WallNs)/1e6)
		}
	}
	for name := range oldBy {
		if !seen[name] {
			breaks++
			fmt.Printf("BREAK      %-12s experiment dropped (present in old record only)\n", name)
		}
	}

	fmt.Printf("benchdiff: %d experiments compared, %d metric breaks, %d wall regressions beyond %.2fx\n",
		compared, breaks, wallRegs, *tol)
	if *advisory {
		return
	}
	if breaks > 0 || (*strictWall && wallRegs > 0) {
		os.Exit(1)
	}
}
