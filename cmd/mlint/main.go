// Command mlint runs the repo's determinism-invariant analyzer suite
// (internal/lint; DESIGN.md "Static analysis") over the whole module:
// the four repo-specific analyzers — detrange, wallclock, gocheck,
// snapfields — plus the stock shadow/copylocks/nilness passes.
//
// Exit status: 0 when every finding is suppressed or none exist, 1 when
// unsuppressed diagnostics remain (the CI lint leg fails), 2 on usage
// or load errors.
//
//	mlint                 # analyze the module rooted in the working dir
//	mlint -list           # list analyzers and their invariants
//	mlint -run detrange,snapfields
//	mlint -suppressions   # audit every //mlint:allow and snap:"derived"
//
// Suppressions are per-line and must carry a reason:
//
//	//mlint:allow gocheck worker pool goroutines park at the barrier
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	supps := fs.Bool("suppressions", false, "list every suppression directive and derived tag, then exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("dir", ".", "module directory to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n%-10s   invariant: %s (DESIGN.md %q)\n", a.Name, a.Doc, "", a.Invariant, a.Section)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *runNames != "" {
		analyzers = nil
		for _, name := range strings.Split(*runNames, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	m, err := lint.Load(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlint: %v\n", err)
		return 2
	}
	res := lint.RunAnalyzers(m, analyzers)

	if *supps {
		for _, s := range res.Suppressions {
			status := ""
			if !s.Used {
				status = " [unused]"
			}
			fmt.Printf("%s: //mlint:allow %s — %s%s\n", s.Pos, s.Analyzer, s.Reason, status)
		}
		for _, d := range res.Derived {
			fmt.Printf("%s: snap:\"derived\" %s.%s\n", d.Pos, d.Struct, d.Field)
		}
		fmt.Printf("mlint: %d suppressions, %d derived tags\n", len(res.Suppressions), len(res.Derived))
		return 0
	}

	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if n := len(res.Diags); n > 0 {
		fmt.Fprintf(os.Stderr, "mlint: %d unsuppressed diagnostic(s)\n", n)
		return 1
	}
	fmt.Printf("mlint: ok (%d analyzers, %d packages, %d suppressed findings, %d derived tags)\n",
		len(analyzers), len(m.Pkgs), len(res.Suppressed), len(res.Derived))
	return 0
}
