//go:build race

package repro_test

// raceEnabled reports whether the binary was built with -race, so
// wall-clock assertions can skip under its instrumentation.
const raceEnabled = true
