// Benchmarks and regression checks for the parallel simulation engine:
// the goroutine-sharded chip phase (machine.Config.Workers) swept against
// the serial event engine over node count, under a busy workload — every
// cluster of every node issuing every cycle, the chip phase's worst case
// and the configuration the parallel engine exists for.
package repro_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
)

// busySim boots a machine of the given shape with spin loops on all four
// clusters of every node, so every chip issues four instructions per cycle
// and no cycle can be fast-forwarded.
func busySim(tb testing.TB, dims noc.Coord, workers int) *core.Sim {
	s, err := core.NewSim(core.Options{Dims: dims, Workers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	spin := `
    movi i1, #0
loop:
    add i1, i1, #1
    br loop
`
	for n := 0; n < s.M.NumNodes(); n++ {
		for cl := 0; cl < 4; cl++ {
			if err := s.LoadASM(n, 0, cl, spin); err != nil {
				tb.Fatal(err)
			}
		}
	}
	// Let program loading settle into steady state before timing.
	for i := 0; i < 16; i++ {
		s.M.Step()
	}
	return s
}

// BenchmarkParallelSpeedup sweeps node count × engine: compare the
// "serial" and "parallel" variants of each size to read off the speedup
// (cycles/sec). The parallel engine shards the chip phase over GOMAXPROCS
// workers; on a single-core host the two variants coincide.
func BenchmarkParallelSpeedup(b *testing.B) {
	sizes := []struct {
		name string
		dims noc.Coord
	}{
		{"Nodes8", noc.Coord{X: 8, Y: 1, Z: 1}},
		{"Mesh4x4x2", noc.Coord{X: 4, Y: 4, Z: 2}},
		{"Mesh8x8x2", noc.Coord{X: 8, Y: 8, Z: 2}},
	}
	engines := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", -1},
	}
	for _, sz := range sizes {
		for _, eng := range engines {
			b.Run(sz.name+"/"+eng.name, func(b *testing.B) {
				s := busySim(b, sz.dims, eng.workers)
				defer s.M.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.M.Step()
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
				b.ReportMetric(float64(b.N)*float64(s.M.NumNodes())/b.Elapsed().Seconds(),
					"node-cycles/sec")
			})
		}
	}
}

// idleMixSim boots a dims-shaped machine with spin loops on all four
// clusters of the first busyNodes nodes and nothing on the rest, so every
// busy cycle has exactly busyNodes due chips. The busy nodes are clustered
// at the low end of the node range — the worst case for static contiguous
// shards and the configuration active-set scheduling plus rebalancing is
// for.
func idleMixSim(tb testing.TB, dims noc.Coord, busyNodes, workers int) *core.Sim {
	s, err := core.NewSim(core.Options{Dims: dims, Workers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	spin := `
    movi i1, #0
loop:
    add i1, i1, #1
    br loop
`
	for n := 0; n < busyNodes; n++ {
		for cl := 0; cl < 4; cl++ {
			if err := s.LoadASM(n, 0, cl, spin); err != nil {
				tb.Fatal(err)
			}
		}
	}
	for i := 0; i < 16; i++ {
		s.M.Step()
	}
	return s
}

// BenchmarkIdleMix measures the engines on heterogeneous busy/idle mixes:
// a 128-node mesh where only 10%/50%/90% of the chips are idle each cycle.
// The serial event engine touches every chip every busy cycle (idle ones
// via SkipCycles(1)); the active-set parallel engine's cost is
// proportional to the busy chips alone, which is the win this benchmark
// demonstrates and guards. Workers are fixed at 4 so the comparison is
// about scheduling, not host core count.
func BenchmarkIdleMix(b *testing.B) {
	dims := noc.Coord{X: 8, Y: 8, Z: 2} // 128 nodes
	total := dims.X * dims.Y * dims.Z
	mixes := []struct {
		name     string
		idlePart int // percent of chips idle per cycle
	}{
		{"Idle10", 10},
		{"Idle50", 50},
		{"Idle90", 90},
	}
	engines := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel4", 4},
	}
	for _, mix := range mixes {
		busy := total * (100 - mix.idlePart) / 100
		for _, eng := range engines {
			b.Run(mix.name+"/"+eng.name, func(b *testing.B) {
				s := idleMixSim(b, dims, busy, eng.workers)
				defer s.M.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.M.Step()
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
				b.ReportMetric(float64(b.N)*float64(busy)/b.Elapsed().Seconds(),
					"busy-node-cycles/sec")
			})
		}
	}
}

// TestParallelSpeedup is the acceptance tripwire for the parallel engine:
// on a host with ≥ 4 cores, stepping a busy 128-node mesh (8x8x2, well
// past the 32-node bar) must be ≥ 2× faster under the parallel engine
// than under the serial event engine. Wall-clock assertions are only
// meaningful when the measurement has the host to itself, so the test
// runs solely under `make speedup` (PARALLEL_SPEEDUP=1, its own go test
// invocation after the main suite) — inside a plain `go test ./...` it
// would contend with concurrently running package binaries and flake. It
// also skips on small hosts and under the race detector's
// instrumentation.
func TestParallelSpeedup(t *testing.T) {
	if os.Getenv("PARALLEL_SPEEDUP") == "" {
		t.Skip("wall-clock measurement needs an idle host: run via make speedup (PARALLEL_SPEEDUP=1)")
	}
	if raceEnabled {
		t.Skip("wall-clock measurement skipped under the race detector")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("need GOMAXPROCS >= 4 for the 2x bar, have %d", p)
	}
	if c := runtime.NumCPU(); c < 4 {
		// GOMAXPROCS can be raised by hand, but time-slicing 4 workers on
		// fewer physical cores makes the parallel engine *slower*; the bar
		// only means something on real parallel hardware.
		t.Skipf("need >= 4 physical CPUs for the 2x bar, have %d", c)
	}
	const cycles = 1000
	dims := noc.Coord{X: 8, Y: 8, Z: 2}
	measure := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			s := busySim(t, dims, workers)
			start := time.Now()
			for i := 0; i < cycles; i++ {
				s.M.Step()
			}
			if d := time.Since(start); d < best {
				best = d
			}
			s.M.Close()
		}
		return best
	}
	serial := measure(1)
	parallel := measure(-1)
	speedup := float64(serial) / float64(parallel)
	t.Logf("busy 8x8x2: serial %v, parallel %v, speedup %.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Errorf("parallel engine speedup %.2fx < 2x on a %d-core host", speedup, runtime.GOMAXPROCS(0))
	}
}
