// Tests that the sample programs under testdata/ assemble and run with the
// documented results — the same programs the msim/masm command-line tools
// are demonstrated with.
package repro_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
)

func readSample(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSamplesAssemble(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".masm" {
			continue
		}
		n++
		if _, err := asm.Assemble(e.Name(), readSample(t, e.Name())); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
	if n < 3 {
		t.Errorf("only %d sample programs found", n)
	}
}

func TestFibSample(t *testing.T) {
	s, err := core.NewSim(core.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadASM(0, 0, 0, readSample(t, "fib.masm")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(0, 0, 0, 1); got != 6765 {
		t.Errorf("fib(20) = %d, want 6765", got)
	}
	if w, err := s.Peek(0, 100); err != nil || w != 6765 {
		t.Errorf("memory word 100 = %d (%v)", w, err)
	}
}

func TestHelloSample(t *testing.T) {
	s, err := core.NewSim(core.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadASM(0, 0, 0, readSample(t, "hello.masm")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if got := s.M.Chip(0).Console.String(); got != "HI\n42\n" {
		t.Errorf("console = %q, want %q", got, "HI\n42\n")
	}
}

func TestRemoteSample(t *testing.T) {
	s, err := core.NewSim(core.Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadASM(0, 0, 0, readSample(t, "remote.masm")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(0, 0, 0, 4); got != 12346 {
		t.Errorf("i4 = %d, want 12346", got)
	}
	if w, err := s.Peek(1, 4096); err != nil || w != 12345 {
		t.Errorf("node 1 word = %d (%v)", w, err)
	}
}
