package isa

import (
	"math/rand"
	"testing"
)

// opEqual compares the semantic fields of two operations (Label is an
// assembler artifact resolved into Imm and is not encoded).
func opEqual(a, b *Op) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Code == b.Code && a.Dst == b.Dst && a.Src1 == b.Src1 &&
		a.Src2 == b.Src2 && a.Imm == b.Imm && a.HasImm == b.HasImm &&
		a.Pre == b.Pre && a.Post == b.Post && a.Pri == b.Pri
}

func TestEncodeOpRoundTripBasics(t *testing.T) {
	ops := []*Op{
		{Code: ADD, Dst: Int(1), Src1: Int(2), Src2: Int(3)},
		{Code: MOVI, Dst: Int(4), Imm: -42, HasImm: true},
		{Code: MOVI, Dst: Int(4), Imm: 1 << 40, HasImm: true}, // extended imm
		{Code: MOVI, Dst: Int(4), Imm: -(1 << 40), HasImm: true},
		{Code: LDSY, Dst: Int(1), Src1: Int(2), Pre: SyncFull, Post: SyncEmpty},
		{Code: SEND, Src1: Int(1), Src2: Int(2), Dst: Int(8), Imm: 3, HasImm: true, Pri: 1},
		{Code: FADD, Dst: Remote(2, FP(5)), Src1: FP(1), Src2: FP(2)},
		{Code: EQ, Dst: GCC(3), Src1: Int(1), Src2: Int(2)},
		{Code: MOV, Dst: Int(1), Src1: Spec(SpecNet)},
		{Code: HALT},
	}
	for _, op := range ops {
		ws := EncodeOp(op)
		got, used, err := DecodeOp(ws)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if used != len(ws) {
			t.Errorf("%s: consumed %d of %d words", op, used, len(ws))
		}
		if !opEqual(got, op) {
			t.Errorf("round trip: got %+v, want %+v", got, op)
		}
	}
}

func TestEncodeOpImmediateBoundaries(t *testing.T) {
	for _, imm := range []int64{immMin, immMax, immMin - 1, immMax + 1, 0, -1} {
		op := &Op{Code: MOVI, Dst: Int(1), Imm: imm, HasImm: true}
		got, _, err := DecodeOp(EncodeOp(op))
		if err != nil {
			t.Fatalf("imm %d: %v", imm, err)
		}
		if got.Imm != imm {
			t.Errorf("imm %d round-tripped to %d", imm, got.Imm)
		}
		wantWords := 1
		if imm < immMin || imm > immMax {
			wantWords = 2
		}
		if len(EncodeOp(op)) != wantWords {
			t.Errorf("imm %d used %d words, want %d", imm, len(EncodeOp(op)), wantWords)
		}
	}
}

func randomReg(rng *rand.Rand) Reg {
	classes := []RegClass{RNone, RInt, RFP, RGCC, RSpec}
	c := classes[rng.Intn(len(classes))]
	if c == RNone {
		return Reg{}
	}
	r := Reg{Class: c, Index: uint8(rng.Intn(16)), Cluster: ClusterSelf}
	if c == RGCC {
		r.Index = uint8(rng.Intn(8))
	}
	if c == RSpec {
		r.Index = uint8(rng.Intn(5))
	}
	if rng.Intn(4) == 0 {
		r.Cluster = int8(rng.Intn(NumClusters))
	}
	return r
}

func TestEncodeOpRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		op := &Op{
			Code:   Opcode(rng.Intn(int(opcodeCount))),
			Dst:    randomReg(rng),
			Src1:   randomReg(rng),
			Src2:   randomReg(rng),
			Imm:    rng.Int63() - rng.Int63(),
			HasImm: rng.Intn(2) == 0,
			Pre:    SyncCond(rng.Intn(3)),
			Post:   SyncCond(rng.Intn(3)),
			Pri:    uint8(rng.Intn(2)),
		}
		got, _, err := DecodeOp(EncodeOp(op))
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if !opEqual(got, op) {
			t.Fatalf("op %d: got %+v, want %+v", i, got, op)
		}
	}
}

func TestEncodeProgramRoundTrip(t *testing.T) {
	p := &Program{
		Name: "t",
		Insts: []Inst{
			{IOp: &Op{Code: MOVI, Dst: Int(1), Imm: 7, HasImm: true}, Line: 3},
			{
				IOp:  &Op{Code: ADD, Dst: Int(2), Src1: Int(1), Src2: Int(1)},
				MOp:  &Op{Code: LD, Dst: Int(3), Src1: Int(1), Imm: 2},
				FOp:  &Op{Code: FADD, Dst: FP(1), Src1: FP(2), Src2: FP(3)},
				Line: 4,
			},
			{IOp: &Op{Code: HALT}, Line: 5},
		},
		Labels: map[string]int{},
	}
	ws := EncodeProgram(p)
	got, err := DecodeProgram("t", ws)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != p.Len() {
		t.Fatalf("lengths: %d vs %d", got.Len(), p.Len())
	}
	for i := range p.Insts {
		a, b := &p.Insts[i], &got.Insts[i]
		if !opEqual(a.IOp, b.IOp) || !opEqual(a.MOp, b.MOp) || !opEqual(a.FOp, b.FOp) {
			t.Errorf("instruction %d differs: %s vs %s", i, a, b)
		}
		if a.Line != b.Line {
			t.Errorf("instruction %d line %d vs %d", i, a.Line, b.Line)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeProgram("t", nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := DecodeProgram("t", []uint64{2, 1}); err == nil {
		t.Error("truncated program accepted")
	}
	if _, _, err := DecodeOp(nil); err == nil {
		t.Error("empty op stream accepted")
	}
	// Extended-immediate flag with no following word.
	w := EncodeOp(&Op{Code: MOVI, Imm: 1 << 40, HasImm: true})[0]
	if _, _, err := DecodeOp([]uint64{w}); err == nil {
		t.Error("truncated extended immediate accepted")
	}
	// Bad opcode.
	if _, _, err := DecodeOp([]uint64{0x7F}); err == nil {
		t.Error("bad opcode accepted")
	}
	// Trailing garbage after a program.
	p := &Program{Insts: []Inst{{IOp: &Op{Code: HALT}}}, Labels: map[string]int{}}
	ws := append(EncodeProgram(p), 99)
	if _, err := DecodeProgram("t", ws); err == nil {
		t.Error("trailing words accepted")
	}
}
