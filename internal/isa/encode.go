package isa

// Binary encoding of MAP instructions. The paper's chip stores instructions
// in the per-cluster instruction cache as fixed-width words; this encoding
// defines a concrete word format so programs can be stored in simulated
// memory or on disk. Each operation packs into one 64-bit word, with an
// extension word for immediates wider than 20 bits; an instruction is a
// control word followed by its operation words.
//
// Operation word layout (low to high bits):
//
//	 0..6   opcode
//	 7      has-immediate flag
//	 8..9   sync precondition
//	10..11  sync postcondition
//	12      send priority
//	13..22  dst register (see encodeReg)
//	23..32  src1 register
//	33..42  src2 register
//	43      immediate-extension flag (immediate in the next word)
//	44..63  20-bit signed immediate when not extended
//
// Register field (10 bits): class(3) | index(4) | cluster(3), with cluster
// 7 meaning ClusterSelf.
//
// Instruction control word: bit 0/1/2 = integer/memory/FP op present,
// bits 3..31 = source line. A program is its instruction count followed by
// the instruction stream. Labels are an assembler artifact (branch targets
// are already resolved to absolute indices) and are not encoded.

import "fmt"

const (
	regClusterSelf = 7
	immBits        = 20
	immMax         = (int64(1) << (immBits - 1)) - 1
	immMin         = -(int64(1) << (immBits - 1))
)

func encodeReg(r Reg) uint64 {
	cl := uint64(regClusterSelf)
	if r.Cluster != ClusterSelf {
		cl = uint64(r.Cluster)
	}
	return uint64(r.Class)&7 | (uint64(r.Index)&0xF)<<3 | cl<<7
}

func decodeReg(w uint64) Reg {
	r := Reg{
		Class:   RegClass(w & 7),
		Index:   uint8(w >> 3 & 0xF),
		Cluster: int8(w >> 7 & 7),
	}
	if r.Cluster == regClusterSelf {
		r.Cluster = ClusterSelf
	}
	return r
}

// EncodeOp packs an operation into one or two words.
func EncodeOp(op *Op) []uint64 {
	w := uint64(op.Code) & 0x7F
	if op.HasImm {
		w |= 1 << 7
	}
	w |= uint64(op.Pre&3) << 8
	w |= uint64(op.Post&3) << 10
	w |= uint64(op.Pri&1) << 12
	w |= encodeReg(op.Dst) << 13
	w |= encodeReg(op.Src1) << 23
	w |= encodeReg(op.Src2) << 33
	if op.Imm >= immMin && op.Imm <= immMax {
		w |= (uint64(op.Imm) & (1<<immBits - 1)) << 44
		return []uint64{w}
	}
	w |= 1 << 43
	return []uint64{w, uint64(op.Imm)}
}

// DecodeOp unpacks an operation, returning it and the number of words
// consumed.
func DecodeOp(ws []uint64) (*Op, int, error) {
	if len(ws) == 0 {
		return nil, 0, fmt.Errorf("isa: empty operation stream")
	}
	w := ws[0]
	op := &Op{
		Code:   Opcode(w & 0x7F),
		HasImm: w>>7&1 != 0,
		Pre:    SyncCond(w >> 8 & 3),
		Post:   SyncCond(w >> 10 & 3),
		Pri:    uint8(w >> 12 & 1),
		Dst:    decodeReg(w >> 13),
		Src1:   decodeReg(w >> 23),
		Src2:   decodeReg(w >> 33),
	}
	if op.Code >= opcodeCount {
		return nil, 0, fmt.Errorf("isa: bad opcode %d", op.Code)
	}
	if w>>43&1 != 0 {
		if len(ws) < 2 {
			return nil, 0, fmt.Errorf("isa: truncated extended immediate")
		}
		op.Imm = int64(ws[1])
		return op, 2, nil
	}
	// Sign-extend the 20-bit field.
	imm := int64(w >> 44 & (1<<immBits - 1))
	if imm > immMax {
		imm -= 1 << immBits
	}
	op.Imm = imm
	return op, 1, nil
}

// EncodeProgram serializes a program to words: count, then per instruction
// a control word and its operation words.
func EncodeProgram(p *Program) []uint64 {
	out := []uint64{uint64(len(p.Insts))}
	for i := range p.Insts {
		in := &p.Insts[i]
		ctrl := uint64(0)
		if in.IOp != nil {
			ctrl |= 1
		}
		if in.MOp != nil {
			ctrl |= 2
		}
		if in.FOp != nil {
			ctrl |= 4
		}
		ctrl |= uint64(uint32(in.Line)) << 3
		out = append(out, ctrl)
		for _, op := range []*Op{in.IOp, in.MOp, in.FOp} {
			if op != nil {
				out = append(out, EncodeOp(op)...)
			}
		}
	}
	return out
}

// DecodeProgram inverts EncodeProgram. Labels are not represented in the
// binary form; the returned program has an empty label table.
func DecodeProgram(name string, ws []uint64) (*Program, error) {
	if len(ws) == 0 {
		return nil, fmt.Errorf("isa: empty program stream")
	}
	n := int(ws[0])
	ws = ws[1:]
	p := &Program{Name: name, Labels: map[string]int{}}
	for i := 0; i < n; i++ {
		if len(ws) == 0 {
			return nil, fmt.Errorf("isa: truncated program at instruction %d", i)
		}
		ctrl := ws[0]
		ws = ws[1:]
		in := Inst{Line: int(uint32(ctrl >> 3))}
		for slot := 0; slot < 3; slot++ {
			if ctrl>>slot&1 == 0 {
				continue
			}
			op, used, err := DecodeOp(ws)
			if err != nil {
				return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
			}
			ws = ws[used:]
			switch slot {
			case 0:
				in.IOp = op
			case 1:
				in.MOp = op
			case 2:
				in.FOp = op
			}
		}
		p.Insts = append(p.Insts, in)
	}
	if len(ws) != 0 {
		return nil, fmt.Errorf("isa: %d trailing words after program", len(ws))
	}
	return p, nil
}
