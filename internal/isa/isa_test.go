package isa

import (
	"testing"
	"testing/quick"
)

func TestUnitOf(t *testing.T) {
	cases := []struct {
		op   Opcode
		unit Unit
	}{
		{ADD, UnitInt}, {MOV, UnitInt}, {BR, UnitInt}, {HALT, UnitInt},
		{JMPR, UnitInt}, {EMPTY, UnitInt},
		{LD, UnitMem}, {ST, UnitMem}, {SEND, UnitMem}, {LEA, UnitMem},
		{TLBW, UnitMem}, {MRETRY, UnitMem}, {RSTW, UnitMem}, {DIRCNT, UnitMem},
		{FADD, UnitFP}, {FDIV, UnitFP}, {ITOF, UnitFP}, {FTOI, UnitFP},
	}
	for _, c := range cases {
		if got := c.op.UnitOf(); got != c.unit {
			t.Errorf("%s.UnitOf() = %v, want %v", c.op, got, c.unit)
		}
	}
}

func TestIsPrivileged(t *testing.T) {
	priv := []Opcode{LDP, STP, SETPTR, SENDN, TLBW, TLBINV, BSW, BSR, MRETRY, RSTW, DIRLOG, DIRCNT}
	for _, op := range priv {
		if !op.IsPrivileged() {
			t.Errorf("%s should be privileged", op)
		}
	}
	unpriv := []Opcode{ADD, LD, ST, LDSY, STSY, SEND, LEA, GPROBE, BR, HALT, FADD}
	for _, op := range unpriv {
		if op.IsPrivileged() {
			t.Errorf("%s should not be privileged", op)
		}
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Opcode{BR, BRT, BRF, JMPR} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	for _, op := range []Opcode{ADD, LD, HALT, SEND} {
		if op.IsBranch() {
			t.Errorf("%s should not be a branch", op)
		}
	}
}

func TestRegConstructors(t *testing.T) {
	if r := Int(5); r.Class != RInt || r.Index != 5 || r.Cluster != ClusterSelf {
		t.Errorf("Int(5) = %+v", r)
	}
	if r := FP(3); r.Class != RFP || r.Index != 3 {
		t.Errorf("FP(3) = %+v", r)
	}
	if r := GCC(1); r.Class != RGCC {
		t.Errorf("GCC(1) = %+v", r)
	}
	if r := Remote(2, Int(7)); r.Cluster != 2 || r.Index != 7 {
		t.Errorf("Remote = %+v", r)
	}
	if !(Reg{}).IsZero() || Int(0).IsZero() {
		t.Error("IsZero misclassifies")
	}
}

func TestRegString(t *testing.T) {
	cases := map[string]Reg{
		"i3":    Int(3),
		"f12":   FP(12),
		"gcc7":  GCC(7),
		"net":   Spec(SpecNet),
		"evq":   Spec(SpecEvq),
		"node":  Spec(SpecNode),
		"thr":   Spec(SpecThr),
		"cyc":   Spec(SpecCyc),
		"@2.i5": Remote(2, Int(5)),
		"@0.f1": Remote(0, FP(1)),
		"-":     {},
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegDescRoundTrip(t *testing.T) {
	f := func(vt, cl uint8, class uint8, idx uint8) bool {
		vthread := int(vt % NumVThreads)
		cluster := int(cl % NumClusters)
		r := Reg{Class: RegClass(class%4 + 1), Index: idx, Cluster: ClusterSelf}
		gotVT, gotCL, gotR := UnpackRegDesc(RegDesc(vthread, cluster, r))
		return gotVT == vthread && gotCL == cluster && gotR == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstWidthAndOps(t *testing.T) {
	in := Inst{IOp: &Op{Code: ADD}, FOp: &Op{Code: FADD}}
	if in.Width() != 2 {
		t.Errorf("Width = %d, want 2", in.Width())
	}
	ops := in.Ops()
	if len(ops) != 2 || ops[0].Code != ADD || ops[1].Code != FADD {
		t.Errorf("Ops = %v", ops)
	}
	empty := Inst{}
	if empty.Width() != 0 || empty.String() != "nop" {
		t.Errorf("empty inst: width=%d str=%q", empty.Width(), empty.String())
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Code: ADD, Dst: Int(1), Src1: Int(2), Src2: Int(3)}, "add i1, i2, i3"},
		{Op{Code: ADD, Dst: Int(1), Src1: Int(2), Imm: 5, HasImm: true}, "add i1, i2, #5"},
		{Op{Code: LD, Dst: Int(1), Src1: Int(2), Imm: 3}, "ld i1, [i2+3]"},
		{Op{Code: ST, Src1: Int(2), Src2: Int(4), Imm: -1}, "st [i2-1], i4"},
		{Op{Code: MOVI, Dst: Int(1), Imm: 42, HasImm: true}, "movi i1, #42"},
		{Op{Code: BR, Imm: 7, HasImm: true}, "br #7"},
		{Op{Code: BRT, Src1: GCC(1), Label: "loop"}, "brt gcc1, loop"},
		{Op{Code: LDSY, Dst: Int(1), Src1: Int(2), Pre: SyncFull, Post: SyncEmpty}, "ldsy.fe i1, [i2]"},
		{Op{Code: SEND, Src1: Int(1), Src2: Int(2), Dst: Int(8), Imm: 3, HasImm: true}, "send i1, i2, i8, #3"},
		{Op{Code: HALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSyncCondString(t *testing.T) {
	if SyncAny.String() != "a" || SyncFull.String() != "f" || SyncEmpty.String() != "e" {
		t.Error("SyncCond strings wrong")
	}
}

func TestOpcodeStringsUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); op < opcodeCount; op++ {
		s := op.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{
		Insts: []Inst{
			{IOp: &Op{Code: MOVI, Dst: Int(1), Imm: 1, HasImm: true}},
			{IOp: &Op{Code: HALT}},
		},
		Labels: map[string]int{"start": 0},
	}
	s := p.String()
	if s == "" || p.Len() != 2 || p.Depth() != 2 {
		t.Errorf("Program: len=%d str=%q", p.Len(), s)
	}
}

func TestWordHelper(t *testing.T) {
	w := W(42)
	if w.Bits != 42 || w.Ptr {
		t.Errorf("W(42) = %+v", w)
	}
}

func TestIntALUFallbackClassification(t *testing.T) {
	// Every plain integer op must be schedulable on the memory unit's ALU.
	for _, op := range []Opcode{ADD, SUB, MUL, AND, OR, XOR, SHL, EQ, MOV, MOVI, BR, HALT, NOP} {
		if !op.IsIntALU() {
			t.Errorf("%s should be an int-ALU op", op)
		}
	}
	for _, op := range []Opcode{LD, FADD, SEND} {
		if op.IsIntALU() {
			t.Errorf("%s should not be an int-ALU op", op)
		}
	}
}
