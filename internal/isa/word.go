package isa

// Word is a 64-bit machine word together with its out-of-band pointer tag
// bit. Registers, memory words, and message body words all carry the tag so
// guarded pointers remain unforgeable as they move through the machine
// (Section 2; guarded pointers are described in reference [3]).
type Word struct {
	Bits uint64
	Ptr  bool
}

// W builds an untagged data word.
func W(bits uint64) Word { return Word{Bits: bits} }
