package isa

// Checkpoint support (DESIGN.md, "Checkpoint/restore"): packed word-slice
// encoding shared by every component that serializes tagged words. A
// slice of Words is written as its length, all Bits in one block, then
// the pointer tags as a bitmask — three bulk transfers instead of two
// tiny reads per word, which is what keeps restore (and Fork) cheap.

import "repro/internal/snap"

// EncodeWords writes ws in the packed block form. Both blocks stage
// through the writer's reusable buffer (RawU64s copies the staged words
// out before returning, so the two uses cannot overlap).
func EncodeWords(w *snap.Writer, ws []Word) {
	w.Len(len(ws))
	bits := w.Stage(len(ws))
	for i := range ws {
		bits[i] = ws[i].Bits
	}
	w.RawU64s(bits)
	ptrs := w.Stage((len(ws) + 63) / 64)
	for i := range ws {
		if ws[i].Ptr {
			ptrs[i/64] |= 1 << (i % 64)
		}
	}
	w.RawU64s(ptrs)
}

// DecodeWords reads a slice written by EncodeWords, bounded by max
// entries. The bit block is copied into the result before the reader's
// staging buffer is reused for the pointer mask.
func DecodeWords(r *snap.Reader, max int) []Word {
	n := r.Len(max)
	if r.Err() != nil || n == 0 {
		return nil
	}
	ws := make([]Word, n)
	bits := r.Stage(n)
	r.RawU64s(bits)
	if r.Err() != nil {
		return nil
	}
	for i := range ws {
		ws[i].Bits = bits[i]
	}
	ptrs := r.Stage((n + 63) / 64)
	r.RawU64s(ptrs)
	if r.Err() != nil {
		return nil
	}
	for i := range ws {
		ws[i].Ptr = ptrs[i/64]&(1<<(i%64)) != 0
	}
	return ws
}
