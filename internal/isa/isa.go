// Package isa defines the MAP instruction set architecture of the M-Machine:
// 3-wide instructions (integer, memory, and floating-point operations),
// register name spaces (per-cluster integer and FP files, global condition
// code registers, and register-mapped special queues), and the scoreboard
// and synchronization semantics those operations obey.
//
// The definitions here are shared by the assembler (internal/asm), the
// cluster pipeline model (internal/cluster), and the software runtime
// (internal/rt). They correspond to Section 2 and Figure 3 of the paper:
// each cluster is a 64-bit, three-issue processor with two integer ALUs
// (one of which, the memory unit, interfaces to the memory system) and one
// floating-point ALU.
package isa

import (
	"fmt"
	"slices"
	"strings"
)

// Machine-wide architectural constants from the paper.
const (
	NumClusters   = 4  // execution clusters per MAP chip
	NumVThreads   = 6  // resident V-Thread slots (4 user + event + exception)
	NumUserSlots  = 4  // user V-Thread slots
	EventSlot     = 4  // V-Thread slot running asynchronous event handlers
	ExceptionSlot = 5  // V-Thread slot running synchronous exception handlers
	NumIntRegs    = 16 // integer registers per H-Thread context
	NumFPRegs     = 16 // floating-point registers per H-Thread context
	NumGCCRegs    = 8  // global condition-code registers (4 pairs)
)

// RegClass discriminates the register name spaces visible to an operation.
type RegClass uint8

const (
	RNone RegClass = iota // no register (unused operand slot)
	RInt                  // integer register i0..i15
	RFP                   // floating-point register f0..f15
	RGCC                  // global condition-code register gcc0..gcc7
	RSpec                 // register-mapped special resource (net, evq, ...)
)

// Special register indices for RSpec. Reading net or evq pops the
// corresponding hardware queue and stalls issue while the queue is empty
// (Section 3.3, Section 4.1).
const (
	SpecNet  = iota // head of this cluster's message queue
	SpecEvq         // head of this cluster's event queue
	SpecNode        // this node's physical identifier (read-only)
	SpecThr         // this V-Thread's slot number (read-only)
	SpecCyc         // low bits of the node cycle counter (read-only)
)

// ClusterSelf marks a register reference that targets the issuing cluster's
// own register file. Cross-cluster destinations (writes to another H-Thread
// in the same V-Thread, Section 3.1) carry an explicit cluster number.
const ClusterSelf int8 = -1

// Reg names one architectural register.
type Reg struct {
	Class   RegClass
	Index   uint8
	Cluster int8 // ClusterSelf, or 0..3 for a cross-cluster destination
}

// IsZero reports whether the Reg is the zero value (no register).
func (r Reg) IsZero() bool { return r.Class == RNone }

// Int returns a local integer register reference.
func Int(i int) Reg { return Reg{Class: RInt, Index: uint8(i), Cluster: ClusterSelf} }

// FP returns a local floating-point register reference.
func FP(i int) Reg { return Reg{Class: RFP, Index: uint8(i), Cluster: ClusterSelf} }

// GCC returns a global condition-code register reference.
func GCC(i int) Reg { return Reg{Class: RGCC, Index: uint8(i), Cluster: ClusterSelf} }

// Spec returns a special register reference.
func Spec(i int) Reg { return Reg{Class: RSpec, Index: uint8(i), Cluster: ClusterSelf} }

// Remote returns a copy of r retargeted at another cluster's register file.
func Remote(cluster int, r Reg) Reg { r.Cluster = int8(cluster); return r }

func (r Reg) String() string {
	var s string
	switch r.Class {
	case RNone:
		return "-"
	case RInt:
		s = fmt.Sprintf("i%d", r.Index)
	case RFP:
		s = fmt.Sprintf("f%d", r.Index)
	case RGCC:
		s = fmt.Sprintf("gcc%d", r.Index)
	case RSpec:
		switch r.Index {
		case SpecNet:
			s = "net"
		case SpecEvq:
			s = "evq"
		case SpecNode:
			s = "node"
		case SpecThr:
			s = "thr"
		case SpecCyc:
			s = "cyc"
		default:
			s = fmt.Sprintf("spec%d", r.Index)
		}
	}
	if r.Cluster != ClusterSelf {
		return fmt.Sprintf("@%d.%s", r.Cluster, s)
	}
	return s
}

// Unit identifies one of the three function units in a cluster.
type Unit uint8

const (
	UnitInt Unit = iota // integer ALU
	UnitMem             // memory unit (second integer ALU + memory interface)
	UnitFP              // floating-point ALU
)

func (u Unit) String() string {
	switch u {
	case UnitInt:
		return "IU"
	case UnitMem:
		return "MU"
	case UnitFP:
		return "FU"
	}
	return "??"
}

// Opcode enumerates MAP operations.
type Opcode uint8

const (
	NOP Opcode = iota

	// Integer ALU operations (executable on the integer unit or, when that
	// slot is occupied, on the memory unit, which is also an integer ALU).
	ADD
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SHL
	SHR // logical right shift
	SRA // arithmetic right shift
	EQ
	NE
	LT
	LE
	GT
	GE
	MOV  // move register (or special source) to register
	MOVI // move immediate to register
	EMPTY
	BR   // unconditional branch
	BRT  // branch if source is non-zero
	BRF  // branch if source is zero
	JMPR // indirect jump to the instruction index in a register (DIP dispatch)
	HALT

	// Memory unit operations.
	LD     // load word: dst <- mem[src1+imm]
	ST     // store word: mem[src1+imm] <- src2
	LDSY   // synchronizing load with pre/postcondition on the sync bit
	STSY   // synchronizing store with pre/postcondition on the sync bit
	LDP    // privileged physical load (bypasses LTLB and block status)
	STP    // privileged physical store
	LEA    // guarded-pointer arithmetic: dst <- ptr(src1) + (src2|imm)
	SETPTR // privileged: forge a guarded pointer (src1=addr, imm packs len|perms)
	SEND   // atomic user-level message send (Section 4.1)
	SENDN  // privileged node-addressed send, priority 1 (system replies)
	GPROBE // probe the GTLB: dst <- home node id for virtual address src1
	TLBW   // privileged: install the 4-word LTLB entry held in src1..src1+3
	TLBINV // privileged: invalidate the LTLB entry for virtual page src1
	BSW    // privileged: set block status bits for the block containing src1
	BSR    // privileged: read block status bits into dst
	MRETRY // privileged: re-inject the faulted memory op held in src1..src1+3
	RSTW   // privileged: write a thread register named by descriptor src1
	DIRLOG // privileged: log sharer node src2 for block src1 in the directory
	DIRCNT // privileged: dst <- number of sharers recorded for block src1

	// Floating-point unit operations (IEEE 754 double).
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FMOV
	FEQ // FP compares write an integer or gcc destination
	FLT
	FLE
	ITOF
	FTOI

	opcodeCount
)

var opcodeNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", MOD: "mod",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SRA: "sra",
	EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge",
	MOV: "mov", MOVI: "movi", EMPTY: "empty",
	BR: "br", BRT: "brt", BRF: "brf", JMPR: "jmpr", HALT: "halt",
	LD: "ld", ST: "st", LDSY: "ldsy", STSY: "stsy", LDP: "ldp", STP: "stp",
	LEA: "lea", SETPTR: "setptr", SEND: "send", SENDN: "sendn",
	GPROBE: "gprobe", TLBW: "tlbw", TLBINV: "tlbinv",
	BSW: "bsw", BSR: "bsr", MRETRY: "mretry", RSTW: "rstw",
	DIRLOG: "dirlog", DIRCNT: "dircnt",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FMOV: "fmov", FEQ: "feq", FLT: "flt", FLE: "fle", ITOF: "itof", FTOI: "ftoi",
}

func (o Opcode) String() string {
	if int(o) < len(opcodeNames) && opcodeNames[o] != "" {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// UnitOf returns the function unit class an opcode belongs to. Integer
// operations may execute on either integer ALU; memory operations only on
// the memory unit; FP operations only on the FP unit.
func (o Opcode) UnitOf() Unit {
	switch {
	case o >= LD && o <= DIRCNT:
		return UnitMem
	case o >= FADD && o <= FTOI:
		return UnitFP
	default:
		return UnitInt
	}
}

// IsIntALU reports whether the op is a plain integer-ALU op that may be
// scheduled on the memory unit's ALU as well.
func (o Opcode) IsIntALU() bool { return o >= ADD && o <= HALT || o == NOP }

// IsBranch reports whether the op changes control flow.
func (o Opcode) IsBranch() bool { return o == BR || o == BRT || o == BRF || o == JMPR }

// IsPrivileged reports whether the op may only issue from a privileged
// (system) thread: the event and exception V-Threads and boot code.
func (o Opcode) IsPrivileged() bool {
	switch o {
	case LDP, STP, SETPTR, SENDN, TLBW, TLBINV, BSW, BSR, MRETRY, RSTW, DIRLOG, DIRCNT:
		return true
	}
	return false
}

// SyncCond is the pre- or postcondition on a word's synchronization bit for
// LDSY/STSY (Section 2: "Special load and store operations may specify a
// precondition and a postcondition on the synchronization bit").
type SyncCond uint8

const (
	SyncAny   SyncCond = iota // no precondition / leave bit unchanged
	SyncFull                  // precondition: bit must be full / post: set full
	SyncEmpty                 // precondition: bit must be empty / post: set empty
)

func (c SyncCond) String() string {
	switch c {
	case SyncFull:
		return "f"
	case SyncEmpty:
		return "e"
	}
	return "a"
}

// Op is a single operation occupying one of an instruction's three slots.
type Op struct {
	Code   Opcode
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int64
	HasImm bool
	Pre    SyncCond // LDSY/STSY precondition
	Post   SyncCond // LDSY/STSY postcondition
	Pri    uint8    // SEND priority (0 = user requests, 1 = system replies)
	Label  string   // symbolic branch target, resolved by the assembler
}

func (o *Op) String() string {
	if o == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(o.Code.String())
	if o.Code == LDSY || o.Code == STSY {
		fmt.Fprintf(&b, ".%s%s", o.Pre, o.Post)
	}
	args := make([]string, 0, 3)
	switch o.Code {
	case LD, LDSY, LDP:
		args = append(args, o.Dst.String(), memOperand(o.Src1, o.Imm))
	case ST, STSY, STP:
		args = append(args, memOperand(o.Src1, o.Imm), o.Src2.String())
	case BR:
		args = append(args, o.target())
	case BRT, BRF:
		args = append(args, o.Src1.String(), o.target())
	case MOVI:
		args = append(args, o.Dst.String(), fmt.Sprintf("#%d", o.Imm))
	case SEND, SENDN:
		args = append(args, o.Src1.String(), o.Src2.String(), o.Dst.String(), fmt.Sprintf("#%d", o.Imm))
	default:
		if !o.Dst.IsZero() {
			args = append(args, o.Dst.String())
		}
		if !o.Src1.IsZero() {
			args = append(args, o.Src1.String())
		}
		if !o.Src2.IsZero() {
			args = append(args, o.Src2.String())
		} else if o.HasImm {
			args = append(args, fmt.Sprintf("#%d", o.Imm))
		}
	}
	if len(args) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(args, ", "))
	}
	return b.String()
}

func (o *Op) target() string {
	if o.Label != "" {
		return o.Label
	}
	return fmt.Sprintf("#%d", o.Imm)
}

func memOperand(base Reg, off int64) string {
	switch {
	case off > 0:
		return fmt.Sprintf("[%s+%d]", base, off)
	case off < 0:
		return fmt.Sprintf("[%s%d]", base, off)
	}
	return fmt.Sprintf("[%s]", base)
}

// Inst is one 3-wide MAP instruction: up to one integer, one memory, and
// one floating-point operation that issue together (Section 2: "All
// operations in a single instruction issue together but may complete out of
// order").
type Inst struct {
	IOp  *Op
	MOp  *Op
	FOp  *Op
	Line int // source line for diagnostics
}

// Ops returns the populated operation slots in unit order.
func (in *Inst) Ops() []*Op {
	ops := make([]*Op, 0, 3)
	if in.IOp != nil {
		ops = append(ops, in.IOp)
	}
	if in.MOp != nil {
		ops = append(ops, in.MOp)
	}
	if in.FOp != nil {
		ops = append(ops, in.FOp)
	}
	return ops
}

// Width returns the number of populated operation slots.
func (in *Inst) Width() int {
	n := 0
	if in.IOp != nil {
		n++
	}
	if in.MOp != nil {
		n++
	}
	if in.FOp != nil {
		n++
	}
	return n
}

func (in *Inst) String() string {
	parts := make([]string, 0, 3)
	for _, op := range []*Op{in.IOp, in.MOp, in.FOp} {
		if op != nil {
			parts = append(parts, op.String())
		}
	}
	if len(parts) == 0 {
		return "nop"
	}
	return strings.Join(parts, " | ")
}

// Program is an assembled sequence of instructions for one H-Thread.
//
// Snapshots carry programs in the binary word form (EncodeProgram /
// DecodeProgram embedded in the cluster stream), not field by field:
// Name and Insts round-trip through that encoding; Labels are an
// assembler artifact and are deliberately not preserved.
type Program struct {
	Name   string         `snap:"derived,round-trips via the EncodeProgram word form"`
	Insts  []Inst         `snap:"derived,round-trips via the EncodeProgram word form"`
	Labels map[string]int `snap:"derived,assembler artifact, deliberately dropped"` // label -> instruction index
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Insts) }

// Depth returns the static schedule depth (instruction count), the metric
// of Figure 5 and Section 3.1.
func (p *Program) Depth() int { return len(p.Insts) }

// String disassembles the program. Labels sharing an instruction index
// print in name order so the disassembly is stable run to run.
func (p *Program) String() string {
	names := make([]string, 0, len(p.Labels))
	for name := range p.Labels {
		names = append(names, name)
	}
	slices.Sort(names)
	rev := make(map[int][]string)
	for _, name := range names {
		rev[p.Labels[name]] = append(rev[p.Labels[name]], name)
	}
	var b strings.Builder
	for i := range p.Insts {
		for _, l := range rev[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %s\n", p.Insts[i].String())
	}
	return b.String()
}

// RegDesc packs a thread-register destination descriptor into a word, used
// by event records and the RSTW operation ("memory-mapped addressing of
// thread registers", Section 4.3 discussion). Layout (low to high bits):
// index[8] | class[4] | cluster[4] | vthread[4].
func RegDesc(vthread, cluster int, r Reg) uint64 {
	return uint64(r.Index) | uint64(r.Class)<<8 | uint64(cluster)<<12 | uint64(vthread)<<16
}

// UnpackRegDesc decodes a RegDesc word.
func UnpackRegDesc(w uint64) (vthread, cluster int, r Reg) {
	r = Reg{
		Class:   RegClass((w >> 8) & 0xF),
		Index:   uint8(w & 0xFF),
		Cluster: ClusterSelf,
	}
	cluster = int((w >> 12) & 0xF)
	vthread = int((w >> 16) & 0xF)
	return vthread, cluster, r
}
