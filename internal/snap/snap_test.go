package snap

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0xdeadbeefcafe)
	w.I64(-42)
	w.Int(7)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.Bytes([]byte{1, 2, 3})
	w.U64s([]uint64{9, 8, 7})
	w.RawU64s([]uint64{5, 6})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.U64(); got != 0xdeadbeefcafe {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.String(16); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(16); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.U64s(16); len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Errorf("U64s = %v", got)
	}
	raw := make([]uint64, 2)
	r.RawU64s(raw)
	if raw[0] != 5 || raw[1] != 6 {
		t.Errorf("RawU64s = %v", raw)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1)
	w.String("payload")
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.U64()
		r.String(64)
		if err := r.Err(); err == nil {
			t.Fatalf("truncation at %d of %d went undetected", cut, len(full))
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestBoundsAndStickiness(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Len(1 << 40) // absurd count
	w.U64(123)
	r := NewReader(&buf)
	if n := r.Len(1000); n != 0 || r.Err() == nil {
		t.Fatalf("oversized count accepted: n=%d err=%v", n, r.Err())
	}
	first := r.Err()
	// Sticky: later reads keep the first error and return zero values.
	if got := r.U64(); got != 0 || r.Err() != first {
		t.Errorf("error did not stick: got %d, err %v", got, r.Err())
	}

	// Bad boolean byte.
	r2 := NewReader(bytes.NewReader([]byte{7}))
	r2.Bool()
	if r2.Err() == nil || !strings.Contains(r2.Err().Error(), "boolean") {
		t.Errorf("bad boolean byte: err %v", r2.Err())
	}
}

// TestOversizedLengthCapped pins the capped-allocation contract: a
// corrupt length field that passes the caller's structural bound must
// fail descriptively after at most one chunk of reading — it must never
// size an allocation from the corrupt count up front.
func TestOversizedLengthCapped(t *testing.T) {
	// A stream claiming a ~1 GiB payload that isn't there. With a known
	// remaining length the claim is rejected before any read.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Len(1 << 30)
	w.U64(0x1234)
	stream := buf.Bytes()

	r := NewReader(bytes.NewReader(stream))
	r.Limit(int64(len(stream)))
	if got := r.Bytes(1 << 31); got != nil || r.Err() == nil {
		t.Fatalf("limited reader: oversized Bytes accepted: %v, err %v", len(got), r.Err())
	}
	if !strings.Contains(r.Err().Error(), "remaining") {
		t.Errorf("limited reader error not descriptive: %v", r.Err())
	}

	// Without a known size, the chunked growth path detects truncation
	// after at most maxPrealloc bytes.
	for _, decode := range map[string]func(*Reader){
		"Bytes": func(r *Reader) { r.Bytes(1 << 31) },
		"U64s":  func(r *Reader) { r.U64s(1 << 31) },
		"Bools": func(r *Reader) { r.Bools(1 << 31) },
	} {
		r := NewReader(bytes.NewReader(stream))
		decode(r)
		if r.Err() == nil || !strings.Contains(r.Err().Error(), "truncated") {
			t.Errorf("unlimited reader: oversized length: err %v", r.Err())
		}
	}
}

// TestLargeSliceRoundTrip exercises the multi-chunk paths (payloads
// larger than maxPrealloc) end to end.
func TestLargeSliceRoundTrip(t *testing.T) {
	const words = maxPrealloc/8 + 1000 // spills into a second chunk
	vs := make([]uint64, words)
	for i := range vs {
		vs[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	bs := make([]bool, 3*64*1024)
	for i := range bs {
		bs[i] = i%3 == 0
	}
	p := make([]byte, maxPrealloc+4096)
	for i := range p {
		p[i] = byte(i)
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64s(vs)
	w.Bools(bs)
	w.Bytes(p)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Limit(int64(buf.Len()))
	gotVs := r.U64s(words)
	gotBs := r.Bools(len(bs))
	gotP := r.Bytes(len(p))
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if gotVs[i] != vs[i] {
			t.Fatalf("U64s[%d] = %#x, want %#x", i, gotVs[i], vs[i])
		}
	}
	for i := range bs {
		if gotBs[i] != bs[i] {
			t.Fatalf("Bools[%d] = %v, want %v", i, gotBs[i], bs[i])
		}
	}
	if !bytes.Equal(gotP, p) {
		t.Fatal("Bytes multi-chunk round trip mismatch")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")

	// A failing producer must leave nothing behind — not the target, not
	// the temporary.
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial")); err != nil {
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatalf("failing write: err = %v, want %v", err, boom)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write left %s behind (stat err %v)", path, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed write left %d stray files (first: %s)", len(ents), ents[0].Name())
	}

	// A successful write replaces any prior content in one step and the
	// temporary is gone.
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("new contents"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("read back %q", got)
	}
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("successful write left %d files in dir, want 1", len(ents))
	}

	// Relative path: the directory component is empty, syncDir falls back
	// to ".".
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	err = WriteFileAtomic("rel.ckpt", func(w io.Writer) error {
		_, err := w.Write([]byte("rel"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile("rel.ckpt"); err != nil || string(got) != "rel" {
		t.Fatalf("relative write: %q, %v", got, err)
	}
}
