package snap

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0xdeadbeefcafe)
	w.I64(-42)
	w.Int(7)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.Bytes([]byte{1, 2, 3})
	w.U64s([]uint64{9, 8, 7})
	w.RawU64s([]uint64{5, 6})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if got := r.U64(); got != 0xdeadbeefcafe {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.String(16); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes(16); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.U64s(16); len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Errorf("U64s = %v", got)
	}
	raw := make([]uint64, 2)
	r.RawU64s(raw)
	if raw[0] != 5 || raw[1] != 6 {
		t.Errorf("RawU64s = %v", raw)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1)
	w.String("payload")
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.U64()
		r.String(64)
		if err := r.Err(); err == nil {
			t.Fatalf("truncation at %d of %d went undetected", cut, len(full))
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncation at %d: unexpected error %v", cut, err)
		}
	}
}

func TestBoundsAndStickiness(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Len(1 << 40) // absurd count
	w.U64(123)
	r := NewReader(&buf)
	if n := r.Len(1000); n != 0 || r.Err() == nil {
		t.Fatalf("oversized count accepted: n=%d err=%v", n, r.Err())
	}
	first := r.Err()
	// Sticky: later reads keep the first error and return zero values.
	if got := r.U64(); got != 0 || r.Err() != first {
		t.Errorf("error did not stick: got %d, err %v", got, r.Err())
	}

	// Bad boolean byte.
	r2 := NewReader(bytes.NewReader([]byte{7}))
	r2.Bool()
	if r2.Err() == nil || !strings.Contains(r2.Err().Error(), "boolean") {
		t.Errorf("bad boolean byte: err %v", r2.Err())
	}
}
