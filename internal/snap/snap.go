// Package snap is the binary codec under the checkpoint/restore subsystem
// (see DESIGN.md, "Checkpoint/restore"): a thin little-endian
// writer/reader pair over io.Writer/io.Reader with sticky error handling,
// so the per-package state encoders read as straight-line field lists
// instead of error-plumbing.
//
// The codec is deliberately primitive — unsigned and signed 64-bit words,
// booleans, length-prefixed byte strings and word slices — because the
// snapshot format is defined entirely by the call sequence of the
// encoders in each component package. Robustness against corrupt or
// truncated input lives here: every length read is bounded by the caller
// (Len), every primitive read fails cleanly at EOF, and the first error
// sticks, so a decoder can run an entire field list and check Err once.
package snap

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a snapshot-style stream to path with
// crash-dump discipline: the stream is produced into a sibling temporary
// file, synced to stable storage, and renamed into place only if every
// write (and Close) succeeded, so a reader never observes a half-written
// snapshot at path — exactly the property `msim -restore` and forensic
// tooling rely on. The containing directory is fsynced after the rename,
// so once WriteFileAtomic returns the snapshot survives power loss, not
// just process death — the durability msimd's checkpoint spool needs
// before acknowledging a session as suspended. Any failure removes the
// temporary file and reports the first error.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable. An
// empty dir means the path was relative to the working directory.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Writer serializes primitives to an io.Writer. The first write error
// sticks; subsequent calls are no-ops.
type Writer struct {
	w       io.Writer
	err     error
	buf     [8]byte
	scratch []byte   // reused bulk-transfer buffer (RawU64s)
	stage   []uint64 // reused staging buffer (Stage)
}

// Stage returns a zeroed, reusable word buffer of length n for
// assembling a bulk block that is immediately passed to RawU64s (which
// copies it out before returning). The buffer is invalidated by the next
// Stage call.
func (w *Writer) Stage(n int) []uint64 {
	if cap(w.stage) < n {
		w.stage = make([]uint64, n)
	}
	s := w.stage[:n]
	clear(s)
	return s
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, nil if none.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// U64 writes an unsigned 64-bit word.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.write(w.buf[:])
}

// I64 writes a signed 64-bit word.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as a signed 64-bit word.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// Len writes a slice length (the counterpart of Reader.Len).
func (w *Writer) Len(n int) { w.U64(uint64(n)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.Len(len(p))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// U64s writes a length-prefixed slice of unsigned words in one Write.
func (w *Writer) U64s(vs []uint64) {
	w.Len(len(vs))
	w.RawU64s(vs)
}

// RawU64s writes the words of vs without a length prefix (for fixed-size
// arrays whose length is implied by the format). The staging buffer is
// reused across calls, so bulk sections (SDRAM chunks, register blocks)
// do not allocate per call.
func (w *Writer) RawU64s(vs []uint64) {
	if w.err != nil || len(vs) == 0 {
		return
	}
	if cap(w.scratch) < len(vs)*8 {
		w.scratch = make([]byte, len(vs)*8)
	}
	buf := w.scratch[:len(vs)*8]
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	w.write(buf)
}

// Bools writes a length-prefixed boolean slice packed as a bitmask, so a
// register file's scoreboard or a pointer-tag column costs words, not
// bytes-per-bit round trips.
func (w *Writer) Bools(bs []bool) {
	w.Len(len(bs))
	words := w.Stage((len(bs) + 63) / 64)
	for i, b := range bs {
		if b {
			words[i/64] |= 1 << (i % 64)
		}
	}
	w.RawU64s(words)
}

// maxPrealloc caps how many bytes any decode may allocate ahead of the
// data actually arriving from the stream (1 MiB). Larger sections grow in
// chunks as reads succeed, so a corrupt length field costs at most one
// chunk before the truncation is detected — it can never drive a
// multi-gigabyte allocation attempt. Streams whose total size is known
// (Limit) reject oversized lengths before allocating anything.
const maxPrealloc = 1 << 20

// Reader deserializes primitives from an io.Reader. The first error
// (including EOF, reported as an unexpected-EOF decode error) sticks, and
// every subsequent read returns zero values.
type Reader struct {
	r       io.Reader
	err     error
	remain  int64 // bytes left in the stream when known, -1 otherwise
	buf     [8]byte
	scratch []byte   // reused bulk-transfer buffer (RawU64s)
	stage   []uint64 // reused staging buffer (Stage)
	memo    map[string]any
}

// Stage returns a reusable word buffer of length n for receiving a bulk
// block via RawU64s. The buffer is invalidated by the next Stage call;
// contents are unspecified until filled.
func (r *Reader) Stage(n int) []uint64 {
	if cap(r.stage) < n {
		r.stage = make([]uint64, n)
	}
	return r.stage[:n]
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r, remain: -1} }

// Limit declares that at most n more bytes remain in the underlying
// stream. Callers decoding from an in-memory buffer or a file of known
// size should set it: any length field that claims more data than the
// stream can possibly hold then fails descriptively before a single byte
// of it is allocated or read.
func (r *Reader) Limit(n int64) { r.remain = n }

// claim validates that n more bytes of payload are plausible before any
// allocation is sized from a decoded length field.
func (r *Reader) claim(n int64) bool {
	if r.err != nil {
		return false
	}
	if r.remain >= 0 && n > r.remain {
		r.Fail(fmt.Errorf("snap: length %d exceeds the %d bytes remaining in the stream", n, r.remain))
		return false
	}
	return true
}

// Memo returns per-stream scratch space for decoders that share work
// across one stream — e.g. deduplicating identical embedded programs, so
// restoring an n-node machine decodes each handler program once instead
// of n times.
func (r *Reader) Memo() map[string]any {
	if r.memo == nil {
		r.memo = make(map[string]any)
	}
	return r.memo
}

// Err returns the first read error, nil if none.
func (r *Reader) Err() error { return r.err }

// Fail records err (if the reader has not already failed) so decoders can
// surface validation errors through the same sticky channel.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if r.remain >= 0 && int64(len(p)) > r.remain {
		r.err = fmt.Errorf("snap: truncated input (need %d bytes, %d remain)", len(p), r.remain)
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("snap: truncated input")
		}
		r.err = err
		return false
	}
	if r.remain >= 0 {
		r.remain -= int64(len(p))
	}
	return true
}

// U64 reads an unsigned 64-bit word.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:])
}

// I64 reads a signed 64-bit word.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int stored as a signed 64-bit word.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a one-byte boolean.
func (r *Reader) Bool() bool {
	if !r.read(r.buf[:1]) {
		return false
	}
	switch r.buf[0] {
	case 0:
		return false
	case 1:
		return true
	}
	r.Fail(fmt.Errorf("snap: bad boolean byte %#x", r.buf[0]))
	return false
}

// Len reads a slice length and validates it against max, the caller's
// structural bound; a corrupt count fails cleanly here instead of driving
// a huge allocation or a runaway loop downstream.
func (r *Reader) Len(max int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(max) {
		r.Fail(fmt.Errorf("snap: count %d exceeds bound %d", n, max))
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice bounded by max. The
// allocation grows in maxPrealloc chunks as the stream delivers, so a
// corrupt length inside the bound fails at the truncation point instead
// of attempting one huge up-front allocation.
func (r *Reader) Bytes(max int) []byte {
	n := r.Len(max)
	if r.err != nil || n == 0 || !r.claim(int64(n)) {
		return nil
	}
	p := make([]byte, min(n, maxPrealloc))
	if !r.read(p) {
		return nil
	}
	for len(p) < n {
		off := len(p)
		p = append(p, make([]byte, min(n-off, maxPrealloc))...)
		if !r.read(p[off:]) {
			return nil
		}
	}
	return p
}

// String reads a length-prefixed string bounded by max bytes.
func (r *Reader) String(max int) string { return string(r.Bytes(max)) }

// U64s reads a length-prefixed word slice bounded by max entries,
// growing the allocation chunk-wise like Bytes.
func (r *Reader) U64s(max int) []uint64 {
	const chunkWords = maxPrealloc / 8
	n := r.Len(max)
	if r.err != nil || n == 0 || !r.claim(int64(n)*8) {
		return nil
	}
	vs := make([]uint64, min(n, chunkWords))
	r.RawU64s(vs)
	for len(vs) < n && r.err == nil {
		off := len(vs)
		vs = append(vs, make([]uint64, min(n-off, chunkWords))...)
		r.RawU64s(vs[off:])
	}
	if r.err != nil {
		return nil
	}
	return vs
}

// Bools reads a boolean slice written by Writer.Bools, bounded by max
// entries. The backing words stream through the staging buffer one chunk
// at a time, so the pre-read allocation stays capped.
func (r *Reader) Bools(max int) []bool {
	const chunkWords = maxPrealloc / 8
	n := r.Len(max)
	nw := (n + 63) / 64
	if r.err != nil || !r.claim(int64(nw)*8) {
		return nil
	}
	var bs []bool
	for w := 0; w < nw; w += chunkWords {
		words := r.Stage(min(nw-w, chunkWords))
		r.RawU64s(words)
		if r.err != nil {
			return nil
		}
		lim := min(n-w*64, len(words)*64)
		if bs == nil {
			bs = make([]bool, 0, min(n, maxPrealloc))
		}
		for i := 0; i < lim; i++ {
			bs = append(bs, words[i/64]&(1<<(i%64)) != 0)
		}
	}
	return bs
}

// RawU64s fills dst with exactly len(dst) words (no length prefix). The
// staging buffer is reused across calls and never grows past one chunk,
// however large dst is.
func (r *Reader) RawU64s(dst []uint64) {
	const chunkWords = maxPrealloc / 8
	for len(dst) > 0 && r.err == nil {
		c := min(len(dst), chunkWords)
		if cap(r.scratch) < c*8 {
			r.scratch = make([]byte, c*8)
		}
		buf := r.scratch[:c*8]
		if !r.read(buf) {
			return
		}
		for i := 0; i < c; i++ {
			dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		dst = dst[c:]
	}
}
