// Package snaptest is the runtime complement to the snapfields static
// pass (DESIGN.md, "Static analysis"): where snapfields proves every
// serializable field is *referenced* on the encode and decode paths,
// snaptest proves the reference actually carries the value. Fields
// mutates each non-derived field of a snapshot-covered struct in place
// and asserts that (1) the mutation is visible in the encoded stream —
// the encoder did not silently drop the field — and (2) decoding the
// mutated stream and re-encoding reproduces it byte for byte — the
// decoder did not silently discard it.
//
// Unexported fields are reached with reflect + unsafe, so packages use
// internal test files only to supply custom mutators for fields whose
// values the decoder validates (indices, capacities, nested structs).
package snaptest

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	"repro/internal/snap"
)

// Codec adapts one snapshot-covered struct to the field check.
type Codec[T any] struct {
	// Encode serializes the value's current state.
	Encode func(*T) []byte
	// Decode reconstructs a value from a stream; it returns the codec
	// error so the check can distinguish "field dropped" from "mutator
	// produced a value the decoder rejects".
	Decode func([]byte) (*T, error)
	// Mutate overrides the default bit-flip for named fields; a mutator
	// changes the field to a different valid value and returns the undo.
	Mutate map[string]func(*T) func()
	// Skip names fields excluded for a stated reason beyond the
	// snap:"derived" tag (which is honored automatically).
	Skip map[string]string
}

// Encode runs f against a fresh in-memory Writer and returns the bytes.
func Encode(t *testing.T, f func(*snap.Writer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	f(w)
	if err := w.Err(); err != nil {
		t.Fatalf("snaptest: encode: %v", err)
	}
	return buf.Bytes()
}

// Fields checks every serializable field of *v, as described in the
// package comment.
func Fields[T any](t *testing.T, v *T, c Codec[T]) {
	t.Helper()
	rv := reflect.ValueOf(v).Elem()
	rt := rv.Type()
	if rt.Kind() != reflect.Struct {
		t.Fatalf("snaptest: %s is not a struct", rt)
	}
	base := c.Encode(v)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if tag := f.Tag.Get("snap"); tag == "derived" || strings.HasPrefix(tag, "derived,") {
			continue
		}
		if reason, ok := c.Skip[f.Name]; ok {
			t.Logf("snaptest: skipping %s.%s: %s", rt.Name(), f.Name, reason)
			continue
		}
		var undo func()
		if mut, ok := c.Mutate[f.Name]; ok {
			undo = mut(v)
		} else {
			u, err := defaultMutate(settable(rv.Field(i)))
			if err != nil {
				t.Errorf("snaptest: field %s.%s: %v — provide a Mutate entry", rt.Name(), f.Name, err)
				continue
			}
			undo = u
		}

		mutated := c.Encode(v)
		if bytes.Equal(mutated, base) {
			t.Errorf("snaptest: field %s.%s: mutation is invisible to the encoder — the snapshot drops this field", rt.Name(), f.Name)
			undo()
			continue
		}
		restored, err := c.Decode(mutated)
		if err != nil {
			t.Errorf("snaptest: field %s.%s: decoding the mutated snapshot failed: %v — the mutator must produce a valid value", rt.Name(), f.Name, err)
			undo()
			continue
		}
		if again := c.Encode(restored); !bytes.Equal(again, mutated) {
			t.Errorf("snaptest: field %s.%s: re-encode after decode differs — the field does not round-trip", rt.Name(), f.Name)
		}
		undo()
		if now := c.Encode(v); !bytes.Equal(now, base) {
			t.Fatalf("snaptest: field %s.%s: undo did not restore the baseline encoding", rt.Name(), f.Name)
		}
	}
}

// settable returns rv as a settable value, using unsafe for unexported
// fields (rv must be addressable, which Fields guarantees by requiring
// a pointer to the struct).
func settable(rv reflect.Value) reflect.Value {
	if rv.CanSet() {
		return rv
	}
	return reflect.NewAt(rv.Type(), unsafe.Pointer(rv.UnsafeAddr())).Elem()
}

// defaultMutate applies a self-evident valid mutation for scalar kinds
// and non-empty scalar slices, returning the undo.
func defaultMutate(fv reflect.Value) (func(), error) {
	switch fv.Kind() {
	case reflect.Bool:
		old := fv.Bool()
		fv.SetBool(!old)
		return func() { fv.SetBool(old) }, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		old := fv.Int()
		fv.SetInt(old ^ 1)
		return func() { fv.SetInt(old) }, nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		old := fv.Uint()
		fv.SetUint(old ^ 1)
		return func() { fv.SetUint(old) }, nil
	case reflect.String:
		old := fv.String()
		fv.SetString(old + "~")
		return func() { fv.SetString(old) }, nil
	case reflect.Slice:
		if fv.Len() == 0 {
			return nil, fmt.Errorf("slice is empty; populate it or mutate it explicitly")
		}
		return defaultMutate(settable(fv.Index(0)))
	default:
		return nil, fmt.Errorf("kind %s has no default mutation", fv.Kind())
	}
}
