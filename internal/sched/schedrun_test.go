package sched_test

// End-to-end compiler validation: programs produced by the list scheduler
// run on the full machine and must compute exactly what the host computes
// for the same dataflow graph — for the Figure 5 stencil and for random
// expression trees.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sched"
)

// runScheduled executes a scheduled program with the given input values at
// [256+i] (base register i1) and returns the stored result at [384] (base
// register i2).
func runScheduled(t *testing.T, p *isa.Program, inputs []float64) float64 {
	t.Helper()
	s, err := core.NewSim(core.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.MapLocal(0, 0, 2, true)
	for i, v := range inputs {
		if err := s.Poke(0, 256+uint64(i), math.Float64bits(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Prelude: i1 = input base, i2 = output base, f1 = 2.0, f2 = 3.0.
	prelude := `
    movi i1, #256
    movi i2, #384
    movi i3, #2
    itof f1, i3
    movi i3, #3
    itof f2, i3
`
	full := prelude + p.String()
	if err := s.LoadASM(0, 0, 0, full); err != nil {
		t.Fatalf("reassembling scheduled program: %v\n%s", err, full)
	}
	if _, err := s.Run(100000); err != nil {
		t.Fatal(err)
	}
	bits, err := s.Peek(0, 384)
	if err != nil {
		t.Fatal(err)
	}
	return math.Float64frombits(bits)
}

func TestScheduledStencilComputesCorrectly(t *testing.T) {
	g := &sched.Graph{}
	a := g.Const(isa.FP(1))
	b := g.Const(isa.FP(2))
	var rs []*sched.Node
	for i := 0; i < 6; i++ {
		rs = append(rs, g.Load(isa.Int(1), int64(i)))
	}
	rc := g.Load(isa.Int(1), 6)
	u := g.Load(isa.Int(2), 0)
	tv := g.Add(g.Add(g.Mul(b, g.Sum(rs...)), g.Mul(a, rc)), u)
	g.Store(isa.Int(2), 0, tv)

	p, err := sched.Schedule(g, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []float64{1, 2, 3, 4, 5, 6, 7}
	// u at [i2] = [384] is staged separately below via the input slice at
	// 256..262 plus a poke of u; easier: extend inputs so [384] holds u.
	s := 0.0
	for _, v := range inputs[:6] {
		s += v
	}
	want := 3*s + 2*7 + 10

	sim, err := core.NewSim(core.Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	sim.MapLocal(0, 0, 2, true)
	for i, v := range inputs {
		if err := sim.Poke(0, 256+uint64(i), math.Float64bits(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Poke(0, 384, math.Float64bits(10)); err != nil {
		t.Fatal(err)
	}
	full := `
    movi i1, #256
    movi i2, #384
    movi i3, #2
    itof f1, i3
    movi i3, #3
    itof f2, i3
` + p.String()
	if err := sim.LoadASM(0, 0, 0, full); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	bits, err := sim.Peek(0, 384)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(bits); got != want {
		t.Errorf("scheduled stencil = %v, want %v\n%s", got, want, p)
	}
}

func TestRandomScheduledGraphsMatchHost(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nLeaves := 3 + rng.Intn(7)
		g := &sched.Graph{}
		type val struct {
			n *sched.Node
			v float64
		}
		inputs := make([]float64, nLeaves)
		var pool []val
		for i := 0; i < nLeaves; i++ {
			inputs[i] = float64(rng.Intn(7) + 1)
			pool = append(pool, val{g.Load(isa.Int(1), int64(i)), inputs[i]})
		}
		for len(pool) > 1 {
			i := rng.Intn(len(pool))
			a := pool[i]
			pool = append(pool[:i], pool[i+1:]...)
			j := rng.Intn(len(pool))
			b := pool[j]
			pool = append(pool[:j], pool[j+1:]...)
			var nv val
			switch rng.Intn(3) {
			case 0:
				nv = val{g.Add(a.n, b.n), a.v + b.v}
			case 1:
				nv = val{g.Sub(a.n, b.n), a.v - b.v}
			default:
				nv = val{g.Mul(a.n, b.n), a.v * b.v}
			}
			pool = append(pool, nv)
		}
		g.Store(isa.Int(2), 0, pool[0].n)
		p, err := sched.Schedule(g, sched.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := runScheduled(t, p, inputs)
		if got != pool[0].v {
			t.Errorf("seed %d: machine computed %v, host %v\nprogram:\n%s",
				seed, got, pool[0].v, p)
		}
	}
}
