// Package sched is a latency-aware list scheduler that compiles dataflow
// graphs into 3-wide MAP instructions for a single cluster — a miniature of
// the Multiflow compiler port the paper describes ("The Multiflow compiler
// ... is currently able to generate code for a single cluster",
// Section 5). Given an expression DAG of loads, floating-point arithmetic,
// and stores, it produces an isa.Program that pairs memory and FP
// operations in the same instruction the way Figure 5(a)'s hand schedule
// does, honouring operation latencies so the scoreboard stalls are
// minimized for the static schedule length.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Kind classifies graph nodes.
type Kind uint8

const (
	KindLoad  Kind = iota // load word: base register + offset
	KindConst             // value preloaded in an FP register (weights)
	KindAdd               // FP add
	KindSub               // FP subtract
	KindMul               // FP multiply
	KindStore             // store a computed value
)

// Node is one dataflow operation.
type Node struct {
	id   int
	kind Kind

	// Load/Store addressing: [baseReg + Off].
	Base isa.Reg
	Off  int64

	// Const: the preloaded register.
	Reg isa.Reg

	// Operands (for Add/Sub/Mul: two; Store: one).
	args []*Node

	// Scheduling state.
	succs    []*Node
	nPreds   int
	prio     int // critical-path length to any sink
	cycle    int // issue cycle assigned by the scheduler
	resultIn isa.Reg
}

// Graph accumulates a dataflow DAG. Build with the value-returning
// methods, then call Schedule.
type Graph struct {
	nodes  []*Node
	stores []*Node
}

func (g *Graph) add(n *Node) *Node {
	n.id = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Load introduces a memory load of [base+off].
func (g *Graph) Load(base isa.Reg, off int64) *Node {
	return g.add(&Node{kind: KindLoad, Base: base, Off: off})
}

// Const introduces a value already resident in an FP register (e.g. a
// weight loaded by the prelude).
func (g *Graph) Const(r isa.Reg) *Node {
	return g.add(&Node{kind: KindConst, Reg: r})
}

// Add returns a+b.
func (g *Graph) Add(a, b *Node) *Node {
	return g.add(&Node{kind: KindAdd, args: []*Node{a, b}})
}

// Sub returns a-b.
func (g *Graph) Sub(a, b *Node) *Node {
	return g.add(&Node{kind: KindSub, args: []*Node{a, b}})
}

// Mul returns a*b.
func (g *Graph) Mul(a, b *Node) *Node {
	return g.add(&Node{kind: KindMul, args: []*Node{a, b}})
}

// Store sinks v to [base+off].
func (g *Graph) Store(base isa.Reg, off int64, v *Node) {
	n := g.add(&Node{kind: KindStore, Base: base, Off: off, args: []*Node{v}})
	g.stores = append(g.stores, n)
}

// Sum reduces vs with a balanced tree of adds (shorter critical path than
// a linear chain, which the scheduler can then overlap with the loads).
func (g *Graph) Sum(vs ...*Node) *Node {
	if len(vs) == 0 {
		panic("sched: Sum of nothing")
	}
	for len(vs) > 1 {
		var next []*Node
		for i := 0; i+1 < len(vs); i += 2 {
			next = append(next, g.Add(vs[i], vs[i+1]))
		}
		if len(vs)%2 == 1 {
			next = append(next, vs[len(vs)-1])
		}
		vs = next
	}
	return vs[0]
}

// Latencies used for priority and issue modelling; they mirror the chip's
// defaults (load hit 3, FP 3).
const (
	latLoad = 3
	latFP   = 3
)

func (n *Node) latency() int {
	switch n.kind {
	case KindLoad:
		return latLoad
	case KindAdd, KindSub, KindMul:
		return latFP
	}
	return 1
}

// Config bounds the scheduler's resources.
type Config struct {
	// FPRegLow..FPRegHigh is the allocatable FP register range; registers
	// outside it are free for Const operands and the caller's prelude.
	FPRegLow, FPRegHigh int
}

// DefaultConfig allocates f3..f15, leaving f0..f2 for weights.
func DefaultConfig() Config { return Config{FPRegLow: 3, FPRegHigh: 15} }

// Schedule compiles the graph to a single-cluster program. The returned
// program ends with HALT; prepend any prelude (address/constant setup)
// before running it.
func Schedule(g *Graph, cfg Config) (*isa.Program, error) {
	if len(g.stores) == 0 {
		return nil, fmt.Errorf("sched: graph has no stores (dead code)")
	}
	// Wire successor edges and in-degrees.
	for _, n := range g.nodes {
		n.succs = nil
		n.nPreds = len(n.args)
	}
	for _, n := range g.nodes {
		for _, a := range n.args {
			a.succs = append(a.succs, n)
		}
	}
	// Priorities: longest path to a sink (classic list scheduling).
	order := topo(g)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		n.prio = n.latency()
		for _, s := range n.succs {
			if s.prio+n.latency() > n.prio {
				n.prio = s.prio + n.latency()
			}
		}
	}

	alloc := newRegAlloc(cfg)
	var insts []isa.Inst
	ready := []*Node{}
	for _, n := range g.nodes {
		if n.nPreds == 0 && n.kind != KindConst {
			ready = append(ready, n)
		}
		if n.kind == KindConst {
			// Consts are always available; retire them immediately.
			n.resultIn = n.Reg
			n.cycle = -1
			for _, s := range n.succs {
				s.nPreds--
				if s.nPreds == 0 {
					ready = append(ready, s)
				}
			}
		}
	}

	scheduled := 0
	total := 0
	for _, n := range g.nodes {
		if n.kind != KindConst {
			total++
		}
	}
	cycle := 0
	for scheduled < total {
		if cycle > 64*total+64 {
			return nil, fmt.Errorf("sched: no progress (register pressure too high?)")
		}
		// Candidates whose operands' results are available by this cycle.
		var memC, fpC []*Node
		for _, n := range ready {
			if n.availAt() > cycle {
				continue
			}
			switch n.kind {
			case KindLoad, KindStore:
				memC = append(memC, n)
			default:
				fpC = append(fpC, n)
			}
		}
		byPrio(memC)
		byPrio(fpC)

		// Issue the highest-priority candidate per unit whose register
		// needs can be met; register pressure throttles eager loads so a
		// long reduction does not exhaust the file.
		in := isa.Inst{}
		issuedAny := false
		for _, n := range memC {
			if !alloc.canIssue(n) {
				continue
			}
			op, err := emitMem(n, alloc)
			if err != nil {
				return nil, err
			}
			in.MOp = op
			n.retire(cycle, &ready)
			issuedAny = true
			scheduled++
			break
		}
		for _, n := range fpC {
			if !alloc.canIssue(n) {
				continue
			}
			op, err := emitFP(n, alloc)
			if err != nil {
				return nil, err
			}
			in.FOp = op
			n.retire(cycle, &ready)
			issuedAny = true
			scheduled++
			break
		}
		if issuedAny {
			insts = append(insts, in)
		}
		// Whether or not anything issued, time advances; an empty cycle is
		// a scoreboard stall the hardware takes at run time, so no
		// instruction is emitted for it and the static schedule stays
		// dense.
		cycle++
	}
	insts = append(insts, isa.Inst{IOp: &isa.Op{Code: isa.HALT}})
	return &isa.Program{Name: "sched", Insts: insts, Labels: map[string]int{}}, nil
}

// availAt returns the first instruction slot n may occupy: strictly after
// every producer's slot. An operation must not share an instruction with
// its producer (all operations of an instruction issue together, so a
// same-slot consumer would read the stale pre-issue register value); any
// remaining latency is absorbed by the scoreboard at run time, which is
// exactly how Figure 5(a)'s hand schedule packs a load beside the add that
// consumes the previous load.
func (n *Node) availAt() int {
	at := 0
	for _, a := range n.args {
		if a.kind == KindConst {
			continue
		}
		if t := a.cycle + 1; t > at {
			at = t
		}
	}
	return at
}

// retire marks n issued at cycle and releases its successors.
func (n *Node) retire(cycle int, ready *[]*Node) {
	n.cycle = cycle
	out := (*ready)[:0]
	for _, r := range *ready {
		if r != n {
			out = append(out, r)
		}
	}
	*ready = out
	for _, s := range n.succs {
		s.nPreds--
		if s.nPreds == 0 {
			*ready = append(*ready, s)
		}
	}
}

func byPrio(ns []*Node) {
	sort.SliceStable(ns, func(i, j int) bool {
		if ns[i].prio != ns[j].prio {
			return ns[i].prio > ns[j].prio
		}
		return ns[i].id < ns[j].id
	})
}

// topo returns a topological order computed from the argument edges alone,
// so it is usable before Schedule wires the successor lists.
func topo(g *Graph) []*Node {
	indeg := make([]int, len(g.nodes))
	succs := make([][]*Node, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.id] = len(n.args)
		for _, a := range n.args {
			succs[a.id] = append(succs[a.id], n)
		}
	}
	var q, out []*Node
	for _, n := range g.nodes {
		if indeg[n.id] == 0 {
			q = append(q, n)
		}
	}
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		out = append(out, n)
		for _, s := range succs[n.id] {
			indeg[s.id]--
			if indeg[s.id] == 0 {
				q = append(q, s)
			}
		}
	}
	if len(out) != len(g.nodes) {
		panic("sched: cycle in dataflow graph")
	}
	return out
}

// regAlloc hands out FP registers, freeing a value's register when its
// last consumer issues.
type regAlloc struct {
	free []int
	uses map[*Node]int
}

func newRegAlloc(cfg Config) *regAlloc {
	ra := &regAlloc{uses: map[*Node]int{}}
	for r := cfg.FPRegHigh; r >= cfg.FPRegLow; r-- {
		ra.free = append(ra.free, r)
	}
	return ra
}

// canIssue reports whether n's destination register can be allocated,
// counting registers its own operands would free.
func (ra *regAlloc) canIssue(n *Node) bool {
	switch n.kind {
	case KindStore:
		return true // stores only free registers
	case KindLoad:
		return len(ra.free) > 0
	}
	// Count each distinct operand once (args may repeat, e.g. x*x); the
	// operand lists are tiny, so a quadratic dedup beats a map allocation
	// on this hot path and keeps the iteration order deterministic.
	freed := 0
	for i, a := range n.args {
		if a.kind == KindConst {
			continue
		}
		dup := false
		d := 0
		for j, b := range n.args {
			if b != a {
				continue
			}
			if j < i {
				dup = true
				break
			}
			d++
		}
		if !dup && ra.uses[a]-d == 0 {
			freed++
		}
	}
	return len(ra.free)+freed > 0
}

func (ra *regAlloc) def(n *Node) (isa.Reg, error) {
	if len(ra.free) == 0 {
		return isa.Reg{}, fmt.Errorf("sched: out of FP registers")
	}
	r := ra.free[len(ra.free)-1]
	ra.free = ra.free[:len(ra.free)-1]
	ra.uses[n] = len(n.succs)
	n.resultIn = isa.FP(r)
	return n.resultIn, nil
}

func (ra *regAlloc) use(n *Node) isa.Reg {
	if n.kind == KindConst {
		return n.Reg
	}
	ra.uses[n]--
	if ra.uses[n] == 0 {
		ra.free = append(ra.free, int(n.resultIn.Index))
	}
	return n.resultIn
}

func emitMem(n *Node, ra *regAlloc) (*isa.Op, error) {
	switch n.kind {
	case KindLoad:
		dst, err := ra.def(n)
		if err != nil {
			return nil, err
		}
		return &isa.Op{Code: isa.LD, Dst: dst, Src1: n.Base, Imm: n.Off}, nil
	case KindStore:
		src := ra.use(n.args[0])
		return &isa.Op{Code: isa.ST, Src1: n.Base, Src2: src, Imm: n.Off}, nil
	}
	return nil, fmt.Errorf("sched: %v is not a memory node", n.kind)
}

func emitFP(n *Node, ra *regAlloc) (*isa.Op, error) {
	var code isa.Opcode
	switch n.kind {
	case KindAdd:
		code = isa.FADD
	case KindSub:
		code = isa.FSUB
	case KindMul:
		code = isa.FMUL
	default:
		return nil, fmt.Errorf("sched: %v is not an FP node", n.kind)
	}
	a := ra.use(n.args[0])
	b := ra.use(n.args[1])
	dst, err := ra.def(n)
	if err != nil {
		return nil, err
	}
	return &isa.Op{Code: code, Dst: dst, Src1: a, Src2: b}, nil
}
