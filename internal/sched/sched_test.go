package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// build7pt constructs the Figure 5 dataflow: u' = u + a*r_c + b*sum(r_0..r_5)
// with a in f1, b in f2, residuals at [i1+0..6], u at [i2].
func build7pt() *Graph {
	g := &Graph{}
	a := g.Const(isa.FP(1))
	b := g.Const(isa.FP(2))
	var rs []*Node
	for i := 0; i < 6; i++ {
		rs = append(rs, g.Load(isa.Int(1), int64(i)))
	}
	rc := g.Load(isa.Int(1), 6)
	u := g.Load(isa.Int(2), 0)
	sum := g.Sum(rs...)
	t := g.Add(g.Add(g.Mul(b, sum), g.Mul(a, rc)), u)
	g.Store(isa.Int(2), 0, t)
	return g
}

func TestScheduleStencilDepth(t *testing.T) {
	p, err := Schedule(build7pt(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	depth := p.Len() - 1 // exclude halt
	// The hand schedule of Figure 5(a) is 12 instructions; the list
	// scheduler must land in the same neighbourhood (8 loads + 1 store
	// bound the memory unit at 9, FP chain fits alongside).
	if depth < 9 || depth > 14 {
		t.Errorf("scheduled depth = %d, want 9..14 (hand schedule: 12)\n%s", depth, p)
	}
	// Exactly 8 loads and 1 store; every instruction at most 1 mem op.
	loads, stores := 0, 0
	for _, in := range p.Insts {
		if in.MOp != nil {
			switch in.MOp.Code {
			case isa.LD:
				loads++
			case isa.ST:
				stores++
			}
		}
	}
	if loads != 8 || stores != 1 {
		t.Errorf("loads/stores = %d/%d, want 8/1", loads, stores)
	}
}

func TestSchedulePairsMemWithFP(t *testing.T) {
	p, err := Schedule(build7pt(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	paired := 0
	for _, in := range p.Insts {
		if in.MOp != nil && in.FOp != nil {
			paired++
		}
	}
	if paired < 3 {
		t.Errorf("only %d instructions pair a memory and FP op; the 3-wide format is underused\n%s", paired, p)
	}
}

func TestScheduleErrors(t *testing.T) {
	g := &Graph{}
	g.Load(isa.Int(1), 0)
	if _, err := Schedule(g, DefaultConfig()); err == nil {
		t.Error("graph without stores accepted")
	}
	// Register pressure: more live loads than allocatable registers.
	g2 := &Graph{}
	var vs []*Node
	for i := 0; i < 40; i++ {
		vs = append(vs, g2.Load(isa.Int(1), int64(i)))
	}
	// A single wide consumer keeps every load live simultaneously: with a
	// balanced Sum they retire early, so chain them pathologically instead
	// by storing each one only after all loads are defined.
	sum := vs[0]
	for i := 1; i < len(vs); i++ {
		sum = g2.Add(sum, vs[i])
	}
	g2.Store(isa.Int(2), 0, sum)
	// A linear chain frees registers as it goes, so this one succeeds.
	if _, err := Schedule(g2, DefaultConfig()); err != nil {
		t.Errorf("linear reduction of 40 loads should schedule: %v", err)
	}
}

func TestSumBalancedTreeDepth(t *testing.T) {
	g := &Graph{}
	var vs []*Node
	for i := 0; i < 8; i++ {
		vs = append(vs, g.Load(isa.Int(1), int64(i)))
	}
	root := g.Sum(vs...)
	g.Store(isa.Int(2), 0, root)
	// A balanced tree over 8 values has depth 3 (7 adds): the root's
	// priority must reflect log-depth, not a linear chain.
	if root.prio > 4*latFP+latLoad {
		t.Errorf("root priority %d suggests a linear chain", root.prio)
	}
}

func TestTopoDetectsAllNodes(t *testing.T) {
	g := build7pt()
	order := topo(g)
	if len(order) != len(g.nodes) {
		t.Fatalf("topo visited %d/%d", len(order), len(g.nodes))
	}
	pos := map[*Node]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, n := range g.nodes {
		for _, a := range n.args {
			if pos[a] > pos[n] {
				t.Fatalf("topo order violates edge %d -> %d", a.id, n.id)
			}
		}
	}
}

// randomTree builds a random FP expression over nLeaves loads and returns
// the graph plus a host evaluator mirroring it.
func randomTree(rng *rand.Rand, nLeaves int) (*Graph, func(vals []float64) float64) {
	g := &Graph{}
	type pair struct {
		n *Node
		f func([]float64) float64
	}
	var pool []pair
	for i := 0; i < nLeaves; i++ {
		idx := i
		pool = append(pool, pair{g.Load(isa.Int(1), int64(i)),
			func(v []float64) float64 { return v[idx] }})
	}
	for len(pool) > 1 {
		i := rng.Intn(len(pool))
		a := pool[i]
		pool = append(pool[:i], pool[i+1:]...)
		j := rng.Intn(len(pool))
		b := pool[j]
		pool = append(pool[:j], pool[j+1:]...)
		var n *Node
		var f func([]float64) float64
		switch rng.Intn(3) {
		case 0:
			n = g.Add(a.n, b.n)
			f = func(v []float64) float64 { return a.f(v) + b.f(v) }
		case 1:
			n = g.Sub(a.n, b.n)
			f = func(v []float64) float64 { return a.f(v) - b.f(v) }
		default:
			n = g.Mul(a.n, b.n)
			f = func(v []float64) float64 { return a.f(v) * b.f(v) }
		}
		pool = append(pool, pair{n, f})
	}
	g.Store(isa.Int(2), 0, pool[0].n)
	return g, pool[0].f
}

// TestRandomGraphsScheduleValidly checks structural invariants of random
// schedules: every non-const node appears exactly once, operands are
// defined before use, and register assignments never overlap two live
// values.
func TestRandomGraphsScheduleValidly(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, _ := randomTree(rng, 3+rng.Intn(8))
		p, err := Schedule(g, DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Replay the program tracking register defs: a register read must
		// have been written (or be a base register i1/i2).
		written := map[isa.Reg]bool{}
		for _, in := range p.Insts {
			for _, op := range in.Ops() {
				switch op.Code {
				case isa.LD:
					written[op.Dst] = true
				case isa.FADD, isa.FSUB, isa.FMUL:
					if !written[op.Src1] || !written[op.Src2] {
						t.Fatalf("seed %d: use before def in %s\n%s", seed, op, p)
					}
					written[op.Dst] = true
				case isa.ST:
					if !written[op.Src2] {
						t.Fatalf("seed %d: store of undefined %s\n%s", seed, op, p)
					}
				}
			}
		}
	}
}

// hostEval is exposed for the machine-level test in schedrun_test.go.
func hostEval(f func([]float64) float64, vals []float64) float64 { return f(vals) }

var _ = math.Abs // keep math imported for shared helpers
