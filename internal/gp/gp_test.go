package gp

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeRoundTrip(t *testing.T) {
	cases := []struct {
		perms  Perm
		segLen uint8
		addr   uint64
	}{
		{PermRead, 0, 0},
		{PermRW, 9, 0x1000},
		{PermAll, 20, 0x3fffffffffffff},
		{PermKey, 63, 42},
		{PermRead | PermExecute, 12, 1 << 30},
	}
	for _, c := range cases {
		p, err := Make(c.perms, c.segLen, c.addr)
		if err != nil {
			t.Fatalf("Make(%v,%d,%#x): %v", c.perms, c.segLen, c.addr, err)
		}
		if p.Perms() != c.perms {
			t.Errorf("perms = %v, want %v", p.Perms(), c.perms)
		}
		if p.SegLen() != c.segLen {
			t.Errorf("segLen = %d, want %d", p.SegLen(), c.segLen)
		}
		if p.Addr() != c.addr&((1<<AddrBits)-1) {
			t.Errorf("addr = %#x, want %#x", p.Addr(), c.addr)
		}
	}
}

func TestMakeRejectsBadSegLen(t *testing.T) {
	if _, err := Make(PermRead, MaxSegLen+1, 0); !errors.Is(err, ErrSegLen) {
		t.Fatalf("err = %v, want ErrSegLen", err)
	}
}

func TestSegBaseAlignment(t *testing.T) {
	p := MustMake(PermRW, 9, 0x12345) // 512-word segment
	if got, want := p.SegBase(), uint64(0x12345)&^uint64(511); got != want {
		t.Errorf("SegBase = %#x, want %#x", got, want)
	}
	if p.SegSize() != 512 {
		t.Errorf("SegSize = %d, want 512", p.SegSize())
	}
}

func TestAddWithinSegment(t *testing.T) {
	p := MustMake(PermRW, 4, 0x100) // segment [0x100, 0x110)
	q, err := p.Add(15)
	if err != nil {
		t.Fatalf("Add(15): %v", err)
	}
	if q.Addr() != 0x10f {
		t.Errorf("addr = %#x, want 0x10f", q.Addr())
	}
	if q.Perms() != PermRW || q.SegLen() != 4 {
		t.Errorf("Add changed perms/segLen: %v", q)
	}
	// Negative offsets back to segment base are legal.
	r, err := q.Add(-15)
	if err != nil {
		t.Fatalf("Add(-15): %v", err)
	}
	if r != p {
		t.Errorf("round trip = %v, want %v", r, p)
	}
}

func TestAddCrossingSegmentFaults(t *testing.T) {
	p := MustMake(PermRW, 4, 0x100)
	if _, err := p.Add(16); !errors.Is(err, ErrSegment) {
		t.Errorf("Add(16) err = %v, want ErrSegment", err)
	}
	if _, err := p.Add(-1); !errors.Is(err, ErrSegment) {
		t.Errorf("Add(-1) err = %v, want ErrSegment", err)
	}
}

func TestCheckAccess(t *testing.T) {
	ro := MustMake(PermRead, 9, 0)
	if err := ro.CheckAccess(false); err != nil {
		t.Errorf("read via read-only: %v", err)
	}
	if err := ro.CheckAccess(true); !errors.Is(err, ErrPerm) {
		t.Errorf("write via read-only: err = %v, want ErrPerm", err)
	}
	wo := MustMake(PermWrite, 9, 0)
	if err := wo.CheckAccess(false); !errors.Is(err, ErrPerm) {
		t.Errorf("read via write-only: err = %v, want ErrPerm", err)
	}
	key := MustMake(PermKey|PermRead, 9, 0)
	if err := key.CheckAccess(false); !errors.Is(err, ErrPerm) {
		t.Errorf("data access via key: err = %v, want ErrPerm", err)
	}
}

func TestCheckExecute(t *testing.T) {
	x := MustMake(PermRead|PermExecute, 9, 0)
	if err := x.CheckExecute(); err != nil {
		t.Errorf("execute via rx: %v", err)
	}
	d := MustMake(PermRW, 9, 0)
	if err := d.CheckExecute(); !errors.Is(err, ErrPerm) {
		t.Errorf("execute via rw: err = %v, want ErrPerm", err)
	}
}

func TestPackSetptrRoundTrip(t *testing.T) {
	for _, perms := range []Perm{PermRead, PermRW, PermAll, PermKey} {
		for _, l := range []uint8{0, 9, 30, MaxSegLen} {
			gotP, gotL := UnpackSetptr(PackSetptr(perms, l))
			if gotP != perms || gotL != l {
				t.Errorf("round trip (%v,%d) = (%v,%d)", perms, l, gotP, gotL)
			}
		}
	}
}

// Property: Add never escapes the segment — any sequence of successful Adds
// keeps the address inside the original segment, and any Add that would
// escape returns ErrSegment rather than a corrupted pointer.
func TestAddStaysInSegmentProperty(t *testing.T) {
	f := func(addr uint64, segLen uint8, off int64) bool {
		segLen %= 40
		addr &= (1 << AddrBits) - 1
		p := MustMake(PermRW, segLen, addr)
		// Bound the offset so addition cannot wrap the 54-bit space in a
		// way that re-enters the segment from the other side.
		off %= int64(p.SegSize()) * 4
		q, err := p.Add(off)
		if err != nil {
			return errors.Is(err, ErrSegment)
		}
		return p.Contains(q.Addr()) && q.SegBase() == p.SegBase()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Make/accessor round trip for arbitrary field values.
func TestMakeRoundTripProperty(t *testing.T) {
	f := func(perms uint8, segLen uint8, addr uint64) bool {
		segLen %= MaxSegLen + 1
		p, err := Make(Perm(perms&0xF), segLen, addr)
		if err != nil {
			return false
		}
		return p.Perms() == Perm(perms&0xF) &&
			p.SegLen() == segLen &&
			p.Addr() == addr&((1<<AddrBits)-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Contains is consistent with SegBase/SegSize.
func TestContainsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		segLen := uint8(rng.Intn(40))
		addr := rng.Uint64() & ((1 << AddrBits) - 1)
		p := MustMake(PermRead, segLen, addr)
		in := p.SegBase() + rng.Uint64()%p.SegSize()
		if !p.Contains(in) {
			t.Fatalf("Contains(%#x) = false for %v", in, p)
		}
		out := p.SegBase() + p.SegSize()
		if out < 1<<AddrBits && p.Contains(out) {
			t.Fatalf("Contains(%#x) = true just past segment for %v", out, p)
		}
	}
}

func TestPermString(t *testing.T) {
	if got := PermAll.String(); got != "rwx-" {
		t.Errorf("PermAll = %q, want rwx-", got)
	}
	if got := PermKey.String(); got != "---k" {
		t.Errorf("PermKey = %q, want ---k", got)
	}
}
