// Package gp implements the M-Machine's guarded pointers: the light-weight
// capability system that provides protection in the single global virtual
// address space (Section 2; Carter, Keckler & Dally, "Hardware support for
// fast capability-based addressing", ASPLOS VI).
//
// A guarded pointer is a 64-bit word carrying a 4-bit permission field, a
// 6-bit segment-length field, and a 54-bit word address, plus an unforgeable
// tag bit held out of band (in registers and in memory). The segment-length
// field L places the address inside a naturally aligned segment of 2^L
// words; pointer arithmetic (the LEA operation) that would leave the segment
// raises a protection fault. Because segmentation is independent of paging,
// protection is preserved on variable-size segments (Section 2).
package gp

import (
	"errors"
	"fmt"
)

// Perm is the 4-bit permission field of a guarded pointer.
type Perm uint8

const (
	PermRead    Perm = 1 << 0 // words may be loaded through the pointer
	PermWrite   Perm = 1 << 1 // words may be stored through the pointer
	PermExecute Perm = 1 << 2 // the segment may be entered for execution
	PermKey     Perm = 1 << 3 // opaque key: no data access, identity only

	PermRW  = PermRead | PermWrite
	PermAll = PermRead | PermWrite | PermExecute
)

func (p Perm) String() string {
	buf := []byte("----")
	if p&PermRead != 0 {
		buf[0] = 'r'
	}
	if p&PermWrite != 0 {
		buf[1] = 'w'
	}
	if p&PermExecute != 0 {
		buf[2] = 'x'
	}
	if p&PermKey != 0 {
		buf[3] = 'k'
	}
	return string(buf)
}

// Field layout within the 64-bit pointer word.
const (
	AddrBits  = 54
	addrMask  = (uint64(1) << AddrBits) - 1
	lenShift  = AddrBits
	lenBits   = 6
	lenMask   = (uint64(1) << lenBits) - 1
	permShift = AddrBits + lenBits
	permMask  = 0xF

	// MaxSegLen is the largest encodable segment length exponent.
	MaxSegLen = (1 << lenBits) - 1
)

// Pointer is the 64-bit guarded-pointer word. The tag bit that distinguishes
// pointers from data travels alongside the word (register and memory models
// keep a tag bit per word); Pointer itself is just the bit pattern.
type Pointer uint64

// Errors raised by pointer operations. They surface as protection-violation
// exceptions on the issuing thread (Section 3.3: detected in the first
// execution cycle and handled synchronously).
var (
	ErrSegment    = errors.New("gp: pointer arithmetic crossed segment boundary")
	ErrPerm       = errors.New("gp: insufficient permissions")
	ErrNotPointer = errors.New("gp: operand is not a tagged pointer")
	ErrSegLen     = errors.New("gp: segment length exponent out of range")
)

// Make constructs a guarded pointer. addr is truncated to 54 bits; segLen is
// the base-2 logarithm of the segment size in words.
func Make(perms Perm, segLen uint8, addr uint64) (Pointer, error) {
	if segLen > MaxSegLen {
		return 0, fmt.Errorf("%w: %d", ErrSegLen, segLen)
	}
	w := addr & addrMask
	w |= (uint64(segLen) & lenMask) << lenShift
	w |= uint64(perms&permMask) << permShift
	return Pointer(w), nil
}

// MustMake is Make for statically valid arguments; it panics on error and is
// intended for tests and boot code.
func MustMake(perms Perm, segLen uint8, addr uint64) Pointer {
	p, err := Make(perms, segLen, addr)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the 54-bit word address.
func (p Pointer) Addr() uint64 { return uint64(p) & addrMask }

// SegLen returns the segment length exponent L (segment size = 2^L words).
func (p Pointer) SegLen() uint8 { return uint8((uint64(p) >> lenShift) & lenMask) }

// Perms returns the permission field.
func (p Pointer) Perms() Perm { return Perm((uint64(p) >> permShift) & permMask) }

// SegBase returns the word address of the start of the segment: the address
// with the low L bits cleared (segments are naturally aligned).
func (p Pointer) SegBase() uint64 {
	l := p.SegLen()
	if l >= AddrBits {
		return 0
	}
	return p.Addr() &^ ((uint64(1) << l) - 1)
}

// SegSize returns the segment size in words.
func (p Pointer) SegSize() uint64 {
	l := p.SegLen()
	if l >= AddrBits {
		return uint64(1) << AddrBits
	}
	return uint64(1) << l
}

// Contains reports whether word address a lies inside the pointer's segment.
func (p Pointer) Contains(a uint64) bool {
	base := p.SegBase()
	return a >= base && a-base < p.SegSize()
}

// Add performs LEA: it offsets the pointer by off words, preserving the
// permission and segment fields. Arithmetic that leaves the segment returns
// ErrSegment; hardware raises a synchronous protection fault in that case.
func (p Pointer) Add(off int64) (Pointer, error) {
	na := p.Addr() + uint64(off) // two's-complement wrap gives subtraction
	na &= addrMask
	if !p.Contains(na) {
		return 0, fmt.Errorf("%w: base %#x + %d -> %#x outside [%#x,%#x)",
			ErrSegment, p.Addr(), off, na, p.SegBase(), p.SegBase()+p.SegSize())
	}
	q := (uint64(p) &^ addrMask) | na
	return Pointer(q), nil
}

// CheckAccess validates a data access of the given kind through the pointer.
func (p Pointer) CheckAccess(write bool) error {
	need := PermRead
	if write {
		need = PermWrite
	}
	if p.Perms()&need == 0 {
		return fmt.Errorf("%w: have %s, need %s", ErrPerm, p.Perms(), need)
	}
	if p.Perms()&PermKey != 0 {
		return fmt.Errorf("%w: key pointers carry no data access", ErrPerm)
	}
	return nil
}

// CheckExecute validates entering the segment for execution.
func (p Pointer) CheckExecute() error {
	if p.Perms()&PermExecute == 0 {
		return fmt.Errorf("%w: have %s, need execute", ErrPerm, p.Perms())
	}
	return nil
}

// PackSetptr encodes the segment-length and permission operand of the
// privileged SETPTR operation into an immediate: perms in the low 4 bits,
// segment length exponent above them.
func PackSetptr(perms Perm, segLen uint8) int64 {
	return int64(uint64(perms&permMask) | uint64(segLen)<<4)
}

// UnpackSetptr decodes a PackSetptr immediate.
func UnpackSetptr(imm int64) (Perm, uint8) {
	return Perm(imm & permMask), uint8(uint64(imm) >> 4 & lenMask)
}

func (p Pointer) String() string {
	return fmt.Sprintf("ptr{%s L=%d addr=%#x}", p.Perms(), p.SegLen(), p.Addr())
}
