package core

// Supervised-run legs of the determinism matrix, and the scenario-level
// watchdog directives (deadline/budget). Supervision (internal/guard)
// must be observationally free: a scenario run with watchdogs armed is
// bit-identical to one without, under every engine. The watchdogs
// themselves must fire deterministically (budget) and classify correctly
// (deadline), and a budget cutoff with Options.CrashDump set must leave
// behind a snapshot a fresh machine can restore.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
)

// spinScenario never completes: every node increments forever.
const spinScenario = `
workload "spin forever"
mesh 2

program spin
spin:
    add i1, i1, #1
    br spin
end

load spin on all
run 1000000000
expect reg node=0 reg=1 value=0
`

// TestSupervisedDeterminismEngines: running a checked-in scenario with
// the full supervision stack armed (wall-clock watchdog + cycle budget,
// both far from firing) yields the identical fingerprint as the
// unarmed run, under every engine mode.
func TestSupervisedDeterminismEngines(t *testing.T) {
	armed := Options{Timeout: 5 * time.Minute, CycleBudget: 1 << 39}
	var ref string
	for i, m := range engineModes {
		plain, err := underMode(m, func() (string, error) {
			return scenarioFingerprint(t, "ringreduce.wl")
		})
		if err != nil {
			t.Fatalf("unarmed (%s engine): %v", m.name, err)
		}
		supervised, err := underMode(m, func() (string, error) {
			sc, err := ScenarioFromFile(workloadDir + "/ringreduce.wl")
			if err != nil {
				t.Fatal(err)
			}
			res, err := sc.Run(armed)
			if err != nil {
				return "", err
			}
			fp := ""
			for _, ph := range res.Phases {
				fp += fmt.Sprintf("%s=%d ", ph.Name, ph.Cycles)
			}
			return fp + fmt.Sprintf("total=%d stats=%+v", res.TotalCycles, res.Stats), nil
		})
		if err != nil {
			t.Fatalf("supervised (%s engine): %v", m.name, err)
		}
		if supervised != plain {
			t.Fatalf("supervision perturbed the run (%s engine):\n--- unarmed ---\n%s\n--- armed ---\n%s",
				m.name, plain, supervised)
		}
		if i == 0 {
			ref = supervised
		} else if supervised != ref {
			t.Fatalf("supervised run diverged between engines (%s vs %s):\n%s\nvs\n%s",
				engineModes[0].name, m.name, ref, supervised)
		}
	}
}

// TestScenarioDeadlineDirective: a .wl deadline cuts off a livelocked
// scenario as a wall-clock StallError; the caller's Options.Timeout
// overrides the file's value.
func TestScenarioDeadlineDirective(t *testing.T) {
	src := "\ndeadline 60s\n" + spinScenario
	sc, err := ScenarioFromDSL("spin.wl", src)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Plan.Deadline != 60*time.Second {
		t.Fatalf("deadline lowered to %v, want 60s", sc.Plan.Deadline)
	}
	// Override with a short caller timeout so the test is fast.
	_, err = sc.Run(Options{Timeout: 50 * time.Millisecond})
	var se *guard.StallError
	if !errors.As(err, &se) || se.Kind != guard.StallTimeout {
		t.Fatalf("want StallTimeout, got %v", err)
	}
	if se.Diagnostic == "" {
		t.Fatal("no diagnostic attached")
	}
}

// TestScenarioBudgetDirective: a .wl budget stops the scenario at a
// deterministic cycle with a StallError of kind StallBudget.
func TestScenarioBudgetDirective(t *testing.T) {
	src := "\nbudget 2000 + 1000\n" + spinScenario
	stopAt := func() int64 {
		sc, err := ScenarioFromDSL("spin.wl", src)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Plan.CycleBudget != 3000 {
			t.Fatalf("budget lowered to %d, want 3000", sc.Plan.CycleBudget)
		}
		_, err = sc.Run(Options{})
		var se *guard.StallError
		if !errors.As(err, &se) || se.Kind != guard.StallBudget {
			t.Fatalf("want StallBudget, got %v", err)
		}
		return se.Cycle
	}
	if a, b := stopAt(), stopAt(); a != b || a != 3000 {
		t.Fatalf("budget stop cycles %d/%d, want exactly 3000 twice", a, b)
	}
}

// TestScenarioCrashDumpRestores: the dump written when a scenario blows
// its budget is a regular snapshot a fresh same-shape machine restores.
func TestScenarioCrashDumpRestores(t *testing.T) {
	dump := t.TempDir() + "/stall.msnap"
	sc, err := ScenarioFromDSL("spin.wl", spinScenario)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sc.Run(Options{CycleBudget: 2000, CrashDump: dump})
	var se *guard.StallError
	if !errors.As(err, &se) || se.Kind != guard.StallBudget {
		t.Fatalf("want StallBudget, got %v", err)
	}
	if se.DumpPath != dump {
		t.Fatalf("dump path %q, want %q", se.DumpPath, dump)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.M.Close()
	if err := s.M.Restore(bytes.NewReader(data)); err != nil {
		t.Fatalf("crash dump does not restore: %v", err)
	}
	if s.M.Cycle != 2000 {
		t.Fatalf("restored at cycle %d, want the 2000-cycle budget point", s.M.Cycle)
	}
	// The restored machine resumes (the spin never completes, so a short
	// bounded run that returns cleanly is the resumption proof).
	if _, err := s.M.Run(100); err == nil {
		t.Fatal("spin workload claimed completion after restore")
	}
}

// TestBadWatchdogDirectives: parse/lowering errors for the new
// directives are positional.
func TestBadWatchdogDirectives(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"deadline-unit", "deadline 5 parsecs\nmesh 1\n", "unit"},
		{"deadline-dup", "deadline 5s\ndeadline 6s\nmesh 1\n", "duplicate"},
		{"budget-dup", "budget 10\nbudget 20\nmesh 1\n", "duplicate"},
		{"budget-zero", "mesh 1\nbudget 0\n", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ScenarioFromDSL("bad.wl", c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}
