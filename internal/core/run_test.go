package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/guard"
)

// driveSliced runs sc to completion in maxSlice-cycle quanta, invoking
// onQuantum after every machine-advancing quantum, and returns the result
// plus a final state snapshot.
func driveSliced(t *testing.T, sc *Scenario, maxSlice int64, onQuantum func(r *ScenarioRun, s *Sim)) (*ScenarioResult, []byte) {
	t.Helper()
	s, err := sc.NewSim(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.M.Close()
	run := sc.NewRun(s)
	for !run.Done() {
		sup := guard.New(s.M, guard.Options{})
		var ran bool
		err := sup.Do(func() error {
			var e error
			ran, e = run.Advance(sup, maxSlice)
			return e
		})
		if err != nil {
			t.Fatal(err)
		}
		if ran && onQuantum != nil {
			onQuantum(run, s)
		}
	}
	var buf bytes.Buffer
	if err := s.M.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return run.Result(), buf.Bytes()
}

// TestScenarioRunSlicedResume pins the service's recovery contract at the
// core level: a sliced scenario run that is checkpointed at a quantum
// boundary, discarded, restored into a fresh simulator, and Seeked back
// to the recorded position finishes with results and final machine state
// bit-identical to the same sliced run left uninterrupted.
func TestScenarioRunSlicedResume(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "workloads", "loopsync2.wl"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScenarioFromDSL("loopsync2.wl", string(src))
	if err != nil {
		t.Fatal(err)
	}
	const slice = 257 // deliberately odd, several slices per phase

	// Uninterrupted sliced run: the baseline.
	wantRes, wantState := driveSliced(t, sc, slice, nil)

	// Interrupted run: checkpoint at every quantum, abandon the machine
	// after the third, resume from the checkpoint on a fresh simulator.
	type ckpt struct {
		step     int
		phaseRan int64
		phases   []PhaseResult
		checks   int
		machine  []byte
	}
	var last ckpt
	quanta := 0
	s1, err := sc.NewSim(Options{})
	if err != nil {
		t.Fatal(err)
	}
	run1 := sc.NewRun(s1)
	for !run1.Done() && quanta < 3 {
		sup := guard.New(s1.M, guard.Options{})
		var ran bool
		err := sup.Do(func() error {
			var e error
			ran, e = run1.Advance(sup, slice)
			return e
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			continue
		}
		quanta++
		var buf bytes.Buffer
		if err := s1.M.Save(&buf); err != nil {
			t.Fatal(err)
		}
		step, phaseRan := run1.Pos()
		last = ckpt{
			step:     step,
			phaseRan: phaseRan,
			phases:   append([]PhaseResult(nil), run1.Phases()...),
			checks:   run1.Checks(),
			machine:  buf.Bytes(),
		}
	}
	if quanta < 3 {
		t.Fatalf("scenario completed in %d run quanta; need more for a mid-run checkpoint", quanta)
	}
	s1.M.Close() // the "crashed" machine is discarded

	s2, err := sc.NewSim(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.M.Close()
	if err := s2.M.Restore(bytes.NewReader(last.machine)); err != nil {
		t.Fatal(err)
	}
	run2 := sc.NewRun(s2)
	if err := run2.Seek(last.step, last.phaseRan, last.phases, last.checks); err != nil {
		t.Fatal(err)
	}
	for !run2.Done() {
		sup := guard.New(s2.M, guard.Options{})
		err := sup.Do(func() error {
			_, e := run2.Advance(sup, slice)
			return e
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	gotRes := run2.Result()
	var gotState bytes.Buffer
	if err := s2.M.Save(&gotState); err != nil {
		t.Fatal(err)
	}

	if gotRes.TotalCycles != wantRes.TotalCycles || gotRes.Checks != wantRes.Checks {
		t.Fatalf("resumed run: total %d cycles, %d checks; uninterrupted: %d cycles, %d checks",
			gotRes.TotalCycles, gotRes.Checks, wantRes.TotalCycles, wantRes.Checks)
	}
	if len(gotRes.Phases) != len(wantRes.Phases) {
		t.Fatalf("resumed run recorded %d phases, want %d", len(gotRes.Phases), len(wantRes.Phases))
	}
	for i := range gotRes.Phases {
		if gotRes.Phases[i] != wantRes.Phases[i] {
			t.Fatalf("phase %d: resumed %+v, uninterrupted %+v", i, gotRes.Phases[i], wantRes.Phases[i])
		}
	}
	if !bytes.Equal(gotState.Bytes(), wantState) {
		t.Fatalf("resumed run's final machine state differs from the uninterrupted run's")
	}
}

// TestScenarioRunSeekValidation exercises Seek's position checks.
func TestScenarioRunSeekValidation(t *testing.T) {
	sc, err := ScenarioFromDSL("seek.wl",
		"workload \"seek\"\nmesh 1\ngenerate sp spinloop iters=4\nload sp on node 0\nrun 1000\n")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sc.NewSim(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.M.Close()
	run := sc.NewRun(s)
	if err := run.Seek(99, 0, nil, 0); err == nil {
		t.Error("seek past the end of the plan accepted")
	}
	if err := run.Seek(0, 5, nil, 0); err == nil {
		t.Error("mid-phase seek into a non-run step accepted")
	}
	if err := run.Seek(1, -1, nil, 0); err == nil {
		t.Error("negative phase position accepted")
	}
	if err := run.Seek(1, 5, nil, 0); err != nil {
		t.Errorf("mid-phase seek into the run step rejected: %v", err)
	}
	if err := run.Seek(0, 0, nil, 0); err != nil {
		t.Errorf("seek to the start rejected: %v", err)
	}
}
