package core

// Figure 9 of the paper: timelines for remote read and write accesses. The
// experiment reruns the Remote Cache Hit scenario of Table 1 with tracing
// enabled and reconstructs the per-phase cycle stamps on both nodes:
// load/store issue, LTLB miss event, request message send, message arrival
// and handler execution at the home node, reply delivery, and the final
// register writeback (reads).

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Phase is one labelled point on a remote access timeline.
type Phase struct {
	Cycle int64 // relative to the access issue
	Node  int
	Label string
}

// Figure9Result is a reconstructed remote access timeline.
type Figure9Result struct {
	Kind   string // "read" or "write"
	Phases []Phase
	Total  int64
}

// Figure9 reproduces both timelines; the two traced machines run
// concurrently.
func Figure9() (read, write *Figure9Result, err error) {
	var res [2]*Figure9Result
	err = ForEachMachine(2, func(i int) error {
		r, oneErr := figure9One(i == 1)
		res[i] = r
		return oneErr
	})
	if err != nil {
		return nil, nil, err
	}
	return res[0], res[1], nil
}

func figure9One(isWrite bool) (*Figure9Result, error) {
	s, err := NewSim(Options{Nodes: 2})
	if err != nil {
		return nil, err
	}
	addr := s.HomeBase(1) + 16
	if err := stageAccess(s, RemoteCacheHit, addr); err != nil {
		return nil, err
	}
	s.Recorder.Reset()
	start := s.M.Cycle

	kind := "read"
	if isWrite {
		kind = "write"
		if _, err := timeWrite(s, RemoteCacheHit, addr); err != nil {
			return nil, err
		}
	} else {
		if _, err := timeRead(s, addr); err != nil {
			return nil, err
		}
	}

	res := &Figure9Result{Kind: kind}
	issue, ok := s.Recorder.First(start, "mem-issue")
	if !ok {
		return nil, fmt.Errorf("figure9: no mem-issue event")
	}
	base := issue.Cycle
	add := func(e trace.Event, label string, ok bool) {
		if ok {
			res.Phases = append(res.Phases, Phase{e.Cycle - base, e.Node, label})
		}
	}
	opName := map[bool]string{false: "LOAD", true: "STORE"}[isWrite]
	add(issue, opName+" issues", true)

	ev, ok := s.Recorder.First(base, "event")
	add(ev, "LTLB miss event enqueued", ok)
	snd, ok := s.Recorder.FirstMatch(base, func(e trace.Event) bool {
		return e.Node == 0 && e.Name == "send"
	})
	add(snd, "LTLB miss handler completes; "+opName+" message sent", ok)
	rcv, ok := s.Recorder.FirstMatch(base, func(e trace.Event) bool {
		return e.Node == 1 && e.Name == "msg-recv"
	})
	add(rcv, "message received", ok)
	exec, ok := s.Recorder.FirstMatch(base, func(e trace.Event) bool {
		return e.Node == 1 && e.Name == "mem-complete" &&
			strings.Contains(e.Detail, fmt.Sprintf("addr=%#x", addr))
	})
	add(exec, "execute "+strings.ToLower(opName), ok)

	if isWrite {
		if !ok {
			return nil, fmt.Errorf("figure9: store never completed at home")
		}
		res.Total = exec.Cycle - base
	} else {
		reply, rok := s.Recorder.FirstMatch(base, func(e trace.Event) bool {
			return e.Node == 1 && e.Name == "send"
		})
		add(reply, "reply message sent", rok)
		rrecv, rok2 := s.Recorder.FirstMatch(base, func(e trace.Event) bool {
			return e.Node == 0 && e.Name == "msg-recv"
		})
		add(rrecv, "reply received", rok2)
		wb, rok3 := s.Recorder.FirstMatch(base, func(e trace.Event) bool {
			return e.Node == 0 && e.Name == "rstw"
		})
		add(wb, "data written to destination register", rok3)
		if !rok3 {
			return nil, fmt.Errorf("figure9: no register writeback observed")
		}
		res.Total = wb.Cycle - base
	}
	return res, nil
}

// Format renders the timeline like the paper's figure.
func (r *Figure9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "REMOTE %s TIMELINE (total %d cycles)\n", strings.ToUpper(r.Kind), r.Total)
	fmt.Fprintf(&b, "%8s  %-6s  %s\n", "cycle", "node", "phase")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%8d  NODE %d  %s\n", p.Cycle, p.Node, p.Label)
	}
	return b.String()
}
