package core

// Grid smoothing at machine scale: the application story of the paper's
// introduction ("nodes are designed to manage parallelism from the
// instruction level to the process level... collaborating threads reside on
// different nodes"). A 1-D grid is block-distributed across nodes; each
// node smooths its own chunk (v[j] = u[j-1] + u[j] + u[j+1]) with purely
// local accesses in the interior and transparent remote accesses for the
// halo elements at chunk boundaries. Scaling the node count shrinks each
// node's chunk while the flat shared address space keeps the program
// unchanged except for its loop bounds.

import (
	"fmt"
	"strings"
)

const (
	gridTotal   = 512  // grid elements
	gridUOffset = 512  // u chunk offset within a node's home range
	gridVOffset = 2048 // v chunk offset within a node's home range
)

// GridScaleRow reports one machine size.
type GridScaleRow struct {
	Nodes   int
	Cycles  int64
	Speedup float64
}

// GridSmoothExperiment runs the distributed smoothing pass on 1-, 2- and
// 4-node machines and checks the result against a host-computed reference.
func GridSmoothExperiment() ([]GridScaleRow, error) {
	// Reference on the host.
	u := make([]uint64, gridTotal)
	for j := range u {
		u[j] = uint64(j%17 + 1)
	}
	want := make([]uint64, gridTotal)
	for j := 1; j < gridTotal-1; j++ {
		want[j] = u[j-1] + u[j] + u[j+1]
	}

	var rows []GridScaleRow
	var base int64
	for _, nodes := range []int{1, 2, 4} {
		cycles, err := runGridSmooth(nodes, u, want)
		if err != nil {
			return nil, fmt.Errorf("grid smooth on %d nodes: %w", nodes, err)
		}
		if nodes == 1 {
			base = cycles
		}
		rows = append(rows, GridScaleRow{
			Nodes: nodes, Cycles: cycles,
			Speedup: float64(base) / float64(cycles),
		})
	}
	return rows, nil
}

func runGridSmooth(nodes int, u, want []uint64) (int64, error) {
	s, err := NewSim(Options{Nodes: nodes})
	if err != nil {
		return 0, err
	}
	chunk := gridTotal / nodes
	uAddr := func(j int) uint64 { return s.HomeBase(j/chunk) + gridUOffset + uint64(j%chunk) }
	vAddr := func(j int) uint64 { return s.HomeBase(j/chunk) + gridVOffset + uint64(j%chunk) }

	// Stage u at each owner by first touch.
	for n := 0; n < nodes; n++ {
		var b strings.Builder
		fmt.Fprintf(&b, "    movi i1, #%d\n", uAddr(n*chunk))
		for j := n * chunk; j < (n+1)*chunk; j++ {
			fmt.Fprintf(&b, "    movi i2, #%d\n    st [i1+%d], i2\n", u[j], j-n*chunk)
		}
		// First-touch the v page too so workers store locally.
		fmt.Fprintf(&b, "    movi i1, #%d\n    movi i2, #0\n    st [i1], i2\n", vAddr(n*chunk))
		b.WriteString("    halt\n")
		if err := s.LoadASM(n, 3, 3, b.String()); err != nil {
			return 0, err
		}
	}
	if _, err := s.Run(5_000_000); err != nil {
		return 0, err
	}

	// Workers: interior sweep plus explicit boundary elements whose halo
	// neighbours may live on another node.
	for n := 0; n < nodes; n++ {
		lo, hi := n*chunk, (n+1)*chunk // global [lo, hi)
		if lo == 0 {
			lo = 1 // global boundary clamp
		}
		if hi == gridTotal {
			hi = gridTotal - 1
		}
		var b strings.Builder
		// Interior: j in [n*chunk+1, (n+1)*chunk-1) — all three u accesses
		// are in this node's chunk.
		intLo, intHi := n*chunk+1, (n+1)*chunk-1
		fmt.Fprintf(&b, `
    movi i1, #%d            ; &u[intLo-1]
    movi i2, #%d            ; &v[intLo]
    movi i3, #0
    movi i4, #%d            ; interior count
loop:
    ld i5, [i1]
    ld i6, [i1+1]
    ld i7, [i1+2]
    add i8, i5, i6
    add i8, i8, i7
    st [i2], i8
    add i1, i1, #1
    add i2, i2, #1
    add i3, i3, #1
    lt i9, i3, i4
    brt i9, loop
`, uAddr(intLo-1), vAddr(intLo), intHi-intLo)
		// Boundary elements (halo reads may be remote).
		for _, j := range []int{n * chunk, (n+1)*chunk - 1} {
			if j < lo || j >= hi || (j > n*chunk && j < (n+1)*chunk-1) {
				continue
			}
			fmt.Fprintf(&b, `
    movi i1, #%d
    ld i5, [i1]
    movi i1, #%d
    ld i6, [i1]
    movi i1, #%d
    ld i7, [i1]
    add i8, i5, i6
    add i8, i8, i7
    movi i1, #%d
    st [i1], i8
`, uAddr(j-1), uAddr(j), uAddr(j+1), vAddr(j))
		}
		b.WriteString("    halt\n")
		if err := s.LoadASM(n, 0, 0, b.String()); err != nil {
			return 0, err
		}
	}
	cycles, err := s.Run(10_000_000)
	if err != nil {
		return 0, err
	}
	// Verify the full v array.
	for j := 1; j < gridTotal-1; j++ {
		got, err := s.Peek(j/chunk, vAddr(j))
		if err != nil {
			return 0, fmt.Errorf("v[%d]: %w", j, err)
		}
		if got != want[j] {
			return 0, fmt.Errorf("v[%d] = %d, want %d", j, got, want[j])
		}
	}
	return cycles, nil
}

// FormatGridSmooth renders the scaling table.
func FormatGridSmooth(rows []GridScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "512-element grid smoothing, block-distributed\n")
	fmt.Fprintf(&b, "%-6s %10s %9s\n", "nodes", "cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %10d %8.2fx\n", r.Nodes, r.Cycles, r.Speedup)
	}
	return b.String()
}
