package core

// Grid smoothing at machine scale: the application story of the paper's
// introduction ("nodes are designed to manage parallelism from the
// instruction level to the process level... collaborating threads reside on
// different nodes"). A 1-D grid is block-distributed across nodes; each
// node smooths its own chunk (v[j] = u[j-1] + u[j] + u[j+1]) with purely
// local accesses in the interior and transparent remote accesses for the
// halo elements at chunk boundaries. Scaling the node count shrinks each
// node's chunk while the flat shared address space keeps the program
// unchanged except for its loop bounds. The program generators live in
// internal/workload (MeshSmooth), shared with the large-mesh scaling
// experiment, the parallel-engine benchmarks, and examples/bigmesh.

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/workload"
)

const gridTotal = 512 // grid elements of the small-machine experiment

// GridScaleRow reports one machine size.
type GridScaleRow struct {
	Nodes   int
	Cycles  int64
	Speedup float64
}

// GridSmoothExperiment runs the distributed smoothing pass on 1-, 2- and
// 4-node machines and checks the result against a host-computed reference.
func GridSmoothExperiment() ([]GridScaleRow, error) {
	// The three machine sizes are independent machines: measure them
	// concurrently, then derive the speedup column from the 1-node base.
	sizes := []int{1, 2, 4}
	rows := make([]GridScaleRow, len(sizes))
	err := ForEachMachine(len(sizes), func(i int) error {
		g, err := workload.NewMeshSmooth(sizes[i], gridTotal)
		if err != nil {
			return err
		}
		cycles, err := runMeshSmooth(Options{Nodes: sizes[i]}, g)
		if err != nil {
			return fmt.Errorf("grid smooth on %d nodes: %w", sizes[i], err)
		}
		rows[i] = GridScaleRow{Nodes: sizes[i], Cycles: cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := rows[0].Cycles
	for i := range rows {
		rows[i].Speedup = float64(base) / float64(rows[i].Cycles)
	}
	return rows, nil
}

// runMeshSmooth boots a machine with the given options, stages the grid,
// runs the smoothing pass, and verifies every output element against the
// host-computed reference. It returns the cycles of the smoothing run.
func runMeshSmooth(o Options, g *workload.MeshSmooth) (int64, error) {
	s, err := NewSim(o)
	if err != nil {
		return 0, err
	}
	if n := s.M.NumNodes(); n != g.Nodes {
		return 0, fmt.Errorf("mesh smooth: %d-node workload on %d-node machine", g.Nodes, n)
	}
	for n := 0; n < g.Nodes; n++ {
		if err := s.LoadASM(n, 3, 3, g.StageSrc(n, s.HomeBase)); err != nil {
			return 0, err
		}
	}
	if _, err := s.Run(5_000_000); err != nil {
		return 0, err
	}
	for n := 0; n < g.Nodes; n++ {
		if err := s.LoadASM(n, 0, 0, g.WorkerSrc(n, s.HomeBase)); err != nil {
			return 0, err
		}
	}
	cycles, err := s.Run(10_000_000)
	if err != nil {
		return 0, err
	}
	for j := 1; j < g.Total()-1; j++ {
		got, err := s.Peek(j/g.Chunk, g.VAddr(s.HomeBase, j))
		if err != nil {
			return 0, fmt.Errorf("v[%d]: %w", j, err)
		}
		if got != g.Want(j) {
			return 0, fmt.Errorf("v[%d] = %d, want %d", j, got, g.Want(j))
		}
	}
	return cycles, nil
}

// FormatGridSmooth renders the scaling table.
func FormatGridSmooth(rows []GridScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "512-element grid smoothing, block-distributed\n")
	fmt.Fprintf(&b, "%-6s %10s %9s\n", "nodes", "cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %10d %8.2fx\n", r.Nodes, r.Cycles, r.Speedup)
	}
	return b.String()
}

// --- E14 (extension): large-mesh scaling under the parallel engine ---

// MeshScaleRow reports one large-mesh configuration.
type MeshScaleRow struct {
	Dims    noc.Coord
	Nodes   int
	Cycles  int64
	Speedup float64 // vs the smallest configuration's cycles
}

// MeshScaleExperiment runs the smoothing pass over a fixed 2048-element
// grid on progressively larger 3-D meshes — up to the 4x4x2 and 8x8x2
// configurations the parallel engine targets — under the parallel chip
// engine (Workers: -1; on a single-core host this degrades to the serial
// engine with identical results). Larger meshes also mean a smaller busy
// fraction per cycle (the fixed grid spreads thinner), which is the mix
// the engine's active-set scheduling and shard rebalancing are for (see
// DESIGN.md, "Active-set scheduling"). Simulated cycle counts are
// host-independent; the point of the sweep is that larger meshes finish
// the same grid in fewer simulated cycles while the parallel engine keeps
// host wall-clock per configuration roughly flat.
func MeshScaleExperiment() ([]MeshScaleRow, error) {
	const total = 2048
	dims := []noc.Coord{
		{X: 2, Y: 1, Z: 1},
		{X: 4, Y: 2, Z: 1},
		{X: 4, Y: 4, Z: 2},
		{X: 8, Y: 8, Z: 2},
	}
	rows := make([]MeshScaleRow, len(dims))
	err := ForEachMachine(len(dims), func(i int) error {
		d := dims[i]
		nodes := d.X * d.Y * d.Z
		g, err := workload.NewMeshSmooth(nodes, total)
		if err != nil {
			return err
		}
		cycles, err := runMeshSmooth(Options{Dims: d, Workers: -1}, g)
		if err != nil {
			return fmt.Errorf("mesh smooth on %v: %w", d, err)
		}
		rows[i] = MeshScaleRow{Dims: d, Nodes: nodes, Cycles: cycles}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := rows[0].Cycles
	for i := range rows {
		rows[i].Speedup = float64(base) / float64(rows[i].Cycles)
	}
	return rows, nil
}

// FormatMeshScale renders the large-mesh scaling table.
func FormatMeshScale(rows []MeshScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "2048-element grid smoothing on 3-D meshes (parallel chip engine)\n")
	fmt.Fprintf(&b, "%-8s %6s %10s %9s\n", "mesh", "nodes", "cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%dx%dx%d   %6d %10d %8.2fx\n",
			r.Dims.X, r.Dims.Y, r.Dims.Z, r.Nodes, r.Cycles, r.Speedup)
	}
	return b.String()
}
