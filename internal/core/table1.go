package core

// Table 1 of the paper: local and remote access times in cycles, for reads
// and writes across six memory-system states. Reads are timed exactly as
// the paper defines completion ("the requested data has been written into
// the destination register") by observing when a dependent operation can
// issue; writes are timed to the completion of the store at its home node
// ("the line containing the data has been fully loaded into the cache").
//
// Every cell is measured on a fresh two-node machine staged into the row's
// state, with the software handlers doing the work for the LTLB-miss and
// remote rows — the same methodology as the paper's Section 4.2.

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// AccessClass names a Table 1 row.
type AccessClass int

const (
	LocalCacheHit AccessClass = iota
	LocalCacheMiss
	LocalLTLBMiss
	RemoteCacheHit
	RemoteCacheMiss
	RemoteLTLBMiss
	numAccessClasses
)

// String names the access class as Table 1 prints it.
func (a AccessClass) String() string {
	switch a {
	case LocalCacheHit:
		return "Local Cache Hit"
	case LocalCacheMiss:
		return "Local Cache Miss"
	case LocalLTLBMiss:
		return "Local LTLB Miss"
	case RemoteCacheHit:
		return "Remote Cache Hit"
	case RemoteCacheMiss:
		return "Remote Cache Miss"
	case RemoteLTLBMiss:
		return "Remote LTLB Miss"
	}
	return "?"
}

// Table1Row holds measured and paper-reported latencies for one access
// class.
type Table1Row struct {
	Class       AccessClass
	Read, Write int64
	PaperRead   int64
	PaperWrite  int64
}

// paperTable1 is Table 1 of the paper, for side-by-side reporting.
var paperTable1 = [numAccessClasses][2]int64{
	LocalCacheHit:   {3, 2},
	LocalCacheMiss:  {13, 19},
	LocalLTLBMiss:   {61, 67},
	RemoteCacheHit:  {138, 74},
	RemoteCacheMiss: {154, 90},
	RemoteLTLBMiss:  {202, 138},
}

// Table1 measures every cell and returns the rows in paper order. The six
// classes each stage a fresh two-node machine and run concurrently
// (ForEachMachine); within a class, the write cell warm-starts from a
// fork of the staged machine (see measureClass), so staging runs once per
// class instead of once per cell. The rows are assembled in paper order
// regardless.
func Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, numAccessClasses)
	err := ForEachMachine(int(numAccessClasses), func(i int) error {
		c := AccessClass(i)
		rd, wr, err := measureClass(c)
		if err != nil {
			return fmt.Errorf("table1 %s: %w", c, err)
		}
		rows[c].Read, rows[c].Write = rd, wr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for c := AccessClass(0); c < numAccessClasses; c++ {
		rows[c].Class = c
		rows[c].PaperRead = paperTable1[c][0]
		rows[c].PaperWrite = paperTable1[c][1]
	}
	return rows, nil
}

// measureClass stages a fresh machine into the class's state, then times
// the read cell on the staged machine and the write cell on a fork taken
// before the read — the checkpoint subsystem's warm start for the
// harness. The fork is bit-identical to the staged machine (pinned by
// TestSnapshotRoundTripMatrix), so the write measurement equals the
// historical methodology's, which staged a second machine from scratch.
func measureClass(class AccessClass) (read, write int64, err error) {
	s, err := NewSim(Options{Nodes: 2})
	if err != nil {
		return 0, 0, err
	}
	local := class <= LocalLTLBMiss
	var addr uint64
	if local {
		addr = 16 // block 2 of node 0's first page
	} else {
		addr = s.HomeBase(1) + 16
	}

	if err := stageAccess(s, class, addr); err != nil {
		return 0, 0, err
	}
	w, err := s.Fork()
	if err != nil {
		return 0, 0, err
	}
	defer w.M.Close()
	if read, err = timeRead(s, addr); err != nil {
		return 0, 0, err
	}
	if write, err = timeWrite(w, class, addr); err != nil {
		return 0, 0, err
	}
	return read, write, nil
}

// stageAccess prepares the memory system state for the class.
func stageAccess(s *Sim, class AccessClass, addr uint64) error {
	switch class {
	case LocalCacheHit, LocalCacheMiss:
		s.MapLocal(0, addr/512, 2 /* BSReadWrite */, true)
	case LocalLTLBMiss:
		s.MapLocal(0, addr/512, 2, false) // LPT only
	case RemoteCacheHit, RemoteCacheMiss, RemoteLTLBMiss:
		// First-touch at the home node creates the page, primes its LTLB,
		// and stages the value; the warm-up loads also fill the cache line.
		src := fmt.Sprintf(`
    movi i1, #%d
    movi i2, #4242
    st [i1], i2
    ld i3, [i1]
    add i4, i3, #0
    halt
`, addr)
		if err := s.LoadASM(1, 0, 0, src); err != nil {
			return err
		}
		if _, err := s.Run(100000); err != nil {
			return err
		}
		if class >= RemoteCacheMiss {
			s.M.Chip(1).Mem.Cache.FlushAll(s.M.Chip(1).Mem.SDRAM)
		}
		if class == RemoteLTLBMiss {
			s.M.Chip(1).Mem.TLBInvalidate(addr / 512)
		}
		return nil
	}
	if err := s.Poke(0, addr, 4242); err != nil {
		return err
	}
	// Warm-up policy for the local rows: for a hit, touch the measured
	// word; for misses, touch a neighbouring block so the SDRAM row is
	// open but the measured block is not cached (the paper's Table 1
	// assumes the page-mode common case).
	warm := addr
	if class != LocalCacheHit {
		warm = addr - 8
	}
	warmSrc := fmt.Sprintf(`
    movi i1, #%d
    ld i2, [i1]
    add i3, i2, #0
    halt
`, warm)
	if err := s.LoadASM(0, 1, 0, warmSrc); err != nil {
		return err
	}
	if _, err := s.Run(100000); err != nil {
		return err
	}
	if class == LocalLTLBMiss {
		// The warm-up access pulled the entry into the LTLB; evict it
		// again so the measured access misses (LPT stays valid).
		s.M.Chip(0).Mem.TLBInvalidate(addr / 512)
	}
	return nil
}

// timeRead measures read-to-register-writeback latency with the
// cycle-counter bracket: ld issues one cycle after the first cyc read, and
// the final cyc read issues one cycle after the dependent add.
func timeRead(s *Sim, addr uint64) (int64, error) {
	src := fmt.Sprintf(`
    movi i1, #%d
    mov i8, cyc
    ld i2, [i1]
    add i3, i2, #0
    mov i9, cyc
    halt
`, addr)
	if err := s.LoadASM(0, 0, 0, src); err != nil {
		return 0, err
	}
	if _, err := s.Run(200000); err != nil {
		return 0, err
	}
	t0 := int64(s.Reg(0, 0, 0, 8))
	t1 := int64(s.Reg(0, 0, 0, 9))
	return t1 - t0 - 2, nil
}

// timeWrite measures store-issue to store-completion. Completion is the
// mem-complete trace event for the measured address: at node 0 for local
// rows, at the home node (possibly after handler retries) for remote rows.
func timeWrite(s *Sim, class AccessClass, addr uint64) (int64, error) {
	src := fmt.Sprintf(`
    movi i1, #%d
    movi i2, #5151
    mov i8, cyc
    st [i1], i2
    halt
`, addr)
	if err := s.LoadASM(0, 0, 0, src); err != nil {
		return 0, err
	}
	start := s.M.Cycle
	if _, err := s.Run(200000); err != nil {
		return 0, err
	}
	issue := int64(s.Reg(0, 0, 0, 8)) + 1
	node := 0
	if class >= RemoteCacheHit {
		node = 1
	}
	want := fmt.Sprintf("write addr=%#x", addr)
	ev, ok := s.Recorder.FirstMatch(start, func(e trace.Event) bool {
		return e.Node == node && e.Name == "mem-complete" && e.Detail == want
	})
	if !ok {
		return 0, fmt.Errorf("no completion event for %s", want)
	}
	return ev.Cycle - issue, nil
}

// FormatTable1 renders rows as the paper's table with a measured column.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s  %14s  %14s\n", "", "read (cycles)", "write (cycles)")
	fmt.Fprintf(&b, "%-18s  %6s %7s  %6s %7s\n", "Access Type", "paper", "ours", "paper", "ours")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s  %6d %7d  %6d %7d\n",
			r.Class, r.PaperRead, r.Read, r.PaperWrite, r.Write)
	}
	return b.String()
}
