package core

// Resumable scenario execution: a ScenarioRun is Scenario.Run taken apart
// into externally driven quanta, so a caller can interleave its own work
// — periodic checkpoints, progress streaming, drain checks — between
// steps without changing a single simulated result. This is the
// execution core of the msimd session service (internal/serve, DESIGN.md
// "The simulation service"): the service checkpoints a session at quantum
// boundaries and, after a contained crash, restores the snapshot into a
// fresh machine and Seeks the run back to the recorded position, from
// where execution is bit-identical to a run that was never interrupted.
//
// A quantum is either one non-run plan step (map, poke, load, expect,
// check) or one slice of a run phase. Slicing is itself deterministic:
// for a fixed slice size, the sequence of machine.Run bounds — and
// therefore every simulated cycle, including the completion-detection
// quiet windows — is a pure function of the plan, so two runs of the same
// scenario under the same slice size agree bit for bit, whether or not
// one of them was checkpointed, killed, restored, and resumed in the
// middle. (Different slice sizes are different — but equally valid —
// executions: the quiet-window padding between slices lands at different
// cycles. Scenario.Run uses unsliced phases, the historical behavior.)

import (
	"errors"
	"fmt"

	"repro/internal/guard"
	"repro/internal/machine"
	"repro/internal/workload"
)

// ScenarioRun is an in-progress execution of a Scenario on one simulator.
// It is not concurrency-safe: one Advance at a time, like the machine it
// drives. Create one with Scenario.NewRun.
type ScenarioRun struct {
	sc  *Scenario
	s   *Sim
	env workload.Env
	res ScenarioResult

	next     int   // index of the next plan step to execute
	phaseRan int64 // cycles consumed by a partially executed run phase at next
}

// NewRun prepares a stepwise execution of the scenario on s, positioned
// at the first plan step. The simulator must have been booted for this
// scenario (Scenario.NewSim); the caller drives it with Advance.
func (sc *Scenario) NewRun(s *Sim) *ScenarioRun {
	return &ScenarioRun{sc: sc, s: s, env: workload.Env{
		Nodes:              s.M.NumNodes(),
		HomeBase:           s.HomeBase,
		DIPRemoteWrite:     s.RT.DIPRemoteWrite,
		DIPRemoteWriteSync: s.RT.DIPRemoteWriteSync,
	}}
}

// Done reports whether every plan step has completed.
func (r *ScenarioRun) Done() bool { return r.next >= len(r.sc.Plan.Steps) }

// Pos reports the resume position: the index of the next plan step and
// the cycles already consumed by a partially executed run phase at that
// index (0 unless the last Advance sliced a phase). Together with a
// machine snapshot taken at the same quantum boundary, Pos is everything
// a checkpoint needs to Seek a fresh run back to this point.
func (r *ScenarioRun) Pos() (step int, phaseCycles int64) { return r.next, r.phaseRan }

// Phases returns the per-phase results recorded so far. The returned
// slice is the run's own; callers must not mutate it.
func (r *ScenarioRun) Phases() []PhaseResult { return r.res.Phases }

// Checks returns the count of expect/check steps that have passed.
func (r *ScenarioRun) Checks() int { return r.res.Checks }

// Seek repositions the run to a checkpointed position: the next step
// index and mid-phase cycle count from Pos, and the results accumulated
// before the checkpoint. The simulator must already hold the matching
// machine snapshot (machine.Restore); Seek validates only the position.
func (r *ScenarioRun) Seek(step int, phaseCycles int64, phases []PhaseResult, checks int) error {
	if step < 0 || step > len(r.sc.Plan.Steps) {
		return fmt.Errorf("core: seek to step %d of a %d-step plan", step, len(r.sc.Plan.Steps))
	}
	if phaseCycles < 0 {
		return fmt.Errorf("core: seek to negative phase position %d", phaseCycles)
	}
	if phaseCycles > 0 && (step >= len(r.sc.Plan.Steps) || r.sc.Plan.Steps[step].Kind != workload.PlanRun) {
		return fmt.Errorf("core: seek mid-phase (%d cycles) into step %d, which is not a run phase", phaseCycles, step)
	}
	if checks < 0 {
		return fmt.Errorf("core: seek with negative check count %d", checks)
	}
	r.next = step
	r.phaseRan = phaseCycles
	r.res.Phases = append(r.res.Phases[:0], phases...)
	r.res.Checks = checks
	return nil
}

// A PhaseRunner executes run phases (or slices of them) against whatever
// engine is driving the machine: guard.Supervisor is the in-process
// implementation, and the distributed coordinator (internal/dist)
// provides another. RunPhase semantics follow Supervisor.RunPhase — run
// up to maxCycles simulated cycles with Machine.Run's completion
// detection, returning the cycles executed (excluding the quiet window)
// and machine.ErrCycleLimit when only the bound expired — so the slicing
// arithmetic in Advance is engine-independent.
type PhaseRunner interface {
	RunPhase(maxCycles int64) (int64, error)
}

// Advance executes one quantum under the phase runner: one non-run plan
// step, or one slice of the current run phase — up to maxSlice cycles
// when maxSlice > 0, the phase's whole remaining budget otherwise. It
// reports whether the quantum advanced the machine (a run-phase slice),
// which is when a checkpointing caller should snapshot: the machine is
// between cycles and Pos names the position exactly.
//
// With a guard.Supervisor as the runner, Advance must be called inside
// the supervisor's Do (or via a wrapper like Scenario.RunSim) so the
// panic-containment and watchdog contracts hold; the supervisor's cycle
// budget clamps run slices exactly as it clamps whole phases. Errors
// follow Scenario.Run: watchdog classes (*guard.StallError,
// machine.ErrStopped) pass through unwrapped, everything else carries the
// step's source position.
func (r *ScenarioRun) Advance(sup PhaseRunner, maxSlice int64) (ranPhase bool, err error) {
	if r.Done() {
		return false, nil
	}
	st := &r.sc.Plan.Steps[r.next]
	if st.Kind != workload.PlanRun {
		if err := r.sc.step(r.s, r.env, st, &r.res); err != nil {
			return false, err
		}
		r.next++
		return false, nil
	}

	// One slice of the run phase. The slice bound is a pure function of
	// (budget, phaseRan, maxSlice), so a resumed run re-derives the exact
	// bound sequence of an uninterrupted one.
	leg := st.Budget - r.phaseRan
	if leg < 1 {
		// Quiet-window padding of earlier slices overshot the leg budget;
		// give the phase one last cycle to prove completion, exactly as a
		// (deterministic) rerun of this position would.
		leg = 1
	}
	bound := leg
	sliced := maxSlice > 0 && maxSlice < leg
	if sliced {
		bound = maxSlice
	}
	n, err := sup.RunPhase(bound)
	r.phaseRan += n
	if err != nil {
		if sliced && errors.Is(err, machine.ErrCycleLimit) {
			// Only the slice expired, not the phase's own budget: the
			// phase continues at the next Advance.
			return true, nil
		}
		// Watchdog classes must reach the supervisor unwrapped — the
		// positional formatting would break errors.As/Is and rob Do of
		// the chance to attach diagnostics and the dump.
		var se *guard.StallError
		if errors.As(err, &se) || errors.Is(err, machine.ErrStopped) {
			return true, err
		}
		return true, fmt.Errorf("%s: %v", st.Pos, err)
	}
	name := st.Phase
	if name == "" {
		name = fmt.Sprintf("phase%d", len(r.res.Phases))
	}
	r.res.Phases = append(r.res.Phases, PhaseResult{Name: name, Cycles: r.phaseRan})
	r.phaseRan = 0
	r.next++
	return true, nil
}

// Result finalizes and returns the scenario result. Meaningful once Done
// reports true; the totals are read from the machine at call time.
func (r *ScenarioRun) Result() *ScenarioResult {
	r.res.TotalCycles = r.s.M.Cycle
	r.res.Stats = r.s.Stats()
	out := r.res
	return &out
}
