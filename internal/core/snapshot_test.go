package core

// Simulator-facade checkpoint tests: a restored simulator matches a
// never-snapshotted one, forks evolve independently, and the recorder
// keeps tracing across a restore. The engine-matrix coverage of snapshot
// round-trips lives in internal/machine (TestSnapshotRoundTripMatrix);
// Table1 — whose write cells warm-start from forks of the staged
// machines — is additionally pinned across engines by
// TestDeterminismEngines.

import (
	"bytes"
	"fmt"
	"testing"
)

// simResult runs the simulator's loaded program and fingerprints it.
func simResult(t *testing.T, s *Sim) string {
	t.Helper()
	ran, err := s.Run(200000)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	return fmt.Sprintf("ran=%d i5=%d insts=%d msgs=%d ltlb=%d",
		ran, s.Reg(0, 0, 0, 5), st.Instructions, st.MsgsInjected, st.LTLBFaults)
}

const snapTestProg = `
    movi i1, #4096          ; node 1's home range: remote traffic
    movi i2, #0
    movi i3, #10
loop:
    st [i1], i2
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #5
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`

// TestRestoredBootMatchesFreshBoot: restoring a fresh boot's snapshot
// over another fresh boot must run a workload to the exact result of a
// never-snapshotted simulator (restore loses and invents nothing).
func TestRestoredBootMatchesFreshBoot(t *testing.T) {
	fresh, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadASM(0, 0, 0, snapTestProg); err != nil {
		t.Fatal(err)
	}
	want := simResult(t, fresh)

	src, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	warm, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := warm.LoadASM(0, 0, 0, snapTestProg); err != nil {
		t.Fatal(err)
	}
	if got := simResult(t, warm); got != want {
		t.Errorf("restored boot diverged: %s vs fresh %s", got, want)
	}
}

// TestSimFork: a fork taken mid-run matches its parent's continuation,
// and mutating the fork does not leak into the parent.
func TestSimFork(t *testing.T) {
	s, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadASM(0, 0, 0, snapTestProg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntil(func() bool { return false }, 300); err == nil {
		t.Fatal("RunUntil with a false predicate should time out")
	}
	f, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer f.M.Close()
	// Perturb the fork's accumulator: its result must change while the
	// parent's does not.
	g, err := s.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer g.M.Close()
	g.SetReg(0, 0, 0, 5, 100000)

	want := simResult(t, s)
	if got := simResult(t, f); got != want {
		t.Errorf("fork diverged from parent: %s vs %s", got, want)
	}
	if got := simResult(t, g); got == want {
		t.Errorf("perturbed fork still matched parent (%s) — forks are not independent", got)
	}
}

// TestSimRestoreKeepsRecording: the Sim's trace recorder installed before
// a restore keeps receiving events after it.
func TestSimRestoreKeepsRecording(t *testing.T) {
	a, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LoadASM(0, 0, 0, snapTestProg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}

	b, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(200000); err != nil {
		t.Fatal(err)
	}
	if len(b.Recorder.Events) == 0 {
		t.Error("no trace events recorded after restore")
	}
}
