package core

// Sweep execution (DESIGN.md "Workload DSL v2"): a sweep scenario's
// shared staging prefix runs once on a freshly booted machine, then
// every sweep point runs on a Fork of that staged machine — a bit-exact
// snapshot clone — so N points cost one staging instead of N. Because
// the fork is exact, a point's simulated results and final state digest
// are bit-identical to booting a fresh machine and replaying prefix +
// point from scratch (Plan.PointPlan); TestSweepMatchesStandalone pins
// that equivalence across every engine.
//
// When the mesh dimensions themselves are swept there is nothing to
// share — the staged machines differ in shape — so each point boots its
// own machine and the prefix is empty by construction (the lowering
// forces the split to 0).

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/workload"
)

// PointResult is one sweep point's outcome. Phases carry the point
// prefix in their names ("MSGS=4/work"); Digest fingerprints the
// point's final machine state (hex sha256 of the snapshot, comparable
// with dist.Digest).
type PointResult struct {
	Name        string // "NAME=value"
	Phases      []PhaseResult
	TotalCycles int64 // point machine's cycle counter at the end
	Checks      int
	Digest      string
}

// runSweep executes a sweep scenario: prefix once, then one forked (or,
// for swept meshes, freshly booted) machine per point. The returned Sim
// is the staging machine; its recorder accumulates every point's trace
// events after its own, so the full run remains observable through one
// stream. Point supervision budgets count cycles from the fork — the
// budget directive bounds each point's own work, not the shared
// staging.
func (sc *Scenario) runSweep(o Options) (*ScenarioResult, *Sim, error) {
	plan := sc.Plan
	s, err := sc.NewSim(o)
	if err != nil {
		return nil, nil, err
	}

	// The staging prefix, under the scenario-wide supervision bounds.
	prefix := &Scenario{Name: sc.Name, Plan: &workload.Plan{
		Title: plan.Title, Dims: plan.Dims, Caching: plan.Caching,
		Deadline: plan.Deadline, CycleBudget: plan.CycleBudget,
		Steps: plan.Steps,
	}}
	gopt := guard.Options{Timeout: o.Timeout, CycleBudget: o.CycleBudget, DumpPath: o.CrashDump}
	if gopt.Timeout == 0 {
		gopt.Timeout = plan.Deadline
	}
	if gopt.CycleBudget == 0 {
		gopt.CycleBudget = plan.CycleBudget
	}
	sup := guard.New(s.M, gopt)
	var res *ScenarioResult
	err = sup.Do(func() error {
		var e error
		res, e = prefix.runOn(s, sup)
		return e
	})
	if err != nil {
		if !guard.IsHang(err) {
			s.M.Close()
		}
		return nil, s, err
	}

	for i := range plan.Sweep.Points {
		pt := &plan.Sweep.Points[i]
		point := &Scenario{Name: sc.Name, Plan: &workload.Plan{
			Title: pt.Name, Dims: pt.Dims, Caching: plan.Caching,
			Deadline: plan.Deadline, CycleBudget: pt.CycleBudget,
			Steps: pt.Steps,
		}}
		var ps *Sim
		if plan.Sweep.MeshSwept {
			ps, err = point.NewSim(o)
		} else {
			ps, err = s.Fork()
		}
		if err == nil {
			var pr *PointResult
			pr, err = point.runPoint(ps, o, pt.Name, s)
			if pr != nil {
				res.Phases = append(res.Phases, pr.Phases...)
				res.Checks += pr.Checks
				res.Points = append(res.Points, *pr)
			}
		}
		if err != nil {
			s.M.Close()
			return nil, s, fmt.Errorf("sweep point %s: %w", pt.Name, err)
		}
	}

	if res.Digest, err = machineDigest(s.M); err != nil {
		s.M.Close()
		return nil, s, err
	}
	s.M.Close()
	return res, s, nil
}

// runPoint executes one point's suffix plan on its machine (a fork of
// the staging machine, or a fresh boot for swept meshes) under the
// point's own supervision bounds, then folds the point's trace events
// into parent's recorder so the whole sweep reads as one stream.
func (sc *Scenario) runPoint(ps *Sim, o Options, name string, parent *Sim) (*PointResult, error) {
	gopt := guard.Options{Timeout: o.Timeout, CycleBudget: o.CycleBudget, DumpPath: o.CrashDump}
	if gopt.Timeout == 0 {
		gopt.Timeout = sc.Plan.Deadline
	}
	if gopt.CycleBudget == 0 {
		gopt.CycleBudget = sc.Plan.CycleBudget
	}
	sup := guard.New(ps.M, gopt)
	var res *ScenarioResult
	err := sup.Do(func() error {
		var e error
		res, e = sc.runOn(ps, sup)
		return e
	})
	var digest string
	if err == nil {
		digest, err = machineDigest(ps.M)
	}
	if guard.IsHang(err) {
		// A wedged run goroutine still owns the point machine; abandon
		// it un-Closed (its events stay unobserved).
		return nil, err
	}
	parent.Recorder.Events = append(parent.Recorder.Events, ps.Recorder.Events...)
	ps.M.Close()
	if err != nil {
		return nil, err
	}
	pr := &PointResult{Name: name, TotalCycles: ps.M.Cycle, Checks: res.Checks, Digest: digest}
	for _, ph := range res.Phases {
		pr.Phases = append(pr.Phases, PhaseResult{Name: name + "/" + ph.Name, Cycles: ph.Cycles})
	}
	return pr, nil
}
