package core

// Determinism regression for the event-driven cycle engine: every
// experiment must produce bit-identical results — cycle counts, register
// state, statistics, and trace event streams — whether the machine runs
// the naive per-cycle loop (Machine.StepAll) or the fast-forwarding
// event engine. See DESIGN.md, "The NextEvent contract".

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

// underEngine runs f with the package-default engine forced to naive or
// event-driven, restoring the default afterwards.
func underEngine(naive bool, f func() (string, error)) (string, error) {
	SetDefaultEngine(naive)
	defer SetDefaultEngine(false)
	return f()
}

// bothEngines runs f under each engine and fails the test on any
// difference between the two fingerprints.
func bothEngines(t *testing.T, name string, f func() (string, error)) {
	t.Helper()
	naive, err := underEngine(true, f)
	if err != nil {
		t.Fatalf("%s (naive engine): %v", name, err)
	}
	event, err := underEngine(false, f)
	if err != nil {
		t.Fatalf("%s (event engine): %v", name, err)
	}
	if naive != event {
		t.Errorf("%s diverged between engines:\n--- naive ---\n%s\n--- event ---\n%s",
			name, naive, event)
	}
}

// TestDeterminismEngines re-runs each core experiment under both engines.
func TestDeterminismEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	t.Run("Table1", func(t *testing.T) {
		bothEngines(t, "table1", func() (string, error) {
			rows, err := Table1()
			return fmt.Sprintf("%+v", rows), err
		})
	})
	t.Run("Figure9", func(t *testing.T) {
		bothEngines(t, "figure9", func() (string, error) {
			r, w, err := Figure9()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v %+v", *r, *w), nil
		})
	})
	t.Run("GridSmooth", func(t *testing.T) {
		bothEngines(t, "gridsmooth", func() (string, error) {
			rows, err := GridSmoothExperiment()
			return fmt.Sprintf("%+v", rows), err
		})
	})
	t.Run("NetSweep", func(t *testing.T) {
		bothEngines(t, "netsweep", func() (string, error) {
			rows, err := NetworkSweepExperiment()
			return fmt.Sprintf("%+v", rows), err
		})
	})
}

// TestDeterminismTraceAndState drives a mixed multi-node workload under
// both engines and compares the complete observable machine state: run
// cycle counts, every register (value, tag, and scoreboard bit), thread
// status and PCs, per-chip statistics including the stall counters the
// fast-forward path replays, and the full trace event stream.
func TestDeterminismTraceAndState(t *testing.T) {
	workload := func() (string, error) {
		s, err := NewSim(Options{Nodes: 4, Caching: true})
		if err != nil {
			return "", err
		}
		// Node 0: remote stores and loads against node 1's home range.
		if err := s.LoadASM(0, 0, 0, `
    movi i1, #4096
    movi i2, #0
    movi i3, #12
loop:
    st [i1], i2
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #5
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`); err != nil {
			return "", err
		}
		// Node 2: purely local work with LTLB misses.
		if err := s.LoadASM(2, 0, 0, `
    movi i1, #8192
    movi i2, #0
    movi i3, #20
loop:
    st [i1], i2
    add i1, i1, #9
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`); err != nil {
			return "", err
		}
		// Node 3 stays completely idle: the engine must skip it for free
		// while still accounting its handler threads' stall cycles.
		cycles, err := s.Run(500000)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "cycles=%d end=%d\n", cycles, s.M.Cycle)
		for n := 0; n < s.M.NumNodes(); n++ {
			c := s.M.Chip(n)
			fmt.Fprintf(&b, "node%d insts=%d ops=%d blocked=%d returned=%d ltlb=%d status=%d sync=%d\n",
				n, c.InstsIssued, c.OpsIssued, c.SendsBlocked, c.MsgsReturned,
				c.Mem.LTLBFaults, c.Mem.StatusFaults, c.Mem.SyncFaults)
			for vt := 0; vt < isa.NumVThreads; vt++ {
				for cl := 0; cl < isa.NumClusters; cl++ {
					th := c.Thread(vt, cl)
					fmt.Fprintf(&b, "  t%d.%d st=%v pc=%d issued=%d stalls=%d",
						vt, cl, th.Status, th.PC, th.Issued, th.StallCycles)
					for i := 0; i < th.Ints.Len(); i++ {
						w := th.Ints.Get(i)
						fmt.Fprintf(&b, " i%d=%x/%v/%v", i, w.Bits, w.Ptr, th.Ints.Full(i))
					}
					for i := 0; i < th.FPs.Len(); i++ {
						w := th.FPs.Get(i)
						fmt.Fprintf(&b, " f%d=%x/%v", i, w.Bits, th.FPs.Full(i))
					}
					b.WriteString("\n")
				}
			}
		}
		for _, e := range s.Recorder.Events {
			fmt.Fprintf(&b, "trace %d %d %s %s\n", e.Cycle, e.Node, e.Name, e.Detail)
		}
		return b.String(), nil
	}
	bothEngines(t, "trace+state", workload)
}

// TestDeterminismLockstep steps a naive and an event-engine machine in
// strict lockstep (via Machine.Step, no fast-forward jumps) and asserts
// identical per-cycle trace streams — the cycle-for-cycle form of the
// equivalence the fast-forward path then builds on.
func TestDeterminismLockstep(t *testing.T) {
	build := func(naive bool) (*Sim, error) {
		s, err := NewSim(Options{Nodes: 2, NaiveEngine: naive})
		if err != nil {
			return nil, err
		}
		err = s.LoadASM(0, 0, 0, `
    movi i1, #4100
    movi i2, #777
    st [i1], i2
    ld i3, [i1]
    add i4, i3, #1
    halt
`)
		return s, err
	}
	a, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(false)
	if err != nil {
		t.Fatal(err)
	}
	tr := func(s *Sim) string { return trace.Timeline(s.Recorder.Events) }
	for i := 0; i < 2000; i++ {
		a.M.Step()
		b.M.Step()
		if a.M.Cycle != b.M.Cycle {
			t.Fatalf("cycle skew at step %d: %d vs %d", i, a.M.Cycle, b.M.Cycle)
		}
	}
	if tr(a) != tr(b) {
		t.Fatalf("trace streams diverged:\n--- naive ---\n%s\n--- event ---\n%s", tr(a), tr(b))
	}
	if got, want := b.Reg(0, 0, 0, 4), a.Reg(0, 0, 0, 4); got != want {
		t.Fatalf("final i4: event %d vs naive %d", got, want)
	}
}
