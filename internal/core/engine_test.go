package core

// Determinism regression for the cycle engines: every experiment must
// produce bit-identical results — cycle counts, register state,
// statistics, and trace event streams — whether the machine runs the
// naive per-cycle loop (Machine.StepAll), the fast-forwarding event
// engine, or the goroutine-sharded parallel engine, under any shard
// count. See DESIGN.md, "The NextEvent contract" and "The parallel
// engine".

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/trace"
	"repro/internal/workload"
)

// engineMode names one (engine, shard count, rebalance window)
// configuration.
type engineMode struct {
	name      string
	naive     bool
	workers   int
	rebalance int64 // machine.Config.RebalanceEvery (0 = default window)
}

// engineModes is the cross-engine matrix: the naive reference, the serial
// event engine, and the parallel engine at several shard counts (clamped
// to the node count on small machines, so "parallel8" on a 2-node mesh
// still exercises the 2-shard pool) and shard-rebalance windows — from
// disabled to every-8-busy-cycles, so rebalancing points land inside every
// workload's busy phases.
var engineModes = []engineMode{
	{"naive", true, 0, 0},
	{"event", false, 0, 0},
	{"parallel2", false, 2, -1},
	{"parallel3", false, 3, 0},
	{"parallel3/rebal8", false, 3, 8},
	{"parallel8/rebal64", false, 8, 64},
}

// underMode runs f with the package-default engine forced to the mode,
// restoring the defaults afterwards.
func underMode(m engineMode, f func() (string, error)) (string, error) {
	SetDefaultEngine(m.naive)
	SetDefaultWorkers(m.workers)
	SetDefaultRebalance(m.rebalance)
	defer func() {
		SetDefaultEngine(false)
		SetDefaultWorkers(0)
		SetDefaultRebalance(0)
	}()
	return f()
}

// allEngines runs f under every engine mode and fails the test on any
// fingerprint difference from the naive reference.
func allEngines(t *testing.T, name string, f func() (string, error)) {
	t.Helper()
	ref, err := underMode(engineModes[0], f)
	if err != nil {
		t.Fatalf("%s (%s engine): %v", name, engineModes[0].name, err)
	}
	for _, m := range engineModes[1:] {
		got, err := underMode(m, f)
		if err != nil {
			t.Fatalf("%s (%s engine): %v", name, m.name, err)
		}
		if got != ref {
			t.Errorf("%s diverged between engines:\n--- %s ---\n%s\n--- %s ---\n%s",
				name, engineModes[0].name, ref, m.name, got)
		}
	}
}

// TestDeterminismEngines re-runs each core experiment under every engine.
func TestDeterminismEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	t.Run("Table1", func(t *testing.T) {
		allEngines(t, "table1", func() (string, error) {
			rows, err := Table1()
			return fmt.Sprintf("%+v", rows), err
		})
	})
	t.Run("Figure9", func(t *testing.T) {
		allEngines(t, "figure9", func() (string, error) {
			r, w, err := Figure9()
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%+v %+v", *r, *w), nil
		})
	})
	t.Run("GridSmooth", func(t *testing.T) {
		allEngines(t, "gridsmooth", func() (string, error) {
			rows, err := GridSmoothExperiment()
			return fmt.Sprintf("%+v", rows), err
		})
	})
	t.Run("NetSweep", func(t *testing.T) {
		allEngines(t, "netsweep", func() (string, error) {
			rows, err := NetworkSweepExperiment()
			return fmt.Sprintf("%+v", rows), err
		})
	})
}

// meshWorkload is one scenario of the cross-engine mesh matrix: load
// installs programs (and may run staging phases); post appends
// workload-specific correctness state to the fingerprint.
type meshWorkload struct {
	name string
	load func(s *Sim) error
	post func(s *Sim, b *strings.Builder) error
}

// fingerprint boots a sim with the given options, runs the workload, and
// renders the complete observable machine state: run cycle counts, every
// register (value, tag, and scoreboard bit), thread status and PCs,
// per-chip and network statistics including the stall counters the
// fast-forward path replays, and the full trace event stream.
func fingerprint(o Options, w meshWorkload) (string, error) {
	s, err := NewSim(o)
	if err != nil {
		return "", err
	}
	defer s.M.Close()
	if err := w.load(s); err != nil {
		return "", err
	}
	cycles, err := s.Run(3_000_000)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d end=%d\n", cycles, s.M.Cycle)
	fmt.Fprintf(&b, "net injected=%d delivered=%d hops=%d\n",
		s.M.Net.Injected, s.M.Net.Delivered, s.M.Net.TotalHops)
	for n := 0; n < s.M.NumNodes(); n++ {
		c := s.M.Chip(n)
		fmt.Fprintf(&b, "node%d insts=%d ops=%d blocked=%d returned=%d ltlb=%d status=%d sync=%d\n",
			n, c.InstsIssued, c.OpsIssued, c.SendsBlocked, c.MsgsReturned,
			c.Mem.LTLBFaults, c.Mem.StatusFaults, c.Mem.SyncFaults)
		for vt := 0; vt < isa.NumVThreads; vt++ {
			for cl := 0; cl < isa.NumClusters; cl++ {
				th := c.Thread(vt, cl)
				fmt.Fprintf(&b, "  t%d.%d st=%v pc=%d issued=%d stalls=%d",
					vt, cl, th.Status, th.PC, th.Issued, th.StallCycles)
				for i := 0; i < th.Ints.Len(); i++ {
					w := th.Ints.Get(i)
					fmt.Fprintf(&b, " i%d=%x/%v/%v", i, w.Bits, w.Ptr, th.Ints.Full(i))
				}
				for i := 0; i < th.FPs.Len(); i++ {
					w := th.FPs.Get(i)
					fmt.Fprintf(&b, " f%d=%x/%v", i, w.Bits, th.FPs.Full(i))
				}
				b.WriteString("\n")
			}
		}
	}
	if w.post != nil {
		if err := w.post(s, &b); err != nil {
			return "", err
		}
	}
	for _, e := range s.Recorder.Events {
		fmt.Fprintf(&b, "trace %d %d %s %s\n", e.Cycle, e.Node, e.Name, e.Detail)
	}
	return b.String(), nil
}

// meshWorkloads builds the scenario list for an n-node machine.
func meshWorkloads(n int) []meshWorkload {
	return []meshWorkload{
		{
			// Remote stores/loads from node 0 against the last node's home
			// range, a local LTLB-missing loop on another node, the rest
			// idle — the engine must skip idle nodes while replaying their
			// handler threads' stall accounting.
			name: "mixed",
			load: func(s *Sim) error {
				if err := s.LoadASM(0, 0, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    movi i3, #12
loop:
    st [i1], i2
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #5
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`, s.HomeBase(n-1))); err != nil {
					return err
				}
				local := 1 % n
				return s.LoadASM(local, 1, 0, `
    movi i1, #64
    movi i2, #0
    movi i3, #20
loop:
    st [i1], i2
    add i1, i1, #9
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`)
			},
		},
		{
			// Every node busy: the block-distributed smoothing pass with
			// remote halo reads (staged in a first phase).
			name: "meshsmooth",
			load: func(s *Sim) error {
				g, err := meshSmoothFor(n)
				if err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := s.LoadASM(i, 3, 3, g.StageSrc(i, s.HomeBase)); err != nil {
						return err
					}
				}
				if _, err := s.Run(3_000_000); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if err := s.LoadASM(i, 0, 0, g.WorkerSrc(i, s.HomeBase)); err != nil {
						return err
					}
				}
				return nil
			},
			post: func(s *Sim, b *strings.Builder) error {
				g, err := meshSmoothFor(n)
				if err != nil {
					return err
				}
				for j := 1; j < g.Total()-1; j++ {
					got, err := s.Peek(j/g.Chunk, g.VAddr(s.HomeBase, j))
					if err != nil {
						return fmt.Errorf("v[%d]: %w", j, err)
					}
					if got != g.Want(j) {
						return fmt.Errorf("v[%d] = %d, want %d", j, got, g.Want(j))
					}
					fmt.Fprintf(b, "v%d=%d ", j, got)
				}
				b.WriteString("\n")
				return nil
			},
		},
		{
			// Every node flooding its successor with remote stores: full
			// SEND/ack/throttle traffic on all nodes simultaneously.
			name: "neighbor",
			load: func(s *Sim) error {
				for i := 0; i < n; i++ {
					src := neighborSrc(s, i, n, 16)
					if err := s.LoadASM(i, 0, 0, src); err != nil {
						return err
					}
				}
				return nil
			},
			post: func(s *Sim, b *strings.Builder) error {
				for i := 0; i < n; i++ {
					for w := 0; w < 16; w++ {
						addr := neighborAddr(s, i, w)
						got, err := s.Peek(i, addr)
						if err != nil {
							return fmt.Errorf("mailbox %d.%d: %w", i, w, err)
						}
						if got != addr {
							return fmt.Errorf("mailbox %d.%d = %d, want %d", i, w, got, addr)
						}
					}
					fmt.Fprintf(b, "mbox%d=ok ", i)
				}
				b.WriteString("\n")
				return nil
			},
		},
	}
}

// TestDeterminismThreeWay is the cross-engine matrix: naive vs event vs
// parallel (several shard counts) over multiple mesh sizes and workloads,
// comparing complete state fingerprints including the trace stream.
func TestDeterminismThreeWay(t *testing.T) {
	meshes := []noc.Coord{
		{X: 2, Y: 1, Z: 1},
		{X: 2, Y: 2, Z: 1},
		{X: 4, Y: 2, Z: 2},
	}
	for _, dims := range meshes {
		n := dims.X * dims.Y * dims.Z
		for _, w := range meshWorkloads(n) {
			name := fmt.Sprintf("%dx%dx%d/%s", dims.X, dims.Y, dims.Z, w.name)
			if testing.Short() && n > 4 {
				continue
			}
			t.Run(name, func(t *testing.T) {
				allEngines(t, name, func() (string, error) {
					return fingerprint(Options{Dims: dims}, w)
				})
			})
		}
	}
}

// TestDeterminismTraceAndState drives a mixed multi-node workload under
// every engine and compares the complete observable machine state (the
// single-scenario ancestor of TestDeterminismThreeWay, kept for its
// 4-node caching configuration).
func TestDeterminismTraceAndState(t *testing.T) {
	workload := func() (string, error) {
		return fingerprint(Options{Nodes: 4, Caching: true}, meshWorkloads(4)[0])
	}
	allEngines(t, "trace+state", workload)
}

// TestDeterminismLockstep steps naive, event-engine, and parallel-engine
// machines in strict lockstep (via Machine.Step, no fast-forward jumps)
// and asserts identical per-cycle trace streams — the cycle-for-cycle form
// of the equivalence the fast-forward path then builds on.
func TestDeterminismLockstep(t *testing.T) {
	build := func(naive bool, workers int) (*Sim, error) {
		s, err := NewSim(Options{Nodes: 2, NaiveEngine: naive, Workers: workers})
		if err != nil {
			return nil, err
		}
		err = s.LoadASM(0, 0, 0, `
    movi i1, #4100
    movi i2, #777
    st [i1], i2
    ld i3, [i1]
    add i4, i3, #1
    halt
`)
		return s, err
	}
	a, err := build(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := build(false, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.M.Close()
	tr := func(s *Sim) string { return trace.Timeline(s.Recorder.Events) }
	for i := 0; i < 2000; i++ {
		a.M.Step()
		b.M.Step()
		c.M.Step()
		if a.M.Cycle != b.M.Cycle || a.M.Cycle != c.M.Cycle {
			t.Fatalf("cycle skew at step %d: %d vs %d vs %d", i, a.M.Cycle, b.M.Cycle, c.M.Cycle)
		}
	}
	if tr(a) != tr(b) {
		t.Fatalf("trace streams diverged:\n--- naive ---\n%s\n--- event ---\n%s", tr(a), tr(b))
	}
	if tr(a) != tr(c) {
		t.Fatalf("trace streams diverged:\n--- naive ---\n%s\n--- parallel ---\n%s", tr(a), tr(c))
	}
	if got, want := b.Reg(0, 0, 0, 4), a.Reg(0, 0, 0, 4); got != want {
		t.Fatalf("final i4: event %d vs naive %d", got, want)
	}
	if got, want := c.Reg(0, 0, 0, 4), a.Reg(0, 0, 0, 4); got != want {
		t.Fatalf("final i4: parallel %d vs naive %d", got, want)
	}
}

// meshSmoothFor sizes the determinism-test smoothing grid: 32 elements
// per node keeps the matrix fast while still crossing page boundaries.
func meshSmoothFor(nodes int) (*workload.MeshSmooth, error) {
	return workload.NewMeshSmooth(nodes, nodes*32)
}

// neighborSrc / neighborAddr adapt the workload generator to a Sim.
func neighborSrc(s *Sim, node, nodes, msgs int) string {
	return workload.NeighborExchangeSrc(node, nodes, msgs, s.RT.DIPRemoteWrite, s.HomeBase)
}

func neighborAddr(s *Sim, n, w int) uint64 {
	return workload.NeighborExchangeAddr(s.HomeBase, n, w)
}
