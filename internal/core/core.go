// Package core is the public facade of the M-Machine reproduction: it wires
// the MAP chips, mesh network, global translation, and software runtime
// into a ready-to-use simulator, and provides the experiment harness that
// regenerates every quantitative result in the paper (see the functions in
// table1.go, figure9.go, stencil.go, and experiments.go).
//
// Quick start:
//
//	sim, _ := core.NewSim(core.Options{Nodes: 2})
//	sim.LoadASM(0, 0, 0, "movi i1, #6\nmul i2, i1, #7\nhalt")
//	sim.Run(10000)
//	fmt.Println(sim.Reg(0, 0, 0, 2)) // 42
//
// Beyond building and driving machines (LoadASM/LoadUserASM/LoadProgram,
// Run/RunUntil, Poke/Peek, Stats), the facade exposes the checkpoint
// subsystem — Sim.Save writes a versioned snapshot of the complete
// simulation state, Sim.Restore replaces a compatible machine's state
// all-or-nothing, and Sim.Fork clones a simulator for what-if runs from
// a common prefix (see snapshot.go and DESIGN.md, "Checkpoint/restore")
// — and the declarative workload scenarios: ScenarioFromDSL /
// ScenarioFromFile compile .wl files (docs/wdsl.md) and Scenario.Run
// executes them with per-phase cycle accounting (wdsl.go).
package core

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/gp"
	"repro/internal/guard"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/rt"
	"repro/internal/trace"
)

// Options configures a simulator instance.
type Options struct {
	// Nodes is the machine size; the mesh is X-major: Nodes = X unless
	// Dims is set explicitly.
	Nodes int
	// Dims overrides the mesh shape (X*Y*Z nodes).
	Dims noc.Coord
	// Caching enables software caching of remote data in local DRAM
	// (Section 4.3); off, remote accesses are non-cached messages.
	Caching bool
	// Chip overrides the default chip configuration when non-nil.
	Chip *chip.Config
	// HomePages maps the first HomePages GTLB pages per node: node i homes
	// virtual words [i*1024*HomePages, (i+1)*1024*HomePages). Default 4
	// (4096 words per node). Set -1 to skip automatic mapping.
	HomePages int
	// NaiveEngine selects the reference per-cycle loop (Machine.StepAll,
	// no idle fast-forward) instead of the event-driven engine. The two
	// are bit-identical (see TestDeterminismEngines); the naive loop is
	// the debug baseline the engine is validated against.
	NaiveEngine bool
	// Workers selects the parallel chip engine: busy cycles shard the chip
	// phase across this many goroutines (machine.Config.Workers). 0 uses
	// the package default (serial unless SetDefaultWorkers was called),
	// 1 forces serial, -1 uses GOMAXPROCS. Bit-identical to the serial
	// engines on any mesh (TestDeterminismThreeWay); it pays off once the
	// mesh is large and busy — use it for ≥ 16-node scenarios.
	Workers int
	// RebalanceEvery is the parallel engine's shard-rebalance window in
	// busy cycles (machine.Config.RebalanceEvery): 0 uses the package
	// default (the machine default unless SetDefaultRebalance was called),
	// negative disables rebalancing. Rebalancing redistributes chips
	// across the worker shards from observed load and never affects
	// simulated results.
	RebalanceEvery int64
	// Timeout is the wall-clock watchdog for supervised execution
	// (Scenario.Run/RunSim): exceeding it stops the run between cycles
	// and reports a *guard.StallError. 0 defers to the scenario file's
	// deadline directive (and disables the watchdog if the file has
	// none). Supervision never alters simulated state — supervised runs
	// are bit-identical to unsupervised ones.
	Timeout time.Duration
	// CycleBudget caps the total machine cycles a supervised scenario
	// may advance, across all its run phases; exhaustion is reported as
	// a *guard.StallError at a deterministic cycle. 0 defers to the
	// scenario file's budget directive.
	CycleBudget int64
	// CrashDump, when non-empty, is where supervised execution writes a
	// crash-dump snapshot (a regular `msim -restore`-loadable snapshot)
	// on a panic, timeout, or budget exhaustion.
	CrashDump string
}

// defaultNaiveEngine makes every subsequently built Sim use the naive
// engine, including the ones experiment harnesses construct internally.
// It exists so the determinism regression test can run each experiment
// under both engines; production code should leave it alone.
var defaultNaiveEngine bool

// defaultWorkers is the chip-engine worker count applied when
// Options.Workers is zero; like defaultNaiveEngine it exists so the
// determinism regressions can force whole experiment harnesses onto the
// parallel engine.
var defaultWorkers int

// defaultRebalance is the shard-rebalance window applied when
// Options.RebalanceEvery is zero, again for the determinism regressions
// (tiny windows force frequent rebalancing across whole harnesses).
var defaultRebalance int64

// SetDefaultEngine selects the engine for sims that don't request one
// explicitly: naive=true forces the reference per-cycle loop.
func SetDefaultEngine(naive bool) { defaultNaiveEngine = naive }

// SetDefaultWorkers sets the chip-engine worker count for sims that don't
// request one explicitly (0 restores serial).
func SetDefaultWorkers(n int) { defaultWorkers = n }

// SetDefaultRebalance sets the shard-rebalance window for sims that don't
// request one explicitly (0 restores the machine default).
func SetDefaultRebalance(every int64) { defaultRebalance = every }

// Sim is a booted M-Machine with its runtime installed.
type Sim struct {
	M        *machine.Machine
	RT       *rt.Runtime
	Recorder *trace.Recorder

	// HomeBase(i) = first virtual word homed on node i when automatic
	// mapping is active.
	homeSpan uint64
}

// NewSim builds and boots a machine.
func NewSim(o Options) (*Sim, error) {
	cfg := machine.DefaultConfig()
	if o.Chip != nil {
		cfg.Chip = *o.Chip
	}
	switch {
	case o.Dims != (noc.Coord{}):
		cfg.Dims = o.Dims
	case o.Nodes > 0:
		cfg.Dims = noc.Coord{X: o.Nodes, Y: 1, Z: 1}
	}
	cfg.Workers = o.Workers
	if cfg.Workers == 0 {
		cfg.Workers = defaultWorkers
	}
	cfg.RebalanceEvery = o.RebalanceEvery
	if cfg.RebalanceEvery == 0 {
		cfg.RebalanceEvery = defaultRebalance
	}
	m := machine.New(cfg)
	m.Naive = o.NaiveEngine || defaultNaiveEngine
	r, err := rt.Install(m, rt.Options{Caching: o.Caching})
	if err != nil {
		return nil, err
	}
	s := &Sim{M: m, RT: r, Recorder: &trace.Recorder{}}
	m.SetTrace(s.Recorder.Hook())

	pages := o.HomePages
	if pages == 0 {
		pages = 4
	}
	if pages > 0 {
		s.homeSpan = uint64(pages) * 1024
		for i := 0; i < m.NumNodes(); i++ {
			if err := m.MapNodeRange(uint64(i)*s.homeSpan, uint64(pages), i); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// HomeBase returns the first virtual word address homed on node i under the
// automatic mapping.
func (s *Sim) HomeBase(i int) uint64 { return uint64(i) * s.homeSpan }

// LoadASM assembles src and loads it on (node, vthread, cluster) as a
// privileged system thread (raw addressing allowed).
func (s *Sim) LoadASM(node, vthread, cl int, src string) error {
	p, err := asm.Assemble(fmt.Sprintf("n%dv%dc%d", node, vthread, cl), src)
	if err != nil {
		return err
	}
	s.M.Chip(node).LoadProgram(vthread, cl, p, true)
	return nil
}

// LoadUserASM is LoadASM for an unprivileged thread: memory and SEND
// operands must be guarded pointers (use GrantPointer).
func (s *Sim) LoadUserASM(node, vthread, cl int, src string) error {
	p, err := asm.Assemble(fmt.Sprintf("n%dv%dc%d", node, vthread, cl), src)
	if err != nil {
		return err
	}
	s.M.Chip(node).LoadProgram(vthread, cl, p, false)
	return nil
}

// LoadProgram installs an already-assembled program.
func (s *Sim) LoadProgram(node, vthread, cl int, p *isa.Program, privileged bool) {
	s.M.Chip(node).LoadProgram(vthread, cl, p, privileged)
}

// GrantPointer places a guarded pointer in a thread's integer register, the
// way system software provisions a user thread's capabilities.
func (s *Sim) GrantPointer(node, vthread, cl, reg int, perms gp.Perm, segLen uint8, addr uint64) error {
	p, err := gp.Make(perms, segLen, addr)
	if err != nil {
		return err
	}
	s.M.Chip(node).Thread(vthread, cl).Ints.Set(reg, isa.Word{Bits: uint64(p), Ptr: true})
	return nil
}

// SetReg writes an integer register before a run.
func (s *Sim) SetReg(node, vthread, cl, reg int, v uint64) {
	s.M.Chip(node).Thread(vthread, cl).Ints.Set(reg, isa.W(v))
}

// Reg reads an integer register.
func (s *Sim) Reg(node, vthread, cl, reg int) uint64 {
	return s.M.Chip(node).Thread(vthread, cl).Ints.Get(reg).Bits
}

// FReg reads a floating-point register's bits.
func (s *Sim) FReg(node, vthread, cl, reg int) uint64 {
	return s.M.Chip(node).Thread(vthread, cl).FPs.Get(reg).Bits
}

// Run executes until completion (see machine.Run) or maxCycles.
func (s *Sim) Run(maxCycles int64) (int64, error) { return s.M.Run(maxCycles) }

// RunSupervised is Run under a guard.Supervisor: panics are contained as
// *guard.CrashError, opt's wall-clock and cycle watchdogs are enforced,
// and on failure a diagnostic (and, when opt.DumpPath is set, a
// restorable crash-dump snapshot) is attached. Simulated state is
// bit-identical to an unsupervised Run. If the returned error satisfies
// guard.IsHang, the machine is wedged and must be abandoned without
// calling Close.
func (s *Sim) RunSupervised(maxCycles int64, opt guard.Options) (int64, error) {
	return guard.New(s.M, opt).Run(maxCycles)
}

// RunUntil steps until pred holds.
func (s *Sim) RunUntil(pred func() bool, maxCycles int64) (int64, error) {
	return s.M.RunUntil(pred, maxCycles)
}

// Poke/Peek access a node's memory through the boot path.
func (s *Sim) Poke(node int, vaddr, w uint64) error { return s.M.Poke(node, vaddr, w) }

// Peek reads a word of a node's memory.
func (s *Sim) Peek(node int, vaddr uint64) (uint64, error) { return s.M.Peek(node, vaddr) }

// MapLocal creates a local page mapping on a node (see machine.MapLocal).
func (s *Sim) MapLocal(node int, vpn uint64, st mem.BlockStatus, prime bool) uint64 {
	return s.M.MapLocal(node, vpn, st, prime)
}

// ThreadStatus reports an H-Thread's lifecycle state.
func (s *Sim) ThreadStatus(node, vthread, cl int) cluster.ThreadStatus {
	return s.M.Chip(node).Thread(vthread, cl).Status
}

// Stats summarizes machine counters for reports.
type Stats struct {
	Cycles        int64
	Instructions  uint64
	Operations    uint64
	MsgsInjected  uint64
	MsgsDelivered uint64
	LTLBFaults    uint64
	StatusFaults  uint64
	SyncFaults    uint64
}

// Stats gathers counters across all nodes.
func (s *Sim) Stats() Stats {
	st := Stats{Cycles: s.M.Cycle}
	st.MsgsInjected = s.M.Net.Injected
	st.MsgsDelivered = s.M.Net.Delivered
	for _, c := range s.M.Chips {
		st.Instructions += c.InstsIssued
		st.Operations += c.OpsIssued
		st.LTLBFaults += c.Mem.LTLBFaults
		st.StatusFaults += c.Mem.StatusFaults
		st.SyncFaults += c.Mem.SyncFaults
	}
	return st
}
