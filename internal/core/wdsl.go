package core

// Execution of declarative workload scenarios (the third stage of the
// DSL pipeline, DESIGN.md "The workload DSL"): a Scenario wraps a
// lowered workload.Plan and drives it on a freshly booted Sim — map and
// poke staging state, load programs, run phases under their cycle
// budgets, then verify the expectations the file declares. Scenario
// cycle counts are simulated results, so they are deterministic across
// engines and hosts and feed the BENCH_<n>.json trajectory (cmd/mbench
// picks up testdata/workloads/*.wl).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"

	"repro/internal/guard"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/wdsl"
	"repro/internal/workload"
)

// Scenario is a parsed, validated workload scenario ready to run.
type Scenario struct {
	Name string // diagnostics name (file path or caller-chosen)
	Plan *workload.Plan
}

// Title returns the scenario's self-declared title, or its name.
func (sc *Scenario) Title() string {
	if sc.Plan.Title != "" {
		return sc.Plan.Title
	}
	return sc.Name
}

// ScenarioFromDSL parses and lowers DSL source into a runnable Scenario.
// name is used in diagnostics. All errors are positional
// ("name:line:col: message").
func ScenarioFromDSL(name, src string) (*Scenario, error) {
	f, err := wdsl.Parse(name, src)
	if err != nil {
		return nil, err
	}
	plan, err := workload.FromDSL(f)
	if err != nil {
		return nil, err
	}
	return &Scenario{Name: name, Plan: plan}, nil
}

// ScenarioFromFile reads and compiles a .wl scenario file.
func ScenarioFromFile(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ScenarioFromDSL(path, string(src))
}

// PhaseResult reports one run step of a scenario.
type PhaseResult struct {
	Name   string // phase directive name, or "phase<i>"
	Cycles int64  // cycles the machine advanced during this run step
}

// ScenarioResult is the outcome of Scenario.Run.
type ScenarioResult struct {
	Phases      []PhaseResult
	TotalCycles int64 // machine cycle counter at the end of the run
	Checks      int   // expect/check steps that passed; sweeps: all points
	Stats       Stats
	// Digest is the machine-state fingerprint at the end of a successful
	// run (hex sha256 of the snapshot stream, computed before Close —
	// the same function as dist.Digest). For sweep scenarios it covers
	// the staging machine after the prefix; per-point fingerprints are
	// in Points.
	Digest string
	// Points holds per-point results for sweep scenarios; nil otherwise.
	Points []PointResult
}

// machineDigest is the canonical state fingerprint: the hex sha256 of
// the full snapshot stream. It matches dist.Digest bit for bit (core
// cannot import dist — dist imports core), so sweep-point digests,
// scenario digests, and distributed-run digests are directly
// comparable.
func machineDigest(m *machine.Machine) (string, error) {
	h := sha256.New()
	if err := m.Save(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Run boots a machine per the scenario's mesh/caching declarations and
// executes the plan. The caller's Options may select the engine
// (NaiveEngine, Workers, RebalanceEvery) and tracing-related settings;
// the mesh dimensions and caching mode always come from the scenario
// file. Expect/check failures are returned as errors naming the step's
// source position.
func (sc *Scenario) Run(o Options) (*ScenarioResult, error) {
	res, _, err := sc.RunSim(o)
	return res, err
}

// RunSim is Run, additionally returning the simulator for post-run
// inspection (console output, trace events, registers). The machine is
// already closed; its final state remains readable.
//
// Execution is supervised (internal/guard): a panic anywhere in the plan
// or the engines surfaces as a *guard.CrashError, and the watchdogs —
// the caller's Options.Timeout/CycleBudget, else the scenario file's
// deadline/budget directives — cut off runaway runs as *guard.StallError,
// with a diagnostic and (when Options.CrashDump is set) a restorable
// crash-dump snapshot attached. Supervision never changes simulated
// results. In the one unrecoverable case — the error satisfies
// guard.IsHang — the machine is abandoned un-Closed, because a wedged
// run goroutine still owns it.
func (sc *Scenario) RunSim(o Options) (*ScenarioResult, *Sim, error) {
	if sc.Plan.Sweep != nil {
		return sc.runSweep(o)
	}
	gopt := guard.Options{Timeout: o.Timeout, CycleBudget: o.CycleBudget, DumpPath: o.CrashDump}
	if gopt.Timeout == 0 {
		gopt.Timeout = sc.Plan.Deadline
	}
	if gopt.CycleBudget == 0 {
		gopt.CycleBudget = sc.Plan.CycleBudget
	}
	s, err := sc.NewSim(o)
	if err != nil {
		return nil, nil, err
	}
	sup := guard.New(s.M, gopt)
	var res *ScenarioResult
	err = sup.Do(func() error {
		var e error
		res, e = sc.runOn(s, sup)
		return e
	})
	if err == nil {
		res.Digest, err = machineDigest(s.M)
	}
	if !guard.IsHang(err) {
		s.M.Close()
	}
	if err != nil {
		return nil, s, err
	}
	return res, s, nil
}

// NewSim boots a simulator for this scenario: the mesh dimensions and
// caching mode always come from the scenario file; o selects the engine
// and tracing environment.
func (sc *Scenario) NewSim(o Options) (*Sim, error) {
	o.Nodes = 0
	o.Dims.X, o.Dims.Y, o.Dims.Z = sc.Plan.Dims[0], sc.Plan.Dims[1], sc.Plan.Dims[2]
	o.Caching = sc.Plan.Caching
	return NewSim(o)
}

// runOn executes the plan's steps on a booted simulator, routing run
// phases through the supervisor so the scenario-wide cycle budget clamps
// them. This is ScenarioRun driven to completion in unsliced quanta; a
// caller that needs to checkpoint or stream between quanta drives a
// ScenarioRun itself (internal/serve does).
func (sc *Scenario) runOn(s *Sim, sup *guard.Supervisor) (*ScenarioResult, error) {
	run := sc.NewRun(s)
	for !run.Done() {
		if _, err := run.Advance(sup, 0); err != nil {
			return nil, err
		}
	}
	return run.Result(), nil
}

// step executes one non-run plan step (run phases are ScenarioRun's
// business: they need the supervisor's budget clamp and slicing).
func (sc *Scenario) step(s *Sim, env workload.Env, st *workload.PlanStep, res *ScenarioResult) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s: %s", st.Pos, fmt.Sprintf(format, args...))
	}
	switch st.Kind {
	case workload.PlanMapLocal:
		s.MapLocal(st.Node, st.Page, mem.BSReadWrite, true)
		return nil

	case workload.PlanPoke:
		addr, err := st.Addr(env)
		if err != nil {
			return err
		}
		v, err := st.Value(env)
		if err != nil {
			return err
		}
		if err := s.Poke(st.Node, addr, v); err != nil {
			return fail("poke node %d addr %d: %v", st.Node, addr, err)
		}
		return nil

	case workload.PlanLoad:
		if st.Src != nil {
			src, err := st.Src(env)
			if err != nil {
				return err
			}
			load := s.LoadASM
			if st.User {
				load = s.LoadUserASM
			}
			if err := load(st.Node, st.VThread, st.Cluster, src); err != nil {
				return fail("%v", err)
			}
			return nil
		}
		progs, err := st.Progs(env)
		if err != nil {
			return err
		}
		for k, p := range progs {
			s.LoadProgram(st.Node, st.VThread, st.Cluster+k, p, !st.User)
		}
		return nil

	case workload.PlanGrant:
		addr, err := st.Addr(env)
		if err != nil {
			return err
		}
		if err := s.GrantPointer(st.Node, st.VThread, st.Cluster, st.Reg, st.Perms, st.SegLen, addr); err != nil {
			return fail("grant: %v", err)
		}
		return nil

	case workload.PlanExpectReg:
		want, err := st.Value(env)
		if err != nil {
			return err
		}
		got := s.Reg(st.Node, st.VThread, st.Cluster, st.Reg)
		if got != want {
			return fail("expect reg: node %d vthread %d cluster %d i%d = %d, want %d",
				st.Node, st.VThread, st.Cluster, st.Reg, got, want)
		}
		res.Checks++
		return nil

	case workload.PlanExpectMem:
		addr, err := st.Addr(env)
		if err != nil {
			return err
		}
		want, err := st.Value(env)
		if err != nil {
			return err
		}
		got, err := s.Peek(st.Node, addr)
		if err != nil {
			return fail("expect mem: node %d addr %d: %v", st.Node, addr, err)
		}
		if got != want {
			if st.Float {
				return fail("expect fmem: node %d addr %d = %#x, want %#x", st.Node, addr, got, want)
			}
			return fail("expect mem: node %d addr %d = %d, want %d", st.Node, addr, got, want)
		}
		res.Checks++
		return nil

	case workload.PlanCheck:
		if err := st.Check(env, s.Peek); err != nil {
			return fail("check: %v", err)
		}
		res.Checks++
		return nil
	}
	return fail("internal: unhandled plan step kind %d", st.Kind)
}
