package core

// Sweep execution tests: the fork-per-point bit-identity contract
// (DESIGN.md "Workload DSL v2") and the user-mode grant path. The
// anchor is TestSweepMatchesStandalone: every sweep point's final
// machine digest must equal the digest of a fresh-boot standalone run
// of the same point (shared prefix replayed from scratch), under every
// engine.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scenarioSource reads a checked-in scenario's DSL source.
func scenarioSource(t *testing.T, file string) (string, error) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(workloadDir, file))
	return string(b), err
}

// sweepScenario compiles the checked-in sweep scenario.
func sweepScenario(t *testing.T) *Scenario {
	t.Helper()
	sc, err := ScenarioFromFile(filepath.Join(workloadDir, "sweepexchange.wl"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Plan.Sweep == nil {
		t.Fatal("sweepexchange.wl lowered without a sweep")
	}
	return sc
}

// TestSweepMatchesStandalone pins each forked sweep point bit-identical
// to running prefix + point from boot, under every engine: same final
// machine digest, same phase cycle counts, same check counts.
func TestSweepMatchesStandalone(t *testing.T) {
	var refDigests []string
	for i, m := range engineModes {
		m := m
		digests, err := underMode(m, func() (string, error) {
			sc := sweepScenario(t)
			res, err := sc.Run(Options{})
			if err != nil {
				return "", err
			}
			if len(res.Points) != len(sc.Plan.Sweep.Points) {
				t.Fatalf("%s: %d point results for %d points", m.name, len(res.Points), len(sc.Plan.Sweep.Points))
			}
			var ds []string
			for pi, pr := range res.Points {
				// Standalone: the same point replayed from a fresh boot.
				alone := &Scenario{Name: sc.Name, Plan: sc.Plan.PointPlan(pi)}
				ares, err := alone.Run(Options{})
				if err != nil {
					return "", err
				}
				if ares.Digest != pr.Digest {
					t.Errorf("%s: point %s digest %s, standalone %s",
						m.name, pr.Name, pr.Digest, ares.Digest)
				}
				if ares.Checks != pr.Checks {
					t.Errorf("%s: point %s checks %d, standalone %d",
						m.name, pr.Name, pr.Checks, ares.Checks)
				}
				// The standalone run's phases are prefix phases + the
				// point's own; the forked point records only its own.
				tail := ares.Phases[len(ares.Phases)-len(pr.Phases):]
				for k, ph := range pr.Phases {
					wantName := pr.Name + "/" + tail[k].Name
					if ph.Name != wantName || ph.Cycles != tail[k].Cycles {
						t.Errorf("%s: point %s phase %d = %s/%d cycles, standalone %s/%d",
							m.name, pr.Name, k, ph.Name, ph.Cycles, wantName, tail[k].Cycles)
					}
				}
				ds = append(ds, pr.Digest)
			}
			return strings.Join(ds, "\n"), nil
		})
		if err != nil {
			t.Fatalf("%s engine: %v", m.name, err)
		}
		got := strings.Split(digests, "\n")
		if i == 0 {
			refDigests = got
			continue
		}
		for k := range refDigests {
			if got[k] != refDigests[k] {
				t.Errorf("point %d digest diverged between engines: %s=%s %s=%s",
					k, engineModes[0].name, refDigests[k], m.name, got[k])
			}
		}
	}
}

// TestSweepResultShape checks the sweep result bookkeeping: the shared
// prefix runs once (TotalCycles and Stats cover only the staging
// machine), phases carry point-prefixed names, and checks accumulate
// across points.
func TestSweepResultShape(t *testing.T) {
	sc := sweepScenario(t)
	res, err := sc.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	points := len(sc.Plan.Sweep.Points)
	if res.Checks != points {
		t.Errorf("checks = %d, want %d (one per point)", res.Checks, points)
	}
	if res.Digest == "" {
		t.Error("sweep result has no staging digest")
	}
	seen := map[string]bool{}
	for _, pr := range res.Points {
		if pr.Digest == "" {
			t.Errorf("point %s has no digest", pr.Name)
		}
		if seen[pr.Digest] {
			t.Errorf("point %s digest repeats an earlier point's: the points did not diverge", pr.Name)
		}
		seen[pr.Digest] = true
		if pr.TotalCycles <= res.TotalCycles {
			t.Errorf("point %s ended at cycle %d, not after the staging prefix's %d",
				pr.Name, pr.TotalCycles, res.TotalCycles)
		}
	}
	// One staging phase + one storm phase per point.
	if want := 1 + points; len(res.Phases) != want {
		t.Errorf("%d phases, want %d", len(res.Phases), want)
	}
	for _, ph := range res.Phases[1:] {
		if !strings.Contains(ph.Name, "/") {
			t.Errorf("point phase %q lacks the point prefix", ph.Name)
		}
	}
}

// TestGrantProtection checks that the grant path really grants — and
// only what it names: the gpwalk scenario succeeds with its read-write
// pointer, and the identical program under a read-only pointer must
// not complete its stores.
func TestGrantProtection(t *testing.T) {
	src, err := scenarioSource(t, "gpwalk.wl")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScenarioFromDSL("gpwalk.wl", src)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := sc.Run(Options{}); err != nil {
		t.Fatalf("read-write walk: %v", err)
	} else if res.Checks != 3 {
		t.Fatalf("read-write walk passed %d checks, want 3", res.Checks)
	}

	ro := strings.Replace(src, "perms=rw", "perms=r", 1)
	if ro == src {
		t.Fatal("gpwalk.wl no longer grants perms=rw; update this test")
	}
	sc, err = ScenarioFromDSL("gpwalk-ro.wl", ro)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(Options{}); err == nil {
		t.Fatal("store through a read-only guarded pointer succeeded")
	}
}
