package core

// Experiment harness for the paper's remaining results: the Figure 5
// stencil schedules (E3), the Figure 6 loop synchronization protocol (E4),
// V-Thread latency tolerance (E6), SEND throttling (E7), GTLB interleaving
// (E8), guarded-pointer overhead (E9), synchronization bits (E10), and
// block-status caching of remote data (E11). See DESIGN.md's experiment
// index.

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/chip"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/workload"
)

// --- E3: Figure 5 stencils ---

// StencilResult reports one stencil configuration.
type StencilResult struct {
	Name       string
	HThreads   int
	Depth      int // static schedule depth (the paper's metric)
	PaperDepth int
	Cycles     int64   // measured execution cycles on the simulator
	Value      float64 // computed u, for correctness checking
	Want       float64
}

// StencilExperiment runs the 7-point stencil on 1 and 2 H-Threads and the
// 27-point stencil on 1 and 4 H-Threads (paper: depth 12 -> 8 and 36 -> 17).
func StencilExperiment() ([]StencilResult, error) {
	paper := map[string]int{"7:1": 12, "7:2": 8, "27:1": 36, "27:4": 17}
	cfgs := []struct {
		points, hthreads int
	}{{7, 1}, {7, 2}, {27, 1}, {27, 4}}
	out := make([]StencilResult, len(cfgs))
	err := ForEachMachine(len(cfgs), func(i int) error {
		cfg := cfgs[i]
		var st *workload.Stencil
		var err error
		if cfg.points == 7 {
			st, err = workload.Stencil7(cfg.hthreads)
		} else {
			st, err = workload.Stencil27(cfg.hthreads)
		}
		if err != nil {
			return err
		}
		res, err := runStencil(st, cfg.points)
		if err != nil {
			return err
		}
		res.PaperDepth = paper[fmt.Sprintf("%d:%d", cfg.points, cfg.hthreads)]
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func runStencil(st *workload.Stencil, points int) (StencilResult, error) {
	s, err := NewSim(Options{Nodes: 1})
	if err != nil {
		return StencilResult{}, err
	}
	s.MapLocal(0, 0, 2, true) // page 0 primed read/write
	// Residuals r_i = i+1; u = 10. Expected: u + a*r_c + b*sum(neighbours)
	// with a=2, b=3.
	n := points - 1 // neighbour count
	sum := 0.0
	for i := 0; i < n; i++ {
		v := float64(i + 1)
		sum += v
		if err := s.Poke(0, st.RBase+uint64(i), math.Float64bits(v)); err != nil {
			return StencilResult{}, err
		}
	}
	rc := float64(n + 1)
	if err := s.Poke(0, st.RBase+uint64(n), math.Float64bits(rc)); err != nil {
		return StencilResult{}, err
	}
	if err := s.Poke(0, st.UAddr, math.Float64bits(10)); err != nil {
		return StencilResult{}, err
	}
	want := 10 + 2*rc + 3*sum

	for cl, p := range st.Programs {
		s.LoadProgram(0, 0, cl, p, true)
	}
	cycles, err := s.Run(100000)
	if err != nil {
		return StencilResult{}, err
	}
	bits, err := s.Peek(0, st.UAddr)
	if err != nil {
		return StencilResult{}, err
	}
	return StencilResult{
		Name: st.Name, HThreads: st.HThreads, Depth: st.Depth,
		Cycles: cycles, Value: math.Float64frombits(bits), Want: want,
	}, nil
}

// FormatStencil renders E3.
func FormatStencil(rs []StencilResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %12s %11s %8s %10s\n",
		"kernel", "H-Threads", "paper depth", "our depth", "cycles", "correct")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-18s %9d %12d %11d %8d %10v\n",
			r.Name, r.HThreads, r.PaperDepth, r.Depth, r.Cycles,
			math.Abs(r.Value-r.Want) < 1e-9)
	}
	return b.String()
}

// --- E4: Figure 6 loop synchronization ---

// LoopSyncResult reports the interlock overhead.
type LoopSyncResult struct {
	HThreads        int
	Iters           int
	Cycles          int64
	BaselineCycles  int64 // unsynchronized loop of the same trip count
	PerIter         float64
	BaselinePerIter float64
}

// LoopSyncExperiment measures the Figure 6 protocol for 2 and 4 H-Threads.
// The two configurations (and their unsynchronized baselines) run on
// independent machines, concurrently.
func LoopSyncExperiment(iters int) ([]LoopSyncResult, error) {
	hts := []int{2, 4}
	out := make([]LoopSyncResult, len(hts))
	err := ForEachMachine(len(hts), func(i int) error {
		ht := hts[i]
		s, err := NewSim(Options{Nodes: 1})
		if err != nil {
			return err
		}
		progs, err := workload.LoopSync(ht, iters)
		if err != nil {
			return err
		}
		for cl, p := range progs {
			s.LoadProgram(0, 0, cl, p, true)
		}
		cycles, err := s.Run(int64(iters)*200 + 10000)
		if err != nil {
			return err
		}
		// The interlock is correct iff every H-Thread saw every iteration:
		// each follower's counter must equal the leader's.
		for cl := 0; cl < ht; cl++ {
			if got := s.Reg(0, 0, cl, 1); got != uint64(iters) {
				return fmt.Errorf("loopsync: H-Thread %d ran %d iterations, want %d", cl, got, iters)
			}
		}

		base, err := NewSim(Options{Nodes: 1})
		if err != nil {
			return err
		}
		base.LoadProgram(0, 0, 0, workload.SpinLoop(iters), true)
		bc, err := base.Run(int64(iters)*100 + 10000)
		if err != nil {
			return err
		}
		out[i] = LoopSyncResult{
			HThreads: ht, Iters: iters, Cycles: cycles, BaselineCycles: bc,
			PerIter:         float64(cycles) / float64(iters),
			BaselinePerIter: float64(bc) / float64(iters),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatLoopSync renders E4.
func FormatLoopSync(rs []LoopSyncResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %14s %16s %14s\n",
		"H-Threads", "iters", "cycles/iter", "baseline/iter", "overhead/iter")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10d %7d %14.2f %16.2f %14.2f\n",
			r.HThreads, r.Iters, r.PerIter, r.BaselinePerIter, r.PerIter-r.BaselinePerIter)
	}
	return b.String()
}

// --- E6: V-Thread latency tolerance ---

// VThreadResult reports throughput with k resident V-Threads.
type VThreadResult struct {
	VThreads       int
	Cycles         int64
	TotalLoads     int
	LoadsPerKCycle float64
}

// VThreadExperiment runs the load-heavy kernel on 1..4 user V-Threads of
// the same cluster and reports aggregate throughput: interleaving masks the
// exposed load latency (Section 3.2). The four machine sizes run
// concurrently.
func VThreadExperiment(iters int) ([]VThreadResult, error) {
	out := make([]VThreadResult, isa.NumUserSlots)
	err := ForEachMachine(isa.NumUserSlots, func(i int) error {
		k := i + 1
		s, err := NewSim(Options{Nodes: 1})
		if err != nil {
			return err
		}
		s.MapLocal(0, 0, 2, true)
		for vt := 0; vt < k; vt++ {
			// Distinct addresses per thread, same bank spread.
			p := workload.LoadHeavyKernel(uint64(64+vt*16), iters)
			s.LoadProgram(0, vt, 0, p, true)
		}
		cycles, err := s.Run(int64(iters)*100*int64(k) + 10000)
		if err != nil {
			return err
		}
		total := iters * k
		out[i] = VThreadResult{
			VThreads: k, Cycles: cycles, TotalLoads: total,
			LoadsPerKCycle: 1000 * float64(total) / float64(cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatVThreads renders E6.
func FormatVThreads(rs []VThreadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %12s %18s\n", "V-Threads", "cycles", "total loads", "loads/1000 cycles")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-10d %8d %12d %18.1f\n", r.VThreads, r.Cycles, r.TotalLoads, r.LoadsPerKCycle)
	}
	return b.String()
}

// --- E7: return-to-sender throttling ---

// ThrottleResult reports the flood experiment.
type ThrottleResult struct {
	Messages     int
	Credits      int
	SendsBlocked uint64
	Returned     uint64
	Landed       int
	Cycles       int64
}

// ThrottleExperiment has two nodes flood a third with remote stores under a
// small credit pool and a tiny destination queue: the combined arrival rate
// exceeds the handler's service rate, so messages are returned to their
// senders, buffered, and resent, while exhausted credits stall further
// SENDs (Section 4.1, "Throttling"). Every store still lands exactly once.
func ThrottleExperiment(messages, credits int) (*ThrottleResult, error) {
	cfg := DefaultChipConfig()
	cfg.SendCredits = credits
	cfg.MsgQueueCap = 9 // three 3-word store messages
	s, err := NewSim(Options{Nodes: 3, Chip: &cfg})
	if err != nil {
		return nil, err
	}
	base := s.HomeBase(2)
	flood := func(sender int) string {
		return fmt.Sprintf(`
    movi i1, #%d
    movi i3, #%d
    movi i5, #0
    movi i6, #%d
loop:
    add i8, i1, i5          ; body word: the value stored = address
    add i9, i1, i5
    send i9, i3, i8, #1
    add i5, i5, #2
    lt  i7, i5, i6
    brt i7, loop
    halt
`, base+uint64(sender), s.RT.DIPRemoteWrite, 2*messages)
	}
	if err := s.LoadASM(0, 0, 0, flood(0)); err != nil {
		return nil, err
	}
	if err := s.LoadASM(1, 0, 0, flood(1)); err != nil {
		return nil, err
	}
	cycles, err := s.Run(2000000)
	if err != nil {
		return nil, err
	}
	landed := 0
	for i := 0; i < 2*messages; i++ {
		w, err := s.Peek(2, base+uint64(i))
		if err == nil && w == base+uint64(i) {
			landed++
		}
	}
	return &ThrottleResult{
		Messages: 2 * messages, Credits: credits,
		SendsBlocked: s.M.Chip(0).SendsBlocked + s.M.Chip(1).SendsBlocked,
		Returned:     s.M.Chip(0).MsgsReturned + s.M.Chip(1).MsgsReturned,
		Landed:       landed,
		Cycles:       cycles,
	}, nil
}

// FormatThrottle renders E7.
func (r *ThrottleResult) Format() string {
	return fmt.Sprintf(
		"messages sent      %6d\ncredits            %6d\nSEND stall events  %6d\nmessages returned  %6d\nstores landed      %6d/%d\ncycles             %6d\n",
		r.Messages, r.Credits, r.SendsBlocked, r.Returned, r.Landed, r.Messages, r.Cycles)
}

// --- E8: GTLB interleaving (Figure 8) ---

// GTLBDemoRow shows the node assignment of consecutive pages for one
// pages-per-node setting.
type GTLBDemoRow struct {
	PagesPerNode uint64
	Nodes        []gtlb.NodeID // node of pages 0..15
}

// GTLBExperiment sweeps the block/cyclic interleaving spectrum over a
// 2x2x2 region.
func GTLBExperiment() []GTLBDemoRow {
	var out []GTLBDemoRow
	for _, ppn := range []uint64{1, 2, 4, 8} {
		e := gtlb.Entry{
			VirtPage:     0,
			GroupPages:   64,
			Start:        gtlb.NodeID{},
			ExtentLog:    [3]int{1, 1, 1},
			PagesPerNode: ppn,
		}
		row := GTLBDemoRow{PagesPerNode: ppn}
		for p := uint64(0); p < 16; p++ {
			row.Nodes = append(row.Nodes, e.NodeFor(p*gtlb.GTLBPageWords))
		}
		out = append(out, row)
	}
	return out
}

// FormatGTLB renders E8.
func FormatGTLB(rows []GTLBDemoRow) string {
	var b strings.Builder
	b.WriteString("page-group of 64 pages over a 2x2x2 region; node of pages 0..15\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "pages/node=%d: ", r.PagesPerNode)
		for _, n := range r.Nodes {
			fmt.Fprintf(&b, "%d%d%d ", n.X, n.Y, n.Z)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- E9: guarded-pointer overhead ---

// GuardedPtrResult compares the capability-checked kernel with the raw
// baseline.
type GuardedPtrResult struct {
	Iters         int
	GuardedCycles int64
	RawCycles     int64
}

// GuardedPtrExperiment measures that LEA bounds/permission checking adds no
// per-operation latency over raw address arithmetic — the "light-weight"
// claim of the capability system.
func GuardedPtrExperiment(iters int) (*GuardedPtrResult, error) {
	run := func(guarded bool) (int64, error) {
		s, err := NewSim(Options{Nodes: 1})
		if err != nil {
			return 0, err
		}
		s.MapLocal(0, 0, 2, true)
		p := workload.PointerKernel(iters, guarded)
		s.LoadProgram(0, 0, 0, p, !guarded) // guarded runs as user code
		// The walk covers [base, base+iters]; segments are naturally
		// aligned, so place the base at a segment boundary.
		segLen := uint8(1)
		for (uint64(1) << segLen) < uint64(iters)+2 {
			segLen++
		}
		base := uint64(1) << segLen
		if guarded {
			if err := s.GrantPointer(0, 0, 0, 1, 3, segLen, base); err != nil {
				return 0, err
			}
		} else {
			s.SetReg(0, 0, 0, 1, base)
		}
		return s.Run(int64(iters)*50 + 10000)
	}
	var cyc [2]int64
	names := [2]string{"guarded", "raw"}
	err := ForEachMachine(2, func(i int) error {
		c, err := run(i == 0)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		cyc[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &GuardedPtrResult{Iters: iters, GuardedCycles: cyc[0], RawCycles: cyc[1]}, nil
}

// Format renders E9.
func (r *GuardedPtrResult) Format() string {
	return fmt.Sprintf("iterations            %8d\nguarded (LEA) cycles  %8d\nraw (ADD) cycles      %8d\noverhead              %8.2f%%\n",
		r.Iters, r.GuardedCycles, r.RawCycles,
		100*(float64(r.GuardedCycles)/float64(r.RawCycles)-1))
}

// --- E10: synchronization bits ---

// SyncBitsResult reports the producer/consumer handoff.
type SyncBitsResult struct {
	Value      uint64
	SyncFaults uint64
	HandoffOK  bool
	Cycles     int64
}

// SyncBitsExperiment runs a producer and consumer through a synchronizing
// word: the consumer's ldsy faults and is retried by the event V-Thread
// until the producer's stsy sets the bit (Section 2's atomic
// read-modify-write operations, handled per Section 3.3).
func SyncBitsExperiment() (*SyncBitsResult, error) {
	s, err := NewSim(Options{Nodes: 1})
	if err != nil {
		return nil, err
	}
	s.MapLocal(0, 0, 2, true)
	if err := s.LoadASM(0, 1, 0, `
    movi i1, #50
    ldsy.fe i2, [i1]
    halt
`); err != nil {
		return nil, err
	}
	if err := s.LoadASM(0, 0, 0, `
    movi i1, #0
    movi i2, #300
spin:
    add i1, i1, #1
    lt  i3, i1, i2
    brt i3, spin
    movi i4, #50
    movi i5, #888
    stsy.af [i4], i5
    halt
`); err != nil {
		return nil, err
	}
	cycles, err := s.Run(200000)
	if err != nil {
		return nil, err
	}
	v := s.Reg(0, 1, 0, 2)
	bit, _ := s.M.Chip(0).Mem.SyncVirt(50)
	return &SyncBitsResult{
		Value:      v,
		SyncFaults: s.M.Chip(0).Mem.SyncFaults,
		HandoffOK:  v == 888 && !bit,
		Cycles:     cycles,
	}, nil
}

// Format renders E10.
func (r *SyncBitsResult) Format() string {
	return fmt.Sprintf("consumed value   %6d\nsync faults      %6d\nhandoff correct  %6v\ncycles           %6d\n",
		r.Value, r.SyncFaults, r.HandoffOK, r.Cycles)
}

// --- E11: block-status caching of remote data ---

// BlockCacheResult compares two sweeps over a remote region with caching on
// and off.
type BlockCacheResult struct {
	Words                        int
	CachedPass1, CachedPass2     int64
	UncachedPass1, UncachedPass2 int64
}

// BlockCacheExperiment reads 64 remote words twice. With caching, the first
// pass fetches eight blocks into local DRAM and the second pass is local;
// without caching every access is a remote message (Section 4.3's
// motivation).
func BlockCacheExperiment() (*BlockCacheResult, error) {
	res := &BlockCacheResult{Words: 64}
	err := ForEachMachine(2, func(i int) error {
		caching := i == 0
		s, err := NewSim(Options{Nodes: 2, Caching: caching})
		if err != nil {
			return err
		}
		base := s.HomeBase(1)
		// Stage data at the home node.
		stage := fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    movi i3, #64
sloop:
    st [i1], i2
    add i1, i1, #1
    add i2, i2, #1
    lt i4, i2, i3
    brt i4, sloop
    halt
`, base)
		if err := s.LoadASM(1, 0, 0, stage); err != nil {
			return err
		}
		if _, err := s.Run(500000); err != nil {
			return err
		}
		sweep := fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    movi i3, #64
    mov i14, cyc
loop1:
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #1
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop1
    mov i15, cyc
    movi i1, #%d
    movi i2, #0
loop2:
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #1
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop2
    mov i13, cyc
    halt
`, base, base)
		if err := s.LoadASM(0, 0, 0, sweep); err != nil {
			return err
		}
		if _, err := s.Run(2000000); err != nil {
			return err
		}
		// Correctness: sum of 0..63 twice.
		if got := s.Reg(0, 0, 0, 5); got != 2*(63*64/2) {
			return fmt.Errorf("blockcache sweep sum = %d, want %d", got, 2*63*64/2)
		}
		p1 := int64(s.Reg(0, 0, 0, 15)) - int64(s.Reg(0, 0, 0, 14))
		p2 := int64(s.Reg(0, 0, 0, 13)) - int64(s.Reg(0, 0, 0, 15))
		if caching {
			res.CachedPass1, res.CachedPass2 = p1, p2
		} else {
			res.UncachedPass1, res.UncachedPass2 = p1, p2
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Format renders E11.
func (r *BlockCacheResult) Format() string {
	return fmt.Sprintf(
		"64-word remote sweep (cycles)\n%-22s %10s %10s\n%-22s %10d %10d\n%-22s %10d %10d\nsecond-pass speedup with caching: %.1fx\n",
		"policy", "pass 1", "pass 2",
		"cached in local DRAM", r.CachedPass1, r.CachedPass2,
		"non-cached remote", r.UncachedPass1, r.UncachedPass2,
		float64(r.UncachedPass2)/float64(r.CachedPass2))
}

// DefaultChipConfig exposes the chip defaults for experiment overrides.
func DefaultChipConfig() chip.Config { return chip.DefaultConfig() }
