package core

// Network distance sweep (extension of Table 1's remote rows): remote read
// latency as a function of mesh distance. The paper reports only
// neighbour-node latencies (its two-node measurement setup); the mesh and
// runtime support arbitrary distance, and dimension-order routing adds
// HopLat per hop in each direction, so latency must grow linearly.

import (
	"fmt"
	"strings"
)

// NetSweepRow is one distance point.
type NetSweepRow struct {
	Hops       int
	ReadCycles int64
}

// NetworkSweepExperiment measures remote read latency from node 0 to homes
// at increasing distances on an 8x1x1 mesh; the distance points run on
// independent machines, concurrently.
func NetworkSweepExperiment() ([]NetSweepRow, error) {
	dists := []int{1, 3, 5, 7}
	out := make([]NetSweepRow, len(dists))
	err := ForEachMachine(len(dists), func(i int) error {
		d := dists[i]
		s, err := NewSim(Options{Nodes: 8})
		if err != nil {
			return err
		}
		addr := s.HomeBase(d) + 16
		// Stage the value and warm the home node's cache and LTLB.
		stage := fmt.Sprintf(`
    movi i1, #%d
    movi i2, #7
    st [i1], i2
    ld i3, [i1]
    add i4, i3, #0
    halt
`, addr)
		if err := s.LoadASM(d, 0, 0, stage); err != nil {
			return err
		}
		if _, err := s.Run(200000); err != nil {
			return err
		}
		lat, err := timeRead(s, addr)
		if err != nil {
			return err
		}
		out[i] = NetSweepRow{Hops: d, ReadCycles: lat}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatNetSweep renders the sweep.
func FormatNetSweep(rows []NetSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %20s\n", "hops", "remote read (cycles)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %20d\n", r.Hops, r.ReadCycles)
	}
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		perHop := float64(last.ReadCycles-first.ReadCycles) / float64(2*(last.Hops-first.Hops))
		fmt.Fprintf(&b, "marginal cost: %.2f cycles per hop per direction\n", perHop)
	}
	return b.String()
}
