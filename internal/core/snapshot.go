package core

// Checkpoint/restore wiring for the simulator facade (DESIGN.md,
// "Checkpoint/restore"): Save/Restore/Fork on Sim. The experiment
// harness's warm start is Table1's measureClass, which stages each
// access class once and measures the write cell on a fork. (Booting
// itself is already nearly free — lazy SDRAM plus the memoized runtime —
// so snapshots warm-start *staged* machines, not boots.)

import (
	"io"

	"repro/internal/trace"
)

// Save serializes the machine's complete simulation state to w (see
// machine.Save). The runtime and recorder are not part of the stream: the
// runtime is immutable and re-derivable from the options, and trace
// hooks are environment, not state.
func (s *Sim) Save(w io.Writer) error { return s.M.Save(w) }

// Restore replaces the machine's simulation state with a snapshot
// written by Save (see machine.Restore). The simulator's recorder and
// trace hooks keep recording across the restore.
func (s *Sim) Restore(r io.Reader) error { return s.M.Restore(r) }

// Fork clones the simulator through an in-memory snapshot: the clone
// shares the immutable runtime, starts a fresh trace recorder, and
// evolves independently (what-if runs from a common prefix).
func (s *Sim) Fork() (*Sim, error) {
	m, err := s.M.Fork()
	if err != nil {
		return nil, err
	}
	f := &Sim{M: m, RT: s.RT, Recorder: &trace.Recorder{}, homeSpan: s.homeSpan}
	m.SetTrace(f.Recorder.Hook())
	return f, nil
}
