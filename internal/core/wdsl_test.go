package core

// Tests for the workload-DSL execution path: every checked-in .wl
// scenario must compile and pass its own expectations, and the DSL
// re-expressions of the hand-written stencil / loopsync / mesh-smooth
// workloads must produce bit-identical simulated metrics to the
// generator-driven harness code under every engine (the DSL legs of the
// determinism matrix).

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

const workloadDir = "../../testdata/workloads"

// TestScenarioFiles compiles and runs every checked-in scenario.
func TestScenarioFiles(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(workloadDir, "*.wl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 9 {
		t.Fatalf("expected at least 9 checked-in scenarios, found %d", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			sc, err := ScenarioFromFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sc.Run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Phases) == 0 {
				t.Error("scenario ran no phases")
			}
			if res.Checks == 0 {
				t.Error("scenario declared no expectations")
			}
			for _, ph := range res.Phases {
				if ph.Cycles <= 0 {
					t.Errorf("phase %s ran %d cycles", ph.Name, ph.Cycles)
				}
			}
		})
	}
}

// scenarioFingerprint runs a .wl file and renders its simulated metrics.
func scenarioFingerprint(t *testing.T, file string) (string, error) {
	t.Helper()
	sc, err := ScenarioFromFile(filepath.Join(workloadDir, file))
	if err != nil {
		t.Fatal(err) // compile errors are not engine-dependent
	}
	res, err := sc.Run(Options{})
	if err != nil {
		return "", err
	}
	fp := ""
	for _, ph := range res.Phases {
		fp += fmt.Sprintf("%s=%d ", ph.Name, ph.Cycles)
	}
	return fp + fmt.Sprintf("total=%d stats=%+v", res.TotalCycles, res.Stats), nil
}

// TestDSLMatchesHandWritten pins the DSL re-expressions of the three
// hand-written workloads to the generator-driven harness code: identical
// cycle counts and machine statistics under the naive, event, and
// parallel engines. This extends the determinism matrix to DSL legs —
// the DSL must be a notation, not a different workload.
func TestDSLMatchesHandWritten(t *testing.T) {
	cases := []struct {
		name string
		file string
		hand func() (string, error)
	}{
		{"Stencil7x2", "stencil7x2.wl", handStencil},
		{"LoopSync2", "loopsync2.wl", handLoopSync},
		{"MeshSmooth4", "meshsmooth4.wl", handMeshSmooth},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && c.name == "MeshSmooth4" {
				t.Skip("mesh smooth matrix in -short mode")
			}
			var ref string
			for i, m := range engineModes {
				hand, err := underMode(m, c.hand)
				if err != nil {
					t.Fatalf("hand-written (%s engine): %v", m.name, err)
				}
				dsl, err := underMode(m, func() (string, error) {
					return scenarioFingerprint(t, c.file)
				})
				if err != nil {
					t.Fatalf("DSL (%s engine): %v", m.name, err)
				}
				if dsl != hand {
					t.Fatalf("DSL diverged from hand-written generators (%s engine):\n--- hand ---\n%s\n--- dsl ---\n%s",
						m.name, hand, dsl)
				}
				if i == 0 {
					ref = dsl
				} else if dsl != ref {
					t.Fatalf("DSL diverged between engines (%s vs %s):\n%s\nvs\n%s",
						engineModes[0].name, m.name, ref, dsl)
				}
			}
		})
	}
}

// handStencil replicates the E3 harness leg for the 7-point / 2-H-Thread
// stencil (runStencil's staging), fingerprinting the simulated metrics
// the same way scenarioFingerprint does: one phase, total cycle counter,
// and the machine statistics.
func handStencil() (string, error) {
	st, err := workload.Stencil7(2)
	if err != nil {
		return "", err
	}
	s, err := NewSim(Options{Nodes: 1})
	if err != nil {
		return "", err
	}
	defer s.M.Close()
	s.MapLocal(0, 0, 2, true)
	for i := 0; i < 6; i++ {
		if err := s.Poke(0, st.RBase+uint64(i), math.Float64bits(float64(i+1))); err != nil {
			return "", err
		}
	}
	if err := s.Poke(0, st.RBase+6, math.Float64bits(7)); err != nil {
		return "", err
	}
	if err := s.Poke(0, st.UAddr, math.Float64bits(10)); err != nil {
		return "", err
	}
	for cl, p := range st.Programs {
		s.LoadProgram(0, 0, cl, p, true)
	}
	cycles, err := s.Run(100000)
	if err != nil {
		return "", err
	}
	bits, err := s.Peek(0, st.UAddr)
	if err != nil {
		return "", err
	}
	if math.Float64frombits(bits) != 87 {
		return "", fmt.Errorf("stencil computed %v, want 87", math.Float64frombits(bits))
	}
	return fmt.Sprintf("phase0=%d total=%d stats=%+v", cycles, s.M.Cycle, s.Stats()), nil
}

// handLoopSync replicates the E4 harness leg for 2 H-Threads.
func handLoopSync() (string, error) {
	const iters = 100
	s, err := NewSim(Options{Nodes: 1})
	if err != nil {
		return "", err
	}
	defer s.M.Close()
	progs, err := workload.LoopSync(2, iters)
	if err != nil {
		return "", err
	}
	for cl, p := range progs {
		s.LoadProgram(0, 0, cl, p, true)
	}
	cycles, err := s.Run(int64(iters)*200 + 10000)
	if err != nil {
		return "", err
	}
	for cl := 0; cl < 2; cl++ {
		if got := s.Reg(0, 0, cl, 1); got != iters {
			return "", fmt.Errorf("H-Thread %d ran %d iterations, want %d", cl, got, iters)
		}
	}
	return fmt.Sprintf("phase0=%d total=%d stats=%+v", cycles, s.M.Cycle, s.Stats()), nil
}

// handMeshSmooth replicates runMeshSmooth for 4 nodes / 512 elements,
// keeping both phase cycle counts.
func handMeshSmooth() (string, error) {
	g, err := workload.NewMeshSmooth(4, 512)
	if err != nil {
		return "", err
	}
	s, err := NewSim(Options{Nodes: 4})
	if err != nil {
		return "", err
	}
	defer s.M.Close()
	for n := 0; n < g.Nodes; n++ {
		if err := s.LoadASM(n, 3, 3, g.StageSrc(n, s.HomeBase)); err != nil {
			return "", err
		}
	}
	stageCycles, err := s.Run(5_000_000)
	if err != nil {
		return "", err
	}
	for n := 0; n < g.Nodes; n++ {
		if err := s.LoadASM(n, 0, 0, g.WorkerSrc(n, s.HomeBase)); err != nil {
			return "", err
		}
	}
	cycles, err := s.Run(10_000_000)
	if err != nil {
		return "", err
	}
	for j := 1; j < g.Total()-1; j++ {
		got, err := s.Peek(j/g.Chunk, g.VAddr(s.HomeBase, j))
		if err != nil {
			return "", err
		}
		if got != g.Want(j) {
			return "", fmt.Errorf("v[%d] = %d, want %d", j, got, g.Want(j))
		}
	}
	return fmt.Sprintf("stage=%d smooth=%d total=%d stats=%+v", stageCycles, cycles, s.M.Cycle, s.Stats()), nil
}
