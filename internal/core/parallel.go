package core

// The concurrent experiment harness. Every Table 1 cell, Figure 9
// timeline, stencil configuration, and scaling row stages its own fresh
// machine, so independent machines fan out across the host's cores. This
// is orthogonal to the parallel chip engine (machine.Config.Workers):
// that shards one large machine's cycle, this runs many small machines at
// once. Determinism is unaffected — each simulated machine is fully
// self-contained (per-chip state, its own network, a read-only shared
// runtime assembly), results land in caller-indexed slots, and simulated
// cycle counts never depend on host scheduling.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachMachine runs f(0) .. f(n-1) across min(n, GOMAXPROCS) goroutines
// and returns the lowest-index error, so the reported failure is the same
// one a serial loop would have hit first. Exported for harnesses outside
// this package (cmd/mbench) that fan out over independent machines.
func ForEachMachine(n int, f func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//mlint:allow gocheck experiment fan-out: each goroutine owns a whole machine, no simulated state is shared
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
