package core

import (
	"math"
	"testing"
)

func TestSimQuickstart(t *testing.T) {
	s, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadASM(0, 0, 0, "movi i1, #6\nmul i2, i1, #7\nhalt"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(0, 0, 0, 2); got != 42 {
		t.Errorf("i2 = %d, want 42", got)
	}
}

func TestSimHomeBase(t *testing.T) {
	s, err := NewSim(Options{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.HomeBase(0) != 0 || s.HomeBase(2) != 2*4096 {
		t.Errorf("HomeBase = %d/%d", s.HomeBase(0), s.HomeBase(2))
	}
}

func TestSimStats(t *testing.T) {
	s, err := NewSim(Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadASM(0, 0, 0, `
    movi i1, #4100
    movi i2, #7
    st [i1], i2
    halt
`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntil(func() bool {
		w, err := s.Peek(1, 4100)
		return err == nil && w == 7
	}, 50000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Instructions == 0 || st.MsgsInjected == 0 || st.LTLBFaults == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

// Table 1 shape assertions: the paper's orderings must hold. One known
// deviation is documented in EXPERIMENTS.md: our LTLB-miss handler is
// leaner than the authors' (≈25 vs 48 cycles), so a remote write that hits
// at its home can complete before a local LTLB-miss write, whereas the
// paper has them within 10% of each other.
func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[AccessClass]Table1Row{}
	for _, r := range rows {
		byClass[r.Class] = r
	}
	// Exact local latencies (calibrated to the paper).
	if r := byClass[LocalCacheHit]; r.Read != 3 || r.Write != 2 {
		t.Errorf("local hit = %d/%d, want 3/2", r.Read, r.Write)
	}
	if r := byClass[LocalCacheMiss]; r.Read != 13 || r.Write != 19 {
		t.Errorf("local miss = %d/%d, want 13/19", r.Read, r.Write)
	}
	// Read latency ordering: strictly increasing down the table.
	prev := int64(-1)
	for c := AccessClass(0); c < numAccessClasses; c++ {
		r := byClass[c]
		if r.Read <= prev {
			t.Errorf("read ordering violated at %s: %d after %d", c, r.Read, prev)
		}
		prev = r.Read
	}
	// Write orderings that must hold.
	if byClass[LocalCacheMiss].Write <= byClass[LocalCacheHit].Write {
		t.Error("write: miss not slower than hit")
	}
	if byClass[LocalLTLBMiss].Write <= byClass[LocalCacheMiss].Write {
		t.Error("write: LTLB miss not slower than cache miss")
	}
	if byClass[RemoteCacheMiss].Write <= byClass[RemoteCacheHit].Write {
		t.Error("write: remote miss not slower than remote hit")
	}
	if byClass[RemoteLTLBMiss].Write <= byClass[RemoteCacheMiss].Write {
		t.Error("write: remote LTLB miss not slower than remote miss")
	}
	// Remote write beats remote read (no reply decode on the critical
	// path) — the paper's 74 vs 138.
	for c := RemoteCacheHit; c <= RemoteLTLBMiss; c++ {
		if byClass[c].Write >= byClass[c].Read {
			t.Errorf("%s: write %d not faster than read %d", c, byClass[c].Write, byClass[c].Read)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	read, write, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	// The read timeline must contain all eight phases in order, ending at
	// the register writeback on node 0.
	if len(read.Phases) != 8 {
		t.Fatalf("read timeline has %d phases, want 8:\n%s", len(read.Phases), read.Format())
	}
	for i := 1; i < len(read.Phases); i++ {
		if read.Phases[i].Cycle < read.Phases[i-1].Cycle {
			t.Errorf("read phases out of order:\n%s", read.Format())
		}
	}
	if read.Phases[len(read.Phases)-1].Node != 0 {
		t.Error("read must complete on node 0")
	}
	// The write timeline ends when the store executes at the home node.
	if len(write.Phases) != 5 {
		t.Fatalf("write timeline has %d phases, want 5:\n%s", len(write.Phases), write.Format())
	}
	if write.Phases[len(write.Phases)-1].Node != 1 {
		t.Error("write must complete on node 1")
	}
	if write.Total >= read.Total {
		t.Errorf("remote write (%d) not faster than remote read (%d)", write.Total, read.Total)
	}
}

func TestStencilShape(t *testing.T) {
	rs, err := StencilExperiment()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string, ht int) StencilResult {
		for _, r := range rs {
			if r.Name == name && r.HThreads == ht {
				return r
			}
		}
		t.Fatalf("missing %s x%d", name, ht)
		return StencilResult{}
	}
	s71, s72 := get("7-point stencil", 1), get("7-point stencil", 2)
	if s71.Depth != 12 || s72.Depth != 8 {
		t.Errorf("7-point depths = %d -> %d, want 12 -> 8 (paper)", s71.Depth, s72.Depth)
	}
	s271, s274 := get("27-point stencil", 1), get("27-point stencil", 4)
	if s274.Depth >= s271.Depth/2 {
		t.Errorf("27-point depth reduction too small: %d -> %d (paper: 36 -> 17)", s271.Depth, s274.Depth)
	}
	for _, r := range rs {
		if math.Abs(r.Value-r.Want) > 1e-9 {
			t.Errorf("%s x%d computed %v, want %v", r.Name, r.HThreads, r.Value, r.Want)
		}
	}
	// Multi-H-Thread versions must also be dynamically faster.
	if s72.Cycles >= s71.Cycles {
		t.Errorf("7-point 2HT cycles %d not < 1HT %d", s72.Cycles, s71.Cycles)
	}
	if s274.Cycles >= s271.Cycles {
		t.Errorf("27-point 4HT cycles %d not < 1HT %d", s274.Cycles, s271.Cycles)
	}
}

func TestLoopSyncShape(t *testing.T) {
	rs, err := LoopSyncExperiment(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.PerIter <= r.BaselinePerIter {
			t.Errorf("%d H-Threads: sync loop (%f/iter) not slower than baseline (%f)",
				r.HThreads, r.PerIter, r.BaselinePerIter)
		}
		// The interlock must stay cheap: a handful of cycles, no tree.
		if r.PerIter-r.BaselinePerIter > 20 {
			t.Errorf("%d H-Threads: barrier overhead %f cycles/iter too large",
				r.HThreads, r.PerIter-r.BaselinePerIter)
		}
	}
}

func TestVThreadShape(t *testing.T) {
	rs, err := VThreadExperiment(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].LoadsPerKCycle <= rs[0].LoadsPerKCycle {
		t.Errorf("2 V-Threads (%f) not better than 1 (%f): interleaving masks no latency",
			rs[1].LoadsPerKCycle, rs[0].LoadsPerKCycle)
	}
	// Throughput must not degrade as more V-Threads are added.
	for i := 2; i < len(rs); i++ {
		if rs[i].LoadsPerKCycle < rs[i-1].LoadsPerKCycle*0.95 {
			t.Errorf("throughput degraded at %d V-Threads: %f after %f",
				rs[i].VThreads, rs[i].LoadsPerKCycle, rs[i-1].LoadsPerKCycle)
		}
	}
}

func TestThrottleShape(t *testing.T) {
	r, err := ThrottleExperiment(24, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.SendsBlocked == 0 {
		t.Error("no SEND stalls under credit exhaustion")
	}
	if r.Returned == 0 {
		t.Error("no messages returned under receiver overflow")
	}
	if r.Landed != r.Messages {
		t.Errorf("only %d/%d stores landed (exactly-once delivery broken)", r.Landed, r.Messages)
	}
}

func TestGuardedPtrShape(t *testing.T) {
	r, err := GuardedPtrExperiment(100)
	if err != nil {
		t.Fatal(err)
	}
	// The capability system is "light-weight": no cycle overhead.
	if r.GuardedCycles != r.RawCycles {
		t.Errorf("guarded %d vs raw %d cycles: expected zero overhead", r.GuardedCycles, r.RawCycles)
	}
}

func TestSyncBitsShape(t *testing.T) {
	r, err := SyncBitsExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if !r.HandoffOK {
		t.Errorf("handoff failed: %+v", r)
	}
	if r.SyncFaults == 0 {
		t.Error("consumer never faulted: the experiment did not exercise retry")
	}
}

func TestBlockCacheShape(t *testing.T) {
	r, err := BlockCacheExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if r.CachedPass2 >= r.CachedPass1 {
		t.Errorf("cached second pass (%d) not faster than first (%d)", r.CachedPass2, r.CachedPass1)
	}
	if r.CachedPass2*2 >= r.UncachedPass2 {
		t.Errorf("caching speedup too small: %d vs %d", r.CachedPass2, r.UncachedPass2)
	}
	if diff := r.UncachedPass1 - r.UncachedPass2; diff > r.UncachedPass1/4 || diff < -r.UncachedPass1/4 {
		t.Errorf("non-cached passes should be similar: %d vs %d", r.UncachedPass1, r.UncachedPass2)
	}
}

func TestGTLBDemoShape(t *testing.T) {
	rows := GTLBExperiment()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// pages/node=1 is fully cyclic: 8 distinct nodes then repeat.
	first := rows[0]
	seen := map[string]bool{}
	for _, n := range first.Nodes[:8] {
		seen[n.String()] = true
	}
	if len(seen) != 8 {
		t.Errorf("cyclic interleaving covered %d nodes, want 8", len(seen))
	}
	// pages/node=8 is blocked: first 8 pages on one node.
	last := rows[3]
	for _, n := range last.Nodes[:8] {
		if n != last.Nodes[0] {
			t.Errorf("block interleaving split the first 8 pages: %v", last.Nodes[:8])
		}
	}
}

func TestNetworkSweepShape(t *testing.T) {
	rows, err := NetworkSweepExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// Latency must grow strictly and linearly with distance: each extra
	// hop costs HopLat (1 cycle) in each direction.
	for i := 1; i < len(rows); i++ {
		dHops := int64(rows[i].Hops - rows[i-1].Hops)
		dLat := rows[i].ReadCycles - rows[i-1].ReadCycles
		if dLat != 2*dHops {
			t.Errorf("hops %d -> %d: latency grew %d, want %d (1 cycle/hop/direction)",
				rows[i-1].Hops, rows[i].Hops, dLat, 2*dHops)
		}
	}
}

func TestGridSmoothScaling(t *testing.T) {
	rows, err := GridSmoothExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Near-linear scaling: at least 1.7x on 2 nodes and 3x on 4.
	if rows[1].Speedup < 1.7 {
		t.Errorf("2-node speedup = %.2f, want >= 1.7", rows[1].Speedup)
	}
	if rows[2].Speedup < 3.0 {
		t.Errorf("4-node speedup = %.2f, want >= 3.0", rows[2].Speedup)
	}
}
