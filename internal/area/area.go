// Package area implements the technology/area analytical model of the
// paper's Sections 1 and 5: normalized-lambda-squared areas of processors,
// chips, and memory systems, and the headline claim that a 32-node
// M-Machine delivers 128x the peak performance of a 1996 uniprocessor with
// the same memory capacity at 1.5x the area — an 85:1 improvement in peak
// performance per unit area.
package area

import (
	"fmt"
	"strings"
)

// Lambda2 is an area in units of lambda^2 (lambda = half the gate length;
// Mead & Conway normalization, the paper's footnote 1).
type Lambda2 float64

const (
	M Lambda2 = 1e6
	G Lambda2 = 1e9
)

// Inputs are the paper's technology constants.
type Inputs struct {
	ProcArea       Lambda2 // 64-bit processor with pipelined FPU: 400 M-lambda^2
	Chip1993       Lambda2 // 0.5um chip: 3.6 G-lambda^2
	Chip1996       Lambda2 // 0.35um chip: 10 G-lambda^2
	MapChip        Lambda2 // MAP chip: 5 G-lambda^2
	ClusterFracMap float64 // four clusters / MAP chip: 32%
	ClusterFracNod float64 // four clusters / 8-MByte six-chip node: 11%
	SysProcFrac96  float64 // processor / 1996 256-MByte system silicon: 0.13%
	SysProcFrac93  float64 // processor / 1993 64-MByte system silicon: 0.52%
	Nodes          int     // 32-node configuration
	ClustersPer    int     // 4 clusters per node
}

// PaperInputs returns the constants exactly as stated in the paper.
func PaperInputs() Inputs {
	return Inputs{
		ProcArea:       400 * M,
		Chip1993:       3.6 * G,
		Chip1996:       10 * G,
		MapChip:        5 * G,
		ClusterFracMap: 0.32,
		ClusterFracNod: 0.11,
		SysProcFrac96:  0.0013,
		SysProcFrac93:  0.0052,
		Nodes:          32,
		ClustersPer:    4,
	}
}

// Results are the derived quantities the paper reports.
type Results struct {
	ProcFracChip1993 float64 // 11%
	ProcFracChip1996 float64 // 4%
	NodeArea         Lambda2 // MAP clusters / 11% => node area
	MachineArea      Lambda2 // Nodes * NodeArea
	UniSystemArea    Lambda2 // 1996 uniprocessor system, same memory
	AreaRatio        float64 // MachineArea / UniSystemArea: ~1.5
	PeakPerfRatio    float64 // clusters vs one processor: 128
	PerfPerAreaGain  float64 // PeakPerfRatio / AreaRatio: ~85
	ProcFracMachine  float64 // processor silicon fraction of the M-Machine: ~11%
}

// Evaluate derives the results from the inputs.
func Evaluate(in Inputs) Results {
	var r Results
	r.ProcFracChip1993 = float64(in.ProcArea / in.Chip1993)
	r.ProcFracChip1996 = float64(in.ProcArea / in.Chip1996)

	clusterArea := Lambda2(float64(in.MapChip) * in.ClusterFracMap)
	r.NodeArea = Lambda2(float64(clusterArea) / in.ClusterFracNod)
	r.MachineArea = Lambda2(float64(r.NodeArea) * float64(in.Nodes))

	// The 1996 uniprocessor system with the same 256-MByte capacity:
	// its processor is SysProcFrac96 of total silicon.
	r.UniSystemArea = Lambda2(float64(in.ProcArea) / in.SysProcFrac96)

	r.AreaRatio = float64(r.MachineArea / r.UniSystemArea)
	r.PeakPerfRatio = float64(in.Nodes * in.ClustersPer)
	r.PerfPerAreaGain = r.PeakPerfRatio / r.AreaRatio
	r.ProcFracMachine = in.ClusterFracNod
	return r
}

// Format renders the model against the paper's claims.
func Format(in Inputs, r Results) string {
	var b strings.Builder
	row := func(name string, paper, ours float64, unit string) {
		fmt.Fprintf(&b, "%-46s %10.3g %10.3g %s\n", name, paper, ours, unit)
	}
	fmt.Fprintf(&b, "%-46s %10s %10s\n", "quantity", "paper", "model")
	row("processor fraction of 1993 0.5um chip", 0.11, r.ProcFracChip1993, "")
	row("processor fraction of 1996 0.35um chip", 0.04, r.ProcFracChip1996, "")
	row("processor fraction of 1996 system silicon", 0.0013, in.SysProcFrac96, "")
	row("M-Machine processor fraction of node", 0.11, r.ProcFracMachine, "")
	row("32-node M-Machine area / uniprocessor area", 1.5, r.AreaRatio, "x")
	row("peak performance ratio (128 clusters)", 128, r.PeakPerfRatio, "x")
	row("peak performance per area gain", 85, r.PerfPerAreaGain, ":1")
	return b.String()
}
