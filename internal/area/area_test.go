package area

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestPaperClaims(t *testing.T) {
	r := Evaluate(PaperInputs())
	// "a 64-bit processor with a pipelined FPU (400M-lambda^2) is only 11%
	// of a 3.6G-lambda^2 1993 0.5um chip and only 4% of a 10G-lambda^2
	// 1996 0.35um chip"
	if !approx(r.ProcFracChip1993, 0.111, 0.002) {
		t.Errorf("1993 processor fraction = %f, want ~0.111", r.ProcFracChip1993)
	}
	if !approx(r.ProcFracChip1996, 0.04, 0.001) {
		t.Errorf("1996 processor fraction = %f, want 0.04", r.ProcFracChip1996)
	}
	// "a 85:1 improvement in peak performance/area"
	if !approx(r.PerfPerAreaGain, 85, 2) {
		t.Errorf("perf/area gain = %f, want ~85", r.PerfPerAreaGain)
	}
	// "128 times the peak performance ... at 1.5 times the area"
	if r.PeakPerfRatio != 128 {
		t.Errorf("peak perf ratio = %f, want 128", r.PeakPerfRatio)
	}
	if !approx(r.AreaRatio, 1.5, 0.05) {
		t.Errorf("area ratio = %f, want ~1.5", r.AreaRatio)
	}
	// "increases the ratio of processor to memory silicon area to 11%"
	if !approx(r.ProcFracMachine, 0.11, 0.001) {
		t.Errorf("M-Machine processor fraction = %f, want 0.11", r.ProcFracMachine)
	}
}

func TestNodeAreaDerivation(t *testing.T) {
	r := Evaluate(PaperInputs())
	// Clusters are 32% of the 5G map chip = 1.6G; at 11% of the node the
	// node is ~14.5G-lambda^2.
	if !approx(float64(r.NodeArea), 14.5e9, 0.2e9) {
		t.Errorf("node area = %g, want ~14.5e9", float64(r.NodeArea))
	}
	if !approx(float64(r.MachineArea), 32*14.5e9, 10e9) {
		t.Errorf("machine area = %g", float64(r.MachineArea))
	}
}

func TestFormatMentionsHeadline(t *testing.T) {
	in := PaperInputs()
	out := Format(in, Evaluate(in))
	if len(out) == 0 {
		t.Fatal("empty report")
	}
	for _, want := range []string{"85", "128", "peak performance"} {
		if !contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestScalingSensitivity(t *testing.T) {
	// Halving the node count halves peak performance but also area: the
	// perf/area gain is invariant to machine size in this model.
	in := PaperInputs()
	r32 := Evaluate(in)
	in.Nodes = 16
	r16 := Evaluate(in)
	if !approx(r16.PerfPerAreaGain/r32.PerfPerAreaGain, 1.0, 1e-9) {
		t.Errorf("perf/area gain should be size-invariant: %f vs %f",
			r16.PerfPerAreaGain, r32.PerfPerAreaGain)
	}
	if !approx(r16.PeakPerfRatio, 64, 1e-9) {
		t.Errorf("16-node peak ratio = %f, want 64", r16.PeakPerfRatio)
	}
}
