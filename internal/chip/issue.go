package chip

// The synchronization pipeline stage (Section 3.2): each cycle, each
// cluster holds the next instruction from each of the six resident
// V-Threads and issues one whose operands are all present and whose
// resources are all available. A stalled H-Thread consumes nothing but its
// thread slot; V-Threads interleave with zero switch cost.

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/isa"
)

// issueCluster selects and issues at most one instruction on cluster cl,
// reporting whether one issued. Ready V-Threads are served round-robin
// across all six slots, so event handlers and user threads share the
// cluster fairly ("Multiple V-Threads may be interleaved with zero delay",
// Section 3.2; the paper specifies no fixed priority among ready threads).
// Threads that stall are recorded in idleStalled so SkipCycles can replay
// the scan's stat effects over fast-forwarded idle cycles.
func (c *Chip) issueCluster(now int64, cl int) bool {
	cc := c.Clusters[cl]
	start := cc.LastIssued + 1
	for i := 0; i < isa.NumVThreads; i++ {
		vt := (start + i) % isa.NumVThreads
		th := cc.Threads[vt]
		in := th.Current()
		if in == nil {
			continue
		}
		if !c.ready(now, vt, cl, th, in) {
			th.StallCycles++
			c.idleStalled = append(c.idleStalled, th)
			continue
		}
		c.issue(now, vt, cl, th, in)
		cc.LastIssued = vt
		return true
	}
	return false
}

// ready implements the scoreboard and resource checks for a whole
// instruction: all operations issue together or not at all.
func (c *Chip) ready(now int64, vt, cl int, th *cluster.HThread, in *isa.Inst) bool {
	for _, op := range in.Ops() {
		if !c.opReady(now, vt, cl, th, op) {
			return false
		}
	}
	return true
}

func (c *Chip) opReady(now int64, vt, cl int, th *cluster.HThread, op *isa.Op) bool {
	// Source operands must be full.
	for _, src := range []isa.Reg{op.Src1, op.Src2} {
		if !c.srcReady(vt, cl, th, src) {
			return false
		}
	}
	// Multi-register operands (TLBW, MRETRY read 4 consecutive registers;
	// SEND reads the body registers).
	switch op.Code {
	case isa.TLBW, isa.MRETRY:
		base := int(op.Src1.Index)
		for i := 0; i < 4; i++ {
			if base+i >= th.Ints.Len() || !th.Ints.Full(base+i) {
				return false
			}
		}
	case isa.SEND, isa.SENDN:
		base := int(op.Dst.Index)
		for i := 0; i < int(op.Imm); i++ {
			if base+i >= th.Ints.Len() || !th.Ints.Full(base+i) {
				return false
			}
		}
		if op.Code == isa.SEND && op.Pri == 0 && c.credits <= 0 {
			// Throttling: "threads attempting to execute a SEND
			// instruction will stall" when no buffer space remains.
			c.SendsBlocked++
			return false
		}
	}
	// Local destination must not have a pending writer (scoreboard WAW
	// rule); EMPTY only clears, and GCC broadcasts overwrite.
	if !op.Dst.IsZero() && op.Code != isa.EMPTY && op.Code != isa.SEND && op.Code != isa.SENDN {
		switch op.Dst.Class {
		case isa.RInt, isa.RFP:
			if op.Dst.Cluster == isa.ClusterSelf && !th.File(op.Dst.Class).Full(int(op.Dst.Index)) {
				return false
			}
			if op.Dst.Cluster != isa.ClusterSelf && c.cswitchUsed >= c.Cfg.CSwitchPorts {
				return false
			}
		}
	}
	// Memory unit resource checks.
	switch op.Code {
	case isa.LD, isa.ST, isa.LDSY, isa.STSY, isa.LDP, isa.STP:
		addr, _, err := c.effAddr(th, op)
		if err != nil {
			return true // issue and fault synchronously
		}
		if !c.Mem.CanAccept(now, addr) {
			return false
		}
	case isa.MRETRY:
		rec := c.readRecord(th, int(op.Src1.Index))
		if !c.Mem.CanAccept(now, rec.VAddr) {
			return false
		}
	}
	return true
}

// srcReady checks a source operand's scoreboard (or queue) state.
func (c *Chip) srcReady(vt, cl int, th *cluster.HThread, r isa.Reg) bool {
	switch r.Class {
	case isa.RNone:
		return true
	case isa.RInt, isa.RFP:
		return th.File(r.Class).Full(int(r.Index))
	case isa.RGCC:
		return c.Clusters[cl].GCC.Full(int(r.Index))
	case isa.RSpec:
		switch r.Index {
		case isa.SpecNet, isa.SpecEvq:
			q := c.queueFor(vt, cl, int(r.Index))
			return q != nil && !q.Empty()
		default:
			return true
		}
	}
	return false
}

// queueFor maps a (slot, cluster) net/evq read to its hardware queue, per
// the paper's assignment of event-handling H-Threads to clusters. Reads
// from slots without a queue return nil and never become ready.
func (c *Chip) queueFor(vt, cl int, spec int) *events.Queue {
	if vt == isa.ExceptionSlot && spec == isa.SpecEvq {
		return c.excq
	}
	if vt != isa.EventSlot {
		return nil
	}
	switch spec {
	case isa.SpecNet:
		switch cl {
		case MsgPri0Cluster:
			return c.msgq[0]
		case MsgPri1Cluster:
			return c.msgq[1]
		}
	case isa.SpecEvq:
		if cl == FaultCluster || cl == LTLBCluster {
			return c.evq[cl]
		}
	}
	return nil
}

// readSrc fetches a source operand's value at issue time. Reads of net/evq
// pop the hardware queue (register-mapped dequeue).
func (c *Chip) readSrc(vt, cl int, th *cluster.HThread, r isa.Reg) isa.Word {
	switch r.Class {
	case isa.RInt, isa.RFP:
		return th.File(r.Class).Get(int(r.Index))
	case isa.RGCC:
		return c.Clusters[cl].GCC.Get(int(r.Index))
	case isa.RSpec:
		switch r.Index {
		case isa.SpecNet, isa.SpecEvq:
			return c.queueFor(vt, cl, int(r.Index)).Pop()
		case isa.SpecNode:
			return isa.W(uint64(c.Index))
		case isa.SpecThr:
			return isa.W(uint64(vt))
		case isa.SpecCyc:
			return isa.W(uint64(c.Cycle))
		}
	}
	return isa.Word{}
}

// writeDst schedules a destination write: local registers after the op's
// latency, cross-cluster transfers through the C-Switch, GCC broadcasts to
// every replica.
func (c *Chip) writeDst(now int64, vt, cl int, op *isa.Op, lat int64, w isa.Word) {
	dst := op.Dst
	if dst.IsZero() {
		return
	}
	if dst.Class == isa.RGCC {
		c.scheduleGCC(now+c.Cfg.GCCLat, int(dst.Index), w)
		return
	}
	if dst.Cluster != isa.ClusterSelf && int(dst.Cluster) != cl {
		// Inter-cluster transfer: consume a C-Switch port; the receiving
		// register becomes full when the datum arrives (Section 3.1).
		c.cswitchUsed++
		local := dst
		local.Cluster = isa.ClusterSelf
		c.schedule(now+c.Cfg.XferLat, vt, int(dst.Cluster), local, w)
		return
	}
	th := c.Clusters[cl].Threads[vt]
	if lat <= 0 {
		th.File(dst.Class).Set(int(dst.Index), w)
		return
	}
	th.File(dst.Class).MarkEmpty(int(dst.Index))
	c.schedule(now+lat, vt, cl, dst, w)
}

// issue executes all operations of an instruction. Operations issue
// together; results complete out of order according to their latencies.
func (c *Chip) issue(now int64, vt, cl int, th *cluster.HThread, in *isa.Inst) {
	c.InstsIssued++
	th.Issued++
	nextPC := th.PC + 1
	for _, op := range in.Ops() {
		c.OpsIssued++
		th.OpsIssued++
		if op.Code.IsPrivileged() && !th.Privileged {
			c.protFault(vt, cl, th, fmt.Sprintf("privileged op %s in user thread", op.Code))
			return
		}
		if pc, branched := c.execute(now, vt, cl, th, op); branched {
			nextPC = pc
		}
		if th.Status != cluster.ThreadRunning {
			return // HALT or synchronous fault inside execute
		}
	}
	th.PC = nextPC
}

// protFault raises a synchronous exception: the faulting thread stops and a
// record is queued for the exception V-Thread (Section 3.3: protection
// violations "stall all user H-Threads in the affected cluster, and are
// handled synchronously"; we stop the offender and queue the record).
func (c *Chip) protFault(vt, cl int, th *cluster.HThread, msg string) {
	th.Fault(msg)
	c.excq.PushWords([]isa.Word{
		isa.W(uint64(vt)),
		isa.W(uint64(cl)),
		isa.W(uint64(th.PC)),
	})
	c.trace("prot-fault", msg)
}

// readRecord assembles an event record from 4 consecutive integer
// registers (the operand convention of TLBW and MRETRY).
func (c *Chip) readRecord(th *cluster.HThread, base int) recordWords {
	var ws recordWords
	for i := range ws.w {
		ws.w[i] = th.Ints.Get(base + i)
	}
	ws.VAddr = ws.w[1].Bits
	return ws
}

type recordWords struct {
	w     [4]isa.Word
	VAddr uint64
}

// effAddr computes and protection-checks a memory operation's effective
// address. User threads must present a tagged guarded pointer with
// sufficient permissions; privileged threads may use raw addresses
// (physical for LDP/STP, virtual otherwise).
func (c *Chip) effAddr(th *cluster.HThread, op *isa.Op) (addr uint64, write bool, err error) {
	write = op.Code == isa.ST || op.Code == isa.STSY || op.Code == isa.STP
	base := th.Ints.Get(int(op.Src1.Index))
	if op.Code == isa.LDP || op.Code == isa.STP {
		return base.Bits + uint64(op.Imm), write, nil
	}
	if th.Privileged {
		if base.Ptr {
			return ptrAddr(base, op.Imm)
		}
		return base.Bits + uint64(op.Imm), write, nil
	}
	if !base.Ptr {
		return 0, write, fmt.Errorf("memory access through untagged word")
	}
	return ptrAddrChecked(base, op.Imm, write)
}
