package chip

// Console is the minimal I/O-bus device attached to every node (Section 2
// notes an I/O bus available on each node). It is memory mapped just past
// physical memory and accessed with privileged physical stores:
//
//	offset 0: write the low byte as a character
//	offset 1: write a word, rendered in decimal followed by a newline
//	offset 0 read: number of bytes emitted so far
import (
	"strconv"
	"sync"
)

// ConsoleWords is the device window size in words.
const ConsoleWords = 64

// Console buffers output text from simulated programs.
type Console struct {
	mu  sync.Mutex
	buf []byte
}

// DevWrite implements mem.Device.
func (c *Console) DevWrite(off uint64, w uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch off {
	case 0:
		c.buf = append(c.buf, byte(w))
	case 1:
		c.buf = append(c.buf, strconv.FormatInt(int64(w), 10)...)
		c.buf = append(c.buf, '\n')
	}
}

// DevRead implements mem.Device.
func (c *Console) DevRead(off uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if off == 0 {
		return uint64(len(c.buf))
	}
	return 0
}

// String returns the accumulated output.
func (c *Console) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return string(c.buf)
}

// ConsoleBase returns the physical word address of the console window on
// this chip: the first word past local memory.
func (c *Chip) ConsoleBase() uint64 { return c.Cfg.Mem.SDRAM.Words }
