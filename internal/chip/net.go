package chip

// The communication subsystem (Section 4.1): the SEND datapath with GTLB
// translation and protection checks, the network input interface that fills
// the register-mapped message queues, and the return-to-sender throttling
// protocol.

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gp"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/noc"
)

// gtlbToNoc converts between the two packages' coordinate types.
func gtlbToNoc(n gtlb.NodeID) noc.Coord { return noc.Coord{X: n.X, Y: n.Y, Z: n.Z} }

// executeSend implements SEND and SENDN. SEND translates the destination
// virtual address through the GTLB and launches atomically; SENDN is the
// privileged node-addressed form used by system reply handlers.
func (c *Chip) executeSend(now int64, vt, cl int, th *cluster.HThread, op *isa.Op) {
	addrW := c.readSrc(vt, cl, th, op.Src1)
	dipW := c.readSrc(vt, cl, th, op.Src2)

	body := make([]isa.Word, op.Imm)
	for i := range body {
		body[i] = th.Ints.Get(int(op.Dst.Index) + i)
	}

	msg := &noc.Message{Src: c.Node, DIP: dipW.Bits, Body: body}

	if op.Code == isa.SENDN {
		idx := int(addrW.Bits)
		if idx < 0 || idx >= c.Net.NumNodes() {
			c.protFault(vt, cl, th, fmt.Sprintf("sendn to bad node %d", idx))
			return
		}
		msg.Pri = 1
		msg.Dst = c.Net.CoordOf(idx)
		msg.DstAddr = addrW.Bits
		c.send(msg)
		c.trace("send", fmt.Sprintf("pri1 to node %d dip=%d len=%d", idx, msg.DIP, len(body)))
		return
	}

	// User-level SEND: the destination is a virtual address. Protection:
	// user threads must present a tagged pointer (the GTLB then guarantees
	// the message stays inside the sender's address space), and the DIP
	// must be registered ("If an illegal DIP is used, a fault will occur on
	// the sending thread before the message is sent").
	a := addrW.Bits
	if !th.Privileged {
		if !addrW.Ptr {
			c.protFault(vt, cl, th, "send to untagged address")
			return
		}
		if !c.validDIPs[dipW.Bits] {
			c.protFault(vt, cl, th, fmt.Sprintf("send with illegal DIP %d", dipW.Bits))
			return
		}
	}
	if addrW.Ptr {
		a = gp.Pointer(addrW.Bits).Addr()
	}
	home, err := c.GTLB.Translate(a)
	if err != nil {
		c.protFault(vt, cl, th, fmt.Sprintf("send to unmapped address %#x", a))
		return
	}
	// Throttling: reserve return-buffer space (checked in opReady).
	c.credits--
	msg.Pri = 0
	msg.Dst = gtlbToNoc(home)
	msg.DstAddr = a
	c.send(msg)
	c.trace("send", fmt.Sprintf("pri0 to %v dip=%d len=%d", msg.Dst, msg.DIP, len(body)))
}

// networkInput drains delivered messages into the hardware message queues.
// Priority 1 (replies) is drained first. Arriving priority-0 messages
// generate the hardware consumed/returned acknowledgement.
func (c *Chip) networkInput(now int64) {
	for pri := noc.NumPriorities - 1; pri >= 0; pri-- {
		for {
			m := c.Net.Pop(c.Node, pri)
			if m == nil {
				break
			}
			c.receiveMsg(now, m)
		}
	}
}

func (c *Chip) receiveMsg(now int64, m *noc.Message) {
	if m.HWAck {
		if m.AckOK {
			// Destination consumed the message: release the reserved
			// return-buffer slot.
			c.credits++
		} else {
			// Message returned: hold it in the reserved buffer and resend
			// later (Section 4.1: "the reply contains the contents of the
			// original message which are copied into the buffer and resent
			// at a later time").
			c.MsgsReturned++
			at := now + c.Cfg.ResendDelay
			c.resends = append(c.resends, resend{msg: m.Orig, at: at})
			if at < c.resendNext {
				c.resendNext = at
			}
		}
		return
	}

	c.msgScratch = append(c.msgScratch[:0], isa.W(m.DIP), isa.W(m.DstAddr))
	c.msgScratch = append(c.msgScratch, m.Body...)
	accepted := c.msgq[m.Pri].PushWords(c.msgScratch)
	if m.Pri == 0 {
		ack := &noc.Message{
			Pri:   1,
			Src:   c.Node,
			Dst:   m.Src,
			HWAck: true,
			AckOK: accepted,
		}
		if !accepted {
			orig := *m
			ack.Orig = &orig
		}
		c.send(ack)
	}
	if accepted {
		c.trace("msg-recv", fmt.Sprintf("pri%d dip=%d from %v", m.Pri, m.DIP, m.Src))
	} else {
		c.trace("msg-reject", fmt.Sprintf("pri%d dip=%d from %v", m.Pri, m.DIP, m.Src))
	}
}

// resendReturned re-injects returned messages whose backoff has expired.
// The messages still hold their buffer reservation, so no credit check.
func (c *Chip) resendReturned(now int64) {
	if now < c.resendNext {
		return
	}
	kept := c.resends[:0]
	next := NoEvent
	for _, r := range c.resends {
		if r.at > now {
			kept = append(kept, r)
			if r.at < next {
				next = r.at
			}
			continue
		}
		m := r.msg
		fresh := &noc.Message{
			Pri:     m.Pri,
			Src:     c.Node,
			Dst:     m.Dst,
			DIP:     m.DIP,
			DstAddr: m.DstAddr,
			Body:    m.Body,
		}
		c.send(fresh)
		c.trace("resend", fmt.Sprintf("dip=%d to %v", m.DIP, m.Dst))
	}
	for i := len(kept); i < len(c.resends); i++ {
		c.resends[i] = resend{}
	}
	c.resends = kept
	c.resendNext = next
}
