// Package chip implements the MAP multi-ALU processor chip (Figure 2): four
// execution clusters interleaving six V-Threads, the M-Switch and C-Switch
// port arbitration, the hardware event and message queues, the network
// output's SEND datapath with GTLB translation and return-to-sender
// throttling, and the network input interface.
//
// One Chip.Step call advances the node by one cycle. The simulation is
// deterministic: arbitration is resolved in fixed order (exception slot,
// event slot, then user slots round-robin within each cluster; clusters in
// index order for shared resources).
package chip

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// NoEvent is the NextEvent sentinel meaning "this component will never act
// again without external input" (see DESIGN.md, "The NextEvent contract").
// The leaf packages (mem, noc, events) each define the value to avoid an
// artificial dependency; everything above them aliases one definition.
const NoEvent = mem.NoEvent

// Config gathers the chip's timing and capacity parameters.
type Config struct {
	Mem mem.Config
	Net noc.Config

	IntLat  int64 // integer ALU result latency
	FPLat   int64 // FP add/sub/mul/convert latency
	FDivLat int64 // FP divide latency
	XferLat int64 // cross-cluster register write over the C-Switch
	GCCLat  int64 // global CC broadcast latency
	GTLBLat int64 // GPROBE / SEND translation latency

	CSwitchPorts int // C-Switch transfers per cycle (4, Section 2)

	MsgQueueCap   int   // words per hardware message queue
	EventQueueCap int   // words per event queue (0 = unbounded)
	SendCredits   int   // return-to-sender buffer slots (Section 4.1)
	ResendDelay   int64 // cycles before a returned message is resent
}

// DefaultConfig returns the calibrated chip configuration.
func DefaultConfig() Config {
	return Config{
		Mem:           mem.DefaultConfig(),
		Net:           noc.DefaultConfig(),
		IntLat:        1,
		FPLat:         3,
		FDivLat:       8,
		XferLat:       2,
		GCCLat:        1,
		GTLBLat:       2,
		CSwitchPorts:  4,
		MsgQueueCap:   64,
		EventQueueCap: 0,
		SendCredits:   16,
		ResendDelay:   20,
	}
}

// Queue indices for the per-cluster hardware queues. The paper dedicates
// the event V-Thread's H-Threads by cluster (Section 3.3): cluster 0 runs
// memory synchronization and block status faults, cluster 1 runs LTLB
// misses, clusters 2 and 3 run arriving messages at priorities 0 and 1.
const (
	FaultCluster   = 0
	LTLBCluster    = 1
	MsgPri0Cluster = 2
	MsgPri1Cluster = 3
)

type pendingReg struct {
	at      int64
	vthread int
	cl      int
	reg     isa.Reg
	w       isa.Word
}

type pendingGCC struct {
	at  int64
	idx int
	w   isa.Word
}

// reqMeta routes a memory response back to its destination.
type reqMeta struct {
	vthread int
	cl      int
	dst     isa.Reg // destination register for loads (local form)
	isRetry bool    // re-injected by MRETRY: route via regDesc instead
	regDesc uint64
	data    isa.Word // original store data, kept for event records
}

// memReq pairs an outstanding memory request token with its routing
// metadata. A short flat slice replaces the former map: the handful of
// in-flight requests make linear search cheaper than hashing, and the
// backing array is reused so the hot path never allocates.
type memReq struct {
	token uint64
	meta  reqMeta
}

// resend is a returned message buffered for re-injection after backoff.
type resend struct {
	msg *noc.Message
	at  int64
}

// Chip is one M-Machine node's processor.
type Chip struct {
	Cfg   Config    `snap:"derived,fixed at construction; decode validates against it"`
	Node  noc.Coord `snap:"derived,fixed at construction; decode validates against it"`
	Index int       `snap:"derived,fixed at construction"` // linearized node id

	Clusters [isa.NumClusters]*cluster.Cluster
	Mem      *mem.System
	Net      *noc.Network
	GTLB     *gtlb.GTLB

	// Hardware queues. evq[c] is cluster c's event queue; msgq[p] is the
	// priority-p message queue (readable as net on clusters 2/3). excq is
	// the synchronous exception queue.
	evq  [isa.NumClusters]*events.Queue
	msgq [noc.NumPriorities]*events.Queue
	excq *events.Queue

	// Scheduled writebacks, kept in insertion order and compacted in place;
	// pendRegNext/pendGCCNext cache the earliest due cycle so idle cycles
	// skip the scan entirely.
	pendingRegs []pendingReg
	pendingGCC  []pendingGCC
	pendRegNext int64 `snap:"derived,recomputed from decoded pendingRegs"`
	pendGCCNext int64 `snap:"derived,recomputed from decoded pendingGCC"`

	memReqs []memReq
	memSeq  uint64

	// SEND datapath state (Section 4.1, "Throttling").
	credits    int
	resends    []resend
	resendNext int64 `snap:"derived,recomputed from decoded resends"`

	// outbox buffers the messages this chip produced during the current
	// Step (SENDs, hardware acks, resends). The chip never injects into the
	// shared network directly: the machine drains outboxes in node-index
	// order after every chip has stepped, which reproduces the serial
	// engines' injection order exactly (a chip cannot observe another
	// chip's same-cycle injections) while keeping Chip.Step free of shared
	// state — the property the parallel engine shards on.
	outbox []*noc.Message

	// validDIPs restricts the dispatch instruction pointers user threads
	// may name in SEND ("restricting the set of user accessible DIPs
	// prevents a user handler from monopolizing the network input").
	validDIPs map[uint64]bool

	// directory is the software-managed sharer directory manipulated by
	// the privileged DIRLOG/DIRCNT handler operations (Section 4.3).
	directory map[uint64][]int

	// Console is the node's I/O-bus output device.
	Console *Console

	// Trace, if non-nil, receives simulation events for timeline
	// reconstruction (Figure 9).
	Trace func(cycle int64, node int, event, detail string) `snap:"derived,engine hook, reinstalled by the owner"`

	// BufferTrace redirects trace events into a per-chip buffer that the
	// machine flushes in node-index order after the chip phase (FlushTrace).
	// The parallel engine sets it so concurrently stepping chips still
	// produce the exact serial trace stream; the callback itself is shared
	// and must not be invoked from worker goroutines.
	BufferTrace bool         `snap:"derived,engine mode flag, set by the owner"`
	traceBuf    []traceEvent `snap:"derived,drained every cycle, empty at snapshot points"`

	Cycle int64

	// Event-engine state (see DESIGN.md, "The NextEvent contract"). wake is
	// the earliest cycle this chip can change state, computed at the end of
	// each Step; idleStalled and idleSendsBlocked record the per-cycle stat
	// side effects of an idle issue scan so SkipCycles can replay them
	// without stepping, keeping skipped runs bit-identical to the naive
	// per-cycle loop. onWake, if set, observes every external lowering of
	// the wake cycle (WakeAt, Touch, LoadProgram) — the parallel engine's
	// due-set hook (see DESIGN.md, "Active-set scheduling"). It fires only
	// from the machine's serial phases, never from inside Step.
	wake             int64              `snap:"derived,recomputed by the first Step after restore"`
	onWake           func(at int64)     `snap:"derived,engine hook, reinstalled by the owner"`
	idleStalled      []*cluster.HThread `snap:"derived,per-cycle idle-scan replay cache, reset at adopt"`
	idleSendsBlocked uint64             `snap:"derived,per-cycle idle-scan replay cache, reset at adopt"`

	// msgScratch assembles arriving message words before they are copied
	// into a hardware queue (reused across messages).
	msgScratch []isa.Word `snap:"derived,scratch, fully rewritten per message"`

	// Stats.
	InstsIssued  uint64
	OpsIssued    uint64
	SendsBlocked uint64
	MsgsReturned uint64
	cswitchUsed  int `snap:"derived,per-cycle budget, reset every cycle"` // per-cycle C-Switch port budget consumed
}

// New creates a chip at the given mesh coordinate. net and gdt are shared
// across the machine's nodes.
func New(cfg Config, node noc.Coord, index int, net *noc.Network, gdt *gtlb.Table) *Chip {
	c := &Chip{
		Cfg:         cfg,
		Node:        node,
		Index:       index,
		Mem:         mem.NewSystem(cfg.Mem),
		Net:         net,
		GTLB:        gtlb.New(gdt, 16),
		excq:        events.NewQueue(cfg.EventQueueCap),
		credits:     cfg.SendCredits,
		validDIPs:   make(map[uint64]bool),
		directory:   make(map[uint64][]int),
		pendRegNext: NoEvent,
		pendGCCNext: NoEvent,
		resendNext:  NoEvent,
	}
	for i := range c.Clusters {
		c.Clusters[i] = cluster.New(i)
		c.evq[i] = events.NewQueue(cfg.EventQueueCap)
	}
	c.Console = &Console{}
	c.Mem.AttachDevice(c.ConsoleBase(), ConsoleWords, c.Console)
	// The priority-0 (request) queue is bounded, triggering the
	// return-to-sender protocol when full; the priority-1 (reply) queue is
	// effectively unbounded since replies are limited by outstanding
	// requests and must always drain to avoid deadlock.
	c.msgq[0] = events.NewQueue(cfg.MsgQueueCap)
	c.msgq[1] = events.NewQueue(0)
	return c
}

// LoadProgram installs a program on an H-Thread slot. Loading wakes the
// chip: a sleeping event engine must rescan for issuable instructions.
func (c *Chip) LoadProgram(vthread, cl int, p *isa.Program, privileged bool) {
	c.Clusters[cl].Threads[vthread].Load(p, privileged)
	c.Touch()
}

// Touch resets the chip's event-engine wake cycle. Callers that mutate
// architectural state from outside the simulation (register pokes, queue
// pushes in tests) must Touch the chip so a sleeping engine rescans it.
func (c *Chip) Touch() {
	c.wake = 0
	if c.onWake != nil {
		c.onWake(0)
	}
}

// SetWakeHook installs fn to observe every external lowering of the chip's
// wake cycle (WakeAt, Touch, LoadProgram). The parallel engine uses it to
// re-enter the chip into its shard's due-set; the hook must therefore never
// report a cycle later than the chip's true wake. All call sites run on the
// machine goroutine between chip phases, so fn needs no synchronization
// beyond the engine's own barriers. nil uninstalls.
func (c *Chip) SetWakeHook(fn func(at int64)) { c.onWake = fn }

// RegisterDIP marks a dispatch instruction pointer as legal for user SENDs.
func (c *Chip) RegisterDIP(dip uint64) { c.validDIPs[dip] = true }

// Thread returns the H-Thread context for a slot.
func (c *Chip) Thread(vthread, cl int) *cluster.HThread {
	return c.Clusters[cl].Threads[vthread]
}

// Credits returns the current send-credit count (throttling state).
func (c *Chip) Credits() int { return c.credits }

// EventQueue exposes cluster cl's event queue (for tests and stats).
func (c *Chip) EventQueue(cl int) *events.Queue { return c.evq[cl] }

// MsgQueue exposes the priority-p message queue.
func (c *Chip) MsgQueue(p int) *events.Queue { return c.msgq[p] }

// ExcQueue exposes the synchronous exception queue.
func (c *Chip) ExcQueue() *events.Queue { return c.excq }

// traceEvent is one buffered trace record (see BufferTrace).
type traceEvent struct {
	cycle         int64
	event, detail string
}

func (c *Chip) trace(event, detail string) {
	if c.Trace == nil {
		return
	}
	if c.BufferTrace {
		c.traceBuf = append(c.traceBuf, traceEvent{c.Cycle, event, detail})
		return
	}
	c.Trace(c.Cycle, c.Index, event, detail)
}

// FlushTrace delivers buffered trace events to the Trace callback in
// emission order. The machine calls it per chip, in node-index order, after
// the chip phase of each cycle; together with per-cycle flushing this keeps
// the observed stream identical to the serial engines'.
func (c *Chip) FlushTrace() {
	if len(c.traceBuf) == 0 {
		return
	}
	if c.Trace != nil {
		for i := range c.traceBuf {
			e := &c.traceBuf[i]
			c.Trace(e.cycle, c.Index, e.event, e.detail)
		}
	}
	c.traceBuf = c.traceBuf[:0]
}

// send buffers a message for injection into the network. The machine
// injects it (FlushNet) after the chip phase of the current cycle.
func (c *Chip) send(m *noc.Message) { c.outbox = append(c.outbox, m) }

// OutboxLen reports the number of produced-but-undrained outbox messages
// — normally zero between cycles, so a non-zero depth in a stall
// diagnostic points at an aborted chip phase (see guard.Diagnose).
func (c *Chip) OutboxLen() int { return len(c.outbox) }

// PendingResends reports the messages queued for return-to-sender retry,
// a common shape of apparent livelock (the destination keeps refusing).
func (c *Chip) PendingResends() int { return len(c.resends) }

// TakeOutbox appends this chip's buffered messages to dst in the order
// they were produced and clears the outbox — the distributed engine's
// variant of FlushNet: instead of injecting into the local network, the
// messages are shipped to the coordinator, whose authoritative network
// injects them in the same node-index drain order (and so assigns the
// same global sequence numbers) as an in-process run.
func (c *Chip) TakeOutbox(dst []*noc.Message) []*noc.Message {
	dst = append(dst, c.outbox...)
	for i := range c.outbox {
		c.outbox[i] = nil
	}
	c.outbox = c.outbox[:0]
	return dst
}

// FlushNet injects this chip's buffered messages into the shared network,
// in the order they were produced. now must be the cycle the messages were
// buffered on — injection timing (readyAt, sequence numbers) is then
// identical to the historical direct-inject path.
func (c *Chip) FlushNet(now int64) {
	for i, m := range c.outbox {
		c.Net.Inject(now, m)
		c.outbox[i] = nil
	}
	c.outbox = c.outbox[:0]
}

// Step advances the chip one cycle. now must equal the chip's Cycle.
func (c *Chip) Step(now int64) {
	if now != c.Cycle {
		panic(fmt.Sprintf("chip %d: Step(%d) at cycle %d", c.Index, now, c.Cycle))
	}
	c.cswitchUsed = 0

	// 1. Memory responses: writebacks become visible before issue, so a
	// 3-cycle load hit satisfies a dependent issue on cycle t+3.
	for _, resp := range c.Mem.Step(now) {
		c.memResponse(resp)
	}

	// 2. Pending register and GCC writebacks due this cycle.
	c.applyPending(now)

	// 3. Network input: accept arrivals into the hardware message queues,
	// generating the return-to-sender hardware replies (Section 4.1).
	c.networkInput(now)

	// 4. Resend returned messages whose backoff expired.
	c.resendReturned(now)

	// 5. Issue: one instruction per cluster per cycle. The scan records
	// which resident threads stalled and how many SEND evaluations were
	// throttle-blocked, so an idle chip's per-cycle stat side effects can
	// be replayed by SkipCycles without re-scanning.
	c.idleStalled = c.idleStalled[:0]
	sendsBlockedBase := c.SendsBlocked
	issued := false
	for cl := range c.Clusters {
		if c.issueCluster(now, cl) {
			issued = true
		}
	}

	c.Cycle++
	if issued {
		// Something issued: the same thread may issue again next cycle.
		c.wake = now + 1
		return
	}
	c.idleSendsBlocked = c.SendsBlocked - sendsBlockedBase
	// Nothing issued and every resident thread was scanned and found not
	// ready; only a timed event below (or an arrival, handled by the
	// machine) can change that.
	w := c.Mem.NextEvent(now + 1)
	if c.pendRegNext < w {
		w = c.pendRegNext
	}
	if c.pendGCCNext < w {
		w = c.pendGCCNext
	}
	if c.resendNext < w {
		w = c.resendNext
	}
	c.wake = w
}

// NextEvent reports the earliest cycle >= now at which the chip's state can
// change without external input: now if the chip is due to step, the cached
// wake cycle otherwise, NoEvent if the chip is fully idle.
func (c *Chip) NextEvent(now int64) int64 {
	if c.wake < now {
		return now
	}
	return c.wake
}

// WakeAt lowers the chip's wake cycle (the machine calls this when the
// network delivers a message addressed to this node).
func (c *Chip) WakeAt(at int64) {
	if at < c.wake {
		c.wake = at
		if c.onWake != nil {
			c.onWake(at)
		}
	}
}

// SkipCycles fast-forwards the chip over d externally-quiet cycles without
// stepping, replaying the per-cycle stat side effects the naive loop would
// have accrued (thread stall counts and throttle-blocked SEND evaluations,
// recorded by the last idle issue scan). The caller must guarantee the
// window is quiet: no instruction issued in the last Step and no event of
// this chip (or arrival for it) falls inside the window.
func (c *Chip) SkipCycles(d int64) {
	for _, th := range c.idleStalled {
		th.StallCycles += uint64(d)
	}
	c.SendsBlocked += uint64(d) * c.idleSendsBlocked
	c.Cycle += d
}

// applyPending delivers scheduled register writes and GCC broadcasts,
// compacting the pending lists in place (insertion order is preserved, and
// the steady state allocates nothing).
func (c *Chip) applyPending(now int64) {
	if now >= c.pendRegNext {
		rest := c.pendingRegs[:0]
		next := NoEvent
		for _, p := range c.pendingRegs {
			if p.at > now {
				rest = append(rest, p)
				if p.at < next {
					next = p.at
				}
				continue
			}
			th := c.Clusters[p.cl].Threads[p.vthread]
			switch p.reg.Class {
			case isa.RInt, isa.RFP:
				th.File(p.reg.Class).Set(int(p.reg.Index), p.w)
			case isa.RGCC:
				c.Clusters[p.cl].GCC.Set(int(p.reg.Index), p.w)
			}
		}
		c.pendingRegs = rest
		c.pendRegNext = next
	}

	if now >= c.pendGCCNext {
		rest := c.pendingGCC[:0]
		next := NoEvent
		for _, g := range c.pendingGCC {
			if g.at > now {
				rest = append(rest, g)
				if g.at < next {
					next = g.at
				}
				continue
			}
			for cl := range c.Clusters {
				c.Clusters[cl].GCC.Set(g.idx, g.w)
			}
		}
		c.pendingGCC = rest
		c.pendGCCNext = next
	}
}

// schedule queues a register writeback.
func (c *Chip) schedule(at int64, vthread, cl int, reg isa.Reg, w isa.Word) {
	c.pendingRegs = append(c.pendingRegs, pendingReg{at, vthread, cl, reg, w})
	if at < c.pendRegNext {
		c.pendRegNext = at
	}
}

// scheduleGCC queues a global CC broadcast to every cluster's replica.
func (c *Chip) scheduleGCC(at int64, idx int, w isa.Word) {
	c.pendingGCC = append(c.pendingGCC, pendingGCC{at, idx, w})
	if at < c.pendGCCNext {
		c.pendGCCNext = at
	}
}

// takeMeta removes and returns the routing metadata for a request token.
func (c *Chip) takeMeta(token uint64) (reqMeta, bool) {
	for i := range c.memReqs {
		if c.memReqs[i].token == token {
			meta := c.memReqs[i].meta
			c.memReqs = append(c.memReqs[:i], c.memReqs[i+1:]...)
			return meta, true
		}
	}
	return reqMeta{}, false
}

// memResponse routes a completed memory request: load writebacks, store
// completions, or fault events.
func (c *Chip) memResponse(resp mem.Response) {
	meta, ok := c.takeMeta(resp.Req.Token)
	if !ok {
		panic(fmt.Sprintf("chip %d: orphan memory response %+v", c.Index, resp))
	}

	if resp.Fault != mem.FaultNone {
		c.memFault(resp, meta)
		return
	}
	c.trace("mem-complete", fmt.Sprintf("%s addr=%#x", resp.Req.Kind, resp.Req.Addr))
	if !resp.Req.Kind.IsWrite() {
		w := isa.Word{Bits: resp.Data, Ptr: resp.DataPtr}
		if meta.isRetry {
			vt, cl, reg := isa.UnpackRegDesc(meta.regDesc)
			c.Clusters[cl].Threads[vt].File(reg.Class).Set(int(reg.Index), w)
			c.trace("retry-complete", fmt.Sprintf("addr=%#x", resp.Req.Addr))
		} else {
			th := c.Clusters[meta.cl].Threads[meta.vthread]
			th.File(meta.dst.Class).Set(int(meta.dst.Index), w)
		}
	}
}

// memFault converts a faulting memory response into an asynchronous event
// record on the appropriate cluster's queue (Section 3.3).
func (c *Chip) memFault(resp mem.Response, meta reqMeta) {
	rec := events.Record{
		Kind:  resp.Req.Kind,
		Pre:   resp.Req.Pre,
		Post:  resp.Req.Post,
		VAddr: resp.Req.Addr,
		Data:  isa.Word{Bits: resp.Req.Data, Ptr: resp.Req.DataPtr},
	}
	if meta.isRetry {
		rec.RegDesc = meta.regDesc
	} else {
		rec.RegDesc = isa.RegDesc(meta.vthread, meta.cl, meta.dst)
	}
	var q *events.Queue
	switch resp.Fault {
	case mem.FaultLTLBMiss:
		rec.Type = events.LTLBMiss
		q = c.evq[LTLBCluster]
	case mem.FaultStatus:
		rec.Type = events.BlockStatus
		q = c.evq[FaultCluster]
	case mem.FaultSync:
		rec.Type = events.SyncFault
		q = c.evq[FaultCluster]
	default:
		panic("chip: unknown fault")
	}
	c.trace("event", rec.String())
	q.Push(rec)
}

// submitMem registers metadata and hands a request to the memory system.
func (c *Chip) submitMem(now int64, req mem.Request, meta reqMeta) {
	c.memSeq++
	req.Token = c.memSeq
	c.memReqs = append(c.memReqs, memReq{token: req.Token, meta: meta})
	c.Mem.Submit(now, req)
}

// Quiescent reports whether the chip has no outstanding work besides
// whatever threads are loaded: no in-flight memory ops, pending writebacks,
// queued events or messages, or buffered resends.
func (c *Chip) Quiescent() bool {
	if c.Mem.Pending() > 0 || len(c.pendingRegs) > 0 || len(c.pendingGCC) > 0 ||
		len(c.resends) > 0 || len(c.outbox) > 0 || !c.excq.Empty() {
		return false
	}
	for _, q := range c.evq {
		if !q.Empty() {
			return false
		}
	}
	for _, q := range c.msgq {
		if !q.Empty() {
			return false
		}
	}
	return true
}
