package chip

// Checkpoint support (DESIGN.md, "Checkpoint/restore") for one MAP node:
// cluster register files and thread contexts, the hardware event and
// message queues, scheduled writebacks, outstanding memory requests and
// their routing metadata, the SEND datapath's credits and resend buffer,
// the registered DIPs, the sharer directory, the console output, the GTLB
// cache, and the whole memory system.
//
// Deliberately NOT serialized, because each is re-derived or invisible
// across the snapshot boundary: the event-engine wake cache and the idle
// replay state (the machine re-touches every chip on restore, and an
// early wake is always observably identical — see "The NextEvent
// contract"), the per-cycle C-Switch budget (reset at every Step), the
// message scratch buffer, and the trace buffer (always drained between
// cycles, which is the only point a snapshot can be taken).

import (
	"fmt"
	"maps"
	"slices"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/snap"
)

// Decode bounds against corrupt counts.
const (
	maxPending = 1 << 20
	maxMapLen  = 1 << 20
	maxConsole = 1 << 26
)

func encodeReg(w *snap.Writer, r isa.Reg) {
	w.U64(uint64(r.Class))
	w.U64(uint64(r.Index))
	w.I64(int64(r.Cluster))
}

func decodeReg(r *snap.Reader) isa.Reg {
	g := isa.Reg{
		Class:   isa.RegClass(r.U64()),
		Index:   uint8(r.U64()),
		Cluster: int8(r.I64()),
	}
	if r.Err() == nil {
		bad := g.Class > isa.RSpec ||
			(g.Cluster != isa.ClusterSelf && (g.Cluster < 0 || g.Cluster >= isa.NumClusters))
		switch g.Class {
		case isa.RInt:
			bad = bad || int(g.Index) >= isa.NumIntRegs
		case isa.RFP:
			bad = bad || int(g.Index) >= isa.NumFPRegs
		case isa.RGCC:
			bad = bad || int(g.Index) >= isa.NumGCCRegs
		}
		if bad {
			r.Fail(fmt.Errorf("chip: bad snapshot register %d/%d/%d", g.Class, g.Index, g.Cluster))
		}
	}
	return g
}

func checkSlot(r *snap.Reader, vthread, cl int) {
	if r.Err() == nil && (vthread < 0 || vthread >= isa.NumVThreads || cl < 0 || cl >= isa.NumClusters) {
		r.Fail(fmt.Errorf("chip: bad snapshot thread slot v%d c%d", vthread, cl))
	}
}

// EncodeState writes the chip's complete cross-cycle state.
func (c *Chip) EncodeState(w *snap.Writer) {
	w.I64(c.Cycle)
	w.U64(c.InstsIssued)
	w.U64(c.OpsIssued)
	w.U64(c.SendsBlocked)
	w.U64(c.MsgsReturned)
	w.Int(c.credits)
	w.U64(c.memSeq)

	for _, cc := range c.Clusters {
		cc.EncodeState(w)
	}
	c.excq.EncodeState(w)
	for _, q := range c.evq {
		q.EncodeState(w)
	}
	for _, q := range c.msgq {
		q.EncodeState(w)
	}

	w.Len(len(c.pendingRegs))
	for i := range c.pendingRegs {
		p := &c.pendingRegs[i]
		w.I64(p.at)
		w.Int(p.vthread)
		w.Int(p.cl)
		encodeReg(w, p.reg)
		w.U64(p.w.Bits)
		w.Bool(p.w.Ptr)
	}
	w.Len(len(c.pendingGCC))
	for i := range c.pendingGCC {
		g := &c.pendingGCC[i]
		w.I64(g.at)
		w.Int(g.idx)
		w.U64(g.w.Bits)
		w.Bool(g.w.Ptr)
	}

	w.Len(len(c.memReqs))
	for i := range c.memReqs {
		q := &c.memReqs[i]
		w.U64(q.token)
		w.Int(q.meta.vthread)
		w.Int(q.meta.cl)
		encodeReg(w, q.meta.dst)
		w.Bool(q.meta.isRetry)
		w.U64(q.meta.regDesc)
		w.U64(q.meta.data.Bits)
		w.Bool(q.meta.data.Ptr)
	}

	w.Len(len(c.resends))
	for i := range c.resends {
		w.I64(c.resends[i].at)
		c.Net.EncodeMessage(w, c.resends[i].msg)
	}
	w.Len(len(c.outbox))
	for _, m := range c.outbox {
		c.Net.EncodeMessage(w, m)
	}

	dips := make([]uint64, 0, len(c.validDIPs))
	for d := range c.validDIPs {
		dips = append(dips, d)
	}
	slices.Sort(dips)
	w.U64s(dips)

	blocks := make([]uint64, 0, len(c.directory))
	for b := range c.directory {
		blocks = append(blocks, b)
	}
	slices.Sort(blocks)
	w.Len(len(blocks))
	for _, b := range blocks {
		w.U64(b)
		sharers := c.directory[b]
		w.Len(len(sharers))
		for _, s := range sharers {
			w.Int(s)
		}
	}

	c.Console.mu.Lock()
	w.Bytes(c.Console.buf)
	c.Console.mu.Unlock()

	c.GTLB.EncodeState(w)
	c.Mem.EncodeState(w)
}

// DecodeChipState reads a chip written by EncodeState into a detached
// scratch chip. net is only consulted for shape validation and message
// decoding; the scratch chip is never stepped, so it is assembled
// directly from the decoded parts instead of going through New (whose
// memory system and cache the decode would immediately replace).
func DecodeChipState(r *snap.Reader, cfg Config, node noc.Coord, index int, net *noc.Network) *Chip {
	c := &Chip{
		Cfg:         cfg,
		Node:        node,
		Index:       index,
		Net:         net,
		Console:     &Console{},
		validDIPs:   make(map[uint64]bool),
		directory:   make(map[uint64][]int),
		pendRegNext: NoEvent,
		pendGCCNext: NoEvent,
		resendNext:  NoEvent,
	}
	c.Cycle = r.I64()
	c.InstsIssued = r.U64()
	c.OpsIssued = r.U64()
	c.SendsBlocked = r.U64()
	c.MsgsReturned = r.U64()
	c.credits = r.Int()
	c.memSeq = r.U64()

	for i := range c.Clusters {
		c.Clusters[i] = cluster.DecodeClusterState(r, i)
	}
	c.excq = events.DecodeQueueState(r)
	for i := range c.evq {
		c.evq[i] = events.DecodeQueueState(r)
	}
	for i := range c.msgq {
		c.msgq[i] = events.DecodeQueueState(r)
	}

	np := r.Len(maxPending)
	for i := 0; i < np; i++ {
		p := pendingReg{at: r.I64(), vthread: r.Int(), cl: r.Int(), reg: decodeReg(r)}
		p.w = isa.Word{Bits: r.U64(), Ptr: r.Bool()}
		checkSlot(r, p.vthread, p.cl)
		c.pendingRegs = append(c.pendingRegs, p)
		if p.at < c.pendRegNext {
			c.pendRegNext = p.at
		}
	}
	ng := r.Len(maxPending)
	for i := 0; i < ng; i++ {
		g := pendingGCC{at: r.I64(), idx: r.Int()}
		g.w = isa.Word{Bits: r.U64(), Ptr: r.Bool()}
		if r.Err() == nil && (g.idx < 0 || g.idx >= isa.NumGCCRegs) {
			r.Fail(fmt.Errorf("chip: bad snapshot GCC index %d", g.idx))
		}
		c.pendingGCC = append(c.pendingGCC, g)
		if g.at < c.pendGCCNext {
			c.pendGCCNext = g.at
		}
	}

	nm := r.Len(maxPending)
	for i := 0; i < nm; i++ {
		q := memReq{token: r.U64()}
		q.meta.vthread = r.Int()
		q.meta.cl = r.Int()
		q.meta.dst = decodeReg(r)
		q.meta.isRetry = r.Bool()
		q.meta.regDesc = r.U64()
		q.meta.data = isa.Word{Bits: r.U64(), Ptr: r.Bool()}
		checkSlot(r, q.meta.vthread, q.meta.cl)
		if r.Err() == nil {
			// memResponse routes completions through this metadata without
			// further checks, so reject anything it could not route: a
			// retry descriptor must unpack to a real Int/FP register slot
			// or no register at all (a store retry carries the RNone
			// descriptor its faulting store packed — completion never
			// dereferences it; UnpackRegDesc masks wider than the
			// machine's limits), and a direct destination must likewise be
			// a register-file class or empty.
			if q.meta.isRetry {
				vt, cl, reg := isa.UnpackRegDesc(q.meta.regDesc)
				if vt >= isa.NumVThreads || cl >= isa.NumClusters ||
					(reg.Class != isa.RNone && reg.Class != isa.RInt && reg.Class != isa.RFP) ||
					int(reg.Index) >= isa.NumIntRegs {
					r.Fail(fmt.Errorf("chip: snapshot retry descriptor %#x names no register", q.meta.regDesc))
				}
			} else if cls := q.meta.dst.Class; cls != isa.RNone && cls != isa.RInt && cls != isa.RFP {
				r.Fail(fmt.Errorf("chip: snapshot memory request destination class %d", cls))
			}
		}
		c.memReqs = append(c.memReqs, q)
	}

	nr := r.Len(maxPending)
	for i := 0; i < nr; i++ {
		rs := resend{at: r.I64()}
		rs.msg = net.DecodeMessage(r)
		c.resends = append(c.resends, rs)
		if rs.at < c.resendNext {
			c.resendNext = rs.at
		}
	}
	no := r.Len(maxPending)
	for i := 0; i < no; i++ {
		c.outbox = append(c.outbox, net.DecodeMessage(r))
	}

	for _, d := range r.U64s(maxMapLen) {
		c.validDIPs[d] = true
	}
	nb := r.Len(maxMapLen)
	for i := 0; i < nb; i++ {
		b := r.U64()
		ns := r.Len(maxMapLen)
		sharers := make([]int, 0, ns)
		for j := 0; j < ns; j++ {
			sharers = append(sharers, r.Int())
		}
		if r.Err() != nil {
			break
		}
		c.directory[b] = sharers
	}

	c.Console.buf = r.Bytes(maxConsole)

	c.GTLB = gtlb.DecodeGTLBState(r, 16)
	c.Mem = mem.DecodeSystemState(r, cfg.Mem)
	if r.Err() == nil {
		// Cross-check the decoded memory system against the routing
		// metadata: every in-flight response must have a request entry
		// (memResponse panics on orphans), and a successful read must name
		// a register destination (its writeback goes through File, which
		// only serves Int/FP).
		for _, resp := range c.Mem.PendingResponses() {
			var meta *reqMeta
			for j := range c.memReqs {
				if c.memReqs[j].token == resp.Req.Token {
					meta = &c.memReqs[j].meta
					break
				}
			}
			if meta == nil {
				r.Fail(fmt.Errorf("chip: snapshot response token %d has no request metadata", resp.Req.Token))
				break
			}
			if resp.Fault == mem.FaultNone && !resp.Req.Kind.IsWrite() && !meta.isRetry &&
				meta.dst.Class != isa.RInt && meta.dst.Class != isa.RFP {
				r.Fail(fmt.Errorf("chip: snapshot read response token %d routes to no register", resp.Req.Token))
				break
			}
		}
	}
	return c
}

// Adopt commits src's state into c in place, preserving c's identity and
// environment: node coordinate, network and GDT bindings, trace callback
// and buffering mode, and the engine wake hook. The caller must Touch the
// chip afterwards (the machine's restore does) so a sleeping engine
// re-derives the wake cycle from the adopted state.
func (c *Chip) Adopt(src *Chip) {
	c.Cycle = src.Cycle
	c.InstsIssued = src.InstsIssued
	c.OpsIssued = src.OpsIssued
	c.SendsBlocked = src.SendsBlocked
	c.MsgsReturned = src.MsgsReturned
	c.credits = src.credits
	c.memSeq = src.memSeq

	for i := range c.Clusters {
		c.Clusters[i].Adopt(src.Clusters[i])
	}
	c.excq.Adopt(src.excq)
	for i := range c.evq {
		c.evq[i].Adopt(src.evq[i])
	}
	for i := range c.msgq {
		c.msgq[i].Adopt(src.msgq[i])
	}

	c.pendingRegs = append(c.pendingRegs[:0], src.pendingRegs...)
	c.pendingGCC = append(c.pendingGCC[:0], src.pendingGCC...)
	c.pendRegNext = src.pendRegNext
	c.pendGCCNext = src.pendGCCNext
	c.memReqs = append(c.memReqs[:0], src.memReqs...)
	c.resends = append(c.resends[:0], src.resends...)
	c.resendNext = src.resendNext
	c.outbox = append(c.outbox[:0], src.outbox...)

	clear(c.validDIPs)
	maps.Copy(c.validDIPs, src.validDIPs)
	clear(c.directory)
	maps.Copy(c.directory, src.directory)

	c.Console.mu.Lock()
	c.Console.buf = append(c.Console.buf[:0], src.Console.buf...)
	c.Console.mu.Unlock()

	c.GTLB.Adopt(src.GTLB)
	c.Mem.Adopt(src.Mem)

	// Idle replay state is re-derived by the first post-restore issue scan
	// (the machine touches every chip, so that scan happens before any
	// SkipCycles could consult it).
	c.idleStalled = c.idleStalled[:0]
	c.idleSendsBlocked = 0
	c.traceBuf = c.traceBuf[:0]
}
