package chip_test

import (
	"testing"

	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/gp"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Helpers for two-node chip-level tests without the machine wrapper.
func defaultTwoNodeCfg(t *testing.T) chip.Config {
	t.Helper()
	return chip.DefaultConfig()
}

func twoNodeNetGdt(t *testing.T, cfg chip.Config) (*noc.Network, *gtlb.Table) {
	t.Helper()
	net := noc.New(noc.Coord{X: 2, Y: 1, Z: 1}, cfg.Net)
	gdt := &gtlb.Table{}
	if err := gdt.Add(gtlb.Entry{
		VirtPage: 0, GroupPages: 8,
		Start: gtlb.NodeID{X: 1}, PagesPerNode: 8,
	}); err != nil {
		t.Fatal(err)
	}
	return net, gdt
}

func chipNew(cfg chip.Config, idx int, net *noc.Network, gdt *gtlb.Table) *chip.Chip {
	return chip.New(cfg, net.CoordOf(idx), idx, net, gdt)
}

func TestBSWAndBSR(t *testing.T) {
	c := newChip(t)
	c.Mem.MapPage(0, 0, mem.BSReadWrite)
	load(t, c, 0, 0, `
    movi i1, #16            ; block 2
    bsr i2, [i1]            ; initial status
    movi i3, #1             ; READ-ONLY
    bsw i1, i3
    bsr i4, [i1]
    movi i3, #0             ; INVALID
    bsw i1, i3
    bsr i5, [i1]
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 200)
	if ireg(c, 0, 0, 2) != uint64(mem.BSReadWrite) {
		t.Errorf("initial status = %d, want READ/WRITE", ireg(c, 0, 0, 2))
	}
	if ireg(c, 0, 0, 4) != uint64(mem.BSReadOnly) {
		t.Errorf("after bsw = %d, want READ-ONLY", ireg(c, 0, 0, 4))
	}
	if ireg(c, 0, 0, 5) != uint64(mem.BSInvalid) {
		t.Errorf("after second bsw = %d, want INVALID", ireg(c, 0, 0, 5))
	}
}

func TestTLBWAndTLBINV(t *testing.T) {
	c := newChip(t)
	// Build a PTE for vpn 3 -> ppn 5 in registers i8..i11 and install it.
	e := mem.PTE{VPN: 3, PPN: 5, Valid: true}
	e.SetAllBlocks(mem.BSReadWrite)
	w := e.Encode()
	load(t, c, 0, 0, `
    tlbw i8
    halt
`, true)
	th := c.Thread(0, 0)
	for i, word := range w {
		th.Ints.Set(8+i, isa.W(word))
	}
	stepUntilHalt(t, c, 0, 0, 100)
	if pa, ok := c.Mem.Translate(3*mem.PageWords + 7); !ok || pa != 5*mem.PageWords+7 {
		t.Errorf("translate after tlbw = %#x, %v", pa, ok)
	}
	// Invalidate: the entry leaves the LTLB (its status bits are written
	// back to the LPT, so the mapping itself survives — an eviction, not
	// a destruction).
	load(t, c, 1, 0, `
    movi i1, #3
    tlbinv i1
    halt
`, true)
	stepUntilHalt(t, c, 1, 0, 100)
	if c.Mem.LTLB.Lookup(3) != nil {
		t.Error("entry still resident in the LTLB after tlbinv")
	}
	if _, ok := c.Mem.Translate(3 * mem.PageWords); !ok {
		t.Error("LPT copy lost by tlbinv writeback")
	}
}

func TestGProbeUnmappedReturnsAllOnes(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #0
    gprobe i2, i1           ; mapped: node 0
    movi i3, #1000000000
    gprobe i4, i3           ; unmapped
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 100)
	if ireg(c, 0, 0, 2) != 0 {
		t.Errorf("gprobe mapped = %d, want 0", ireg(c, 0, 0, 2))
	}
	if ireg(c, 0, 0, 4) != ^uint64(0) {
		t.Errorf("gprobe unmapped = %#x, want all ones", ireg(c, 0, 0, 4))
	}
}

func TestSendnBadNodeFaults(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #99            ; node 99 does not exist
    movi i2, #0
    movi i8, #1
    sendn i1, i2, i8, #1
    halt
`, true)
	for i := 0; i < 50; i++ {
		c.Step(c.Cycle)
	}
	if c.Thread(0, 0).Status != cluster.ThreadFaulted {
		t.Error("sendn to nonexistent node should fault")
	}
}

func TestSetptrProducesWorkingPointer(t *testing.T) {
	c := newChip(t)
	c.Mem.MapPage(0, 0, mem.BSReadWrite)
	c.Mem.SDRAM.Write(32, 555, false)
	load(t, c, 0, 0, `
    movi i1, #32
    setptr i2, i1, #0x53    ; rw, segLen 5 (32-word segment at [32,64))
    lea i3, i2, #1
    ld i4, [i2]
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 200)
	p := gp.Pointer(c.Thread(0, 0).Ints.Get(2).Bits)
	if !c.Thread(0, 0).Ints.Get(2).Ptr {
		t.Fatal("setptr result not tagged")
	}
	if p.Addr() != 32 || p.SegLen() != 5 || p.Perms() != gp.PermRW {
		t.Errorf("pointer = %v", p)
	}
	q := gp.Pointer(c.Thread(0, 0).Ints.Get(3).Bits)
	if q.Addr() != 33 || !c.Thread(0, 0).Ints.Get(3).Ptr {
		t.Errorf("lea result = %v", q)
	}
	if ireg(c, 0, 0, 4) != 555 {
		t.Errorf("load through pointer = %d", ireg(c, 0, 0, 4))
	}
}

func TestUserSendUntaggedAddressFaults(t *testing.T) {
	c := newChip(t)
	c.RegisterDIP(5)
	load(t, c, 0, 0, `
    movi i1, #100
    movi i2, #5
    movi i8, #1
    send i1, i2, i8, #1     ; raw address from user mode
    halt
`, false)
	for i := 0; i < 50; i++ {
		c.Step(c.Cycle)
	}
	th := c.Thread(0, 0)
	if th.Status != cluster.ThreadFaulted {
		t.Fatalf("status = %v, want faulted", th.Status)
	}
}

func TestMessageRejectGeneratesReturn(t *testing.T) {
	cfg := defaultTwoNodeCfg(t)
	cfg.MsgQueueCap = 3 // exactly one 3-word message
	net, gdt := twoNodeNetGdt(t, cfg)
	c0 := chipNew(cfg, 0, net, gdt)
	c1 := chipNew(cfg, 1, net, gdt)
	// Two back-to-back sends: the second arrival finds the queue full (no
	// handler drains it) and must be returned and buffered at the sender.
	load(t, c0, 0, 0, `
    movi i1, #100
    movi i2, #5
    movi i8, #42
    send i1, i2, i8, #1
    send i1, i2, i8, #1
    halt
`, true)
	for i := 0; i < 40; i++ {
		now := c0.Cycle
		c0.Step(now)
		c1.Step(now)
		c0.FlushNet(now)
		c1.FlushNet(now)
		net.Step(now)
	}
	if c0.MsgsReturned == 0 {
		t.Error("second message should have been returned")
	}
	// After the resend delay, the second message cannot be accepted until
	// the queue drains; it keeps cycling without being lost.
	if c0.Credits() == cfg.SendCredits {
		t.Error("returned message should still hold its credit")
	}
}
