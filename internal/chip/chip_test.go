package chip_test

import (
	"math"
	"testing"

	"repro/internal/asm"
	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// newChip builds a single standalone chip on a 2x1x1 mesh with a GDT
// mapping the first pages to node 0.
func newChip(t *testing.T) *chip.Chip {
	t.Helper()
	cfg := chip.DefaultConfig()
	net := noc.New(noc.Coord{X: 2, Y: 1, Z: 1}, cfg.Net)
	gdt := &gtlb.Table{}
	if err := gdt.Add(gtlb.Entry{
		VirtPage: 0, GroupPages: 8, Start: gtlb.NodeID{}, PagesPerNode: 8,
	}); err != nil {
		t.Fatal(err)
	}
	return chip.New(cfg, noc.Coord{}, 0, net, gdt)
}

func load(t *testing.T, c *chip.Chip, vt, cl int, src string, priv bool) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadProgram(vt, cl, p, priv)
}

func stepUntilHalt(t *testing.T, c *chip.Chip, vt, cl int, max int64) {
	t.Helper()
	for i := int64(0); i < max; i++ {
		if c.Thread(vt, cl).Status == cluster.ThreadHalted {
			// Drain pending writebacks.
			for j := 0; j < 16; j++ {
				c.Step(c.Cycle)
			}
			return
		}
		c.Step(c.Cycle)
	}
	th := c.Thread(vt, cl)
	t.Fatalf("thread (%d,%d) did not halt: status=%v pc=%d fault=%q",
		vt, cl, th.Status, th.PC, th.FaultMsg)
}

func ireg(c *chip.Chip, vt, cl, i int) uint64 { return c.Thread(vt, cl).Ints.Get(i).Bits }

func TestIntegerALUSemantics(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #-12
    movi i2, #5
    add  i3, i1, i2
    sub  i4, i1, i2
    mul  i5, i1, i2
    div  i6, i1, i2
    mod  i7, i1, i2
    and  i8, i1, i2
    xor  i9, i1, i2
    shl  i10, i2, #3
    sra  i11, i1, #2
    shr  i12, i2, #1
    lt   i13, i1, i2
    ge   i14, i1, i2
    ne   i15, i1, i2
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 200)
	var m12 = uint64(0xFFFFFFFFFFFFFFF4) // -12 two's complement
	want := map[int]int64{
		3: -7, 4: -17, 5: -60, 6: -2, 7: -2,
		8: int64(m12 & 5), 9: int64(m12 ^ 5),
		10: 40, 11: -3, 12: 2, 13: 1, 14: 0, 15: 1,
	}
	for reg, w := range want {
		if got := int64(ireg(c, 0, 0, reg)); got != w {
			t.Errorf("i%d = %d, want %d", reg, got, w)
		}
	}
}

func TestFPSemantics(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #3
    movi i2, #4
    itof f1, i1
    itof f2, i2
    fadd f3, f1, f2
    fsub f4, f1, f2
    fmul f5, f1, f2
    fdiv f6, f2, f1
    fneg f7, f1
    flt  i3, f1, f2
    fle  i4, f2, f1
    feq  i5, f1, f1
    ftoi i6, f5
    fmov f8, f5
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 200)
	f := func(i int) float64 { return math.Float64frombits(c.Thread(0, 0).FPs.Get(i).Bits) }
	if f(3) != 7 || f(4) != -1 || f(5) != 12 || f(7) != -3 {
		t.Errorf("fp: f3=%v f4=%v f5=%v f7=%v", f(3), f(4), f(5), f(7))
	}
	if math.Abs(f(6)-4.0/3.0) > 1e-12 {
		t.Errorf("fdiv = %v", f(6))
	}
	if ireg(c, 0, 0, 3) != 1 || ireg(c, 0, 0, 4) != 0 || ireg(c, 0, 0, 5) != 1 {
		t.Error("fp compares wrong")
	}
	if ireg(c, 0, 0, 6) != 12 {
		t.Errorf("ftoi = %d", ireg(c, 0, 0, 6))
	}
	if f(8) != 12 {
		t.Errorf("fmov = %v", f(8))
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, "movi i1, #1\nmovi i2, #0\ndiv i3, i1, i2\nhalt", true)
	for i := 0; i < 50; i++ {
		c.Step(c.Cycle)
	}
	if c.Thread(0, 0).Status != cluster.ThreadFaulted {
		t.Error("divide by zero should fault the thread")
	}
	if c.ExcQueue().Empty() {
		t.Error("exception record missing")
	}
}

func TestFPLatencyLongerThanInt(t *testing.T) {
	c := newChip(t)
	// Dependent chains: int chain completes back-to-back; FP chain pays
	// FPLat per link.
	load(t, c, 0, 0, `
    movi i1, #1
    itof f1, i1
    mov  i8, cyc
    fadd f2, f1, f1
    fadd f3, f2, f2
    mov  i9, cyc
    add  i2, i1, i1
    add  i3, i2, i2
    mov  i10, cyc
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 200)
	fpChain := int64(ireg(c, 0, 0, 9) - ireg(c, 0, 0, 8))
	intChain := int64(ireg(c, 0, 0, 10) - ireg(c, 0, 0, 9))
	if fpChain <= intChain {
		t.Errorf("fp chain (%d cycles) not slower than int chain (%d)", fpChain, intChain)
	}
}

func TestPerClusterIssueIsOnePerCycle(t *testing.T) {
	c := newChip(t)
	// A straight-line 3-wide program: N instructions take ~N cycles.
	load(t, c, 0, 0, `
    movi i1, #1 | movi f1, #0
    add i2, i1, i1 | movi i3, #7
    add i4, i2, i2 | movi i5, #9
    halt
`, true)
	start := c.Cycle
	stepUntilHalt(t, c, 0, 0, 100)
	_ = start
	if got := c.Thread(0, 0).Issued; got != 4 {
		t.Errorf("issued %d instructions, want 4", got)
	}
	if got := c.Thread(0, 0).OpsIssued; got != 7 {
		t.Errorf("issued %d ops, want 7", got)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	c := newChip(t)
	src := `
    movi i1, #0
loop:
    add i1, i1, #1
    br loop
`
	load(t, c, 0, 0, src, true)
	load(t, c, 1, 0, src, true)
	load(t, c, 2, 0, src, true)
	for i := 0; i < 300; i++ {
		c.Step(c.Cycle)
	}
	a, b, d := c.Thread(0, 0).Issued, c.Thread(1, 0).Issued, c.Thread(2, 0).Issued
	if a == 0 || b == 0 || d == 0 {
		t.Fatalf("starvation: %d/%d/%d", a, b, d)
	}
	maxv, minv := a, a
	for _, v := range []uint64{b, d} {
		if v > maxv {
			maxv = v
		}
		if v < minv {
			minv = v
		}
	}
	if maxv-minv > 2 {
		t.Errorf("unfair interleaving: %d/%d/%d", a, b, d)
	}
}

func TestClustersIssueInParallel(t *testing.T) {
	c := newChip(t)
	src := `
    movi i1, #0
    movi i2, #50
loop:
    add i1, i1, #1
    lt  i3, i1, i2
    brt i3, loop
    halt
`
	for cl := 0; cl < isa.NumClusters; cl++ {
		load(t, c, 0, cl, src, true)
	}
	for i := 0; i < 400; i++ {
		c.Step(c.Cycle)
	}
	// All four clusters run the same program concurrently: total duration
	// must be ~the single-cluster duration, not 4x.
	for cl := 0; cl < isa.NumClusters; cl++ {
		if c.Thread(0, cl).Status != cluster.ThreadHalted {
			t.Errorf("cluster %d did not finish", cl)
		}
	}
}

func TestGCCBroadcastReachesAllClusters(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #1
    eq gcc2, i1, i1
    halt
`, true)
	waiter := `
    mov i5, gcc2
    halt
`
	for cl := 1; cl < isa.NumClusters; cl++ {
		load(t, c, 0, cl, waiter, true)
	}
	for i := 0; i < 100; i++ {
		c.Step(c.Cycle)
	}
	for cl := 1; cl < isa.NumClusters; cl++ {
		if ireg(c, 0, cl, 5) != 1 {
			t.Errorf("cluster %d gcc copy = %d, want 1", cl, ireg(c, 0, cl, 5))
		}
	}
}

func TestEmptyGCCIsLocalOnly(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #1
    eq gcc1, i1, i1
    empty gcc1
    halt
`, true)
	load(t, c, 0, 1, `
    mov i5, gcc1
    halt
`, true)
	for i := 0; i < 100; i++ {
		c.Step(c.Cycle)
	}
	// Cluster 1's replica must still be full (cluster 0 emptied only its
	// own copy), so the waiter completes.
	if c.Thread(0, 1).Status != cluster.ThreadHalted {
		t.Error("cluster 1 should have consumed its own gcc copy")
	}
	if ireg(c, 0, 1, 5) != 1 {
		t.Errorf("cluster 1 read %d", ireg(c, 0, 1, 5))
	}
}

func TestCSwitchPortBudget(t *testing.T) {
	cfg := chip.DefaultConfig()
	cfg.CSwitchPorts = 1
	net := noc.New(noc.Coord{X: 1, Y: 1, Z: 1}, cfg.Net)
	c := chip.New(cfg, noc.Coord{}, 0, net, &gtlb.Table{})
	// Two clusters transfer cross-cluster in the same cycle: with one
	// port, the second must wait a cycle — both still complete.
	src := `
    movi i1, #7
    mov @3.i5, i1
    halt
`
	load(t, c, 0, 0, src, true)
	load(t, c, 0, 1, "movi i1, #8\nmov @3.i6, i1\nhalt", true)
	for i := 0; i < 100; i++ {
		c.Step(c.Cycle)
	}
	if ireg(c, 0, 3, 5) != 7 || ireg(c, 0, 3, 6) != 8 {
		t.Errorf("transfers lost: i5=%d i6=%d", ireg(c, 0, 3, 5), ireg(c, 0, 3, 6))
	}
}

func TestUserNetReadIsProtected(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, "mov i1, net\nhalt", false)
	for i := 0; i < 50; i++ {
		c.Step(c.Cycle)
	}
	th := c.Thread(0, 0)
	// A user thread reading net has no queue mapped: it must never issue
	// (stall forever), not read message data.
	if th.Status != cluster.ThreadRunning || th.PC != 0 {
		t.Errorf("user net read: status=%v pc=%d", th.Status, th.PC)
	}
	if th.Issued != 0 {
		t.Error("user net read issued")
	}
}

func TestLoadMarksDestEmptyUntilFill(t *testing.T) {
	c := newChip(t)
	c.Mem.MapPage(0, 0, mem.BSReadWrite)
	c.Mem.SDRAM.Write(5, 99, false)
	load(t, c, 0, 0, `
    movi i1, #5
    ld i2, [i1]
    halt
`, true)
	// Step until the ld issues; immediately after, i2 must be empty.
	for i := 0; i < 3; i++ {
		c.Step(c.Cycle)
	}
	if c.Thread(0, 0).Ints.Full(2) {
		t.Error("load destination should be empty while in flight")
	}
	stepUntilHalt(t, c, 0, 0, 100)
	if ireg(c, 0, 0, 2) != 99 {
		t.Errorf("load result = %d", ireg(c, 0, 0, 2))
	}
}

func TestSendConsumesCreditAndAckRestores(t *testing.T) {
	cfg := chip.DefaultConfig()
	net := noc.New(noc.Coord{X: 2, Y: 1, Z: 1}, cfg.Net)
	gdt := &gtlb.Table{}
	if err := gdt.Add(gtlb.Entry{
		VirtPage: 0, GroupPages: 8,
		Start: gtlb.NodeID{X: 1}, PagesPerNode: 8,
	}); err != nil {
		t.Fatal(err)
	}
	c0 := chip.New(cfg, noc.Coord{}, 0, net, gdt)
	c1 := chip.New(cfg, noc.Coord{X: 1}, 1, net, gdt)
	load(t, c0, 0, 0, `
    movi i1, #100
    movi i2, #5
    movi i8, #42
    send i1, i2, i8, #1
    halt
`, true)
	credits0 := c0.Credits()
	for i := 0; i < 60; i++ {
		now := c0.Cycle
		c0.Step(now)
		c1.Step(now)
		c0.FlushNet(now)
		c1.FlushNet(now)
		net.Step(now)
	}
	if c1.MsgQueue(0).Empty() {
		t.Fatal("message never arrived")
	}
	if got := c1.MsgQueue(0).Pop().Bits; got != 5 {
		t.Errorf("first queue word = %d, want DIP 5", got)
	}
	if got := c1.MsgQueue(0).Pop().Bits; got != 100 {
		t.Errorf("second queue word = %d, want address 100", got)
	}
	if got := c1.MsgQueue(0).Pop().Bits; got != 42 {
		t.Errorf("body word = %d, want 42", got)
	}
	if c0.Credits() != credits0 {
		t.Errorf("credits = %d, want restored %d", c0.Credits(), credits0)
	}
}

func TestDirectoryOps(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #64
    movi i2, #3
    dirlog i1, i2
    movi i3, #5
    dirlog i1, i3
    dircnt i4, [i1]
    movi i5, #128
    dircnt i6, [i5]
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 100)
	if ireg(c, 0, 0, 4) != 2 {
		t.Errorf("dircnt = %d, want 2", ireg(c, 0, 0, 4))
	}
	if ireg(c, 0, 0, 6) != 0 {
		t.Errorf("dircnt empty = %d, want 0", ireg(c, 0, 0, 6))
	}
}

func TestJmprDispatch(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #3
    jmpr i1
    movi i2, #111        ; skipped
target:
    movi i2, #222
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 100)
	if ireg(c, 0, 0, 2) != 222 {
		t.Errorf("i2 = %d, want 222 (jmpr must skip)", ireg(c, 0, 0, 2))
	}
}

func TestBranchTakenAndNotTaken(t *testing.T) {
	c := newChip(t)
	load(t, c, 0, 0, `
    movi i1, #0
    brt i1, bad          ; not taken
    movi i2, #1
    brf i1, good         ; taken
bad:
    movi i3, #99
good:
    halt
`, true)
	stepUntilHalt(t, c, 0, 0, 100)
	if ireg(c, 0, 0, 2) != 1 || ireg(c, 0, 0, 3) != 0 {
		t.Errorf("i2=%d i3=%d", ireg(c, 0, 0, 2), ireg(c, 0, 0, 3))
	}
}

func TestNodeThrCycSpecials(t *testing.T) {
	c := newChip(t)
	load(t, c, 2, 1, `
    mov i1, node
    mov i2, thr
    mov i3, cyc
    mov i4, cyc
    halt
`, true)
	stepUntilHalt(t, c, 2, 1, 100)
	if ireg(c, 2, 1, 1) != 0 {
		t.Errorf("node = %d", ireg(c, 2, 1, 1))
	}
	if ireg(c, 2, 1, 2) != 2 {
		t.Errorf("thr = %d, want 2", ireg(c, 2, 1, 2))
	}
	if ireg(c, 2, 1, 4) != ireg(c, 2, 1, 3)+1 {
		t.Errorf("cyc not monotonic: %d then %d", ireg(c, 2, 1, 3), ireg(c, 2, 1, 4))
	}
}
