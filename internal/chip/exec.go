package chip

// Operation semantics. execute performs one operation at issue time:
// immediate effects (branches, queue pops, protection checks, memory
// submits) happen now; results are scheduled for writeback after the
// operation's latency, setting the destination's scoreboard bit when they
// arrive.

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/events"
	"repro/internal/gp"
	"repro/internal/isa"
	"repro/internal/mem"
)

// ptrAddr offsets a guarded pointer without a permission check (privileged
// threads), still enforcing segment bounds.
func ptrAddr(w isa.Word, off int64) (uint64, bool, error) {
	p, err := gp.Pointer(w.Bits).Add(off)
	if err != nil {
		return 0, false, err
	}
	return p.Addr(), false, nil
}

// ptrAddrChecked offsets and permission-checks a guarded pointer for a user
// access.
func ptrAddrChecked(w isa.Word, off int64, write bool) (uint64, bool, error) {
	p := gp.Pointer(w.Bits)
	if err := p.CheckAccess(write); err != nil {
		return 0, write, err
	}
	q, err := p.Add(off)
	if err != nil {
		return 0, write, err
	}
	return q.Addr(), write, nil
}

// execute runs one operation. It returns (newPC, true) when the operation
// redirects control flow.
func (c *Chip) execute(now int64, vt, cl int, th *cluster.HThread, op *isa.Op) (int, bool) {
	switch op.Code {
	case isa.NOP:
		return 0, false

	case isa.HALT:
		th.Status = cluster.ThreadHalted
		return 0, false

	case isa.BR:
		return int(op.Imm), true
	case isa.BRT:
		v := c.readSrc(vt, cl, th, op.Src1)
		if v.Bits != 0 {
			return int(op.Imm), true
		}
		return 0, false
	case isa.BRF:
		v := c.readSrc(vt, cl, th, op.Src1)
		if v.Bits == 0 {
			return int(op.Imm), true
		}
		return 0, false
	case isa.JMPR:
		v := c.readSrc(vt, cl, th, op.Src1)
		return int(v.Bits), true

	case isa.MOVI:
		c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.W(uint64(op.Imm)))
		return 0, false
	case isa.MOV:
		v := c.readSrc(vt, cl, th, op.Src1)
		c.writeDst(now, vt, cl, op, c.Cfg.IntLat, v)
		return 0, false

	case isa.EMPTY:
		switch op.Dst.Class {
		case isa.RGCC:
			c.Clusters[cl].GCC.MarkEmpty(int(op.Dst.Index))
		case isa.RInt, isa.RFP:
			th.File(op.Dst.Class).MarkEmpty(int(op.Dst.Index))
		}
		return 0, false

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SRA, isa.EQ, isa.NE, isa.LT,
		isa.LE, isa.GT, isa.GE:
		a := c.readSrc(vt, cl, th, op.Src1)
		var b isa.Word
		if op.HasImm {
			b = isa.W(uint64(op.Imm))
		} else {
			b = c.readSrc(vt, cl, th, op.Src2)
		}
		res, err := intALU(op.Code, a.Bits, b.Bits)
		if err != nil {
			c.protFault(vt, cl, th, err.Error())
			return 0, false
		}
		c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.W(res))
		return 0, false

	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FNEG, isa.FMOV,
		isa.FEQ, isa.FLT, isa.FLE, isa.ITOF, isa.FTOI:
		c.executeFP(now, vt, cl, th, op)
		return 0, false

	case isa.LD, isa.LDSY, isa.ST, isa.STSY, isa.LDP, isa.STP:
		c.executeMem(now, vt, cl, th, op)
		return 0, false

	case isa.LEA:
		c.executeLEA(now, vt, cl, th, op)
		return 0, false

	case isa.SETPTR:
		base := c.readSrc(vt, cl, th, op.Src1)
		perms, segLen := gp.UnpackSetptr(op.Imm)
		p, err := gp.Make(perms, segLen, base.Bits)
		if err != nil {
			c.protFault(vt, cl, th, err.Error())
			return 0, false
		}
		c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.Word{Bits: uint64(p), Ptr: true})
		return 0, false

	case isa.SEND, isa.SENDN:
		c.executeSend(now, vt, cl, th, op)
		return 0, false

	case isa.GPROBE:
		addr := c.readSrc(vt, cl, th, op.Src1)
		a := addr.Bits
		if addr.Ptr {
			a = gp.Pointer(addr.Bits).Addr()
		}
		node, err := c.GTLB.Translate(a)
		res := uint64(math.MaxUint64)
		if err == nil {
			res = uint64(c.Net.Index(gtlbToNoc(node)))
		}
		c.writeDst(now, vt, cl, op, c.Cfg.GTLBLat, isa.W(res))
		return 0, false

	case isa.TLBW:
		rec := c.readRecord(th, int(op.Src1.Index))
		var ws [mem.PTEWords]uint64
		for i := range ws {
			ws[i] = rec.w[i].Bits
		}
		c.Mem.TLBInstall(ws)
		c.trace("tlbw", fmt.Sprintf("vpn=%d", ws[0]>>1))
		return 0, false

	case isa.TLBINV:
		v := c.readSrc(vt, cl, th, op.Src1)
		c.Mem.TLBInvalidate(v.Bits)
		return 0, false

	case isa.BSW:
		a := c.readSrc(vt, cl, th, op.Src1)
		s := c.readSrc(vt, cl, th, op.Src2)
		c.Mem.SetBlockStatus(a.Bits, mem.BlockStatus(s.Bits&3))
		return 0, false

	case isa.BSR:
		a := c.readSrc(vt, cl, th, op.Src1)
		st := c.Mem.BlockStatusOf(a.Bits)
		c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.W(uint64(st)))
		return 0, false

	case isa.MRETRY:
		rec := c.readRecord(th, int(op.Src1.Index))
		r := events.Decode(rec.w)
		c.submitMem(now, r.Request(), reqMeta{
			isRetry: true,
			regDesc: r.RegDesc,
			data:    r.Data,
		})
		c.trace("mretry", fmt.Sprintf("addr=%#x", r.VAddr))
		return 0, false

	case isa.RSTW:
		desc := c.readSrc(vt, cl, th, op.Src1)
		data := c.readSrc(vt, cl, th, op.Src2)
		dvt, dcl, reg := isa.UnpackRegDesc(desc.Bits)
		c.schedule(now+c.Cfg.XferLat, dvt, dcl, reg, data)
		c.trace("rstw", fmt.Sprintf("vt=%d cl=%d %s", dvt, dcl, reg))
		return 0, false

	case isa.DIRLOG:
		a := c.readSrc(vt, cl, th, op.Src1)
		n := c.readSrc(vt, cl, th, op.Src2)
		blk := a.Bits &^ uint64(mem.BlockWords-1)
		c.directory[blk] = append(c.directory[blk], int(n.Bits))
		return 0, false

	case isa.DIRCNT:
		a := c.readSrc(vt, cl, th, op.Src1)
		blk := a.Bits &^ uint64(mem.BlockWords-1)
		c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.W(uint64(len(c.directory[blk]))))
		return 0, false
	}
	c.protFault(vt, cl, th, fmt.Sprintf("unimplemented opcode %s", op.Code))
	return 0, false
}

func intALU(code isa.Opcode, a, b uint64) (uint64, error) {
	sa, sb := int64(a), int64(b)
	boolW := func(v bool) (uint64, error) {
		if v {
			return 1, nil
		}
		return 0, nil
	}
	switch code {
	case isa.ADD:
		return a + b, nil
	case isa.SUB:
		return a - b, nil
	case isa.MUL:
		return uint64(sa * sb), nil
	case isa.DIV:
		if sb == 0 {
			return 0, fmt.Errorf("integer divide by zero")
		}
		return uint64(sa / sb), nil
	case isa.MOD:
		if sb == 0 {
			return 0, fmt.Errorf("integer modulo by zero")
		}
		return uint64(sa % sb), nil
	case isa.AND:
		return a & b, nil
	case isa.OR:
		return a | b, nil
	case isa.XOR:
		return a ^ b, nil
	case isa.SHL:
		return a << (b & 63), nil
	case isa.SHR:
		return a >> (b & 63), nil
	case isa.SRA:
		return uint64(sa >> (b & 63)), nil
	case isa.EQ:
		return boolW(a == b)
	case isa.NE:
		return boolW(a != b)
	case isa.LT:
		return boolW(sa < sb)
	case isa.LE:
		return boolW(sa <= sb)
	case isa.GT:
		return boolW(sa > sb)
	case isa.GE:
		return boolW(sa >= sb)
	}
	panic("unreachable")
}

func (c *Chip) executeFP(now int64, vt, cl int, th *cluster.HThread, op *isa.Op) {
	f := func(w isa.Word) float64 { return math.Float64frombits(w.Bits) }
	a := c.readSrc(vt, cl, th, op.Src1)
	var b isa.Word
	if !op.Src2.IsZero() {
		b = c.readSrc(vt, cl, th, op.Src2)
	}
	lat := c.Cfg.FPLat
	var res uint64
	switch op.Code {
	case isa.FADD:
		res = math.Float64bits(f(a) + f(b))
	case isa.FSUB:
		res = math.Float64bits(f(a) - f(b))
	case isa.FMUL:
		res = math.Float64bits(f(a) * f(b))
	case isa.FDIV:
		res = math.Float64bits(f(a) / f(b))
		lat = c.Cfg.FDivLat
	case isa.FNEG:
		res = math.Float64bits(-f(a))
	case isa.FMOV:
		res = a.Bits
		lat = c.Cfg.IntLat
	case isa.FEQ:
		if f(a) == f(b) {
			res = 1
		}
	case isa.FLT:
		if f(a) < f(b) {
			res = 1
		}
	case isa.FLE:
		if f(a) <= f(b) {
			res = 1
		}
	case isa.ITOF:
		res = math.Float64bits(float64(int64(a.Bits)))
		lat = 2
	case isa.FTOI:
		res = uint64(int64(f(a)))
		lat = 2
	}
	c.writeDst(now, vt, cl, op, lat, isa.W(res))
}

func (c *Chip) executeMem(now int64, vt, cl int, th *cluster.HThread, op *isa.Op) {
	addr, write, err := c.effAddr(th, op)
	if err != nil {
		c.protFault(vt, cl, th, err.Error())
		return
	}
	var kind mem.Kind
	switch op.Code {
	case isa.LD, isa.LDSY:
		kind = mem.ReqRead
	case isa.ST, isa.STSY:
		kind = mem.ReqWrite
	case isa.LDP:
		kind = mem.ReqReadPhys
	case isa.STP:
		kind = mem.ReqWritePhys
	}
	req := mem.Request{Kind: kind, Addr: addr, Pre: op.Pre, Post: op.Post}
	meta := reqMeta{vthread: vt, cl: cl}
	if vt < isa.NumUserSlots {
		c.trace("mem-issue", fmt.Sprintf("%s addr=%#x", kind, addr))
	}
	if write {
		v := c.readSrc(vt, cl, th, op.Src2)
		req.Data, req.DataPtr = v.Bits, v.Ptr
		meta.data = v
	} else {
		meta.dst = op.Dst
		// The destination scoreboard bit clears at issue and fills at
		// writeback; the thread "does not block until it needs the data".
		th.File(op.Dst.Class).MarkEmpty(int(op.Dst.Index))
	}
	c.submitMem(now, req, meta)
}

func (c *Chip) executeLEA(now int64, vt, cl int, th *cluster.HThread, op *isa.Op) {
	base := c.readSrc(vt, cl, th, op.Src1)
	off := op.Imm
	if !op.HasImm {
		off = int64(c.readSrc(vt, cl, th, op.Src2).Bits)
	}
	if !base.Ptr {
		if th.Privileged {
			// Privileged threads may do raw address arithmetic with LEA.
			c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.W(base.Bits+uint64(off)))
			return
		}
		c.protFault(vt, cl, th, "lea on untagged word")
		return
	}
	p, err := gp.Pointer(base.Bits).Add(off)
	if err != nil {
		c.protFault(vt, cl, th, err.Error())
		return
	}
	c.writeDst(now, vt, cl, op, c.Cfg.IntLat, isa.Word{Bits: uint64(p), Ptr: true})
}
