package lint

// detrange: map iteration order and multi-ready selects must never
// reach simulated state (DESIGN.md, "Determinism and arbitration
// order"). Go randomizes map iteration per run and select picks a
// ready case pseudo-randomly, so either one on a simulation path makes
// naive/event/parallel/dist runs diverge bit-for-bit.
//
// One idiom is recognized as deterministic without annotation: a range
// whose body only collects the keys into a slice that is then passed to
// a sort.* / slices.Sort* call later in the same function. Anything
// else needs `//mlint:allow detrange <reason>`.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange reports map ranges and multi-ready selects in
// simulation-critical packages.
var DetRange = &Analyzer{
	Name:      "detrange",
	Doc:       "no map-iteration order or select arbitration on simulation-critical paths",
	Invariant: "map iteration order and select arbitration must not reach simulated state",
	Section:   "Determinism and arbitration order",
	Run:       runDetRange,
}

func runDetRange(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		if !pkgIn(pkg.Path, simCritical) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkDetRangeFunc(pkg, fd, report)
			}
		}
	}
}

func checkDetRangeFunc(pkg *Package, fd *ast.FuncDecl, report Reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pkg.Info.Types[s.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedKeyCollection(pkg, fd, s) {
				return true
			}
			report(s.For, "range over map %s iterates in randomized order", types.ExprString(s.X))
		case *ast.SelectStmt:
			ready := 0
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready >= 2 {
				report(s.Select, "select with %d communication cases arbitrates pseudo-randomly when several are ready", ready)
			}
		}
		return true
	})
}

// sortedKeyCollection recognizes
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.X(keys...) / slices.SortX(keys...)
//
// — the key-collection half of the canonical sorted-iteration idiom —
// and accepts it when the collected slice reaches a sort call after the
// loop in the same function.
func sortedKeyCollection(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || objOf(pkg, arg0) == nil || objOf(pkg, arg0) != objOf(pkg, dst) {
		return false
	}
	// The appended value must involve the key (possibly via conversion).
	usesKey := false
	for _, a := range call.Args[1:] {
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && objOf(pkg, id) == objOf(pkg, key) && objOf(pkg, key) != nil {
				usesKey = true
			}
			return true
		})
	}
	if !usesKey {
		return false
	}
	return sortedAfter(pkg, fd, objOf(pkg, dst), rs.End())
}

// sortedAfter reports whether the slice object is passed to a
// sort./slices. call positioned after pos within the function.
func sortedAfter(pkg *Package, fd *ast.FuncDecl, slice types.Object, pos token.Pos) bool {
	if slice == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[selIdent(sel.X)].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && objOf(pkg, arg) == slice {
			found = true
		}
		return true
	})
	return found
}

// objOf resolves an identifier to its object via uses or defs.
func objOf(pkg *Package, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

func selIdent(x ast.Expr) *ast.Ident {
	id, _ := x.(*ast.Ident)
	return id
}
