package lint

// wallclock: simulated time is the machine clock; host time and global
// pseudo-randomness must never feed a simulation path (DESIGN.md,
// "Supervised runs & fault injection" draws the boundary: wall time
// belongs to guard/serve/dist supervision only). A single time.Now in
// a stepping function makes runs unreproducible; the global math/rand
// state is both nondeterministic across processes and racy under the
// parallel engine.

import (
	"go/ast"
	"go/types"
)

// WallClock reports wall-clock and global-rand use outside the
// supervision allowlist.
var WallClock = &Analyzer{
	Name:      "wallclock",
	Doc:       "no wall clock or global math/rand outside supervision packages",
	Invariant: "simulation paths read only the machine clock and seeded deterministic generators",
	Section:   "Supervised runs & fault injection",
	Run:       runWallClock,
}

// wallClockFuncs are the time package entry points that read or wait on
// the host clock. Pure construction/arithmetic (time.Duration,
// time.Date arithmetic on fixed values) is not flagged.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand entry points that build a
// deterministic generator from an explicit seed; everything else at
// package level operates on the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runWallClock(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		if pkgIn(pkg.Path, wallClockAllowed) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[selIdent(sel.X)].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if wallClockFuncs[sel.Sel.Name] {
						report(sel.Pos(), "time.%s reads the host clock on a simulation path", sel.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); isFunc && !randConstructors[sel.Sel.Name] {
						report(sel.Pos(), "rand.%s uses the process-global random source", sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
}
