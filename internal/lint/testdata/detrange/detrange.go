// Package dtfix is the detrange fixture; lint_test compiles it at a
// simulation-critical import path, so map ranges and multi-ready
// selects are flagged unless sorted or explicitly allowed.
package dtfix

import "sort"

func badMapRange(m map[int]int) int {
	s := 0
	for k := range m { // want `range over map m iterates in randomized order`
		s += k
	}
	return s
}

func badSelect(a, b chan int) int {
	select { // want `select with 2 communication cases arbitrates pseudo-randomly`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// sortedKeys is the canonical exemption: collecting keys and sorting
// them before use is the repo's deterministic-iteration idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// allowedRange shows the reasoned escape hatch.
func allowedRange(m map[int]bool) int {
	n := 0
	//mlint:allow detrange fixture: entry count is iteration-order independent
	for range m {
		n++
	}
	return n
}
