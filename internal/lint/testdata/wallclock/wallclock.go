// Package wcfix is the wallclock fixture; lint_test compiles it at a
// simulation-critical import path, so host-clock reads and the global
// rand source are flagged.
package wcfix

import (
	"math/rand"
	"time"
)

func badNow() int64 {
	return time.Now().UnixNano() // want `time.Now reads the host clock on a simulation path`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the host clock on a simulation path`
}

func badGlobalRand() int {
	return rand.Intn(4) // want `rand.Intn uses the process-global random source`
}

// seededSource is allowed: constructors build an owned, explicitly
// seeded source rather than touching the process-global one.
func seededSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// allowedNow shows the reasoned escape hatch.
func allowedNow() time.Time {
	//mlint:allow wallclock fixture: supervision-style deadline, not simulated time
	return time.Now()
}
