// Package sfix is the snapfields fixture: State round-trips through the
// snap codec, so every field must appear on both the encode and decode
// paths or carry a snap:"derived" tag.
package sfix

import "repro/internal/snap"

type State struct {
	A       uint64
	B       uint64
	missing uint64 // want `field repro/internal/chip/sfix.State.missing is not referenced on the snapshot encode or decode path`
	cache   uint64 `snap:"derived,recomputed from A and B on first use"`
}

func (s *State) EncodeState(w *snap.Writer) {
	w.U64(s.A)
	w.U64(s.B)
}

func (s *State) DecodeState(r *snap.Reader) {
	s.A = r.U64()
	s.B = r.U64()
}

// Digest is write-only — it is encoded (into hash inputs) but never
// decoded — so snapfields does not conscript it into coverage and its
// unreferenced field is fine.
type Digest struct {
	Sum   uint64
	count uint64
}

func (d *Digest) EncodeDigest(w *snap.Writer) {
	w.U64(d.Sum)
}
