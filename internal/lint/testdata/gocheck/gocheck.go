// Package gofix is the gocheck fixture; lint_test compiles it at a
// simulation-critical import path, so bare go statements are flagged.
package gofix

func bad(ch chan int) {
	go func() { ch <- 1 }() // want `bare go statement escapes panic containment and the watchdogs`
}

func allowed(done chan struct{}) {
	//mlint:allow gocheck fixture: supervised helper with its own recover
	go func() { close(done) }()
}
