// Package shfix is the shadow fixture: an inner := redeclaring an outer
// variable that is still used after the inner scope is flagged;
// if-init and range-clause shadows are idiomatic and exempt.
package shfix

import "errors"

func work() (int, error) { return 1, nil }

func bad() error {
	n, err := work()
	if n > 0 {
		m, err := work() // want `declaration of "err" shadows declaration at`
		_, _ = m, err
	}
	return err
}

// guarded is exempt: the if-init shadow is scoped to the guard and is
// the language's idiom for exactly that.
func guarded() error {
	n, err := work()
	_ = n
	if err := errors.New("scoped"); err != nil {
		_ = err
	}
	return err
}
