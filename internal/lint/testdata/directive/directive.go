// Package dirfix is the directive fixture: suppressions without a
// reason, or naming an unknown analyzer, are themselves diagnostics.
package dirfix

func noReason(m map[int]int) int {
	s := 0
	//mlint:allow detrange
	for k := range m { // want `range over map m iterates in randomized order`
		s += k
	}
	return s
}

func unknownAnalyzer(m map[int]int) int {
	s := 0
	//mlint:allow nosuchpass keys are stable
	for k := range m { // want `range over map m iterates in randomized order`
		s += k
	}
	return s
}
