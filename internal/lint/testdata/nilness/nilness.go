// Package nilfix is the nilness fixture: dereferencing a variable on a
// branch where the guard proves it nil is flagged; reassignment inside
// the branch clears the fact.
package nilfix

type node struct {
	next *node
	val  int
}

func bad(n *node) int {
	if n == nil {
		return n.val // want `"n" is nil on this path`
	}
	return n.val
}

func guarded(n *node) int {
	if n != nil {
		return n.val
	}
	return 0
}

// reassigned is allowed: the branch replaces n before the dereference.
func reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}
