// Package clfix is the copylocks fixture: values whose type carries a
// lock must not be copied; pointers and fresh composite literals are
// fine.
package clfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func badParam(c counter) int { // want `parameter passes lock-bearing`
	return c.n
}

func badCopy(c *counter) {
	snapshot := *c // want `copies lock-bearing`
	_ = snapshot
}

func goodPointer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// fresh is allowed: a composite literal creates a value, it does not
// copy an existing one.
func fresh() *counter {
	c := counter{}
	return &c
}
