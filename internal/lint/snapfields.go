package lint

// snapfields: the static complement to the snapshot round-trip matrix
// (DESIGN.md, "Checkpoint/restore"). The snapshot format is defined
// entirely by the call sequence of the per-package encoders over
// internal/snap, so "added a struct field, snapshot silently drops it"
// is invisible to the compiler and only surfaces when a mid-run restore
// happens to hit the divergence — exactly how the PR 4 chip
// snapshot-validation bug survived until PR 8's shard snapshots.
//
// The pass finds every struct that round-trips through the snap codec
// and demands that each of its fields is referenced on BOTH the encode
// and the decode path, or is explicitly exempted:
//
//   - encode paths: functions with a *snap.Writer parameter, or that
//     call snap.NewWriter;
//   - decode paths: functions with a *snap.Reader parameter, that call
//     snap.NewReader, or Adopt/adopt methods (the commit phase of the
//     two-phase restore);
//   - exemptions: a `snap:"derived"` struct tag (the field is
//     deliberately re-derived or fixed by construction at restore —
//     wake caches, link grants, decode memos, engine-selection config),
//     or a reasoned //mlint:allow snapfields on the field.
//
// A struct is "snapshot-covered" when at least one of its fields is
// referenced on an encode path AND one on a decode path; write-only
// digest encodes don't conscript a struct into coverage.

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// SnapFields reports snapshot-covered struct fields missing from an
// encode or decode path.
var SnapFields = &Analyzer{
	Name:      "snapfields",
	Doc:       "every snapshot-covered struct field is encoded and decoded, or tagged snap:\"derived\"",
	Invariant: "a snapshot round-trips every field of every covered struct",
	Section:   "Checkpoint/restore",
	Run:       runSnapFields,
}

// snapPkgPath is the codec package; its own Writer/Reader internals are
// the transport, not snapshot state.
const snapPkgPath = "repro/internal/snap"

// snapStruct is one struct type defined in the module.
type snapStruct struct {
	name    string // qualified, e.g. repro/internal/noc.Network
	fields  []*types.Var
	derived map[*types.Var]bool
}

func runSnapFields(m *Module, report Reporter) {
	owner := map[*types.Var]*snapStruct{}
	var structs []*snapStruct
	for _, pkg := range m.Pkgs {
		if pkg.Path == snapPkgPath {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			s := &snapStruct{name: pkg.Path + "." + name, derived: map[*types.Var]bool{}}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() == "_" {
					continue
				}
				s.fields = append(s.fields, f)
				if v := reflect.StructTag(st.Tag(i)).Get("snap"); v == "derived" || strings.HasPrefix(v, "derived,") {
					s.derived[f] = true
				}
				owner[f] = s
			}
			structs = append(structs, s)
		}
	}

	encRefs := map[*types.Var]bool{}
	decRefs := map[*types.Var]bool{}
	for _, pkg := range m.Pkgs {
		if pkg.Path == snapPkgPath {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				enc, dec := snapRole(pkg, fd)
				if !enc && !dec {
					continue
				}
				collectFieldRefs(pkg, fd, func(v *types.Var) {
					if enc {
						encRefs[v] = true
					}
					if dec {
						decRefs[v] = true
					}
				})
			}
		}
	}

	for _, s := range structs {
		covered := false
		for _, f := range s.fields {
			if encRefs[f] {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		onDec := false
		for _, f := range s.fields {
			if decRefs[f] {
				onDec = true
				break
			}
		}
		if !onDec {
			continue // write-only (digest) encode, not a round-tripped struct
		}
		for _, f := range s.fields {
			if s.derived[f] {
				continue
			}
			var missing []string
			if !encRefs[f] {
				missing = append(missing, "encode")
			}
			if !decRefs[f] {
				missing = append(missing, "decode")
			}
			if len(missing) > 0 {
				report(f.Pos(), "field %s.%s is not referenced on the snapshot %s path — a snapshot would drop it silently (serialize it or tag it snap:\"derived\")",
					s.name, f.Name(), strings.Join(missing, " or "))
			}
		}
	}
}

// snapRole classifies fd as an encode and/or decode path function.
func snapRole(pkg *Package, fd *ast.FuncDecl) (enc, dec bool) {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false, false
	}
	sig := obj.Type().(*types.Signature)
	check := func(t types.Type) {
		pt, ok := t.(*types.Pointer)
		if !ok {
			return
		}
		named, ok := pt.Elem().(*types.Named)
		if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != snapPkgPath {
			return
		}
		switch named.Obj().Name() {
		case "Writer":
			enc = true
		case "Reader":
			dec = true
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		check(sig.Params().At(i).Type())
	}
	if fd.Recv != nil && (fd.Name.Name == "Adopt" || fd.Name.Name == "adopt") {
		dec = true
	}
	// Functions that build their own codec (Save/Restore, the dist
	// frame encoders) are roots too.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[selIdent(sel.X)].(*types.PkgName)
		if !ok || pn.Imported().Path() != snapPkgPath {
			return true
		}
		switch sel.Sel.Name {
		case "NewWriter":
			enc = true
		case "NewReader":
			dec = true
		}
		return true
	})
	return enc, dec
}

// collectFieldRefs reports every struct-field object referenced in fd's
// body: selector expressions (including chained c.Mem.SDRAM.Words, each
// link of which is its own selection) and keyed or positional struct
// composite literals.
func collectFieldRefs(pkg *Package, fd *ast.FuncDecl, ref func(*types.Var)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					ref(v)
				}
			}
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[e]
			if !ok {
				return true
			}
			st, ok := tv.Type.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			keyed := false
			for _, el := range e.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					keyed = true
					if id, ok := kv.Key.(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
							ref(v)
						}
					}
				}
			}
			if !keyed && len(e.Elts) > 0 {
				for i := 0; i < st.NumFields(); i++ {
					ref(st.Field(i))
				}
			}
		}
		return true
	})
}
