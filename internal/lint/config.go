package lint

// Package scoping for the determinism analyzers (DESIGN.md, "Static
// analysis"). The split follows the architecture's one load-bearing
// boundary: simulated state vs. supervision. Everything that can touch
// simulated state must be bit-deterministic across engine modes;
// everything that watches wall clocks, spawns monitors, or talks to the
// OS lives in the supervision packages (guard, serve, dist
// coordination, faultinject) and the command front ends.

import "strings"

// simCritical is the set of packages on the simulation path: map
// iteration order, wall time, and scheduler interleavings here can
// reach simulated state and break the cross-engine bit-identity matrix.
// internal/dist is included for detrange because the worker stepping
// and frame encode/decode paths feed simulated state (the coordinator's
// recovery must replay bit-identically too). internal/wgen is included
// because a seed must name the same generated scenario on every host,
// forever — the generator is part of the reproducibility contract
// behind `msim -gen-seed`.
var simCritical = []string{
	"repro/internal/chip",
	"repro/internal/cluster",
	"repro/internal/core",
	"repro/internal/dist",
	"repro/internal/events",
	"repro/internal/gtlb",
	"repro/internal/isa",
	"repro/internal/machine",
	"repro/internal/mem",
	"repro/internal/noc",
	"repro/internal/sched",
	"repro/internal/wgen",
}

// wallClockAllowed is the allowlist of package paths where wall time
// and OS-driven timing are legitimate: supervision owns deadlines,
// watchdogs, heartbeats and backoff; the command front ends measure
// wall time for reporting; the analyzer suite itself is tooling.
// Everything else under internal/ is checked — simulated time is the
// machine clock, never the host's.
var wallClockAllowed = []string{
	"repro/internal/dist",
	"repro/internal/faultinject",
	"repro/internal/guard",
	"repro/internal/lint",
	"repro/internal/serve",
	"repro/cmd",
	"repro/examples",
}

// goAllowed is the allowlist of package paths where spawning goroutines
// is legitimate wholesale: guard monitors, serve's worker pool and
// HTTP plumbing, dist's launch/heartbeat/supervision. The machine
// worker pool and core's experiment fan-out are NOT allowlisted — those
// two sites carry individual //mlint:allow annotations, so any new
// goroutine near them still has to justify itself.
var goAllowed = []string{
	"repro/internal/dist",
	"repro/internal/guard",
	"repro/internal/lint",
	"repro/internal/serve",
}

// pkgIn reports whether path is pkg or a subpackage of pkg for any
// entry in list.
func pkgIn(path string, list []string) bool {
	for _, p := range list {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
