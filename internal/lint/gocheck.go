package lint

// gocheck: a bare `go` statement escapes the supervision layer
// (DESIGN.md, "Supervised runs & fault injection"): a panic in it
// bypasses the worker pool's recover-and-rethrow at the barrier, a hang
// in it is invisible to the watchdogs, and its scheduling can leak
// nondeterminism into anything it shares state with. Goroutines belong
// to the machine worker pool, guard's monitors, and dist/serve
// supervision; each such site is either in the allowlisted supervision
// packages or carries an individual //mlint:allow gocheck annotation.

import "go/ast"

// GoCheck reports go statements outside the supervision allowlist.
var GoCheck = &Analyzer{
	Name:      "gocheck",
	Doc:       "no bare goroutines outside the supervised pools",
	Invariant: "every goroutine is owned by a supervised pool or monitor",
	Section:   "Supervised runs & fault injection",
	Run:       runGoCheck,
}

func runGoCheck(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		if pkgIn(pkg.Path, goAllowed) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					report(g.Go, "bare go statement escapes panic containment and the watchdogs")
				}
				return true
			})
		}
	}
}
