package lint

// Suppression directives. A finding is only ever silenced by an
// explicit, reasoned annotation at the finding site:
//
//	x := foo() //mlint:allow detrange keys sorted below before use
//
// or, on its own line, covering the line below:
//
//	//mlint:allow gocheck worker pool goroutines park at the barrier
//	go p.worker(w)
//
// The reason is mandatory — an allow without one is itself a
// diagnostic — and `mlint -suppressions` lists every directive (and
// every snap:"derived" tag) so the full exemption set stays auditable.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// directivePrefix introduces a suppression comment.
const directivePrefix = "//mlint:allow"

// Suppression is one parsed //mlint:allow directive.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Line     int  // line the directive silences
	Used     bool // matched at least one finding this run
}

// DerivedTag is one snap:"derived" struct-tag exemption, listed by
// `mlint -suppressions` alongside the comment directives.
type DerivedTag struct {
	Pos    token.Position
	Struct string // qualified struct name
	Field  string
}

// collectDirectives scans every loaded file for suppression comments
// and derived tags. Malformed directives are returned as diagnostics.
func collectDirectives(m *Module) ([]*Suppression, []DerivedTag, []Diagnostic) {
	var supps []*Suppression
	var bad []Diagnostic
	seen := map[string]bool{}
	for _, pkg := range m.Pkgs {
		for i, f := range pkg.Files {
			fn := pkg.Filenames[i]
			if seen[fn] {
				continue
			}
			seen[fn] = true
			src := m.srcs[fn]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					s, err := parseDirective(c.Text, pos)
					if err != nil {
						bad = append(bad, Diagnostic{Pos: pos, Analyzer: "mlint", Message: err.Error()})
						continue
					}
					s.Line = pos.Line
					if standalone(src, pos) {
						s.Line = pos.Line + 1
					}
					supps = append(supps, s)
				}
			}
		}
	}
	return supps, collectDerived(m), bad
}

func parseDirective(text string, pos token.Position) (*Suppression, error) {
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, fmt.Errorf("malformed %s directive", directivePrefix)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("%s needs an analyzer name and a reason", directivePrefix)
	}
	name := fields[0]
	if ByName(name) == nil {
		return nil, fmt.Errorf("%s names unknown analyzer %q", directivePrefix, name)
	}
	reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
	if reason == "" {
		return nil, fmt.Errorf("suppression of %q requires a reason string", name)
	}
	return &Suppression{Pos: pos, Analyzer: name, Reason: reason}, nil
}

// standalone reports whether the comment at pos is the first token on
// its source line (so the directive covers the following line).
func standalone(src []byte, pos token.Position) bool {
	off := pos.Offset
	for off > 0 && src[off-1] != '\n' {
		if c := src[off-1]; c != ' ' && c != '\t' {
			return false
		}
		off--
	}
	return true
}

func matchSuppression(supps []*Suppression, d Diagnostic) *Suppression {
	for _, s := range supps {
		if s.Analyzer == d.Analyzer && s.Pos.Filename == d.Pos.Filename && s.Line == d.Pos.Line {
			return s
		}
	}
	return nil
}

// collectDerived walks struct declarations for snap:"derived" tags.
func collectDerived(m *Module) []DerivedTag {
	var out []DerivedTag
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, fld := range st.Fields.List {
					if !fieldDerived(fld) {
						continue
					}
					for _, name := range fld.Names {
						out = append(out, DerivedTag{
							Pos:    m.Fset.Position(name.Pos()),
							Struct: pkg.Path + "." + ts.Name.Name,
							Field:  name.Name,
						})
					}
					if len(fld.Names) == 0 { // embedded field
						out = append(out, DerivedTag{
							Pos:    m.Fset.Position(fld.Pos()),
							Struct: pkg.Path + "." + ts.Name.Name,
							Field:  types.ExprString(fld.Type),
						})
					}
				}
				return true
			})
		}
	}
	return out
}

// fieldDerived reports whether a struct field carries snap:"derived".
func fieldDerived(fld *ast.Field) bool {
	if fld.Tag == nil {
		return false
	}
	tag, err := strconv.Unquote(fld.Tag.Value)
	if err != nil {
		return false
	}
	v := reflect.StructTag(tag).Get("snap")
	return v == "derived" || strings.HasPrefix(v, "derived,")
}
