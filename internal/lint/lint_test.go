package lint_test

// Fixture tests in the analysistest style: each testdata/<analyzer>
// package compiles against the real module (CheckDir grafts it onto a
// simulation-critical import path), and every expected finding is a
// `// want` comment on the offending line. Each fixture carries at
// least one true positive and one allowed exception, so both halves of
// every analyzer — the detection and the escape hatch — stay pinned.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	modOnce sync.Once
	mod     *lint.Module
	modErr  error
)

// module loads the repo once per test binary; the extra patterns force
// `go list -export` to materialize export data for the stdlib packages
// the fixtures import but the module itself may not.
func module(t *testing.T) *lint.Module {
	t.Helper()
	modOnce.Do(func() {
		mod, modErr = lint.Load("../..", "./...", "errors", "math/rand", "sort", "sync", "time")
	})
	if modErr != nil {
		t.Fatalf("loading module: %v", modErr)
	}
	return mod
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantEntry struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans the fixture sources for `// want` comments.
func collectWants(t *testing.T, dir string) []*wantEntry {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantEntry
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", e.Name(), i+1, err)
			}
			wants = append(wants, &wantEntry{file: e.Name(), line: i + 1, re: re})
		}
	}
	return wants
}

// runFixture analyzes testdata/<name> as import path asPath and checks
// the diagnostics against the fixture's want comments, both ways: every
// finding must be wanted and every want must be found.
func runFixture(t *testing.T, name, asPath string, as ...*lint.Analyzer) *lint.Result {
	t.Helper()
	m := module(t)
	dir := filepath.Join("testdata", name)
	fm, err := m.CheckDir(dir, asPath)
	if err != nil {
		t.Fatalf("checking fixture: %v", err)
	}
	res := lint.RunAnalyzers(fm, as)
	wants := collectWants(t, dir)
	for _, d := range res.Diags {
		matched := false
		for _, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
	return res
}

// assertSuppressed verifies the fixture's escape hatch fired: at least
// one finding was silenced by a reasoned directive, and no directive
// went unused.
func assertSuppressed(t *testing.T, res *lint.Result) {
	t.Helper()
	if len(res.Suppressed) == 0 {
		t.Error("fixture has an //mlint:allow directive but no finding was suppressed")
	}
	for _, s := range res.Suppressions {
		if !s.Used {
			t.Errorf("%s: directive for %q unused", s.Pos, s.Analyzer)
		}
	}
}

func TestDetRangeFixture(t *testing.T) {
	res := runFixture(t, "detrange", "repro/internal/chip/dtfix", lint.DetRange)
	assertSuppressed(t, res)
}

func TestWallClockFixture(t *testing.T) {
	res := runFixture(t, "wallclock", "repro/internal/chip/wcfix", lint.WallClock)
	assertSuppressed(t, res)
}

// TestWallClockAllowedPath re-checks the same fixture at a supervision
// import path: every finding must vanish.
func TestWallClockAllowedPath(t *testing.T) {
	m := module(t)
	fm, err := m.CheckDir(filepath.Join("testdata", "wallclock"), "repro/internal/guard/wcfix")
	if err != nil {
		t.Fatalf("checking fixture: %v", err)
	}
	res := lint.RunAnalyzers(fm, []*lint.Analyzer{lint.WallClock})
	for _, d := range res.Diags {
		t.Errorf("wallclock fired on an allowlisted supervision path: %s", d)
	}
}

func TestGoCheckFixture(t *testing.T) {
	res := runFixture(t, "gocheck", "repro/internal/chip/gofix", lint.GoCheck)
	assertSuppressed(t, res)
}

func TestSnapFieldsFixture(t *testing.T) {
	res := runFixture(t, "snapfields", "repro/internal/chip/sfix", lint.SnapFields)
	if len(res.Derived) != 1 || res.Derived[0].Field != "cache" {
		t.Errorf("derived tags = %v, want exactly State.cache", res.Derived)
	}
}

func TestShadowFixture(t *testing.T) {
	runFixture(t, "shadow", "repro/internal/chip/shfix", lint.Shadow)
}

func TestCopyLocksFixture(t *testing.T) {
	runFixture(t, "copylocks", "repro/internal/chip/clfix", lint.CopyLocks)
}

func TestNilnessFixture(t *testing.T) {
	runFixture(t, "nilness", "repro/internal/chip/nilfix", lint.Nilness)
}

// TestDirectiveFixture pins the audit-trail rules: a directive without
// a reason, or naming an unknown analyzer, is itself a diagnostic and
// silences nothing.
func TestDirectiveFixture(t *testing.T) {
	m := module(t)
	fm, err := m.CheckDir(filepath.Join("testdata", "directive"), "repro/internal/chip/dirfix")
	if err != nil {
		t.Fatalf("checking fixture: %v", err)
	}
	res := lint.RunAnalyzers(fm, []*lint.Analyzer{lint.DetRange})
	var mlintMsgs []string
	ranges := 0
	for _, d := range res.Diags {
		switch d.Analyzer {
		case "mlint":
			mlintMsgs = append(mlintMsgs, d.Message)
		case "detrange":
			ranges++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if ranges != 2 {
		t.Errorf("got %d detrange findings, want 2 (malformed directives must not suppress)", ranges)
	}
	if len(mlintMsgs) != 2 {
		t.Fatalf("got %d mlint directive diagnostics, want 2: %q", len(mlintMsgs), mlintMsgs)
	}
	if !strings.Contains(mlintMsgs[0], "requires a reason") {
		t.Errorf("missing-reason directive: got %q", mlintMsgs[0])
	}
	if !strings.Contains(mlintMsgs[1], "unknown analyzer") {
		t.Errorf("unknown-analyzer directive: got %q", mlintMsgs[1])
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("malformed directives suppressed %d findings", len(res.Suppressed))
	}
}

// TestModuleClean is the CI gate in miniature: the full suite over the
// full module must report zero unsuppressed diagnostics, and every
// suppression must be load-bearing.
func TestModuleClean(t *testing.T) {
	m := module(t)
	res := lint.RunAnalyzers(m, lint.Analyzers())
	for _, d := range res.Diags {
		t.Errorf("unsuppressed: %s", d)
	}
	for _, s := range res.Suppressions {
		if !s.Used {
			t.Errorf("%s: //mlint:allow %s is unused — remove it", s.Pos, s.Analyzer)
		}
	}
}
