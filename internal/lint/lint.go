// Package lint is the repo-specific static-analysis suite behind
// cmd/mlint (DESIGN.md, "Static analysis"). The determinism invariants
// that keep every engine mode bit-identical — no map-iteration order
// reaching simulated state, no wall clock or global rand on simulation
// paths, no goroutines outside the supervised pools, every
// snapshot-covered struct field encoded or explicitly derived — live in
// DESIGN.md as prose; the analyzers here turn them into CI-enforced
// checks over the whole module.
//
// The framework mirrors golang.org/x/tools/go/analysis in miniature
// (that dependency is deliberately absent: the module is stdlib-only):
// an Analyzer walks the type-checked Module and reports Diagnostics;
// the driver filters them through //mlint:allow suppressions, each of
// which must carry a reason string so `mlint -suppressions` can audit
// every hole punched in an invariant.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one invariant checker. Run inspects the whole module and
// reports through the supplied function; the driver appends the
// violated invariant and its DESIGN.md section to every diagnostic.
type Analyzer struct {
	Name      string // short lowercase name, used in //mlint:allow
	Doc       string // one-line description for -list
	Invariant string // the invariant a diagnostic violates
	Section   string // DESIGN.md section documenting the invariant
	Run       func(m *Module, report Reporter)
}

// Reporter records one finding at pos.
type Reporter func(pos token.Pos, format string, args ...any)

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Result is a full run of the suite over a module.
type Result struct {
	Diags        []Diagnostic   // unsuppressed findings (CI fails on any)
	Suppressed   []Diagnostic   // findings covered by an //mlint:allow
	Suppressions []*Suppression // every directive found, used or not
	Derived      []DerivedTag   // every snap:"derived" exemption found
}

// Analyzers returns the full suite: the four repo-specific determinism
// analyzers plus the stock correctness passes that go vet does not run.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRange, WallClock, GoCheck, SnapFields,
		Shadow, CopyLocks, Nilness,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over m and applies suppression directives.
func RunAnalyzers(m *Module, as []*Analyzer) *Result {
	res := &Result{}
	supps, derived, bad := collectDirectives(m)
	res.Suppressions = supps
	res.Derived = derived
	// A malformed directive (no reason, unknown analyzer) is itself a
	// finding: suppressions without reasons defeat the audit trail.
	res.Diags = append(res.Diags, bad...)

	var all []Diagnostic
	for _, a := range as {
		a := a
		a.Run(m, func(pos token.Pos, format string, args ...any) {
			p := m.Fset.Position(pos)
			msg := fmt.Sprintf(format, args...)
			msg = fmt.Sprintf("%s [invariant: %s — DESIGN.md %q]", msg, a.Invariant, a.Section)
			all = append(all, Diagnostic{Pos: p, Analyzer: a.Name, Message: msg})
		})
	}

	for _, d := range all {
		if s := matchSuppression(supps, d); s != nil {
			s.Used = true
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Diags = append(res.Diags, d)
	}
	sortDiags(res.Diags)
	sortDiags(res.Suppressed)
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
