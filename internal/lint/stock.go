package lint

// Stock correctness passes. go vet's default set already runs in the
// vet leg; these are the passes it leaves out (nilness, shadow) or
// narrows (copylocks only checks some copy sites). The container
// carries no golang.org/x/tools, so these are conservative stdlib
// reimplementations of the same invariants, tuned to report only
// high-confidence findings: the lint leg fails on any unsuppressed
// diagnostic, so a noisy heuristic would just breed suppressions.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow reports an inner := or var declaration that shadows a
// function-local variable which is still used after the inner scope
// ends — the classic "assigned to the wrong err" hazard. The idiomatic
// delimited shadows Go relies on are exempt: if/for/switch init
// clauses (`if err := f(); err != nil`), range clause variables, and
// function-literal parameters, all of which scope the shadow to a
// single visible statement.
var Shadow = &Analyzer{
	Name:      "shadow",
	Doc:       "no shadowed variables that are used again after the shadowing scope",
	Invariant: "a declaration does not silently capture writes meant for an outer variable",
	Section:   "Static analysis",
	Run:       runShadow,
}

// shadowExempt collects the positions of identifiers declared by the
// idiomatic delimited-shadow forms.
func shadowExempt(files []*ast.File) map[token.Pos]bool {
	exempt := map[token.Pos]bool{}
	markAssign := func(s ast.Stmt) {
		as, ok := s.(*ast.AssignStmt)
		if !ok {
			return
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				exempt[id.Pos()] = true
			}
		}
	}
	markExpr := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			exempt[id.Pos()] = true
		}
	}
	markParams := func(ft *ast.FuncType) {
		for _, fl := range []*ast.FieldList{ft.Params, ft.Results} {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, n := range f.Names {
					exempt[n.Pos()] = true
				}
			}
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IfStmt:
				if s.Init != nil {
					markAssign(s.Init)
				}
			case *ast.ForStmt:
				if s.Init != nil {
					markAssign(s.Init)
				}
			case *ast.SwitchStmt:
				if s.Init != nil {
					markAssign(s.Init)
				}
			case *ast.TypeSwitchStmt:
				if s.Init != nil {
					markAssign(s.Init)
				}
				markAssign(s.Assign)
			case *ast.RangeStmt:
				if s.Key != nil {
					markExpr(s.Key)
				}
				if s.Value != nil {
					markExpr(s.Value)
				}
			case *ast.FuncLit:
				markParams(s.Type)
			}
			return true
		})
	}
	return exempt
}

func runShadow(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		exempt := shadowExempt(pkg.Files)
		fileScopes := map[*types.Scope]bool{}
		for _, f := range pkg.Files {
			if s, ok := pkg.Info.Scopes[f]; ok {
				fileScopes[s] = true
			}
		}
		nonLocal := func(s *types.Scope) bool {
			return s == nil || s == types.Universe || s == pkg.Types.Scope() || fileScopes[s]
		}
		for id, obj := range pkg.Info.Defs {
			v, ok := obj.(*types.Var)
			if !ok || id.Name == "_" || v.IsField() || exempt[id.Pos()] {
				continue
			}
			inner := v.Parent()
			if nonLocal(inner) || inner.Parent() == nil {
				continue
			}
			_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
			outer, ok := outerObj.(*types.Var)
			if !ok || outer == v || outer.IsField() || nonLocal(outer.Parent()) {
				continue
			}
			// Heuristic: only a shadow whose outer variable is used
			// again after the inner scope closes can misdirect a write.
			usedAfter := false
			for useID, useObj := range pkg.Info.Uses {
				if useObj == outer && useID.Pos() > inner.End() {
					usedAfter = true
					break
				}
			}
			if usedAfter {
				report(id.Pos(), "declaration of %q shadows declaration at %s; the outer variable is used after this scope",
					id.Name, m.Fset.Position(outer.Pos()))
			}
		}
	}
}

// CopyLocks reports values containing locks (anything whose pointer
// method set has Lock/Unlock that its value method set lacks — sync
// primitives, sync/atomic types, and structs containing them) copied by
// value: parameters, assignments, returns, and range values. Beyond the
// vet leg, it covers module-internal declarations uniformly.
var CopyLocks = &Analyzer{
	Name:      "copylocks",
	Doc:       "no lock-bearing values copied by value",
	Invariant: "locks and atomics are shared by pointer, never copied",
	Section:   "Static analysis",
	Run:       runCopyLocks,
}

func runCopyLocks(m *Module, report Reporter) {
	memo := map[types.Type]bool{}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.FuncDecl:
					checkFieldListLocks(m, pkg, s.Recv, memo, report)
					if s.Type.Params != nil {
						checkFieldListLocks(m, pkg, s.Type.Params, memo, report)
					}
				case *ast.FuncLit:
					checkFieldListLocks(m, pkg, s.Type.Params, memo, report)
				case *ast.AssignStmt:
					for i, rhs := range s.Rhs {
						// A blank-identifier assignment discards the
						// value; nothing retains the copy.
						if len(s.Lhs) == len(s.Rhs) {
							if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
								continue
							}
						}
						checkCopyExpr(m, pkg, rhs, memo, report, "assignment")
					}
				case *ast.ReturnStmt:
					for _, r := range s.Results {
						checkCopyExpr(m, pkg, r, memo, report, "return")
					}
				case *ast.RangeStmt:
					if s.Value != nil {
						if tv, ok := pkg.Info.Types[s.Value]; ok && containsLock(tv.Type, memo) {
							report(s.Value.Pos(), "range value copies lock-bearing %s per iteration; range over indices or pointers", tv.Type)
						}
					}
				}
				return true
			})
		}
	}
}

func checkFieldListLocks(m *Module, pkg *Package, fl *ast.FieldList, memo map[types.Type]bool, report Reporter) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		tv, ok := pkg.Info.Types[f.Type]
		if !ok {
			continue
		}
		if containsLock(tv.Type, memo) {
			report(f.Pos(), "parameter passes lock-bearing %s by value; pass a pointer", tv.Type)
		}
	}
}

// checkCopyExpr flags reads that copy an existing lock-bearing value.
// Fresh values (composite literals, function calls, conversions) are
// initializations, not copies, and are allowed — matching vet.
func checkCopyExpr(m *Module, pkg *Package, e ast.Expr, memo map[types.Type]bool, report Reporter, what string) {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || !tv.IsValue() {
		return
	}
	if containsLock(tv.Type, memo) {
		report(e.Pos(), "%s copies lock-bearing %s; use a pointer", what, tv.Type)
	}
}

// containsLock reports whether t (not a pointer to t) carries a lock:
// its pointer method set has Lock and Unlock while its value method set
// does not, or a struct field / array element does, recursively.
func containsLock(t types.Type, memo map[types.Type]bool) bool {
	if v, ok := memo[t]; ok {
		return v
	}
	memo[t] = false // cycle guard
	res := false
	if hasLockMethods(types.NewPointer(t)) && !hasLockMethods(t) {
		res = true
	} else {
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields() && !res; i++ {
				res = containsLock(u.Field(i).Type(), memo)
			}
		case *types.Array:
			res = containsLock(u.Elem(), memo)
		}
	}
	memo[t] = res
	return res
}

func hasLockMethods(t types.Type) bool {
	ms := types.NewMethodSet(t)
	found := 0
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock", "Unlock":
			found++
		}
	}
	return found == 2
}

// Nilness reports dereferences of a variable on a branch where the
// guarding condition proves it nil: `if x == nil { ... x.f ... }` and
// the else-arm of `if x != nil`. Branches that reassign the variable
// anywhere are skipped, so the check stays conservative.
var Nilness = &Analyzer{
	Name:      "nilness",
	Doc:       "no dereference of a provably nil variable",
	Invariant: "a nil-guarded branch does not dereference the guarded variable",
	Section:   "Static analysis",
	Run:       runNilness,
}

func runNilness(m *Module, report Reporter) {
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok {
					return true
				}
				bin, ok := ifs.Cond.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				id := nilComparedVar(pkg, bin)
				if id == nil {
					return true
				}
				obj := objOf(pkg, id)
				if obj == nil {
					return true
				}
				var body *ast.BlockStmt
				switch bin.Op {
				case token.EQL:
					body = ifs.Body
				case token.NEQ:
					body, _ = ifs.Else.(*ast.BlockStmt)
				}
				if body == nil || reassigns(pkg, body, obj) {
					return true
				}
				reportNilUses(m, pkg, body, obj, report)
				return true
			})
		}
	}
}

// nilComparedVar returns the plain variable ident compared against nil.
func nilComparedVar(pkg *Package, bin *ast.BinaryExpr) *ast.Ident {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return nil
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := pkg.Info.Types[e]
		return ok && tv.IsNil()
	}
	if id, ok := bin.X.(*ast.Ident); ok && isNil(bin.Y) {
		return id
	}
	if id, ok := bin.Y.(*ast.Ident); ok && isNil(bin.X) {
		return id
	}
	return nil
}

// reassigns reports whether body assigns to obj or takes its address.
func reassigns(pkg *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && objOf(pkg, id) == obj {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				if id, ok := s.X.(*ast.Ident); ok && objOf(pkg, id) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// reportNilUses flags pointer/interface selections, explicit
// dereferences, and calls of obj inside body.
func reportNilUses(m *Module, pkg *Package, body *ast.BlockStmt, obj types.Object, report Reporter) {
	derefable := func() bool {
		switch obj.Type().Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature:
			return true
		}
		return false
	}()
	if !derefable {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok && objOf(pkg, id) == obj {
				report(e.Pos(), "%q is nil on this path (guarded at %s) and is dereferenced here",
					id.Name, m.Fset.Position(body.Pos()))
			}
		case *ast.StarExpr:
			if id, ok := e.X.(*ast.Ident); ok && objOf(pkg, id) == obj {
				report(e.Pos(), "%q is nil on this path and is dereferenced here", id.Name)
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && objOf(pkg, id) == obj {
				report(e.Pos(), "%q is nil on this path and is called here", id.Name)
			}
		}
		return true
	})
}
