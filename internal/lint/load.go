package lint

// Module loading for the analyzer suite. The container has no
// golang.org/x/tools, so this is a stdlib-only loader: `go list -export
// -deps -json` enumerates every package in the module's build closure
// and — crucially — the compiled export data the toolchain already
// produced for each dependency, and the module's own packages are then
// parsed and type-checked from source against that export data via the
// lookup form of go/importer. The result is the same (fset, syntax,
// types.Info) triple an x/tools analysis.Pass would carry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	Path      string   // import path, e.g. repro/internal/noc
	Name      string   // package name
	Dir       string   // source directory
	Filenames []string // absolute paths of the non-test Go files
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Module is the loaded build closure: every module-local package in
// dependency order, sharing one FileSet, plus an importer that resolves
// both module packages (by their type-checked form) and dependencies
// (by toolchain export data).
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package

	byPath map[string]*Package
	srcs   map[string][]byte // file path -> source, for directive scanning
	imp    types.Importer
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
}

// moduleImporter resolves module packages to their source-checked form
// and everything else through the toolchain's export data.
type moduleImporter struct {
	gc   types.Importer
	ours map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.ours[path]; ok {
		return p, nil
	}
	return m.gc.Import(path)
}

// Load lists patterns (plus any extra import paths whose export data the
// caller wants resolvable, e.g. fixture imports) from dir and
// type-checks every main-module package from source.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var locals []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main {
			q := p
			locals = append(locals, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := &moduleImporter{
		gc:   importer.ForCompiler(fset, "gc", lookup),
		ours: map[string]*types.Package{},
	}
	m := &Module{
		Fset:   fset,
		byPath: map[string]*Package{},
		srcs:   map[string][]byte{},
		imp:    imp,
	}

	// -deps emits dependencies before dependents, so a single in-order
	// pass sees every module-local import already checked.
	for _, lp := range locals {
		if len(lp.GoFiles) == 0 {
			continue // test-only package (e.g. the module root)
		}
		pkg, err := m.check(lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.ours[lp.ImportPath] = pkg.Types
		m.Pkgs = append(m.Pkgs, pkg)
		m.byPath[lp.ImportPath] = pkg
	}
	return m, nil
}

// check parses and type-checks one package from source.
func (m *Module) check(path, dir string, goFiles []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range goFiles {
		fn := filepath.Join(dir, name)
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(m.Fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		m.srcs[fn] = src
		pkg.Filenames = append(pkg.Filenames, fn)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("package %s has no Go files", path)
	}
	pkg.Name = pkg.Files[0].Name.Name
	pkg.Info = newInfo()
	conf := types.Config{Importer: m.imp}
	tp, err := conf.Check(path, m.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.Types = tp
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// CheckDir type-checks the non-test Go files of dir as a standalone
// package whose import path is asPath, resolving imports through this
// module's importer. Fixture tests use it to compile a testdata package
// "as if" it lived at a simulation-critical import path, so the
// package-scoped analyzers treat it accordingly.
func (m *Module) CheckDir(dir, asPath string) (*Module, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			goFiles = append(goFiles, n)
		}
	}
	pkg, err := m.check(asPath, dir, goFiles)
	if err != nil {
		return nil, err
	}
	fm := &Module{
		Fset:   m.Fset,
		Pkgs:   []*Package{pkg},
		byPath: map[string]*Package{asPath: pkg},
		srcs:   m.srcs,
		imp:    m.imp,
	}
	return fm, nil
}
