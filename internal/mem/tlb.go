package mem

// This file implements the two-level local translation structure of
// Section 2 and Section 4.3: the local page table (LPT) resident in physical
// memory, and the local translation lookaside buffer (LTLB) that caches LPT
// entries. Each entry carries, besides the virtual-to-physical mapping,
// 2 status bits for each of the 64 blocks in the page ("These block status
// bits are used to provide fine grained control over 8 word blocks").

// BlockStatus is the state encoded by a block's 2 status bits (Section 4.3).
type BlockStatus uint8

const (
	BSInvalid   BlockStatus = iota // may not be read, written, or cached
	BSReadOnly                     // may be read, not written
	BSReadWrite                    // may be read or written
	BSDirty                        // read/write, written since copied here
)

func (b BlockStatus) String() string {
	switch b {
	case BSInvalid:
		return "INVALID"
	case BSReadOnly:
		return "READ-ONLY"
	case BSReadWrite:
		return "READ/WRITE"
	case BSDirty:
		return "DIRTY"
	}
	return "?"
}

// Readable reports whether a block in this state may be read.
func (b BlockStatus) Readable() bool { return b != BSInvalid }

// Writable reports whether a block in this state may be written.
func (b BlockStatus) Writable() bool { return b == BSReadWrite || b == BSDirty }

// PTE is a decoded page-table / LTLB entry. Its in-memory form is 4 words:
//
//	w0: vpn<<1 | valid
//	w1: ppn (physical page number)
//	w2: block status bits for blocks 0..31  (2 bits each)
//	w3: block status bits for blocks 32..63
type PTE struct {
	VPN    uint64
	PPN    uint64
	Valid  bool
	Status [2]uint64
}

// PTEWords is the size of an LPT entry in memory words.
const PTEWords = 4

// Encode packs the entry into its 4-word memory representation.
func (e *PTE) Encode() [PTEWords]uint64 {
	var w [PTEWords]uint64
	w[0] = e.VPN << 1
	if e.Valid {
		w[0] |= 1
	}
	w[1] = e.PPN
	w[2] = e.Status[0]
	w[3] = e.Status[1]
	return w
}

// DecodePTE unpacks a 4-word entry.
func DecodePTE(w [PTEWords]uint64) PTE {
	return PTE{
		VPN:    w[0] >> 1,
		Valid:  w[0]&1 != 0,
		PPN:    w[1],
		Status: [2]uint64{w[2], w[3]},
	}
}

// Block returns the status of block b (0..63) in the page.
func (e *PTE) Block(b int) BlockStatus {
	return BlockStatus(e.Status[b/32] >> ((b % 32) * 2) & 3)
}

// SetBlock updates the status of block b.
func (e *PTE) SetBlock(b int, s BlockStatus) {
	i, sh := b/32, uint((b%32)*2)
	e.Status[i] = e.Status[i]&^(3<<sh) | uint64(s)<<sh
}

// SetAllBlocks sets every block in the page to status s.
func (e *PTE) SetAllBlocks(s BlockStatus) {
	var w uint64
	for i := 0; i < 32; i++ {
		w |= uint64(s) << (i * 2)
	}
	e.Status[0], e.Status[1] = w, w
}

// LPT describes the local page table's placement in physical memory. The
// table is direct-mapped on the low bits of the virtual page number; each
// slot holds one 4-word entry. The software LTLB-miss handler walks it with
// physical loads (Section 4.2: "Software accesses the local page table").
type LPT struct {
	Base    uint64 // physical word address of entry 0
	Entries uint64 // number of slots; power of two
}

// SlotOf returns the physical word address of the LPT slot for vpn.
func (t LPT) SlotOf(vpn uint64) uint64 {
	return t.Base + (vpn&(t.Entries-1))*PTEWords
}

// Lookup reads the slot for vpn from physical memory and reports whether it
// holds a valid entry for that page. This is the zero-cost functional view
// used by boot code and tests; the runtime's handler performs the same walk
// with timed LDP operations.
func (t LPT) Lookup(s *SDRAM, vpn uint64) (PTE, bool) {
	var w [PTEWords]uint64
	slot := t.SlotOf(vpn)
	for i := range w {
		w[i], _ = s.Read(slot + uint64(i))
	}
	e := DecodePTE(w)
	return e, e.Valid && e.VPN == vpn
}

// Insert writes the entry into its slot in physical memory.
func (t LPT) Insert(s *SDRAM, e PTE) {
	w := e.Encode()
	slot := t.SlotOf(e.VPN)
	for i := range w {
		s.Write(slot+uint64(i), w[i], false)
	}
}

// LTLB is the hardware cache of LPT entries. It is fully associative with
// FIFO replacement; a miss raises an asynchronous event handled by software
// in the event V-Thread (Section 3.3).
type LTLB struct {
	entries  []PTE
	order    []int // FIFO of occupied slots
	capacity int   `snap:"derived,fixed at construction; decode bounds-checks against it"`

	Hits, Misses uint64
}

// NewLTLB creates an LTLB with the given number of entries.
func NewLTLB(capacity int) *LTLB {
	return &LTLB{capacity: capacity}
}

// Lookup returns a pointer to the resident entry for vpn, or nil on miss.
// The returned pointer aliases LTLB state: hardware updates block status
// in place (write hits mark blocks dirty, Section 4.3).
func (t *LTLB) Lookup(vpn uint64) *PTE {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			t.Hits++
			return &t.entries[i]
		}
	}
	t.Misses++
	return nil
}

// Insert installs an entry, evicting the oldest if full. It returns the
// evicted entry (valid=false if none) so the memory system can write its
// status bits back to the LPT.
func (t *LTLB) Insert(e PTE) PTE {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == e.VPN {
			old := t.entries[i]
			t.entries[i] = e
			return old
		}
	}
	if len(t.entries) < t.capacity {
		t.entries = append(t.entries, e)
		t.order = append(t.order, len(t.entries)-1)
		return PTE{}
	}
	victim := t.order[0]
	t.order = append(t.order[1:], victim)
	old := t.entries[victim]
	t.entries[victim] = e
	return old
}

// Invalidate drops the entry for vpn if resident, returning it so status
// bits can be written back.
func (t *LTLB) Invalidate(vpn uint64) PTE {
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			old := t.entries[i]
			t.entries[i].Valid = false
			return old
		}
	}
	return PTE{}
}

// Len returns the number of resident entries.
func (t *LTLB) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}
