package mem

// Checkpoint support (DESIGN.md, "Checkpoint/restore"): the memory
// system's complete timed state — sparse SDRAM chunks with their
// pointer-tag and synchronization bitmaps, cache lines, LTLB entries and
// FIFO order, in-flight responses, and the bank/SDRAM timing windows.
// EncodeState streams, DecodeSystemState rebuilds a detached scratch
// system (all validation happens here), and Adopt commits a scratch into
// a live system in place, preserving its configuration and I/O-bus device
// attachment.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/snap"
)

// Decode bounds against corrupt counts.
const (
	maxInflight = 1 << 20
	maxLTLB     = 1 << 16
)

// EncodeState writes the SDRAM's row-mode state, statistics, and the
// materialized chunks (lazy chunks that were never written are omitted —
// they read as zero either way).
func (s *SDRAM) EncodeState(w *snap.Writer) {
	w.U64(s.openRow)
	w.Bool(s.hasOpen)
	w.U64(s.RowHits)
	w.U64(s.RowMisses)
	n := 0
	for _, ch := range s.chunks {
		if ch != nil {
			n++
		}
	}
	w.Len(n)
	for i, ch := range s.chunks {
		if ch == nil {
			continue
		}
		w.Int(i)
		w.RawU64s(ch.words[:])
		w.RawU64s(ch.ptr[:])
		w.RawU64s(ch.sync[:])
	}
}

// DecodeSDRAMState reads an SDRAM written by EncodeState.
func DecodeSDRAMState(r *snap.Reader, cfg SDRAMConfig) *SDRAM {
	s := NewSDRAM(cfg)
	s.openRow = r.U64()
	s.hasOpen = r.Bool()
	s.RowHits = r.U64()
	s.RowMisses = r.U64()
	n := r.Len(len(s.chunks))
	for i := 0; i < n; i++ {
		idx := r.Int()
		if r.Err() != nil {
			break
		}
		if idx < 0 || idx >= len(s.chunks) {
			r.Fail(fmt.Errorf("mem: snapshot chunk index %d outside %d-chunk SDRAM", idx, len(s.chunks)))
			break
		}
		ch := new(sdramChunk)
		r.RawU64s(ch.words[:])
		r.RawU64s(ch.ptr[:])
		r.RawU64s(ch.sync[:])
		s.chunks[idx] = ch
	}
	return s
}

// Adopt replaces s's memory contents and row-mode state with src's.
func (s *SDRAM) Adopt(src *SDRAM) {
	s.chunks = src.chunks
	s.openRow = src.openRow
	s.hasOpen = src.hasOpen
	s.RowHits = src.RowHits
	s.RowMisses = src.RowMisses
}

// EncodeState writes the cache statistics and every valid line.
func (c *Cache) EncodeState(w *snap.Writer) {
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Writebacks)
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	w.Len(n)
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		w.Int(i)
		w.U64(ln.tag)
		w.U64(ln.vblock)
		w.U64(ln.physBase)
		w.Bool(ln.writable)
		w.Bool(ln.dirty)
		w.RawU64s(ln.words[:])
		for _, p := range ln.ptrs {
			w.Bool(p)
		}
	}
}

// DecodeCacheState reads a cache written by EncodeState.
func DecodeCacheState(r *snap.Reader, cfg CacheConfig) *Cache {
	c := NewCache(cfg)
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.Writebacks = r.U64()
	n := r.Len(len(c.lines))
	for i := 0; i < n; i++ {
		idx := r.Int()
		if r.Err() != nil {
			break
		}
		if idx < 0 || idx >= len(c.lines) {
			r.Fail(fmt.Errorf("mem: snapshot cache line %d outside %d-line cache", idx, len(c.lines)))
			break
		}
		ln := &c.lines[idx]
		ln.valid = true
		ln.tag = r.U64()
		ln.vblock = r.U64()
		ln.physBase = r.U64()
		ln.writable = r.Bool()
		ln.dirty = r.Bool()
		r.RawU64s(ln.words[:])
		for j := range ln.ptrs {
			ln.ptrs[j] = r.Bool()
		}
	}
	return c
}

// Adopt replaces c's lines and statistics with src's. The line array is
// taken over wholesale (the scratch cache was decoded with c's own
// configuration, so the geometry matches; nothing holds line pointers
// across calls).
func (c *Cache) Adopt(src *Cache) {
	c.lines = src.lines
	c.Hits = src.Hits
	c.Misses = src.Misses
	c.Writebacks = src.Writebacks
}

func encodePTE(w *snap.Writer, e *PTE) {
	w.U64(e.VPN)
	w.U64(e.PPN)
	w.Bool(e.Valid)
	w.U64(e.Status[0])
	w.U64(e.Status[1])
}

func decodePTE(r *snap.Reader) PTE {
	return PTE{
		VPN:    r.U64(),
		PPN:    r.U64(),
		Valid:  r.Bool(),
		Status: [2]uint64{r.U64(), r.U64()},
	}
}

// EncodeState writes the LTLB's entry slots (including invalidated ones —
// the FIFO order indexes into them), replacement order, and statistics.
func (t *LTLB) EncodeState(w *snap.Writer) {
	w.Len(len(t.entries))
	for i := range t.entries {
		encodePTE(w, &t.entries[i])
	}
	w.Len(len(t.order))
	for _, i := range t.order {
		w.Int(i)
	}
	w.U64(t.Hits)
	w.U64(t.Misses)
}

// DecodeLTLBState reads an LTLB written by EncodeState.
func DecodeLTLBState(r *snap.Reader, capacity int) *LTLB {
	t := NewLTLB(capacity)
	n := r.Len(maxLTLB)
	for i := 0; i < n; i++ {
		t.entries = append(t.entries, decodePTE(r))
	}
	no := r.Len(maxLTLB)
	for i := 0; i < no; i++ {
		slot := r.Int()
		if r.Err() == nil && (slot < 0 || slot >= n) {
			r.Fail(fmt.Errorf("mem: snapshot LTLB order slot %d outside %d entries", slot, n))
			break
		}
		t.order = append(t.order, slot)
	}
	if r.Err() == nil && n > capacity {
		r.Fail(fmt.Errorf("mem: snapshot LTLB has %d entries, capacity %d", n, capacity))
	}
	t.Hits = r.U64()
	t.Misses = r.U64()
	return t
}

// Adopt replaces t's entries, order, and statistics with src's, keeping
// t's capacity.
func (t *LTLB) Adopt(src *LTLB) {
	t.entries = append(t.entries[:0], src.entries...)
	t.order = append(t.order[:0], src.order...)
	t.Hits = src.Hits
	t.Misses = src.Misses
}

func encodeRequest(w *snap.Writer, q *Request) {
	w.U64(uint64(q.Kind))
	w.U64(q.Addr)
	w.U64(q.Data)
	w.Bool(q.DataPtr)
	w.U64(uint64(q.Pre))
	w.U64(uint64(q.Post))
	w.U64(q.Token)
}

func decodeRequest(r *snap.Reader) Request {
	q := Request{
		Kind:    Kind(r.U64()),
		Addr:    r.U64(),
		Data:    r.U64(),
		DataPtr: r.Bool(),
		Pre:     isa.SyncCond(r.U64()),
		Post:    isa.SyncCond(r.U64()),
		Token:   r.U64(),
	}
	if r.Err() == nil && (q.Kind > ReqWritePhys || q.Pre > isa.SyncEmpty || q.Post > isa.SyncEmpty) {
		r.Fail(fmt.Errorf("mem: bad snapshot request kind=%d pre=%d post=%d", q.Kind, q.Pre, q.Post))
	}
	return q
}

// EncodeState writes the memory system's own timed state (the SDRAM,
// cache, and LTLB follow): in-flight responses in submission order, the
// per-bank and SDRAM busy windows, and the fault counters.
func (m *System) EncodeState(w *snap.Writer) {
	w.Len(len(m.inflight))
	for i := range m.inflight {
		resp := &m.inflight[i]
		encodeRequest(w, &resp.Req)
		w.U64(resp.Data)
		w.Bool(resp.DataPtr)
		w.U64(uint64(resp.Fault))
		w.I64(resp.ReadyAt)
	}
	for _, b := range m.bankFreeAt {
		w.I64(b)
	}
	w.I64(m.sdramFree)
	w.U64(m.LTLBFaults)
	w.U64(m.StatusFaults)
	w.U64(m.SyncFaults)
	m.SDRAM.EncodeState(w)
	m.Cache.EncodeState(w)
	m.LTLB.EncodeState(w)
}

// DecodeSystemState reads a memory system written by EncodeState into a
// detached scratch system built from cfg. The earliest-deadline cache is
// recomputed from the decoded in-flight set.
func DecodeSystemState(r *snap.Reader, cfg Config) *System {
	m := NewSystem(cfg)
	n := r.Len(maxInflight)
	for i := 0; i < n; i++ {
		resp := Response{
			Req:     decodeRequest(r),
			Data:    r.U64(),
			DataPtr: r.Bool(),
			Fault:   Fault(r.U64()),
			ReadyAt: r.I64(),
		}
		if r.Err() == nil && resp.Fault > FaultSync {
			r.Fail(fmt.Errorf("mem: bad snapshot fault %d", resp.Fault))
			break
		}
		m.inflight = append(m.inflight, resp)
		if resp.ReadyAt < m.earliest {
			m.earliest = resp.ReadyAt
		}
	}
	for i := range m.bankFreeAt {
		m.bankFreeAt[i] = r.I64()
	}
	m.sdramFree = r.I64()
	m.LTLBFaults = r.U64()
	m.StatusFaults = r.U64()
	m.SyncFaults = r.U64()
	m.SDRAM = DecodeSDRAMState(r, cfg.SDRAM)
	m.Cache = DecodeCacheState(r, cfg.Cache)
	m.LTLB = DecodeLTLBState(r, cfg.LTLBEntries)
	return m
}

// PendingResponses exposes the in-flight responses for cross-component
// snapshot validation: chip decode verifies every response has routable
// request metadata before Restore commits anything. Callers must not
// mutate the returned slice.
func (m *System) PendingResponses() []Response { return m.inflight }

// Adopt replaces m's mutable state with src's, keeping the configuration
// and the I/O-bus device attachment. The SDRAM, cache, and LTLB objects
// are adopted in place so pointers held by callers stay valid.
func (m *System) Adopt(src *System) {
	m.inflight = append(m.inflight[:0], src.inflight...)
	m.earliest = src.earliest
	m.bankFreeAt = src.bankFreeAt
	m.sdramFree = src.sdramFree
	m.LTLBFaults = src.LTLBFaults
	m.StatusFaults = src.StatusFaults
	m.SyncFaults = src.SyncFaults
	m.SDRAM.Adopt(src.SDRAM)
	m.Cache.Adopt(src.Cache)
	m.LTLB.Adopt(src.LTLB)
}
