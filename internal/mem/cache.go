package mem

// The on-chip cache (Section 2, "Memory System"): 4 word-interleaved banks
// totalling 16 KW (128 KBytes of state in the paper's terms: 4 x 4KW banks,
// 32KB each), virtually addressed and tagged, with 8-word lines matching the
// block-status granularity. The banks are pipelined with a 3-cycle read
// latency including switch traversal.
//
// Word interleaving assigns word address a to bank a mod 4, so four
// consecutive word accesses proceed in parallel. A line logically spans the
// four banks (two words per bank); the model keeps the line as a unit and
// enforces per-bank port conflicts at the word level.

// CacheConfig sizes the cache.
type CacheConfig struct {
	Lines int // total lines (8 words each) across all banks
}

// DefaultCacheConfig is the paper's 4 x 4KW configuration: 16 KW / 8 = 2048
// lines, direct mapped.
func DefaultCacheConfig() CacheConfig { return CacheConfig{Lines: 2048} }

type cacheLine struct {
	valid    bool
	tag      uint64 // virtual block address / number of lines
	vblock   uint64 // virtual block address (addr / 8)
	physBase uint64 // physical word address of the block's first word
	writable bool   // fill-time block status allowed writes
	dirty    bool
	words    [BlockWords]uint64
	ptrs     [BlockWords]bool
}

// Cache is the node's on-chip data cache.
type Cache struct {
	cfg   CacheConfig `snap:"derived,fixed at construction; decode validates against it"`
	lines []cacheLine

	Hits, Misses, Writebacks uint64
}

// NewCache allocates the cache.
func NewCache(cfg CacheConfig) *Cache {
	return &Cache{cfg: cfg, lines: make([]cacheLine, cfg.Lines)}
}

func (c *Cache) lineFor(vaddr uint64) (*cacheLine, bool) {
	vblock := vaddr / BlockWords
	ln := &c.lines[vblock%uint64(len(c.lines))]
	return ln, ln.valid && ln.vblock == vblock
}

// Lookup probes the cache for vaddr without side effects on contents.
func (c *Cache) Lookup(vaddr uint64) (*cacheLine, bool) {
	ln, hit := c.lineFor(vaddr)
	if hit {
		c.Hits++
	} else {
		c.Misses++
	}
	return ln, hit
}

// Fill replaces the line for vaddr with the block read from SDRAM and
// returns the evicted line so dirty data can be written back. writable
// records the fill-time block status for later write-hit permission checks.
func (c *Cache) Fill(s *SDRAM, vaddr, physBase uint64, writable bool) cacheLine {
	vblock := vaddr / BlockWords
	ln := &c.lines[vblock%uint64(len(c.lines))]
	victim := *ln
	ln.valid = true
	ln.vblock = vblock
	ln.tag = vblock / uint64(len(c.lines))
	ln.physBase = physBase &^ (BlockWords - 1)
	ln.writable = writable
	ln.dirty = false
	for i := uint64(0); i < BlockWords; i++ {
		ln.words[i], ln.ptrs[i] = s.Read(ln.physBase + i)
	}
	return victim
}

// WriteBack flushes a victim line's words to SDRAM if dirty.
func (c *Cache) WriteBack(s *SDRAM, ln cacheLine) {
	if !ln.valid || !ln.dirty {
		return
	}
	c.Writebacks++
	for i := uint64(0); i < BlockWords; i++ {
		s.Write(ln.physBase+i, ln.words[i], ln.ptrs[i])
	}
}

// InvalidateBlock drops the line holding the block containing vaddr,
// writing it back first if dirty. Used by the block-status handlers when a
// block's state changes under software control (Section 4.3).
func (c *Cache) InvalidateBlock(s *SDRAM, vaddr uint64) {
	ln, hit := c.lineFor(vaddr)
	if hit {
		c.WriteBack(s, *ln)
		ln.valid = false
	}
}

// FlushAll writes back every dirty line and invalidates the cache.
func (c *Cache) FlushAll(s *SDRAM) {
	for i := range c.lines {
		if c.lines[i].valid {
			c.WriteBack(s, c.lines[i])
			c.lines[i].valid = false
		}
	}
}

// BankOf returns the cache bank (0..3) serving word address a; consecutive
// words map to consecutive banks ("four word-interleaved banks").
func BankOf(vaddr uint64) int { return int(vaddr % 4) }
