package mem

import (
	"bytes"
	"testing"

	"repro/internal/snap"
	"repro/internal/snap/snaptest"
)

// TestLTLBFieldRoundTrip mutates every serializable LTLB field and
// asserts the encoding both sees the change and round-trips it.
func TestLTLBFieldRoundTrip(t *testing.T) {
	lt := NewLTLB(4)
	lt.entries = []PTE{
		{VPN: 3, PPN: 9, Valid: true, Status: [2]uint64{1, 2}},
		{VPN: 4, PPN: 10},
	}
	lt.order = []int{1, 0}
	lt.Hits, lt.Misses = 2, 7
	snaptest.Fields(t, lt, snaptest.Codec[LTLB]{
		Encode: func(lt *LTLB) []byte { return snaptest.Encode(t, lt.EncodeState) },
		Decode: func(data []byte) (*LTLB, error) {
			r := snap.NewReader(bytes.NewReader(data))
			d := DecodeLTLBState(r, 4)
			return d, r.Err()
		},
		Mutate: map[string]func(*LTLB) func(){
			"entries": func(lt *LTLB) func() {
				lt.entries[0].VPN ^= 1
				return func() { lt.entries[0].VPN ^= 1 }
			},
			// Order slots are range-checked at decode; swapping two
			// valid slots stays inside the checked space.
			"order": func(lt *LTLB) func() {
				lt.order[0], lt.order[1] = lt.order[1], lt.order[0]
				return func() { lt.order[0], lt.order[1] = lt.order[1], lt.order[0] }
			},
		},
	})
}
