// Package mem implements an M-Machine node's memory system (Section 2,
// "Memory System", and Section 4.3): the external SDRAM with page-mode
// timing, the four word-interleaved on-chip cache banks, the local
// translation lookaside buffer (LTLB) backed by a local page table (LPT)
// resident in physical memory, the per-cache-block status bits used for
// caching remote data in local DRAM, and the per-word synchronization bits.
//
// All addresses are 64-bit word addresses. Pages are 512 words and cache
// blocks 8 words, exactly as in the paper.
package mem

import "fmt"

// Architectural constants (Section 2).
const (
	PageWords     = 512 // "Pages are 512 words"
	BlockWords    = 8   // "(64 8-word cache blocks)"
	BlocksPerPage = PageWords / BlockWords
)

// SDRAMConfig carries the external memory interface timing (Section 2: "The
// SDRAM controller exploits the pipeline and page mode of the external
// memory").
type SDRAMConfig struct {
	Words      uint64 // physical memory size in words (1 MW = 8 MBytes per node)
	RowWords   uint64 // words per SDRAM row (page-mode granularity)
	RowHitLat  int64  // block access latency when the row is already open
	RowMissLat int64  // block access latency when a new row must be opened
}

// DefaultSDRAMConfig matches the paper's 1 MW (8 MByte) node and is
// calibrated so that a local cache-miss read completes in 13 cycles and a
// local cache-miss write in 19 (Table 1).
func DefaultSDRAMConfig() SDRAMConfig {
	return SDRAMConfig{
		Words:      1 << 20, // 1 MW = 8 MBytes
		RowWords:   1024,
		RowHitLat:  10,
		RowMissLat: 14,
	}
}

// chunkWords is the lazily-materialized SDRAM allocation granule: storage
// for a chunk (data words plus the out-of-band pointer-tag and
// synchronization bits) is allocated on first write. Untouched physical
// memory reads as zero either way, so laziness is invisible to programs,
// but booting a node costs microseconds instead of zeroing 8 MBytes — the
// dominant cost of experiment harnesses that build many fresh machines.
const chunkWords = 1 << 13 // 8 KW = 64 KBytes of data per chunk

type sdramChunk struct {
	words [chunkWords]uint64
	ptr   [chunkWords / 64]uint64
	sync  [chunkWords / 64]uint64
}

// SDRAM models a node's local synchronous DRAM: the word array plus the
// out-of-band pointer-tag and synchronization bits, and page-mode timing
// state. The SECDED error control of the paper's controller is represented
// by the (always-passing) integrity of the Go arrays; no latency is added,
// matching a no-error run.
type SDRAM struct {
	cfg     SDRAMConfig `snap:"derived,fixed at construction; decode validates against it"`
	chunks  []*sdramChunk
	openRow uint64
	hasOpen bool

	// Stats.
	RowHits, RowMisses uint64
}

// NewSDRAM builds the physical memory; storage materializes on first write.
func NewSDRAM(cfg SDRAMConfig) *SDRAM {
	return &SDRAM{
		cfg:    cfg,
		chunks: make([]*sdramChunk, (cfg.Words+chunkWords-1)/chunkWords),
	}
}

// chunkFor returns the chunk containing pa, materializing it if needed.
func (s *SDRAM) chunkFor(pa uint64) *sdramChunk {
	ch := s.chunks[pa/chunkWords]
	if ch == nil {
		ch = new(sdramChunk)
		s.chunks[pa/chunkWords] = ch
	}
	return ch
}

// Size returns the physical capacity in words.
func (s *SDRAM) Size() uint64 { return s.cfg.Words }

func (s *SDRAM) check(pa uint64) {
	if pa >= s.cfg.Words {
		panic(fmt.Sprintf("mem: physical address %#x out of range (%#x words)", pa, s.cfg.Words))
	}
}

// Read returns the word and pointer tag at physical address pa.
func (s *SDRAM) Read(pa uint64) (uint64, bool) {
	s.check(pa)
	ch := s.chunks[pa/chunkWords]
	if ch == nil {
		return 0, false
	}
	off := pa % chunkWords
	return ch.words[off], ch.ptr[off/64]&(1<<(off%64)) != 0
}

// Write stores a word and its pointer tag at physical address pa.
func (s *SDRAM) Write(pa uint64, w uint64, ptr bool) {
	s.check(pa)
	ch := s.chunkFor(pa)
	off := pa % chunkWords
	ch.words[off] = w
	if ptr {
		ch.ptr[off/64] |= 1 << (off % 64)
	} else {
		ch.ptr[off/64] &^= 1 << (off % 64)
	}
}

// SyncBit returns the synchronization bit for physical address pa.
func (s *SDRAM) SyncBit(pa uint64) bool {
	s.check(pa)
	ch := s.chunks[pa/chunkWords]
	if ch == nil {
		return false
	}
	return ch.sync[pa%chunkWords/64]&(1<<(pa%64)) != 0
}

// SetSyncBit sets or clears the synchronization bit for pa.
func (s *SDRAM) SetSyncBit(pa uint64, full bool) {
	s.check(pa)
	if !full && s.chunks[pa/chunkWords] == nil {
		return // untouched memory is already empty
	}
	ch := s.chunkFor(pa)
	if full {
		ch.sync[pa%chunkWords/64] |= 1 << (pa % 64)
	} else {
		ch.sync[pa%chunkWords/64] &^= 1 << (pa % 64)
	}
}

// AccessLatency returns the latency of a block access beginning at physical
// address pa and records the row state transition (page mode).
func (s *SDRAM) AccessLatency(pa uint64) int64 {
	s.check(pa)
	row := pa / s.cfg.RowWords
	if s.hasOpen && row == s.openRow {
		s.RowHits++
		return s.cfg.RowHitLat
	}
	s.openRow = row
	s.hasOpen = true
	s.RowMisses++
	return s.cfg.RowMissLat
}
