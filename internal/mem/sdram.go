// Package mem implements an M-Machine node's memory system (Section 2,
// "Memory System", and Section 4.3): the external SDRAM with page-mode
// timing, the four word-interleaved on-chip cache banks, the local
// translation lookaside buffer (LTLB) backed by a local page table (LPT)
// resident in physical memory, the per-cache-block status bits used for
// caching remote data in local DRAM, and the per-word synchronization bits.
//
// All addresses are 64-bit word addresses. Pages are 512 words and cache
// blocks 8 words, exactly as in the paper.
package mem

import "fmt"

// Architectural constants (Section 2).
const (
	PageWords     = 512 // "Pages are 512 words"
	BlockWords    = 8   // "(64 8-word cache blocks)"
	BlocksPerPage = PageWords / BlockWords
)

// SDRAMConfig carries the external memory interface timing (Section 2: "The
// SDRAM controller exploits the pipeline and page mode of the external
// memory").
type SDRAMConfig struct {
	Words      uint64 // physical memory size in words (1 MW = 8 MBytes per node)
	RowWords   uint64 // words per SDRAM row (page-mode granularity)
	RowHitLat  int64  // block access latency when the row is already open
	RowMissLat int64  // block access latency when a new row must be opened
}

// DefaultSDRAMConfig matches the paper's 1 MW (8 MByte) node and is
// calibrated so that a local cache-miss read completes in 13 cycles and a
// local cache-miss write in 19 (Table 1).
func DefaultSDRAMConfig() SDRAMConfig {
	return SDRAMConfig{
		Words:      1 << 20, // 1 MW = 8 MBytes
		RowWords:   1024,
		RowHitLat:  10,
		RowMissLat: 14,
	}
}

// SDRAM models a node's local synchronous DRAM: the word array plus the
// out-of-band pointer-tag and synchronization bits, and page-mode timing
// state. The SECDED error control of the paper's controller is represented
// by the (always-passing) integrity of the Go arrays; no latency is added,
// matching a no-error run.
type SDRAM struct {
	cfg     SDRAMConfig
	words   []uint64
	ptrTags bitset
	sync    bitset
	openRow uint64
	hasOpen bool

	// Stats.
	RowHits, RowMisses uint64
}

// NewSDRAM allocates the physical memory arrays.
func NewSDRAM(cfg SDRAMConfig) *SDRAM {
	return &SDRAM{
		cfg:     cfg,
		words:   make([]uint64, cfg.Words),
		ptrTags: newBitset(cfg.Words),
		sync:    newBitset(cfg.Words),
	}
}

// Size returns the physical capacity in words.
func (s *SDRAM) Size() uint64 { return s.cfg.Words }

func (s *SDRAM) check(pa uint64) {
	if pa >= s.cfg.Words {
		panic(fmt.Sprintf("mem: physical address %#x out of range (%#x words)", pa, s.cfg.Words))
	}
}

// Read returns the word and pointer tag at physical address pa.
func (s *SDRAM) Read(pa uint64) (uint64, bool) {
	s.check(pa)
	return s.words[pa], s.ptrTags.get(pa)
}

// Write stores a word and its pointer tag at physical address pa.
func (s *SDRAM) Write(pa uint64, w uint64, ptr bool) {
	s.check(pa)
	s.words[pa] = w
	s.ptrTags.set(pa, ptr)
}

// SyncBit returns the synchronization bit for physical address pa.
func (s *SDRAM) SyncBit(pa uint64) bool {
	s.check(pa)
	return s.sync.get(pa)
}

// SetSyncBit sets or clears the synchronization bit for pa.
func (s *SDRAM) SetSyncBit(pa uint64, full bool) {
	s.check(pa)
	s.sync.set(pa, full)
}

// AccessLatency returns the latency of a block access beginning at physical
// address pa and records the row state transition (page mode).
func (s *SDRAM) AccessLatency(pa uint64) int64 {
	s.check(pa)
	row := pa / s.cfg.RowWords
	if s.hasOpen && row == s.openRow {
		s.RowHits++
		return s.cfg.RowHitLat
	}
	s.openRow = row
	s.hasOpen = true
	s.RowMisses++
	return s.cfg.RowMissLat
}

// bitset is a packed bit array used for the out-of-band per-word state.
type bitset []uint64

func newBitset(n uint64) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i uint64) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) set(i uint64, v bool) {
	if v {
		b[i/64] |= 1 << (i % 64)
	} else {
		b[i/64] &^= 1 << (i % 64)
	}
}
