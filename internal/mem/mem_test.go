package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func newSys(t *testing.T) *System {
	t.Helper()
	return NewSystem(DefaultConfig())
}

// sysClock tracks a quiesce time per System so successive run calls issue
// back-to-back but never overlap in the pipeline.
var sysClock = map[*System]int64{}

// run submits a request once the system is quiescent and steps until the
// response appears. The returned ReadyAt is normalized to the submit cycle,
// i.e. it is the request's latency.
func run(t *testing.T, m *System, req Request) Response {
	t.Helper()
	t0 := sysClock[m]
	for !m.CanAccept(t0, req.Addr) {
		t0++
	}
	m.Submit(t0, req)
	var got Response
	found := false
	for now := t0; m.Pending() > 0 && now < t0+10000; now++ {
		for _, r := range m.Step(now) {
			if r.ReadyAt+1 > sysClock[m] {
				sysClock[m] = r.ReadyAt + 1
			}
			if r.Req.Token == req.Token {
				r.ReadyAt -= t0
				got = r
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("request %+v never completed", req)
	}
	return got
}

func TestPTEEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vpn, ppn uint64, s0, s1 uint64, valid bool) bool {
		e := PTE{VPN: vpn & (1<<62 - 1), PPN: ppn, Valid: valid, Status: [2]uint64{s0, s1}}
		d := DecodePTE(e.Encode())
		return d == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTEBlockStatusBits(t *testing.T) {
	var e PTE
	for b := 0; b < BlocksPerPage; b++ {
		want := BlockStatus(b % 4)
		e.SetBlock(b, want)
		if got := e.Block(b); got != want {
			t.Fatalf("block %d = %v, want %v", b, got, want)
		}
	}
	// Setting one block must not disturb its neighbours.
	for b := 0; b < BlocksPerPage; b++ {
		if got, want := e.Block(b), BlockStatus(b%4); got != want {
			t.Errorf("block %d clobbered: %v, want %v", b, got, want)
		}
	}
	e.SetAllBlocks(BSReadWrite)
	for b := 0; b < BlocksPerPage; b++ {
		if e.Block(b) != BSReadWrite {
			t.Fatalf("SetAllBlocks missed block %d", b)
		}
	}
}

func TestBlockStatusPredicates(t *testing.T) {
	cases := []struct {
		s           BlockStatus
		read, write bool
	}{
		{BSInvalid, false, false},
		{BSReadOnly, true, false},
		{BSReadWrite, true, true},
		{BSDirty, true, true},
	}
	for _, c := range cases {
		if c.s.Readable() != c.read || c.s.Writable() != c.write {
			t.Errorf("%v: readable=%v writable=%v, want %v/%v",
				c.s, c.s.Readable(), c.s.Writable(), c.read, c.write)
		}
	}
}

func TestLPTInsertLookup(t *testing.T) {
	s := NewSDRAM(DefaultSDRAMConfig())
	lpt := LPT{Base: 1 << 18, Entries: 1024}
	e := PTE{VPN: 42, PPN: 7, Valid: true}
	e.SetAllBlocks(BSReadWrite)
	lpt.Insert(s, e)
	got, ok := lpt.Lookup(s, 42)
	if !ok || got != e {
		t.Fatalf("Lookup = %+v, %v; want %+v", got, ok, e)
	}
	// A conflicting VPN (same slot) must not match.
	if _, ok := lpt.Lookup(s, 42+1024); ok {
		t.Error("conflicting vpn matched")
	}
}

func TestLTLBFIFOEviction(t *testing.T) {
	tlb := NewLTLB(2)
	mk := func(vpn uint64) PTE { return PTE{VPN: vpn, Valid: true} }
	tlb.Insert(mk(1))
	tlb.Insert(mk(2))
	if v := tlb.Insert(mk(3)); !v.Valid || v.VPN != 1 {
		t.Fatalf("evicted %+v, want vpn 1", v)
	}
	if tlb.Lookup(1) != nil {
		t.Error("vpn 1 still resident after eviction")
	}
	if tlb.Lookup(2) == nil || tlb.Lookup(3) == nil {
		t.Error("vpn 2/3 should be resident")
	}
	// Re-inserting a resident vpn replaces in place, no eviction.
	if v := tlb.Insert(mk(2)); !v.Valid || v.VPN != 2 {
		t.Errorf("replace returned %+v", v)
	}
	if tlb.Len() != 2 {
		t.Errorf("Len = %d, want 2", tlb.Len())
	}
}

func TestLTLBInvalidate(t *testing.T) {
	tlb := NewLTLB(4)
	tlb.Insert(PTE{VPN: 5, Valid: true})
	if v := tlb.Invalidate(5); !v.Valid {
		t.Fatal("Invalidate returned invalid entry")
	}
	if tlb.Lookup(5) != nil {
		t.Error("entry still resident")
	}
	if v := tlb.Invalidate(5); v.Valid {
		t.Error("second Invalidate returned valid entry")
	}
}

// Table 1 local rows: read hit 3, write hit 2, read miss 13, write miss 19.
func TestLocalAccessLatencies(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)

	// Prime an open SDRAM row so the miss takes the row-hit latency.
	m.SDRAM.AccessLatency(0)

	r := run(t, m, Request{Kind: ReqRead, Addr: 8, Token: 1})
	if r.Fault != FaultNone || r.ReadyAt != 13 {
		t.Errorf("read miss: fault=%v ready=%d, want none/13", r.Fault, r.ReadyAt)
	}
	r = run(t, m, Request{Kind: ReqRead, Addr: 9, Token: 2})
	if r.ReadyAt != 3 {
		t.Errorf("read hit: ready=%d, want 3", r.ReadyAt)
	}
	r = run(t, m, Request{Kind: ReqWrite, Addr: 10, Data: 99, Token: 3})
	if r.ReadyAt != 2 {
		t.Errorf("write hit: ready=%d, want 2", r.ReadyAt)
	}
	r = run(t, m, Request{Kind: ReqWrite, Addr: 64, Data: 1, Token: 4})
	if r.ReadyAt != 19 {
		t.Errorf("write miss: ready=%d, want 19", r.ReadyAt)
	}
}

func TestReadBackAfterWrite(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	run(t, m, Request{Kind: ReqWrite, Addr: 5, Data: 12345, Token: 1})
	r := run(t, m, Request{Kind: ReqRead, Addr: 5, Token: 2})
	if r.Data != 12345 {
		t.Errorf("read back %d, want 12345", r.Data)
	}
}

func TestPointerTagPropagation(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	run(t, m, Request{Kind: ReqWrite, Addr: 3, Data: 77, DataPtr: true, Token: 1})
	r := run(t, m, Request{Kind: ReqRead, Addr: 3, Token: 2})
	if !r.DataPtr {
		t.Error("pointer tag lost through cache")
	}
	// Flush and re-read through SDRAM.
	m.Cache.FlushAll(m.SDRAM)
	r = run(t, m, Request{Kind: ReqRead, Addr: 3, Token: 3})
	if !r.DataPtr || r.Data != 77 {
		t.Errorf("after flush: data=%d ptr=%v", r.Data, r.DataPtr)
	}
}

func TestLTLBMissFault(t *testing.T) {
	m := newSys(t)
	m.MapPageLPTOnly(4, 4, BSReadWrite) // in LPT but not LTLB
	r := run(t, m, Request{Kind: ReqRead, Addr: 4 * PageWords, Token: 1})
	if r.Fault != FaultLTLBMiss {
		t.Fatalf("fault = %v, want ltlb-miss", r.Fault)
	}
	if r.ReadyAt != DefaultConfig().MissDetectLat {
		t.Errorf("fault detected at %d, want %d", r.ReadyAt, DefaultConfig().MissDetectLat)
	}
	// After software installs the entry, the access succeeds.
	e := PTE{VPN: 4, PPN: 4, Valid: true}
	e.SetAllBlocks(BSReadWrite)
	m.TLBInstall(e.Encode())
	r = run(t, m, Request{Kind: ReqRead, Addr: 4 * PageWords, Token: 2})
	if r.Fault != FaultNone {
		t.Errorf("after TLBInstall: fault = %v", r.Fault)
	}
}

func TestBlockStatusFaults(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSInvalid)
	r := run(t, m, Request{Kind: ReqRead, Addr: 0, Token: 1})
	if r.Fault != FaultStatus {
		t.Errorf("read INVALID: fault = %v, want block-status", r.Fault)
	}

	m2 := newSys(t)
	m2.MapPage(0, 0, BSReadOnly)
	r = run(t, m2, Request{Kind: ReqRead, Addr: 0, Token: 1})
	if r.Fault != FaultNone {
		t.Errorf("read READ-ONLY: fault = %v", r.Fault)
	}
	r = run(t, m2, Request{Kind: ReqWrite, Addr: 1, Data: 1, Token: 2})
	if r.Fault != FaultStatus {
		t.Errorf("write READ-ONLY: fault = %v, want block-status", r.Fault)
	}
}

func TestWriteHitOnReadOnlyLineFaults(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadOnly)
	// Fill the line via a read, then attempt a write hit.
	run(t, m, Request{Kind: ReqRead, Addr: 0, Token: 1})
	r := run(t, m, Request{Kind: ReqWrite, Addr: 0, Data: 1, Token: 2})
	if r.Fault != FaultStatus {
		t.Errorf("write hit on RO line: fault = %v, want block-status", r.Fault)
	}
}

func TestWriteMarksBlockDirty(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	run(t, m, Request{Kind: ReqWrite, Addr: 17, Data: 5, Token: 1})
	if st := m.BlockStatusOf(17); st != BSDirty {
		t.Errorf("block status = %v, want DIRTY", st)
	}
	// The LPT copy must be updated too.
	pte, ok := m.cfg.LPT.Lookup(m.SDRAM, 0)
	if !ok || pte.Block(2) != BSDirty {
		t.Errorf("LPT block status = %v (ok=%v), want DIRTY", pte.Block(2), ok)
	}
	// Untouched blocks stay READ/WRITE.
	if st := m.BlockStatusOf(100); st != BSReadWrite {
		t.Errorf("untouched block = %v, want READ/WRITE", st)
	}
}

func TestSyncBitPreconditions(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)

	// Producer: store with post=full.
	r := run(t, m, Request{Kind: ReqWrite, Addr: 20, Data: 9, Post: isa.SyncFull, Token: 1})
	if r.Fault != FaultNone {
		t.Fatalf("producer store fault: %v", r.Fault)
	}
	if b, _ := m.SyncVirt(20); !b {
		t.Fatal("sync bit not set by postcondition")
	}
	// Consumer: load requiring full, leaving empty.
	r = run(t, m, Request{Kind: ReqRead, Addr: 20, Pre: isa.SyncFull, Post: isa.SyncEmpty, Token: 2})
	if r.Fault != FaultNone || r.Data != 9 {
		t.Fatalf("consumer load: fault=%v data=%d", r.Fault, r.Data)
	}
	// Second consume faults: bit is now empty.
	r = run(t, m, Request{Kind: ReqRead, Addr: 20, Pre: isa.SyncFull, Token: 3})
	if r.Fault != FaultSync {
		t.Errorf("second consume: fault = %v, want sync", r.Fault)
	}
	// Store requiring empty succeeds now.
	r = run(t, m, Request{Kind: ReqWrite, Addr: 20, Data: 10, Pre: isa.SyncEmpty, Post: isa.SyncFull, Token: 4})
	if r.Fault != FaultNone {
		t.Errorf("store-on-empty: fault = %v", r.Fault)
	}
}

func TestPhysicalAccessBypass(t *testing.T) {
	m := newSys(t)
	r := run(t, m, Request{Kind: ReqWritePhys, Addr: 0x500, Data: 42, Token: 1})
	if r.ReadyAt != DefaultConfig().PhysAccessLat {
		t.Errorf("stp latency = %d, want %d", r.ReadyAt, DefaultConfig().PhysAccessLat)
	}
	r = run(t, m, Request{Kind: ReqReadPhys, Addr: 0x500, Token: 2})
	if r.Data != 42 {
		t.Errorf("ldp read %d, want 42", r.Data)
	}
}

func TestPhysWriteUpdatesCachedCopy(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	run(t, m, Request{Kind: ReqRead, Addr: 0, Token: 1}) // fill line for block 0
	run(t, m, Request{Kind: ReqWritePhys, Addr: 2, Data: 88, Token: 2})
	r := run(t, m, Request{Kind: ReqRead, Addr: 2, Token: 3})
	if r.Data != 88 {
		t.Errorf("cached copy stale: read %d, want 88", r.Data)
	}
}

func TestDirtyVictimWriteBack(t *testing.T) {
	m := newSys(t)
	cfgLines := uint64(DefaultConfig().Cache.Lines)
	m.MapPage(0, 0, BSReadWrite)
	// Map a second page whose blocks collide with page 0's lines.
	conflictVPN := cfgLines * BlockWords / PageWords // first vpn whose block 0 maps to line 0
	m.MapPage(conflictVPN, 1, BSReadWrite)

	run(t, m, Request{Kind: ReqWrite, Addr: 0, Data: 111, Token: 1})
	// Evict by touching the conflicting address.
	run(t, m, Request{Kind: ReqRead, Addr: conflictVPN * PageWords, Token: 2})
	if m.Cache.Writebacks == 0 {
		t.Fatal("no writeback recorded")
	}
	// The dirty data must be in SDRAM.
	if w, _ := m.SDRAM.Read(0); w != 111 {
		t.Errorf("SDRAM word = %d, want 111", w)
	}
}

func TestSetBlockStatusInvalidatesCache(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	run(t, m, Request{Kind: ReqRead, Addr: 0, Token: 1})
	m.SetBlockStatus(0, BSInvalid)
	r := run(t, m, Request{Kind: ReqRead, Addr: 0, Token: 2})
	if r.Fault != FaultStatus {
		t.Errorf("read after invalidate: fault = %v, want block-status", r.Fault)
	}
}

func TestBankConflictDetection(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	if !m.CanAccept(0, 0) {
		t.Fatal("bank 0 should accept at cycle 0")
	}
	m.Submit(0, Request{Kind: ReqRead, Addr: 0, Token: 1})
	if m.CanAccept(0, 4) {
		t.Error("bank 0 accepted two requests in one cycle (addresses 0 and 4)")
	}
	if !m.CanAccept(0, 1) {
		t.Error("bank 1 should be free (word-interleaved)")
	}
	if !m.CanAccept(1, 4) {
		t.Error("bank 0 should be free next cycle")
	}
}

func TestFourBanksAcceptFourWordsPerCycle(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	for a := uint64(0); a < 4; a++ {
		if !m.CanAccept(0, a) {
			t.Fatalf("bank %d rejected parallel access", a)
		}
		m.Submit(0, Request{Kind: ReqRead, Addr: a, Token: a})
	}
}

func TestSDRAMPageMode(t *testing.T) {
	s := NewSDRAM(DefaultSDRAMConfig())
	first := s.AccessLatency(0)
	if first != DefaultSDRAMConfig().RowMissLat {
		t.Errorf("first access lat = %d, want row miss %d", first, DefaultSDRAMConfig().RowMissLat)
	}
	second := s.AccessLatency(8)
	if second != DefaultSDRAMConfig().RowHitLat {
		t.Errorf("same-row access lat = %d, want row hit %d", second, DefaultSDRAMConfig().RowHitLat)
	}
	third := s.AccessLatency(1 << 15)
	if third != DefaultSDRAMConfig().RowMissLat {
		t.Errorf("new-row access lat = %d, want row miss %d", third, DefaultSDRAMConfig().RowMissLat)
	}
	if s.RowHits != 1 || s.RowMisses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", s.RowHits, s.RowMisses)
	}
}

func TestPokePeekVirt(t *testing.T) {
	m := newSys(t)
	m.MapPage(3, 5, BSReadWrite)
	addr := uint64(3*PageWords + 17)
	if err := m.PokeVirt(addr, 4242, false); err != nil {
		t.Fatal(err)
	}
	w, _, err := m.PeekVirt(addr)
	if err != nil || w != 4242 {
		t.Fatalf("PeekVirt = %d, %v", w, err)
	}
	if _, _, err := m.PeekVirt(999 * PageWords); err == nil {
		t.Error("PeekVirt of unmapped address succeeded")
	}
	// Poke must be visible to timed reads (coherent with cache).
	r := run(t, m, Request{Kind: ReqRead, Addr: addr, Token: 1})
	if r.Data != 4242 {
		t.Errorf("timed read after poke = %d", r.Data)
	}
}

func TestTranslate(t *testing.T) {
	m := newSys(t)
	m.MapPage(2, 9, BSReadWrite)
	pa, ok := m.Translate(2*PageWords + 100)
	if !ok || pa != 9*PageWords+100 {
		t.Errorf("Translate = %#x, %v; want %#x", pa, ok, 9*PageWords+100)
	}
	if _, ok := m.Translate(50 * PageWords); ok {
		t.Error("Translate of unmapped address succeeded")
	}
}

// Property: cache fill then read returns exactly what SDRAM held, for
// arbitrary addresses within a mapped page.
func TestCacheFidelityProperty(t *testing.T) {
	m := newSys(t)
	m.MapPage(0, 0, BSReadWrite)
	for i := uint64(0); i < PageWords; i++ {
		m.SDRAM.Write(i, i*2654435761, i%7 == 0)
	}
	f := func(off uint16) bool {
		a := uint64(off) % PageWords
		// Bypass helpers: use the timed path.
		m2 := NewSystem(DefaultConfig())
		m2.MapPage(0, 0, BSReadWrite)
		for i := uint64(0); i < PageWords; i++ {
			w, p := m.SDRAM.Read(i)
			m2.SDRAM.Write(i, w, p)
		}
		m2.Submit(0, Request{Kind: ReqRead, Addr: a, Token: 9})
		for now := int64(0); now < 100; now++ {
			for _, r := range m2.Step(now) {
				want, wantPtr := m.SDRAM.Read(a)
				return r.Data == want && r.DataPtr == wantPtr
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
