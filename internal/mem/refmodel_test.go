package mem

// Reference-model property test: a random sequence of timed reads and
// writes through the full cache/LTLB/SDRAM pipeline must behave exactly
// like a flat array. This catches writeback, fill, coherence-on-poke, and
// interleaving bugs that single-shot tests miss.

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

func TestRandomTrafficMatchesFlatModel(t *testing.T) {
	const (
		pages = 4
		span  = pages * PageWords
		ops   = 4000
	)
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := NewSystem(DefaultConfig())
		for p := uint64(0); p < pages; p++ {
			m.MapPage(p, p, BSReadWrite)
		}
		ref := make([]uint64, span)

		now := int64(0)
		type pendingRead struct {
			addr uint64
			want uint64
		}
		pending := map[uint64]pendingRead{} // token -> expectation
		tok := uint64(0)

		check := func(r Response) {
			if r.Fault != FaultNone {
				t.Fatalf("seed %d: unexpected fault %v at %#x", seed, r.Fault, r.Req.Addr)
			}
			if p, ok := pending[r.Req.Token]; ok {
				if r.Data != p.want {
					t.Fatalf("seed %d: read %#x = %d, want %d", seed, p.addr, r.Data, p.want)
				}
				delete(pending, r.Req.Token)
			}
		}

		issued := 0
		for issued < ops {
			addr := uint64(rng.Intn(span))
			if m.CanAccept(now, addr) {
				tok++
				if rng.Intn(2) == 0 {
					v := rng.Uint64()
					ref[addr] = v
					m.Submit(now, Request{Kind: ReqWrite, Addr: addr, Data: v, Token: tok})
				} else {
					// Expectation is the reference value at submit time:
					// effects apply at submit in this model.
					pending[tok] = pendingRead{addr, ref[addr]}
					m.Submit(now, Request{Kind: ReqRead, Addr: addr, Token: tok})
				}
				issued++
			}
			for _, r := range m.Step(now) {
				check(r)
			}
			now++
		}
		for m.Pending() > 0 {
			for _, r := range m.Step(now) {
				check(r)
			}
			now++
		}
		if len(pending) != 0 {
			t.Fatalf("seed %d: %d reads never completed", seed, len(pending))
		}
		// Final memory state: flush the cache and compare SDRAM to the
		// reference array.
		m.Cache.FlushAll(m.SDRAM)
		for a := uint64(0); a < span; a++ {
			if w, _ := m.SDRAM.Read(a); w != ref[a] {
				t.Fatalf("seed %d: final word %#x = %d, want %d", seed, a, w, ref[a])
			}
		}
	}
}

func TestRandomSyncTrafficKeepsBitsConsistent(t *testing.T) {
	// Random sync stores/loads with a reference bit model: the memory
	// system's sync bits must track pre/post semantics exactly.
	rng := rand.New(rand.NewSource(7))
	m := NewSystem(DefaultConfig())
	m.MapPage(0, 0, BSReadWrite)
	refBits := make([]bool, 64)
	now := int64(0)
	for i := 0; i < 1500; i++ {
		addr := uint64(rng.Intn(64))
		for !m.CanAccept(now, addr) {
			for range m.Step(now) {
			}
			now++
		}
		var pre, post uint8
		pre, post = uint8(rng.Intn(3)), uint8(rng.Intn(3))
		req := Request{
			Kind:  ReqWrite,
			Addr:  addr,
			Data:  uint64(i),
			Pre:   cond(pre),
			Post:  cond(post),
			Token: uint64(i),
		}
		if rng.Intn(2) == 0 {
			req.Kind = ReqRead
		}
		// Predict: fault iff precondition mismatches the reference bit.
		wantFault := (pre == 1 && !refBits[addr]) || (pre == 2 && refBits[addr])
		if !wantFault {
			switch post {
			case 1:
				refBits[addr] = true
			case 2:
				refBits[addr] = false
			}
		}
		m.Submit(now, req)
		var got *Response
		for got == nil {
			for _, r := range m.Step(now) {
				if r.Req.Token == uint64(i) {
					rr := r
					got = &rr
				}
			}
			now++
		}
		if (got.Fault == FaultSync) != wantFault {
			t.Fatalf("op %d at %d: fault=%v, want %v", i, addr, got.Fault, wantFault)
		}
	}
	for a := uint64(0); a < 64; a++ {
		pa, _ := m.Translate(a)
		if m.SDRAM.SyncBit(pa) != refBits[a] {
			t.Fatalf("sync bit %d = %v, want %v", a, m.SDRAM.SyncBit(pa), refBits[a])
		}
	}
}

func cond(v uint8) isa.SyncCond {
	switch v {
	case 1:
		return isa.SyncFull
	case 2:
		return isa.SyncEmpty
	}
	return isa.SyncAny
}
