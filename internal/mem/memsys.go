package mem

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// NoEvent is the NextEvent sentinel meaning "this component will never act
// again without external input" (see DESIGN.md, "The NextEvent contract").
const NoEvent = int64(math.MaxInt64)

// Kind discriminates memory requests submitted by the memory units.
type Kind uint8

const (
	ReqRead Kind = iota
	ReqWrite
	ReqReadPhys  // privileged LDP: physical address, bypasses LTLB/status
	ReqWritePhys // privileged STP
)

func (k Kind) String() string {
	switch k {
	case ReqRead:
		return "read"
	case ReqWrite:
		return "write"
	case ReqReadPhys:
		return "ldp"
	case ReqWritePhys:
		return "stp"
	}
	return "?"
}

// IsWrite reports whether the request stores data.
func (k Kind) IsWrite() bool { return k == ReqWrite || k == ReqWritePhys }

// Fault classifies request outcomes that require software intervention.
// These surface as asynchronous events (Section 3.3): "LTLB misses, block
// status faults, and memory synchronizing faults ... are handled
// asynchronously".
type Fault uint8

const (
	FaultNone Fault = iota
	FaultLTLBMiss
	FaultStatus
	FaultSync
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultLTLBMiss:
		return "ltlb-miss"
	case FaultStatus:
		return "block-status"
	case FaultSync:
		return "sync"
	}
	return "?"
}

// Request is one memory operation presented to a cache bank over the
// M-Switch.
type Request struct {
	Kind    Kind
	Addr    uint64 // virtual word address (physical for ReqReadPhys/WritePhys)
	Data    uint64
	DataPtr bool
	Pre     isa.SyncCond // synchronizing precondition (LDSY/STSY)
	Post    isa.SyncCond // synchronizing postcondition
	Token   uint64       // opaque routing token owned by the submitter
}

// Response reports a completed or faulted request.
type Response struct {
	Req     Request
	Data    uint64
	DataPtr bool
	Fault   Fault
	ReadyAt int64 // cycle at which the response is visible
}

// Config carries the memory system's timing parameters, calibrated to
// Table 1's local rows (read hit 3, write hit 2, miss read 13, miss write
// 19 with the default SDRAM row-hit latency).
type Config struct {
	SDRAM       SDRAMConfig
	Cache       CacheConfig
	LTLBEntries int
	LPT         LPT

	ReadHitLat    int64 // load hit: issue to register writeback (3)
	WriteHitLat   int64 // store hit: issue to completion (2)
	MissDetectLat int64 // cycles to detect a miss / raise an LTLB event (2)
	PhysAccessLat int64 // privileged LDP/STP latency (handlers "cache hit")
	LineLoadLat   int64 // extra cycles for a write miss to load the full line
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		SDRAM:         DefaultSDRAMConfig(),
		Cache:         DefaultCacheConfig(),
		LTLBEntries:   64,
		LPT:           LPT{Base: 1 << 18, Entries: 1024}, // 16 KW table at 256 KW
		ReadHitLat:    3,
		WriteHitLat:   2,
		MissDetectLat: 2,
		PhysAccessLat: 3,
		LineLoadLat:   7,
	}
}

// Device models a memory-mapped I/O device on the node's I/O bus
// (Section 2: "I/O devices may be connected either to an I/O bus available
// on each node, or to I/O nodes"). Devices respond to privileged physical
// accesses within their window and bypass the cache.
type Device interface {
	// DevWrite handles a store of w to device offset off.
	DevWrite(off uint64, w uint64)
	// DevRead handles a load from device offset off.
	DevRead(off uint64) uint64
}

// System is one node's complete memory system.
type System struct {
	cfg   Config `snap:"derived,fixed at construction; decode validates against it"`
	SDRAM *SDRAM
	Cache *Cache
	LTLB  *LTLB

	devBase  uint64 `snap:"derived,I/O-bus attachment, preserved in place across restore"`
	devWords uint64 `snap:"derived,I/O-bus attachment, preserved in place across restore"`
	device   Device `snap:"derived,I/O-bus attachment, preserved in place across restore"`

	inflight []Response
	// earliest caches the minimum ReadyAt across inflight, so idle banks
	// answer Step and NextEvent without scanning anything.
	earliest int64 `snap:"derived,recomputed from decoded inflight"`
	// ready is the reusable buffer returned by Step; the caller consumes it
	// before the next Step call.
	ready []Response `snap:"derived,per-Step scratch"`
	// bankFreeAt enforces one new request per bank per cycle (the M-Switch
	// supports four transfers per cycle, one per bank).
	bankFreeAt [4]int64
	sdramFree  int64

	// Stats.
	LTLBFaults, StatusFaults, SyncFaults uint64
}

// NewSystem builds a memory system from cfg.
func NewSystem(cfg Config) *System {
	return &System{
		cfg:      cfg,
		SDRAM:    NewSDRAM(cfg.SDRAM),
		Cache:    NewCache(cfg.Cache),
		LTLB:     NewLTLB(cfg.LTLBEntries),
		earliest: NoEvent,
	}
}

// Config returns the system's configuration.
func (m *System) Config() Config { return m.cfg }

// CanAccept reports whether the bank serving addr can accept a new request
// at the given cycle.
func (m *System) CanAccept(now int64, addr uint64) bool {
	return m.bankFreeAt[BankOf(addr)] <= now
}

// Submit presents a request to the memory system at cycle now. It must only
// be called when CanAccept is true; the bank is then busy for one cycle.
// State changes are applied immediately; the response becomes visible at
// its ReadyAt cycle via Step.
func (m *System) Submit(now int64, req Request) {
	bank := BankOf(req.Addr)
	if m.bankFreeAt[bank] > now {
		panic(fmt.Sprintf("mem: bank %d busy at cycle %d", bank, now))
	}
	m.bankFreeAt[bank] = now + 1
	resp := m.execute(now, req)
	m.inflight = append(m.inflight, resp)
	if resp.ReadyAt < m.earliest {
		m.earliest = resp.ReadyAt
	}
}

// Step returns the responses that become visible at cycle now, in
// deterministic (ReadyAt, submission) order. The returned slice is reused
// by the next Step call, so the caller must consume it first. Idle cycles
// (nothing in flight, or nothing due yet) return nil without scanning.
func (m *System) Step(now int64) []Response {
	if len(m.inflight) == 0 || now < m.earliest {
		return nil
	}
	m.ready = m.ready[:0]
	rest := m.inflight[:0]
	next := NoEvent
	for _, r := range m.inflight {
		if r.ReadyAt <= now {
			m.ready = append(m.ready, r)
		} else {
			rest = append(rest, r)
			if r.ReadyAt < next {
				next = r.ReadyAt
			}
		}
	}
	m.inflight = rest
	m.earliest = next
	// Stable insertion sort by ReadyAt: responses are few and nearly
	// ordered, and equal deadlines must keep submission order.
	for i := 1; i < len(m.ready); i++ {
		for j := i; j > 0 && m.ready[j].ReadyAt < m.ready[j-1].ReadyAt; j-- {
			m.ready[j], m.ready[j-1] = m.ready[j-1], m.ready[j]
		}
	}
	return m.ready
}

// NextEvent reports the earliest cycle >= now at which a response becomes
// visible, or NoEvent if nothing is in flight.
func (m *System) NextEvent(now int64) int64 {
	if len(m.inflight) == 0 {
		return NoEvent
	}
	if m.earliest < now {
		return now
	}
	return m.earliest
}

// Pending reports how many requests are in flight.
func (m *System) Pending() int { return len(m.inflight) }

func (m *System) execute(now int64, req Request) Response {
	resp := Response{Req: req}
	switch req.Kind {
	case ReqReadPhys:
		if m.device != nil && req.Addr >= m.devBase && req.Addr < m.devBase+m.devWords {
			resp.Data = m.device.DevRead(req.Addr - m.devBase)
			resp.ReadyAt = now + m.cfg.PhysAccessLat
			return resp
		}
		resp.Data, resp.DataPtr = m.SDRAM.Read(req.Addr)
		resp.ReadyAt = now + m.cfg.PhysAccessLat
		return resp
	case ReqWritePhys:
		if m.device != nil && req.Addr >= m.devBase && req.Addr < m.devBase+m.devWords {
			m.device.DevWrite(req.Addr-m.devBase, req.Data)
			resp.ReadyAt = now + m.cfg.PhysAccessLat
			return resp
		}
		// Keep any cached copy coherent: privileged stores are used by the
		// block-fetch handler to deposit remote data (Section 4.3).
		if ln, hit := m.Cache.lineFor(req.Addr); hit && ln.physBase == req.Addr&^uint64(BlockWords-1) {
			ln.words[req.Addr%BlockWords] = req.Data
			ln.ptrs[req.Addr%BlockWords] = req.DataPtr
		}
		m.SDRAM.Write(req.Addr, req.Data, req.DataPtr)
		resp.ReadyAt = now + m.cfg.PhysAccessLat
		return resp
	}

	// Virtually addressed cache lookup first: the cache is virtually tagged,
	// so hits need no translation (Section 2).
	ln, hit := m.Cache.Lookup(req.Addr)
	if hit {
		return m.finishAccess(now, req, ln, true)
	}

	// Miss: consult the LTLB.
	vpn := req.Addr / PageWords
	pte := m.LTLB.Lookup(vpn)
	if pte == nil {
		m.LTLBFaults++
		resp.Fault = FaultLTLBMiss
		resp.ReadyAt = now + m.cfg.MissDetectLat
		return resp
	}

	// Block status check (Section 4.3): hardware checks the 2 status bits
	// for the referenced block; disallowed accesses raise a block status
	// fault handled by software.
	blk := int(req.Addr % PageWords / BlockWords)
	st := pte.Block(blk)
	if (req.Kind.IsWrite() && !st.Writable()) || (!req.Kind.IsWrite() && !st.Readable()) {
		m.StatusFaults++
		resp.Fault = FaultStatus
		resp.ReadyAt = now + m.cfg.MissDetectLat
		return resp
	}

	// Fill from SDRAM.
	physBase := pte.PPN*PageWords + req.Addr%PageWords&^uint64(BlockWords-1)
	start := now
	if m.sdramFree > start {
		start = m.sdramFree
	}
	lat := m.SDRAM.AccessLatency(physBase)
	m.sdramFree = start + lat
	victim := m.Cache.Fill(m.SDRAM, req.Addr, physBase, st.Writable())
	m.Cache.WriteBack(m.SDRAM, victim)
	ln, _ = m.Cache.lineFor(req.Addr)

	resp = m.finishAccess(now, req, ln, false)
	fillDone := start + lat - now // extra cycles beyond a hit
	resp.ReadyAt += fillDone
	if req.Kind.IsWrite() {
		// A write completes "when the line containing the data has been
		// fully loaded into the cache" (Section 4.2): add the line load.
		resp.ReadyAt += m.cfg.LineLoadLat
	}
	if resp.Fault == FaultNone && req.Kind.IsWrite() {
		m.markDirty(pte, blk)
	}
	return resp
}

// finishAccess performs the actual word access against a resident line and
// computes the hit-path latency; the caller adjusts ReadyAt for fills.
func (m *System) finishAccess(now int64, req Request, ln *cacheLine, hit bool) Response {
	resp := Response{Req: req}
	off := req.Addr % BlockWords
	pa := ln.physBase + off

	// Synchronization bit handling (Section 2: the only atomic
	// read-modify-write operations).
	if req.Pre != isa.SyncAny {
		bit := m.SDRAM.SyncBit(pa)
		want := req.Pre == isa.SyncFull
		if bit != want {
			m.SyncFaults++
			resp.Fault = FaultSync
			resp.ReadyAt = now + m.cfg.MissDetectLat
			return resp
		}
	}

	if req.Kind.IsWrite() {
		if !ln.writable {
			// Write hit on a block filled under READ-ONLY status.
			m.StatusFaults++
			resp.Fault = FaultStatus
			resp.ReadyAt = now + m.cfg.MissDetectLat
			return resp
		}
		ln.words[off] = req.Data
		ln.ptrs[off] = req.DataPtr
		ln.dirty = true
		resp.ReadyAt = now + m.cfg.WriteHitLat
		if hit {
			// Writes mark the block dirty "automatically" (Section 4.3).
			if pte := m.LTLB.Lookup(req.Addr / PageWords); pte != nil {
				m.markDirty(pte, int(req.Addr%PageWords/BlockWords))
			}
		}
	} else {
		resp.Data = ln.words[off]
		resp.DataPtr = ln.ptrs[off]
		resp.ReadyAt = now + m.cfg.ReadHitLat
	}

	if req.Post != isa.SyncAny {
		m.SDRAM.SetSyncBit(pa, req.Post == isa.SyncFull)
	}
	return resp
}

// markDirty upgrades a block's status to DIRTY in both the LTLB entry and
// the in-memory LPT entry.
func (m *System) markDirty(pte *PTE, blk int) {
	if pte.Block(blk) == BSDirty {
		return
	}
	pte.SetBlock(blk, BSDirty)
	m.cfg.LPT.Insert(m.SDRAM, *pte)
}

// --- Privileged operations used by the runtime's handlers ---

// TLBInstall decodes the 4-word entry and inserts it into the LTLB (the
// TLBW operation). The evicted entry's status bits are written back to the
// LPT so software updates are not lost.
func (m *System) TLBInstall(words [PTEWords]uint64) {
	e := DecodePTE(words)
	victim := m.LTLB.Insert(e)
	if victim.Valid {
		m.cfg.LPT.Insert(m.SDRAM, victim)
	}
}

// TLBInvalidate drops the LTLB entry for vpn, writing its status back.
func (m *System) TLBInvalidate(vpn uint64) {
	victim := m.LTLB.Invalidate(vpn)
	if victim.Valid {
		m.cfg.LPT.Insert(m.SDRAM, victim)
	}
}

// SetBlockStatus updates the status bits for the block containing vaddr in
// the LPT and any resident LTLB entry (the BSW operation), invalidating the
// cached copy of the block so the next access observes the new state.
func (m *System) SetBlockStatus(vaddr uint64, s BlockStatus) {
	vpn := vaddr / PageWords
	blk := int(vaddr % PageWords / BlockWords)
	if pte := m.LTLB.Lookup(vpn); pte != nil {
		pte.SetBlock(blk, s)
		m.cfg.LPT.Insert(m.SDRAM, *pte)
	} else if pte, ok := m.cfg.LPT.Lookup(m.SDRAM, vpn); ok {
		pte.SetBlock(blk, s)
		m.cfg.LPT.Insert(m.SDRAM, pte)
	}
	m.Cache.InvalidateBlock(m.SDRAM, vaddr)
}

// BlockStatusOf reads the current status of the block containing vaddr (the
// BSR operation). Missing translations read as INVALID.
func (m *System) BlockStatusOf(vaddr uint64) BlockStatus {
	vpn := vaddr / PageWords
	blk := int(vaddr % PageWords / BlockWords)
	if pte := m.LTLB.Lookup(vpn); pte != nil {
		return pte.Block(blk)
	}
	if pte, ok := m.cfg.LPT.Lookup(m.SDRAM, vpn); ok {
		return pte.Block(blk)
	}
	return BSInvalid
}

// AttachDevice maps a device onto the I/O bus at physical word address base
// for the given window size.
func (m *System) AttachDevice(base, words uint64, d Device) {
	m.devBase, m.devWords, m.device = base, words, d
}

// --- Zero-cost boot/test accessors (not part of the timed model) ---

// MapPage creates a translation vpn -> ppn with every block in status s,
// writing the LPT and priming the LTLB.
func (m *System) MapPage(vpn, ppn uint64, s BlockStatus) {
	e := PTE{VPN: vpn, PPN: ppn, Valid: true}
	e.SetAllBlocks(s)
	m.cfg.LPT.Insert(m.SDRAM, e)
	if victim := m.LTLB.Insert(e); victim.Valid {
		m.cfg.LPT.Insert(m.SDRAM, victim)
	}
}

// MapPageLPTOnly creates the translation in the LPT without priming the
// LTLB, so the first access takes an LTLB miss (used to stage Table 1).
func (m *System) MapPageLPTOnly(vpn, ppn uint64, s BlockStatus) {
	e := PTE{VPN: vpn, PPN: ppn, Valid: true}
	e.SetAllBlocks(s)
	m.cfg.LPT.Insert(m.SDRAM, e)
}

// Translate resolves a virtual address through the LTLB/LPT without timing
// side effects; ok is false if no mapping exists.
func (m *System) Translate(vaddr uint64) (pa uint64, ok bool) {
	vpn := vaddr / PageWords
	var e PTE
	if p := m.LTLB.Lookup(vpn); p != nil {
		e = *p
	} else if p2, found := m.cfg.LPT.Lookup(m.SDRAM, vpn); found {
		e = p2
	} else {
		return 0, false
	}
	return e.PPN*PageWords + vaddr%PageWords, true
}

// PokeVirt writes a word at a virtual address, bypassing timing. The cache
// is kept coherent.
func (m *System) PokeVirt(vaddr, w uint64, ptr bool) error {
	pa, ok := m.Translate(vaddr)
	if !ok {
		return fmt.Errorf("mem: no translation for %#x", vaddr)
	}
	if ln, hit := m.Cache.lineFor(vaddr); hit {
		ln.words[vaddr%BlockWords] = w
		ln.ptrs[vaddr%BlockWords] = ptr
	}
	m.SDRAM.Write(pa, w, ptr)
	return nil
}

// PeekVirt reads a word at a virtual address, bypassing timing.
func (m *System) PeekVirt(vaddr uint64) (w uint64, ptr bool, err error) {
	if ln, hit := m.Cache.lineFor(vaddr); hit {
		return ln.words[vaddr%BlockWords], ln.ptrs[vaddr%BlockWords], nil
	}
	pa, ok := m.Translate(vaddr)
	if !ok {
		return 0, false, fmt.Errorf("mem: no translation for %#x", vaddr)
	}
	w, ptr = m.SDRAM.Read(pa)
	return w, ptr, nil
}

// SetSyncVirt sets the synchronization bit for a virtual address.
func (m *System) SetSyncVirt(vaddr uint64, full bool) error {
	pa, ok := m.Translate(vaddr)
	if !ok {
		return fmt.Errorf("mem: no translation for %#x", vaddr)
	}
	m.SDRAM.SetSyncBit(pa, full)
	return nil
}

// SyncVirt reads the synchronization bit for a virtual address.
func (m *System) SyncVirt(vaddr uint64) (bool, error) {
	pa, ok := m.Translate(vaddr)
	if !ok {
		return false, fmt.Errorf("mem: no translation for %#x", vaddr)
	}
	return m.SDRAM.SyncBit(pa), nil
}
