// Package guard is the run-supervision layer of the simulator (DESIGN.md,
// "Supervised runs & fault injection"): it wraps Machine.Run-shaped work
// so that one misbehaving run — a panicking engine or scenario, a
// wall-clock hang, a runaway cycle count — is contained, diagnosed, and
// reported as a typed error instead of taking the process down or
// stalling it silently. This is the foundation the long-running `msimd`
// service and the distributed engine sit on: every session failure must
// stay inside its session.
//
// A Supervisor provides, in one Do call:
//
//   - Panic containment. Panics out of the supervised function — serial
//     engine steps, scenario staging, and (via machine.WorkerPanic)
//     parallel worker goroutines — are recovered and converted to a
//     *CrashError carrying the panic value, the deep stack captured at
//     the panic site, and the offending (node, cycle). A panic never
//     crosses the Supervisor boundary.
//
//   - Watchdogs. A wall-clock deadline (Options.Timeout and/or a
//     caller context) is enforced by a monitor goroutine that raises the
//     machine's atomic stop flag; the run observes the flag at its
//     existing loop-head sync point and returns between cycles, so the
//     engine hot path is untouched and supervised runs stay bit-identical
//     to unsupervised ones. A cycle budget (Options.CycleBudget) is
//     enforced deterministically by clamping each RunPhase's cycle
//     bound — no wall-clock involved, so budget exhaustion reproduces
//     exactly on any host and engine.
//
//   - Forensics. On a crash, deadline, or budget exhaustion the
//     Supervisor renders a livelock/deadlock diagnostic (Diagnose: per
//     chip NextEvent, queue and outbox depths, running-user and busy
//     counters) and, when Options.DumpPath is set, writes a crash-dump
//     snapshot via machine.Save so the failure can be reloaded with
//     `msim -restore` and replayed under any engine.
//
// If the run does not respond to the stop request within Options.Grace —
// a worker wedged inside a cycle, not a livelocked simulation — Do gives
// up waiting and returns a *StallError with Kind StallHang. The run
// goroutine still owns the machine in that case, so no snapshot is
// written and the machine must be abandoned (see IsHang).
package guard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/snap"
)

// Options configures a Supervisor. The zero value supervises with panic
// containment only (no watchdogs, no dump).
type Options struct {
	// Timeout is the wall-clock budget for one Do call; 0 disables the
	// wall-clock watchdog. Exceeding it stops the run at its next
	// loop-head sync point and yields a *StallError (StallTimeout).
	Timeout time.Duration

	// Ctx, when non-nil, also stops the run when the context is done
	// (deadline or cancellation), with the same StallTimeout reporting.
	Ctx context.Context

	// CycleBudget caps the machine cycles one Do call may advance,
	// across all its RunPhase legs; 0 disables. Exhaustion yields a
	// *StallError (StallBudget). Enforcement is deterministic: the
	// budget clamps each leg's cycle bound, so the same scenario
	// exhausts at the same cycle on every host and engine.
	CycleBudget int64

	// DumpPath, when non-empty, is where a crash-dump snapshot is
	// written (atomically; see snap.WriteFileAtomic) on crash, timeout,
	// or budget exhaustion. The dump is a regular machine snapshot:
	// `msim -restore` loads it.
	DumpPath string

	// Grace is how long after a stop request the monitor waits for the
	// run to return before declaring it wedged (StallHang). Default
	// 10s; a hung run's goroutine is abandoned, not killed.
	Grace time.Duration
}

// defaultGrace bounds how long a timed-out run may ignore the stop flag
// before it is declared wedged.
const defaultGrace = 10 * time.Second

// StallKind classifies a *StallError.
type StallKind int

const (
	// StallTimeout: the wall-clock deadline (or context) expired; the
	// run observed the stop flag and returned cleanly.
	StallTimeout StallKind = iota
	// StallBudget: the cycle budget was exhausted (deterministic).
	StallBudget
	// StallHang: the run did not respond to the stop request within the
	// grace period; its goroutine was abandoned mid-run.
	StallHang
)

func (k StallKind) String() string {
	switch k {
	case StallTimeout:
		return "timeout"
	case StallBudget:
		return "cycle budget"
	case StallHang:
		return "hang"
	}
	return fmt.Sprintf("StallKind(%d)", int(k))
}

// StallError reports a watchdog firing: the supervised run exceeded its
// wall-clock deadline, exhausted its cycle budget, or wedged. The
// machine state is consistent (between cycles) except for StallHang.
type StallError struct {
	Kind    StallKind
	Cycle   int64         // machine cycle at detection (gauge for hangs)
	Elapsed time.Duration // wall time since Do entry
	Budget  int64         // the cycle budget (StallBudget)
	Timeout time.Duration // the wall deadline (StallTimeout/StallHang)

	Diagnostic string // Diagnose output at detection ("" for hangs)
	DumpPath   string // crash-dump location, "" if none was written
}

func (e *StallError) Error() string {
	switch e.Kind {
	case StallBudget:
		return fmt.Sprintf("guard: cycle budget (%d) exhausted at cycle %d", e.Budget, e.Cycle)
	case StallHang:
		return fmt.Sprintf("guard: run wedged: no response to the stop request within the grace period (last observed cycle %d, %v elapsed)", e.Cycle, e.Elapsed.Round(time.Millisecond))
	}
	return fmt.Sprintf("guard: wall-clock deadline (%v) exceeded at cycle %d", e.Timeout, e.Cycle)
}

// Unwrap lets errors.Is(err, context.DeadlineExceeded) detect the
// wall-clock kinds.
func (e *StallError) Unwrap() error {
	if e.Kind == StallBudget {
		return nil
	}
	return context.DeadlineExceeded
}

// CrashError reports a contained panic: the panic value, the goroutine
// stack captured at the panic site (worker-side for parallel-engine
// crashes), and the offending chip and cycle when they are known.
type CrashError struct {
	Value any    // the original panic value
	Stack []byte // stack at the panic site
	Cycle int64
	Node  int // -1 when the crash could not be attributed to a chip

	Diagnostic string // Diagnose output after the crash
	DumpPath   string // crash-dump location, "" if none was written
}

// Error is deliberately stack-free: CLIs print it to users directly; the
// Stack field is for logs and bug reports.
func (e *CrashError) Error() string {
	if e.Node >= 0 {
		return fmt.Sprintf("guard: run crashed at node %d, cycle %d: %v", e.Node, e.Cycle, e.Value)
	}
	return fmt.Sprintf("guard: run crashed near cycle %d: %v", e.Cycle, e.Value)
}

// crashSite is implemented by panic values that know which chip and
// cycle they struck (machine.WorkerPanic, faultinject.InjectedPanic).
type crashSite interface {
	CrashSite() (node int, cycle int64)
}

// IsHang reports whether err is a *StallError of Kind StallHang — the one
// failure class after which the machine is still owned by an abandoned
// run goroutine and must not be touched again (in particular, do not
// Close it: Close would block on the wedged run).
func IsHang(err error) bool {
	var se *StallError
	return errors.As(err, &se) && se.Kind == StallHang
}

// Supervisor wraps one machine for supervised runs. It is not itself
// concurrency-safe: one Do at a time, from one goroutine, exactly like
// the machine it guards.
type Supervisor struct {
	m   *machine.Machine
	opt Options

	base        int64 // machine cycle at Do entry; budget accounting base
	supervising bool
}

// New builds a Supervisor over m.
func New(m *machine.Machine, opt Options) *Supervisor {
	return &Supervisor{m: m, opt: opt}
}

// Run supervises a single machine.Run leg: Do around one RunPhase. This
// is the drop-in supervised form of Machine.Run.
func (s *Supervisor) Run(maxCycles int64) (int64, error) {
	var n int64
	err := s.Do(func() error {
		var e error
		n, e = s.RunPhase(maxCycles)
		return e
	})
	return n, err
}

// outcome carries the supervised function's result (or panic) from the
// run goroutine back to Do.
type outcome struct {
	err      error
	panicVal any
	stack    []byte
}

// Do runs fn under supervision: panic containment, the wall-clock
// watchdog, and failure forensics. fn runs on a dedicated goroutine (the
// machine is not goroutine-affine, and the monitor must be able to give
// up on a wedged run); Do returns when fn does — or, after a stop
// request went unanswered for the grace period, with a StallHang. Errors
// fn returns pass through untouched unless they are watchdog classes,
// which get their diagnostics and dump attached here, after the machine
// has gone quiet.
func (s *Supervisor) Do(fn func() error) error {
	if s.supervising {
		return errors.New("guard: nested Do on one Supervisor")
	}
	s.supervising = true
	defer func() { s.supervising = false }()

	s.m.ClearStop()
	s.base = s.m.Cycle
	start := time.Now()

	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				// The stack here still includes the panicking frames —
				// recover runs before the unwind completes — so serial
				// engine crashes get full depth; parallel crashes carry
				// their own worker-side stack in the WorkerPanic.
				done <- outcome{panicVal: v, stack: debug.Stack()}
			}
		}()
		done <- outcome{err: fn()}
	}()

	var timeoutCh <-chan time.Time
	if s.opt.Timeout > 0 {
		t := time.NewTimer(s.opt.Timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	var ctxCh <-chan struct{}
	if s.opt.Ctx != nil {
		ctxCh = s.opt.Ctx.Done()
	}
	var graceCh <-chan time.Time
	var graceTimer *time.Timer
	defer func() {
		if graceTimer != nil {
			graceTimer.Stop()
		}
	}()
	timedOut := false
	stop := func() {
		timedOut = true
		timeoutCh, ctxCh = nil, nil
		s.m.RequestStop()
		g := s.opt.Grace
		if g <= 0 {
			g = defaultGrace
		}
		graceTimer = time.NewTimer(g)
		graceCh = graceTimer.C
	}
	for {
		select {
		case o := <-done:
			return s.classify(o, timedOut, time.Since(start))
		case <-timeoutCh:
			stop()
		case <-ctxCh:
			stop()
		case <-graceCh:
			return &StallError{
				Kind:    StallHang,
				Cycle:   s.m.CycleGauge(),
				Elapsed: time.Since(start),
				Timeout: s.opt.Timeout,
			}
		}
	}
}

// RunPhase runs one machine.Run leg inside a Do, clamping maxCycles to
// the remaining cycle budget. The budget is exact: a budget-bound leg
// stops at machine cycle base+CycleBudget precisely (machine.Run's bound
// is padded by the completion-detection quiet window; the clamp subtracts
// it back out), so exhaustion reproduces at the identical cycle on every
// host and engine. When the global budget — not the leg's own bound — is
// what cut the run off, the error is a *StallError (StallBudget) that Do
// enriches with diagnostics and the dump on the way out. Outside a Do it
// behaves like Machine.Run plus the clamp.
func (s *Supervisor) RunPhase(maxCycles int64) (int64, error) {
	if s.opt.CycleBudget <= 0 {
		return s.m.Run(maxCycles)
	}
	rem := s.opt.CycleBudget - (s.m.Cycle - s.base)
	budgetErr := func() *StallError {
		return &StallError{Kind: StallBudget, Cycle: s.m.Cycle, Budget: s.opt.CycleBudget}
	}
	if rem <= 0 {
		return 0, budgetErr()
	}
	if maxCycles+machine.QuietWindow <= rem {
		// The leg's own bound binds; its timeout is the caller's business.
		return s.m.Run(maxCycles)
	}
	if bound := rem - machine.QuietWindow; bound > 0 {
		n, err := s.m.Run(bound)
		if err != nil && errors.Is(err, machine.ErrCycleLimit) {
			return n, budgetErr()
		}
		return n, err
	}
	// Less budget left than one quiet window: advance the exact remainder
	// cycle by cycle (bit-identical to the engine loop, merely without the
	// idle fast-forward, over at most QuietWindow-1 cycles).
	n, err := s.m.RunUntil(func() bool { return false }, rem)
	if err == nil || errors.Is(err, machine.ErrStopped) {
		return n, err
	}
	return n, budgetErr()
}

// classify converts the run goroutine's outcome into the supervisor's
// typed errors, attaching diagnostics and the crash dump now that the
// machine is quiet again.
func (s *Supervisor) classify(o outcome, timedOut bool, elapsed time.Duration) error {
	m := s.m
	defer m.ClearStop()
	if o.panicVal != nil {
		ce := &CrashError{Value: o.panicVal, Stack: o.stack, Cycle: m.Cycle, Node: -1}
		if cs, ok := o.panicVal.(crashSite); ok {
			ce.Node, ce.Cycle = cs.CrashSite()
		}
		if wp, ok := o.panicVal.(*machine.WorkerPanic); ok {
			// Unwrap to the original panic value; prefer the worker-side
			// stack, which reaches the true panic site.
			ce.Value = wp.Value
			if len(wp.Stack) > 0 {
				ce.Stack = wp.Stack
			}
		}
		ce.Diagnostic = Diagnose(m)
		ce.DumpPath = s.writeDump(&ce.Diagnostic)
		return ce
	}
	var se *StallError
	if errors.As(o.err, &se) {
		se.Elapsed = elapsed
		se.Diagnostic = Diagnose(m)
		se.DumpPath = s.writeDump(&se.Diagnostic)
		return o.err
	}
	if timedOut && errors.Is(o.err, machine.ErrStopped) {
		st := &StallError{
			Kind:       StallTimeout,
			Cycle:      m.Cycle,
			Elapsed:    elapsed,
			Timeout:    s.opt.Timeout,
			Diagnostic: Diagnose(m),
		}
		st.DumpPath = s.writeDump(&st.Diagnostic)
		return st
	}
	return o.err
}

// writeDump writes the crash-dump snapshot if a path is configured,
// returning the path written ("" otherwise). A dump failure must never
// mask the primary failure, so it is appended to the diagnostic instead
// of being returned.
func (s *Supervisor) writeDump(diag *string) string {
	if s.opt.DumpPath == "" {
		return ""
	}
	if err := snap.WriteFileAtomic(s.opt.DumpPath, s.m.Save); err != nil {
		*diag += fmt.Sprintf("\n(crash dump failed: %v)", err)
		return ""
	}
	return s.opt.DumpPath
}

// diagMaxNodes caps the per-node section of a diagnostic; beyond it only
// non-quiescent nodes are listed.
const diagMaxNodes = 64

// Diagnose renders a livelock/deadlock report of the machine's current
// state: the clock, network quiescence, and per chip the next event,
// running user threads, queue and outbox depths, and pending resends —
// the quantities that distinguish "deadlocked" (all NextEvents at
// infinity), "livelocked" (resend storms, refused deliveries), and
// "merely slow". Safe only while no run is in flight (the supervisor
// calls it after the run returned).
func Diagnose(m *machine.Machine) string {
	var b strings.Builder
	now := m.Cycle
	fmt.Fprintf(&b, "cycle %d; network quiescent=%v; machine next event=%s\n",
		now, m.Net.Quiescent(), fmtEvent(m.NextEvent(now), now))
	listed, skipped := 0, 0
	for i, c := range m.Chips {
		if c.Quiescent() && len(m.Chips) > diagMaxNodes {
			skipped++
			continue
		}
		listed++
		if listed > diagMaxNodes {
			skipped++
			continue
		}
		users := 0
		for vt := 0; vt < isa.NumUserSlots; vt++ {
			for cl := 0; cl < isa.NumClusters; cl++ {
				if c.Thread(vt, cl).Status == cluster.ThreadRunning {
					users++
				}
			}
		}
		var q []string
		for p := 0; p < noc.NumPriorities; p++ {
			q = append(q, fmt.Sprint(c.MsgQueue(p).Len()))
		}
		var e []string
		for cl := 0; cl < isa.NumClusters; cl++ {
			e = append(e, fmt.Sprint(c.EventQueue(cl).Len()))
		}
		fmt.Fprintf(&b, "node %-3d next=%-8s users=%d busy=%-5v outbox=%d resends=%d msgq=[%s] evq=[%s] exc=%d credits=%d issued=%d\n",
			i, fmtEvent(c.NextEvent(now), now), users, !c.Quiescent(),
			c.OutboxLen(), c.PendingResends(),
			strings.Join(q, " "), strings.Join(e, " "),
			c.ExcQueue().Len(), c.Credits(), c.InstsIssued)
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "(%d quiescent/overflow node(s) elided)\n", skipped)
	}
	return strings.TrimRight(b.String(), "\n")
}

// fmtEvent renders a NextEvent cycle relative to now; NoEvent as "-".
func fmtEvent(at, now int64) string {
	if at == machine.NoEvent {
		return "-"
	}
	return fmt.Sprintf("+%d", at-now)
}

// WriteDump writes a standalone crash-dump snapshot of m to path with the
// same atomic discipline the supervisor uses.
func WriteDump(m *machine.Machine, path string) error {
	return snap.WriteFileAtomic(path, func(w io.Writer) error { return m.Save(w) })
}
