package guard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/guard"
	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/rt"
)

// newM builds an n-node x-axis machine with the runtime installed, node i
// homing virtual words [i*4096, (i+1)*4096), under the requested engine.
func newM(t *testing.T, nodes, workers int) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Dims = noc.Coord{X: nodes, Y: 1, Z: 1}
	cfg.Workers = workers
	m := machine.New(cfg)
	t.Cleanup(m.Close)
	if _, err := rt.Install(m, rt.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func load(t *testing.T, m *machine.Machine, node int, src string) {
	t.Helper()
	p, err := asm.Assemble("user", src)
	if err != nil {
		t.Fatal(err)
	}
	m.Chip(node).LoadProgram(0, 0, p, true)
}

// countSrc runs a counting loop to n and halts; the loop keeps the chip
// busy every cycle, so fault probes fire at every cycle until the halt.
func countSrc(n int) string {
	return fmt.Sprintf(`
    movi i1, #0
    movi i2, #%d
loop:
    add i1, i1, #1
    lt i3, i1, i2
    brt i3, loop
    halt
`, n)
}

// spinSrc never halts — the watchdog-test workload.
const spinSrc = `
spin:
    add i1, i1, #1
    br spin
`

func finalCount(m *machine.Machine, node int) uint64 {
	return m.Chip(node).Thread(0, 0).Ints.Get(1).Bits
}

// injected is a panic value carrying its own crash site, the shape
// internal/faultinject raises.
type injected struct {
	node  int
	cycle int64
}

func (p injected) CrashSite() (int, int64) { return p.node, p.cycle }
func (p injected) String() string          { return fmt.Sprintf("injected fault at node %d", p.node) }

// TestSupervisedBitIdentical: supervision with watchdogs armed must not
// perturb the simulation — same cycles, same results as a bare Run.
func TestSupervisedBitIdentical(t *testing.T) {
	bare := newM(t, 2, 0)
	load(t, bare, 0, countSrc(300))
	load(t, bare, 1, countSrc(150))
	wantCycles, err := bare.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	want0, want1 := finalCount(bare, 0), finalCount(bare, 1)

	m := newM(t, 2, 0)
	load(t, m, 0, countSrc(300))
	load(t, m, 1, countSrc(150))
	s := guard.New(m, guard.Options{Timeout: 30 * time.Second, CycleBudget: 1 << 40})
	gotCycles, err := s.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if gotCycles != wantCycles || finalCount(m, 0) != want0 || finalCount(m, 1) != want1 {
		t.Fatalf("supervised run diverged: cycles %d vs %d, counts %d/%d vs %d/%d",
			gotCycles, wantCycles, finalCount(m, 0), finalCount(m, 1), want0, want1)
	}
}

// TestPanicContainedSerial: a probe panic under the serial engine becomes
// a *CrashError with the panic value and site preserved; no panic escapes.
func TestPanicContainedSerial(t *testing.T) {
	m := newM(t, 1, 0)
	load(t, m, 0, spinSrc)
	m.SetFaultProbe(func(node int, cycle int64) {
		if cycle == 100 {
			panic(injected{node: node, cycle: cycle})
		}
	})
	s := guard.New(m, guard.Options{})
	_, err := s.Run(1 << 40)
	var ce *guard.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if ce.Node != 0 || ce.Cycle != 100 {
		t.Fatalf("crash site = node %d cycle %d, want node 0 cycle 100", ce.Node, ce.Cycle)
	}
	if _, ok := ce.Value.(injected); !ok {
		t.Fatalf("panic value not preserved: %#v", ce.Value)
	}
	if len(ce.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if ce.Diagnostic == "" || !strings.Contains(ce.Diagnostic, "node 0") {
		t.Fatalf("diagnostic missing per-node state:\n%s", ce.Diagnostic)
	}
	if strings.Contains(ce.Error(), "goroutine") {
		t.Fatalf("Error() leaks a stack trace: %q", ce.Error())
	}
}

// TestPanicContainedParallel: a worker-goroutine panic under the parallel
// engine is recovered on the worker, re-raised after the gather barrier,
// and surfaces as the same *CrashError shape — with the worker-side stack
// and the original panic value unwrapped from machine.WorkerPanic.
func TestPanicContainedParallel(t *testing.T) {
	m := newM(t, 6, 3)
	for i := 0; i < 6; i++ {
		load(t, m, i, spinSrc)
	}
	m.SetFaultProbe(func(node int, cycle int64) {
		if node == 4 && cycle == 150 {
			panic(injected{node: node, cycle: cycle})
		}
	})
	s := guard.New(m, guard.Options{})
	_, err := s.Run(1 << 40)
	var ce *guard.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if ce.Node != 4 || ce.Cycle != 150 {
		t.Fatalf("crash site = node %d cycle %d, want node 4 cycle 150", ce.Node, ce.Cycle)
	}
	if _, ok := ce.Value.(injected); !ok {
		t.Fatalf("panic value not unwrapped from WorkerPanic: %#v", ce.Value)
	}
	if !bytes.Contains(ce.Stack, []byte("runShard")) {
		t.Fatal("stack is not the worker-side stack")
	}
	// The pool is poisoned: further runs re-raise as contained errors, not
	// process-killing panics.
	if _, err := s.Run(10); err == nil {
		t.Fatal("second run on a crashed pool succeeded")
	}
}

// TestWatchdogTimeout: a livelocked run is stopped at a cycle boundary,
// classified StallTimeout, and leaves a reusable, consistent machine.
func TestWatchdogTimeout(t *testing.T) {
	m := newM(t, 1, 0)
	load(t, m, 0, spinSrc)
	s := guard.New(m, guard.Options{Timeout: 50 * time.Millisecond})
	_, err := s.Run(1 << 40)
	var se *guard.StallError
	if !errors.As(err, &se) {
		t.Fatalf("want *StallError, got %v", err)
	}
	if se.Kind != guard.StallTimeout {
		t.Fatalf("kind = %v, want timeout", se.Kind)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("timeout does not unwrap to context.DeadlineExceeded")
	}
	if se.Cycle <= 0 || se.Diagnostic == "" {
		t.Fatalf("missing forensics: cycle=%d diag=%q", se.Cycle, se.Diagnostic)
	}
	if guard.IsHang(err) {
		t.Fatal("clean timeout misclassified as hang")
	}
	// The machine is between cycles and reusable after the stop.
	if _, err := m.Run(10); !errors.Is(err, machine.ErrCycleLimit) {
		t.Fatalf("machine not reusable after timeout: %v", err)
	}
}

// TestContextCancel: a canceled caller context stops the run like a
// deadline does.
func TestContextCancel(t *testing.T) {
	m := newM(t, 1, 0)
	load(t, m, 0, spinSrc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	s := guard.New(m, guard.Options{Ctx: ctx})
	_, err := s.Run(1 << 40)
	var se *guard.StallError
	if !errors.As(err, &se) || se.Kind != guard.StallTimeout {
		t.Fatalf("want StallTimeout from cancellation, got %v", err)
	}
}

// TestCycleBudgetDeterministic: budget exhaustion is a property of the
// simulation, not the host — two runs stop at the identical cycle.
func TestCycleBudgetDeterministic(t *testing.T) {
	stopAt := func() int64 {
		m := newM(t, 2, 0)
		load(t, m, 0, spinSrc)
		load(t, m, 1, spinSrc)
		s := guard.New(m, guard.Options{CycleBudget: 3000})
		_, err := s.Run(1 << 40)
		var se *guard.StallError
		if !errors.As(err, &se) {
			t.Fatalf("want *StallError, got %v", err)
		}
		if se.Kind != guard.StallBudget || se.Budget != 3000 {
			t.Fatalf("kind=%v budget=%d, want budget kind 3000", se.Kind, se.Budget)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatal("budget exhaustion must not look like a wall-clock deadline")
		}
		return se.Cycle
	}
	if a, b := stopAt(), stopAt(); a != b {
		t.Fatalf("budget stop cycle nondeterministic: %d vs %d", a, b)
	}
}

// TestBudgetSpansPhases: the budget is per Do, not per RunPhase — legs
// share it.
func TestBudgetSpansPhases(t *testing.T) {
	m := newM(t, 1, 0)
	load(t, m, 0, spinSrc)
	s := guard.New(m, guard.Options{CycleBudget: 1000})
	err := s.Do(func() error {
		if _, err := s.RunPhase(600); err != nil && !errors.Is(err, machine.ErrCycleLimit) {
			return err
		}
		_, err := s.RunPhase(600) // only 400 of budget left
		return err
	})
	var se *guard.StallError
	if !errors.As(err, &se) || se.Kind != guard.StallBudget {
		t.Fatalf("want StallBudget across phases, got %v", err)
	}
	if got := m.Cycle; got != 1000 {
		t.Fatalf("stopped at cycle %d, want exactly the 1000-cycle budget", got)
	}
}

// TestHangAbandon: a run that never reaches a sync point is declared
// wedged after the grace period; the machine must then be abandoned.
func TestHangAbandon(t *testing.T) {
	m := newM(t, 1, 0)
	release := make(chan struct{})
	s := guard.New(m, guard.Options{Timeout: 10 * time.Millisecond, Grace: 30 * time.Millisecond})
	err := s.Do(func() error {
		<-release
		return nil
	})
	close(release)
	if !guard.IsHang(err) {
		t.Fatalf("want hang, got %v", err)
	}
	var se *guard.StallError
	errors.As(err, &se)
	if se.DumpPath != "" {
		t.Fatal("hang must not attempt a snapshot: the run still owns the machine")
	}
}

// TestCrashDumpRestoreResume: the crash dump written on an injected panic
// is a loadable snapshot, and (serial engine, probe firing before the
// step) resuming it completes with exactly the uncrashed result.
func TestCrashDumpRestoreResume(t *testing.T) {
	bare := newM(t, 1, 0)
	load(t, bare, 0, countSrc(200))
	if _, err := bare.Run(100000); err != nil {
		t.Fatal(err)
	}
	bareEnd := bare.Cycle
	want := finalCount(bare, 0)

	dump := filepath.Join(t.TempDir(), "crash.msnap")
	m := newM(t, 1, 0)
	load(t, m, 0, countSrc(200))
	m.SetFaultProbe(func(node int, cycle int64) {
		if cycle == 50 {
			panic(injected{node: node, cycle: cycle})
		}
	})
	s := guard.New(m, guard.Options{DumpPath: dump})
	_, err := s.Run(100000)
	var ce *guard.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if ce.DumpPath != dump {
		t.Fatalf("dump path = %q, want %q", ce.DumpPath, dump)
	}

	f, err := os.Open(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := newM(t, 1, 0)
	if err := r.Restore(f); err != nil {
		t.Fatalf("crash dump does not restore: %v", err)
	}
	if r.Cycle != 50 {
		t.Fatalf("restored at cycle %d, want the crash cycle 50", r.Cycle)
	}
	if _, err := r.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := finalCount(r, 0); got != want || r.Cycle != bareEnd {
		t.Fatalf("resumed run diverged: count=%d want %d, end cycle=%d want %d", got, want, r.Cycle, bareEnd)
	}
}

// TestWatchdogStopSaveRestoreResume: a machine stopped mid-run by the
// wall-clock watchdog is at a clean cycle boundary — machine.Save right
// after the supervised Run returns must produce a snapshot from which a
// fresh machine resumes bit-identically to the stopped original. This is
// the foundation the serve checkpoint/retry path is built on, so it is
// pinned here for both engines: the stop lands at an unpredictable cycle
// (it races the wall clock), yet the saved state must be exact.
func TestWatchdogStopSaveRestoreResume(t *testing.T) {
	for _, workers := range []int{0, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			m := newM(t, 3, workers)
			for i := 0; i < 3; i++ {
				load(t, m, i, spinSrc)
			}
			s := guard.New(m, guard.Options{Timeout: 50 * time.Millisecond})
			_, err := s.Run(1 << 40)
			var se *guard.StallError
			if !errors.As(err, &se) || se.Kind != guard.StallTimeout {
				t.Fatalf("want StallTimeout, got %v", err)
			}

			// Save the stopped machine and restore into a fresh one.
			var snap bytes.Buffer
			if err := m.Save(&snap); err != nil {
				t.Fatalf("Save after watchdog stop: %v", err)
			}
			stopCycle := m.Cycle
			r := newM(t, 3, workers)
			if err := r.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("Restore of watchdog-stop snapshot: %v", err)
			}
			if r.Cycle != stopCycle {
				t.Fatalf("restored at cycle %d, want the stop cycle %d", r.Cycle, stopCycle)
			}

			// Resume BOTH machines the same fixed distance; their full final
			// snapshots must be byte-identical — the restored machine is the
			// stopped one, not an approximation of it.
			if _, err := m.Run(5000); !errors.Is(err, machine.ErrCycleLimit) {
				t.Fatalf("original not resumable after stop: %v", err)
			}
			if _, err := r.Run(5000); !errors.Is(err, machine.ErrCycleLimit) {
				t.Fatalf("restored machine not resumable: %v", err)
			}
			var a, b bytes.Buffer
			if err := m.Save(&a); err != nil {
				t.Fatal(err)
			}
			if err := r.Save(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("resumed states diverge: %d vs %d byte snapshots (stop cycle %d)",
					a.Len(), b.Len(), stopCycle)
			}
			if finalCount(m, 0) != finalCount(r, 0) {
				t.Fatalf("counts diverge: %d vs %d", finalCount(m, 0), finalCount(r, 0))
			}
		})
	}
}

// TestDumpFailureDoesNotMask: an unwritable dump path degrades to a note
// in the diagnostic; the primary error class is unchanged.
func TestDumpFailureDoesNotMask(t *testing.T) {
	m := newM(t, 1, 0)
	load(t, m, 0, spinSrc)
	m.SetFaultProbe(func(node int, cycle int64) {
		if cycle == 10 {
			panic("boom")
		}
	})
	s := guard.New(m, guard.Options{DumpPath: filepath.Join(t.TempDir(), "no", "such", "dir", "d.msnap")})
	_, err := s.Run(1 << 40)
	var ce *guard.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("dump failure changed the error class: %v", err)
	}
	if ce.DumpPath != "" {
		t.Fatal("DumpPath set although the write failed")
	}
	if !strings.Contains(ce.Diagnostic, "crash dump failed") {
		t.Fatal("dump failure not recorded in the diagnostic")
	}
}

// TestErrorsPassThrough: ordinary errors from the supervised function are
// returned verbatim — supervision adds nothing to the success/plain-error
// paths.
func TestErrorsPassThrough(t *testing.T) {
	m := newM(t, 1, 0)
	s := guard.New(m, guard.Options{Timeout: time.Second})
	sentinel := errors.New("scenario failed")
	if err := s.Do(func() error { return sentinel }); err != sentinel {
		t.Fatalf("got %v, want the sentinel verbatim", err)
	}
	if err := s.Do(func() error { return nil }); err != nil {
		t.Fatalf("got %v, want nil", err)
	}
}
