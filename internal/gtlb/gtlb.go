// Package gtlb implements the M-Machine's global translation lookaside
// buffer and the global destination table it caches (Section 4.1,
// "Message Address Translation", Figure 8).
//
// A single GDT entry maps a page-group — a power-of-two number of 1024-word
// pages — across a contiguous 3-D rectangular region of nodes whose sides
// are powers of two. The pages-per-node field interleaves consecutive pages
// over the region's nodes, implementing "a spectrum of block and cyclic
// interleavings".
//
// Note on page size: the GTLB operates on 1024-word pages ("each page is
// 1024 words") while the local paging system uses 512-word pages; the two
// mechanisms are independent (Section 2: "The segmentation and paging
// mechanisms are independent"). Both constants are kept faithfully.
package gtlb

import (
	"errors"
	"fmt"
)

// GTLBPageWords is the page granularity of global translation (Figure 8's
// encoding is in units of these pages).
const GTLBPageWords = 1024

// NodeID is a physical node address in the 3-D mesh.
type NodeID struct{ X, Y, Z int }

func (n NodeID) String() string { return fmt.Sprintf("(%d,%d,%d)", n.X, n.Y, n.Z) }

// Entry is one GDT/GTLB entry (Figure 8): virtual page tag, starting node,
// log2 extents of the mapped region in each dimension, page-group length in
// pages, and pages placed per node.
type Entry struct {
	VirtPage     uint64 // first GTLB page of the group (the lookup tag)
	GroupPages   uint64 // page-group length: power of two number of pages
	Start        NodeID // origin of the mapped region
	ExtentLog    [3]int // log2 of the region's X, Y, Z dimensions
	PagesPerNode uint64 // consecutive pages placed on each node
}

// Validate checks the power-of-two constraints of the encoding.
func (e *Entry) Validate() error {
	if e.GroupPages == 0 || e.GroupPages&(e.GroupPages-1) != 0 {
		return fmt.Errorf("gtlb: page-group length %d not a power of two", e.GroupPages)
	}
	if e.PagesPerNode == 0 || e.PagesPerNode&(e.PagesPerNode-1) != 0 {
		return fmt.Errorf("gtlb: pages-per-node %d not a power of two", e.PagesPerNode)
	}
	for d, l := range e.ExtentLog {
		if l < 0 || l > 7 {
			return fmt.Errorf("gtlb: extent log %d out of range in dim %d", l, d)
		}
	}
	return nil
}

// Nodes returns the number of nodes in the mapped region.
func (e *Entry) Nodes() uint64 {
	return uint64(1) << (e.ExtentLog[0] + e.ExtentLog[1] + e.ExtentLog[2])
}

// Covers reports whether the entry maps the given GTLB page number.
func (e *Entry) Covers(page uint64) bool {
	return page >= e.VirtPage && page-e.VirtPage < e.GroupPages
}

// NodeFor translates a virtual word address covered by this entry to the
// node holding it. Consecutive runs of PagesPerNode pages go to consecutive
// nodes of the region in X-major order, wrapping around the region as the
// page-group exceeds region capacity.
func (e *Entry) NodeFor(vaddr uint64) NodeID {
	page := vaddr / GTLBPageWords
	rel := (page - e.VirtPage) / e.PagesPerNode % e.Nodes()
	dx := rel & (1<<e.ExtentLog[0] - 1)
	rel >>= e.ExtentLog[0]
	dy := rel & (1<<e.ExtentLog[1] - 1)
	rel >>= e.ExtentLog[1]
	dz := rel
	return NodeID{e.Start.X + int(dx), e.Start.Y + int(dy), e.Start.Z + int(dz)}
}

// ErrNoMapping is returned when no entry covers an address.
var ErrNoMapping = errors.New("gtlb: no mapping for address")

// Table is the software global destination table: the complete set of
// entries, maintained by system software.
type Table struct {
	entries []Entry
}

// Add validates and installs an entry in the GDT.
func (t *Table) Add(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	for i := range t.entries {
		old := &t.entries[i]
		if e.VirtPage < old.VirtPage+old.GroupPages && old.VirtPage < e.VirtPage+e.GroupPages {
			return fmt.Errorf("gtlb: entry overlaps existing group at page %d", old.VirtPage)
		}
	}
	t.entries = append(t.entries, e)
	return nil
}

// Lookup finds the entry covering vaddr.
func (t *Table) Lookup(vaddr uint64) (Entry, error) {
	page := vaddr / GTLBPageWords
	for i := range t.entries {
		if t.entries[i].Covers(page) {
			return t.entries[i], nil
		}
	}
	return Entry{}, fmt.Errorf("%w: %#x", ErrNoMapping, vaddr)
}

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// GTLB caches GDT entries with fully associative FIFO replacement, as the
// hardware structure consulted by the SEND instruction and the GPROBE
// operation.
type GTLB struct {
	gdt      *Table `snap:"derived,machine-shared table, rewired at construction"`
	resident []Entry
	capacity int `snap:"derived,fixed at construction; decode bounds-checks against it"`

	Hits, Misses uint64
}

// New creates a GTLB of the given capacity backed by the GDT.
func New(gdt *Table, capacity int) *GTLB {
	return &GTLB{gdt: gdt, capacity: capacity}
}

// Translate maps a virtual address to its home node. A miss refills from
// the GDT transparently (the refill is performed by system software in the
// real machine; its cost is charged by the caller's handler code path).
func (g *GTLB) Translate(vaddr uint64) (NodeID, error) {
	page := vaddr / GTLBPageWords
	for i := range g.resident {
		if g.resident[i].Covers(page) {
			g.Hits++
			return g.resident[i].NodeFor(vaddr), nil
		}
	}
	g.Misses++
	e, err := g.gdt.Lookup(vaddr)
	if err != nil {
		return NodeID{}, err
	}
	if len(g.resident) < g.capacity {
		g.resident = append(g.resident, e)
	} else if g.capacity > 0 {
		copy(g.resident, g.resident[1:])
		g.resident[len(g.resident)-1] = e
	}
	return e.NodeFor(vaddr), nil
}
