package gtlb

import (
	"bytes"
	"testing"

	"repro/internal/snap"
	"repro/internal/snap/snaptest"
)

// TestGTLBFieldRoundTrip mutates every serializable GTLB field and
// asserts the encoding both sees the change and round-trips it —
// the runtime complement to the snapfields static pass.
func TestGTLBFieldRoundTrip(t *testing.T) {
	g := &GTLB{
		capacity: 4,
		resident: []Entry{{
			VirtPage:     7,
			GroupPages:   8,
			Start:        NodeID{X: 1},
			ExtentLog:    [3]int{1, 1, 0},
			PagesPerNode: 2,
		}},
		Hits:   3,
		Misses: 5,
	}
	snaptest.Fields(t, g, snaptest.Codec[GTLB]{
		Encode: func(g *GTLB) []byte { return snaptest.Encode(t, g.EncodeState) },
		Decode: func(data []byte) (*GTLB, error) {
			r := snap.NewReader(bytes.NewReader(data))
			d := DecodeGTLBState(r, 4)
			return d, r.Err()
		},
		Mutate: map[string]func(*GTLB) func(){
			// Entries are validated at decode (power-of-two group and
			// placement sizes), so mutate the unconstrained lookup tag.
			"resident": func(g *GTLB) func() {
				g.resident[0].VirtPage ^= 1
				return func() { g.resident[0].VirtPage ^= 1 }
			},
		},
	})
}
