package gtlb

import (
	"errors"
	"testing"
	"testing/quick"
)

func entry2x2x2(pagesPerNode uint64) Entry {
	return Entry{
		VirtPage:     0,
		GroupPages:   64,
		Start:        NodeID{0, 0, 0},
		ExtentLog:    [3]int{1, 1, 1}, // 2x2x2 = 8 nodes
		PagesPerNode: pagesPerNode,
	}
}

func TestEntryValidate(t *testing.T) {
	good := entry2x2x2(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	bad := good
	bad.GroupPages = 3
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two group length accepted")
	}
	bad = good
	bad.PagesPerNode = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pages-per-node accepted")
	}
	bad = good
	bad.ExtentLog[1] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative extent accepted")
	}
}

func TestCyclicInterleaving(t *testing.T) {
	// pages-per-node = 1: consecutive pages go to consecutive nodes.
	e := entry2x2x2(1)
	want := []NodeID{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
		{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
	}
	for p, w := range want {
		got := e.NodeFor(uint64(p) * GTLBPageWords)
		if got != w {
			t.Errorf("page %d -> %v, want %v", p, got, w)
		}
	}
	// Page 8 wraps back to the first node.
	if got := e.NodeFor(8 * GTLBPageWords); got != want[0] {
		t.Errorf("page 8 -> %v, want wrap to %v", got, want[0])
	}
}

func TestBlockInterleaving(t *testing.T) {
	// pages-per-node = 8 on 8 nodes, 64-page group: node changes every 8 pages.
	e := entry2x2x2(8)
	if got := e.NodeFor(0); got != (NodeID{0, 0, 0}) {
		t.Errorf("page 0 -> %v", got)
	}
	if got := e.NodeFor(7 * GTLBPageWords); got != (NodeID{0, 0, 0}) {
		t.Errorf("page 7 -> %v, want node 0", got)
	}
	if got := e.NodeFor(8 * GTLBPageWords); got != (NodeID{1, 0, 0}) {
		t.Errorf("page 8 -> %v, want (1,0,0)", got)
	}
	if got := e.NodeFor(63 * GTLBPageWords); got != (NodeID{1, 1, 1}) {
		t.Errorf("page 63 -> %v, want (1,1,1)", got)
	}
}

func TestStartingNodeOffset(t *testing.T) {
	e := entry2x2x2(1)
	e.Start = NodeID{2, 3, 4}
	if got := e.NodeFor(0); got != (NodeID{2, 3, 4}) {
		t.Errorf("page 0 -> %v, want start (2,3,4)", got)
	}
	if got := e.NodeFor(3 * GTLBPageWords); got != (NodeID{3, 4, 4}) {
		t.Errorf("page 3 -> %v, want (3,4,4)", got)
	}
}

func TestWordsWithinPageSameNode(t *testing.T) {
	e := entry2x2x2(1)
	for _, off := range []uint64{0, 1, 511, 512, 1023} {
		if got := e.NodeFor(5*GTLBPageWords + off); got != e.NodeFor(5*GTLBPageWords) {
			t.Fatalf("offset %d moved node: %v", off, got)
		}
	}
}

func TestTableAddAndLookup(t *testing.T) {
	var gdt Table
	if err := gdt.Add(entry2x2x2(1)); err != nil {
		t.Fatal(err)
	}
	// Overlapping group rejected.
	if err := gdt.Add(Entry{VirtPage: 32, GroupPages: 64, PagesPerNode: 1}); err == nil {
		t.Error("overlapping entry accepted")
	}
	// Adjacent group accepted.
	e2 := Entry{VirtPage: 64, GroupPages: 16, Start: NodeID{4, 0, 0}, PagesPerNode: 1}
	if err := gdt.Add(e2); err != nil {
		t.Fatal(err)
	}
	got, err := gdt.Lookup(65 * GTLBPageWords)
	if err != nil || got.VirtPage != 64 {
		t.Errorf("Lookup = %+v, %v", got, err)
	}
	if _, err := gdt.Lookup(1000 * GTLBPageWords); !errors.Is(err, ErrNoMapping) {
		t.Errorf("unmapped lookup err = %v, want ErrNoMapping", err)
	}
	if gdt.Len() != 2 {
		t.Errorf("Len = %d, want 2", gdt.Len())
	}
}

func TestGTLBCachingAndStats(t *testing.T) {
	var gdt Table
	if err := gdt.Add(entry2x2x2(1)); err != nil {
		t.Fatal(err)
	}
	g := New(&gdt, 4)
	if _, err := g.Translate(0); err != nil {
		t.Fatal(err)
	}
	if g.Misses != 1 || g.Hits != 0 {
		t.Fatalf("after first translate: hits=%d misses=%d", g.Hits, g.Misses)
	}
	if _, err := g.Translate(GTLBPageWords * 3); err != nil {
		t.Fatal(err)
	}
	if g.Hits != 1 {
		t.Errorf("second translate should hit: hits=%d", g.Hits)
	}
	if _, err := g.Translate(1 << 40); err == nil {
		t.Error("unmapped translate succeeded")
	}
}

func TestGTLBEviction(t *testing.T) {
	var gdt Table
	for i := uint64(0); i < 3; i++ {
		if err := gdt.Add(Entry{
			VirtPage: i * 16, GroupPages: 16,
			Start: NodeID{int(i), 0, 0}, PagesPerNode: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	g := New(&gdt, 2)
	for i := uint64(0); i < 3; i++ {
		if _, err := g.Translate(i * 16 * GTLBPageWords); err != nil {
			t.Fatal(err)
		}
	}
	// Entry 0 was evicted: translating it again must miss and refill.
	misses := g.Misses
	if _, err := g.Translate(0); err != nil {
		t.Fatal(err)
	}
	if g.Misses != misses+1 {
		t.Errorf("expected refill miss, misses=%d", g.Misses)
	}
}

// Property: every page of a group maps inside the region, and with
// pages-per-node = 1 an entire region's worth of consecutive pages covers
// every node exactly once.
func TestNodeForStaysInRegionProperty(t *testing.T) {
	f := func(exRaw [3]uint8, ppnExp uint8, pageOff uint16) bool {
		var e Entry
		total := 0
		for d := 0; d < 3; d++ {
			e.ExtentLog[d] = int(exRaw[d] % 3)
			total += e.ExtentLog[d]
		}
		e.PagesPerNode = 1 << (ppnExp % 4)
		e.GroupPages = e.Nodes() * e.PagesPerNode * 4
		page := uint64(pageOff) % e.GroupPages
		n := e.NodeFor(page * GTLBPageWords)
		for d, c := range []int{n.X, n.Y, n.Z} {
			if c < 0 || c >= 1<<e.ExtentLog[d] {
				return false
			}
		}
		_ = total
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCyclicCoversAllNodesOnce(t *testing.T) {
	e := entry2x2x2(1)
	seen := map[NodeID]int{}
	for p := uint64(0); p < e.Nodes(); p++ {
		seen[e.NodeFor(p*GTLBPageWords)]++
	}
	if len(seen) != int(e.Nodes()) {
		t.Fatalf("covered %d nodes, want %d", len(seen), e.Nodes())
	}
	for n, c := range seen {
		if c != 1 {
			t.Errorf("node %v hit %d times", n, c)
		}
	}
}
