package gtlb

// Checkpoint support (DESIGN.md, "Checkpoint/restore") for the global
// destination table and the per-chip GTLB caches: EncodeState streams,
// the DecodeXState functions rebuild detached scratch objects (entries
// are re-validated on the way in), and Adopt commits in place.

import (
	"fmt"

	"repro/internal/snap"
)

// maxEntries bounds decoded entry counts against corrupt input.
const maxEntries = 1 << 16

func encodeEntry(w *snap.Writer, e *Entry) {
	w.U64(e.VirtPage)
	w.U64(e.GroupPages)
	w.Int(e.Start.X)
	w.Int(e.Start.Y)
	w.Int(e.Start.Z)
	for _, l := range e.ExtentLog {
		w.Int(l)
	}
	w.U64(e.PagesPerNode)
}

func decodeEntry(r *snap.Reader) Entry {
	e := Entry{
		VirtPage:   r.U64(),
		GroupPages: r.U64(),
		Start:      NodeID{X: r.Int(), Y: r.Int(), Z: r.Int()},
	}
	for i := range e.ExtentLog {
		e.ExtentLog[i] = r.Int()
	}
	e.PagesPerNode = r.U64()
	if r.Err() == nil {
		if err := e.Validate(); err != nil {
			r.Fail(fmt.Errorf("snapshot entry: %w", err))
		}
	}
	return e
}

// EncodeState writes the GDT's entries in installation order.
func (t *Table) EncodeState(w *snap.Writer) {
	w.Len(len(t.entries))
	for i := range t.entries {
		encodeEntry(w, &t.entries[i])
	}
}

// DecodeTableState reads a GDT written by EncodeState.
func DecodeTableState(r *snap.Reader) *Table {
	t := &Table{}
	n := r.Len(maxEntries)
	for i := 0; i < n; i++ {
		t.entries = append(t.entries, decodeEntry(r))
	}
	return t
}

// Adopt replaces t's entries with src's.
func (t *Table) Adopt(src *Table) {
	t.entries = append(t.entries[:0], src.entries...)
}

// EncodeState writes the GTLB's resident entries in refill order and its
// statistics.
func (g *GTLB) EncodeState(w *snap.Writer) {
	w.Len(len(g.resident))
	for i := range g.resident {
		encodeEntry(w, &g.resident[i])
	}
	w.U64(g.Hits)
	w.U64(g.Misses)
}

// DecodeGTLBState reads a GTLB written by EncodeState. The scratch cache
// has no backing GDT; Adopt preserves the live one's.
func DecodeGTLBState(r *snap.Reader, capacity int) *GTLB {
	g := &GTLB{capacity: capacity}
	n := r.Len(maxEntries)
	for i := 0; i < n; i++ {
		g.resident = append(g.resident, decodeEntry(r))
	}
	if r.Err() == nil && n > capacity {
		r.Fail(fmt.Errorf("gtlb: snapshot has %d resident entries, capacity %d", n, capacity))
	}
	g.Hits = r.U64()
	g.Misses = r.U64()
	return g
}

// Adopt replaces g's resident set and statistics with src's, keeping g's
// backing GDT and capacity.
func (g *GTLB) Adopt(src *GTLB) {
	g.resident = append(g.resident[:0], src.resident...)
	g.Hits = src.Hits
	g.Misses = src.Misses
}
