// Package dist is the distributed multi-process engine (DESIGN.md, "The
// distributed engine"): a coordinator partitions the mesh into contiguous
// node ranges and farms each range out to a shard worker process on the
// same host, connected over loopback sockets. The participant set is
// fixed at session start and every shard has an explicit locator — the
// HDDS-Micro idiom of a small, preallocated, fully-enumerated federation
// rather than an elastic cluster.
//
// The engine is conservatively synchronized and bit-identical to the
// in-process engines: the coordinator owns the authoritative network,
// the clock, and the run-loop completion checks, while shards own chip
// state and step only their range. The existing outbox drain phase is
// the inter-process exchange point — shards ship their drained outboxes
// back each window and the coordinator injects them in global node
// order, so sequence numbers (and therefore every simulated result)
// match an in-process run exactly.
//
// The headline is supervision (the robustness story of internal/serve
// applied across process boundaries): the coordinator heartbeats each
// shard, enforces a per-window wall deadline, classifies failures as
// crash / stall / lost connection, and recovers a dead shard by
// respawning it and rewinding the whole federation to the latest
// coordinated window-boundary checkpoint, from which execution resumes
// bit-identically.
//
// This file is the wire protocol: length-prefixed frames over any
// net.Conn (loopback TCP for real workers, net.Pipe for in-process
// ones), with snap-encoded payloads.
package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/noc"
	"repro/internal/snap"
)

// protoVersion gates the handshake: a coordinator and worker from
// different builds refuse to pair instead of corrupting each other.
const protoVersion = 1

// Frame kinds. Commands flow coordinator -> worker, replies worker ->
// coordinator; repHeartbeat may arrive between any command and its reply.
const (
	cmdInit     = byte(0x01) // initSpec: shard identity, range, chaos
	cmdSeed     = byte(0x02) // full machine snapshot (machine.Save bytes)
	cmdBeginRun = byte(0x03) // run-phase entry: wake chips, report activity
	cmdStep     = byte(0x04) // stepCmd: advance owned chips one cycle
	cmdSkip     = byte(0x05) // skipCmd: materialize deferred idle cycles
	cmdPull     = byte(0x06) // request a shard frame (machine.EncodeShard)
	cmdShutdown = byte(0x07) // orderly exit

	repHello     = byte(0x41) // worker's first frame: protocol version
	repOK        = byte(0x42) // empty acknowledgement
	repActivity  = byte(0x43) // activity aggregates
	repStep      = byte(0x44) // stepReply
	repFrame     = byte(0x45) // shard frame bytes
	repErr       = byte(0x46) // contained worker failure (classified crash)
	repHeartbeat = byte(0x47) // liveness beacon from the worker
)

// maxFrame bounds a frame payload; anything larger is a corrupt stream.
const maxFrame = 1 << 30

// writeFrame writes one [kind][len u32 LE][payload] frame.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame written by writeFrame.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte cap", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ChaosSpec is a deterministic worker-side fault for drills and tests
// (see internal/faultinject): when the owning shard is about to step
// Node at Cycle, it panics (Kind "panic", contained and reported as a
// crash) or wedges forever (Kind "hang", tripping the coordinator's
// per-window deadline). Chaos never alters simulated state — a recovered
// run is bit-identical to an undisturbed one.
type ChaosSpec struct {
	Node  int
	Cycle int64
	Kind  string // "panic" | "hang"
}

// initSpec configures a worker: its shard index, owned node range
// [Lo, Hi), heartbeat cadence, and any armed chaos.
type initSpec struct {
	Shard, Lo, Hi   int
	HeartbeatMillis int64
	Chaos           []ChaosSpec
}

func encodeInit(s *initSpec) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Int(s.Shard)
	w.Int(s.Lo)
	w.Int(s.Hi)
	w.I64(s.HeartbeatMillis)
	w.Len(len(s.Chaos))
	for _, c := range s.Chaos {
		w.Int(c.Node)
		w.I64(c.Cycle)
		w.String(c.Kind)
	}
	return buf.Bytes()
}

func decodeInit(p []byte) (*initSpec, error) {
	r := limitedReader(p)
	s := &initSpec{Shard: r.Int(), Lo: r.Int(), Hi: r.Int(), HeartbeatMillis: r.I64()}
	n := r.Len(1 << 16)
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Chaos = append(s.Chaos, ChaosSpec{Node: r.Int(), Cycle: r.I64(), Kind: r.String(64)})
	}
	return s, r.Err()
}

// activity carries one shard's run-loop aggregates, computed by
// machine.ShardActivity with the same definitions as the in-process
// loop head: running user H-Threads, non-quiescent chips, instructions
// issued, the earliest chip event, and the first fault in scan order.
type activity struct {
	Running, Busy int
	Issued        uint64
	Next          int64
	Fault         string
}

func (a *activity) encode(w *snap.Writer) {
	w.Int(a.Running)
	w.Int(a.Busy)
	w.U64(a.Issued)
	w.I64(a.Next)
	w.String(a.Fault)
}

func decodeActivity(r *snap.Reader) activity {
	return activity{
		Running: r.Int(),
		Busy:    r.Int(),
		Issued:  r.U64(),
		Next:    r.I64(),
		Fault:   r.String(1 << 12),
	}
}

func encodeActivityFrame(a *activity) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	a.encode(w)
	return buf.Bytes()
}

func decodeActivityFrame(p []byte) (activity, error) {
	r := limitedReader(p)
	a := decodeActivity(r)
	return a, r.Err()
}

// delivery ships one authoritative-network delivery to the shard that
// owns the destination node; the shard replays it into its local
// mailbox so the chip consumes it exactly as it would in-process.
type delivery struct {
	Node, Pri int
	Msg       *noc.Message
}

// stepCmd advances a shard's owned chips through machine cycle Cycle.
// The gap between the shard's local clock and Cycle is the deferred
// idle window the coordinator fast-forwarded over; the shard
// materializes it with SkipCycles first, exactly like machine.skip.
type stepCmd struct {
	Cycle      int64
	Deliveries []delivery
}

func encodeStep(net *noc.Network, c *stepCmd) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.I64(c.Cycle)
	w.Len(len(c.Deliveries))
	for _, d := range c.Deliveries {
		w.Int(d.Node)
		w.Int(d.Pri)
		net.EncodeMessage(w, d.Msg)
	}
	return buf.Bytes()
}

func decodeStep(net *noc.Network, p []byte) (*stepCmd, error) {
	r := limitedReader(p)
	c := &stepCmd{Cycle: r.I64()}
	n := r.Len(1 << 24)
	for i := 0; i < n && r.Err() == nil; i++ {
		c.Deliveries = append(c.Deliveries, delivery{
			Node: r.Int(),
			Pri:  r.Int(),
			Msg:  net.DecodeMessage(r),
		})
	}
	return c, r.Err()
}

// consumption confirms that the shard's chip consumed N messages from
// its (Node, Pri) mailbox this cycle, so the coordinator can retire the
// same N from the authoritative arrival queue — keeping the two exactly
// equal at every synchronization point.
type consumption struct {
	Node, Pri, N int
}

// traceEvent is one chip trace record shipped back to the coordinator,
// which replays the events of all shards in global node order so the
// observed trace stream matches the serial engines'.
type traceEvent struct {
	Cycle         int64
	Node          int
	Event, Detail string
}

// stepReply is everything one shard produced during one cycle: drained
// outbox messages in node order (the coordinator injects them, assigning
// global sequence numbers), consumption confirmations, trace events, and
// the post-step activity aggregates.
type stepReply struct {
	Msgs     []*noc.Message
	Consumed []consumption
	Trace    []traceEvent
	Act      activity
}

func encodeStepReply(net *noc.Network, rep *stepReply) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Len(len(rep.Msgs))
	for _, m := range rep.Msgs {
		net.EncodeMessage(w, m)
	}
	w.Len(len(rep.Consumed))
	for _, c := range rep.Consumed {
		w.Int(c.Node)
		w.Int(c.Pri)
		w.Int(c.N)
	}
	w.Len(len(rep.Trace))
	for _, t := range rep.Trace {
		w.I64(t.Cycle)
		w.Int(t.Node)
		w.String(t.Event)
		w.String(t.Detail)
	}
	rep.Act.encode(w)
	return buf.Bytes()
}

func decodeStepReply(net *noc.Network, p []byte) (*stepReply, error) {
	r := limitedReader(p)
	rep := &stepReply{}
	n := r.Len(1 << 24)
	for i := 0; i < n && r.Err() == nil; i++ {
		rep.Msgs = append(rep.Msgs, net.DecodeMessage(r))
	}
	n = r.Len(1 << 24)
	for i := 0; i < n && r.Err() == nil; i++ {
		rep.Consumed = append(rep.Consumed, consumption{Node: r.Int(), Pri: r.Int(), N: r.Int()})
	}
	n = r.Len(1 << 24)
	for i := 0; i < n && r.Err() == nil; i++ {
		rep.Trace = append(rep.Trace, traceEvent{
			Cycle: r.I64(), Node: r.Int(),
			Event: r.String(1 << 12), Detail: r.String(1 << 16),
		})
	}
	rep.Act = decodeActivity(r)
	return rep, r.Err()
}

func encodeI64(v int64) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.I64(v)
	return buf.Bytes()
}

func decodeI64(p []byte) (int64, error) {
	r := limitedReader(p)
	v := r.I64()
	return v, r.Err()
}

func encodeString(s string) []byte {
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.String(s)
	return buf.Bytes()
}

func decodeString(p []byte) (string, error) {
	r := limitedReader(p)
	s := r.String(1 << 20)
	return s, r.Err()
}

// limitedReader wraps payload bytes in a snap.Reader with its length
// limit armed, so corrupt counts fail descriptively instead of
// attempting huge allocations.
func limitedReader(p []byte) *snap.Reader {
	r := snap.NewReader(bytes.NewReader(p))
	r.Limit(int64(len(p)))
	return r
}

// netConn is the transport a shard connection needs: framed I/O plus
// deadlines for the per-window watchdog. Both loopback TCP sockets and
// net.Pipe halves satisfy it.
type netConn = net.Conn

// writeDeadline is how long a frame write may block before the shard is
// declared unresponsive (a wedged worker eventually fills the socket
// buffer; without a deadline the coordinator would wedge with it).
func writeFrameDeadline(c netConn, kind byte, payload []byte, d time.Duration) error {
	if d > 0 {
		if err := c.SetWriteDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer c.SetWriteDeadline(time.Time{})
	}
	return writeFrame(c, kind, payload)
}
