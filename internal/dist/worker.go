package dist

// The shard worker: one process (or in-process goroutine, for tests)
// owning a contiguous node range [lo, hi) of the mesh. It holds a full
// machine seeded from the coordinator's snapshot, but steps only its
// owned chips; the local network is never stepped — it serves purely as
// the chips' mailbox, fed by coordinator deliveries (noc.Deliver) and
// drained by the chips' own network input path. Everything the chips
// produce — outbox messages, trace events, activity aggregates — ships
// back to the coordinator each cycle, and the chip phase here replicates
// the serial event engine's exactly: due chips step, idle chips skip,
// output drains in node-index order.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/noc"
)

// WorkerAddrEnv names the environment variable that turns a process
// into a shard worker: when set, the process dials the coordinator at
// that loopback address and serves the shard protocol instead of
// running its normal command line. cmd/mshard, cmd/msim, and the dist
// tests' TestMain all call MaybeWorker first thing, so the coordinator
// can respawn shards by re-executing its own binary.
const WorkerAddrEnv = "MSHARD_WORKER_ADDR"

// MaybeWorker turns the process into a shard worker if WorkerAddrEnv is
// set, never returning in that case. Call it before flag parsing in any
// binary that may be used as a shard worker executable.
func MaybeWorker() {
	addr := os.Getenv(WorkerAddrEnv)
	if addr == "" {
		return
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mshard worker: dial coordinator: %v\n", err)
		os.Exit(3)
	}
	err = ServeConn(conn)
	conn.Close()
	if err != nil && !errors.Is(err, io.EOF) {
		fmt.Fprintf(os.Stderr, "mshard worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// worker is one shard's serving state.
type worker struct {
	conn netConn
	wmu  sync.Mutex // serializes frame writes (replies vs heartbeats)

	spec initSpec
	m    *machine.Machine

	// arrival tracking mirrors machine.wakeArrivals: the owned nodes
	// with delivered-but-unconsumed mailbox messages, woken every cycle
	// until they drain.
	arrNodes []int
	arrMark  []bool

	traceBuf []traceEvent // events emitted during the current chip phase
	outBuf   []*noc.Message

	hbStop chan struct{}
	hbOnce sync.Once
}

// ServeConn serves the shard worker protocol on conn until the
// coordinator shuts the shard down (nil) or the connection dies (the
// transport error). A panic inside a command — a chip bug or injected
// chaos — is contained: the worker reports it as a repErr frame (the
// coordinator classifies it as a crash) and returns it, because the
// machine state is mid-cycle and must not serve further commands.
func ServeConn(conn net.Conn) error {
	w := &worker{conn: conn}
	defer w.stopHeartbeat()
	if err := w.send(repHello, encodeI64(protoVersion)); err != nil {
		return err
	}
	for {
		kind, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		rk, rp, err := w.handle(kind, payload)
		if err != nil {
			// Contained failure: report, then refuse to limp onward.
			w.send(repErr, encodeString(err.Error()))
			return err
		}
		if kind == cmdShutdown {
			w.send(repOK, nil)
			return nil
		}
		if err := w.send(rk, rp); err != nil {
			return err
		}
	}
}

func (w *worker) send(kind byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, kind, payload)
}

func (w *worker) stopHeartbeat() {
	if w.hbStop != nil {
		w.hbOnce.Do(func() { close(w.hbStop) })
	}
}

// handle dispatches one command, containing panics.
func (w *worker) handle(kind byte, payload []byte) (rk byte, rp []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("shard %d: contained panic: %v\n%s", w.spec.Shard, v, debug.Stack())
		}
	}()
	switch kind {
	case cmdInit:
		s, err := decodeInit(payload)
		if err != nil {
			return 0, nil, err
		}
		w.spec = *s
		if w.hbStop == nil && s.HeartbeatMillis > 0 {
			w.hbStop = make(chan struct{})
			go w.heartbeat(time.Duration(s.HeartbeatMillis) * time.Millisecond)
		}
		return repOK, nil, nil
	case cmdSeed:
		return repOK, nil, w.seed(payload)
	case cmdBeginRun:
		a := w.beginRun()
		return repActivity, encodeActivityFrame(&a), nil
	case cmdStep:
		cmd, err := decodeStep(w.m.Net, payload)
		if err != nil {
			return 0, nil, err
		}
		rep := w.step(cmd)
		return repStep, encodeStepReply(w.m.Net, rep), nil
	case cmdSkip:
		to, err := decodeI64(payload)
		if err != nil {
			return 0, nil, err
		}
		return repOK, nil, w.skipTo(to)
	case cmdPull:
		return repFrame, w.pull(), nil
	case cmdShutdown:
		return repOK, nil, nil
	default:
		return 0, nil, fmt.Errorf("shard %d: unknown command %#x", w.spec.Shard, kind)
	}
}

// heartbeat beacons liveness until the worker stops. A wedged command
// (chaos "hang", a livelocked chip bug) does not stop the beacons, which
// is exactly the point: the coordinator distinguishes a shard that is
// alive-but-stuck (stall) from one that went silent (lost).
func (w *worker) heartbeat(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		//mlint:allow detrange heartbeat liveness is supervision-side; shard stepping stays on the command loop
		select {
		case <-w.hbStop:
			return
		case <-t.C:
			if err := w.send(repHeartbeat, nil); err != nil {
				return
			}
		}
	}
}

// seed (re)builds the worker's machine from a full snapshot. The local
// network is then emptied: the authoritative copy of all traffic lives
// in the coordinator, and keeping the snapshot's copies here would
// double-deliver on resume.
func (w *worker) seed(snapshot []byte) error {
	if w.m == nil {
		cfg, err := machine.ReadSnapshotConfig(bytes.NewReader(snapshot))
		if err != nil {
			return err
		}
		w.m = machine.New(cfg)
		w.arrMark = make([]bool, w.m.NumNodes())
	}
	if err := w.m.Restore(bytes.NewReader(snapshot)); err != nil {
		return err
	}
	w.m.Net.ClearTraffic()
	w.arrNodes = w.arrNodes[:0]
	clear(w.arrMark)
	if w.spec.Hi > w.m.NumNodes() || w.spec.Lo < 0 || w.spec.Lo >= w.spec.Hi {
		return fmt.Errorf("shard %d: range [%d,%d) outside the %d-node mesh",
			w.spec.Shard, w.spec.Lo, w.spec.Hi, w.m.NumNodes())
	}
	// Trace hook on owned chips only: events buffer per cycle and ship
	// with the step reply. Unowned chips never step here, so they need
	// no hook.
	for i := w.spec.Lo; i < w.spec.Hi; i++ {
		c := w.m.Chips[i]
		c.BufferTrace = false
		node := i
		c.Trace = func(cycle int64, _ int, event, detail string) {
			w.traceBuf = append(w.traceBuf, traceEvent{Cycle: cycle, Node: node, Event: event, Detail: detail})
		}
	}
	return nil
}

// beginRun is the shard half of machine.Run's entry: wake every owned
// chip so externally mutated state is re-observed, and report the
// activity aggregates the coordinator's first loop-head check needs.
func (w *worker) beginRun() activity {
	for i := w.spec.Lo; i < w.spec.Hi; i++ {
		w.m.Chips[i].Touch()
	}
	w.arrNodes = w.arrNodes[:0]
	for i := w.spec.Lo; i < w.spec.Hi; i++ {
		has := w.m.Net.HasArrivals(i)
		w.arrMark[i] = has
		if has {
			w.arrNodes = append(w.arrNodes, i)
		}
	}
	return w.activity(w.m.Cycle)
}

func (w *worker) activity(now int64) activity {
	running, busy, issued, next, fault := w.m.ShardActivity(w.spec.Lo, w.spec.Hi, now)
	return activity{Running: running, Busy: busy, Issued: issued, Next: next, Fault: fault}
}

// chaos fires any armed fault that is due at cycle t — the worker-side
// fault-injection probe, at the top of the chip phase. Chaos never
// mutates simulated state: a panic is contained and reported, a hang
// wedges the step while heartbeats keep flowing, and either way the
// coordinator rewinds and replays the window without the (disarmed)
// fault.
func (w *worker) chaos(t int64) {
	for _, c := range w.spec.Chaos {
		if c.Cycle <= t {
			if c.Kind == "hang" {
				select {} // wedged forever; heartbeats keep flowing
			}
			panic(fmt.Sprintf("injected panic at node %d, cycle %d", c.Node, t))
		}
	}
}

// skipTo materializes deferred idle cycles: the coordinator fast-
// forwarded the clock to `to`, and the owned chips replay the skipped
// window's idle bookkeeping exactly like machine.skip.
func (w *worker) skipTo(to int64) error {
	d := to - w.m.Cycle
	if d < 0 {
		return fmt.Errorf("shard %d: skip to cycle %d, already at %d", w.spec.Shard, to, w.m.Cycle)
	}
	if d > 0 {
		for i := w.spec.Lo; i < w.spec.Hi; i++ {
			w.m.Chips[i].SkipCycles(d)
		}
		w.m.Cycle = to
	}
	return nil
}

// step advances the owned chips through machine cycle cmd.Cycle,
// replicating one iteration of the serial event engine's chip phase.
func (w *worker) step(cmd *stepCmd) *stepReply {
	t := cmd.Cycle
	if err := w.skipTo(t); err != nil {
		panic(err) // contained by handle; a protocol bug, not a chip bug
	}

	// Replay the coordinator's deliveries into the local mailbox and
	// wake the destinations for this cycle — the in-process machine's
	// wakeArrivals did exactly this at the end of the previous cycle.
	for _, d := range cmd.Deliveries {
		w.m.Net.Deliver(d.Node, d.Pri, d.Msg)
		if !w.arrMark[d.Node] {
			w.arrMark[d.Node] = true
			w.arrNodes = append(w.arrNodes, d.Node)
		}
		w.m.Chips[d.Node].WakeAt(t)
	}

	// Pending counts before the chip phase, for consumption deltas.
	type pend struct{ n0, n1 int }
	before := make([]pend, len(w.arrNodes))
	for k, node := range w.arrNodes {
		co := w.m.Net.CoordOf(node)
		before[k] = pend{w.m.Net.PendingAt(co, 0), w.m.Net.PendingAt(co, 1)}
	}

	// Chip phase, in node-index order: due chips step, idle chips skip.
	w.chaos(t)
	w.traceBuf = w.traceBuf[:0]
	for i := w.spec.Lo; i < w.spec.Hi; i++ {
		c := w.m.Chips[i]
		if c.NextEvent(t) <= t {
			c.Step(t)
		} else {
			c.SkipCycles(1)
		}
	}

	// Drain phase: outboxes in node-index order. The coordinator injects
	// these into the authoritative network in the same order, assigning
	// the same sequence numbers as an in-process drain.
	w.outBuf = w.outBuf[:0]
	for i := w.spec.Lo; i < w.spec.Hi; i++ {
		w.outBuf = w.m.Chips[i].TakeOutbox(w.outBuf)
	}

	rep := &stepReply{Msgs: w.outBuf, Trace: w.traceBuf}

	// Consumption confirmations and next cycle's arrival wake-ups.
	keep := w.arrNodes[:0]
	for k, node := range w.arrNodes {
		co := w.m.Net.CoordOf(node)
		if n := before[k].n0 - w.m.Net.PendingAt(co, 0); n > 0 {
			rep.Consumed = append(rep.Consumed, consumption{Node: node, Pri: 0, N: n})
		}
		if n := before[k].n1 - w.m.Net.PendingAt(co, 1); n > 0 {
			rep.Consumed = append(rep.Consumed, consumption{Node: node, Pri: 1, N: n})
		}
		if w.m.Net.HasArrivals(node) {
			keep = append(keep, node)
			w.m.Chips[node].WakeAt(t + 1)
		} else {
			w.arrMark[node] = false
		}
	}
	w.arrNodes = keep

	w.m.Cycle = t + 1
	rep.Act = w.activity(w.m.Cycle)
	return rep
}

// pull serializes the owned range as a partial-machine frame for
// coordinated checkpoints and end-of-phase reassembly.
func (w *worker) pull() []byte {
	var buf bytes.Buffer
	if err := w.m.EncodeShard(&buf, w.spec.Lo, w.spec.Hi); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
