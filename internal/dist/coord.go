package dist

// The coordinator: owner of the authoritative machine (the "hub"), the
// clock, and the run-loop completion checks. It replicates machine.Run's
// loop bit for bit — the loop-head quiescence checks, the quiet-window
// idle counter, the event-driven fast-forward — but the chip phase of
// each cycle is farmed out to the shard workers, and the hub's chips
// never step. The hub network is the single source of truth for all
// traffic: worker outboxes are injected here in global node order (so
// sequence numbers match an in-process run exactly), deliveries are
// shipped to the owning shard as copies, and a shipped message is retired
// from the hub only when its shard confirms the chip consumed it — which
// keeps the hub's arrival queues equal to the real unconsumed set at
// every synchronization point, and therefore keeps Quiescent, NextEvent,
// and checkpoints exact.
//
// Supervision: every window the coordinator enforces a wall deadline and
// a heartbeat-silence bound on each shard, classifying failures as crash
// (the worker reported a contained panic), stall (alive but wedged), or
// lost (connection dead, process killed). Recovery rewinds the whole
// federation to the latest coordinated checkpoint — taken at run-loop
// heads, where the machine is exactly between cycles — respawns the
// workers, and replays; the replay is bit-identical to an undisturbed
// run because checkpoints capture the full hub state and the loop
// position (cycle, idle counter, at-step flag).

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/machine"
	"repro/internal/snap"
)

// FailureClass labels how a shard died, mirroring internal/serve's
// failure taxonomy across process boundaries.
type FailureClass string

const (
	FailCrash FailureClass = "crash" // worker reported a contained panic
	FailStall FailureClass = "stall" // alive (heartbeating) but missed the window deadline
	FailLost  FailureClass = "lost"  // connection died or went silent
)

// ShardFailure is a supervised shard fault: the coordinator's retry loop
// catches it, recovers from the latest checkpoint, and replays.
type ShardFailure struct {
	Shard int
	Class FailureClass
	Cycle int64
	Err   error
}

func (f *ShardFailure) Error() string {
	return fmt.Sprintf("dist: shard %d %s at cycle %d: %v", f.Shard, f.Class, f.Cycle, f.Err)
}

func (f *ShardFailure) Unwrap() error { return f.Err }

// KillSpec is a supervised fault drill: at the first stepped cycle at or
// after Cycle, the coordinator kills shard Shard's worker outright
// (SIGKILL for process workers), exercising the lost-connection path.
type KillSpec struct {
	Shard int
	Cycle int64
}

// FailureRecord is one observed shard failure, kept for reporting.
type FailureRecord struct {
	Shard  int
	Class  FailureClass
	Cycle  int64
	Detail string
}

// Config parameterizes a Coordinator.
type Config struct {
	// Shards is the worker count; clamped to [1, nodes].
	Shards int
	// Launcher starts shard workers (ProcLauncher for real processes,
	// LocalLauncher for in-process tests). Required.
	Launcher Launcher
	// CheckpointEvery is the coordinated checkpoint cadence in cycles
	// (default 4096; <0 disables mid-phase checkpoints).
	CheckpointEvery int64
	// CheckpointPath, when set, additionally spools each checkpoint to
	// this file via snap.WriteFileAtomic — an operator artifact for
	// inspecting what a recovery would rewind to.
	CheckpointPath string
	// WindowTimeout is the wall deadline for one shard exchange
	// (default 30s). A shard that heartbeats but cannot answer within
	// it is classified as stalled.
	WindowTimeout time.Duration
	// HeartbeatEvery is the worker beacon cadence (default 250ms).
	HeartbeatEvery time.Duration
	// SilenceTimeout bounds the gap between any two frames from a shard
	// (default 3s); silence beyond it is a lost shard.
	SilenceTimeout time.Duration
	// MaxRecoveries caps checkpoint recoveries per coordinator
	// (default 8); the cap trips a terminal error instead of flapping.
	MaxRecoveries int
	// Chaos arms deterministic worker-side faults (tests and drills).
	Chaos []ChaosSpec
	// Kill arms coordinator-side worker kills (tests and drills).
	Kill []KillSpec
	// Trace receives the merged chip trace stream, in the serial
	// engines' order. Nil drops it.
	Trace func(cycle int64, node int, event, detail string)
}

func (cfg *Config) setDefaults() {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 4096
	}
	if cfg.WindowTimeout <= 0 {
		cfg.WindowTimeout = 30 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.SilenceTimeout <= 0 {
		cfg.SilenceTimeout = 3 * time.Second
	}
	if cfg.MaxRecoveries == 0 {
		cfg.MaxRecoveries = 8
	}
}

// checkpoint is a coordinated rewind point: the full hub state plus the
// run-loop position. atStep marks a checkpoint taken after the loop-head
// checks and before the step, so a resume skips the checks once.
type checkpoint struct {
	machine     []byte
	cycle, idle int64
	atStep      bool
	valid       bool
}

// shardConn is the coordinator's view of one worker.
type shardConn struct {
	h         Handle
	shard     int
	lo, hi    int
	lastFrame time.Time
}

// Coordinator drives a sharded federation as a core.PhaseRunner: RunPhase
// has Supervisor.RunPhase semantics (minus cycle budgets, which run.go's
// budget wrapper adds back), so core.ScenarioRun can drive it unchanged.
type Coordinator struct {
	cfg    Config
	m      *machine.Machine // the hub
	shards []*shardConn
	owner  []int // node -> shard index

	// Run-loop state, mirroring machine.Run's locals.
	phaseStart  int64
	cycle, idle int64
	prevIssued  uint64
	acts        []activity

	// Arrival mirroring: per (node, pri), how many of the hub's pending
	// arrivals have been shipped to the owning shard; pend lists nodes
	// with hub arrivals.
	shipped  [][2]int
	pendMark []bool
	pend     []int

	ck           checkpoint
	lastCkpt     int64
	ckCount      int
	pendingTrace []traceEvent

	recoveries int
	failures   []FailureRecord
	chaos      []ChaosSpec
	kill       []KillSpec
}

// New launches cfg.Shards workers for hub machine m and performs the
// init handshake with each. The hub's chips never step again; all
// simulation happens in the workers, reassembled into the hub at phase
// boundaries and checkpoints.
func New(m *machine.Machine, cfg Config) (*Coordinator, error) {
	cfg.setDefaults()
	if cfg.Launcher == nil {
		return nil, errors.New("dist: Config.Launcher is required")
	}
	nodes := m.NumNodes()
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > nodes {
		cfg.Shards = nodes
	}
	co := &Coordinator{
		cfg:      cfg,
		m:        m,
		shards:   make([]*shardConn, cfg.Shards),
		owner:    make([]int, nodes),
		acts:     make([]activity, cfg.Shards),
		shipped:  make([][2]int, nodes),
		pendMark: make([]bool, nodes),
		chaos:    append([]ChaosSpec(nil), cfg.Chaos...),
		kill:     append([]KillSpec(nil), cfg.Kill...),
	}
	// Contiguous partition: nodes/shards each, the first nodes%shards
	// ranges one wider.
	base, rem := nodes/cfg.Shards, nodes%cfg.Shards
	lo := 0
	for i := 0; i < cfg.Shards; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		co.shards[i] = &shardConn{shard: i, lo: lo, hi: hi}
		for n := lo; n < hi; n++ {
			co.owner[n] = i
		}
		lo = hi
	}
	for i := range co.shards {
		if err := co.spawn(i); err != nil {
			co.Close()
			return nil, err
		}
	}
	return co, nil
}

// Shards reports the worker count; Failures and Recoveries report the
// supervision history; Checkpoints counts coordinated checkpoints taken.
func (co *Coordinator) Shards() int               { return len(co.shards) }
func (co *Coordinator) Failures() []FailureRecord { return co.failures }
func (co *Coordinator) Recoveries() int           { return co.recoveries }
func (co *Coordinator) Checkpoints() int          { return co.ckCount }

// Close shuts the federation down: orderly cmdShutdown where possible,
// then handle teardown. Safe on a partially constructed coordinator.
func (co *Coordinator) Close() {
	for _, sc := range co.shards {
		if sc == nil || sc.h == nil {
			continue
		}
		if writeFrameDeadline(sc.h, cmdShutdown, nil, time.Second) == nil {
			sc.h.SetReadDeadline(time.Now().Add(time.Second))
			for {
				kind, _, err := readFrame(sc.h)
				if err != nil || kind == repOK {
					break
				}
			}
		}
		sc.h.Close()
	}
}

// spawn starts (or restarts) shard i's worker and runs the handshake.
func (co *Coordinator) spawn(i int) error {
	sc := co.shards[i]
	if sc.h != nil {
		sc.h.Kill()
		sc.h.Close()
		sc.h = nil
	}
	h, err := co.cfg.Launcher.Start(i)
	if err != nil {
		return fmt.Errorf("dist: start shard %d: %w", i, err)
	}
	sc.h = h
	sc.lastFrame = time.Now()
	kind, payload, ferr := co.read(sc)
	if ferr != nil {
		return fmt.Errorf("dist: shard %d hello: %v", i, ferr)
	}
	if kind != repHello {
		return fmt.Errorf("dist: shard %d: first frame %#x, want hello", i, kind)
	}
	v, err := decodeI64(payload)
	if err != nil || v != protoVersion {
		return fmt.Errorf("dist: shard %d speaks protocol %d, coordinator %d", i, v, protoVersion)
	}
	// Only the chaos armed for this shard's nodes ships in the init.
	var chaos []ChaosSpec
	for _, c := range co.chaos {
		if c.Node >= sc.lo && c.Node < sc.hi {
			chaos = append(chaos, c)
		}
	}
	spec := initSpec{
		Shard: i, Lo: sc.lo, Hi: sc.hi,
		HeartbeatMillis: co.cfg.HeartbeatEvery.Milliseconds(),
		Chaos:           chaos,
	}
	if _, err := co.callExpect(sc, cmdInit, encodeInit(&spec), repOK); err != nil {
		return fmt.Errorf("dist: shard %d init: %v", i, err)
	}
	return nil
}

// write sends one command to a shard under the window deadline.
func (co *Coordinator) write(sc *shardConn, kind byte, payload []byte) *ShardFailure {
	if err := writeFrameDeadline(sc.h, kind, payload, co.cfg.WindowTimeout); err != nil {
		return co.fail(sc, FailLost, fmt.Errorf("write: %w", err))
	}
	return nil
}

// read waits for a shard's next non-heartbeat frame under the window
// deadline and the heartbeat-silence bound, classifying every way the
// wait can end badly.
func (co *Coordinator) read(sc *shardConn) (byte, []byte, *ShardFailure) {
	windowEnd := time.Now().Add(co.cfg.WindowTimeout)
	for {
		deadline := windowEnd
		if sil := sc.lastFrame.Add(co.cfg.SilenceTimeout); sil.Before(deadline) {
			deadline = sil
		}
		sc.h.SetReadDeadline(deadline)
		kind, payload, err := readFrame(sc.h)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				if time.Now().Before(windowEnd) || time.Since(sc.lastFrame) > co.cfg.SilenceTimeout {
					return 0, nil, co.fail(sc, FailLost,
						fmt.Errorf("no frame for %v (heartbeat silence)", time.Since(sc.lastFrame).Round(time.Millisecond)))
				}
				return 0, nil, co.fail(sc, FailStall,
					fmt.Errorf("alive but no reply within the %v window", co.cfg.WindowTimeout))
			}
			return 0, nil, co.fail(sc, FailLost, err)
		}
		sc.lastFrame = time.Now()
		switch kind {
		case repHeartbeat:
			continue
		case repErr:
			msg, _ := decodeString(payload)
			return 0, nil, co.fail(sc, FailCrash, errors.New(msg))
		default:
			return kind, payload, nil
		}
	}
}

func (co *Coordinator) fail(sc *shardConn, class FailureClass, err error) *ShardFailure {
	return &ShardFailure{Shard: sc.shard, Class: class, Cycle: co.cycle, Err: err}
}

// callExpect is a write + read that demands a specific reply kind.
func (co *Coordinator) callExpect(sc *shardConn, kind byte, payload []byte, want byte) ([]byte, *ShardFailure) {
	if f := co.write(sc, kind, payload); f != nil {
		return nil, f
	}
	got, reply, f := co.read(sc)
	if f != nil {
		return nil, f
	}
	if got != want {
		return nil, co.fail(sc, FailCrash, fmt.Errorf("reply %#x, want %#x", got, want))
	}
	return reply, nil
}

// RunPhase runs one machine.Run leg across the federation, recovering
// from shard failures via checkpoint rewind until the leg completes or
// the recovery cap trips. Semantics match Machine.Run: the cycles
// executed (excluding the quiet window) and an error on cycle-limit
// expiry or user faults.
func (co *Coordinator) RunPhase(maxCycles int64) (int64, error) {
	resume := false
	for {
		n, err := co.phaseAttempt(maxCycles, resume)
		var sf *ShardFailure
		if errors.As(err, &sf) {
			if rerr := co.recover(sf); rerr != nil {
				return 0, rerr
			}
			resume = true
			continue
		}
		return n, err
	}
}

// phaseAttempt is one try at the leg: seed the workers from the hub, run,
// and reassemble the hub. A *ShardFailure return means "recover and call
// me again with resume=true".
func (co *Coordinator) phaseAttempt(maxCycles int64, resume bool) (int64, error) {
	if !resume {
		co.phaseStart = co.m.Cycle
		co.cycle, co.idle = co.m.Cycle, 0
		co.ck = checkpoint{}
		co.pendingTrace = co.pendingTrace[:0]
	}
	if err := co.seedAll(); err != nil {
		return 0, err
	}
	if !resume {
		if err := co.takeCheckpoint(false); err != nil {
			return 0, err
		}
	}
	n, err := co.runLeg(maxCycles, resume)
	var sf *ShardFailure
	if errors.As(err, &sf) {
		return n, err
	}
	if serr := co.finishPhase(); serr != nil {
		return n, serr
	}
	return n, err
}

// seedAll ships the hub snapshot to every worker and rebuilds the
// arrival mirror. Seed failures respawn the one affected worker and
// retry in place — the hub was not touched, so there is nothing to
// rewind; exhaustion is terminal (deliberately not a *ShardFailure).
func (co *Coordinator) seedAll() error {
	var buf bytes.Buffer
	if err := co.m.Save(&buf); err != nil {
		return fmt.Errorf("dist: snapshot hub: %w", err)
	}
	snapshot := buf.Bytes()
	for i := range co.shards {
		for {
			_, f := co.callExpect(co.shards[i], cmdSeed, snapshot, repOK)
			if f == nil {
				break
			}
			co.noteFailure(f)
			if co.recoveries >= co.cfg.MaxRecoveries {
				return fmt.Errorf("dist: recovery limit %d exhausted seeding: %v", co.cfg.MaxRecoveries, f)
			}
			co.recoveries++
			if err := co.spawn(i); err != nil {
				return err
			}
		}
	}
	co.pend = co.pend[:0]
	for n := range co.pendMark {
		co.pendMark[n] = false
		co.shipped[n] = [2]int{}
		if co.m.Net.HasArrivals(n) {
			co.pendMark[n] = true
			co.pend = append(co.pend, n)
		}
	}
	return nil
}

// beginRun is the run-loop entry across the federation: every worker
// wakes its chips (machine.Run's WakeAll) and reports activity, from
// which the loop's issue baseline is taken.
func (co *Coordinator) beginRun() *ShardFailure {
	for i, sc := range co.shards {
		payload, f := co.callExpect(sc, cmdBeginRun, nil, repActivity)
		if f != nil {
			return f
		}
		a, err := decodeActivityFrame(payload)
		if err != nil {
			return co.fail(sc, FailCrash, err)
		}
		co.acts[i] = a
	}
	co.prevIssued = co.issued()
	return nil
}

func (co *Coordinator) running() int {
	n := 0
	for i := range co.acts {
		n += co.acts[i].Running
	}
	return n
}

func (co *Coordinator) busy() int {
	n := 0
	for i := range co.acts {
		n += co.acts[i].Busy
	}
	return n
}

func (co *Coordinator) issued() uint64 {
	var n uint64
	for i := range co.acts {
		n += co.acts[i].Issued
	}
	return n
}

// faultErr mirrors Machine.FaultError: the first fault in node-scan
// order (shard order is node order), nil if none.
func (co *Coordinator) faultErr() error {
	for i := range co.acts {
		if co.acts[i].Fault != "" {
			return errors.New(co.acts[i].Fault)
		}
	}
	return nil
}

// runLeg is machine.Run's loop, distributed. Every branch mirrors the
// in-process loop exactly; see Machine.Run.
func (co *Coordinator) runLeg(maxCycles int64, resume bool) (int64, error) {
	bound := co.phaseStart + maxCycles + machine.QuietWindow
	if f := co.beginRun(); f != nil {
		return 0, f
	}
	// A checkpoint taken at a loop head already performed the head's
	// checks; a resume from one goes straight to the step.
	atStep := resume && co.ck.atStep
	for co.cycle < bound {
		if !atStep {
			if co.running() == 0 && co.busy() == 0 && co.m.Net.Quiescent() {
				if co.issued() == co.prevIssued {
					co.idle++
					if co.idle >= machine.QuietWindow {
						return co.cycle - co.phaseStart - co.idle, co.faultErr()
					}
				} else {
					co.prevIssued, co.idle = co.issued(), 0
				}
			} else {
				co.prevIssued, co.idle = co.issued(), 0
			}
			if co.cfg.CheckpointEvery > 0 && co.cycle-co.lastCkpt >= co.cfg.CheckpointEvery {
				if err := co.takeCheckpoint(true); err != nil {
					return co.cycle - co.phaseStart, err
				}
			}
		}
		atStep = false
		if f := co.stepCycle(co.cycle); f != nil {
			return co.cycle - co.phaseStart, f
		}
		co.fastForward(bound)
	}
	if co.running() == 0 {
		return co.cycle - co.phaseStart, co.faultErr()
	}
	return co.cycle - co.phaseStart, fmt.Errorf("machine: %w within %d cycles", machine.ErrCycleLimit, maxCycles)
}

// stepCycle advances the federation through machine cycle t: fire due
// kill drills, ship unshipped hub arrivals to their owners, step every
// shard, then reassemble — inject outboxes in global node order, retire
// confirmed consumptions, buffer traces, and step the hub network.
func (co *Coordinator) stepCycle(t int64) *ShardFailure {
	for i := 0; i < len(co.kill); {
		k := co.kill[i]
		if k.Cycle <= t && k.Shard >= 0 && k.Shard < len(co.shards) {
			co.shards[k.Shard].h.Kill()
			co.kill = append(co.kill[:i], co.kill[i+1:]...)
			continue
		}
		i++
	}

	// Drop drained nodes from the arrival mirror, then ship what the hub
	// holds beyond each owner's shipped watermark.
	keep := co.pend[:0]
	for _, n := range co.pend {
		if co.m.Net.HasArrivals(n) {
			keep = append(keep, n)
		} else {
			co.pendMark[n] = false
			co.shipped[n] = [2]int{}
		}
	}
	co.pend = keep
	cmds := make([]stepCmd, len(co.shards))
	for i := range cmds {
		cmds[i].Cycle = t
	}
	for _, n := range co.pend {
		cmd := &cmds[co.owner[n]]
		for pri := 0; pri < 2; pri++ {
			q := co.m.Net.ArrivalsAt(n, pri)
			for _, msg := range q[co.shipped[n][pri]:] {
				cmd.Deliveries = append(cmd.Deliveries, delivery{Node: n, Pri: pri, Msg: msg})
			}
			co.shipped[n][pri] = len(q)
		}
	}

	// Lockstep exchange: write every command, then read every reply, in
	// shard order.
	for i, sc := range co.shards {
		if f := co.write(sc, cmdStep, encodeStep(co.m.Net, &cmds[i])); f != nil {
			return f
		}
	}
	reps := make([]*stepReply, len(co.shards))
	for i, sc := range co.shards {
		kind, payload, f := co.read(sc)
		if f != nil {
			return f
		}
		if kind != repStep {
			return co.fail(sc, FailCrash, fmt.Errorf("step reply %#x", kind))
		}
		rep, err := decodeStepReply(co.m.Net, payload)
		if err != nil {
			return co.fail(sc, FailCrash, err)
		}
		reps[i] = rep
	}

	// Reassembly in shard order — which is global node order, so the
	// hub assigns the same message sequence numbers as an in-process
	// drain phase.
	for i, sc := range co.shards {
		rep := reps[i]
		for _, msg := range rep.Msgs {
			co.m.Net.Inject(t, msg)
		}
		for _, c := range rep.Consumed {
			if c.Node < sc.lo || c.Node >= sc.hi || c.Pri < 0 || c.Pri > 1 ||
				c.N <= 0 || c.N > co.shipped[c.Node][c.Pri] {
				return co.fail(sc, FailCrash,
					fmt.Errorf("bogus consumption: node %d pri %d n %d", c.Node, c.Pri, c.N))
			}
			co.m.Net.DropArrivals(c.Node, c.Pri, c.N)
			co.shipped[c.Node][c.Pri] -= c.N
		}
		co.pendingTrace = append(co.pendingTrace, rep.Trace...)
		co.acts[i] = rep.Act
	}
	if co.m.Net.NeedsStep(t) {
		co.m.Net.Step(t)
		for _, n := range co.m.Net.DeliveredNodes() {
			if !co.pendMark[n] {
				co.pendMark[n] = true
				co.pend = append(co.pend, n)
			}
		}
	}
	co.cycle = t + 1
	return nil
}

// fastForward mirrors Machine.fastForward: jump the clock to the next
// event, clamped to the bound and the quiet window. Workers materialize
// the skipped window lazily (cmdSkip) before their next step or pull.
func (co *Coordinator) fastForward(bound int64) {
	next := co.m.Net.NextEvent(co.cycle)
	for i := range co.acts {
		if co.acts[i].Next < next {
			next = co.acts[i].Next
		}
	}
	if next > bound {
		next = bound
	}
	d := next - co.cycle
	if d <= 0 {
		return
	}
	if co.running() == 0 && co.busy() == 0 && co.m.Net.Quiescent() {
		room := machine.QuietWindow - co.idle - 1
		if room <= 0 {
			return
		}
		if d > room {
			d = room
		}
		co.idle += d
	} else {
		co.idle = 0
	}
	co.cycle += d
}

// takeCheckpoint records a coordinated rewind point. atStep checkpoints
// sit at a run-loop head, so the workers' chip state must be pulled back
// into the hub first; the entry checkpoint needs no pull because the hub
// had just seeded the workers.
func (co *Coordinator) takeCheckpoint(atStep bool) error {
	if atStep {
		if f := co.syncHub(); f != nil {
			return f
		}
	}
	var buf bytes.Buffer
	if err := co.m.Save(&buf); err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	co.ck = checkpoint{machine: buf.Bytes(), cycle: co.cycle, idle: co.idle, atStep: atStep, valid: true}
	co.lastCkpt = co.cycle
	co.ckCount++
	co.commitTrace()
	if co.cfg.CheckpointPath != "" {
		if err := co.spool(); err != nil {
			return err
		}
	}
	return nil
}

// spool writes the current checkpoint to CheckpointPath atomically.
func (co *Coordinator) spool() error {
	return snap.WriteFileAtomic(co.cfg.CheckpointPath, func(w io.Writer) error {
		sw := snap.NewWriter(w)
		sw.U64(distCkptMagic)
		sw.Int(1)
		sw.I64(co.ck.cycle)
		sw.I64(co.ck.idle)
		sw.Bool(co.ck.atStep)
		sw.Bytes(co.ck.machine)
		return sw.Err()
	})
}

// distCkptMagic brands spooled coordinator checkpoints ("mdistck1").
const distCkptMagic = 0x316b63747369646d

// commitTrace flushes the buffered window of trace events to the sink.
// Events buffer between checkpoints so a rewind can discard exactly the
// events of the replayed window — each is delivered exactly once.
func (co *Coordinator) commitTrace() {
	if co.cfg.Trace != nil {
		for i := range co.pendingTrace {
			ev := &co.pendingTrace[i]
			co.cfg.Trace(ev.Cycle, ev.Node, ev.Event, ev.Detail)
		}
	}
	co.pendingTrace = co.pendingTrace[:0]
}

// syncHub reassembles the full machine in the hub: every worker
// materializes deferred skips up to the coordinator clock and ships its
// chip range, which the hub adopts in place.
func (co *Coordinator) syncHub() *ShardFailure {
	for _, sc := range co.shards {
		if _, f := co.callExpect(sc, cmdSkip, encodeI64(co.cycle), repOK); f != nil {
			return f
		}
	}
	for _, sc := range co.shards {
		payload, f := co.callExpect(sc, cmdPull, nil, repFrame)
		if f != nil {
			return f
		}
		cyc, err := co.m.AdoptShard(bytes.NewReader(payload), sc.lo, sc.hi)
		if err != nil {
			return co.fail(sc, FailCrash, err)
		}
		if cyc != co.cycle {
			return co.fail(sc, FailCrash, fmt.Errorf("frame at cycle %d, coordinator at %d", cyc, co.cycle))
		}
	}
	co.m.Cycle = co.cycle
	return nil
}

// finishPhase leaves the hub authoritative at the leg's end, whatever
// the leg's outcome, and flushes the trace tail.
func (co *Coordinator) finishPhase() error {
	if f := co.syncHub(); f != nil {
		return f
	}
	co.commitTrace()
	return nil
}

func (co *Coordinator) noteFailure(f *ShardFailure) {
	co.failures = append(co.failures, FailureRecord{
		Shard: f.Shard, Class: f.Class, Cycle: f.Cycle, Detail: f.Err.Error(),
	})
}

// recover rewinds the federation to the latest checkpoint after a shard
// failure: every worker is respawned (survivors may hold half-exchanged
// protocol state), the hub restores the checkpointed machine, the
// buffered trace window is discarded, and fired fault drills are
// disarmed so the replay runs clean. The caller then re-attempts the leg
// with resume=true, which reseeds the workers from the restored hub.
func (co *Coordinator) recover(sf *ShardFailure) error {
	co.noteFailure(sf)
	if co.recoveries >= co.cfg.MaxRecoveries {
		return fmt.Errorf("dist: recovery limit %d exhausted: %v", co.cfg.MaxRecoveries, sf)
	}
	co.recoveries++
	if !co.ck.valid {
		return fmt.Errorf("dist: no checkpoint to recover from: %v", sf)
	}
	keepChaos := co.chaos[:0]
	for _, c := range co.chaos {
		if c.Cycle > co.cycle {
			keepChaos = append(keepChaos, c)
		}
	}
	co.chaos = keepChaos
	keepKill := co.kill[:0]
	for _, k := range co.kill {
		if k.Cycle > co.cycle {
			keepKill = append(keepKill, k)
		}
	}
	co.kill = keepKill
	for i := range co.shards {
		if err := co.spawn(i); err != nil {
			return err
		}
	}
	if err := co.m.Restore(bytes.NewReader(co.ck.machine)); err != nil {
		return fmt.Errorf("dist: restore checkpoint: %w", err)
	}
	co.cycle, co.idle = co.ck.cycle, co.ck.idle
	co.lastCkpt = co.ck.cycle
	co.pendingTrace = co.pendingTrace[:0]
	return nil
}

// RunExact advances the federation exactly n cycles with no completion
// detection and no fast-forward — the distributed twin of the cycle-by-
// cycle tail guard.Supervisor.RunPhase uses when the remaining cycle
// budget is smaller than one quiet window.
func (co *Coordinator) RunExact(n int64) error {
	resume := false
	for {
		err := co.exactAttempt(n, resume)
		var sf *ShardFailure
		if errors.As(err, &sf) {
			if rerr := co.recover(sf); rerr != nil {
				return rerr
			}
			resume = true
			continue
		}
		return err
	}
}

func (co *Coordinator) exactAttempt(n int64, resume bool) error {
	if !resume {
		co.phaseStart = co.m.Cycle
		co.cycle, co.idle = co.m.Cycle, 0
		co.ck = checkpoint{}
		co.pendingTrace = co.pendingTrace[:0]
	}
	if err := co.seedAll(); err != nil {
		return err
	}
	if !resume {
		if err := co.takeCheckpoint(false); err != nil {
			return err
		}
	}
	if f := co.beginRun(); f != nil {
		return f
	}
	for co.cycle < co.phaseStart+n {
		if f := co.stepCycle(co.cycle); f != nil {
			return f
		}
	}
	return co.finishPhase()
}
