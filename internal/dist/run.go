package dist

// Scenario execution on the distributed engine: the same DSL pipeline as
// core.Scenario.Run, with the coordinator standing in for the in-process
// supervisor as the core.PhaseRunner. Non-run plan steps (map, poke,
// load, expect, check) execute against the hub machine, which is always
// authoritative between run phases; run phases are farmed out to the
// shard workers and reassembled. A scenario run here is bit-identical to
// an in-process run — same cycle counts, same trace stream, same final
// machine digest — including runs that lost and recovered shards along
// the way.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/machine"
)

// RunResult is a distributed scenario run's outcome: the scenario result
// plus the supervision history and the final machine digest.
type RunResult struct {
	*core.ScenarioResult
	Digest      string // sha256 of the final machine snapshot
	Shards      int
	Failures    []FailureRecord
	Recoveries  int
	Checkpoints int
}

// RunScenario boots a hub simulator for sc, launches cfg.Shards workers,
// and drives the plan to completion distributed. The scenario file's
// cycle budget (or o.CycleBudget) clamps run phases with
// guard.Supervisor.RunPhase's exact arithmetic, surfacing exhaustion as
// a *guard.StallError. The returned Sim's machine is closed but
// readable, as after Scenario.RunSim.
func RunScenario(sc *core.Scenario, o core.Options, cfg Config) (*RunResult, *core.Sim, error) {
	if sc.Plan.Sweep != nil {
		// Sweep points fork the hub machine mid-run; sharded workers
		// can't follow a fork. Run sweeps in-process (Scenario.Run).
		return nil, nil, errors.New("dist: sweep scenarios are not supported on the distributed engine")
	}
	// The hub's chips never step; force the serial in-process engine so
	// no worker pool spins up under a machine used only as a state store.
	o.NaiveEngine = false
	o.Workers = 0
	s, err := sc.NewSim(o)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Trace == nil {
		// Worker trace events merge into the hub recorder, in the serial
		// engines' order, alongside hub-side (plan step) events.
		cfg.Trace = s.Recorder.Hook()
	}
	co, err := New(s.M, cfg)
	if err != nil {
		s.M.Close()
		return nil, s, err
	}
	defer co.Close()

	budget := o.CycleBudget
	if budget == 0 {
		budget = sc.Plan.CycleBudget
	}
	var rp core.PhaseRunner = co
	if budget > 0 {
		rp = &budgetRunner{co: co, m: s.M, base: s.M.Cycle, budget: budget}
	}

	run := sc.NewRun(s)
	for !run.Done() {
		if _, err := run.Advance(rp, 0); err != nil {
			s.M.Close()
			return nil, s, err
		}
	}
	res := run.Result()
	digest, err := Digest(s.M)
	s.M.Close()
	if err != nil {
		return nil, s, err
	}
	return &RunResult{
		ScenarioResult: res,
		Digest:         digest,
		Shards:         co.Shards(),
		Failures:       co.Failures(),
		Recoveries:     co.Recoveries(),
		Checkpoints:    co.Checkpoints(),
	}, s, nil
}

// Digest is the canonical state fingerprint: the hex sha256 of the full
// machine snapshot. Two runs with equal digests hold bit-identical
// machine state.
func Digest(m *machine.Machine) (string, error) {
	h := sha256.New()
	if err := m.Save(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// budgetRunner adds the scenario-wide cycle budget on top of the
// coordinator, replicating guard.Supervisor.RunPhase's clamp arithmetic
// exactly so budget exhaustion lands on the identical cycle as an
// in-process run, and surfaces as the same *guard.StallError.
type budgetRunner struct {
	co           *Coordinator
	m            *machine.Machine
	base, budget int64
}

func (b *budgetRunner) RunPhase(maxCycles int64) (int64, error) {
	rem := b.budget - (b.m.Cycle - b.base)
	budgetErr := func() *guard.StallError {
		return &guard.StallError{Kind: guard.StallBudget, Cycle: b.m.Cycle, Budget: b.budget}
	}
	if rem <= 0 {
		return 0, budgetErr()
	}
	if maxCycles+machine.QuietWindow <= rem {
		return b.co.RunPhase(maxCycles)
	}
	if bound := rem - machine.QuietWindow; bound > 0 {
		n, err := b.co.RunPhase(bound)
		if err != nil && errors.Is(err, machine.ErrCycleLimit) {
			return n, budgetErr()
		}
		return n, err
	}
	// Less budget than one quiet window: the exact remainder, cycle by
	// cycle, then exhaustion.
	if err := b.co.RunExact(rem); err != nil {
		return rem, fmt.Errorf("dist: budget tail: %w", err)
	}
	return rem, budgetErr()
}
