package dist

// Wire-protocol unit tests: frame framing, payload round trips, and the
// decode side's behavior on corrupt streams (truncation, oversized
// lengths, garbage counts) — the coordinator classifies all of these as
// shard failures, so they must surface as errors, never panics or huge
// allocations.

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/noc"
)

func testNet() *noc.Network {
	return noc.New(noc.Coord{X: 2, Y: 2, Z: 1}, noc.Config{})
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello shard")
	if err := writeFrame(&buf, cmdStep, payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := readFrame(&buf)
	if err != nil || kind != cmdStep || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: kind %#x payload %q err %v", kind, got, err)
	}
}

func TestFrameCorrupt(t *testing.T) {
	// Oversized length must be rejected before allocating.
	huge := []byte{cmdStep, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized frame: %v", err)
	}
	// Truncated payload must fail with an I/O error, not hang or succeed.
	var buf bytes.Buffer
	writeFrame(&buf, cmdSeed, make([]byte, 64))
	if _, _, err := readFrame(bytes.NewReader(buf.Bytes()[:10])); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v", err)
	}
}

func TestInitSpecRoundTrip(t *testing.T) {
	in := initSpec{
		Shard: 2, Lo: 4, Hi: 8, HeartbeatMillis: 125,
		Chaos: []ChaosSpec{{Node: 5, Cycle: 999, Kind: "hang"}, {Node: 6, Cycle: 1, Kind: "panic"}},
	}
	out, err := decodeInit(encodeInit(&in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Shard != in.Shard || out.Lo != in.Lo || out.Hi != in.Hi ||
		out.HeartbeatMillis != in.HeartbeatMillis || len(out.Chaos) != 2 ||
		out.Chaos[0] != in.Chaos[0] || out.Chaos[1] != in.Chaos[1] {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestStepRoundTrip(t *testing.T) {
	net := testNet()
	msg := &noc.Message{
		Pri: 0, Src: noc.Coord{X: 0}, Dst: noc.Coord{X: 1, Y: 1},
		DIP: 42, DstAddr: 0x1000,
		Body: []isa.Word{{Bits: 7}, {Bits: 9, Ptr: true}},
	}
	cmd := stepCmd{Cycle: 77, Deliveries: []delivery{{Node: 3, Pri: 0, Msg: msg}}}
	out, err := decodeStep(net, encodeStep(net, &cmd))
	if err != nil {
		t.Fatal(err)
	}
	if out.Cycle != 77 || len(out.Deliveries) != 1 {
		t.Fatalf("round trip: %+v", out)
	}
	d := out.Deliveries[0]
	if d.Node != 3 || d.Pri != 0 || d.Msg.DIP != 42 || len(d.Msg.Body) != 2 || !d.Msg.Body[1].Ptr {
		t.Fatalf("delivery round trip: %+v msg %+v", d, d.Msg)
	}

	rep := stepReply{
		Msgs:     []*noc.Message{msg},
		Consumed: []consumption{{Node: 3, Pri: 1, N: 2}},
		Trace:    []traceEvent{{Cycle: 77, Node: 3, Event: "issue", Detail: "x"}},
		Act:      activity{Running: 1, Busy: 2, Issued: 3, Next: 78, Fault: "boom"},
	}
	rout, err := decodeStepReply(net, encodeStepReply(net, &rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(rout.Msgs) != 1 || rout.Consumed[0] != rep.Consumed[0] ||
		rout.Trace[0] != rep.Trace[0] || rout.Act != rep.Act {
		t.Fatalf("reply round trip: %+v", rout)
	}
}

func TestDecodeCorruptPayloads(t *testing.T) {
	net := testNet()
	// A payload that is nothing but a huge count: the armed stream-length
	// limit must reject it descriptively instead of allocating.
	if _, err := decodeInit([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage initSpec decoded")
	}
	if _, err := decodeStep(net, []byte{0x01, 0x02}); err == nil {
		t.Fatal("truncated stepCmd decoded")
	}
	if _, err := decodeStepReply(net, []byte{0xee}); err == nil {
		t.Fatal("truncated stepReply decoded")
	}
}
