package dist

// The determinism matrix: every scenario must produce bit-identical
// results — cycle counts, check outcomes, trace streams, and the sha256
// digest of the final machine snapshot — on the naive, event, parallel,
// and distributed engines, for every shard count, including distributed
// runs that lose and recover workers mid-flight.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

func loadScenario(t *testing.T, name string) *core.Scenario {
	t.Helper()
	sc, err := core.ScenarioFromFile(filepath.Join("..", "..", "testdata", "workloads", name))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// refRun executes a scenario on an in-process engine and fingerprints
// the outcome.
type refOutcome struct {
	res    *core.ScenarioResult
	digest string
	events []trace.Event
}

func refRun(t *testing.T, sc *core.Scenario, o core.Options) refOutcome {
	t.Helper()
	res, s, err := sc.RunSim(o)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}
	digest, err := Digest(s.M)
	if err != nil {
		t.Fatal(err)
	}
	return refOutcome{res: res, digest: digest, events: s.Recorder.Events}
}

func distRun(t *testing.T, sc *core.Scenario, cfg Config) (*RunResult, []trace.Event) {
	t.Helper()
	if cfg.Launcher == nil {
		cfg.Launcher = LocalLauncher{}
	}
	res, s, err := RunScenario(sc, core.Options{}, cfg)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	return res, s.Recorder.Events
}

func compareOutcome(t *testing.T, ref refOutcome, got *RunResult, events []trace.Event) {
	t.Helper()
	if got.TotalCycles != ref.res.TotalCycles {
		t.Errorf("total cycles %d, want %d", got.TotalCycles, ref.res.TotalCycles)
	}
	if got.Checks != ref.res.Checks {
		t.Errorf("checks %d, want %d", got.Checks, ref.res.Checks)
	}
	if len(got.Phases) != len(ref.res.Phases) {
		t.Fatalf("phases %v, want %v", got.Phases, ref.res.Phases)
	}
	for i := range got.Phases {
		if got.Phases[i] != ref.res.Phases[i] {
			t.Errorf("phase %d: %+v, want %+v", i, got.Phases[i], ref.res.Phases[i])
		}
	}
	if got.Digest != ref.digest {
		t.Errorf("machine digest %s, want %s", got.Digest, ref.digest)
	}
	if len(events) != len(ref.events) {
		t.Fatalf("%d trace events, want %d", len(events), len(ref.events))
	}
	for i := range events {
		if events[i] != ref.events[i] {
			t.Fatalf("trace event %d: %+v, want %+v", i, events[i], ref.events[i])
		}
	}
}

func TestDistDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in full mode only")
	}
	for _, name := range []string{"meshsmooth4.wl", "stencil7x2.wl", "redblack.wl"} {
		t.Run(name, func(t *testing.T) {
			sc := loadScenario(t, name)
			engines := map[string]core.Options{
				"naive":    {NaiveEngine: true},
				"event":    {},
				"parallel": {Workers: 4},
			}
			refs := map[string]refOutcome{}
			for eng, o := range engines {
				refs[eng] = refRun(t, sc, o)
			}
			// All in-process engines must agree with each other first.
			for eng, ref := range refs {
				if ref.digest != refs["event"].digest {
					t.Fatalf("engine %s digest %s, event engine %s", eng, ref.digest, refs["event"].digest)
				}
			}
			for _, shards := range []int{2, 3} {
				got, events := distRun(t, sc, Config{Shards: shards, CheckpointEvery: 256})
				compareOutcome(t, refs["event"], got, events)
			}
		})
	}
}

func TestMain(m *testing.M) {
	MaybeWorker() // the test binary doubles as the process-worker executable
	os.Exit(m.Run())
}

// TestDistRecoverFromCrash injects a deterministic worker panic mid-run:
// the coordinator must classify it as a crash, rewind to the latest
// checkpoint, respawn, disarm the fired fault, and finish with results
// bit-identical to an undisturbed in-process run.
func TestDistRecoverFromCrash(t *testing.T) {
	sc := loadScenario(t, "meshsmooth4.wl")
	ref := refRun(t, sc, core.Options{})
	got, events := distRun(t, sc, Config{
		Shards:          2,
		CheckpointEvery: 200,
		Chaos:           []ChaosSpec{{Node: 1, Cycle: 600, Kind: "panic"}, {Node: 3, Cycle: 2000, Kind: "panic"}},
	})
	compareOutcome(t, ref, got, events)
	if got.Recoveries < 2 {
		t.Errorf("recoveries = %d, want >= 2", got.Recoveries)
	}
	crashes := 0
	for _, f := range got.Failures {
		if f.Class == FailCrash {
			crashes++
		}
	}
	if crashes < 2 {
		t.Errorf("crash failures = %d (%+v), want >= 2", crashes, got.Failures)
	}
}

// TestDistRecoverFromStall wedges a worker mid-step while its heartbeats
// keep flowing: the window deadline must classify it as a stall (not
// lost), and recovery must still produce bit-identical results.
func TestDistRecoverFromStall(t *testing.T) {
	sc := loadScenario(t, "meshsmooth4.wl")
	ref := refRun(t, sc, core.Options{})
	got, events := distRun(t, sc, Config{
		Shards:          2,
		CheckpointEvery: 200,
		WindowTimeout:   400 * time.Millisecond,
		HeartbeatEvery:  50 * time.Millisecond,
		SilenceTimeout:  2 * time.Second,
		Chaos:           []ChaosSpec{{Node: 2, Cycle: 900, Kind: "hang"}},
	})
	compareOutcome(t, ref, got, events)
	stalls := 0
	for _, f := range got.Failures {
		if f.Class == FailStall {
			stalls++
		}
	}
	if stalls == 0 {
		t.Errorf("no stall-class failure recorded: %+v", got.Failures)
	}
}

// TestDistRecoverFromLostLocal severs a worker's pipe mid-run (the
// local stand-in for a SIGKILLed process): lost-connection class, then
// bit-identical recovery.
func TestDistRecoverFromLost(t *testing.T) {
	sc := loadScenario(t, "redblack.wl")
	ref := refRun(t, sc, core.Options{})
	got, events := distRun(t, sc, Config{
		Shards:          2,
		CheckpointEvery: 128,
		Kill:            []KillSpec{{Shard: 1, Cycle: 500}},
	})
	compareOutcome(t, ref, got, events)
	lost := 0
	for _, f := range got.Failures {
		if f.Class == FailLost {
			lost++
		}
	}
	if lost == 0 {
		t.Errorf("no lost-class failure recorded: %+v", got.Failures)
	}
}

// TestDistRecoveryLimit proves the coordinator gives up instead of
// flapping: a chain of faults longer than the recovery cap — each fired
// fault is disarmed, but the next one is waiting — must end in a
// terminal recovery-limit error, not an endless rewind loop.
func TestDistRecoveryLimit(t *testing.T) {
	sc := loadScenario(t, "stencil7x2.wl")
	_, _, err := RunScenario(sc, core.Options{}, Config{
		Shards:          1,
		Launcher:        LocalLauncher{},
		CheckpointEvery: -1, // entry checkpoint only
		MaxRecoveries:   2,
		Chaos: []ChaosSpec{
			{Node: 0, Cycle: 5, Kind: "panic"},
			{Node: 0, Cycle: 10, Kind: "panic"},
			{Node: 0, Cycle: 15, Kind: "panic"},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "recovery limit") {
		t.Fatalf("err = %v, want recovery-limit error", err)
	}
}
