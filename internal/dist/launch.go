package dist

// Worker launchers. The federation's participant set is fixed and fully
// enumerated at session start: the coordinator knows every shard's
// locator because it creates them — a loopback listener per process
// worker, a pipe per in-process one. ProcLauncher is the real thing
// (separate OS processes, killable with prejudice); LocalLauncher runs
// workers as goroutines over net.Pipe, which exercises the identical
// protocol and supervision paths without process spawn latency, so the
// determinism matrix in the tests stays fast.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"
)

// A Handle is a live worker connection the coordinator supervises: the
// framed transport plus the means to destroy the worker outright.
type Handle interface {
	net.Conn
	// Kill destroys the worker immediately (SIGKILL for processes,
	// severed pipe for local workers); used by fault drills and when
	// respawning over a corpse.
	Kill() error
}

// A Launcher starts shard workers.
type Launcher interface {
	Start(shard int) (Handle, error)
}

// ProcLauncher launches each worker as a separate OS process: it listens
// on a fresh loopback port, starts Exe with WorkerAddrEnv pointing at
// it, and hands the accepted connection to the coordinator. Exe is
// usually the coordinator's own binary (os.Executable), whose main calls
// MaybeWorker before doing anything else.
type ProcLauncher struct {
	Exe  string
	Args []string
	// AcceptTimeout bounds the wait for the worker to dial back
	// (default 10s).
	AcceptTimeout time.Duration
	// Stderr, when set, receives worker stderr (defaults to the
	// coordinator's own stderr).
	Stderr *os.File
}

// procHandle is a process worker: the accepted loopback connection plus
// the process to reap.
type procHandle struct {
	net.Conn
	cmd  *exec.Cmd
	reap sync.Once
	werr error
}

func (h *procHandle) wait() error {
	h.reap.Do(func() { h.werr = h.cmd.Wait() })
	return h.werr
}

func (h *procHandle) Kill() error {
	err := h.cmd.Process.Kill()
	h.wait()
	return err
}

func (h *procHandle) Close() error {
	err := h.Conn.Close()
	// The worker exits once its connection drops; reap it so no zombie
	// outlives the coordinator. A worker that lingers anyway is killed.
	done := make(chan struct{})
	go func() { h.wait(); close(done) }()
	//mlint:allow detrange reaping a dead worker process races wall time by design; no simulated state here
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		h.cmd.Process.Kill()
		<-done
	}
	return err
}

func (l *ProcLauncher) Start(shard int) (Handle, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	cmd := exec.Command(l.Exe, l.Args...)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("%s=%s", WorkerAddrEnv, ln.Addr().String()),
		fmt.Sprintf("MSHARD_SHARD=%d", shard))
	if l.Stderr != nil {
		cmd.Stderr = l.Stderr
	} else {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	timeout := l.AcceptTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ln.(*net.TCPListener).SetDeadline(time.Now().Add(timeout))
	conn, err := ln.Accept()
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("dist: shard %d worker never dialed back: %w", shard, err)
	}
	return &procHandle{Conn: conn, cmd: cmd}, nil
}

// LocalLauncher runs each worker as a goroutine serving one end of a
// net.Pipe — the full wire protocol without processes. Killing a local
// worker severs the pipe, which the coordinator observes as a lost
// shard, same as a SIGKILLed process.
type LocalLauncher struct{}

type localHandle struct {
	net.Conn
	peer net.Conn
}

func (h *localHandle) Kill() error {
	h.peer.Close()
	return h.Conn.Close()
}

func (l LocalLauncher) Start(shard int) (Handle, error) {
	cc, wc := net.Pipe()
	go func() {
		ServeConn(wc)
		wc.Close()
	}()
	return &localHandle{Conn: cc, peer: wc}, nil
}
