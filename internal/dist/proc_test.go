package dist

// Process-worker legs: the same determinism and recovery stories, but
// with real OS processes — the test binary re-executes itself as the
// worker (TestMain calls MaybeWorker), the coordinator SIGKILLs one
// mid-run, and the recovered run must still be bit-identical.

import (
	"os"
	"testing"

	"repro/internal/core"
)

func procLauncher(t *testing.T) *ProcLauncher {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// The worker process must not run the test suite; MaybeWorker in
	// TestMain short-circuits it, and -test.run=^$ is belt and braces
	// should the env var ever be lost.
	return &ProcLauncher{Exe: exe, Args: []string{"-test.run=^$"}}
}

func TestDistProcessWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("process workers in full mode only")
	}
	for _, name := range []string{"meshsmooth4.wl", "stencil7x2.wl"} {
		t.Run(name, func(t *testing.T) {
			sc := loadScenario(t, name)
			ref := refRun(t, sc, core.Options{})
			got, events := distRun(t, sc, Config{
				Shards:   2,
				Launcher: procLauncher(t),
			})
			compareOutcome(t, ref, got, events)
		})
	}
}

func TestDistProcessSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("process workers in full mode only")
	}
	sc := loadScenario(t, "meshsmooth4.wl")
	ref := refRun(t, sc, core.Options{})
	got, events := distRun(t, sc, Config{
		Shards:          2,
		Launcher:        procLauncher(t),
		CheckpointEvery: 256,
		Kill:            []KillSpec{{Shard: 0, Cycle: 700}, {Shard: 1, Cycle: 1900}},
	})
	compareOutcome(t, ref, got, events)
	lost := 0
	for _, f := range got.Failures {
		if f.Class == FailLost {
			lost++
		}
	}
	if lost < 2 {
		t.Errorf("lost-class failures = %d (%+v), want >= 2", lost, got.Failures)
	}
	if got.Recoveries < 2 {
		t.Errorf("recoveries = %d, want >= 2", got.Recoveries)
	}
}
