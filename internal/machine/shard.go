package machine

// Distributed-engine hooks (see internal/dist and DESIGN.md "The
// distributed engine"): a shard worker process owns a contiguous node
// range [lo, hi) of the mesh and steps exactly those chips, while the
// coordinator owns the authoritative network, the clock, and the
// checkpoint/digest story. Two things cross the process boundary in
// machine terms: per-range chip state (the partial-machine wire frames
// below, used to assemble coordinated checkpoints and the final
// snapshot), and the per-cycle activity aggregates the coordinator's
// run-loop head needs, computed here with the same definitions as the
// in-process loop so the two engines share one completion story.

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/snap"
)

// Magic words bracketing a shard frame ("MSHARDFR" / "MSHRDEND").
const (
	shardFrameMagic   = 0x524644524148534d // "MSHARDFR"
	shardFrameTrailer = 0x444e45445248534d // "MSHRDEND"
)

// EncodeShard writes a partial-machine wire frame: the machine clock, the
// node range, and the full serialized state of chips [lo, hi). The frame
// shares the snapshot version (the chip encoding is the same); it does
// not carry config, network, GDT, or page-allocator state — frames only
// travel between processes already seeded from a common full snapshot.
func (m *Machine) EncodeShard(w io.Writer, lo, hi int) error {
	if lo < 0 || hi > len(m.Chips) || lo >= hi {
		return fmt.Errorf("machine: shard range [%d,%d) outside 0..%d", lo, hi, len(m.Chips))
	}
	m.syncDeferred()
	bw := bufio.NewWriter(w)
	sw := snap.NewWriter(bw)
	sw.U64(shardFrameMagic)
	sw.U64(SnapshotVersion)
	sw.I64(m.Cycle)
	sw.Int(lo)
	sw.Int(hi)
	for _, c := range m.Chips[lo:hi] {
		c.EncodeState(sw)
	}
	sw.U64(shardFrameTrailer)
	if err := sw.Err(); err != nil {
		return fmt.Errorf("machine: encode shard [%d,%d): %w", lo, hi, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("machine: encode shard [%d,%d): %w", lo, hi, err)
	}
	return nil
}

// AdoptShard reads a frame written by EncodeShard and adopts its chips
// into this machine, which must have been seeded from the same full
// snapshot lineage (the frame's node range must match lo, hi). Like
// Restore it is two-phase — the frame is fully decoded and validated
// before any live chip is touched — and it rebuilds the engine caches
// afterwards. It returns the frame's machine clock; the caller decides
// whether (and to what) to advance m.Cycle.
func (m *Machine) AdoptShard(r io.Reader, lo, hi int) (int64, error) {
	sr := snap.NewReader(bufio.NewReader(r))
	if magic := sr.U64(); sr.Err() == nil && magic != shardFrameMagic {
		return 0, fmt.Errorf("machine: adopt shard: not a shard frame (bad magic %#x)", magic)
	}
	if v := sr.U64(); sr.Err() == nil && v != SnapshotVersion {
		return 0, fmt.Errorf("machine: adopt shard: unsupported frame version %d (this build reads version %d)", v, SnapshotVersion)
	}
	cycle := sr.I64()
	flo, fhi := sr.Int(), sr.Int()
	if sr.Err() == nil && (flo != lo || fhi != hi) {
		return 0, fmt.Errorf("machine: adopt shard: frame covers [%d,%d), want [%d,%d)", flo, fhi, lo, hi)
	}
	if lo < 0 || hi > len(m.Chips) || lo >= hi {
		return 0, fmt.Errorf("machine: shard range [%d,%d) outside 0..%d", lo, hi, len(m.Chips))
	}
	scratch := make([]*chip.Chip, hi-lo)
	for i := range scratch {
		scratch[i] = chip.DecodeChipState(sr, m.Cfg.Chip, m.Net.CoordOf(lo+i), lo+i, m.Net)
	}
	if t := sr.U64(); sr.Err() == nil && t != shardFrameTrailer {
		sr.Fail(fmt.Errorf("machine: shard frame trailer missing (stream corrupt)"))
	}
	if err := sr.Err(); err != nil {
		return 0, fmt.Errorf("machine: adopt shard [%d,%d): %w", lo, hi, err)
	}
	m.syncDeferred()
	for i, c := range scratch {
		m.Chips[lo+i].Adopt(c)
	}
	m.WakeAll()
	m.recomputeActive()
	return cycle, nil
}

// ShardActivity aggregates the run-loop activity quantities over chips
// [lo, hi): running user H-Threads, non-quiescent chips, instructions
// issued, the earliest chip NextEvent at cycle now, and the first
// faulted-thread description in FaultError's scan order (empty if none).
// The coordinator sums these per-shard reports to evaluate exactly the
// loop-head checks Machine.Run evaluates in-process.
func (m *Machine) ShardActivity(lo, hi int, now int64) (running, busy int, issued uint64, next int64, fault string) {
	next = NoEvent
	for i := lo; i < hi; i++ {
		c := m.Chips[i]
		running += runningUserOf(c)
		if !c.Quiescent() {
			busy++
		}
		issued += c.InstsIssued
		if w := c.NextEvent(now); w < next {
			next = w
		}
		if fault == "" {
			for vt := 0; vt < isa.NumUserSlots; vt++ {
				for cl := 0; cl < isa.NumClusters; cl++ {
					if th := c.Thread(vt, cl); th.Status == cluster.ThreadFaulted {
						fault = fmt.Sprintf("machine: node %d vthread %d cluster %d faulted: %s",
							i, vt, cl, th.FaultMsg)
						vt, cl = isa.NumUserSlots, isa.NumClusters // first hit wins
					}
				}
			}
		}
	}
	return running, busy, issued, next, fault
}

// ReadSnapshotConfig decodes just the configuration header of a snapshot
// stream written by Save, so a process can construct a compatible machine
// (New + Restore) from snapshot bytes alone — the distributed seed path.
func ReadSnapshotConfig(r io.Reader) (Config, error) {
	sr := snap.NewReader(bufio.NewReader(r))
	if magic := sr.U64(); sr.Err() == nil && magic != snapshotMagic {
		return Config{}, fmt.Errorf("machine: not a snapshot stream (bad magic %#x)", magic)
	}
	if v := sr.U64(); sr.Err() == nil && v != SnapshotVersion {
		return Config{}, fmt.Errorf("machine: unsupported snapshot version %d (this build reads version %d)", v, SnapshotVersion)
	}
	cfg := decodeConfig(sr)
	if err := sr.Err(); err != nil {
		return Config{}, fmt.Errorf("machine: read snapshot config: %w", err)
	}
	return cfg, nil
}
