package machine_test

import (
	"fmt"
	"testing"

	"repro/internal/rt"
)

// TestConsoleDevice exercises the per-node I/O bus: a privileged program
// writes characters and a decimal word to the memory-mapped console.
func TestConsoleDevice(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	base := m.Chip(0).ConsoleBase()
	loadUser(t, m, 0, 0, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #72            ; 'H'
    stp [i1], i2
    movi i2, #105           ; 'i'
    stp [i1], i2
    movi i2, #10            ; newline
    stp [i1], i2
    movi i3, #42
    stp [i1+1], i3          ; decimal channel
    ldp i4, [i1]            ; read back the byte count
    halt
`, base))
	run(t, m, 10000)
	if got := m.Chip(0).Console.String(); got != "Hi\n42\n" {
		t.Errorf("console = %q, want %q", got, "Hi\n42\n")
	}
	if got := reg(m, 0, 0, 0, 4); got != 6 {
		t.Errorf("byte count = %d, want 6", got)
	}
}

// TestConsoleIsPerNode verifies nodes have independent consoles.
func TestConsoleIsPerNode(t *testing.T) {
	m, _ := newMachine(t, 2, rt.Options{})
	for n := 0; n < 2; n++ {
		loadUser(t, m, n, 0, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #%d
    stp [i1+1], i2
    halt
`, m.Chip(n).ConsoleBase(), 100+n))
	}
	run(t, m, 10000)
	if m.Chip(0).Console.String() != "100\n" || m.Chip(1).Console.String() != "101\n" {
		t.Errorf("consoles = %q / %q", m.Chip(0).Console.String(), m.Chip(1).Console.String())
	}
}
