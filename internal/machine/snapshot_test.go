package machine_test

// Checkpoint/restore regression: run → snapshot → continue and
// restore-into-fresh-machine → continue must be bit-identical — cycle
// counts, register and memory state, statistics, and the trace streams of
// the continuation — across every engine (naive, serial event, parallel
// at several shard counts), including cross-engine restores (snapshot
// under one engine, continue under another). Corrupt, truncated, and
// wrong-version snapshots must fail with a descriptive error and leave
// the machine untouched.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/rt"
)

// snapMode is one engine configuration of the snapshot matrix.
type snapMode struct {
	name      string
	naive     bool
	workers   int
	rebalance int64
}

var snapModes = []snapMode{
	{"naive", true, 0, 0},
	{"event", false, 0, 0},
	{"parallel2", false, 2, -1},
	{"parallel3/rebal8", false, 3, 8},
}

// buildSnapWorkload boots a 4-node machine under the given engine with a
// mixed workload: cross-node remote loads and stores (in-flight messages,
// handler dispatches, LTLB misses), local arithmetic, and console output,
// so a mid-run snapshot carries every serialized structure.
func buildSnapWorkload(t *testing.T, mode snapMode) *machine.Machine {
	t.Helper()
	const nodes = 4
	cfg := machine.DefaultConfig()
	cfg.Dims = noc.Coord{X: nodes, Y: 1, Z: 1}
	cfg.Workers = mode.workers
	cfg.RebalanceEvery = mode.rebalance
	m := machine.New(cfg)
	m.Naive = mode.naive
	if _, err := rt.Install(m, rt.Options{Caching: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nodes; i++ {
		succ := (i + 1) % nodes
		loadUser(t, m, i, 0, 0, fmt.Sprintf(`
    movi i1, #%d            ; successor home base (remote traffic)
    movi i2, #0
    movi i3, #%d
    movi i9, #1024
    shl  i9, i9, #10        ; console window (1 MW)
loop:
    st [i1], i2             ; remote store
    ld i4, [i1]             ; dependent remote load
    add i5, i5, i4
    stp [i9+1], i5          ; console: running checksum
    add i1, i1, #7
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`, succ*4096+64, 12+4*i))
	}
	return m
}

// snapFingerprint summarizes the observable final state.
func snapFingerprint(t *testing.T, m *machine.Machine, ran int64) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "ran=%d end=%d net=%d/%d/%d\n",
		ran, m.Cycle, m.Net.Injected, m.Net.Delivered, m.Net.TotalHops)
	for i := 0; i < m.NumNodes(); i++ {
		c := m.Chip(i)
		fmt.Fprintf(&b, "node%d insts=%d ops=%d stalls=%d i2=%d i5=%d ltlb=%d cache=%d/%d console=%q\n",
			i, c.InstsIssued, c.OpsIssued, c.Thread(0, 0).StallCycles,
			reg(m, i, 0, 0, 2), reg(m, i, 0, 0, 5),
			c.Mem.LTLBFaults, c.Mem.Cache.Hits, c.Mem.Cache.Misses,
			c.Console.String())
		// Memory contents in the successor's exercised range.
		base := uint64((i+1)%m.NumNodes())*4096 + 64
		for off := uint64(0); off < 64; off += 16 {
			w, err := m.Peek((i+1)%m.NumNodes(), base+off)
			if err == nil {
				fmt.Fprintf(&b, " mem[%d]=%d", base+off, w)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// stepN advances the machine N cycles under its configured engine (Step
// uses the parallel chip phase when one is configured, unlike RunUntil).
func stepN(m *machine.Machine, n int) {
	m.WakeAll()
	for i := 0; i < n; i++ {
		m.Step()
	}
}

// TestSnapshotRoundTripMatrix is the determinism matrix: for every engine
// pair (save under A, continue under A) vs (restore under B, continue
// under B), the continuations must be bit-identical including their trace
// streams, and re-saving a restored machine must reproduce the snapshot
// byte for byte.
func TestSnapshotRoundTripMatrix(t *testing.T) {
	const snapAt = 2500
	var refFP string
	for _, save := range snapModes {
		save := save
		t.Run("save/"+save.name, func(t *testing.T) {
			a := buildSnapWorkload(t, save)
			defer a.Close()
			stepN(a, snapAt)
			var buf bytes.Buffer
			if err := a.Save(&buf); err != nil {
				t.Fatal(err)
			}
			snapshot := buf.Bytes()

			// Continue the original; record the continuation's trace.
			var traceA strings.Builder
			a.SetTrace(func(cycle int64, node int, event, detail string) {
				fmt.Fprintf(&traceA, "%d %d %s %s\n", cycle, node, event, detail)
			})
			ran, err := a.Run(500000)
			if err != nil {
				t.Fatal(err)
			}
			fpA := snapFingerprint(t, a, ran) + traceA.String()
			if refFP == "" {
				refFP = fpA
			} else if fpA != refFP {
				t.Errorf("continuation under %s diverged from the first engine's:\n%.1500s\nvs\n%.1500s",
					save.name, fpA, refFP)
			}

			for _, restore := range snapModes {
				restore := restore
				t.Run("restore/"+restore.name, func(t *testing.T) {
					b := buildSnapWorkload(t, restore)
					defer b.Close()
					if err := b.Restore(bytes.NewReader(snapshot)); err != nil {
						t.Fatal(err)
					}
					// A restored machine must re-serialize to the identical
					// snapshot: restore loses nothing.
					var again bytes.Buffer
					if err := b.Save(&again); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(again.Bytes(), snapshot) {
						t.Errorf("re-saved snapshot differs from the original (%d vs %d bytes)",
							again.Len(), len(snapshot))
					}
					var traceB strings.Builder
					b.SetTrace(func(cycle int64, node int, event, detail string) {
						fmt.Fprintf(&traceB, "%d %d %s %s\n", cycle, node, event, detail)
					})
					ranB, err := b.Run(500000)
					if err != nil {
						t.Fatal(err)
					}
					fpB := snapFingerprint(t, b, ranB) + traceB.String()
					if fpB != fpA {
						t.Errorf("restore under %s diverged from continue under %s:\n%.1500s\nvs\n%.1500s",
							restore.name, save.name, fpB, fpA)
					}
				})
			}
		})
	}
}

// TestSnapshotFork: a fork taken mid-run evolves independently and lands
// on the same result as its parent; mutating the fork leaves the parent's
// continuation untouched.
func TestSnapshotFork(t *testing.T) {
	a := buildSnapWorkload(t, snapModes[1])
	stepN(a, 2000)
	f, err := a.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Perturb the fork: poke a word the workload reads, then run both.
	ranA, err := a.Run(500000)
	if err != nil {
		t.Fatal(err)
	}
	ranF, err := f.Run(500000)
	if err != nil {
		t.Fatal(err)
	}
	if fpA, fpF := snapFingerprint(t, a, ranA), snapFingerprint(t, f, ranF); fpA != fpF {
		t.Errorf("fork diverged from parent:\n%s\nvs\n%s", fpF, fpA)
	}
}

// TestSnapshotErrors: corrupt, truncated, and wrong-version snapshots
// must return descriptive errors and leave the machine bit-identical —
// pinned by comparing a full re-save before and after each failed
// restore.
func TestSnapshotErrors(t *testing.T) {
	m := buildSnapWorkload(t, snapModes[1])
	stepN(m, 1500)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	before := append([]byte(nil), good...)

	check := func(name string, data []byte, wantSub string) {
		t.Helper()
		err := m.Restore(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("%s: Restore succeeded on bad input", name)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
		var after bytes.Buffer
		if err := m.Save(&after); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(after.Bytes(), before) {
			t.Errorf("%s: failed restore mutated the machine", name)
		}
	}

	check("empty", nil, "truncated")
	check("garbage", []byte("this is not a snapshot at all, not even close"), "magic")

	wrongVer := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(wrongVer[8:], 99)
	check("version", wrongVer, "version 99")

	for _, cut := range []int{12, 40, 300, len(good) / 2, len(good) - 9} {
		check(fmt.Sprintf("truncated@%d", cut), good[:cut], "")
	}

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0xFF
	err := m.Restore(bytes.NewReader(flipped))
	if err == nil {
		// A single flipped byte in bulk data (e.g. an SDRAM word) can still
		// decode structurally; what matters is that structural corruption
		// errors out, which the truncation cases above pin. But if it did
		// error, the machine must be untouched.
		t.Skip("bit flip landed in bulk data and decoded structurally")
	}
	var after bytes.Buffer
	if err := m.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after.Bytes(), before) {
		t.Error("failed restore of flipped snapshot mutated the machine")
	}

	// Mesh-shape mismatch: a 2-node snapshot must not restore here.
	cfg := machine.DefaultConfig()
	small := machine.New(cfg)
	if _, err := rt.Install(small, rt.Options{}); err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := small.Save(&sbuf); err != nil {
		t.Fatal(err)
	}
	check("shape", sbuf.Bytes(), "mesh")

	// And the machine must still continue correctly after all that.
	if _, err := m.Run(500000); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleClose: Close is idempotent — a second Close (with and without
// a started worker pool, and after a finished Run) is a harmless no-op,
// while stepping after Close still panics (TestStepAfterClosePanics).
func TestDoubleClose(t *testing.T) {
	for _, steps := range []int{0, 4} {
		t.Run(fmt.Sprintf("steps%d", steps), func(t *testing.T) {
			cfg := machine.DefaultConfig()
			cfg.Dims = noc.Coord{X: 4, Y: 1, Z: 1}
			cfg.Workers = 2
			m := machine.New(cfg)
			loadUser(t, m, 0, 0, 0, "movi i1, #1\nhalt")
			for i := 0; i < steps; i++ {
				m.Step()
			}
			m.Close()
			m.Close() // must not panic or deadlock
		})
	}
	t.Run("afterRun", func(t *testing.T) {
		cfg := machine.DefaultConfig()
		cfg.Dims = noc.Coord{X: 4, Y: 1, Z: 1}
		cfg.Workers = 2
		m := machine.New(cfg)
		loadUser(t, m, 0, 0, 0, "movi i1, #1\nhalt")
		if _, err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		m.Close()
		m.Close()
	})
}
