package machine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rt"
)

// randomProgram generates a valid straight-line program of random ALU and
// memory operations. Memory addresses are masked into node 0's first pages
// so the first-touch allocator stays in bounds.
func randomProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	reg := func() int { return 1 + rng.Intn(15) }
	ops := []string{"add", "sub", "mul", "and", "or", "xor", "shl", "shr", "eq", "lt", "ge"}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			fmt.Fprintf(&b, "    movi i%d, #%d\n", reg(), rng.Intn(1<<16)-1<<15)
		case 1:
			a := reg()
			fmt.Fprintf(&b, "    and i%d, i%d, #2047\n    ld i%d, [i%d]\n", a, a, reg(), a)
		case 2:
			a := reg()
			fmt.Fprintf(&b, "    and i%d, i%d, #2047\n    st [i%d], i%d\n", a, a, a, reg())
		case 3:
			fmt.Fprintf(&b, "    itof f%d, i%d\n", 1+rng.Intn(15), reg())
		case 4:
			fmt.Fprintf(&b, "    fadd f%d, f%d, f%d\n",
				1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15))
		case 5:
			// Division may fault on zero; the machine must survive it.
			fmt.Fprintf(&b, "    div i%d, i%d, i%d\n", reg(), reg(), reg())
		default:
			op := ops[rng.Intn(len(ops))]
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "    %s i%d, i%d, i%d\n", op, reg(), reg(), reg())
			} else {
				fmt.Fprintf(&b, "    %s i%d, i%d, #%d\n", op, reg(), reg(), rng.Intn(64))
			}
		}
	}
	b.WriteString("    halt\n")
	return b.String()
}

// TestRandomProgramsNeverWedgeTheMachine runs randomly generated programs
// on multiple V-Threads: the simulator must never panic, and every thread
// must end halted or (for division by zero) faulted — never stuck.
func TestRandomProgramsNeverWedgeTheMachine(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, _ := newMachine(t, 1, rt.Options{})
		for vt := 0; vt < 3; vt++ {
			loadUser(t, m, 0, vt, rng.Intn(4), randomProgram(rng, 30))
		}
		// Run ignores fault errors here: a div-by-zero fault is a legal
		// outcome for random programs.
		if _, err := m.Run(200000); err != nil && !strings.Contains(err.Error(), "faulted") {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for vt := 0; vt < 3; vt++ {
			for cl := 0; cl < 4; cl++ {
				th := m.Chip(0).Thread(vt, cl)
				if th.Status == cluster.ThreadRunning {
					t.Errorf("seed %d: thread (%d,%d) still running at pc %d",
						seed, vt, cl, th.PC)
				}
			}
		}
	}
}
