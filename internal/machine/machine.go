// Package machine assembles a complete M-Machine: a 3-D mesh of MAP nodes
// (Figure 1), the shared global destination table, and the deterministic
// cycle loop that advances every node and the network in lock step.
//
// The lifecycle is New(Config) -> load programs / map pages -> Run (or
// Step/StepAll/RunUntil) -> Close. Three engines execute the cycle loop
// — the naive per-cycle reference (Naive=true / StepAll), the default
// event-driven engine with idle fast-forward, and the goroutine-sharded
// parallel engine (Config.Workers) — and they are bit-identical in every
// observable way; see DESIGN.md ("The cycle engine", "The parallel
// engine").
//
// Machines checkpoint: Save serializes the complete simulation state to
// a versioned stream, Restore replaces a compatible machine's state
// all-or-nothing (a corrupt or mismatched stream errors and leaves the
// machine untouched), and Fork clones a machine through an in-memory
// snapshot for what-if runs. Snapshots are engine-agnostic: a stream
// saved under one engine restores and continues bit-identically under
// any other (DESIGN.md, "Checkpoint/restore").
package machine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// ErrStopped is wrapped into the error Run and RunUntil return when an
// external stop request (RequestStop, or a Close racing the run) aborts
// the run before completion. The machine state is a consistent
// between-cycles state — the run simply ended early — so it can be
// inspected, snapshotted, or resumed. Detect with errors.Is.
var ErrStopped = errors.New("run stopped")

// ErrCycleLimit is wrapped into the error Run returns when the machine is
// still busy after maxCycles — cycle-budget exhaustion, as opposed to a
// thread fault or a stop request. Detect with errors.Is; supervisors use
// it to classify global-budget exhaustion (internal/guard).
var ErrCycleLimit = errors.New("no completion")

// NoEvent is the NextEvent sentinel meaning "no component will ever act
// again without external input" (see DESIGN.md, "The NextEvent contract").
const NoEvent = chip.NoEvent

// Config describes a machine.
type Config struct {
	Dims noc.Coord // mesh dimensions
	Chip chip.Config

	// Workers selects the parallel chip engine: the chip phase of each busy
	// cycle is sharded across this many persistent worker goroutines with a
	// barrier per cycle (see DESIGN.md, "The parallel engine"). 0 or 1 runs
	// the chip phase serially; -1 uses runtime.GOMAXPROCS(0); values above
	// the node count are clamped. The parallel engine is bit-identical to
	// the serial event engine (enforced by TestDeterminismThreeWay in core)
	// and is ignored under the naive reference engine and by RunUntil.
	Workers int `snap:"derived,engine selection, never affects simulated results"`

	// RebalanceEvery is the parallel engine's shard-rebalance window, in
	// dispatched busy cycles: after each window the pool re-draws shard
	// boundaries when the observed per-shard work is imbalanced (see
	// DESIGN.md, "Active-set scheduling"). 0 selects the default window;
	// negative disables rebalancing. Rebalancing never affects simulated
	// results — only which worker steps which chip.
	RebalanceEvery int64 `snap:"derived,engine tuning, never affects simulated results"`
}

// DefaultConfig returns a 2x1x1 machine (the two-node setup of the paper's
// Table 1 / Figure 9 measurements) with calibrated chip timing.
func DefaultConfig() Config {
	return Config{Dims: noc.Coord{X: 2, Y: 1, Z: 1}, Chip: chip.DefaultConfig()}
}

// Machine is a collection of nodes connected by the mesh.
type Machine struct {
	Cfg   Config
	Net   *noc.Network
	GDT   *gtlb.Table
	Chips []*chip.Chip

	Cycle int64

	// Naive selects the reference engine: Step advances every component
	// every cycle (StepAll) and Run never fast-forwards. The default
	// event-driven engine skips components whose NextEvent lies in the
	// future and jumps the clock over machine-wide idle stretches; both
	// engines produce bit-identical state, cycle counts, fault behavior,
	// and trace output (enforced by TestDeterminismEngines in core).
	Naive bool `snap:"derived,engine selection, never affects simulated results"`

	// nextPPN allocates physical pages per node for MapLocal; runtime
	// handlers allocate from a separate high region (see AllocBase).
	nextPPN []uint64

	// workers is the normalized Config.Workers (>= 2 means the parallel
	// chip engine is active); pool is its lazily started goroutine pool,
	// and closed records Close so a later Step cannot resurrect it.
	workers int       `snap:"derived,normalized engine config"`
	pool    *chipPool `snap:"derived,goroutine pool, rebuilt lazily"`
	closed  bool      `snap:"derived,process-lifetime flag"`

	// Supervision plumbing (DESIGN.md, "Supervised runs & fault
	// injection"). runMu serializes Run/RunUntil against Close, so a
	// session teardown can close a machine whose run is still in flight:
	// Close raises stopReq, the run observes it at its next loop head and
	// returns ErrStopped, and Close then proceeds under the lock. stopReq
	// is also the watchdog stop flag guard sets out-of-band; it is polled
	// only at the run-loop head (an existing O(1) sync point), so the
	// per-cycle hot path gains one uncontended atomic load and simulated
	// state is never affected — stopping only decides where the run ends,
	// never what any cycle computes. cycleGauge mirrors Cycle at the same
	// point so monitors on other goroutines can observe progress without
	// racing the engine. probe is the fault-injection hook (SetFaultProbe).
	runMu      sync.Mutex                  `snap:"derived,supervision plumbing"`
	stopReq    atomic.Bool                 `snap:"derived,supervision plumbing"`
	cycleGauge atomic.Int64                `snap:"derived,supervision plumbing"`
	probe      func(node int, cycle int64) `snap:"derived,fault-injection hook, reinstalled by the owner"`

	// arrivalNodes tracks the nodes with delivered-but-unconsumed network
	// messages (arrivalMark is its membership bitmap), maintained
	// incrementally from noc.Network.DeliveredNodes so per-cycle arrival
	// wake-ups cost O(affected nodes), not O(nodes). Used by the event
	// engines only; the naive loop steps everything anyway.
	arrivalNodes []int  `snap:"derived,rebuilt by recomputeActive after Restore"`
	arrivalMark  []bool `snap:"derived,rebuilt by recomputeActive after Restore"`

	// Run-loop activity counters (ROADMAP, "Run-loop active sets"): the
	// loop head's UserDone/Quiescent/totalIssued checks ran O(nodes) scans
	// every busy cycle; these cache the same quantities per chip and
	// maintain the machine totals incrementally. A chip's contribution can
	// only change on a cycle it steps (every thread transition, queue
	// push, and issue happens inside Chip.Step, and its outbox is drained
	// before the counters are read), so noteStepped refreshes exactly the
	// stepped chips — O(active) per cycle. recomputeActive rebuilds
	// everything at Run/RunUntil entry and after Restore, covering
	// external mutations (program loads, pokes) between runs.
	runningUser int      `snap:"derived,rebuilt by recomputeActive after Restore"` // running user H-Threads across all chips
	busyChips   int      `snap:"derived,rebuilt by recomputeActive after Restore"` // chips with outstanding work (!chip.Quiescent)
	issuedTotal uint64   `snap:"derived,rebuilt by recomputeActive after Restore"` // sum of per-chip InstsIssued
	chipRunning []int    `snap:"derived,rebuilt by recomputeActive after Restore"`
	chipBusy    []bool   `snap:"derived,rebuilt by recomputeActive after Restore"`
	chipIssued  []uint64 `snap:"derived,rebuilt by recomputeActive after Restore"`
	steppedBuf  []int    `snap:"derived,per-cycle scratch"` // serial event phase scratch: chips stepped this cycle
}

// Reserved physical layout (words). The LPT base comes from the memory
// config; the runtime scratch and page allocator sit just above it.
const (
	// FirstMapPPN is the first physical page used by MapLocal.
	FirstMapPPN = 16
)

// ScratchBase returns the physical address of the runtime scratch area.
func ScratchBase(c mem.Config) uint64 {
	return c.LPT.Base + c.LPT.Entries*mem.PTEWords
}

// AllocCounterAddr returns the physical word holding the runtime page
// allocator's next free PPN.
func AllocCounterAddr(c mem.Config) uint64 { return ScratchBase(c) + 64 }

// AllocBasePPN returns the first PPN handed out by the runtime allocator.
func AllocBasePPN(c mem.Config) uint64 {
	return (AllocCounterAddr(c) + 64 + mem.PageWords) / mem.PageWords
}

// New builds the machine: one chip per mesh coordinate, all sharing the
// network and GDT.
func New(cfg Config) *Machine {
	net := noc.New(cfg.Dims, cfg.Chip.Net)
	gdt := &gtlb.Table{}
	m := &Machine{
		Cfg:         cfg,
		Net:         net,
		GDT:         gdt,
		Chips:       make([]*chip.Chip, net.NumNodes()),
		nextPPN:     make([]uint64, net.NumNodes()),
		arrivalMark: make([]bool, net.NumNodes()),
		chipRunning: make([]int, net.NumNodes()),
		chipBusy:    make([]bool, net.NumNodes()),
		chipIssued:  make([]uint64, net.NumNodes()),
	}
	m.workers = cfg.Workers
	if m.workers < 0 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	if m.workers > len(m.Chips) {
		m.workers = len(m.Chips)
	}
	for i := range m.Chips {
		c := chip.New(cfg.Chip, net.CoordOf(i), i, net, gdt)
		// Initialize the runtime page allocator counter.
		c.Mem.SDRAM.Write(AllocCounterAddr(cfg.Chip.Mem), AllocBasePPN(cfg.Chip.Mem), false)
		// Under the parallel engine trace events are buffered per chip and
		// flushed in node order so the shared callback never runs
		// concurrently (and the stream order matches the serial engines).
		c.BufferTrace = m.workers >= 2
		m.Chips[i] = c
		m.nextPPN[i] = FirstMapPPN
	}
	return m
}

// Close stops the parallel engine's worker goroutines, if any were started,
// after materializing any deferred idle-chip bookkeeping (see step). It is
// optional: an unreachable Machine releases the workers via a GC cleanup.
// Close is idempotent — a second Close (including one racing the GC
// cleanup after a finished Run) is a harmless no-op — and safe to call
// concurrently with an in-flight Run or RunUntil: it raises the stop
// request, waits for the run to observe it at its next loop head and
// return ErrStopped, and only then tears the pool down (the shutdown
// ordering a session server needs). The machine must not be stepped after
// Close — the parallel chip phase panics if it is.
func (m *Machine) Close() {
	m.stopReq.Store(true)
	m.runMu.Lock()
	defer m.runMu.Unlock()
	// The request has served its purpose once the lock is held; do not
	// poison a caller who (historically legal on serial machines) runs
	// again after Close.
	m.stopReq.Store(false)
	if m.closed {
		return
	}
	m.closed = true
	if m.pool != nil {
		m.pool.sync(m.Cycle)
		m.pool.stop()
	}
}

// RequestStop asks an in-flight Run or RunUntil to return at its next
// loop head with an error wrapping ErrStopped. It is safe from any
// goroutine — this is the watchdog stop flag (see internal/guard): the
// flag is polled only at the run-loop head, so it cannot change any
// simulated state, only where the run ends. The request is sticky until
// ClearStop; a Run entered with the flag raised returns immediately.
func (m *Machine) RequestStop() { m.stopReq.Store(true) }

// ClearStop lowers the stop flag. Supervisors call it before starting a
// supervised run so a stale request from a previous run cannot abort the
// new one.
func (m *Machine) ClearStop() { m.stopReq.Store(false) }

// CycleGauge reports the machine cycle most recently observed at a run's
// loop head. Unlike reading Cycle directly, it is safe from any
// goroutine while a run is in flight, which is what watchdog monitors
// need to distinguish a livelocked-but-advancing simulation from a
// wedged one. Between runs it lags Cycle (it is only updated inside
// Run/RunUntil).
func (m *Machine) CycleGauge() int64 { return m.cycleGauge.Load() }

// SetFaultProbe installs fn to be called immediately before every chip
// step, with the chip's node index and the current cycle — the
// fault-injection hook (see internal/faultinject). Under the parallel
// engine the probe runs on worker goroutines, concurrently for distinct
// nodes, so fn must be safe for that; a panic out of fn is contained
// exactly like a panic out of the chip step itself. Install probes only
// between runs (the same contract as program loads); nil removes the
// probe. Probes are for tests and fault drills — the nil check they cost
// per stepped chip is the entire production overhead.
func (m *Machine) SetFaultProbe(fn func(node int, cycle int64)) {
	m.probe = fn
	if m.pool != nil {
		m.pool.probe = fn
	}
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.Chips) }

// Chip returns node i's processor.
func (m *Machine) Chip(i int) *chip.Chip { return m.Chips[i] }

// StepAll advances the whole machine one cycle the naive way: every chip
// and the network step unconditionally. This is the reference (debug)
// engine the event-driven Step is validated against. When a parallel pool
// is alive (the engines may be interleaved on one machine), StepAll also
// keeps the event-engine caches honest: a forced Step can lower a chip's
// wake internally (e.g. by consuming a delivered message) without firing
// the wake hook, so every chip is re-marked due for the next cycle — the
// safe, possibly-early direction of the due-cache invariant — and the
// tracked arrival set ingests this cycle's deliveries.
func (m *Machine) StepAll() {
	now := m.Cycle
	if m.pool != nil {
		m.pool.sync(now)
	}
	for i, c := range m.Chips {
		if m.probe != nil {
			m.probe(i, now)
		}
		c.Step(now)
	}
	m.drainChipOutput(now)
	for i := range m.Chips {
		m.noteStepped(i)
	}
	m.Net.Step(now)
	if m.pool != nil {
		m.pool.wakeAllAt(now + 1)
	}
	// The wakes are unobservable under naive stepping (only the event
	// engines consult wake cycles), so this costs nothing but keeps the
	// arrival set exact for a later event-engine step.
	m.wakeArrivals(now, true)
	m.Cycle++
}

// Step advances the whole machine one cycle. The event-driven engine steps
// only the chips whose NextEvent is due; a skipped chip replays its idle
// stat side effects via SkipCycles, so observable state evolves exactly as
// under StepAll. The network walk runs only when a message can move. With
// Config.Workers >= 2 the chip phase runs sharded on the worker pool under
// active-set scheduling: chips that are not due are not touched at all —
// their per-cycle idle bookkeeping is deferred and replayed in one batch
// when they next become due, or at the next sync point (Run returning,
// RunUntil, StepAll, Close), so every externally observed state is
// bit-identical to the serial engines'.
func (m *Machine) Step() { m.step(m.workers >= 2) }

// step is Step with an explicit engine choice for the chip phase; RunUntil
// forces the serial phase so tight per-cycle predicate loops don't pay the
// parallel barrier.
func (m *Machine) step(parallel bool) {
	if m.Naive {
		m.StepAll()
		return
	}
	now := m.Cycle
	if parallel {
		if m.pool == nil {
			if m.closed {
				// Without this, a Close before the first parallel step would
				// let the lazy path resurrect a worker pool on a closed
				// machine instead of tripping the pool's own panic.
				panic("machine: parallel chip phase stepped after Close (do not call Step after Machine.Close)")
			}
			m.pool = newChipPool(m.Chips, m.workers, m.Cfg.RebalanceEvery)
			m.pool.probe = m.probe
			// Backstop for machines that are never Closed (the experiment
			// harnesses build thousands): release the workers when the
			// machine becomes unreachable. The cleanup must not capture m.
			runtime.AddCleanup(m, func(p *chipPool) { p.stop() }, m.pool)
		}
		m.pool.step(now)
		// Only chips that stepped can have buffered output; drain exactly
		// those, in node-index order.
		m.pool.drainOutput(now)
		for i := range m.pool.shards {
			for _, node := range m.pool.shards[i].stepped {
				m.noteStepped(int(node))
			}
		}
	} else {
		// Entering the serial chip phase with a pool alive: materialize any
		// idle bookkeeping the active-set scheduler deferred, so Step's
		// per-chip cycle invariant holds.
		if m.pool != nil {
			m.pool.sync(now)
		}
		stepped := m.steppedBuf[:0]
		for i, c := range m.Chips {
			if c.NextEvent(now) <= now {
				if m.probe != nil {
					m.probe(i, now)
				}
				c.Step(now)
				stepped = append(stepped, i)
			} else {
				c.SkipCycles(1)
			}
		}
		m.drainChipOutput(now)
		for _, i := range stepped {
			m.noteStepped(i)
		}
		m.steppedBuf = stepped
	}
	netStepped := false
	if m.Net.NeedsStep(now) {
		m.Net.Step(now)
		netStepped = true
	}
	m.wakeArrivals(now, netStepped)
	m.Cycle++
}

// wakeArrivals wakes every chip that has delivered-but-unconsumed network
// messages: a delivery at cycle now is consumed by the destination's
// network input interface at now+1, and a node whose queues are still
// backed up must retry every cycle (the return-to-sender protocol depends
// on it). The tracked node list is maintained incrementally — last cycle's
// survivors plus this cycle's delivery targets — so the walk costs
// O(affected nodes) instead of O(nodes); WakeAll rebuilds it from scratch
// at Run/RunUntil entry.
func (m *Machine) wakeArrivals(now int64, netStepped bool) {
	keep := m.arrivalNodes[:0]
	for _, i := range m.arrivalNodes {
		if m.Net.HasArrivals(i) {
			keep = append(keep, i)
		} else {
			m.arrivalMark[i] = false
		}
	}
	if netStepped {
		for _, i := range m.Net.DeliveredNodes() {
			if !m.arrivalMark[i] {
				m.arrivalMark[i] = true
				keep = append(keep, i)
			}
		}
	}
	m.arrivalNodes = keep
	for _, i := range keep {
		m.Chips[i].WakeAt(now + 1)
	}
}

// drainChipOutput moves every chip's buffered cycle output into the shared
// structures, in node-index order: trace events to the callback, outbox
// messages into the network. A chip cannot observe another chip's
// same-cycle injections, so draining after the chip phase is bit-identical
// to the historical inject-during-step order — and it is the only point
// where per-chip work touches shared mutable state, which is what makes
// the parallel chip phase safe.
func (m *Machine) drainChipOutput(now int64) {
	for _, c := range m.Chips {
		c.FlushTrace()
		c.FlushNet(now)
	}
}

// NextEvent reports the earliest cycle >= now at which any component of the
// machine can change state without new external input, NoEvent if the
// machine is permanently idle (deadlocked or finished). With the parallel
// engine's pool alive the chip minimum comes from the per-shard due-set
// aggregates — O(shards) instead of O(nodes); the cached values are never
// later than the chips' true wakes, so the answer can only err early, which
// at worst costs a spurious (and observably identical) busy cycle.
func (m *Machine) NextEvent(now int64) int64 {
	next := m.Net.NextEvent(now)
	if m.pool != nil {
		if w := m.pool.nextEvent(now); w < next {
			next = w
		}
		return next
	}
	for _, c := range m.Chips {
		if w := c.NextEvent(now); w < next {
			next = w
		}
	}
	return next
}

// skip fast-forwards the machine clock d cycles; the caller must have
// established via NextEvent that no component can act inside the window.
// With the parallel pool alive the per-chip SkipCycles replay is deferred
// (the active-set scheduler batches it when a chip next runs, or a sync
// point materializes it), so a machine-wide idle jump is one addition.
func (m *Machine) skip(d int64) {
	if m.pool == nil {
		for _, c := range m.Chips {
			c.SkipCycles(d)
		}
	}
	m.Cycle += d
}

// UserDone reports whether every loaded user H-Thread has halted or
// faulted.
func (m *Machine) UserDone() bool {
	for i := range m.Chips {
		if runningUserOf(m.Chips[i]) > 0 {
			return false
		}
	}
	return true
}

// runningUserOf counts a chip's running user H-Threads.
func runningUserOf(c *chip.Chip) int {
	n := 0
	for vt := 0; vt < isa.NumUserSlots; vt++ {
		for cl := 0; cl < isa.NumClusters; cl++ {
			if c.Thread(vt, cl).Status == cluster.ThreadRunning {
				n++
			}
		}
	}
	return n
}

// noteStepped refreshes chip i's cached activity contributions after it
// stepped (its outbox must already be drained, so the quiescence check
// sees the cross-cycle state). Chips that skip a cycle cannot change any
// of the three quantities, so the loop head's totals stay exact while
// only stepped chips are visited.
func (m *Machine) noteStepped(i int) {
	c := m.Chips[i]
	if n := runningUserOf(c); n != m.chipRunning[i] {
		m.runningUser += n - m.chipRunning[i]
		m.chipRunning[i] = n
	}
	if b := !c.Quiescent(); b != m.chipBusy[i] {
		if b {
			m.busyChips++
		} else {
			m.busyChips--
		}
		m.chipBusy[i] = b
	}
	if v := c.InstsIssued; v != m.chipIssued[i] {
		m.issuedTotal += v - m.chipIssued[i]
		m.chipIssued[i] = v
	}
}

// recomputeActive rebuilds the run-loop activity counters from scratch —
// the O(nodes) pass Run and RunUntil pay once at entry (and Restore pays
// once at commit) so that state mutated from outside the simulation is
// observed; within a run noteStepped keeps them exact incrementally.
func (m *Machine) recomputeActive() {
	m.runningUser, m.busyChips, m.issuedTotal = 0, 0, 0
	for i, c := range m.Chips {
		m.chipRunning[i] = runningUserOf(c)
		m.runningUser += m.chipRunning[i]
		m.chipBusy[i] = !c.Quiescent()
		if m.chipBusy[i] {
			m.busyChips++
		}
		m.chipIssued[i] = c.InstsIssued
		m.issuedTotal += c.InstsIssued
	}
}

// Quiescent reports whether no node or the network has outstanding work.
func (m *Machine) Quiescent() bool {
	if !m.Net.Quiescent() {
		return false
	}
	for _, c := range m.Chips {
		if !c.Quiescent() {
			return false
		}
	}
	return true
}

// quietWindow is the number of consecutive idle cycles Run requires before
// declaring the machine done: user threads may halt while event handlers
// are still mid-record, so quiescence is confirmed by observing no
// instruction issue anywhere with all queues drained.
const quietWindow = 32

// QuietWindow is quietWindow for external bound arithmetic: Run's cycle
// bound is padded by this many detection cycles, so a caller that must
// stop the machine at an exact cycle (internal/guard's cycle budgets)
// subtracts it back out of the bound it passes.
const QuietWindow = quietWindow

// Run steps until all user threads are done and the machine has been
// quiescent (no queued work and no instruction issued) for quietWindow
// cycles, or maxCycles elapse. It returns the cycles executed (excluding
// the quiet window) and an error on timeout or if any user thread faulted.
//
// Under the event-driven engine Run additionally fast-forwards: after each
// step it asks every component for its NextEvent and, when the minimum lies
// beyond the next cycle, jumps the clock there in one go. The skipped
// cycles are provably no-ops (no component may act, so the loop-head
// bookkeeping below is frozen too), and their only observable effects —
// per-cycle stall statistics — are replayed exactly by Machine.skip, so
// cycle counts, state, and traces stay bit-identical to the naive loop.
func (m *Machine) Run(maxCycles int64) (int64, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	// The active-set scheduler defers idle chips' per-cycle bookkeeping;
	// materialize it before returning so callers observe exactly the
	// per-chip cycle counts and stall statistics of the serial engines.
	defer m.syncDeferred()
	m.WakeAll()
	m.recomputeActive()
	start := m.Cycle
	bound := start + maxCycles + quietWindow
	idle := int64(0)
	prevIssued := m.issuedTotal
	for m.Cycle < bound {
		// Stop flag and progress gauge: the only supervision cost on the
		// hot path, one atomic load and one atomic store per loop
		// iteration. Stopping cannot change simulated state — the run
		// merely ends between two cycles.
		m.cycleGauge.Store(m.Cycle)
		if m.stopReq.Load() {
			return m.Cycle - start, fmt.Errorf("machine: run stopped at cycle %d: %w", m.Cycle, ErrStopped)
		}
		// The loop-head checks read the incrementally maintained activity
		// counters (see noteStepped) — O(1) instead of the historical
		// O(nodes) UserDone/Quiescent/totalIssued scans every busy cycle,
		// and equal to them at every iteration by construction.
		if m.runningUser == 0 && m.busyChips == 0 && m.Net.Quiescent() {
			if m.issuedTotal == prevIssued {
				idle++
				if idle >= quietWindow {
					return m.Cycle - start - idle, m.FaultError()
				}
			} else {
				prevIssued, idle = m.issuedTotal, 0
			}
		} else {
			prevIssued, idle = m.issuedTotal, 0
		}
		m.Step()
		if !m.Naive {
			m.fastForward(bound, &idle)
		}
	}
	m.cycleGauge.Store(m.Cycle)
	if m.UserDone() {
		return m.Cycle - start, m.FaultError()
	}
	return m.Cycle - start, fmt.Errorf("machine: %w within %d cycles", ErrCycleLimit, maxCycles)
}

// fastForward jumps the clock to the machine's next event (clamped to
// bound), emulating the loop-head bookkeeping of Run for every skipped
// iteration. State is frozen across the window, so the per-iteration
// checks are constant: either the machine is done and quiescent — each
// skipped iteration increments the idle counter, and the jump must stop
// one cycle before the counter reaches the quiet window so the next real
// iteration returns exactly where the naive loop would — or it is not, and
// each iteration resets the counter.
func (m *Machine) fastForward(bound int64, idle *int64) {
	next := m.NextEvent(m.Cycle)
	if next > bound {
		next = bound
	}
	d := next - m.Cycle
	if d <= 0 {
		return
	}
	if m.runningUser == 0 && m.busyChips == 0 && m.Net.Quiescent() {
		// issuedTotal cannot have changed (an issue would have set the
		// issuing chip's NextEvent to the very next cycle), so every
		// skipped iteration takes the idle++ branch.
		room := quietWindow - *idle - 1
		if room <= 0 {
			return
		}
		if d > room {
			d = room
		}
		*idle += d
	} else {
		*idle = 0
	}
	m.skip(d)
}

// WakeAll forces every chip to re-derive its next event on its coming
// step. Run and RunUntil call it on entry so that any state mutated from
// outside the simulation between runs (program loads, register pokes) is
// observed; within a run the engine maintains wake cycles itself. It also
// rebuilds the tracked arrival set from scratch, so deliveries that
// happened outside the event engines (e.g. naive-engine cycles on the same
// machine) are re-observed.
func (m *Machine) WakeAll() {
	m.arrivalNodes = m.arrivalNodes[:0]
	for i, c := range m.Chips {
		if m.Net.HasArrivals(i) {
			m.arrivalMark[i] = true
			m.arrivalNodes = append(m.arrivalNodes, i)
		} else {
			m.arrivalMark[i] = false
		}
		c.Touch()
	}
}

// syncDeferred materializes any idle-chip bookkeeping the active-set
// scheduler deferred (no-op without a pool).
func (m *Machine) syncDeferred() {
	if m.pool != nil {
		m.pool.sync(m.Cycle)
	}
}

// Rebalances reports how many times the parallel engine has re-drawn its
// shard boundaries (0 when the pool never started). Diagnostics only:
// rebalancing cannot affect simulated results.
func (m *Machine) Rebalances() int64 {
	if m.pool == nil {
		return 0
	}
	return m.pool.Rebalances()
}

// RunUntil steps until pred holds or maxCycles elapse. The event engine
// advances cycle-by-cycle here (components are still skipped when idle,
// but the clock is not fast-forwarded), so an arbitrary predicate — even
// one reading Machine.Cycle — observes exactly the per-cycle sequence the
// naive loop produces. The chip phase always runs serially here, even on
// a parallel-configured machine: with no fast-forward amortizing it, the
// per-cycle barrier would dominate, and the result is identical anyway.
func (m *Machine) RunUntil(pred func() bool, maxCycles int64) (int64, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	m.syncDeferred() // pred may read per-chip state a prior Run deferred
	m.WakeAll()
	m.recomputeActive()
	start := m.Cycle
	for m.Cycle-start < maxCycles {
		m.cycleGauge.Store(m.Cycle)
		if m.stopReq.Load() {
			return m.Cycle - start, fmt.Errorf("machine: run stopped at cycle %d: %w", m.Cycle, ErrStopped)
		}
		if pred() {
			return m.Cycle - start, nil
		}
		m.step(false)
	}
	return m.Cycle - start, fmt.Errorf("machine: condition not met within %d cycles", maxCycles)
}

// FaultError collects user-thread fault diagnostics, nil if none.
func (m *Machine) FaultError() error {
	for i, c := range m.Chips {
		for vt := 0; vt < isa.NumUserSlots; vt++ {
			for cl := 0; cl < isa.NumClusters; cl++ {
				th := c.Thread(vt, cl)
				if th.Status == cluster.ThreadFaulted {
					return fmt.Errorf("machine: node %d vthread %d cluster %d faulted: %s",
						i, vt, cl, th.FaultMsg)
				}
			}
		}
	}
	return nil
}

// MapPageGroup installs a GDT entry distributing a virtual range across
// nodes (Figure 8).
func (m *Machine) MapPageGroup(e gtlb.Entry) error { return m.GDT.Add(e) }

// MapNodeRange maps npages GTLB pages starting at vaddr to a single node —
// the common "this range lives on node n" case.
func (m *Machine) MapNodeRange(vaddr uint64, npages uint64, node int) error {
	// Round npages up to a power of two, as the encoding requires.
	gp := uint64(1)
	for gp < npages {
		gp *= 2
	}
	c := m.Net.CoordOf(node)
	return m.GDT.Add(gtlb.Entry{
		VirtPage:     vaddr / gtlb.GTLBPageWords,
		GroupPages:   gp,
		Start:        gtlb.NodeID{X: c.X, Y: c.Y, Z: c.Z},
		ExtentLog:    [3]int{0, 0, 0},
		PagesPerNode: gp,
	})
}

// MapLocal creates a local (512-word) page mapping vpn on the given node,
// allocating a physical page, with all blocks in status s. If prime is
// true the LTLB is primed; otherwise only the LPT holds the entry and the
// first access takes an LTLB miss.
func (m *Machine) MapLocal(node int, vpn uint64, s mem.BlockStatus, prime bool) uint64 {
	ppn := m.nextPPN[node]
	m.nextPPN[node]++
	if prime {
		m.Chips[node].Mem.MapPage(vpn, ppn, s)
	} else {
		m.Chips[node].Mem.MapPageLPTOnly(vpn, ppn, s)
	}
	return ppn
}

// Poke writes a word at a node's virtual address (boot/test path).
func (m *Machine) Poke(node int, vaddr, w uint64) error {
	return m.Chips[node].Mem.PokeVirt(vaddr, w, false)
}

// Peek reads a word at a node's virtual address (boot/test path).
func (m *Machine) Peek(node int, vaddr uint64) (uint64, error) {
	w, _, err := m.Chips[node].Mem.PeekVirt(vaddr)
	return w, err
}

// SetTrace installs a trace callback on every chip.
func (m *Machine) SetTrace(fn func(cycle int64, node int, event, detail string)) {
	for _, c := range m.Chips {
		c.Trace = fn
	}
}
