// Package machine assembles a complete M-Machine: a 3-D mesh of MAP nodes
// (Figure 1), the shared global destination table, and the deterministic
// cycle loop that advances every node and the network in lock step.
package machine

import (
	"fmt"

	"repro/internal/chip"
	"repro/internal/cluster"
	"repro/internal/gtlb"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Config describes a machine.
type Config struct {
	Dims noc.Coord // mesh dimensions
	Chip chip.Config
}

// DefaultConfig returns a 2x1x1 machine (the two-node setup of the paper's
// Table 1 / Figure 9 measurements) with calibrated chip timing.
func DefaultConfig() Config {
	return Config{Dims: noc.Coord{X: 2, Y: 1, Z: 1}, Chip: chip.DefaultConfig()}
}

// Machine is a collection of nodes connected by the mesh.
type Machine struct {
	Cfg   Config
	Net   *noc.Network
	GDT   *gtlb.Table
	Chips []*chip.Chip

	Cycle int64

	// nextPPN allocates physical pages per node for MapLocal; runtime
	// handlers allocate from a separate high region (see AllocBase).
	nextPPN []uint64
}

// Reserved physical layout (words). The LPT base comes from the memory
// config; the runtime scratch and page allocator sit just above it.
const (
	// FirstMapPPN is the first physical page used by MapLocal.
	FirstMapPPN = 16
)

// ScratchBase returns the physical address of the runtime scratch area.
func ScratchBase(c mem.Config) uint64 {
	return c.LPT.Base + c.LPT.Entries*mem.PTEWords
}

// AllocCounterAddr returns the physical word holding the runtime page
// allocator's next free PPN.
func AllocCounterAddr(c mem.Config) uint64 { return ScratchBase(c) + 64 }

// AllocBasePPN returns the first PPN handed out by the runtime allocator.
func AllocBasePPN(c mem.Config) uint64 {
	return (AllocCounterAddr(c) + 64 + mem.PageWords) / mem.PageWords
}

// New builds the machine: one chip per mesh coordinate, all sharing the
// network and GDT.
func New(cfg Config) *Machine {
	net := noc.New(cfg.Dims, cfg.Chip.Net)
	gdt := &gtlb.Table{}
	m := &Machine{
		Cfg:     cfg,
		Net:     net,
		GDT:     gdt,
		Chips:   make([]*chip.Chip, net.NumNodes()),
		nextPPN: make([]uint64, net.NumNodes()),
	}
	for i := range m.Chips {
		c := chip.New(cfg.Chip, net.CoordOf(i), i, net, gdt)
		// Initialize the runtime page allocator counter.
		c.Mem.SDRAM.Write(AllocCounterAddr(cfg.Chip.Mem), AllocBasePPN(cfg.Chip.Mem), false)
		m.Chips[i] = c
		m.nextPPN[i] = FirstMapPPN
	}
	return m
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return len(m.Chips) }

// Chip returns node i's processor.
func (m *Machine) Chip(i int) *chip.Chip { return m.Chips[i] }

// Step advances the whole machine one cycle.
func (m *Machine) Step() {
	for _, c := range m.Chips {
		c.Step(m.Cycle)
	}
	m.Net.Step(m.Cycle)
	m.Cycle++
}

// UserDone reports whether every loaded user H-Thread has halted or
// faulted.
func (m *Machine) UserDone() bool {
	for _, c := range m.Chips {
		for vt := 0; vt < isa.NumUserSlots; vt++ {
			for cl := 0; cl < isa.NumClusters; cl++ {
				if c.Thread(vt, cl).Status == cluster.ThreadRunning {
					return false
				}
			}
		}
	}
	return true
}

// Quiescent reports whether no node or the network has outstanding work.
func (m *Machine) Quiescent() bool {
	if !m.Net.Quiescent() {
		return false
	}
	for _, c := range m.Chips {
		if !c.Quiescent() {
			return false
		}
	}
	return true
}

// quietWindow is the number of consecutive idle cycles Run requires before
// declaring the machine done: user threads may halt while event handlers
// are still mid-record, so quiescence is confirmed by observing no
// instruction issue anywhere with all queues drained.
const quietWindow = 32

// Run steps until all user threads are done and the machine has been
// quiescent (no queued work and no instruction issued) for quietWindow
// cycles, or maxCycles elapse. It returns the cycles executed (excluding
// the quiet window) and an error on timeout or if any user thread faulted.
func (m *Machine) Run(maxCycles int64) (int64, error) {
	start := m.Cycle
	idle := int64(0)
	prevIssued := m.totalIssued()
	for m.Cycle-start < maxCycles+quietWindow {
		if m.UserDone() && m.Quiescent() {
			if issued := m.totalIssued(); issued == prevIssued {
				idle++
				if idle >= quietWindow {
					return m.Cycle - start - idle, m.FaultError()
				}
			} else {
				prevIssued, idle = issued, 0
			}
		} else {
			prevIssued, idle = m.totalIssued(), 0
		}
		m.Step()
	}
	if m.UserDone() {
		return m.Cycle - start, m.FaultError()
	}
	return m.Cycle - start, fmt.Errorf("machine: no completion within %d cycles", maxCycles)
}

func (m *Machine) totalIssued() uint64 {
	var n uint64
	for _, c := range m.Chips {
		n += c.InstsIssued
	}
	return n
}

// RunUntil steps until pred holds or maxCycles elapse.
func (m *Machine) RunUntil(pred func() bool, maxCycles int64) (int64, error) {
	start := m.Cycle
	for m.Cycle-start < maxCycles {
		if pred() {
			return m.Cycle - start, nil
		}
		m.Step()
	}
	return m.Cycle - start, fmt.Errorf("machine: condition not met within %d cycles", maxCycles)
}

// FaultError collects user-thread fault diagnostics, nil if none.
func (m *Machine) FaultError() error {
	for i, c := range m.Chips {
		for vt := 0; vt < isa.NumUserSlots; vt++ {
			for cl := 0; cl < isa.NumClusters; cl++ {
				th := c.Thread(vt, cl)
				if th.Status == cluster.ThreadFaulted {
					return fmt.Errorf("machine: node %d vthread %d cluster %d faulted: %s",
						i, vt, cl, th.FaultMsg)
				}
			}
		}
	}
	return nil
}

// MapPageGroup installs a GDT entry distributing a virtual range across
// nodes (Figure 8).
func (m *Machine) MapPageGroup(e gtlb.Entry) error { return m.GDT.Add(e) }

// MapNodeRange maps npages GTLB pages starting at vaddr to a single node —
// the common "this range lives on node n" case.
func (m *Machine) MapNodeRange(vaddr uint64, npages uint64, node int) error {
	// Round npages up to a power of two, as the encoding requires.
	gp := uint64(1)
	for gp < npages {
		gp *= 2
	}
	c := m.Net.CoordOf(node)
	return m.GDT.Add(gtlb.Entry{
		VirtPage:     vaddr / gtlb.GTLBPageWords,
		GroupPages:   gp,
		Start:        gtlb.NodeID{X: c.X, Y: c.Y, Z: c.Z},
		ExtentLog:    [3]int{0, 0, 0},
		PagesPerNode: gp,
	})
}

// MapLocal creates a local (512-word) page mapping vpn on the given node,
// allocating a physical page, with all blocks in status s. If prime is
// true the LTLB is primed; otherwise only the LPT holds the entry and the
// first access takes an LTLB miss.
func (m *Machine) MapLocal(node int, vpn uint64, s mem.BlockStatus, prime bool) uint64 {
	ppn := m.nextPPN[node]
	m.nextPPN[node]++
	if prime {
		m.Chips[node].Mem.MapPage(vpn, ppn, s)
	} else {
		m.Chips[node].Mem.MapPageLPTOnly(vpn, ppn, s)
	}
	return ppn
}

// Poke writes a word at a node's virtual address (boot/test path).
func (m *Machine) Poke(node int, vaddr, w uint64) error {
	return m.Chips[node].Mem.PokeVirt(vaddr, w, false)
}

// Peek reads a word at a node's virtual address (boot/test path).
func (m *Machine) Peek(node int, vaddr uint64) (uint64, error) {
	w, _, err := m.Chips[node].Mem.PeekVirt(vaddr)
	return w, err
}

// SetTrace installs a trace callback on every chip.
func (m *Machine) SetTrace(fn func(cycle int64, node int, event, detail string)) {
	for _, c := range m.Chips {
		c.Trace = fn
	}
}
