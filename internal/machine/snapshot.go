package machine

// Checkpoint/restore (DESIGN.md, "Checkpoint/restore"): Save serializes
// the complete simulation state — every chip, the memory systems, the
// in-flight network, the GDT, and the machine clock — to a versioned
// binary stream; Restore loads one into a compatible machine; Fork clones
// a machine through an in-memory snapshot.
//
// Snapshots are engine-agnostic: Save first materializes any idle-chip
// bookkeeping the parallel engine's active-set scheduler deferred (the
// same sync point Run and Close use), so the serialized state is the one
// the serial engines would show, bit for bit. Restore re-derives the
// event-engine wake caches by touching every chip — the always-safe early
// direction of the NextEvent contract — so the restored machine continues
// identically under any engine.
//
// Restore is all-or-nothing: the stream is fully decoded and validated
// into detached scratch components first, and only then committed, so a
// corrupt, truncated, or mismatched snapshot returns an error and leaves
// the machine exactly as it was.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/chip"
	"repro/internal/gtlb"
	"repro/internal/noc"
	"repro/internal/snap"
)

// SnapshotVersion is the current snapshot format version. Restore rejects
// any other version; the format has no cross-version migration.
const SnapshotVersion = 1

// Magic words bracketing a snapshot stream ("MSIMSNAP" / "MSIMEND\n" as
// little-endian words): the header identifies the format before anything
// is decoded, the trailer proves the stream was not truncated after the
// last variable-length section.
const (
	snapshotMagic   = 0x50414e534d49534d // "MSIMSNAP"
	snapshotTrailer = 0x0a444e454d49534d // "MSIMEND\n"
)

// encodeConfig writes the parts of the configuration that define snapshot
// compatibility: the mesh shape and the chip's timing and capacity
// parameters. Engine selection (Workers, RebalanceEvery, Naive) is
// deliberately excluded — it is not simulated state, and a snapshot taken
// under one engine restores under any other.
func encodeConfig(w *snap.Writer, cfg Config) {
	w.Int(cfg.Dims.X)
	w.Int(cfg.Dims.Y)
	w.Int(cfg.Dims.Z)
	c := cfg.Chip
	w.U64(c.Mem.SDRAM.Words)
	w.U64(c.Mem.SDRAM.RowWords)
	w.I64(c.Mem.SDRAM.RowHitLat)
	w.I64(c.Mem.SDRAM.RowMissLat)
	w.Int(c.Mem.Cache.Lines)
	w.Int(c.Mem.LTLBEntries)
	w.U64(c.Mem.LPT.Base)
	w.U64(c.Mem.LPT.Entries)
	w.I64(c.Mem.ReadHitLat)
	w.I64(c.Mem.WriteHitLat)
	w.I64(c.Mem.MissDetectLat)
	w.I64(c.Mem.PhysAccessLat)
	w.I64(c.Mem.LineLoadLat)
	w.I64(c.Net.InjectLat)
	w.I64(c.Net.HopLat)
	w.I64(c.Net.DeliverLat)
	w.I64(c.IntLat)
	w.I64(c.FPLat)
	w.I64(c.FDivLat)
	w.I64(c.XferLat)
	w.I64(c.GCCLat)
	w.I64(c.GTLBLat)
	w.Int(c.CSwitchPorts)
	w.Int(c.MsgQueueCap)
	w.Int(c.EventQueueCap)
	w.Int(c.SendCredits)
	w.I64(c.ResendDelay)
}

// decodeConfig reads a configuration written by encodeConfig.
func decodeConfig(r *snap.Reader) Config {
	var cfg Config
	cfg.Dims = noc.Coord{X: r.Int(), Y: r.Int(), Z: r.Int()}
	c := &cfg.Chip
	c.Mem.SDRAM.Words = r.U64()
	c.Mem.SDRAM.RowWords = r.U64()
	c.Mem.SDRAM.RowHitLat = r.I64()
	c.Mem.SDRAM.RowMissLat = r.I64()
	c.Mem.Cache.Lines = r.Int()
	c.Mem.LTLBEntries = r.Int()
	c.Mem.LPT.Base = r.U64()
	c.Mem.LPT.Entries = r.U64()
	c.Mem.ReadHitLat = r.I64()
	c.Mem.WriteHitLat = r.I64()
	c.Mem.MissDetectLat = r.I64()
	c.Mem.PhysAccessLat = r.I64()
	c.Mem.LineLoadLat = r.I64()
	c.Net.InjectLat = r.I64()
	c.Net.HopLat = r.I64()
	c.Net.DeliverLat = r.I64()
	c.IntLat = r.I64()
	c.FPLat = r.I64()
	c.FDivLat = r.I64()
	c.XferLat = r.I64()
	c.GCCLat = r.I64()
	c.GTLBLat = r.I64()
	c.CSwitchPorts = r.Int()
	c.MsgQueueCap = r.Int()
	c.EventQueueCap = r.Int()
	c.SendCredits = r.Int()
	c.ResendDelay = r.I64()
	return cfg
}

// Save serializes the machine's complete simulation state to w. It must
// be called between cycles (any point where Step/Run/RunUntil is not
// executing — the same contract as Close). Not captured, by design: the
// engine configuration, trace callbacks, and chip wake hooks —
// environment, not state — and the event-engine wake caches, which
// Restore re-derives.
func (m *Machine) Save(w io.Writer) error {
	m.syncDeferred()
	bw := bufio.NewWriter(w)
	sw := snap.NewWriter(bw)
	sw.U64(snapshotMagic)
	sw.U64(SnapshotVersion)
	encodeConfig(sw, m.Cfg)
	sw.I64(m.Cycle)
	sw.Len(len(m.nextPPN))
	for _, p := range m.nextPPN {
		sw.U64(p)
	}
	m.GDT.EncodeState(sw)
	for _, c := range m.Chips {
		c.EncodeState(sw)
	}
	m.Net.EncodeState(sw)
	sw.U64(snapshotTrailer)
	if err := sw.Err(); err != nil {
		return fmt.Errorf("machine: save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("machine: save: %w", err)
	}
	return nil
}

// Restore replaces the machine's simulation state with a snapshot written
// by Save. The target must have the same mesh shape and chip
// configuration as the saved machine (the snapshot carries both and
// Restore verifies them); the engine configuration, installed trace
// callbacks, and worker pool of the target are preserved. On any error
// the machine is left untouched.
func (m *Machine) Restore(rd io.Reader) error {
	r := snap.NewReader(bufio.NewReader(rd))
	if magic := r.U64(); r.Err() == nil && magic != snapshotMagic {
		return fmt.Errorf("machine: restore: not a snapshot stream (bad magic %#x)", magic)
	}
	if v := r.U64(); r.Err() == nil && v != SnapshotVersion {
		return fmt.Errorf("machine: restore: unsupported snapshot version %d (this build reads version %d)", v, SnapshotVersion)
	}
	cfg := decodeConfig(r)
	if r.Err() == nil && (cfg.Dims != m.Cfg.Dims || cfg.Chip != m.Cfg.Chip) {
		return fmt.Errorf("machine: restore: snapshot of a %v mesh with a different configuration cannot restore into this %v machine",
			cfg.Dims, m.Cfg.Dims)
	}

	// Phase 1: decode everything into detached scratch state. All
	// validation happens against the reader's sticky error; nothing below
	// touches the live machine.
	cycle := r.I64()
	nppn := make([]uint64, r.Len(len(m.Chips)))
	if r.Err() == nil && len(nppn) != len(m.Chips) {
		r.Fail(fmt.Errorf("machine: snapshot has %d page allocators for %d nodes", len(nppn), len(m.Chips)))
	}
	for i := range nppn {
		nppn[i] = r.U64()
	}
	gdt := gtlb.DecodeTableState(r)
	chips := make([]*chip.Chip, len(m.Chips))
	for i := range chips {
		chips[i] = chip.DecodeChipState(r, m.Cfg.Chip, m.Net.CoordOf(i), i, m.Net)
	}
	net := noc.DecodeNetworkState(r, m.Cfg.Dims, m.Cfg.Chip.Net)
	if t := r.U64(); r.Err() == nil && t != snapshotTrailer {
		r.Fail(fmt.Errorf("machine: snapshot trailer missing (stream corrupt)"))
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("machine: restore: %w", err)
	}

	// Phase 2: commit. Materialize any engine-deferred bookkeeping first
	// (the pre-restore state must be consistent before it is overwritten),
	// then adopt the scratch state in place — infallible from here on.
	m.syncDeferred()
	m.Cycle = cycle
	copy(m.nextPPN, nppn)
	m.GDT.Adopt(gdt)
	for i, c := range m.Chips {
		c.Adopt(chips[i])
	}
	m.Net.Adopt(net)
	// Re-derive the engine caches: touch every chip (firing the parallel
	// engine's due-set hooks) and rebuild the arrival tracking and the
	// run-loop activity counters from the adopted state.
	m.WakeAll()
	m.recomputeActive()
	return nil
}

// Fork clones the machine through an in-memory snapshot: the clone has
// identical simulation state and engine configuration but no trace
// callbacks, and evolves independently of the original (what-if runs,
// record/replay debugging). The caller owns the clone's Close.
func (m *Machine) Fork() (*Machine, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, fmt.Errorf("machine: fork: %w", err)
	}
	f := New(m.Cfg)
	f.Naive = m.Naive
	if err := f.Restore(&buf); err != nil {
		return nil, fmt.Errorf("machine: fork: %w", err)
	}
	return f, nil
}
