package machine_test

// FuzzSnapshotDecode pins the snapshot decoder's robustness contract
// (DESIGN.md "Checkpoint/restore", and the crash-dump path in
// internal/guard that depends on it): feeding Restore an arbitrary byte
// stream must either succeed or return a descriptive error — never
// panic, never allocate unboundedly, and never leave the machine
// half-mutated. The corpus is seeded with real snapshots taken from the
// checked-in workload scenarios (plus deterministic faultinject
// corruptions of them), so the fuzzer starts deep inside the decode
// paths instead of bouncing off the magic-word check.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/wgen"
)

// fuzzNodes is the fuzz target machine's mesh size. One node keeps the
// per-exec save/restore cost (and so the fuzzing throughput) reasonable
// while matching the checked-in 1-node scenarios (loopsync2, stencil7x2),
// whose snapshots pass the config-compatibility check and exercise the
// full per-chip decode; the 4-node scenarios seed the mismatch path.
const fuzzNodes = 1

// newFuzzTarget boots the machine corrupt streams are restored into: a
// default-config mesh with the runtime installed and a little execution
// history, so the pre-restore state is not trivially zero.
func newFuzzTarget() (*machine.Machine, []byte, error) {
	s, err := core.NewSim(core.Options{Nodes: fuzzNodes})
	if err != nil {
		return nil, nil, err
	}
	if err := s.LoadASM(0, 0, 0, "movi i1, #6\nmul i2, i1, #7\nhalt"); err != nil {
		return nil, nil, err
	}
	if _, err := s.M.Run(500); err != nil {
		return nil, nil, err
	}
	var base bytes.Buffer
	if err := s.M.Save(&base); err != nil {
		return nil, nil, err
	}
	return s.M, base.Bytes(), nil
}

// scenarioSnapshot runs a checked-in .wl scenario to completion and
// returns the finished machine's snapshot.
func scenarioSnapshot(f *testing.F, name string) []byte {
	sc, err := core.ScenarioFromFile("../../testdata/workloads/" + name)
	if err != nil {
		f.Fatal(err)
	}
	_, s, err := sc.RunSim(core.Options{})
	if err != nil {
		f.Fatalf("%s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := s.M.Save(&buf); err != nil {
		f.Fatalf("%s: save: %v", name, err)
	}
	return buf.Bytes()
}

// wgenSnapshot runs one generated scenario (internal/wgen, the same
// generator behind `msim -gen-seed`) and returns the finished machine's
// snapshot. Generated scenarios reach machine states the hand-written
// ones do not — user-mode threads holding guarded pointers, sweep
// staging machines — so their snapshots seed decode paths the scenario
// corpus alone would miss.
func wgenSnapshot(f *testing.F, seed uint64) []byte {
	name, src := wgen.Source(seed)
	sc, err := core.ScenarioFromDSL(name+".wl", src)
	if err != nil {
		f.Fatalf("seed %d: %v", seed, err)
	}
	_, s, err := sc.RunSim(core.Options{})
	if err != nil {
		f.Fatalf("seed %d: %v", seed, err)
	}
	var buf bytes.Buffer
	if err := s.M.Save(&buf); err != nil {
		f.Fatalf("seed %d: save: %v", seed, err)
	}
	return buf.Bytes()
}

// Per-worker-process fuzz state: the target machine is built lazily on
// the first execution and reset to its baseline after every accepted
// stream, so executions are independent. fuzzBefore caches the target's
// current serialized state (it only changes when a stream is accepted),
// halving the per-exec save cost; a failed Restore that mutated the
// machine still trips the comparison, just possibly one exec later.
var (
	fuzzTarget   *machine.Machine
	fuzzBaseline []byte
	fuzzBefore   []byte
)

func FuzzSnapshotDecode(f *testing.F) {
	// Seed corpus: real snapshots from the checked-in scenarios, the
	// target's own baseline, deterministic corruptions of a matching
	// snapshot, and a couple of header-path probes.
	_, base, err := newFuzzTarget()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base)
	f.Add(scenarioSnapshot(f, "loopsync2.wl"))  // mesh 1: full decode path
	f.Add(scenarioSnapshot(f, "stencil7x2.wl")) // mesh 1: full decode path
	f.Add(scenarioSnapshot(f, "ringreduce.wl")) // mesh 4: dims-mismatch path
	f.Add(wgenSnapshot(f, 0))                   // generated, mesh 1: user-mode state
	f.Add(wgenSnapshot(f, 5))                   // generated, mesh 4 sweep: staging machine
	c := faultinject.NewCorrupter(0x5eed)
	f.Add(c.Truncate(base))
	f.Add(c.FlipBit(base))
	f.Add(c.Scramble(base))
	f.Add(base[:16])          // magic + version only
	f.Add([]byte("MSIMSNAP")) // ASCII lookalike, not the little-endian magic
	f.Add([]byte{})
	// Oversized-length probes: a valid prefix cut at assorted depths,
	// followed by a maximal 64-bit word where the next length field would
	// be. Each lands the decoder on some count/length read claiming far
	// more data than the stream holds, pinning snap's capped-allocation
	// path (a descriptive error, never a giant make()).
	huge := bytes.Repeat([]byte{0xff}, 8)
	for _, cut := range []int{24, 264, len(base) / 4, len(base) / 2, len(base) - 9} {
		if cut > 0 && cut < len(base) {
			f.Add(append(append([]byte{}, base[:cut]...), huge...))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if fuzzTarget == nil {
			m, baseline, err := newFuzzTarget()
			if err != nil {
				t.Fatal(err)
			}
			fuzzTarget, fuzzBaseline, fuzzBefore = m, baseline, baseline
		}
		m := fuzzTarget

		if err := m.Restore(bytes.NewReader(data)); err != nil {
			// Rejected: the error must say something, and the machine must
			// be bit-identical to its pre-restore state (proved by
			// re-serializing it).
			if msg := err.Error(); msg == "" || !strings.Contains(msg, "restore") {
				t.Fatalf("undescriptive restore error: %q", msg)
			}
			var after bytes.Buffer
			if err := m.Save(&after); err != nil {
				t.Fatalf("save after failed restore: %v", err)
			}
			if !bytes.Equal(fuzzBefore, after.Bytes()) {
				t.Fatal("failed Restore left the machine half-mutated")
			}
			return
		}

		// Accepted: whatever state was adopted must round-trip through
		// save/restore — an accepted stream is a valid checkpoint.
		var again bytes.Buffer
		if err := m.Save(&again); err != nil {
			t.Fatalf("save after accepted restore: %v", err)
		}
		if err := m.Restore(bytes.NewReader(again.Bytes())); err != nil {
			t.Fatalf("accepted stream does not round-trip: %v", err)
		}
		if err := m.Restore(bytes.NewReader(fuzzBaseline)); err != nil {
			t.Fatalf("baseline reset: %v", err)
		}
		fuzzBefore = fuzzBaseline
	})
}
