package machine_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/noc"
	"repro/internal/rt"
)

// runWorkload boots a fresh machine, runs a mixed multi-node workload, and
// returns a fingerprint of its observable state.
func runWorkload(t *testing.T) string {
	t.Helper()
	m, _ := newMachine(t, 2, rt.Options{Caching: true})
	loadUser(t, m, 0, 0, 0, `
    movi i1, #4096
    movi i2, #0
    movi i3, #20
loop:
    st [i1], i2
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #3
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`)
	loadUser(t, m, 1, 0, 0, `
    movi i1, #64
    movi i2, #0
    movi i3, #30
loop:
    st [i1], i2
    add i1, i1, #9
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`)
	cycles, err := m.Run(500000)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("cycles=%d i5=%d insts=%d/%d msgs=%d hops=%d ltlb=%d/%d status=%d/%d",
		cycles, reg(m, 0, 0, 0, 5),
		m.Chip(0).InstsIssued, m.Chip(1).InstsIssued,
		m.Net.Injected, m.Net.TotalHops,
		m.Chip(0).Mem.LTLBFaults, m.Chip(1).Mem.LTLBFaults,
		m.Chip(0).Mem.StatusFaults, m.Chip(1).Mem.StatusFaults)
}

// TestDeterminism: the simulator must be bit-reproducible — identical runs
// produce identical cycle counts and statistics (DESIGN.md: deterministic,
// single-goroutine cycle loop with fixed arbitration order).
func TestDeterminism(t *testing.T) {
	first := runWorkload(t)
	for i := 0; i < 3; i++ {
		if got := runWorkload(t); got != first {
			t.Fatalf("run %d diverged:\n  %s\nvs\n  %s", i+2, got, first)
		}
	}
}

// runMigrating boots an n-node machine under the given engine
// configuration and runs a workload whose busy region migrates across the
// mesh: node i first serializes through i*4 dependent remote loads from
// its successor's home range (mostly stall cycles), then runs a hot
// arithmetic burst, so activity sweeps from node 0 towards node n-1 over
// time — the pattern that defeats static contiguous shards. It returns a
// fingerprint of the complete observable state (cycle count, the full
// trace stream, per-chip issue and stall statistics — the numbers the
// deferred SkipCycles batching must replay exactly) plus the machine's
// rebalance count.
func runMigrating(t *testing.T, workers int, rebalanceEvery int64) (string, int64) {
	t.Helper()
	const nodes = 8
	cfg := machine.DefaultConfig()
	cfg.Dims = noc.Coord{X: nodes, Y: 1, Z: 1}
	cfg.Workers = workers
	cfg.RebalanceEvery = rebalanceEvery
	m := machine.New(cfg)
	defer m.Close()
	if _, err := rt.Install(m, rt.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
			t.Fatal(err)
		}
	}
	var trace strings.Builder
	m.SetTrace(func(cycle int64, node int, event, detail string) {
		fmt.Fprintf(&trace, "%d %d %s %s\n", cycle, node, event, detail)
	})
	for i := 0; i < nodes; i++ {
		succ := (i + 1) % nodes
		loadUser(t, m, i, 0, 0, fmt.Sprintf(`
    movi i1, #%d            ; successor home range (remote loads)
    movi i2, #0
    movi i3, #%d            ; staggered delay: i*4 dependent remote loads
dly:
    lt i7, i2, i3
    brf i7, burst
    ld i4, [i1]
    add i2, i2, #1
    add i1, i1, #1
    add i6, i6, i4          ; depend on the load so the thread stalls
    br dly
burst:
    movi i5, #0
    movi i6, #%d            ; hot burst length
spin:
    add i5, i5, #1
    lt i7, i5, i6
    brt i7, spin
    halt
`, succ*4096+256, i*4, 300+40*i))
	}
	cycles, err := m.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d end=%d net=%d/%d/%d\n",
		cycles, m.Cycle, m.Net.Injected, m.Net.Delivered, m.Net.TotalHops)
	for i := 0; i < nodes; i++ {
		c := m.Chip(i)
		th := c.Thread(0, 0)
		fmt.Fprintf(&b, "node%d insts=%d ops=%d stalls=%d i5=%d i6=%d\n",
			i, c.InstsIssued, c.OpsIssued, th.StallCycles,
			reg(m, i, 0, 0, 5), reg(m, i, 0, 0, 6))
	}
	b.WriteString(trace.String())
	return b.String(), m.Rebalances()
}

// TestDeterminismRebalance holds the parallel engine to the serial event
// engine's bit-identical standard while the busy region migrates across
// shard-rebalance intervals: every worker count x window combination must
// reproduce the serial trace stream, statistics (including the stall
// counters the deferred SkipCycles batching replays), and cycle count
// exactly — and the aggressive windows must actually rebalance, proving
// the re-partition path ran.
func TestDeterminismRebalance(t *testing.T) {
	ref, _ := runMigrating(t, 0, 0) // serial event engine
	configs := []struct {
		workers int
		every   int64
		mustReb bool // aggressive enough that rebalancing must trigger
	}{
		{2, -1, false}, // rebalancing disabled
		{2, 4, true},
		{3, 16, true},
		{4, 8, true},
		{8, 64, false}, // one chip per shard: stays balanced by construction
	}
	for _, c := range configs {
		name := fmt.Sprintf("workers%d/every%d", c.workers, c.every)
		got, rebalances := runMigrating(t, c.workers, c.every)
		if got != ref {
			t.Errorf("%s diverged from the serial engine:\n--- serial ---\n%.2000s\n--- %s ---\n%.2000s",
				name, ref, name, got)
		}
		if c.mustReb && rebalances == 0 {
			t.Errorf("%s: migrating workload never rebalanced", name)
		}
		if !c.mustReb && c.every < 0 && rebalances != 0 {
			t.Errorf("%s: rebalanced %d times with rebalancing disabled", name, rebalances)
		}
	}
}

// TestDeterminismMixedEngines interleaves the naive reference engine with
// the parallel event engine on one machine — every cycle sequence must
// still match a pure event-engine run bit for bit. This pins the StepAll
// cache repair: a forced naive step can lower a chip's wake internally
// (consuming a delivered message) without firing the wake hook, so StepAll
// must re-mark chips due and ingest deliveries into the arrival set, or
// the next parallel step leaves a runnable chip asleep.
func TestDeterminismMixedEngines(t *testing.T) {
	build := func(workers int) (*machine.Machine, *strings.Builder) {
		const nodes = 4
		cfg := machine.DefaultConfig()
		cfg.Dims = noc.Coord{X: nodes, Y: 1, Z: 1}
		cfg.Workers = workers
		m := machine.New(cfg)
		if _, err := rt.Install(m, rt.Options{}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nodes; i++ {
			if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
				t.Fatal(err)
			}
		}
		var trace strings.Builder
		m.SetTrace(func(cycle int64, node int, event, detail string) {
			fmt.Fprintf(&trace, "%d %d %s %s\n", cycle, node, event, detail)
		})
		// Node 0 streams remote stores into the other nodes' home ranges, so
		// deliveries and handler dispatches land on otherwise-idle chips
		// throughout the run.
		loadUser(t, m, 0, 0, 0, `
    movi i1, #4096
    movi i2, #0
    movi i3, #36
loop:
    st [i1], i2
    add i1, i1, #341
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`)
		m.WakeAll()
		return m, &trace
	}
	ref, refTrace := build(0) // pure serial event engine
	mix, mixTrace := build(2) // parallel engine, naive phases interleaved
	defer mix.Close()
	const cycles = 6000
	for i := 0; i < cycles; i++ {
		ref.Step()
		mix.Naive = (i/5)%2 == 1 // flip engines every 5 cycles
		mix.Step()
	}
	mix.Close() // materialize deferred idle bookkeeping
	if refTrace.String() != mixTrace.String() {
		t.Errorf("trace streams diverged between pure and mixed engine runs")
	}
	for n := 0; n < 4; n++ {
		a, b := ref.Chip(n), mix.Chip(n)
		if a.InstsIssued != b.InstsIssued || a.Thread(0, 0).StallCycles != b.Thread(0, 0).StallCycles {
			t.Errorf("node %d stats diverged: insts %d vs %d, stalls %d vs %d",
				n, a.InstsIssued, b.InstsIssued,
				a.Thread(0, 0).StallCycles, b.Thread(0, 0).StallCycles)
		}
	}
	if got, want := reg(mix, 0, 0, 0, 2), reg(ref, 0, 0, 0, 2); got != want {
		t.Errorf("final i2: mixed %d vs pure %d", got, want)
	}
}

// TestStepAfterClosePanics: stepping the parallel engine after Close used
// to deadlock silently on the stopped worker pool; it must panic with a
// clear message instead — whether or not the pool had ever started (a
// Close before the first parallel step must not let the lazy pool path
// resurrect worker goroutines on a closed machine).
func TestStepAfterClosePanics(t *testing.T) {
	for _, stepsBeforeClose := range []int{4, 0} {
		t.Run(fmt.Sprintf("steps%d", stepsBeforeClose), func(t *testing.T) {
			cfg := machine.DefaultConfig()
			cfg.Dims = noc.Coord{X: 4, Y: 1, Z: 1}
			cfg.Workers = 2
			m := machine.New(cfg)
			loadUser(t, m, 0, 0, 0, "movi i1, #1\nhalt")
			for i := 0; i < stepsBeforeClose; i++ {
				m.Step()
			}
			m.Close()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Step after Close did not panic")
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "after Close") {
					t.Fatalf("unexpected panic message: %v", msg)
				}
			}()
			m.Step()
		})
	}
}
