package machine_test

import (
	"fmt"
	"testing"

	"repro/internal/rt"
)

// runWorkload boots a fresh machine, runs a mixed multi-node workload, and
// returns a fingerprint of its observable state.
func runWorkload(t *testing.T) string {
	t.Helper()
	m, _ := newMachine(t, 2, rt.Options{Caching: true})
	loadUser(t, m, 0, 0, 0, `
    movi i1, #4096
    movi i2, #0
    movi i3, #20
loop:
    st [i1], i2
    ld i4, [i1]
    add i5, i5, i4
    add i1, i1, #3
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`)
	loadUser(t, m, 1, 0, 0, `
    movi i1, #64
    movi i2, #0
    movi i3, #30
loop:
    st [i1], i2
    add i1, i1, #9
    add i2, i2, #1
    lt i6, i2, i3
    brt i6, loop
    halt
`)
	cycles, err := m.Run(500000)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("cycles=%d i5=%d insts=%d/%d msgs=%d hops=%d ltlb=%d/%d status=%d/%d",
		cycles, reg(m, 0, 0, 0, 5),
		m.Chip(0).InstsIssued, m.Chip(1).InstsIssued,
		m.Net.Injected, m.Net.TotalHops,
		m.Chip(0).Mem.LTLBFaults, m.Chip(1).Mem.LTLBFaults,
		m.Chip(0).Mem.StatusFaults, m.Chip(1).Mem.StatusFaults)
}

// TestDeterminism: the simulator must be bit-reproducible — identical runs
// produce identical cycle counts and statistics (DESIGN.md: deterministic,
// single-goroutine cycle loop with fixed arbitration order).
func TestDeterminism(t *testing.T) {
	first := runWorkload(t)
	for i := 0; i < 3; i++ {
		if got := runWorkload(t); got != first {
			t.Fatalf("run %d diverged:\n  %s\nvs\n  %s", i+2, got, first)
		}
	}
}
