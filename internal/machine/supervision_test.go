package machine_test

// Tests for the machine-level supervision plumbing: the out-of-band stop
// flag (RequestStop/ClearStop), the cross-goroutine cycle gauge, and the
// concurrent-Close contract — Close racing an in-flight Run must stop
// the run cleanly, never deadlock, never panic, and stay idempotent
// (the msimd session-teardown ordering). See internal/guard for the
// supervisor built on these.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/rt"
)

// spin loads a never-halting loop on node 0.
func spin(t *testing.T, m *machine.Machine) {
	t.Helper()
	loadUser(t, m, 0, 0, 0, `
spin:
    add i1, i1, #1
    br spin
`)
}

// TestRequestStopEndsRun: the stop flag ends a run at a cycle boundary
// with ErrStopped; ClearStop makes the machine runnable again.
func TestRequestStopEndsRun(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	defer m.Close()
	spin(t, m)

	done := make(chan error, 1)
	go func() {
		_, err := m.Run(1 << 40)
		done <- err
	}()
	// Wait until the run demonstrably advances, then stop it.
	for m.CycleGauge() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.RequestStop()
	select {
	case err := <-done:
		if !errors.Is(err, machine.ErrStopped) {
			t.Fatalf("want ErrStopped, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run ignored the stop request")
	}
	if m.Cycle <= 0 {
		t.Fatal("stopped before any progress")
	}
	// Flag is sticky until cleared: a fresh Run must refuse immediately.
	at := m.Cycle
	if _, err := m.Run(1000); !errors.Is(err, machine.ErrStopped) || m.Cycle != at {
		t.Fatalf("raised flag did not stop a fresh run (err=%v, cycle %d->%d)", err, at, m.Cycle)
	}
	m.ClearStop()
	if _, err := m.Run(100); !errors.Is(err, machine.ErrCycleLimit) {
		t.Fatalf("machine not runnable after ClearStop: %v", err)
	}
}

// TestCloseDuringRun: Close called concurrently with an in-flight Run
// stops the run, waits for it, and completes — no deadlock, no panic, no
// race. Afterwards the machine is closed and further Closes are no-ops.
func TestCloseDuringRun(t *testing.T) {
	for _, workers := range []int{0, 3} {
		name := "serial"
		if workers > 0 {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			cfg := machine.DefaultConfig()
			cfg.Workers = workers
			m := machine.New(cfg)
			if _, err := rt.Install(m, rt.Options{}); err != nil {
				t.Fatal(err)
			}
			if err := m.MapNodeRange(0, 4, 0); err != nil {
				t.Fatal(err)
			}
			spin(t, m)

			runErr := make(chan error, 1)
			go func() {
				_, err := m.Run(1 << 40)
				runErr <- err
			}()
			for m.CycleGauge() == 0 {
				time.Sleep(time.Millisecond)
			}

			closed := make(chan struct{})
			go func() {
				m.Close()
				close(closed)
			}()
			select {
			case <-closed:
			case <-time.After(10 * time.Second):
				t.Fatal("Close deadlocked against the in-flight Run")
			}
			if err := <-runErr; !errors.Is(err, machine.ErrStopped) {
				t.Fatalf("in-flight run: want ErrStopped, got %v", err)
			}
			m.Close() // idempotent
		})
	}
}

// TestConcurrentCloses: many simultaneous Closes (with no run in flight)
// are safe.
func TestConcurrentCloses(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Workers = 2
	m := machine.New(cfg)
	if _, err := m.Run(50); err != nil && !errors.Is(err, machine.ErrCycleLimit) {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Close()
		}()
	}
	wg.Wait()
}

// TestCloseThenRun: the historical contract — Run after Close — must
// still hold for the serial engines, and the transient stop Close raises
// must not leak into later runs.
func TestCloseThenRun(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	m.Close()
	loadUser(t, m, 0, 0, 0, `
    movi i1, #41
    add i1, i1, #1
    halt
`)
	if _, err := m.Run(1000); err != nil {
		t.Fatalf("serial run after Close: %v", err)
	}
	if got := reg(m, 0, 0, 0, 1); got != 42 {
		t.Fatalf("i1 = %d, want 42", got)
	}
}
