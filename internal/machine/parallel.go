package machine

// The parallel chip engine: the chip phase of each busy cycle is sharded
// across a persistent pool of worker goroutines with one barrier per cycle.
//
// Chips are independent within a cycle — Chip.Step reads and writes only
// per-chip state plus two shared read-only structures (the GDT and loaded
// programs) and its own node's arrival queues — because the one shared
// *write* path, network injection, goes through the per-chip outbox that
// the machine drains serially after the barrier (see DESIGN.md, "The
// parallel engine"). Idle cycles never reach the pool: Machine.Run
// fast-forwards them, so the barrier cost is paid only on cycles where
// some chip actually works.

import (
	"sync"

	"repro/internal/chip"
)

// chipPool is the persistent worker pool. Each worker owns a fixed,
// contiguous shard of the chip slice; per cycle it receives the cycle
// number on its start channel, steps its shard, and signals the barrier.
type chipPool struct {
	starts   []chan int64
	wg       sync.WaitGroup
	quit     chan struct{}
	stopOnce sync.Once
}

// newChipPool starts min(workers, len(chips)) workers over contiguous
// shards of near-equal size. The goroutines persist until stop.
func newChipPool(chips []*chip.Chip, workers int) *chipPool {
	p := &chipPool{quit: make(chan struct{})}
	n := len(chips)
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		start := make(chan int64, 1)
		p.starts = append(p.starts, start)
		go p.worker(chips[lo:hi], start)
	}
	return p
}

func (p *chipPool) worker(shard []*chip.Chip, start chan int64) {
	for {
		select {
		case now := <-start:
			stepShard(shard, now)
			p.wg.Done()
		case <-p.quit:
			return
		}
	}
}

// stepShard advances each chip of the shard by one cycle: due chips step,
// idle chips replay their per-cycle stall bookkeeping — exactly the
// per-chip dispatch of the serial event engine, on goroutine-private state.
func stepShard(shard []*chip.Chip, now int64) {
	for _, c := range shard {
		if c.NextEvent(now) <= now {
			c.Step(now)
		} else {
			c.SkipCycles(1)
		}
	}
}

// step runs one parallel chip phase: release every worker for cycle now,
// then barrier until all shards finish. On return every chip has advanced
// to now+1 and its outbox/trace buffers hold the cycle's output.
func (p *chipPool) step(now int64) {
	p.wg.Add(len(p.starts))
	for _, start := range p.starts {
		start <- now
	}
	p.wg.Wait()
}

// stop terminates the workers. Idempotent; safe after any number of steps.
func (p *chipPool) stop() {
	p.stopOnce.Do(func() { close(p.quit) })
}
