package machine

// The parallel chip engine: the chip phase of each busy cycle is sharded
// across a persistent pool of worker goroutines with one barrier per cycle.
//
// Chips are independent within a cycle — Chip.Step reads and writes only
// per-chip state plus two shared read-only structures (the GDT and loaded
// programs) and its own node's arrival queues — because the one shared
// *write* path, network injection, goes through the per-chip outbox that
// the machine drains serially after the barrier (see DESIGN.md, "The
// parallel engine").
//
// The pool is *active-set scheduled* (DESIGN.md, "Active-set scheduling"):
// each shard keeps a due-heap over its chips' NextEvent cycles, so a busy
// cycle costs work proportional to the chips that actually act. Idle chips
// are not touched at all — their per-cycle SkipCycles bookkeeping is
// deferred and replayed in one batched call when they next become due (or
// at a sync point). Chips re-enter the due-set through the wake hook
// (chip.SetWakeHook), which the machine's serial phases fire on every
// external wake (message delivery, Touch, LoadProgram). Shards whose whole
// due-set lies in the future are not dispatched at all, and the dispatch
// itself is a sense-reversing barrier on atomics (spin-then-park) instead
// of a channel round trip per worker per cycle. Contiguous shard
// boundaries are re-drawn periodically from observed per-chip step counts
// (dynamic rebalancing), so heterogeneous busy/idle mixes keep the workers
// evenly loaded.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/chip"
)

// WorkerPanic is the panic value the parallel chip phase re-raises on the
// machine goroutine when a worker goroutine's chip step panicked. Worker
// panics are recovered at the shard boundary — the worker still arrives at
// the gather barrier, so the machine never deadlocks on a crashed cycle —
// and the panic value, the worker-side stack, and the offending (node,
// cycle) are carried across so a supervisor (internal/guard) can convert
// the crash into a typed error with full forensics. Without a supervisor
// the re-raised panic crashes the process just as the original would have,
// only with better attribution.
type WorkerPanic struct {
	Node  int   // chip the shard was stepping, -1 if the panic hit between chips
	Cycle int64 // cycle being stepped
	Value any   // the original panic value
	Stack []byte // worker goroutine stack at the point of the panic
}

func (wp *WorkerPanic) Error() string {
	return fmt.Sprintf("chip panic at node %d, cycle %d: %v", wp.Node, wp.Cycle, wp.Value)
}

// CrashSite reports the offending node and cycle (the guard.crashSite
// interface).
func (wp *WorkerPanic) CrashSite() (node int, cycle int64) { return wp.Node, wp.Cycle }

// Dispatch mailbox sentinels. Real dispatches carry the cycle number, which
// is non-negative and strictly increasing, so both sentinels are distinct
// from every dispatch and from each other.
const (
	idleCycle = int64(-1) // mailbox initial value (no dispatch yet)
	quitCycle = int64(-2) // stop request
	// notParked marks "nobody is parked" in the park-generation words
	// (shard.parked, chipPool.mparked). It must differ from every value a
	// waiter can park on: cycles (>= 0) and idleCycle.
	notParked = int64(-3)
)

// Barrier spin budgets before parking. The spin phase keeps the
// worker-to-worker handoff at cache-line latency on busy meshes; the park
// phase keeps an oversubscribed or mostly-idle host from burning cores.
const (
	dispatchSpins = 256
	gatherSpins   = 256
)

// defaultRebalanceEvery is the rebalance-check window (in dispatched busy
// cycles) when Config.RebalanceEvery is zero.
const defaultRebalanceEvery = 1024

// dueEntry is one due-heap element: chip `node` is believed runnable at
// cycle `at`. Entries are compared by (at, node) so that same-cycle pops
// come out in node-index order (which keeps the per-cycle stepped list
// nearly sorted).
type dueEntry struct {
	at   int64
	node int32
}

// shard is one worker's slice of the machine plus its barrier endpoints.
// The worker owns everything here during the chip phase; the machine owns
// it between barriers (wake hooks, rebalancing). The two never overlap: the
// barrier's atomics order every handoff.
type shard struct {
	lo, hi int        // chip index range [lo, hi)
	heap   []dueEntry // min-heap over due chips, lazy-deleted against pool.due
	next   int64      // cached min due cycle of the shard (NoEvent if none)

	// stepped lists the node indices this shard stepped in the current
	// cycle, sorted ascending; the machine drains exactly these chips'
	// outboxes and trace buffers after the barrier.
	stepped []int32

	// Panic containment: stepping is the chip currently being stepped
	// (-1 between chips), and crash records a panic recovered out of this
	// shard's cycle. Both are worker-owned during the chip phase and read
	// by the machine after the barrier, like stepped.
	stepping int32
	crash    *WorkerPanic

	// Dispatch mailbox: the machine stores the cycle to run (or quitCycle),
	// the worker spins on it and parks on wakeCh when the spin budget runs
	// out. parked holds the mailbox value the worker parked on (notParked
	// when it is not parked): the machine wakes a worker by compare-and-
	// swapping the *previous* mailbox value, so it can never be fooled by a
	// worker that caught the new value through the spin path, completed the
	// whole cycle, and parked again before the machine's wake check ran.
	slot   atomic.Int64
	parked atomic.Int64
	wakeCh chan struct{}
}

// chipPool is the persistent worker pool. Worker w permanently owns
// shards[w]; rebalancing moves only the [lo, hi) boundaries.
type chipPool struct {
	chips  []*chip.Chip
	shards []shard

	// due[i] is the pool's belief of chip i's next event cycle. It is never
	// later than the chip's true wake: it is read back from the chip after
	// every pool step of that chip, and lowered by the wake hook on every
	// external wake. Stale-early values merely cause a spurious due-heap
	// pop. shardOf[i] locates chip i's current shard for the hook.
	due     []int64
	shardOf []int32

	// work counts steps per chip since the last rebalance window, the
	// weight input for re-drawing shard boundaries. Each worker writes only
	// its own shard's entries.
	work       []uint32
	windowLeft int64 // dispatched cycles until the next rebalance check
	every      int64 // rebalance window length (<= 0: rebalancing disabled)
	rebalances int64

	// Gather-side barrier state. remaining counts down the workers
	// dispatched this cycle; the worker that takes it to zero wakes the
	// machine if (and only if) the machine parked for that same cycle:
	// mparked holds the cycle the machine is parked on (notParked when it
	// is not), and the waker claims it by compare-and-swap, so a worker
	// finishing late can never complete a *later* cycle's barrier.
	remaining atomic.Int32
	mparked   atomic.Int64
	done      chan struct{}

	stopped  atomic.Bool
	stopOnce sync.Once

	// probe is the machine's fault-injection hook (Machine.SetFaultProbe),
	// called on the worker goroutine immediately before each chip step.
	probe func(node int, cycle int64)

	// crashed poisons the pool after a worker panic was re-raised: the
	// shard due-heaps may have lost entries for the aborted cycle, so a
	// further step would silently violate the due-cache invariant instead
	// of failing. Stepping a crashed pool re-raises the original panic.
	crashed *WorkerPanic
}

// newChipPool starts min(workers, len(chips)) workers over contiguous
// shards of near-equal size and installs the due-set wake hooks. The
// goroutines persist until stop. rebalanceEvery <= -1 disables rebalancing;
// 0 selects the default window.
func newChipPool(chips []*chip.Chip, workers int, rebalanceEvery int64) *chipPool {
	n := len(chips)
	if workers > n {
		workers = n
	}
	if rebalanceEvery == 0 {
		rebalanceEvery = defaultRebalanceEvery
	}
	p := &chipPool{
		chips:      chips,
		shards:     make([]shard, workers),
		due:        make([]int64, n),
		shardOf:    make([]int32, n),
		work:       make([]uint32, n),
		every:      rebalanceEvery,
		windowLeft: rebalanceEvery,
		done:       make(chan struct{}, 1),
	}
	p.mparked.Store(notParked)
	for i, c := range chips {
		p.due[i] = c.NextEvent(c.Cycle)
		i := i
		c.SetWakeHook(func(at int64) { p.wake(i, at) })
	}
	for w := range p.shards {
		s := &p.shards[w]
		s.lo, s.hi = w*n/workers, (w+1)*n/workers
		s.wakeCh = make(chan struct{}, 1)
		s.slot.Store(idleCycle)
		s.parked.Store(notParked)
		p.rebuildShard(s, int32(w))
		go p.worker(w) //mlint:allow gocheck the supervised shard worker pool; workers park at the cycle barrier and panics are contained by guard
	}
	return p
}

// rebuildShard recomputes shard w's due-heap, cached next, and the chips'
// shardOf entries from the current [lo, hi) boundaries and due cache.
func (p *chipPool) rebuildShard(s *shard, w int32) {
	s.heap = s.heap[:0]
	for i := s.lo; i < s.hi; i++ {
		p.shardOf[i] = w
		if p.due[i] != NoEvent {
			s.push(dueEntry{p.due[i], int32(i)})
		}
	}
	if len(s.heap) > 0 {
		s.next = s.heap[0].at
	} else {
		s.next = NoEvent
	}
}

// wake is the chip wake hook: chip node became runnable at cycle at. It
// runs only on the machine goroutine between chip phases (drain, arrival
// wake-ups, Run entry, program loads), when every worker is parked at the
// barrier, so it may touch shard heaps directly.
func (p *chipPool) wake(node int, at int64) {
	if at >= p.due[node] {
		return
	}
	p.due[node] = at
	s := &p.shards[p.shardOf[node]]
	s.push(dueEntry{at, int32(node)})
	if at < s.next {
		s.next = at
	}
}

// wakeAllAt marks every chip as possibly due at cycle at (used by StepAll,
// whose forced chip steps can lower wakes without firing the hooks). Early
// entries are always safe: a spurious pop just re-enqueues the chip at its
// true wake.
func (p *chipPool) wakeAllAt(at int64) {
	for i := range p.chips {
		p.wake(i, at)
	}
}

// nextEvent reports the earliest cycle >= now at which any chip can act,
// NoEvent if all chips are permanently idle — the shard-aggregated form of
// scanning every chip, O(shards) instead of O(nodes).
func (p *chipPool) nextEvent(now int64) int64 {
	next := NoEvent
	for i := range p.shards {
		if p.shards[i].next < next {
			next = p.shards[i].next
		}
	}
	if next < now {
		return now
	}
	return next
}

// step runs one parallel chip phase for cycle now: dispatch every shard
// with due work, then barrier until they finish. Shards that are wholly
// idle this cycle are not dispatched (and their chips are not touched —
// deferred SkipCycles catch-up replays the idle window when each chip next
// runs). On return the stepped chips have advanced to now+1 and their
// outbox/trace buffers hold the cycle's output.
func (p *chipPool) step(now int64) {
	if p.stopped.Load() {
		panic("machine: parallel chip phase stepped after Close (the worker pool is stopped; do not call Step after Machine.Close)")
	}
	if p.crashed != nil {
		panic(p.crashed)
	}
	dispatched := int32(0)
	for i := range p.shards {
		if p.shards[i].next <= now {
			dispatched++
		}
	}
	if dispatched == 0 {
		for i := range p.shards {
			p.shards[i].stepped = p.shards[i].stepped[:0]
		}
		return
	}
	p.remaining.Store(dispatched)
	for i := range p.shards {
		s := &p.shards[i]
		if s.next <= now {
			p.dispatch(s, now)
		} else {
			s.stepped = s.stepped[:0]
		}
	}
	p.awaitGather(now)
	// Re-raise any worker panic on the machine goroutine, after the
	// barrier so every worker is parked and the machine is the only
	// goroutine touching simulation state (a supervisor that recovers the
	// panic can therefore safely snapshot it). With several same-cycle
	// crashes the lowest node wins, so the raised panic is deterministic.
	var crash *WorkerPanic
	for i := range p.shards {
		if c := p.shards[i].crash; c != nil && (crash == nil || c.Node < crash.Node) {
			crash = c
		}
	}
	if crash != nil {
		p.crashed = crash
		panic(crash)
	}
	p.maybeRebalance()
}

// dispatch releases one worker for cycle now (or quitCycle): publish the
// mailbox, then wake the worker iff it is parked on the value the mailbox
// held before — claiming the park by compare-and-swap on that generation.
// A plain boolean here is wrong: the worker can catch the new value
// through its spin loop, run the entire cycle, and park *again* before
// this check runs, and a boolean wake would then deliver a token for a
// dispatch the worker already completed (a phantom wake-up one cycle
// later). The generation CAS fails in that interleaving, because the
// worker is parked on now, not on prev.
func (p *chipPool) dispatch(s *shard, now int64) {
	prev := s.slot.Load()
	s.slot.Store(now)
	if s.parked.CompareAndSwap(prev, notParked) {
		s.wakeCh <- struct{}{}
	}
}

// await blocks the shard's worker until a dispatch newer than last
// arrives: spin on the mailbox, then park on the wake channel. The park
// generation (the value being waited past) is advertised before the final
// mailbox recheck, mirroring dispatch, so exactly one of the two sides
// completes the handshake and a wake token can never outlive its cycle.
func (s *shard) await(last int64) int64 {
	for i := 0; i < dispatchSpins; i++ {
		if v := s.slot.Load(); v != last {
			return v
		}
		runtime.Gosched()
	}
	s.parked.Store(last)
	if v := s.slot.Load(); v != last {
		if !s.parked.CompareAndSwap(last, notParked) {
			// The dispatcher claimed the park first and committed to a
			// wake: consume the token so it cannot leak into a later cycle.
			<-s.wakeCh
		}
		return v
	}
	<-s.wakeCh
	return s.slot.Load()
}

// worker is the per-shard goroutine: await a dispatch, run the shard,
// arrive at the gather barrier; quit on quitCycle. The last arriver of
// cycle now wakes the machine iff the machine parked *for cycle now* — the
// compare-and-swap on the parked generation makes a late arrival from an
// earlier cycle harmless.
func (p *chipPool) worker(w int) {
	s := &p.shards[w]
	last := idleCycle
	for {
		now := s.await(last)
		if now == quitCycle {
			return
		}
		p.runShardContained(s, now)
		if p.remaining.Add(-1) == 0 && p.mparked.CompareAndSwap(now, notParked) {
			p.done <- struct{}{}
		}
		last = now
	}
}

// runShardContained is runShard with panic containment: a panic out of a
// chip step (or an injected fault probe) is recovered here, on the worker
// goroutine where the stack is still deep, and recorded on the shard; the
// worker then arrives at the gather barrier normally so the machine
// goroutine is never left waiting on a crashed cycle. step re-raises the
// recorded panic as a *WorkerPanic after the barrier.
func (p *chipPool) runShardContained(s *shard, now int64) {
	defer func() {
		if v := recover(); v != nil {
			if wp, ok := v.(*WorkerPanic); ok {
				s.crash = wp
				return
			}
			s.crash = &WorkerPanic{Node: int(s.stepping), Cycle: now, Value: v, Stack: debug.Stack()}
		}
	}()
	s.crash = nil
	s.stepping = -1
	p.runShard(s, now)
	s.stepping = -1
}

// awaitGather blocks the machine until every worker dispatched for cycle
// now has arrived, with the same spin-then-park protocol as the workers.
func (p *chipPool) awaitGather(now int64) {
	for i := 0; i < gatherSpins; i++ {
		if p.remaining.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	p.mparked.Store(now)
	if p.remaining.Load() == 0 {
		if !p.mparked.CompareAndSwap(now, notParked) {
			// The last worker claimed the park: consume its token so it
			// cannot leak into a later cycle's barrier.
			<-p.done
		}
		return
	}
	<-p.done
}

// runShard advances the shard's due chips through cycle now: pop every
// due-heap entry at or before now, batch-replay the chip's deferred idle
// cycles, step it if it is in fact due, and re-enter it with its new
// NextEvent. Chips whose entries lie beyond now are never touched — the
// active-set property. Stale heap entries (superseded by a lower due value)
// are discarded lazily.
func (p *chipPool) runShard(s *shard, now int64) {
	s.stepped = s.stepped[:0]
	for len(s.heap) > 0 && s.heap[0].at <= now {
		e := s.pop()
		if e.at != p.due[e.node] {
			continue // stale
		}
		c := p.chips[e.node]
		s.stepping = e.node
		if d := now - c.Cycle; d > 0 {
			c.SkipCycles(d)
		}
		if c.NextEvent(now) <= now {
			if p.probe != nil {
				p.probe(int(e.node), now)
			}
			c.Step(now)
			p.work[e.node]++
			s.stepped = append(s.stepped, e.node)
			p.requeue(s, e.node, c.NextEvent(now+1))
		} else {
			// Spurious wake (the cached due cycle was early): re-enter the
			// chip at its true wake.
			p.requeue(s, e.node, c.NextEvent(now))
		}
	}
	for len(s.heap) > 0 && s.heap[0].at != p.due[s.heap[0].node] {
		s.pop()
	}
	if len(s.heap) > 0 {
		s.next = s.heap[0].at
	} else {
		s.next = NoEvent
	}
	// Pops at the same cycle come out in node order, so the list is usually
	// already sorted and this is a cheap linear pass.
	slices.Sort(s.stepped)
}

// requeue records chip node's next event and re-enters it into the
// due-heap. NoEvent chips leave the heap entirely: only a wake hook can
// bring them back.
func (p *chipPool) requeue(s *shard, node int32, at int64) {
	p.due[node] = at
	if at != NoEvent {
		s.push(dueEntry{at, node})
	}
}

// drainOutput flushes the cycle's output of exactly the chips that stepped,
// in global node-index order (shards are contiguous and ascending, and each
// stepped list is sorted). Chips that did not step buffered nothing, so
// this is bit-identical to draining every chip.
func (p *chipPool) drainOutput(now int64) {
	for i := range p.shards {
		for _, node := range p.shards[i].stepped {
			c := p.chips[node]
			c.FlushTrace()
			c.FlushNet(now)
		}
	}
}

// sync catches every chip up to cycle now, materializing the deferred idle
// bookkeeping (SkipCycles) the active-set scheduler batches. The machine
// calls it before any serial chip phase, before Close, and when Run
// returns, so external observers always see the same per-chip cycle counts
// and stall statistics the serial engines produce.
func (p *chipPool) sync(now int64) {
	for _, c := range p.chips {
		if d := now - c.Cycle; d > 0 {
			c.SkipCycles(d)
		}
	}
}

// maybeRebalance re-draws shard boundaries when the observed per-shard work
// of the last window is imbalanced. It runs on the machine goroutine right
// after the gather barrier, so no worker is active.
func (p *chipPool) maybeRebalance() {
	if p.every <= 0 || len(p.shards) < 2 {
		return
	}
	p.windowLeft--
	if p.windowLeft > 0 {
		return
	}
	p.windowLeft = p.every

	var total, maxShard uint64
	for i := range p.shards {
		var sum uint64
		for n := p.shards[i].lo; n < p.shards[i].hi; n++ {
			sum += uint64(p.work[n])
		}
		total += sum
		if sum > maxShard {
			maxShard = sum
		}
	}
	if total == 0 || maxShard*2*uint64(len(p.shards)) <= total*3 {
		// Balanced enough (max <= 1.5x the mean): keep the boundaries.
		clear(p.work)
		return
	}
	p.rebalance()
	clear(p.work)
	p.rebalances++
}

// rebalance re-partitions the chips into contiguous shards of near-equal
// observed weight (steps in the last window, plus one so idle chips spread
// evenly), then rebuilds the per-shard due-heaps. Only which worker steps
// which chip changes; the drain order and every simulated outcome are
// unaffected (see DESIGN.md, "Active-set scheduling").
func (p *chipPool) rebalance() {
	n := len(p.chips)
	nsh := len(p.shards)
	var totalW uint64
	for _, w := range p.work {
		totalW += uint64(w) + 1
	}
	cut := 0
	var acc uint64
	for k := 0; k < nsh; k++ {
		s := &p.shards[k]
		s.lo = cut
		if k == nsh-1 {
			s.hi = n
		} else {
			// Leave at least one chip for each remaining shard, and stop at
			// the prefix-weight target for shards 0..k.
			maxHi := n - (nsh - 1 - k)
			target := totalW * uint64(k+1) / uint64(nsh)
			hi := cut + 1
			acc += uint64(p.work[cut]) + 1
			for hi < maxHi && acc < target {
				acc += uint64(p.work[hi]) + 1
				hi++
			}
			s.hi = hi
		}
		cut = s.hi
		p.rebuildShard(s, int32(k))
	}
}

// Rebalances reports how many times the pool has re-drawn its shard
// boundaries (for tests and diagnostics).
func (p *chipPool) Rebalances() int64 { return p.rebalances }

// stop terminates the workers. Idempotent; safe after any number of steps.
// A worker parked at the dispatch barrier is woken and exits; stepping the
// pool after stop panics (see step).
func (p *chipPool) stop() {
	p.stopOnce.Do(func() {
		p.stopped.Store(true)
		for i := range p.shards {
			p.dispatch(&p.shards[i], quitCycle)
		}
	})
}

// push/pop implement the due-heap (a plain slice binary min-heap ordered by
// (at, node); no container/heap, so no interface boxing on the hot path).
func (s *shard) push(e dueEntry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	s.heap = h
}

func (s *shard) pop() dueEntry {
	h := s.heap
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	if len(h) > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			if l >= len(h) {
				break
			}
			child := l
			if r < len(h) && h[r].less(h[l]) {
				child = r
			}
			if !h[child].less(last) {
				break
			}
			h[i] = h[child]
			i = child
		}
		h[i] = last
	}
	s.heap = h
	return top
}

func (e dueEntry) less(o dueEntry) bool {
	return e.at < o.at || (e.at == o.at && e.node < o.node)
}
