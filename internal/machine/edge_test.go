package machine_test

import (
	"strings"
	"testing"

	"repro/internal/gtlb"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rt"
)

func TestMapNodeRangeRoundsToPowerOfTwo(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	// 3 pages must round up to a 4-page group.
	if err := m.MapNodeRange(0, 3, 0); err != nil {
		t.Fatal(err)
	}
	e, err := m.GDT.Lookup(3 * gtlb.GTLBPageWords)
	if err != nil {
		t.Fatalf("page 3 not covered after rounding: %v", err)
	}
	if e.GroupPages != 4 {
		t.Errorf("group pages = %d, want 4", e.GroupPages)
	}
}

func TestMapNodeRangeOverlapRejected(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	if err := m.MapNodeRange(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.MapNodeRange(2*gtlb.GTLBPageWords, 4, 1); err == nil {
		t.Error("overlapping page group accepted")
	}
}

func TestRunTimeoutReportsError(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	loadUser(t, m, 0, 0, 0, "loop: br loop")
	_, err := m.Run(500)
	if err == nil || !strings.Contains(err.Error(), "no completion") {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestRunUntilTimeout(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	_, err := m.RunUntil(func() bool { return false }, 100)
	if err == nil {
		t.Error("RunUntil with false predicate should time out")
	}
}

func TestFaultErrorIdentifiesThread(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	loadUser(t, m, 0, 2, 3, "movi i1, #1\nmovi i2, #0\ndiv i3, i1, i2\nhalt")
	_, err := m.Run(10000)
	if err == nil {
		t.Fatal("expected fault error")
	}
	if !strings.Contains(err.Error(), "vthread 2") || !strings.Contains(err.Error(), "cluster 3") {
		t.Errorf("fault error lacks thread identity: %v", err)
	}
}

func TestMapLocalAllocatesDistinctFrames(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	p1 := m.MapLocal(0, 10, mem.BSReadWrite, true)
	p2 := m.MapLocal(0, 11, mem.BSReadWrite, true)
	if p1 == p2 {
		t.Error("MapLocal reused a physical page")
	}
	// Writes through the two mappings must not alias.
	if err := m.Poke(0, 10*512, 111); err != nil {
		t.Fatal(err)
	}
	if err := m.Poke(0, 11*512, 222); err != nil {
		t.Fatal(err)
	}
	w1, _ := m.Peek(0, 10*512)
	w2, _ := m.Peek(0, 11*512)
	if w1 != 111 || w2 != 222 {
		t.Errorf("aliasing: %d/%d", w1, w2)
	}
}

func TestPokeUnmappedFails(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	if err := m.Poke(0, 999*512, 1); err == nil {
		t.Error("Poke of unmapped address succeeded")
	}
}

func TestRuntimeAllocatorLayoutDisjoint(t *testing.T) {
	// The boot layout must keep MapLocal frames, the LPT, scratch, the
	// allocator counter, and runtime-allocated pages disjoint.
	cfg := machine.DefaultConfig().Chip.Mem
	lptStart := cfg.LPT.Base
	lptEnd := lptStart + cfg.LPT.Entries*mem.PTEWords
	scratch := machine.ScratchBase(cfg)
	ctr := machine.AllocCounterAddr(cfg)
	allocStart := machine.AllocBasePPN(cfg) * mem.PageWords

	if machine.FirstMapPPN*mem.PageWords >= lptStart {
		t.Error("MapLocal frames start inside the LPT")
	}
	if scratch < lptEnd {
		t.Error("scratch overlaps the LPT")
	}
	if ctr < scratch {
		t.Error("allocator counter below scratch")
	}
	if allocStart <= ctr {
		t.Error("runtime pages overlap the allocator counter")
	}
	if allocStart >= cfg.SDRAM.Words {
		t.Error("runtime pages start beyond physical memory")
	}
}

func TestUserDoneIgnoresEventThreads(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	// No user threads loaded: the machine is immediately done even though
	// the event V-Thread handlers run forever.
	if !m.UserDone() {
		t.Error("machine with only event handlers should be user-done")
	}
	if _, err := m.Run(1000); err != nil {
		t.Errorf("empty run: %v", err)
	}
}
