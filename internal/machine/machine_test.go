package machine_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cluster"
	"repro/internal/gp"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/rt"
)

// newMachine builds an N-node x-axis machine with the runtime installed and
// the first 4 GTLB pages of the address space homed per node: node i owns
// virtual words [i*4096, (i+1)*4096).
func newMachine(t *testing.T, nodes int, opts rt.Options) (*machine.Machine, *rt.Runtime) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Dims = noc.Coord{X: nodes, Y: 1, Z: 1}
	m := machine.New(cfg)
	r, err := rt.Install(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
			t.Fatal(err)
		}
	}
	return m, r
}

func loadUser(t *testing.T, m *machine.Machine, node, vthread, cl int, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble("user", src)
	if err != nil {
		t.Fatal(err)
	}
	// User test programs run privileged so they can use raw addresses;
	// protection-specific tests build pointers explicitly.
	m.Chip(node).LoadProgram(vthread, cl, p, true)
	return p
}

func run(t *testing.T, m *machine.Machine, max int64) int64 {
	t.Helper()
	n, err := m.Run(max)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return n
}

func reg(m *machine.Machine, node, vt, cl, idx int) uint64 {
	return m.Chip(node).Thread(vt, cl).Ints.Get(idx).Bits
}

func TestBasicALU(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	loadUser(t, m, 0, 0, 0, `
    movi i1, #6
    movi i2, #7
    mul i3, i1, i2
    sub i4, i3, #2
    halt
`)
	run(t, m, 1000)
	if got := reg(m, 0, 0, 0, 3); got != 42 {
		t.Errorf("i3 = %d, want 42", got)
	}
	if got := reg(m, 0, 0, 0, 4); got != 40 {
		t.Errorf("i4 = %d, want 40", got)
	}
}

func TestLoadStoreLocalPrimed(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	m.MapLocal(0, 0, mem.BSReadWrite, true)
	if err := m.Poke(0, 5, 1234); err != nil {
		t.Fatal(err)
	}
	loadUser(t, m, 0, 0, 0, `
    movi i1, #5
    ld i2, [i1]
    add i3, i2, #1
    st [i1+1], i3
    halt
`)
	run(t, m, 1000)
	if got := reg(m, 0, 0, 0, 2); got != 1234 {
		t.Errorf("loaded %d, want 1234", got)
	}
	w, err := m.Peek(0, 6)
	if err != nil || w != 1235 {
		t.Errorf("stored %d (%v), want 1235", w, err)
	}
}

func TestLoadHitLatencyIsThreeCycles(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	m.MapLocal(0, 0, mem.BSReadWrite, true)
	// Warm the line, then measure a dependent-load sequence.
	loadUser(t, m, 0, 0, 0, `
    movi i1, #5
    ld i2, [i1]        ; cold miss, warms line
    mov i3, cyc
    ld i4, [i1]        ; hit
    add i5, i4, #0     ; dependent: issues when i4 full
    mov i6, cyc
    halt
`)
	run(t, m, 1000)
	start := reg(m, 0, 0, 0, 3)
	end := reg(m, 0, 0, 0, 6)
	// From the cycle after "mov i3,cyc" (load issues) to the dependent add
	// completing: ld at start+1, data at start+1+3, add at start+1+3,
	// mov i6 at start+1+3+1.
	if end-start != 5 {
		t.Errorf("hit-load dependency chain took %d cycles, want 5 (3-cycle load)", end-start)
	}
}

func TestLTLBMissHandledBySoftware(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	// Page in LPT only: first access takes an LTLB miss completed by the
	// cluster-1 handler.
	m.MapLocal(0, 0, mem.BSReadWrite, false)
	if err := m.Poke(0, 9, 777); err != nil {
		t.Fatal(err)
	}
	loadUser(t, m, 0, 0, 0, `
    movi i1, #9
    ld i2, [i1]
    halt
`)
	run(t, m, 5000)
	if got := reg(m, 0, 0, 0, 2); got != 777 {
		t.Errorf("loaded %d, want 777", got)
	}
	if m.Chip(0).Mem.LTLBFaults == 0 {
		t.Error("expected an LTLB fault")
	}
}

func TestFirstTouchAllocatesHomePage(t *testing.T) {
	// A store to an unmapped home address must allocate a page via the
	// LTLB-miss handler's first-touch path.
	m, _ := newMachine(t, 1, rt.Options{})
	loadUser(t, m, 0, 0, 0, `
    movi i1, #100
    movi i2, #55
    st [i1], i2
    ld i3, [i1]
    halt
`)
	run(t, m, 10000)
	if got := reg(m, 0, 0, 0, 3); got != 55 {
		t.Errorf("read back %d, want 55", got)
	}
}

func TestRemoteWriteNonCached(t *testing.T) {
	m, _ := newMachine(t, 2, rt.Options{})
	// Node 1 homes [4096, 8192); stores from node 0 travel as messages.
	loadUser(t, m, 0, 0, 0, `
    movi i1, #4200
    movi i2, #4242
    st [i1], i2
    halt
`)
	if _, err := m.RunUntil(func() bool {
		w, err := m.Peek(1, 4200)
		return err == nil && w == 4242
	}, 20000); err != nil {
		t.Fatalf("remote write never landed: %v", err)
	}
}

func TestRemoteReadNonCached(t *testing.T) {
	m, _ := newMachine(t, 2, rt.Options{})
	// Stage the data at its home (node 1) by first-touching there.
	loadUser(t, m, 1, 0, 0, `
    movi i1, #4300
    movi i2, #31415
    st [i1], i2
    halt
`)
	run(t, m, 20000)

	loadUser(t, m, 0, 0, 0, `
    movi i1, #4300
    ld i2, [i1]
    add i3, i2, #1
    halt
`)
	run(t, m, 20000)
	if got := reg(m, 0, 0, 0, 3); got != 31416 {
		t.Errorf("remote read+1 = %d, want 31416", got)
	}
}

func TestRemoteAccessCached(t *testing.T) {
	m, _ := newMachine(t, 2, rt.Options{Caching: true})
	loadUser(t, m, 1, 0, 0, `
    movi i1, #4096
    movi i2, #111
    st [i1], i2
    movi i3, #222
    st [i1+1], i3
    halt
`)
	run(t, m, 20000)

	loadUser(t, m, 0, 0, 0, `
    movi i1, #4096
    ld i2, [i1]        ; first touch: shadow page + block fetch
    ld i3, [i1+1]      ; same block: now local
    add i4, i2, i3
    halt
`)
	run(t, m, 50000)
	if got := reg(m, 0, 0, 0, 4); got != 333 {
		t.Errorf("cached remote sum = %d, want 333", got)
	}
	// The block must now be resident in node 0's local DRAM.
	if st := m.Chip(0).Mem.BlockStatusOf(4096); st != mem.BSReadWrite && st != mem.BSDirty {
		t.Errorf("block status after fetch = %v, want READ/WRITE or DIRTY", st)
	}
}

func TestVThreadInterleaving(t *testing.T) {
	// Two V-Threads on the same cluster interleave cycle-by-cycle; both
	// must make progress and the total issue count must match.
	m, _ := newMachine(t, 1, rt.Options{})
	src := `
    movi i1, #0
    movi i2, #100
loop:
    add i1, i1, #1
    lt  i3, i1, i2
    brt i3, loop
    halt
`
	loadUser(t, m, 0, 0, 0, src)
	loadUser(t, m, 0, 1, 0, src)
	run(t, m, 5000)
	if got := reg(m, 0, 0, 0, 1); got != 100 {
		t.Errorf("vthread 0 count = %d, want 100", got)
	}
	if got := reg(m, 0, 1, 0, 1); got != 100 {
		t.Errorf("vthread 1 count = %d, want 100", got)
	}
}

func TestHThreadRegisterTransferAndGCC(t *testing.T) {
	// Cluster 0 computes and ships a value to cluster 1 through the
	// C-Switch; cluster 1 waits on the scoreboard (Figure 5(b) pattern),
	// then signals completion back via a global CC register.
	m, _ := newMachine(t, 1, rt.Options{})
	h0 := `
    movi i1, #40
    add @1.i5, i1, #2  ; write cluster 1's i5
    brf gcc1, done     ; wait for gcc1 (set by H-Thread 1)
done:
    halt
`
	h1 := `
    empty i5           ; prepare to receive
    add i6, i5, #0     ; stalls until the transfer arrives
    movi i7, #1
    eq gcc1, i7, i7    ; broadcast completion
    halt
`
	loadUser(t, m, 0, 0, 0, h0)
	loadUser(t, m, 0, 0, 1, h1)
	run(t, m, 5000)
	if got := reg(m, 0, 0, 1, 6); got != 42 {
		t.Errorf("transferred value = %d, want 42", got)
	}
}

func TestSyncBitsProducerConsumer(t *testing.T) {
	// Producer on V-Thread 0 stores with post=full; consumer on V-Thread 1
	// spins via sync-fault retry until the word is full.
	m, _ := newMachine(t, 1, rt.Options{})
	m.MapLocal(0, 0, mem.BSReadWrite, true)
	loadUser(t, m, 0, 1, 0, `
    movi i1, #50
    ldsy.fe i2, [i1]   ; consume when full, leave empty
    halt
`)
	loadUser(t, m, 0, 0, 0, `
    movi i1, #0
    movi i2, #400
spin:
    add i1, i1, #1     ; delay so the consumer faults first
    lt  i3, i1, i2
    brt i3, spin
    movi i4, #50
    movi i5, #888
    stsy.af [i4], i5   ; store and set full
    halt
`)
	run(t, m, 50000)
	if got := reg(m, 0, 1, 0, 2); got != 888 {
		t.Errorf("consumer got %d, want 888", got)
	}
	if b, _ := m.Chip(0).Mem.SyncVirt(50); b {
		t.Error("sync bit should be empty after ldsy.fe")
	}
	if m.Chip(0).Mem.SyncFaults == 0 {
		t.Error("expected sync faults from the early consumer")
	}
}

func TestUserProtectionFaults(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	m.MapLocal(0, 0, mem.BSReadWrite, true)
	p, err := asm.Assemble("user", `
    movi i1, #5
    ld i2, [i1]        ; untagged address from user mode: protection fault
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m.Chip(0).LoadProgram(0, 0, p, false) // unprivileged
	if _, err := m.Run(1000); err == nil {
		t.Fatal("expected a fault error")
	}
	th := m.Chip(0).Thread(0, 0)
	if th.Status != cluster.ThreadFaulted {
		t.Errorf("thread status = %v, want faulted", th.Status)
	}
	// The exception V-Thread's handler drains the queue into the log.
	if got := rt.ExceptionCount(m, 0); got != 1 {
		t.Errorf("exception log count = %d, want 1", got)
	}
	logBase := rt.ExceptionLogAddr(m.Cfg.Chip.Mem)
	vt, _ := m.Chip(0).Mem.SDRAM.Read(logBase + 1)
	cl, _ := m.Chip(0).Mem.SDRAM.Read(logBase + 2)
	if vt != 0 || cl != 0 {
		t.Errorf("exception log entry = vthread %d cluster %d, want 0/0", vt, cl)
	}
}

func TestGuardedPointerUserAccess(t *testing.T) {
	// A privileged loader thread forges a pointer into cluster 1's
	// register file; the unprivileged thread there uses it legally, then
	// oversteps the segment and faults.
	m, _ := newMachine(t, 1, rt.Options{})
	m.MapLocal(0, 0, mem.BSReadWrite, true)
	if err := m.Poke(0, 64, 2024); err != nil {
		t.Fatal(err)
	}
	loader := `
    movi i1, #64
    setptr i2, i1, #0x33  ; perms=rw(3), segLen=3 (8-word segment)
    mov @1.i5, i2
    halt
`
	user := `
    empty i5
    ld i6, [i5]        ; legal: word 64, inside [64,72)
    ld i7, [i5+7]      ; legal: word 71
    ld i8, [i5+8]      ; segment overflow: fault
    halt
`
	loadUser(t, m, 0, 0, 0, loader) // privileged
	p, err := asm.Assemble("user", user)
	if err != nil {
		t.Fatal(err)
	}
	m.Chip(0).LoadProgram(0, 1, p, false)
	if _, err := m.Run(5000); err == nil {
		t.Fatal("expected segment-overflow fault")
	}
	th := m.Chip(0).Thread(0, 1)
	if th.Status != cluster.ThreadFaulted {
		t.Fatalf("thread = %v, want faulted", th.Status)
	}
	if got := th.Ints.Get(6).Bits; got != 2024 {
		t.Errorf("legal load got %d, want 2024", got)
	}
}

func TestUserSendRequiresValidDIP(t *testing.T) {
	m, r := newMachine(t, 2, rt.Options{})
	m.MapLocal(0, 0, mem.BSReadWrite, true)
	// A user thread sending with an unregistered DIP must fault before the
	// message leaves.
	src := `
    movi i1, #4096
    setptr i2, i1, #0x63  ; rw pointer, 64-word segment... segLen=6
    movi i3, #9999        ; illegal DIP
    movi i8, #1
    send i2, i3, i8, #1
    halt
`
	p, err := asm.Assemble("user", src)
	if err != nil {
		t.Fatal(err)
	}
	m.Chip(0).LoadProgram(0, 0, p, false)
	if _, err := m.Run(5000); err == nil {
		t.Fatal("expected illegal-DIP fault")
	}
	_ = r
}

func TestUserLevelMessagePassing(t *testing.T) {
	// Figure 7: a user thread performs a remote store with a single SEND;
	// the destination's message handler executes the store. The system
	// hands the user a guarded pointer to the remote region at startup.
	m, r := newMachine(t, 2, rt.Options{})
	src := `
    movi i3, #DIP
    movi i8, #777          ; body: the stored word
    send i2, i3, i8, #1    ; i2 holds the system-provided pointer
    halt
`
	p, err := asm.Assemble("user", ".equ DIP "+itoa(r.DIPRemoteWrite)+"\n"+src)
	if err != nil {
		t.Fatal(err)
	}
	m.Chip(0).LoadProgram(0, 0, p, false)
	m.Chip(0).Thread(0, 0).Ints.Set(2, isa.Word{
		Bits: uint64(gp.MustMake(gp.PermRW, 9, 4500)),
		Ptr:  true,
	})
	if _, err := m.RunUntil(func() bool {
		w, err := m.Peek(1, 4500)
		return err == nil && w == 777
	}, 20000); err != nil {
		t.Fatalf("user-level remote store failed: %v", err)
	}
}

func TestThrottlingBlocksSends(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Chip.SendCredits = 2
	cfg.Chip.MsgQueueCap = 8
	m := machine.New(cfg)
	r, err := rt.Install(m, rt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.MapNodeRange(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.MapNodeRange(4096, 4, 1); err != nil {
		t.Fatal(err)
	}
	// Flood node 1 with remote stores; with 2 credits the sender must
	// stall on SEND until acks return.
	src := `
    movi i1, #4096
    movi i3, #DIP
    movi i8, #1
    movi i5, #0
    movi i6, #32
loop:
    send i1, i3, i8, #1
    add i5, i5, #1
    lt  i7, i5, i6
    brt i7, loop
    halt
`
	p, aerr := asm.Assemble("flood", ".equ DIP "+itoa(r.DIPRemoteWrite)+"\n"+src)
	if aerr != nil {
		t.Fatal(aerr)
	}
	m.Chip(0).LoadProgram(0, 0, p, true)
	if _, err := m.Run(200000); err != nil {
		t.Fatal(err)
	}
	if m.Chip(0).SendsBlocked == 0 {
		t.Error("expected SEND stalls under credit exhaustion")
	}
	if m.Chip(0).Credits() != 2 {
		t.Errorf("credits = %d, want restored to 2", m.Chip(0).Credits())
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
