package machine_test

// Shard-frame round trip: the distributed engine ships per-range chip
// state between processes as partial-machine frames (EncodeShard /
// AdoptShard). Adopting the frames of a further-advanced machine into a
// stale peer must reproduce the donor's chip state bit for bit (proved by
// re-encoding), and corrupt or mismatched frames must fail descriptively
// without touching the target.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestShardFrameRoundTrip(t *testing.T) {
	donor := buildSnapWorkload(t, snapMode{name: "event"})
	defer donor.Close()
	stepN(donor, 400)
	var s0 bytes.Buffer
	if err := donor.Save(&s0); err != nil {
		t.Fatal(err)
	}

	// A peer seeded from the same snapshot lineage, now stale: the donor
	// advances 300 more cycles on its own.
	peer := buildSnapWorkload(t, snapMode{name: "event"})
	defer peer.Close()
	if err := peer.Restore(bytes.NewReader(s0.Bytes())); err != nil {
		t.Fatal(err)
	}
	stepN(donor, 300)

	// Ship the donor's chips to the peer in two frames.
	ranges := [][2]int{{0, 2}, {2, 4}}
	for _, rg := range ranges {
		var frame bytes.Buffer
		if err := donor.EncodeShard(&frame, rg[0], rg[1]); err != nil {
			t.Fatal(err)
		}
		cycle, err := peer.AdoptShard(bytes.NewReader(frame.Bytes()), rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		if cycle != donor.Cycle {
			t.Fatalf("frame cycle %d, donor at %d", cycle, donor.Cycle)
		}
	}
	peer.Cycle = donor.Cycle

	// Re-encoding the adopted ranges must reproduce the donor's frames
	// byte for byte — the bit-identity the distributed checkpoint and
	// final-digest assembly depend on.
	for _, rg := range ranges {
		var want, got bytes.Buffer
		if err := donor.EncodeShard(&want, rg[0], rg[1]); err != nil {
			t.Fatal(err)
		}
		if err := peer.EncodeShard(&got, rg[0], rg[1]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("shard [%d,%d): adopted frame re-encodes differently", rg[0], rg[1])
		}
	}
}

func TestShardFrameErrors(t *testing.T) {
	m := buildSnapWorkload(t, snapMode{name: "event"})
	defer m.Close()
	stepN(m, 100)
	var frame bytes.Buffer
	if err := m.EncodeShard(&frame, 1, 3); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if err := m.Save(&before); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		lo   int
		hi   int
		want string
	}{
		{"range mismatch", frame.Bytes(), 0, 2, "covers"},
		{"bad magic", append([]byte("NOTAFRAM"), frame.Bytes()[8:]...), 1, 3, "magic"},
		{"truncated", frame.Bytes()[:frame.Len()/2], 1, 3, "truncated"},
		{"missing trailer", frame.Bytes()[:frame.Len()-8], 1, 3, ""},
	}
	for _, tc := range cases {
		_, err := m.AdoptShard(bytes.NewReader(tc.data), tc.lo, tc.hi)
		if err == nil {
			t.Fatalf("%s: adopt succeeded", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	var after bytes.Buffer
	if err := m.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("failed AdoptShard mutated the machine")
	}
}

func TestReadSnapshotConfig(t *testing.T) {
	m := buildSnapWorkload(t, snapMode{name: "event"})
	defer m.Close()
	var snap bytes.Buffer
	if err := m.Save(&snap); err != nil {
		t.Fatal(err)
	}
	cfg, err := machine.ReadSnapshotConfig(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dims != m.Cfg.Dims || cfg.Chip != m.Cfg.Chip {
		t.Fatal("ReadSnapshotConfig does not match the saved machine")
	}
	// A machine built from that config restores the snapshot.
	fresh := machine.New(cfg)
	defer fresh.Close()
	if err := fresh.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
}
