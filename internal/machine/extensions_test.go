package machine_test

import (
	"fmt"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/rt"
)

// TestFetchAddRPC exercises the remote-procedure-call handler: two nodes
// concurrently fetch-and-add the same remote counter; serialization at the
// home node's handler makes the updates atomic.
func TestFetchAddRPC(t *testing.T) {
	m, r := newMachine(t, 3, rt.Options{})
	counter := uint64(2*4096 + 10) // homed on node 2

	// Initialize the counter at its home.
	loadUser(t, m, 2, 1, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    st [i1], i2
    halt
`, counter))
	run(t, m, 50000)

	// Each client performs 8 fetch-adds of +1, composing the RPC body
	// [delta, regdesc, srcnode] in registers. Waiting on i11 (written by
	// the read reply) serializes each client's RPCs.
	for node := 0; node < 2; node++ {
		loadUser(t, m, node, 0, 0, fmt.Sprintf(`
    movi i1, #%d            ; counter address
    movi i2, #%d            ; fetch-add DIP
    movi i3, #0             ; iteration counter
    movi i4, #8
loop:
    movi i8, #1             ; body word 0: delta
    movi i9, #%d            ; body word 1: regdesc for i11
    mov  i10, node          ; body word 2: source node
    empty i11
    send i1, i2, i8, #3
    add  i12, i11, #0       ; wait for the reply (old value)
    add  i3, i3, #1
    lt   i13, i3, i4
    brt  i13, loop
    halt
`, counter, r.DIPFetchAdd, isa.RegDesc(0, 0, isa.Int(11))))
	}
	run(t, m, 500000)
	w, err := m.Peek(2, counter)
	if err != nil {
		t.Fatal(err)
	}
	if w != 16 {
		t.Errorf("counter = %d, want 16 (2 clients x 8 atomic increments)", w)
	}
	// The last old value each client saw must be < 16.
	for node := 0; node < 2; node++ {
		if got := reg(m, node, 0, 0, 12); got >= 16 {
			t.Errorf("node %d last observed value = %d", node, got)
		}
	}
}

// TestBlockWriteBack exercises the software coherence flush: node 0 caches
// a remote block, dirties it, and flushes it home; the home then observes
// the new data and the local copy is demoted to READ-ONLY.
func TestBlockWriteBack(t *testing.T) {
	m, r := newMachine(t, 2, rt.Options{Caching: true})
	base := uint64(4096) // homed on node 1

	// Stage data at home.
	loadUser(t, m, 1, 0, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #500
    st [i1], i2
    st [i1+1], i2
    halt
`, base))
	run(t, m, 100000)

	// Node 0: fetch the block (first touch), dirty it, flush it home.
	src := fmt.Sprintf(`
    movi i1, #%d
    ld i2, [i1]             ; block fetch via status-fault handler
    movi i3, #777
    st [i1], i3             ; dirty the cached copy
    movi i1, #%d
`, base, base) + r.FlushBlockSrc() + "\n    halt\n"
	loadUser(t, m, 0, 0, 0, src)
	if _, err := m.RunUntil(func() bool {
		w, err := m.Peek(1, base)
		return err == nil && w == 777
	}, 500000); err != nil {
		t.Fatalf("flush never reached home: %v", err)
	}
	// Give the flush's bsw time to settle, then check the demotion.
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if st := m.Chip(0).Mem.BlockStatusOf(base); st != mem.BSReadOnly {
		t.Errorf("local copy status = %v, want READ-ONLY after flush", st)
	}
}

// Test3DMeshRemoteAccess runs transparent remote accesses across a 2x2x2
// mesh: the corner nodes exchange data over multi-hop dimension-order
// routes.
func Test3DMeshRemoteAccess(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Dims = noc.Coord{X: 2, Y: 2, Z: 2}
	m := machine.New(cfg)
	if _, err := rt.Install(m, rt.Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := m.MapNodeRange(uint64(i)*4096, 4, i); err != nil {
			t.Fatal(err)
		}
	}
	// Node 0 (corner 0,0,0) writes into node 7's space (corner 1,1,1):
	// three hops each way.
	loadUser(t, m, 0, 0, 0, `
    movi i1, #28672         ; 7*4096
    movi i2, #31415
    st [i1], i2
    ld  i3, [i1]
    halt
`)
	run(t, m, 200000)
	if got := reg(m, 0, 0, 0, 3); got != 31415 {
		t.Errorf("corner-to-corner read back %d, want 31415", got)
	}
	w, err := m.Peek(7, 28672)
	if err != nil || w != 31415 {
		t.Errorf("node 7 holds %d (%v)", w, err)
	}
	// Dimension-order routing must have produced 3-hop paths.
	if m.Net.TotalHops < 6 {
		t.Errorf("total hops = %d, want >= 6 for corner-to-corner round trip", m.Net.TotalHops)
	}
}

// TestTwelveWideILP sustains issue on all 12 function units: four clusters
// each running a 3-wide instruction stream in the same V-Thread.
func TestTwelveWideILP(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	src := `
    movi i1, #0 | movi f1, #0
    movi i2, #32
loop:
    add i1, i1, #1 | sub i3, i2, i1 | fadd f1, f1, f1
    lt  i4, i1, i2
    brt i4, loop
    halt
`
	for cl := 0; cl < isa.NumClusters; cl++ {
		loadUser(t, m, 0, 0, cl, src)
	}
	cycles := run(t, m, 10000)
	var ops uint64
	for cl := 0; cl < isa.NumClusters; cl++ {
		ops += m.Chip(0).Thread(0, cl).OpsIssued
	}
	// 4 clusters x 32 iterations x (3+1+1 ops) + setup: the op rate must
	// exceed 4 ops/cycle (impossible on fewer than 2 clusters).
	rate := float64(ops) / float64(cycles)
	if rate < 4 {
		t.Errorf("op rate = %.2f ops/cycle across 12 units, want >= 4", rate)
	}
}

// TestEventQueueBacklog floods the LTLB-miss handler with misses from four
// user V-Threads touching distinct unmapped pages; every access must
// eventually complete.
func TestEventQueueBacklog(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	for vt := 0; vt < isa.NumUserSlots; vt++ {
		loadUser(t, m, 0, vt, 0, fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    movi i3, #4
loop:
    st [i1], i1             ; page miss on each new page
    ld i4, [i1]
    add i5, i5, i4
    movi i6, #512
    add i1, i1, i6
    add i2, i2, #1
    lt  i6, i2, i3
    brt i6, loop
    halt
`, 100+vt*40)) // distinct offsets; pages overlap across threads
	}
	run(t, m, 500000)
	if m.Chip(0).Mem.LTLBFaults == 0 {
		t.Fatal("no LTLB pressure generated")
	}
	for vt := 0; vt < isa.NumUserSlots; vt++ {
		if got := reg(m, 0, vt, 0, 2); got != 4 {
			t.Errorf("vthread %d finished %d/4 iterations", vt, got)
		}
	}
}

// TestGCCFourWayBarrier runs the Figure 6 protocol extended to a 4-way
// barrier: all four H-Threads must stay in lock step for every iteration.
func TestGCCFourWayBarrier(t *testing.T) {
	m, _ := newMachine(t, 1, rt.Options{})
	lead := `
    movi i1, #0
    movi i2, #25
loop:
    add i1, i1, #1
    eq  gcc1, i1, i2
    mov i4, gcc3
    empty gcc3
    mov i4, gcc5
    empty gcc5
    mov i4, gcc7
    empty gcc7
    lt  i5, i1, i2
    brt i5, loop
    halt
`
	follower := func(ack int) string {
		return fmt.Sprintf(`
    movi i1, #0
loop:
    add i1, i1, #1
    mov i3, gcc1
    empty gcc1
    eq  gcc%d, i1, i1
    brf i3, loop
    halt
`, ack)
	}
	loadUser(t, m, 0, 0, 0, lead)
	loadUser(t, m, 0, 0, 1, follower(3))
	loadUser(t, m, 0, 0, 2, follower(5))
	loadUser(t, m, 0, 0, 3, follower(7))
	run(t, m, 50000)
	for cl := 0; cl < 4; cl++ {
		if got := reg(m, 0, 0, cl, 1); got != 25 {
			t.Errorf("cluster %d ran %d iterations, want 25", cl, got)
		}
	}
}
