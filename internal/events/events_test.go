package events

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: LTLBMiss, Kind: mem.ReqRead, VAddr: 0x1234, RegDesc: 0x42},
		{Type: LTLBMiss, Kind: mem.ReqWrite, VAddr: 9, Data: isa.Word{Bits: 77, Ptr: true}},
		{Type: BlockStatus, Kind: mem.ReqWrite, VAddr: 1 << 40, Data: isa.W(5)},
		{Type: SyncFault, Kind: mem.ReqRead, Pre: isa.SyncFull, Post: isa.SyncEmpty, VAddr: 50, RegDesc: 0x10102},
	}
	for _, r := range recs {
		got := Decode(r.Encode())
		if got != r {
			t.Errorf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(typ, kind uint8, pre, post uint8, vaddr, data, desc uint64, ptr bool) bool {
		r := Record{
			Type:    Type(typ%3 + 1),
			Kind:    mem.Kind(kind % 2),
			Pre:     isa.SyncCond(pre % 3),
			Post:    isa.SyncCond(post % 3),
			VAddr:   vaddr,
			Data:    isa.Word{Bits: data, Ptr: ptr},
			RegDesc: desc,
		}
		return Decode(r.Encode()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordRequest(t *testing.T) {
	r := Record{
		Type: SyncFault, Kind: mem.ReqWrite,
		Pre: isa.SyncEmpty, Post: isa.SyncFull,
		VAddr: 123, Data: isa.Word{Bits: 9, Ptr: true},
	}
	req := r.Request()
	if req.Kind != mem.ReqWrite || req.Addr != 123 || req.Data != 9 || !req.DataPtr ||
		req.Pre != isa.SyncEmpty || req.Post != isa.SyncFull {
		t.Errorf("Request = %+v", req)
	}
}

func TestQueuePushPopFIFO(t *testing.T) {
	q := NewQueue(0)
	r1 := Record{Type: LTLBMiss, VAddr: 1}
	r2 := Record{Type: SyncFault, VAddr: 2}
	if !q.Push(r1) || !q.Push(r2) {
		t.Fatal("push failed on unbounded queue")
	}
	if q.Len() != 2*RecordWords {
		t.Fatalf("Len = %d", q.Len())
	}
	var w1 [RecordWords]isa.Word
	for i := range w1 {
		w1[i] = q.Pop()
	}
	if got := Decode(w1); got != r1 {
		t.Errorf("first record = %+v, want %+v", got, r1)
	}
	var w2 [RecordWords]isa.Word
	for i := range w2 {
		w2[i] = q.Pop()
	}
	if got := Decode(w2); got != r2 {
		t.Errorf("second record = %+v, want %+v", got, r2)
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestQueueCapacityAndDrop(t *testing.T) {
	q := NewQueue(RecordWords) // room for exactly one record
	if !q.Push(Record{Type: LTLBMiss}) {
		t.Fatal("first push rejected")
	}
	if q.Push(Record{Type: LTLBMiss}) {
		t.Fatal("overflow push accepted")
	}
	if q.Dropped != 1 || q.Enqueued != 1 {
		t.Errorf("stats: dropped=%d enqueued=%d", q.Dropped, q.Enqueued)
	}
}

func TestQueuePushWords(t *testing.T) {
	q := NewQueue(3)
	if !q.PushWords([]isa.Word{isa.W(1), isa.W(2)}) {
		t.Fatal("push rejected")
	}
	if q.PushWords([]isa.Word{isa.W(3), isa.W(4)}) {
		t.Fatal("overflow accepted")
	}
	if q.Pop().Bits != 1 || q.Pop().Bits != 2 {
		t.Error("word order wrong")
	}
}

func TestQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue should panic (issue stage must check Empty)")
		}
	}()
	NewQueue(0).Pop()
}

func TestQueueHighWater(t *testing.T) {
	q := NewQueue(0)
	q.Push(Record{})
	q.Push(Record{})
	q.Pop()
	if q.HighWater != 2*RecordWords {
		t.Errorf("HighWater = %d, want %d", q.HighWater, 2*RecordWords)
	}
}

func TestTypeString(t *testing.T) {
	if LTLBMiss.String() != "ltlb-miss" || BlockStatus.String() != "block-status" ||
		SyncFault.String() != "sync-fault" {
		t.Error("Type strings wrong")
	}
}
