package events

// Checkpoint support (DESIGN.md, "Checkpoint/restore"): EncodeState
// streams the live queue contents and statistics, DecodeQueueState
// rebuilds a detached scratch queue, and Adopt commits a scratch into a
// live queue in place, keeping the live queue's configured capacity.

import (
	"repro/internal/isa"
	"repro/internal/snap"
)

// maxQueueWords bounds decoded queue lengths against corrupt counts.
const maxQueueWords = 1 << 24

// EncodeState writes the queued words (from the head, so the dead prefix
// of the ring is not serialized) and the queue statistics.
func (q *Queue) EncodeState(w *snap.Writer) {
	isa.EncodeWords(w, q.words[q.head:])
	w.U64(q.Enqueued)
	w.U64(q.Dropped)
	w.Int(q.HighWater)
}

// DecodeQueueState reads a queue written by EncodeState. The scratch
// queue carries no capacity; Adopt preserves the live queue's.
func DecodeQueueState(r *snap.Reader) *Queue {
	q := &Queue{words: isa.DecodeWords(r, maxQueueWords)}
	q.Enqueued = r.U64()
	q.Dropped = r.U64()
	q.HighWater = r.Int()
	return q
}

// Adopt replaces q's contents and statistics with src's, keeping q's
// configured capacity.
func (q *Queue) Adopt(src *Queue) {
	q.words = append(q.words[:0], src.words[src.head:]...)
	q.head = 0
	q.Enqueued = src.Enqueued
	q.Dropped = src.Dropped
	q.HighWater = src.HighWater
}
