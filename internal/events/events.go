// Package events defines the hardware event records of the M-Machine's
// asynchronous exception mechanism (Section 3.3). Exceptions detected
// outside the cluster — LTLB misses, block status faults, and memory
// synchronizing faults — generate an event record identifying the faulting
// operation and its operands, and place it in a hardware event queue. A
// dedicated H-Thread of the event V-Thread processes the records to
// complete the faulting operations without stopping the issuing thread.
package events

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Type discriminates event records.
type Type uint8

const (
	LTLBMiss Type = iota + 1
	BlockStatus
	SyncFault
)

func (t Type) String() string {
	switch t {
	case LTLBMiss:
		return "ltlb-miss"
	case BlockStatus:
		return "block-status"
	case SyncFault:
		return "sync-fault"
	}
	return "?"
}

// RecordWords is the size of an event record: the hardware formats and
// enqueues a fixed 4-word record (type/op word, faulting address, write
// data, destination register descriptor).
const RecordWords = 4

// Record identifies a faulting memory operation precisely enough for the
// software handler to complete it ("the faulting operation and its operands
// are specifically identified in the event record").
type Record struct {
	Type    Type
	Kind    mem.Kind     // read or write
	Pre     isa.SyncCond // synchronizing pre/postconditions of the op
	Post    isa.SyncCond
	VAddr   uint64   // faulting virtual address
	Data    isa.Word // store data (writes)
	RegDesc uint64   // destination register descriptor (reads)
}

// Encode packs the record into its 4-word queue representation.
func (r Record) Encode() [RecordWords]isa.Word {
	w0 := uint64(r.Type) |
		uint64(r.Kind)<<4 |
		uint64(r.Pre)<<8 |
		uint64(r.Post)<<10
	if r.Data.Ptr {
		w0 |= 1 << 12
	}
	return [RecordWords]isa.Word{
		{Bits: w0},
		{Bits: r.VAddr},
		{Bits: r.Data.Bits},
		{Bits: r.RegDesc},
	}
}

// Decode unpacks a 4-word record.
func Decode(w [RecordWords]isa.Word) Record {
	w0 := w[0].Bits
	return Record{
		Type:    Type(w0 & 0xF),
		Kind:    mem.Kind(w0 >> 4 & 0xF),
		Pre:     isa.SyncCond(w0 >> 8 & 3),
		Post:    isa.SyncCond(w0 >> 10 & 3),
		Data:    isa.Word{Bits: w[2].Bits, Ptr: w0>>12&1 != 0},
		VAddr:   w[1].Bits,
		RegDesc: w[3].Bits,
	}
}

// Request reconstructs the memory request a handler re-injects with MRETRY.
func (r Record) Request() mem.Request {
	return mem.Request{
		Kind:    r.Kind,
		Addr:    r.VAddr,
		Data:    r.Data.Bits,
		DataPtr: r.Data.Ptr,
		Pre:     r.Pre,
		Post:    r.Post,
	}
}

// Queue is a hardware event queue: a bounded FIFO of words. Each record
// occupies RecordWords entries; the handler H-Thread pops them one word at
// a time through the register-mapped evq register, which stalls while the
// queue is empty.
type Queue struct {
	words []isa.Word
	cap   int

	Enqueued, Dropped uint64
	HighWater         int
}

// NewQueue creates a queue bounded to capacity words. The paper sizes the
// queue so "every outstanding instruction" can fault; capacity 0 means
// unbounded.
func NewQueue(capacity int) *Queue { return &Queue{cap: capacity} }

// Push enqueues a record; it reports false if the queue would overflow.
func (q *Queue) Push(r Record) bool {
	w := r.Encode()
	if q.cap > 0 && len(q.words)+RecordWords > q.cap {
		q.Dropped++
		return false
	}
	q.words = append(q.words, w[:]...)
	q.Enqueued++
	if len(q.words) > q.HighWater {
		q.HighWater = len(q.words)
	}
	return true
}

// PushWords enqueues raw words (used for message bodies when a queue serves
// as a message queue).
func (q *Queue) PushWords(ws []isa.Word) bool {
	if q.cap > 0 && len(q.words)+len(ws) > q.cap {
		q.Dropped++
		return false
	}
	q.words = append(q.words, ws...)
	if len(q.words) > q.HighWater {
		q.HighWater = len(q.words)
	}
	return true
}

// Empty reports whether no words are waiting.
func (q *Queue) Empty() bool { return len(q.words) == 0 }

// Len returns the number of words waiting.
func (q *Queue) Len() int { return len(q.words) }

// Pop dequeues one word; it panics if the queue is empty (the issue stage
// must check Empty first — an evq read "will not issue if the queue is
// empty").
func (q *Queue) Pop() isa.Word {
	if len(q.words) == 0 {
		panic("events: pop from empty queue")
	}
	w := q.words[0]
	q.words = q.words[1:]
	return w
}

func (r Record) String() string {
	return fmt.Sprintf("event{%s %s addr=%#x}", r.Type, r.Kind, r.VAddr)
}
