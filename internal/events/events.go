// Package events defines the hardware event records of the M-Machine's
// asynchronous exception mechanism (Section 3.3). Exceptions detected
// outside the cluster — LTLB misses, block status faults, and memory
// synchronizing faults — generate an event record identifying the faulting
// operation and its operands, and place it in a hardware event queue. A
// dedicated H-Thread of the event V-Thread processes the records to
// complete the faulting operations without stopping the issuing thread.
package events

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Type discriminates event records.
type Type uint8

const (
	LTLBMiss Type = iota + 1
	BlockStatus
	SyncFault
)

func (t Type) String() string {
	switch t {
	case LTLBMiss:
		return "ltlb-miss"
	case BlockStatus:
		return "block-status"
	case SyncFault:
		return "sync-fault"
	}
	return "?"
}

// RecordWords is the size of an event record: the hardware formats and
// enqueues a fixed 4-word record (type/op word, faulting address, write
// data, destination register descriptor).
const RecordWords = 4

// Record identifies a faulting memory operation precisely enough for the
// software handler to complete it ("the faulting operation and its operands
// are specifically identified in the event record").
type Record struct {
	Type    Type
	Kind    mem.Kind     // read or write
	Pre     isa.SyncCond // synchronizing pre/postconditions of the op
	Post    isa.SyncCond
	VAddr   uint64   // faulting virtual address
	Data    isa.Word // store data (writes)
	RegDesc uint64   // destination register descriptor (reads)
}

// Encode packs the record into its 4-word queue representation.
func (r Record) Encode() [RecordWords]isa.Word {
	w0 := uint64(r.Type) |
		uint64(r.Kind)<<4 |
		uint64(r.Pre)<<8 |
		uint64(r.Post)<<10
	if r.Data.Ptr {
		w0 |= 1 << 12
	}
	return [RecordWords]isa.Word{
		{Bits: w0},
		{Bits: r.VAddr},
		{Bits: r.Data.Bits},
		{Bits: r.RegDesc},
	}
}

// Decode unpacks a 4-word record.
func Decode(w [RecordWords]isa.Word) Record {
	w0 := w[0].Bits
	return Record{
		Type:    Type(w0 & 0xF),
		Kind:    mem.Kind(w0 >> 4 & 0xF),
		Pre:     isa.SyncCond(w0 >> 8 & 3),
		Post:    isa.SyncCond(w0 >> 10 & 3),
		Data:    isa.Word{Bits: w[2].Bits, Ptr: w0>>12&1 != 0},
		VAddr:   w[1].Bits,
		RegDesc: w[3].Bits,
	}
}

// Request reconstructs the memory request a handler re-injects with MRETRY.
func (r Record) Request() mem.Request {
	return mem.Request{
		Kind:    r.Kind,
		Addr:    r.VAddr,
		Data:    r.Data.Bits,
		DataPtr: r.Data.Ptr,
		Pre:     r.Pre,
		Post:    r.Post,
	}
}

// NoEvent is the NextEvent sentinel meaning "this component will never act
// again without external input" (see DESIGN.md, "The NextEvent contract").
const NoEvent = int64(math.MaxInt64)

// Queue is a hardware event queue: a bounded FIFO of words. Each record
// occupies RecordWords entries; the handler H-Thread pops them one word at
// a time through the register-mapped evq register, which stalls while the
// queue is empty.
//
// Pop advances a head index instead of re-slicing, and the backing array is
// reset for reuse whenever the queue drains, so the steady-state hot path
// never allocates.
type Queue struct {
	words []isa.Word
	head  int
	cap   int `snap:"derived,fixed at construction; decode bounds-checks against it"`

	Enqueued, Dropped uint64
	HighWater         int
}

// NewQueue creates a queue bounded to capacity words. The paper sizes the
// queue so "every outstanding instruction" can fault; capacity 0 means
// unbounded.
func NewQueue(capacity int) *Queue { return &Queue{cap: capacity} }

// Push enqueues a record; it reports false if the queue would overflow.
func (q *Queue) Push(r Record) bool {
	w := r.Encode()
	if q.cap > 0 && q.Len()+RecordWords > q.cap {
		q.Dropped++
		return false
	}
	q.words = append(q.words, w[:]...)
	q.Enqueued++
	if q.Len() > q.HighWater {
		q.HighWater = q.Len()
	}
	return true
}

// PushWords enqueues raw words (used for message bodies when a queue serves
// as a message queue). The words are copied, so the caller may reuse ws.
func (q *Queue) PushWords(ws []isa.Word) bool {
	if q.cap > 0 && q.Len()+len(ws) > q.cap {
		q.Dropped++
		return false
	}
	q.words = append(q.words, ws...)
	if q.Len() > q.HighWater {
		q.HighWater = q.Len()
	}
	return true
}

// Empty reports whether no words are waiting.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Len returns the number of words waiting.
func (q *Queue) Len() int { return len(q.words) - q.head }

// Pop dequeues one word; it panics if the queue is empty (the issue stage
// must check Empty first — an evq read "will not issue if the queue is
// empty").
func (q *Queue) Pop() isa.Word {
	if q.Empty() {
		panic("events: pop from empty queue")
	}
	w := q.words[q.head]
	q.head++
	if q.head == len(q.words) {
		q.words, q.head = q.words[:0], 0
	} else if q.head >= 64 && q.head*2 >= len(q.words) {
		// Compact once the dead prefix dominates, so a queue that hovers
		// non-empty for a long run keeps memory O(live words) rather than
		// retaining everything pushed since its last full drain.
		n := copy(q.words, q.words[q.head:])
		q.words, q.head = q.words[:n], 0
	}
	return w
}

// NextEvent implements the engine's NextEvent contract for a passive queue:
// a non-empty queue can be consumed now; an empty one never acts on its
// own. Note the chip's wake computation does not consult queues — a
// consumable queue implies a handler thread the issue scan already
// watches — so this exists for the contract's completeness (components a
// future scheduler might poll directly), not for the chip hot path.
func (q *Queue) NextEvent(now int64) int64 {
	if q.Empty() {
		return NoEvent
	}
	return now
}

func (r Record) String() string {
	return fmt.Sprintf("event{%s %s addr=%#x}", r.Type, r.Kind, r.VAddr)
}
