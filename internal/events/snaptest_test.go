package events

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/snap"
	"repro/internal/snap/snaptest"
)

// TestQueueFieldRoundTrip mutates every serializable Queue field and
// asserts the encoding both sees the change and round-trips it. The
// head index is serialized only implicitly — the encoder drops the
// ring's dead prefix — so its mutation must still shift the stream.
func TestQueueFieldRoundTrip(t *testing.T) {
	q := NewQueue(16)
	if !q.PushWords([]isa.Word{isa.W(11), {Bits: 12, Ptr: true}, isa.W(13)}) {
		t.Fatal("push failed")
	}
	q.Enqueued, q.Dropped, q.HighWater = 3, 1, 3
	snaptest.Fields(t, q, snaptest.Codec[Queue]{
		Encode: func(q *Queue) []byte { return snaptest.Encode(t, q.EncodeState) },
		Decode: func(data []byte) (*Queue, error) {
			r := snap.NewReader(bytes.NewReader(data))
			d := DecodeQueueState(r)
			return d, r.Err()
		},
		Mutate: map[string]func(*Queue) func(){
			"words": func(q *Queue) func() {
				q.words[q.head].Bits ^= 1
				return func() { q.words[q.head].Bits ^= 1 }
			},
		},
	})
}
