// Package workload generates the simulator's workloads as MAP assembly.
//
// The hand-written generators cover the paper's kernels — the 7-point
// and 27-point stencils of Section 3.1 / Figure 5 scheduled for 1, 2,
// or 4 H-Threads (Stencil7, Stencil27), the Figure 6 H-Thread loop
// synchronization kernel (LoopSync) with its SpinLoop baseline, and the
// ablation kernels (LoadHeavyKernel, PointerKernel) — plus the
// machine-scale mesh families (MeshSmooth, NeighborExchangeSrc; see
// mesh.go) used by the scaling experiments and parallel-engine
// benchmarks.
//
// FromDSL (dsl.go) lowers parsed declarative workload scenarios
// (internal/wdsl, docs/wdsl.md) onto these same primitives and the MAP
// assembler, producing an executable Plan; because the lowering reuses
// the generators verbatim, DSL re-expressions of the hand-written
// workloads are bit-identical to them under every engine.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Stencil is a generated stencil kernel: one program per cluster (H-Thread)
// plus the static schedule depth of the kernel body — the metric of
// Figure 5 (instruction count of the longest H-Thread, prelude excluded).
type Stencil struct {
	Name     string
	HThreads int
	Programs []*isa.Program // index = cluster
	Depth    int            // static schedule depth of the longest body
	// RBase/UAddr are the virtual addresses the kernel expects: the
	// residual block at RBase and the smoothed value at UAddr.
	RBase, UAddr uint64
}

// Stencil memory layout: residuals at RBase.. (7 words for the 7-point
// kernel with r_c at offset 6; 27 words for the 27-point kernel with r_c
// at offset 26), u at UAddr.
const (
	StencilRBase = 0x100
	StencilUAddr = 0x180
)

// stencilPrelude emits address/constant setup shared by all stencil bodies;
// its instruction count is excluded from the depth metric. f1 = a, f2 = b.
const stencilPrelude = `
    movi i1, #256           ; RBase
    movi i2, #384           ; UAddr
    movi i3, #2
    itof f1, i3             ; a = 2.0
    movi i3, #3
    itof f2, i3             ; b = 3.0
`

var preludeLen = func() int {
	return asm.MustAssemble("prelude", stencilPrelude).Len()
}()

// Stencil7 generates the 7-point stencil of Figure 5 for 1 or 2 H-Threads,
// using the paper's exact schedules: depth 12 on one H-Thread, depth 8 on
// two. The computed value is u += a*r_c + b*(r_u+r_d+r_n+r_s+r_e+r_w).
func Stencil7(hthreads int) (*Stencil, error) {
	switch hthreads {
	case 1:
		return one7(), nil
	case 2:
		return two7(), nil
	}
	return nil, fmt.Errorf("workload: 7-point stencil supports 1 or 2 H-Threads, not %d", hthreads)
}

// one7 is Figure 5(a): a single H-Thread, 12 instructions.
func one7() *Stencil {
	body := `
    ld f3, [i1]                         ; 1. load r_u
    ld f4, [i1+1]                       ; 2. load r_d
    ld f5, [i1+2]  | fadd f10, f3, f4   ; 3. load r_n  | t2 = r_u + r_d
    ld f6, [i1+3]  | fadd f10, f10, f5  ; 4. load r_s  | t2 += r_n
    ld f7, [i1+4]  | fadd f10, f10, f6  ; 5. load r_e  | t2 += r_s
    ld f8, [i1+5]  | fadd f10, f10, f7  ; 6. load r_w  | t2 += r_e
    ld f9, [i1+6]  | fadd f10, f10, f8  ; 7. load r_c  | t2 += r_w
    ld f11, [i2]   | fmul f10, f2, f10  ; 8. load u_c  | t2 = b * t2
    fmul f12, f1, f9                    ; 9. t1 = a * r_c
    fadd f12, f12, f10                  ; 10. t1 = t1 + t2
    fadd f11, f11, f12                  ; 11. u_c = u_c + t1
    st [i2], f11                        ; 12. store u_c
    halt
`
	p := asm.MustAssemble("stencil7x1", stencilPrelude+body)
	return &Stencil{
		Name: "7-point stencil", HThreads: 1,
		Programs: []*isa.Program{p},
		Depth:    p.Len() - preludeLen - 1, // exclude prelude and halt
		RBase:    StencilRBase, UAddr: StencilUAddr,
	}
}

// two7 is Figure 5(b): two cooperating H-Threads, depth 8. H-Thread 0
// computes u_c + a*r_c + b*(r_u+r_d) and transmits it to H-Thread 1's f15
// through the C-Switch; H-Thread 1 sums the remaining residuals and stores.
// H-Thread 1 empties f15 in its second instruction before H-Thread 0's
// seventh can possibly complete, mirroring the paper's "empty t2" slot.
func two7() *Stencil {
	h0 := `
    ld f3, [i1]                         ; 1. load r_u
    ld f4, [i1+1]                       ; 2. load r_d
    ld f9, [i1+6]  | fadd f10, f3, f4   ; 3. load r_c  | t2 = r_u + r_d
    ld f11, [i2]   | fmul f10, f2, f10  ; 4. load u_c  | t2 = b * t2
    fmul f12, f1, f9                    ; 5. t1 = a * r_c
    fadd f12, f11, f12                  ; 6. t1 = u_c + t1
    fadd @1.f15, f12, f10               ; 7. H1.t2 = t1 + t2
    halt
`
	h1 := `
    ld f5, [i1+2]                       ; 1. load r_n
    ld f6, [i1+3]  | empty f15          ; 2. load r_s  | empty t2
    ld f7, [i1+4]  | fadd f13, f5, f6   ; 3. load r_e  | t1 = r_n + r_s
    ld f8, [i1+5]  | fadd f13, f13, f7  ; 4. load r_w  | t1 += r_e
    fadd f13, f13, f8                   ; 5. t1 += r_w
    fmul f13, f2, f13                   ; 6. t1 = b * t1
    fadd f14, f13, f15                  ; 7. u = t1 + t2 (waits on transfer)
    st [i2], f14                        ; 8. store u
    halt
`
	p0 := asm.MustAssemble("stencil7x2-h0", stencilPrelude+h0)
	p1 := asm.MustAssemble("stencil7x2-h1", stencilPrelude+h1)
	return &Stencil{
		Name: "7-point stencil", HThreads: 2,
		Programs: []*isa.Program{p0, p1},
		Depth:    p1.Len() - preludeLen - 1, // H1 is the longer body: 8
		RBase:    StencilRBase, UAddr: StencilUAddr,
	}
}

// Stencil27 generates the 27-point stencil mentioned in Section 3.1 for
// 1 or 4 H-Threads (paper: static depth 36 and 17). The computed value is
// u += a*r_c + b*sum(r_0..r_25): 27 loads of residuals plus the load of u,
// a 25-add reduction, two scales, and the combine.
func Stencil27(hthreads int) (*Stencil, error) {
	switch hthreads {
	case 1:
		return one27(), nil
	case 4:
		return four27(), nil
	}
	return nil, fmt.Errorf("workload: 27-point stencil supports 1 or 4 H-Threads, not %d", hthreads)
}

// reductionBody emits loads of residuals [lo,hi) into the rotating register
// set f3..f10 paired with a lag-1 accumulation chain into f11 — exactly the
// Figure 5(a) pattern ("load r_s | t2 = t2 + r_n" consumes the previous
// instruction's load). The register holding r_k is consumed at instruction
// k+1 and not reused before instruction k+8.
func reductionBody(b *strings.Builder, lo, hi int) {
	reg := func(k int) int { return 3 + (k-lo)%8 }
	n := hi - lo
	for k := 0; k < n; k++ {
		ld := fmt.Sprintf("ld f%d, [i1+%d]", reg(lo+k), lo+k)
		var fp string
		switch {
		case k == 2:
			fp = fmt.Sprintf("fadd f11, f%d, f%d", reg(lo), reg(lo+1))
		case k > 2:
			fp = fmt.Sprintf("fadd f11, f11, f%d", reg(lo+k-1))
		}
		if fp != "" {
			fmt.Fprintf(b, "    %s | %s\n", ld, fp)
		} else {
			fmt.Fprintf(b, "    %s\n", ld)
		}
	}
	// Drain the final residual.
	fmt.Fprintf(b, "    fadd f11, f11, f%d\n", reg(hi-1))
}

func one27() *Stencil {
	var b strings.Builder
	reductionBody(&b, 0, 26) // 26 neighbour residuals
	b.WriteString(`
    ld f12, [i1+26]         ; r_c
    ld f13, [i2]            ; u
    fmul f11, f2, f11       ; b * sum
    fmul f14, f1, f12       ; a * r_c
    fadd f13, f13, f11
    fadd f13, f13, f14
    st [i2], f13
    halt
`)
	p := asm.MustAssemble("stencil27x1", stencilPrelude+b.String())
	return &Stencil{
		Name: "27-point stencil", HThreads: 1,
		Programs: []*isa.Program{p},
		Depth:    p.Len() - preludeLen - 1,
		RBase:    StencilRBase, UAddr: StencilUAddr,
	}
}

// four27 distributes the 26 neighbour residuals over H-Threads 1..3, which
// ship their partial sums to H-Thread 0 through the C-Switch; H-Thread 0
// handles r_c and u and combines. gcc0 signals that H-Thread 0 has emptied
// the receive registers, so a partial can never arrive before its slot is
// prepared.
func four27() *Stencil {
	partial := func(h, lo, hi, dstReg int) *isa.Program {
		var b strings.Builder
		reductionBody(&b, lo, hi)
		b.WriteString("    mov i5, gcc0\n") // wait for receiver ready
		fmt.Fprintf(&b, "    fmov @0.f%d, f11\n", dstReg)
		b.WriteString("    halt\n")
		return asm.MustAssemble(fmt.Sprintf("stencil27x4-h%d", h), stencilPrelude+b.String())
	}
	h0 := `
    empty f5 | empty f6     ; prepare receive slots (both integer ALUs)
    empty f7
    eq gcc0, i3, i3         ; signal: receivers prepared
    ld f12, [i1+26]         ; r_c
    ld f13, [i2]            ; u
    fmul f14, f1, f12       ; a * r_c
    fadd f13, f13, f14
    fadd f5, f5, f6         ; waits on H1 and H2 partials
    fadd f5, f5, f7         ; waits on H3 partial
    fmul f5, f2, f5         ; b * sum
    fadd f13, f13, f5
    st [i2], f13
    halt
`
	p0 := asm.MustAssemble("stencil27x4-h0", stencilPrelude+h0)
	p1 := partial(1, 0, 9, 5)
	p2 := partial(2, 9, 18, 6)
	p3 := partial(3, 18, 26, 7)
	depth := 0
	for _, p := range []*isa.Program{p0, p1, p2, p3} {
		if d := p.Len() - preludeLen - 1; d > depth {
			depth = d
		}
	}
	return &Stencil{
		Name: "27-point stencil", HThreads: 4,
		Programs: []*isa.Program{p0, p1, p2, p3},
		Depth:    depth,
		RBase:    StencilRBase, UAddr: StencilUAddr,
	}
}
