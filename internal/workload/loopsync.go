package workload

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// LoopSync generates the Figure 6 kernel: H-Threads iterating a loop in
// lock step, synchronizing at each iteration boundary through a pair of
// global condition-code registers. The interlock uses two registers per
// follower so that neither H-Thread can roll over into the next iteration
// before both have completed the current one, exactly the paper's protocol:
// H-Thread 0 computes the loop condition and broadcasts it via gcc1;
// H-Thread 1 consumes gcc1, empties it, and acknowledges via gcc3, which
// H-Thread 0 consumes and empties before its next iteration.
//
// hthreads may be 2 or 4; with 4, H-Thread 0 broadcasts on gcc1 and the
// three followers acknowledge on gcc3, gcc5, gcc7 — the "fast barrier among
// 4 H-Threads ... without combining or distribution trees" the paper
// describes. iters is the iteration count.
func LoopSync(hthreads, iters int) ([]*isa.Program, error) {
	if hthreads != 2 && hthreads != 4 {
		return nil, fmt.Errorf("workload: loop sync supports 2 or 4 H-Threads, not %d", hthreads)
	}
	progs := make([]*isa.Program, hthreads)

	// Leader (cluster 0): compute, broadcast condition, await all acks.
	lead := fmt.Sprintf(`
    movi i1, #0
    movi i2, #%d
loop:
    add i1, i1, #1          ; compute bar
    eq  gcc1, i1, i2        ; broadcast bar==end
`, iters)
	for f := 1; f < hthreads; f++ {
		ack := 2*f + 1 // gcc3, gcc5, gcc7
		lead += fmt.Sprintf("    mov i4, gcc%d\n    empty gcc%d\n", ack, ack)
	}
	lead += `
    lt  i5, i1, i2
    brt i5, loop
    halt
`
	p, err := asm.Assemble("loopsync-h0", lead)
	if err != nil {
		return nil, err
	}
	progs[0] = p

	// Followers: work, consume the condition, empty it, acknowledge.
	for f := 1; f < hthreads; f++ {
		ack := 2*f + 1
		src := fmt.Sprintf(`
    movi i1, #0
loop:
    add i1, i1, #1          ; use
    mov i3, gcc1            ; wait for the leader's condition broadcast
    empty gcc1
    eq  gcc%d, i1, i1       ; acknowledge (always 1)
    brf i3, loop            ; loop until the condition said "end"
    halt
`, ack)
		p, err := asm.Assemble(fmt.Sprintf("loopsync-h%d", f), src)
		if err != nil {
			return nil, err
		}
		progs[f] = p
	}
	return progs, nil
}

// SpinLoop generates an unsynchronized counting loop of the same body size,
// the baseline against which the Figure 6 interlock overhead is measured.
func SpinLoop(iters int) *isa.Program {
	return asm.MustAssemble("spinloop", fmt.Sprintf(`
    movi i1, #0
    movi i2, #%d
loop:
    add i1, i1, #1
    lt  i5, i1, i2
    brt i5, loop
    halt
`, iters))
}

// LoadHeavyKernel generates a pointer-chase style kernel with one load per
// iteration and a dependent use, for the V-Thread latency-tolerance
// ablation (Section 3.2): each load's full latency is exposed to a single
// thread, so co-resident V-Threads can fill the stall cycles.
func LoadHeavyKernel(base uint64, iters int) *isa.Program {
	return asm.MustAssemble("loadheavy", fmt.Sprintf(`
    movi i1, #%d
    movi i2, #0
    movi i3, #%d
loop:
    ld  i4, [i1]
    add i5, i4, i5          ; dependent use: exposes the load latency
    add i2, i2, #1
    lt  i6, i2, i3
    brt i6, loop
    halt
`, base, iters))
}

// PointerKernel generates the guarded-pointer ablation kernel: a loop of
// LEA pointer bumps and loads through the resulting capability. The same
// kernel body with raw add/ld (privileged) measures the no-check baseline.
func PointerKernel(iters int, guarded bool) *isa.Program {
	bump := "lea i1, i1, #1"
	if !guarded {
		bump = "add i1, i1, #1"
	}
	return asm.MustAssemble("ptrkernel", fmt.Sprintf(`
    movi i2, #0
    movi i3, #%d
loop:
    %s
    ld i4, [i1]
    add i2, i2, #1
    lt i5, i2, i3
    brt i5, loop
    halt
`, iters, bump))
}
