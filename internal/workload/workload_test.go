package workload

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestStencil7Depths(t *testing.T) {
	// The paper's exact schedules: 12 instructions on one H-Thread, 8 on
	// two (Figure 5).
	s1, err := Stencil7(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Depth != 12 {
		t.Errorf("1 H-Thread depth = %d, want 12", s1.Depth)
	}
	if len(s1.Programs) != 1 {
		t.Errorf("programs = %d", len(s1.Programs))
	}
	s2, err := Stencil7(2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Depth != 8 {
		t.Errorf("2 H-Thread depth = %d, want 8", s2.Depth)
	}
	if len(s2.Programs) != 2 {
		t.Errorf("programs = %d", len(s2.Programs))
	}
	if _, err := Stencil7(3); err == nil {
		t.Error("Stencil7(3) should be rejected")
	}
}

func TestStencil27Depths(t *testing.T) {
	s1, err := Stencil27(1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Stencil27(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s4.Programs) != 4 {
		t.Fatalf("4 H-Thread programs = %d", len(s4.Programs))
	}
	// The paper reports 36 -> 17; our generated schedules must show the
	// same large reduction (at least 2x).
	if s1.Depth < 30 || s1.Depth > 40 {
		t.Errorf("1 H-Thread depth = %d, want near the paper's 36", s1.Depth)
	}
	if s4.Depth*2 > s1.Depth {
		t.Errorf("4 H-Thread depth %d not less than half of %d", s4.Depth, s1.Depth)
	}
	if _, err := Stencil27(2); err == nil {
		t.Error("Stencil27(2) should be rejected")
	}
}

func TestStencil7MemoryOpCounts(t *testing.T) {
	// Figure 5(b): "Each H-Thread performs four memory operations" plus
	// H-Thread 1's store.
	s2, err := Stencil7(2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for h, p := range s2.Programs {
		for _, in := range p.Insts {
			if in.MOp != nil && (in.MOp.Code == isa.LD || in.MOp.Code == isa.ST) {
				counts[h]++
			}
		}
	}
	if counts[0] != 4 || counts[1] != 5 {
		t.Errorf("memory ops = %v, want [4 5] (4 loads each, +1 store on H1)", counts)
	}
}

func TestStencil7CrossClusterTransfer(t *testing.T) {
	// H-Thread 0's instruction 7 writes H-Thread 1's register (the paper's
	// "H1.t2 = t1 + t2").
	s2, err := Stencil7(2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range s2.Programs[0].Insts {
		for _, op := range in.Ops() {
			if op.Dst.Cluster == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Error("H-Thread 0 never writes a cluster-1 register")
	}
	// And H-Thread 1 must prepare with an EMPTY.
	found = false
	for _, in := range s2.Programs[1].Insts {
		for _, op := range in.Ops() {
			if op.Code == isa.EMPTY {
				found = true
			}
		}
	}
	if !found {
		t.Error("H-Thread 1 never empties its receive register")
	}
}

func TestLoopSyncPrograms(t *testing.T) {
	for _, ht := range []int{2, 4} {
		progs, err := LoopSync(ht, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(progs) != ht {
			t.Fatalf("%d H-Threads: %d programs", ht, len(progs))
		}
		// Leader waits on one ack register per follower.
		acks := 0
		for _, in := range progs[0].Insts {
			for _, op := range in.Ops() {
				if op.Code == isa.EMPTY && op.Dst.Class == isa.RGCC {
					acks++
				}
			}
		}
		if acks != ht-1 {
			t.Errorf("%d H-Threads: leader empties %d ack registers, want %d", ht, acks, ht-1)
		}
	}
	if _, err := LoopSync(3, 10); err == nil {
		t.Error("LoopSync(3) should be rejected")
	}
}

func TestLoopSyncFollowersUseDistinctAcks(t *testing.T) {
	progs, err := LoopSync(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint8]bool{}
	for f := 1; f < 4; f++ {
		for _, in := range progs[f].Insts {
			for _, op := range in.Ops() {
				if op.Dst.Class == isa.RGCC && op.Code != isa.EMPTY {
					if seen[op.Dst.Index] {
						t.Errorf("follower %d reuses ack gcc%d", f, op.Dst.Index)
					}
					seen[op.Dst.Index] = true
				}
			}
		}
	}
	if len(seen) != 3 {
		t.Errorf("followers broadcast on %d registers, want 3", len(seen))
	}
}

func TestKernelGenerators(t *testing.T) {
	sl := SpinLoop(7)
	if sl.Len() == 0 {
		t.Error("SpinLoop empty")
	}
	lh := LoadHeavyKernel(64, 5)
	hasLoad := false
	for _, in := range lh.Insts {
		if in.MOp != nil && in.MOp.Code == isa.LD {
			hasLoad = true
		}
	}
	if !hasLoad {
		t.Error("LoadHeavyKernel has no load")
	}
	pg := PointerKernel(5, true)
	hasLea := false
	for _, in := range pg.Insts {
		if in.MOp != nil && in.MOp.Code == isa.LEA {
			hasLea = true
		}
	}
	if !hasLea {
		t.Error("guarded PointerKernel has no LEA")
	}
	pr := PointerKernel(5, false)
	for _, in := range pr.Insts {
		if in.MOp != nil && in.MOp.Code == isa.LEA {
			t.Error("raw PointerKernel should not use LEA")
		}
	}
}

func TestStencilAddressConstants(t *testing.T) {
	s, err := Stencil7(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.RBase != StencilRBase || s.UAddr != StencilUAddr {
		t.Errorf("addresses = %#x/%#x", s.RBase, s.UAddr)
	}
	// Both must be inside the first 512-word page so one MapLocal(0,...)
	// covers the kernel's data.
	if s.RBase+27 >= 512 || s.UAddr >= 512 {
		t.Error("stencil data does not fit page 0")
	}
}

func TestMeshSmoothGenerator(t *testing.T) {
	g, err := NewMeshSmooth(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if g.Chunk != 32 || g.Total() != 256 {
		t.Fatalf("chunk=%d total=%d", g.Chunk, g.Total())
	}
	// Host reference math.
	if g.U(0) != 1 || g.U(17) != 1 || g.U(16) != 17 {
		t.Errorf("U: %d %d %d", g.U(0), g.U(17), g.U(16))
	}
	if g.Want(0) != 0 || g.Want(255) != 0 {
		t.Error("boundary elements must not be written")
	}
	if want := g.U(4) + g.U(5) + g.U(6); g.Want(5) != want {
		t.Errorf("Want(5) = %d, want %d", g.Want(5), want)
	}
	// Every generated program must assemble, for every node position
	// (interior, global-boundary, and chunk-boundary cases differ).
	home := func(n int) uint64 { return uint64(n) * 4096 }
	for n := 0; n < g.Nodes; n++ {
		if _, err := asm.Assemble("stage", g.StageSrc(n, home)); err != nil {
			t.Fatalf("node %d stage: %v", n, err)
		}
		if _, err := asm.Assemble("worker", g.WorkerSrc(n, home)); err != nil {
			t.Fatalf("node %d worker: %v", n, err)
		}
	}
}

func TestMeshSmoothValidation(t *testing.T) {
	if _, err := NewMeshSmooth(3, 256); err == nil {
		t.Error("uneven division should fail")
	}
	if _, err := NewMeshSmooth(1, 2048); err == nil {
		t.Error("chunk above MeshMaxChunk should fail")
	}
	if _, err := NewMeshSmooth(256, 256); err == nil {
		t.Error("chunk below 2 should fail")
	}
}

func TestNeighborExchangeGenerator(t *testing.T) {
	home := func(n int) uint64 { return uint64(n) * 4096 }
	for _, n := range []int{0, 3} {
		src := NeighborExchangeSrc(n, 4, 8, 42, home)
		if _, err := asm.Assemble("exchange", src); err != nil {
			t.Fatalf("node %d: %v", n, err)
		}
	}
	// Node 3 wraps to node 0's mailbox.
	if got := NeighborExchangeAddr(home, 0, 5); got != MeshMailbox+5 {
		t.Errorf("addr = %d", got)
	}
}
