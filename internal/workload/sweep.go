package workload

// Sweep lowering: the DSL's `sweep NAME ...` directive turns one
// scenario file into one experiment per parameter value. The lowering
// splits the scenario's steps at the first sweep-dependent step:
// everything before it is the shared staging prefix (lowered once into
// Plan.Steps and executed once — the executor forks the machine at that
// point for every sweep value), and everything from it on is lowered
// once per point under that point's bindings into SweepPoint.Steps.
//
// Dependence is syntactic and transitive: a step depends on the sweep
// when any of its expressions — or any expression of a program it loads
// — references the sweep parameter, a const whose declaration
// (transitively) references it, or `nodes` when the mesh dimensions
// themselves are swept. Swept meshes have no shareable prefix at all
// (the staging machine's shape differs per point), so MeshSwept plans
// carry an empty Plan.Steps and each point boots its own machine.
//
// The fork-per-point construction is what makes sweeps cheap *and*
// trustworthy: because machine.Fork is a bit-exact snapshot clone,
// running a point from the fork is bit-identical to re-running the
// prefix from boot and then the point — TestSweepMatchesStandalone in
// internal/core pins exactly that, via PointPlan.

import (
	"fmt"

	"repro/internal/wdsl"
)

// SweepPlan describes a lowered sweep: the parameter name and one
// SweepPoint per value, in declaration order.
type SweepPlan struct {
	// Name is the sweep parameter's name as declared.
	Name string
	// MeshSwept reports that the mesh dimensions depend on the
	// parameter; the plan then has no shared staging prefix and every
	// point boots a fresh machine of its own Dims.
	MeshSwept bool
	Points    []SweepPoint
}

// SweepPoint is one sweep value's experiment: the suffix steps to run
// after forking the shared prefix (or after booting Dims for swept
// meshes).
type SweepPoint struct {
	Name        string // "NAME=value", used in phase and result labels
	Value       int64
	Dims        [3]int
	CycleBudget int64
	Steps       []PlanStep
}

// maxSweepPoints bounds a sweep's experiment count, like maxMeshNodes
// bounds a mesh: generous for parameter studies, tight enough that a
// typo'd range fails validation instead of launching a thousand runs.
const maxSweepPoints = 32

// PointPlan returns sweep point i as a standalone non-sweep Plan: the
// shared prefix followed by the point's steps, under the point's mesh
// and budget. Running it from boot must be bit-identical to the forked
// execution of the same point inside the sweep.
func (p *Plan) PointPlan(i int) *Plan {
	pt := p.Sweep.Points[i]
	steps := make([]PlanStep, 0, len(p.Steps)+len(pt.Steps))
	steps = append(steps, p.Steps...)
	steps = append(steps, pt.Steps...)
	return &Plan{
		Title:       fmt.Sprintf("%s [%s]", p.Title, pt.Name),
		Dims:        pt.Dims,
		Caching:     p.Caching,
		Deadline:    p.Deadline,
		CycleBudget: pt.CycleBudget,
		Steps:       steps,
	}
}

// fromDSLSweep lowers a scenario file carrying a sweep directive.
func fromDSLSweep(f *wdsl.File) (*Plan, error) {
	sw := f.Sweep
	for _, builtin := range []string{"nodes", "node", "dip", "dipsync"} {
		if sw.Name == builtin {
			return nil, errAt(f, sw.NamePos, "sweep parameter %q shadows a builtin", sw.Name)
		}
	}
	values, err := sweepValues(f)
	if err != nil {
		return nil, err
	}

	// The dependence set: the parameter itself, `nodes` when the mesh
	// is swept, then every const transitively touching either. Consts
	// are walked in declaration order, so a chain A -> B -> sweep
	// resolves regardless of length.
	depNames := []string{sw.Name}
	dep := func(name string) bool { return containsStr(depNames, name) }
	meshSwept := false
	for _, e := range f.MeshExprs {
		if e != nil && wdsl.UsesIdent(e, dep) {
			meshSwept = true
		}
	}
	if meshSwept {
		depNames = append(depNames, "nodes")
	}
	for _, c := range f.Consts {
		if wdsl.UsesIdent(c.Expr, dep) {
			depNames = append(depNames, c.Name)
		}
	}

	// Split the steps at the first sweep-dependent one.
	progDep := func(name string) bool {
		decl := f.Lookup(name)
		return decl != nil && decl.UsesIdent(dep)
	}
	split := len(f.Steps)
	for i, s := range f.Steps {
		if s.UsesIdent(dep) || (s.Kind == wdsl.StepLoad && progDep(s.Prog)) {
			split = i
			break
		}
	}
	if meshSwept {
		split = 0 // machine shape differs per point: nothing to share
	} else if split == len(f.Steps) {
		return nil, errAt(f, sw.NamePos, "sweep parameter %q is never used", sw.Name)
	}

	plan := &SweepPlan{Name: sw.Name, MeshSwept: meshSwept}
	p := &Plan{Title: f.Title, Caching: f.Caching, Deadline: f.Deadline, Sweep: plan}
	for i, v := range values {
		var extra map[string]int64
		if meshSwept {
			extra = map[string]int64{sw.Name: v}
		}
		dims, nodes, err := evalMesh(f, extra)
		if err != nil {
			return nil, err
		}
		lo, err := newLowerer(f, nodes, map[string]int64{sw.Name: v})
		if err != nil {
			return nil, err
		}
		pt := SweepPoint{Name: fmt.Sprintf("%s=%d", sw.Name, v), Value: v, Dims: dims}
		if pt.CycleBudget, err = lo.budget(); err != nil {
			return nil, err
		}
		for _, s := range f.Steps[split:] {
			steps, err := lo.lowerStep(s)
			if err != nil {
				return nil, err
			}
			pt.Steps = append(pt.Steps, steps...)
		}
		if i == 0 {
			// The shared prefix is lowered under point 0's bindings.
			// That's sound because no prefix step references a
			// dependent name (that's what the split guarantees), so
			// every point sees identical prefix values.
			p.Dims, p.CycleBudget = dims, pt.CycleBudget
			for _, s := range f.Steps[:split] {
				steps, err := lo.lowerStep(s)
				if err != nil {
					return nil, err
				}
				p.Steps = append(p.Steps, steps...)
			}
		}
		plan.Points = append(plan.Points, pt)
	}
	return p, nil
}

// sweepValues expands the sweep directive into its value list. Sweep
// expressions must be self-contained (literals and arithmetic — no
// consts, which may depend on the mesh size the sweep itself controls).
func sweepValues(f *wdsl.File) ([]int64, error) {
	sw := f.Sweep
	env := &wdsl.EvalEnv{File: f.Name}
	if sw.Values != nil {
		values := make([]int64, len(sw.Values))
		for i, e := range sw.Values {
			v, err := wdsl.Eval(e, env)
			if err != nil {
				return nil, err
			}
			values[i] = v
		}
		if len(values) > maxSweepPoints {
			return nil, errAt(f, sw.Pos, "sweep has %d points, more than the %d-point limit", len(values), maxSweepPoints)
		}
		return values, nil
	}
	lo, err := wdsl.Eval(sw.Lo, env)
	if err != nil {
		return nil, err
	}
	hi, err := wdsl.Eval(sw.Hi, env)
	if err != nil {
		return nil, err
	}
	if hi < lo {
		return nil, errAt(f, sw.Pos, "empty sweep range [%d, %d]", lo, hi)
	}
	if n := hi - lo + 1; n > maxSweepPoints {
		return nil, errAt(f, sw.Pos, "sweep range spans %d points, more than the %d-point limit", n, maxSweepPoints)
	}
	values := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		values = append(values, v)
	}
	return values, nil
}
