package workload

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wdsl"
)

// lowerErr parses src and lowers it, expecting a positional error whose
// message mentions want.
func lowerErr(t *testing.T, src, want string) {
	t.Helper()
	f, err := wdsl.Parse("t.wl", src)
	if err != nil {
		t.Fatalf("parse failed before lowering: %v", err)
	}
	_, err = FromDSL(f)
	if err == nil {
		t.Fatalf("no lowering error for %q", src)
	}
	var perr *wdsl.Error
	if !errors.As(err, &perr) {
		t.Fatalf("error %v is not a positional *wdsl.Error", err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err.Error(), want)
	}
}

// TestFromDSLValidation drives every semantic error path: all must be
// positional errors, never panics.
func TestFromDSLValidation(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no mesh", "run 100\n", "no mesh directive"},
		{"mesh dim zero", "mesh 0\n", "out of range"},
		{"mesh dim huge", "mesh 33\n", "out of range"},
		{"mesh too many nodes", "mesh 32 32 2\n", "node limit"},
		{"undefined program", "mesh 2\nload ghost on all\nrun 10\n", `undefined program "ghost"`},
		{"node out of range", "mesh 2\npoke node=2 addr=1 value=1\n", "out of range"},
		{"negative node", "mesh 2\npoke node=-1 addr=1 value=1\n", "out of range"},
		{"vthread out of range", "mesh 1\nprogram p\n    halt\nend\nload p on node 0 vthread=4\n", "out of range"},
		{"cluster out of range", "mesh 1\nprogram p\n    halt\nend\nload p on node 0 cluster=9\n", "out of range"},
		{"reg out of range", "mesh 1\nexpect reg node=0 reg=16 value=0\n", "out of range"},
		{"budget zero", "mesh 1\nrun 0\n", "out of range"},
		{"empty node range", "mesh 4\nprogram p\n    halt\nend\nload p on nodes 3 1\n", "empty node range"},
		{"unknown generator", "mesh 1\ngenerate g warp factor=9\nload g on node 0\n", "unknown generator"},
		{"generator missing arg", "mesh 1\ngenerate g loopsync hthreads=2\nload g on node 0\n", "wants iters="},
		{"generator extra arg", "mesh 1\ngenerate g spinloop iters=5 nodes=2\nload g on node 0\n", "does not take"},
		{"loopsync bad hthreads", "mesh 1\ngenerate g loopsync hthreads=3 iters=5\nload g on node 0\n", "2 or 4 H-Threads"},
		{"stencil bad points", "mesh 1\ngenerate g stencil points=9 hthreads=1\nload g on node 0\n", "points=7 or points=27"},
		{"cluster span overflow", "mesh 1\ngenerate g stencil points=27 hthreads=4\nload g on node 0 cluster=1\n", "spans 4 clusters"},
		{"exchange msgs range", "mesh 2\ngenerate g exchange msgs=100000\nload g on all\n", "out of range"},
		{"smooth bad split", "mesh 3\ngenerate g smooth_stage total=512\nload g on all\n", "do not divide"},
		{"check smooth bad split", "mesh 3\ncheck smooth total=100\n", "do not divide"},
		{"check unknown", "mesh 1\ncheck parity bits=2\n", "unknown check"},
		{"check missing arg", "mesh 1\ncheck smooth\n", "wants total="},
		{"const redeclared", "mesh 1\nconst A 1\nconst A 2\n", "redeclared"},
		{"const shadows builtin", "mesh 1\nconst nodes 9\n", "redeclared (or shadows"},
		{"const uses home", "mesh 1\nconst A home(0)\n", "not available"},
		{"unknown ident in budget", "mesh 1\nrun BUDGET\n", "unknown identifier"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lowerErr(t, c.src, c.want)
		})
	}
}

// lowerErrAt is lowerErr plus the exact error anchor: the *wdsl.Error
// must point at the declared line:col, not merely somewhere in the file.
// Pinning positions keeps `msim -workload` diagnostics pointing at the
// offending token as the lowering grows.
func lowerErrAt(t *testing.T, src string, line, col int, want string) {
	t.Helper()
	f, err := wdsl.Parse("t.wl", src)
	if err != nil {
		t.Fatalf("parse failed before lowering: %v", err)
	}
	_, err = FromDSL(f)
	if err == nil {
		t.Fatalf("no lowering error for %q", src)
	}
	var perr *wdsl.Error
	if !errors.As(err, &perr) {
		t.Fatalf("error %v is not a positional *wdsl.Error", err)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err.Error(), want)
	}
	if perr.Pos.Line != line || perr.Pos.Col != col {
		t.Errorf("error anchored at %d:%d, want %d:%d (%v)", perr.Pos.Line, perr.Pos.Col, line, col, err)
	}
}

// TestFromDSLErrorPositions pins the exact source anchor of the range
// and semantic validations, with the sweep and grant forms front and
// center: the directive keyword for whole-directive problems, the name
// for name problems, the offending value expression for range problems.
func TestFromDSLErrorPositions(t *testing.T) {
	cases := []struct {
		name, src string
		line, col int
		want      string
	}{
		{"sweep range too wide", "mesh 1\nsweep P 1 .. 40\nrun P\n", 2, 1, "spans 40 points"},
		{"sweep range empty", "mesh 1\nsweep P 5 .. 2\nrun P\n", 2, 1, "empty sweep range [5, 2]"},
		{"sweep too many values", "mesh 1\nsweep P " + strings.Repeat("1 ", 33) + "\nrun P\n", 2, 1, "more than the 32-point limit"},
		{"sweep shadows builtin", "mesh 1\nsweep nodes 1 2\nrun nodes\n", 2, 7, "shadows a builtin"},
		{"sweep never used", "mesh 1\nsweep P 1 2\nrun 10\n", 2, 7, `sweep parameter "P" is never used`},
		{"sweep value uses const", "mesh 1\nconst A 4\nsweep P A 8\nrun P\n", 3, 9, "unknown identifier"},
		{"swept mesh dim zero", "sweep P 0 1\nmesh P\nrun 10\n", 2, 6, "out of range"},
		{"swept mesh too big", "sweep P 1 32\nmesh P 32 2\nrun 10\n", 2, 1, "node limit"},
		{"grant node out of range", "mesh 2\ngrant node=2 reg=1 perms=r addr=0\nrun 1\n", 2, 12, "node 2 out of range [0, 1]"},
		{"grant reg out of range", "mesh 1\ngrant reg=99 perms=r addr=0\nrun 1\n", 2, 11, "register 99 out of range [0, 15]"},
		{"grant seglen out of range", "mesh 1\ngrant reg=1 perms=r seglen=64 addr=0\nrun 1\n", 2, 28, "seglen 64 out of range [0, 63]"},
		{"grant perms not a word", "mesh 1\ngrant reg=1 perms=7 addr=0\nrun 1\n", 2, 19, "permission word"},
		{"grant perms bad char", "mesh 1\ngrant reg=1 perms=rq addr=0\nrun 1\n", 2, 19, `unknown permission "q"`},
		{"grant vthread out of range", "mesh 1\ngrant vthread=4 reg=1 perms=r addr=0\nrun 1\n", 2, 15, "vthread 4 out of range"},
		{"mesh dim expr out of range", "mesh 2*20\nrun 1\n", 1, 6, "mesh dimension 40 out of range"},
		{"budget out of range", "mesh 1\nrun 16-16\n", 2, 7, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			lowerErrAt(t, c.src, c.line, c.col, c.want)
		})
	}
}

// TestFromDSLLowering checks the structural output of a successful
// lowering: load expansion across nodes, deferred address evaluation,
// and float pokes.
func TestFromDSLLowering(t *testing.T) {
	f, err := wdsl.Parse("t.wl", `
workload demo
mesh 2 2 1
const K 3

program p
    movi i1, #{home(node)+K}
    halt
end

load p on all vthread=1
phase warm
run 500
poke node=1 addr=home(1)+8 value=K*2
expect mem node=1 addr=home(1)+8 value=6
`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := FromDSL(f)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Title != "demo" || plan.Dims != [3]int{2, 2, 1} {
		t.Errorf("title/dims = %q/%v", plan.Title, plan.Dims)
	}
	// 4 loads (one per node) + run + poke + expect.
	if len(plan.Steps) != 7 {
		t.Fatalf("%d plan steps, want 7", len(plan.Steps))
	}
	env := Env{
		Nodes:              4,
		HomeBase:           func(i int) uint64 { return uint64(i) * 4096 },
		DIPRemoteWrite:     111,
		DIPRemoteWriteSync: 222,
	}
	for i := 0; i < 4; i++ {
		st := plan.Steps[i]
		if st.Kind != PlanLoad || st.Node != i || st.VThread != 1 {
			t.Fatalf("step %d = %+v", i, st)
		}
		src, err := st.Src(env)
		if err != nil {
			t.Fatal(err)
		}
		if want := "#" + strconv.Itoa(i*4096+3); !strings.Contains(src, want) {
			t.Errorf("node %d source %q lacks %s", i, src, want)
		}
	}
	if run := plan.Steps[4]; run.Kind != PlanRun || run.Budget != 500 || run.Phase != "warm" {
		t.Errorf("run step = %+v", run)
	}
	poke := plan.Steps[5]
	if addr, err := poke.Addr(env); err != nil || addr != 4104 {
		t.Errorf("poke addr = %d, %v", addr, err)
	}
	if v, err := poke.Value(env); err != nil || v != 6 {
		t.Errorf("poke value = %d, %v", v, err)
	}
}

// TestFromDSLGeneratorIdentity pins the generator-backed programs to the
// package's own generators: the lowered bundle must be the same
// isa.Program values, not re-assembled copies.
func TestFromDSLGeneratorIdentity(t *testing.T) {
	f, err := wdsl.Parse("t.wl", `
mesh 1
generate st stencil points=7 hthreads=2
load st on node 0
run 10
`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := FromDSL(f)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := plan.Steps[0].Progs(Env{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Stencil7(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != len(want.Programs) {
		t.Fatalf("%d programs, want %d", len(progs), len(want.Programs))
	}
	for i := range progs {
		if progs[i].Name != want.Programs[i].Name || progs[i].Len() != want.Programs[i].Len() {
			t.Errorf("program %d = %s/%d, want %s/%d", i,
				progs[i].Name, progs[i].Len(), want.Programs[i].Name, want.Programs[i].Len())
		}
	}
}
