package workload

// Machine-scale mesh workloads: generators for programs that keep every
// node of an arbitrarily large mesh busy, used by the scaling experiments,
// the parallel-engine benchmarks, and examples/bigmesh. Two families:
//
//   - MeshSmooth: a block-distributed 1-D smoothing pass (the grid-smooth
//     application generalized to any node count) — mostly local compute
//     with remote halo reads at chunk boundaries.
//   - NeighborExchangeSrc: bulk message passing — every node streams
//     remote stores into its successor's mailbox through the SEND
//     datapath, exercising injection, routing, handler dispatch, and the
//     return-to-sender throttle under all-node load.
//
// The generators emit assembly parameterized by resolved virtual
// addresses (the caller supplies its home-range layout), so they are
// independent of how the machine maps memory.

import (
	"fmt"
	"strings"
)

// Per-node home-range layout of the mesh workloads, in words relative to a
// node's home base, inside the default 4096-word home range. The regions
// are disjoint for every legal configuration: u occupies
// [512, 512+chunk) with chunk <= MeshMaxChunk, the mailbox occupies
// [1536, 1536+msgs) with msgs <= MeshMaxMsgs, and v occupies
// [2048, 2048+chunk) — so the smoothing and exchange workloads can even
// share one machine.
const (
	MeshUOffset = 512  // input chunk
	MeshMailbox = 1536 // NeighborExchange mailbox region
	MeshVOffset = 2048 // output chunk

	// MeshMaxChunk is the largest per-node chunk the layout supports.
	MeshMaxChunk = 1024
	// MeshMaxMsgs is the largest per-node mailbox the layout supports.
	MeshMaxMsgs = 512
)

// MeshSmooth is a block-distributed smoothing pass v[j] = u[j-1] + u[j] +
// u[j+1] over a grid of Nodes*Chunk elements, one chunk per node. Interior
// elements touch only node-local memory; each chunk's two boundary
// elements read halo values that may live on the neighbouring node.
type MeshSmooth struct {
	Nodes int
	Chunk int
}

// NewMeshSmooth distributes total grid elements over nodes. total must
// divide evenly and the resulting chunk must fit the layout.
func NewMeshSmooth(nodes, total int) (*MeshSmooth, error) {
	if nodes < 1 || total%nodes != 0 {
		return nil, fmt.Errorf("workload: %d grid elements do not divide over %d nodes", total, nodes)
	}
	chunk := total / nodes
	if chunk < 2 || chunk > MeshMaxChunk {
		return nil, fmt.Errorf("workload: chunk %d outside [2, %d]", chunk, MeshMaxChunk)
	}
	return &MeshSmooth{Nodes: nodes, Chunk: chunk}, nil
}

// Total is the grid size.
func (g *MeshSmooth) Total() int { return g.Nodes * g.Chunk }

// U is the staged input value of element j (computed on-node by StageSrc
// and on the host for verification).
func (g *MeshSmooth) U(j int) uint64 { return uint64(j%17 + 1) }

// Want is the expected output value of element j (boundary elements are
// not written).
func (g *MeshSmooth) Want(j int) uint64 {
	if j <= 0 || j >= g.Total()-1 {
		return 0
	}
	return g.U(j-1) + g.U(j) + g.U(j+1)
}

// UAddr returns element j's input address under the caller's home layout.
func (g *MeshSmooth) UAddr(homeBase func(int) uint64, j int) uint64 {
	return homeBase(j/g.Chunk) + MeshUOffset + uint64(j%g.Chunk)
}

// VAddr returns element j's output address.
func (g *MeshSmooth) VAddr(homeBase func(int) uint64, j int) uint64 {
	return homeBase(j/g.Chunk) + MeshVOffset + uint64(j%g.Chunk)
}

// StageSrc returns node's staging program: a loop computing u[j] = j%17+1
// for the node's chunk (first-touching the u pages at their home), plus a
// first touch of every v page so the worker's stores stay local.
func (g *MeshSmooth) StageSrc(node int, homeBase func(int) uint64) string {
	lo := node * g.Chunk
	var b strings.Builder
	fmt.Fprintf(&b, `
    movi i1, #%d            ; &u[lo]
    movi i2, #%d            ; global element index j
    movi i3, #0
    movi i4, #%d            ; chunk
    movi i10, #17
sloop:
    mod i5, i2, i10
    add i5, i5, #1
    st [i1], i5
    add i1, i1, #1
    add i2, i2, #1
    add i3, i3, #1
    lt i6, i3, i4
    brt i6, sloop
`, g.UAddr(homeBase, lo), lo, g.Chunk)
	for off := 0; off < g.Chunk; off += 512 {
		fmt.Fprintf(&b, "    movi i1, #%d\n    movi i5, #0\n    st [i1], i5\n",
			g.VAddr(homeBase, lo+off))
	}
	b.WriteString("    halt\n")
	return b.String()
}

// WorkerSrc returns node's smoothing program: an interior sweep whose three
// u reads are all chunk-local, then the chunk's boundary elements with halo
// reads that may be remote. Global grid boundaries are clamped (elements 0
// and Total-1 are not written).
func (g *MeshSmooth) WorkerSrc(node int, homeBase func(int) uint64) string {
	lo, hi := node*g.Chunk, (node+1)*g.Chunk // global [lo, hi)
	wlo, whi := lo, hi                       // writable range after clamping
	if wlo == 0 {
		wlo = 1
	}
	if whi == g.Total() {
		whi = g.Total() - 1
	}
	var b strings.Builder
	intLo, intHi := lo+1, hi-1 // interior: all three u accesses local
	fmt.Fprintf(&b, `
    movi i1, #%d            ; &u[intLo-1]
    movi i2, #%d            ; &v[intLo]
    movi i3, #0
    movi i4, #%d            ; interior count
loop:
    ld i5, [i1]
    ld i6, [i1+1]
    ld i7, [i1+2]
    add i8, i5, i6
    add i8, i8, i7
    st [i2], i8
    add i1, i1, #1
    add i2, i2, #1
    add i3, i3, #1
    lt i9, i3, i4
    brt i9, loop
`, g.UAddr(homeBase, intLo-1), g.VAddr(homeBase, intLo), intHi-intLo)
	// Boundary elements (halo reads may be remote).
	for _, j := range []int{lo, hi - 1} {
		if j < wlo || j >= whi || (j > lo && j < hi-1) {
			continue
		}
		fmt.Fprintf(&b, `
    movi i1, #%d
    ld i5, [i1]
    movi i1, #%d
    ld i6, [i1]
    movi i1, #%d
    ld i7, [i1]
    add i8, i5, i6
    add i8, i8, i7
    movi i1, #%d
    st [i1], i8
`, g.UAddr(homeBase, j-1), g.UAddr(homeBase, j), g.UAddr(homeBase, j+1),
			g.VAddr(homeBase, j))
	}
	b.WriteString("    halt\n")
	return b.String()
}

// NeighborExchangeSrc returns node's program for the bulk message-passing
// workload: msgs remote stores streamed into the successor node's mailbox
// via SEND (value = destination address, so the result is self-checking:
// mailbox word w of node n must equal its own address). dip must be the
// runtime's remote-write dispatch pointer; the program runs privileged.
// Every node sends and every node's message handler receives
// simultaneously, so the network, the hardware queues, and the throttle
// protocol all run under full load.
func NeighborExchangeSrc(node, nodes, msgs int, dip uint64, homeBase func(int) uint64) string {
	if msgs > MeshMaxMsgs {
		panic(fmt.Sprintf("workload: %d messages exceed the %d-word mailbox region", msgs, MeshMaxMsgs))
	}
	dst := (node + 1) % nodes
	base := homeBase(dst) + MeshMailbox
	return fmt.Sprintf(`
    movi i1, #%d            ; successor mailbox base
    movi i3, #%d            ; remote-write DIP
    movi i5, #0
    movi i6, #%d            ; message count
loop:
    add i8, i1, i5          ; body word: value = destination address
    add i9, i1, i5          ; destination address
    send i9, i3, i8, #1
    add i5, i5, #1
    lt i7, i5, i6
    brt i7, loop
    halt
`, base, dip, msgs)
}

// NeighborExchangeAddr returns the mailbox address of word w at node n,
// for host-side verification.
func NeighborExchangeAddr(homeBase func(int) uint64, n, w int) uint64 {
	return homeBase(n) + MeshMailbox + uint64(w)
}
