package workload

// Lowering of the declarative workload DSL (internal/wdsl) onto this
// package's generator primitives and the MAP assembler. FromDSL is the
// validate-and-lower half of the pipeline described in DESIGN.md ("The
// workload DSL"):
//
//	parse (wdsl.Parse) -> validate + lower (workload.FromDSL) -> execute (core)
//
// The output is a Plan: a flat list of executable steps (map, poke, load,
// run, expect, check) whose machine-dependent values — virtual addresses
// under the runtime's home mapping, the runtime's dispatch instruction
// pointers — are deferred behind closures taking an Env. Everything that
// can be resolved statically (node indices, thread slots, cycle budgets,
// generator parameters) is resolved and range-checked here, so a bad
// scenario fails with a positional error before a machine is ever built.
//
// Determinism: a DSL scenario lowers onto the *same* generator functions
// and the same assembler the hand-written experiments use — `generate
// smooth_stage` calls MeshSmooth.StageSrc, `generate stencil` returns the
// exact isa.Program values of Stencil7/Stencil27 — so a DSL re-expression
// of a hand-coded workload produces bit-identical simulated metrics under
// every engine (see TestDSLMatchesHandWritten in internal/core).

import (
	"fmt"
	"math"
	"time"

	"repro/internal/gp"
	"repro/internal/isa"
	"repro/internal/wdsl"
)

// Env supplies the machine-dependent bindings a lowered Plan needs at
// execution time. The executor (core.Scenario) fills it from the booted
// simulator: the home mapping and the software runtime's registered
// dispatch instruction pointers.
type Env struct {
	Nodes              int
	HomeBase           func(int) uint64 // first virtual word homed on node i
	DIPRemoteWrite     uint64           // rt.DIPRemoteWrite ("dip")
	DIPRemoteWriteSync uint64           // rt.DIPRemoteWriteSync ("dipsync")
}

// PeekFn reads one word of a node's memory (core.Sim.Peek).
type PeekFn func(node int, addr uint64) (uint64, error)

// PlanStepKind enumerates executable plan steps.
type PlanStepKind int

const (
	PlanMapLocal  PlanStepKind = iota // prime a local read/write page
	PlanPoke                          // write a word through the boot path
	PlanLoad                          // load program(s) on one node
	PlanRun                           // run the machine under a budget
	PlanExpectReg                     // assert an integer register value
	PlanExpectMem                     // assert a memory word
	PlanCheck                         // builtin whole-workload check
	PlanGrant                         // place a guarded pointer in a register
)

// PlanStep is one lowered step. Which fields are set depends on Kind;
// Pos carries the source position for runtime error messages.
type PlanStep struct {
	Kind PlanStepKind
	Pos  string

	Node, VThread, Cluster int
	Page                   uint64
	Budget                 int64
	Phase                  string
	Reg                    int
	Float                  bool // expect fmem: compare as float64 bits

	// PlanLoad: load the program without the privileged bit, so its
	// memory and SEND operands must go through guarded pointers placed
	// by PlanGrant steps.
	User bool

	// PlanGrant: the pointer's permission bits and segment-length
	// exponent (segment size 1 << SegLen words, naturally aligned); the
	// target address is the deferred Addr below.
	Perms  gp.Perm
	SegLen uint8

	// Deferred values (evaluated under the execution Env).
	Addr, Value func(Env) (uint64, error)

	// Program sources: exactly one of Src / Progs is set on PlanLoad.
	// Src yields assembly text to assemble-and-load on (Node, VThread,
	// Cluster); Progs yields a pre-assembled bundle loaded on clusters
	// Cluster, Cluster+1, ...
	Src   func(Env) (string, error)
	Progs func(Env) ([]*isa.Program, error)

	// Check verifies a whole workload post-run (PlanCheck).
	Check func(Env, PeekFn) error
}

// Plan is a lowered, validated scenario ready for execution by the core
// package.
type Plan struct {
	Title   string
	Dims    [3]int
	Caching bool
	// Deadline and CycleBudget are the scenario's supervision bounds
	// (the deadline/budget directives): the executor runs the plan under
	// internal/guard with these as the wall-clock and total-cycle
	// watchdogs. Zero means unbounded. Neither affects simulated state.
	Deadline    time.Duration
	CycleBudget int64
	Steps       []PlanStep
	// Sweep is non-nil for sweep scenarios: Steps is then the shared
	// sweep-independent staging prefix (executed once, forked per
	// point), and each Sweep.Points[i].Steps is one point's suffix. Dims
	// and CycleBudget mirror point 0. See sweep.go.
	Sweep *SweepPlan
}

// Mesh size limits for DSL scenarios: generous for experiments, tight
// enough that a typo'd dimension fails validation instead of trying to
// allocate a million-node machine.
const (
	maxMeshDim   = 32
	maxMeshNodes = 1024
)

// lowerer carries the shared state of one FromDSL run.
type lowerer struct {
	f     *wdsl.File
	nodes int
	vars  map[string]int64 // consts + nodes (static bindings)
}

// FromDSL validates a parsed DSL file and lowers it to an executable
// Plan. All errors are positional (*wdsl.Error). A file with a sweep
// directive lowers to a Plan with a non-nil Sweep (see sweep.go).
func FromDSL(f *wdsl.File) (*Plan, error) {
	if f.Sweep != nil {
		return fromDSLSweep(f)
	}
	dims, nodes, err := evalMesh(f, nil)
	if err != nil {
		return nil, err
	}
	lo, err := newLowerer(f, nodes, nil)
	if err != nil {
		return nil, err
	}

	p := &Plan{Title: f.Title, Dims: dims, Caching: f.Caching, Deadline: f.Deadline}
	if p.CycleBudget, err = lo.budget(); err != nil {
		return nil, err
	}
	for _, s := range f.Steps {
		steps, err := lo.lowerStep(s)
		if err != nil {
			return nil, err
		}
		p.Steps = append(p.Steps, steps...)
	}
	return p, nil
}

// evalMesh evaluates the mesh directive's dimension expressions and
// range-checks them. extra supplies the only non-literal bindings a
// mesh dimension may reference (the sweep parameter, for swept meshes);
// consts are deliberately unavailable, as consts may themselves depend
// on the node count.
func evalMesh(f *wdsl.File, extra map[string]int64) ([3]int, int, error) {
	if f.MeshExprs[0] == nil {
		return [3]int{}, 0, errAt(f, wdsl.Pos{Line: 1, Col: 1}, "scenario has no mesh directive")
	}
	env := &wdsl.EvalEnv{File: f.Name, Vars: extra}
	var dims [3]int
	for i, e := range f.MeshExprs {
		d, err := wdsl.Eval(e, env)
		if err != nil {
			return [3]int{}, 0, err
		}
		if d < 1 || d > maxMeshDim {
			return [3]int{}, 0, errAt(f, f.MeshDimPos[i], "mesh dimension %d out of range [1, %d]", d, maxMeshDim)
		}
		dims[i] = int(d)
	}
	nodes := dims[0] * dims[1] * dims[2]
	if nodes > maxMeshNodes {
		return [3]int{}, 0, errAt(f, f.MeshPos, "mesh has %d nodes, more than the %d-node limit", nodes, maxMeshNodes)
	}
	return dims, nodes, nil
}

// newLowerer builds a lowerer for one (mesh size, extra bindings)
// combination, evaluating every const declaration under it. extra binds
// the sweep parameter for sweep lowering; nil otherwise.
func newLowerer(f *wdsl.File, nodes int, extra map[string]int64) (*lowerer, error) {
	vars := map[string]int64{"nodes": int64(nodes)}
	for k, v := range extra {
		vars[k] = v
	}
	lo := &lowerer{f: f, nodes: nodes, vars: vars}
	for _, c := range f.Consts {
		if _, dup := lo.vars[c.Name]; dup {
			return nil, errAt(f, c.Pos, "constant %q redeclared (or shadows a builtin)", c.Name)
		}
		v, err := wdsl.Eval(c.Expr, &wdsl.EvalEnv{File: f.Name, Vars: lo.vars})
		if err != nil {
			return nil, err
		}
		lo.vars[c.Name] = v
	}
	return lo, nil
}

// budget evaluates the file's budget directive under this lowerer's
// bindings; 0 when absent.
func (lo *lowerer) budget() (int64, error) {
	if lo.f.Budget == nil {
		return 0, nil
	}
	return lo.staticIn(lo.f.Budget, 0, "budget", 1, 1<<40, lo.f.BudgetPos)
}

// errAt builds a positional error against the file.
func errAt(f *wdsl.File, pos wdsl.Pos, format string, args ...any) *wdsl.Error {
	return &wdsl.Error{File: f.Name, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// static evaluates an expression that must not depend on the execution
// environment (no node, home(), or dip bindings).
func (lo *lowerer) static(e wdsl.Expr) (int64, error) {
	return wdsl.Eval(e, &wdsl.EvalEnv{File: lo.f.Name, Vars: lo.vars})
}

// staticIn evaluates e (nil means dflt) and range-checks it.
func (lo *lowerer) staticIn(e wdsl.Expr, dflt int64, name string, min, max int64, at wdsl.Pos) (int64, error) {
	if e == nil {
		return dflt, nil
	}
	v, err := lo.static(e)
	if err != nil {
		return 0, err
	}
	if v < min || v > max {
		return 0, errAt(lo.f, e.Pos(), "%s %d out of range [%d, %d]", name, v, min, max)
	}
	return v, nil
}

// runEnv builds the evaluation environment for deferred expressions:
// the static bindings plus dip/dipsync and home(), and optionally the
// current node.
func (lo *lowerer) runEnv(env Env, node int) *wdsl.EvalEnv {
	vars := make(map[string]int64, len(lo.vars)+3)
	for k, v := range lo.vars {
		vars[k] = v
	}
	vars["dip"] = int64(env.DIPRemoteWrite)
	vars["dipsync"] = int64(env.DIPRemoteWriteSync)
	if node >= 0 {
		vars["node"] = int64(node)
	}
	nodes := env.Nodes
	home := env.HomeBase
	return &wdsl.EvalEnv{
		File: lo.f.Name,
		Vars: vars,
		Home: func(n int64) (int64, error) {
			if n < 0 || n >= int64(nodes) {
				return 0, fmt.Errorf("home(%d): node outside the %d-node mesh", n, nodes)
			}
			return int64(home(int(n))), nil
		},
	}
}

// deferExpr wraps an expression into an Env-deferred uint64 closure.
func (lo *lowerer) deferExpr(e wdsl.Expr) func(Env) (uint64, error) {
	return func(env Env) (uint64, error) {
		v, err := wdsl.Eval(e, lo.runEnv(env, -1))
		return uint64(v), err
	}
}

// constValue wraps a known value into the deferred-closure shape.
func constValue(v uint64) func(Env) (uint64, error) {
	return func(Env) (uint64, error) { return v, nil }
}

func (lo *lowerer) lowerStep(s *wdsl.Step) ([]PlanStep, error) {
	pos := fmt.Sprintf("%s:%d:%d", lo.f.Name, s.Pos.Line, s.Pos.Col)
	switch s.Kind {
	case wdsl.StepMapLocal:
		node, err := lo.staticIn(s.Node, 0, "node", 0, int64(lo.nodes)-1, s.Pos)
		if err != nil {
			return nil, err
		}
		page, err := lo.staticIn(s.Page, 0, "page", 0, 1<<40, s.Pos)
		if err != nil {
			return nil, err
		}
		return []PlanStep{{Kind: PlanMapLocal, Pos: pos, Node: int(node), Page: uint64(page)}}, nil

	case wdsl.StepPoke:
		node, err := lo.staticIn(s.Node, 0, "node", 0, int64(lo.nodes)-1, s.Pos)
		if err != nil {
			return nil, err
		}
		st := PlanStep{Kind: PlanPoke, Pos: pos, Node: int(node), Addr: lo.deferExpr(s.Addr)}
		if s.Float != nil {
			st.Value = constValue(math.Float64bits(*s.Float))
		} else {
			st.Value = lo.deferExpr(s.Value)
		}
		return []PlanStep{st}, nil

	case wdsl.StepRun:
		budget, err := lo.staticIn(s.Budget, 0, "cycle budget", 1, 1<<40, s.Pos)
		if err != nil {
			return nil, err
		}
		return []PlanStep{{Kind: PlanRun, Pos: pos, Phase: s.Phase, Budget: budget}}, nil

	case wdsl.StepLoad:
		return lo.lowerLoad(s, pos)

	case wdsl.StepExpect:
		return lo.lowerExpect(s, pos)

	case wdsl.StepCheck:
		return lo.lowerCheck(s, pos)

	case wdsl.StepGrant:
		return lo.lowerGrant(s, pos)
	}
	return nil, errAt(lo.f, s.Pos, "internal: unhandled step kind %d", s.Kind)
}

// lowerGrant lowers a grant step: a guarded pointer with the given
// permissions, segment length, and (deferred) address placed in an
// integer register of the target thread.
func (lo *lowerer) lowerGrant(s *wdsl.Step, pos string) ([]PlanStep, error) {
	node, err := lo.staticIn(s.Args["node"], 0, "node", 0, int64(lo.nodes)-1, s.Pos)
	if err != nil {
		return nil, err
	}
	vt, err := lo.staticIn(s.Args["vthread"], 0, "vthread", 0, int64(isa.NumUserSlots)-1, s.Pos)
	if err != nil {
		return nil, err
	}
	cl, err := lo.staticIn(s.Args["cluster"], 0, "cluster", 0, int64(isa.NumClusters)-1, s.Pos)
	if err != nil {
		return nil, err
	}
	reg, err := lo.staticIn(s.Args["reg"], 0, "register", 0, 15, s.Pos)
	if err != nil {
		return nil, err
	}
	segLen, err := lo.staticIn(s.Args["seglen"], 0, "seglen", 0, int64(gp.MaxSegLen), s.Pos)
	if err != nil {
		return nil, err
	}
	permsExpr := s.Args["perms"]
	name, ok := wdsl.IdentName(permsExpr)
	if !ok {
		return nil, errAt(lo.f, permsExpr.Pos(), "perms= wants a permission word like rw (chars r, w, x, k)")
	}
	var perms gp.Perm
	for _, ch := range name {
		switch ch {
		case 'r':
			perms |= gp.PermRead
		case 'w':
			perms |= gp.PermWrite
		case 'x':
			perms |= gp.PermExecute
		case 'k':
			perms |= gp.PermKey
		default:
			return nil, errAt(lo.f, permsExpr.Pos(), "unknown permission %q in perms=%s (valid: r, w, x, k)", string(ch), name)
		}
	}
	st := PlanStep{
		Kind: PlanGrant, Pos: pos,
		Node: int(node), VThread: int(vt), Cluster: int(cl), Reg: int(reg),
		Perms: perms, SegLen: uint8(segLen),
		Addr: lo.deferExpr(s.Args["addr"]),
	}
	return []PlanStep{st}, nil
}

func (lo *lowerer) lowerExpect(s *wdsl.Step, pos string) ([]PlanStep, error) {
	node, err := lo.staticIn(s.Node, 0, "node", 0, int64(lo.nodes)-1, s.Pos)
	if err != nil {
		return nil, err
	}
	st := PlanStep{Pos: pos, Node: int(node)}
	switch s.ExpectKind {
	case "reg":
		vt, err := lo.staticIn(s.VThread, 0, "vthread", 0, int64(isa.NumUserSlots)-1, s.Pos)
		if err != nil {
			return nil, err
		}
		cl, err := lo.staticIn(s.Cluster, 0, "cluster", 0, int64(isa.NumClusters)-1, s.Pos)
		if err != nil {
			return nil, err
		}
		reg, err := lo.staticIn(s.Reg, 0, "register", 0, 15, s.Pos)
		if err != nil {
			return nil, err
		}
		st.Kind = PlanExpectReg
		st.VThread, st.Cluster, st.Reg = int(vt), int(cl), int(reg)
		st.Value = lo.deferExpr(s.Value)
	case "mem":
		st.Kind = PlanExpectMem
		st.Addr = lo.deferExpr(s.Addr)
		st.Value = lo.deferExpr(s.Value)
	case "fmem":
		st.Kind = PlanExpectMem
		st.Float = true
		st.Addr = lo.deferExpr(s.Addr)
		st.Value = constValue(math.Float64bits(*s.Float))
	default:
		return nil, errAt(lo.f, s.Pos, "unknown expect kind %q", s.ExpectKind)
	}
	return []PlanStep{st}, nil
}

// lowerLoad expands a load directive into one PlanLoad per target node.
func (lo *lowerer) lowerLoad(s *wdsl.Step, pos string) ([]PlanStep, error) {
	decl := lo.f.Lookup(s.Prog)
	if decl == nil {
		return nil, errAt(lo.f, s.ProgPos, "undefined program %q", s.Prog)
	}
	var nodeLo, nodeHi int64
	switch {
	case s.OnAll:
		nodeLo, nodeHi = 0, int64(lo.nodes)-1
	case s.NodeHi == nil:
		n, err := lo.staticIn(s.NodeLo, 0, "node", 0, int64(lo.nodes)-1, s.Pos)
		if err != nil {
			return nil, err
		}
		nodeLo, nodeHi = n, n
	default:
		var err error
		if nodeLo, err = lo.staticIn(s.NodeLo, 0, "node", 0, int64(lo.nodes)-1, s.Pos); err != nil {
			return nil, err
		}
		if nodeHi, err = lo.staticIn(s.NodeHi, 0, "node", 0, int64(lo.nodes)-1, s.Pos); err != nil {
			return nil, err
		}
		if nodeHi < nodeLo {
			return nil, errAt(lo.f, s.Pos, "empty node range [%d, %d]", nodeLo, nodeHi)
		}
	}
	vt, err := lo.staticIn(s.VThread, 0, "vthread", 0, int64(isa.NumUserSlots)-1, s.Pos)
	if err != nil {
		return nil, err
	}
	cl, err := lo.staticIn(s.Cluster, 0, "cluster", 0, int64(isa.NumClusters)-1, s.Pos)
	if err != nil {
		return nil, err
	}

	src, progs, span, err := lo.resolveProgram(decl)
	if err != nil {
		return nil, err
	}
	if int(cl)+span > isa.NumClusters {
		return nil, errAt(lo.f, s.Pos, "program %q spans %d clusters starting at %d, beyond the chip's %d",
			s.Prog, span, cl, isa.NumClusters)
	}

	var out []PlanStep
	for n := nodeLo; n <= nodeHi; n++ {
		st := PlanStep{Kind: PlanLoad, Pos: pos, Node: int(n), VThread: int(vt), Cluster: int(cl), User: s.User}
		if progs != nil {
			st.Progs = progs
		} else {
			node := int(n)
			st.Src = func(env Env) (string, error) { return src(env, node) }
		}
		out = append(out, st)
	}
	return out, nil
}

// resolveProgram turns a program declaration into either a per-node
// source closure or a pre-assembled program bundle, plus the bundle's
// cluster span.
func (lo *lowerer) resolveProgram(decl *wdsl.ProgramDecl) (func(Env, int) (string, error), func(Env) ([]*isa.Program, error), int, error) {
	if decl.Gen == nil {
		src := func(env Env, node int) (string, error) {
			return decl.Instantiate(lo.runEnv(env, node))
		}
		return src, nil, 1, nil
	}
	g := decl.Gen
	arg := func(name string) (int64, bool, error) {
		e, ok := g.Args[name]
		if !ok {
			return 0, false, nil
		}
		v, err := lo.static(e)
		return v, true, err
	}
	need := func(name string) (int64, error) {
		v, ok, err := arg(name)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, errAt(lo.f, g.Pos, "generator %q wants %s=", g.Kind, name)
		}
		return v, nil
	}
	reject := func(valid ...string) error {
		for k := range g.Args {
			if !containsStr(valid, k) {
				return errAt(lo.f, g.ArgPos[k], "generator %q does not take %s=", g.Kind, k)
			}
		}
		return nil
	}

	switch g.Kind {
	case "smooth_stage", "smooth_work":
		if err := reject("total"); err != nil {
			return nil, nil, 0, err
		}
		total, err := need("total")
		if err != nil {
			return nil, nil, 0, err
		}
		mesh, err := NewMeshSmooth(lo.nodes, int(total))
		if err != nil {
			return nil, nil, 0, errAt(lo.f, g.Pos, "%v", err)
		}
		stage := g.Kind == "smooth_stage"
		src := func(env Env, node int) (string, error) {
			if stage {
				return mesh.StageSrc(node, env.HomeBase), nil
			}
			return mesh.WorkerSrc(node, env.HomeBase), nil
		}
		return src, nil, 1, nil

	case "loopsync":
		if err := reject("hthreads", "iters"); err != nil {
			return nil, nil, 0, err
		}
		ht, err := need("hthreads")
		if err != nil {
			return nil, nil, 0, err
		}
		iters, err := need("iters")
		if err != nil {
			return nil, nil, 0, err
		}
		progs, err := LoopSync(int(ht), int(iters))
		if err != nil {
			return nil, nil, 0, errAt(lo.f, g.Pos, "%v", err)
		}
		return nil, func(Env) ([]*isa.Program, error) { return progs, nil }, len(progs), nil

	case "stencil":
		if err := reject("points", "hthreads"); err != nil {
			return nil, nil, 0, err
		}
		points, err := need("points")
		if err != nil {
			return nil, nil, 0, err
		}
		ht, err := need("hthreads")
		if err != nil {
			return nil, nil, 0, err
		}
		var st *Stencil
		switch points {
		case 7:
			st, err = Stencil7(int(ht))
		case 27:
			st, err = Stencil27(int(ht))
		default:
			err = fmt.Errorf("workload: stencil supports points=7 or points=27, not %d", points)
		}
		if err != nil {
			return nil, nil, 0, errAt(lo.f, g.Pos, "%v", err)
		}
		return nil, func(Env) ([]*isa.Program, error) { return st.Programs, nil }, len(st.Programs), nil

	case "spinloop":
		if err := reject("iters"); err != nil {
			return nil, nil, 0, err
		}
		iters, err := need("iters")
		if err != nil {
			return nil, nil, 0, err
		}
		p := SpinLoop(int(iters))
		return nil, func(Env) ([]*isa.Program, error) { return []*isa.Program{p}, nil }, 1, nil

	case "exchange":
		if err := reject("msgs"); err != nil {
			return nil, nil, 0, err
		}
		msgs, err := need("msgs")
		if err != nil {
			return nil, nil, 0, err
		}
		if msgs < 1 || msgs > MeshMaxMsgs {
			return nil, nil, 0, errAt(lo.f, g.Pos, "exchange msgs %d out of range [1, %d]", msgs, MeshMaxMsgs)
		}
		nodes := lo.nodes
		src := func(env Env, node int) (string, error) {
			return NeighborExchangeSrc(node, nodes, int(msgs), env.DIPRemoteWrite, env.HomeBase), nil
		}
		return src, nil, 1, nil
	}
	return nil, nil, 0, errAt(lo.f, g.Pos,
		"unknown generator %q (valid: smooth_stage, smooth_work, loopsync, stencil, spinloop, exchange)", g.Kind)
}

// lowerCheck lowers the builtin whole-workload verifications.
func (lo *lowerer) lowerCheck(s *wdsl.Step, pos string) ([]PlanStep, error) {
	arg := func(name string) (int64, error) {
		e, ok := s.Args[name]
		if !ok {
			return 0, errAt(lo.f, s.Pos, "check %s wants %s=", s.CheckKind, name)
		}
		return lo.static(e)
	}
	switch s.CheckKind {
	case "smooth":
		total, err := arg("total")
		if err != nil {
			return nil, err
		}
		mesh, err := NewMeshSmooth(lo.nodes, int(total))
		if err != nil {
			return nil, errAt(lo.f, s.Pos, "%v", err)
		}
		check := func(env Env, peek PeekFn) error {
			for j := 1; j < mesh.Total()-1; j++ {
				got, err := peek(j/mesh.Chunk, mesh.VAddr(env.HomeBase, j))
				if err != nil {
					return fmt.Errorf("v[%d]: %w", j, err)
				}
				if got != mesh.Want(j) {
					return fmt.Errorf("v[%d] = %d, want %d", j, got, mesh.Want(j))
				}
			}
			return nil
		}
		return []PlanStep{{Kind: PlanCheck, Pos: pos, Check: check}}, nil

	case "exchange":
		msgs, err := arg("msgs")
		if err != nil {
			return nil, err
		}
		nodes := lo.nodes
		check := func(env Env, peek PeekFn) error {
			for n := 0; n < nodes; n++ {
				for w := 0; w < int(msgs); w++ {
					addr := NeighborExchangeAddr(env.HomeBase, n, w)
					got, err := peek(n, addr)
					if err != nil {
						return fmt.Errorf("mailbox %d.%d: %w", n, w, err)
					}
					if got != addr {
						return fmt.Errorf("mailbox %d.%d = %d, want %d", n, w, got, addr)
					}
				}
			}
			return nil
		}
		return []PlanStep{{Kind: PlanCheck, Pos: pos, Check: check}}, nil
	}
	return nil, errAt(lo.f, s.Pos, "unknown check %q (valid: smooth, exchange)", s.CheckKind)
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
