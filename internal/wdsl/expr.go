package wdsl

// The DSL's integer expression language. Expressions appear as directive
// arguments (`run ITERS*200+10000`, `expect mem addr=home(0)+1536 ...`)
// and inside `{...}` substitutions of program templates. The grammar is
// conventional:
//
//	expr    := term  (('+' | '-') term)*
//	term    := unary (('*' | '/' | '%' | '<<' | '>>') unary)*
//	unary   := '-' unary | primary
//	primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//
// Identifiers name `const` declarations, `repeat` loop variables, and the
// builtin bindings nodes, node (inside per-node program templates), dip,
// and dipsync. Builtin functions: home(n) — the first virtual word homed
// on node n; xor(a,b); min(a,b); max(a,b). All arithmetic is int64;
// division or modulus by zero and out-of-range shifts are positional
// errors, never panics.

// Expr is a parsed expression; Eval computes it under an EvalEnv.
type Expr interface {
	Pos() Pos
}

type numExpr struct {
	p Pos
	v int64
}

type identExpr struct {
	p    Pos
	name string
}

type callExpr struct {
	p    Pos
	fn   string
	args []Expr
}

type unaryExpr struct {
	p Pos
	x Expr
}

type binExpr struct {
	p    Pos
	op   string
	x, y Expr
}

func (e *numExpr) Pos() Pos   { return e.p }
func (e *identExpr) Pos() Pos { return e.p }
func (e *callExpr) Pos() Pos  { return e.p }
func (e *unaryExpr) Pos() Pos { return e.p }
func (e *binExpr) Pos() Pos   { return e.p }

// EvalEnv supplies the bindings an expression may reference. Vars holds
// named integer bindings (consts, loop variables, node/nodes/dip/dipsync).
// Home resolves home(n); when nil, home() is reported as unavailable in
// the current context (e.g. inside const declarations, which must be
// static).
type EvalEnv struct {
	File string
	Vars map[string]int64
	Home func(n int64) (int64, error)
}

// Eval computes e under env. Every failure is a positional *Error.
func Eval(e Expr, env *EvalEnv) (int64, error) {
	switch e := e.(type) {
	case *numExpr:
		return e.v, nil
	case *identExpr:
		v, ok := env.Vars[e.name]
		if !ok {
			return 0, errAt(env.File, e.p, "unknown identifier %q", e.name)
		}
		return v, nil
	case *unaryExpr:
		v, err := Eval(e.x, env)
		if err != nil {
			return 0, err
		}
		return -v, nil
	case *callExpr:
		args := make([]int64, len(e.args))
		for i, a := range e.args {
			v, err := Eval(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return evalCall(e, args, env)
	case *binExpr:
		x, err := Eval(e.x, env)
		if err != nil {
			return 0, err
		}
		y, err := Eval(e.y, env)
		if err != nil {
			return 0, err
		}
		switch e.op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, errAt(env.File, e.p, "division by zero")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, errAt(env.File, e.p, "modulus by zero")
			}
			return x % y, nil
		case "<<", ">>":
			if y < 0 || y > 63 {
				return 0, errAt(env.File, e.p, "shift count %d out of range [0, 63]", y)
			}
			if e.op == "<<" {
				return x << uint(y), nil
			}
			return x >> uint(y), nil
		}
	}
	return 0, errAt(env.File, e.Pos(), "internal: unhandled expression")
}

// evalCall dispatches the builtin functions.
func evalCall(e *callExpr, args []int64, env *EvalEnv) (int64, error) {
	arity := func(n int) error {
		if len(args) != n {
			return errAt(env.File, e.p, "%s() wants %d argument(s), got %d", e.fn, n, len(args))
		}
		return nil
	}
	switch e.fn {
	case "home":
		if err := arity(1); err != nil {
			return 0, err
		}
		if env.Home == nil {
			return 0, errAt(env.File, e.p, "home() is not available in this context")
		}
		v, err := env.Home(args[0])
		if err != nil {
			return 0, errAt(env.File, e.p, "%v", err)
		}
		return v, nil
	case "xor":
		if err := arity(2); err != nil {
			return 0, err
		}
		return args[0] ^ args[1], nil
	case "min":
		if err := arity(2); err != nil {
			return 0, err
		}
		return min(args[0], args[1]), nil
	case "max":
		if err := arity(2); err != nil {
			return 0, err
		}
		return max(args[0], args[1]), nil
	}
	return 0, errAt(env.File, e.p, "unknown function %q (builtins: home, xor, min, max)", e.fn)
}

// IdentName reports the identifier named by e when e is a bare
// identifier reference, as in `perms=rw`: the grant step's perms
// argument rides the expression grammar but is really a permission
// string, which the lowering recovers with this accessor.
func IdentName(e Expr) (string, bool) {
	id, ok := e.(*identExpr)
	if !ok {
		return "", false
	}
	return id.name, true
}

// UsesIdent reports whether e references any identifier for which dep
// returns true. The sweep lowering uses it to split a scenario's steps
// into the sweep-independent staging prefix (executed once, forked per
// point) and the sweep-dependent suffix (lowered per point).
func UsesIdent(e Expr, dep func(string) bool) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *numExpr:
		return false
	case *identExpr:
		return dep(e.name)
	case *unaryExpr:
		return UsesIdent(e.x, dep)
	case *callExpr:
		for _, a := range e.args {
			if UsesIdent(a, dep) {
				return true
			}
		}
		return false
	case *binExpr:
		return UsesIdent(e.x, dep) || UsesIdent(e.y, dep)
	}
	return false
}

// parseExpr parses a greedy expression from the cursor: it consumes
// tokens as long as they can extend the expression, so `node=0 addr=...`
// stops cleanly at the next key.
func parseExpr(t *toks) (Expr, error) {
	x, err := parseTerm(t)
	if err != nil {
		return nil, err
	}
	for {
		tk := t.peek()
		if tk.kind != tokPunct || tk.text != "+" && tk.text != "-" {
			return x, nil
		}
		t.next()
		y, err := parseTerm(t)
		if err != nil {
			return nil, err
		}
		x = &binExpr{p: tk.pos, op: tk.text, x: x, y: y}
	}
}

func parseTerm(t *toks) (Expr, error) {
	x, err := parseUnary(t)
	if err != nil {
		return nil, err
	}
	for {
		tk := t.peek()
		if tk.kind != tokPunct {
			return x, nil
		}
		switch tk.text {
		case "*", "/", "%", "<<", ">>":
		default:
			return x, nil
		}
		t.next()
		y, err := parseUnary(t)
		if err != nil {
			return nil, err
		}
		x = &binExpr{p: tk.pos, op: tk.text, x: x, y: y}
	}
}

func parseUnary(t *toks) (Expr, error) {
	tk := t.peek()
	if tk.kind == tokPunct && tk.text == "-" {
		t.next()
		x, err := parseUnary(t)
		if err != nil {
			return nil, err
		}
		return &unaryExpr{p: tk.pos, x: x}, nil
	}
	return parsePrimary(t)
}

func parsePrimary(t *toks) (Expr, error) {
	tk := t.peek()
	switch tk.kind {
	case tokNumber:
		t.next()
		return &numExpr{p: tk.pos, v: tk.ival}, nil
	case tokIdent:
		t.next()
		if p := t.peek(); p.kind == tokPunct && p.text == "(" {
			t.next()
			call := &callExpr{p: tk.pos, fn: tk.text}
			for {
				arg, err := parseExpr(t)
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, arg)
				p := t.peek()
				if p.kind == tokPunct && p.text == "," {
					t.next()
					continue
				}
				break
			}
			if err := t.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &identExpr{p: tk.pos, name: tk.text}, nil
	case tokPunct:
		if tk.text == "(" {
			t.next()
			x, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			if err := t.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, errAt(t.file, tk.pos, "expected expression, got %s", tk.describe())
}

// parseExprString parses a complete expression from a standalone string
// (a {...} template substitution); the whole string must be consumed.
func parseExprString(file string, line, col0 int, s string) (Expr, error) {
	list, err := lexLine(file, line, col0, s)
	if err != nil {
		return nil, err
	}
	t := &toks{file: file, list: list}
	e, err := parseExpr(t)
	if err != nil {
		return nil, err
	}
	if tk := t.peek(); tk.kind != tokEOL {
		return nil, errAt(file, tk.pos, "unexpected %s in expression", tk.describe())
	}
	return e, nil
}
