// Package wdsl parses the declarative workload DSL: a small text format
// (conventionally *.wl files) describing a mesh machine, data placement,
// message patterns, compute phases, and expected results, which
// internal/workload lowers onto the existing program generators and the
// MAP assembler. See docs/wdsl.md for the language reference and
// DESIGN.md ("The workload DSL") for the lowering pipeline and its
// determinism guarantees.
//
// A scenario file reads like this fragment of
// testdata/workloads/ringreduce.wl (abridged: the full file also
// declares the mailbox-touch staging phase and node 0's seed program,
// without which the relays below would wait forever):
//
//	workload "ring all-reduce"
//	mesh 4
//	const MB 320
//
//	program relay
//	    movi i4, #{home(node) + MB}
//	    ldsy.fe i5, [i4]
//	    add i5, i5, #{node + 1}
//	    movi i1, #{home((node + 1) % nodes) + MB}
//	    movi i2, #{dipsync}
//	    send i1, i2, i5, #1
//	    halt
//	end
//
//	load relay on nodes 1 nodes-1
//	run 300000
//	expect reg node=0 reg=5 value=nodes*(nodes+1)/2
//
// The package only parses and evaluates; it knows nothing about the
// simulator. Parse produces a *File (the AST), and every syntactic or
// semantic failure — here and in the downstream lowering — is a
// positional *Error ("file:line:col: message"), never a panic.
package wdsl

import (
	"fmt"
	"strings"
	"time"
)

// File is the parsed form of one .wl scenario.
type File struct {
	Name    string // diagnostics name (usually the file path)
	Title   string // from the workload directive; "" if absent
	Mesh    [3]int // X, Y, Z when all dims are literals; zero otherwise
	MeshPos Pos
	// MeshDimPos holds each dimension token's position (the directive's
	// position for defaulted trailing dims), so range errors in the
	// lowering can point at the offending number.
	MeshDimPos [3]Pos
	// MeshExprs holds each dimension as an expression (all non-nil once a
	// mesh directive was seen; defaulted trailing dims are the literal 1).
	// Dimensions are usually integer literals — then Mesh mirrors their
	// values — but may reference a sweep parameter (`mesh N` under
	// `sweep N ...`), which the lowering evaluates per sweep point.
	MeshExprs [3]Expr
	Caching   bool
	// Sweep is the scenario's parameter sweep declaration; nil when
	// absent. At most one sweep directive per scenario.
	Sweep *Sweep
	// Deadline is the scenario's wall-clock watchdog (the deadline
	// directive, e.g. `deadline 30s`); 0 when absent. Budget is its
	// cycle-count watchdog (`budget EXPR`, evaluated against the consts
	// during lowering); nil when absent. Both are supervision bounds for
	// internal/guard — they never alter simulated state, only when a
	// runaway scenario is cut off.
	Deadline    time.Duration
	DeadlinePos Pos
	Budget      Expr
	BudgetPos   Pos
	Consts      []Const
	// Programs in declaration order; Lookup finds one by name.
	Programs []*ProgramDecl
	Steps    []*Step
}

// Lookup returns the named program declaration, or nil.
func (f *File) Lookup(name string) *ProgramDecl {
	for _, p := range f.Programs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Const is one named constant declaration.
type Const struct {
	Pos  Pos
	Name string
	Expr Expr
}

// Sweep is a parameter sweep declaration: `sweep NAME V1 V2 ...` lists
// the parameter's values outright, `sweep NAME LO .. HI` sweeps an
// inclusive integer range. Exactly one of Values / (Lo, Hi) is set; all
// expressions must be static (consts and literals — no node, home(), or
// dip bindings). The lowering produces one experiment per value, forking
// the shared staging prefix once per point (see workload.SweepPlan and
// DESIGN.md "Workload DSL v2").
type Sweep struct {
	Pos     Pos
	Name    string
	NamePos Pos
	Values  []Expr
	Lo, Hi  Expr
}

// ProgramDecl declares a loadable program: either an inline MAP assembly
// template (Body != nil) or a generator invocation (Gen != nil).
type ProgramDecl struct {
	Pos  Pos
	Name string
	Gen  *GenSpec
	Body []TemplNode
}

// GenSpec names one of the built-in workload generators
// (internal/workload) with its keyword arguments; the lowering in
// workload.FromDSL resolves the kind.
type GenSpec struct {
	Pos    Pos
	Kind   string
	Args   map[string]Expr
	ArgPos map[string]Pos
}

// TemplNode is one node of a program template body: a TemplLine or a
// Repeat block.
type TemplNode interface{ templNode() }

// TemplLine is one assembly source line, split at {expr} substitutions.
type TemplLine struct {
	Pos   Pos
	Parts []TemplPart
}

// TemplPart is a literal run or one substitution expression.
type TemplPart struct {
	Lit  string
	Expr Expr // non-nil for a substitution
}

// Repeat is an unrolled loop: Body is instantiated once per value of Var
// in [Lo, Hi] inclusive.
type Repeat struct {
	Pos    Pos
	Var    string
	Lo, Hi Expr
	Body   []TemplNode
}

func (*TemplLine) templNode() {}
func (*Repeat) templNode()    {}

// StepKind enumerates the scenario step directives.
type StepKind int

const (
	StepLoad     StepKind = iota // load a program onto one or more nodes
	StepRun                      // advance the machine under a cycle budget
	StepPoke                     // write a word of a node's memory
	StepMapLocal                 // prime a local read/write page mapping
	StepExpect                   // post-run assertion on a register or word
	StepCheck                    // builtin whole-workload verification
	StepGrant                    // place a guarded pointer in a register
)

// Step is one scenario step, in file order. Which fields are meaningful
// depends on Kind; unset expressions are nil.
type Step struct {
	Pos  Pos
	Kind StepKind

	// StepLoad
	Prog           string
	ProgPos        Pos
	OnAll          bool
	NodeLo, NodeHi Expr // single node when NodeHi == nil
	VThread        Expr // nil = 0
	Cluster        Expr // nil = 0
	// User marks an unprivileged load: the program runs without raw
	// addressing, so its memory and SEND operands must be guarded
	// pointers provisioned by grant steps.
	User bool

	// StepRun
	Phase  string // from the preceding phase directive, or ""
	Budget Expr

	// StepPoke / StepExpect / StepMapLocal
	Node       Expr
	Addr       Expr
	Value      Expr
	Float      *float64 // float= form of poke / expect fmem
	Reg        Expr
	Page       Expr
	ExpectKind string // "reg", "mem", or "fmem"

	// StepCheck / StepGrant (grant: node=, vthread=, cluster=, reg=,
	// perms=, seglen=, addr= — perms is a bare rwxk identifier parsed as
	// an expression; the lowering reads it with IdentName)
	CheckKind string
	Args      map[string]Expr
	ArgPos    map[string]Pos
}

// UsesIdent reports whether any expression in the program's body or
// generator arguments references an identifier for which dep returns
// true. Repeat blocks shadow their loop variable: references to Var
// inside the body don't count (the Lo/Hi bounds still do).
func (d *ProgramDecl) UsesIdent(dep func(string) bool) bool {
	if d.Gen != nil {
		for _, e := range d.Gen.Args {
			if UsesIdent(e, dep) {
				return true
			}
		}
	}
	return templUsesIdent(d.Body, dep)
}

func templUsesIdent(body []TemplNode, dep func(string) bool) bool {
	for _, n := range body {
		switch n := n.(type) {
		case *TemplLine:
			for _, part := range n.Parts {
				if part.Expr != nil && UsesIdent(part.Expr, dep) {
					return true
				}
			}
		case *Repeat:
			if UsesIdent(n.Lo, dep) || UsesIdent(n.Hi, dep) {
				return true
			}
			inner := func(name string) bool { return name != n.Var && dep(name) }
			if templUsesIdent(n.Body, inner) {
				return true
			}
		}
	}
	return false
}

// UsesIdent reports whether any of the step's expression arguments
// references an identifier for which dep returns true. Program
// references are not followed — callers resolve the program and check
// it separately (see workload.FromDSL's sweep prefix split).
func (s *Step) UsesIdent(dep func(string) bool) bool {
	for _, e := range []Expr{s.NodeLo, s.NodeHi, s.VThread, s.Cluster,
		s.Budget, s.Node, s.Addr, s.Value, s.Reg, s.Page} {
		if e != nil && UsesIdent(e, dep) {
			return true
		}
	}
	for _, e := range s.Args {
		if UsesIdent(e, dep) {
			return true
		}
	}
	return false
}

// Parse parses .wl source. name is used in diagnostics (pass the file
// path). The returned File is syntactically sound; semantic validation
// (mesh ranges, program references, argument sets) happens during
// lowering in workload.FromDSL so that it can use the machine limits.
func Parse(name, src string) (*File, error) {
	p := &parser{
		file:  name,
		f:     &File{Name: name},
		lines: strings.Split(src, "\n"),
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.f, nil
}

type parser struct {
	file  string
	f     *File
	lines []string
	i     int    // current line index
	phase string // pending phase name for the next run step
}

func (p *parser) run() error {
	seen := map[string]Pos{}
	for p.i = 0; p.i < len(p.lines); p.i++ {
		t, empty, err := p.lexCurrent()
		if err != nil {
			return err
		}
		if empty {
			continue
		}
		kw, err := t.expectIdent()
		if err != nil {
			return err
		}
		switch kw.text {
		case "workload":
			if err := p.parseWorkload(t); err != nil {
				return err
			}
		case "mesh":
			if err := p.parseMesh(t, kw.pos); err != nil {
				return err
			}
		case "sweep":
			if err := p.parseSweep(t, kw.pos); err != nil {
				return err
			}
		case "caching":
			if err := p.parseCaching(t); err != nil {
				return err
			}
		case "const":
			if err := p.parseConst(t); err != nil {
				return err
			}
		case "deadline":
			if err := p.parseDeadline(t, kw.pos); err != nil {
				return err
			}
		case "budget":
			if err := p.parseBudget(t, kw.pos); err != nil {
				return err
			}
		case "program", "generate":
			decl, err := p.parseProgram(t, kw)
			if err != nil {
				return err
			}
			if prev, dup := seen[decl.Name]; dup {
				return errAt(p.file, decl.Pos, "program %q already declared on line %d", decl.Name, prev.Line)
			}
			seen[decl.Name] = decl.Pos
			p.f.Programs = append(p.f.Programs, decl)
		case "phase":
			nameTok, err := t.expectIdent()
			if err != nil {
				return err
			}
			if err := t.expectEOL(); err != nil {
				return err
			}
			p.phase = nameTok.text
		case "maplocal", "poke", "load", "run", "expect", "check", "grant":
			step, err := p.parseStep(t, kw)
			if err != nil {
				return err
			}
			p.f.Steps = append(p.f.Steps, step)
		case "end":
			return errAt(p.file, kw.pos, "'end' outside a program or repeat block")
		case "repeat":
			return errAt(p.file, kw.pos, "'repeat' is only valid inside a program block")
		default:
			return errAt(p.file, kw.pos,
				"unknown directive %q (expected workload, mesh, sweep, caching, const, deadline, budget, program, generate, phase, maplocal, poke, load, run, expect, check, or grant)", kw.text)
		}
	}
	return nil
}

// lexCurrent tokenizes the current line; empty reports a blank or
// comment-only line.
func (p *parser) lexCurrent() (*toks, bool, error) {
	list, err := lexLine(p.file, p.i+1, 1, p.lines[p.i])
	if err != nil {
		return nil, false, err
	}
	if list[0].kind == tokEOL {
		return nil, true, nil
	}
	return &toks{file: p.file, list: list}, false, nil
}

func (p *parser) parseWorkload(t *toks) error {
	tk := t.peek()
	switch tk.kind {
	case tokString, tokIdent:
		t.next()
		p.f.Title = tk.text
	default:
		return errAt(p.file, tk.pos, "expected workload title (string or identifier), got %s", tk.describe())
	}
	return t.expectEOL()
}

func (p *parser) parseMesh(t *toks, pos Pos) error {
	if p.f.MeshExprs[0] != nil {
		return errAt(p.file, pos, "duplicate mesh directive")
	}
	exprs := [3]Expr{}
	dimPos := [3]Pos{pos, pos, pos}
	for i := 0; i < 3; i++ {
		tk := t.peek()
		if tk.kind == tokEOL {
			if i == 0 {
				return errAt(p.file, tk.pos, "mesh wants 1-3 integer dimensions")
			}
			break
		}
		dimPos[i] = tk.pos
		e, err := parseExpr(t)
		if err != nil {
			return err
		}
		exprs[i] = e
	}
	if err := t.expectEOL(); err != nil {
		return err
	}
	// Trailing dims default to 1.
	for i := range exprs {
		if exprs[i] == nil {
			exprs[i] = &numExpr{p: pos, v: 1}
		}
	}
	// Mirror all-literal meshes into the [3]int view so callers that only
	// need static dims (the common case) skip expression evaluation.
	allLit, dims := true, [3]int{}
	for i, e := range exprs {
		n, ok := e.(*numExpr)
		if !ok {
			allLit = false
			break
		}
		dims[i] = int(n.v)
	}
	if allLit {
		p.f.Mesh = dims
	}
	p.f.MeshPos = pos
	p.f.MeshDimPos = dimPos
	p.f.MeshExprs = exprs
	return nil
}

// parseSweep parses `sweep NAME V1 V2 ...` (explicit value list, at
// least two values) or `sweep NAME LO .. HI` (inclusive integer range).
func (p *parser) parseSweep(t *toks, pos Pos) error {
	if p.f.Sweep != nil {
		return errAt(p.file, pos, "duplicate sweep directive (one sweep per scenario)")
	}
	name, err := t.expectIdent()
	if err != nil {
		return err
	}
	sw := &Sweep{Pos: pos, Name: name.text, NamePos: name.pos}
	first, err := parseExpr(t)
	if err != nil {
		return err
	}
	if tk := t.peek(); tk.kind == tokPunct && tk.text == ".." {
		t.next()
		hi, err := parseExpr(t)
		if err != nil {
			return err
		}
		sw.Lo, sw.Hi = first, hi
	} else {
		sw.Values = []Expr{first}
		for t.peek().kind != tokEOL {
			v, err := parseExpr(t)
			if err != nil {
				return err
			}
			sw.Values = append(sw.Values, v)
		}
		if len(sw.Values) < 2 {
			return errAt(p.file, first.Pos(), "sweep wants at least two values (or LO .. HI)")
		}
	}
	if err := t.expectEOL(); err != nil {
		return err
	}
	p.f.Sweep = sw
	return nil
}

func (p *parser) parseCaching(t *toks) error {
	tk, err := t.expectIdent()
	if err != nil {
		return err
	}
	switch tk.text {
	case "on":
		p.f.Caching = true
	case "off":
		p.f.Caching = false
	default:
		return errAt(p.file, tk.pos, "caching wants 'on' or 'off', got %q", tk.text)
	}
	return t.expectEOL()
}

func (p *parser) parseConst(t *toks) error {
	name, err := t.expectIdent()
	if err != nil {
		return err
	}
	e, err := parseExpr(t)
	if err != nil {
		return err
	}
	if err := t.expectEOL(); err != nil {
		return err
	}
	p.f.Consts = append(p.f.Consts, Const{Pos: name.pos, Name: name.text, Expr: e})
	return nil
}

// parseDeadline parses `deadline NUMBER UNIT` (e.g. `deadline 30s`,
// `deadline 1.5m`). The lexer splits "30s" into a number and an
// identifier, so the unit is a separate token; ms, s, and m are accepted.
func (p *parser) parseDeadline(t *toks, pos Pos) error {
	if p.f.Deadline != 0 {
		return errAt(p.file, pos, "duplicate deadline directive")
	}
	num := t.peek()
	var v float64
	switch num.kind {
	case tokNumber:
		v = float64(num.ival)
	case tokFloat:
		v = num.fval
	default:
		return errAt(p.file, num.pos, "deadline wants a number with a unit (e.g. 30s, 500ms), got %s", num.describe())
	}
	t.next()
	unit, err := t.expectIdent()
	if err != nil {
		return err
	}
	var scale time.Duration
	switch unit.text {
	case "ms":
		scale = time.Millisecond
	case "s":
		scale = time.Second
	case "m":
		scale = time.Minute
	default:
		return errAt(p.file, unit.pos, "deadline unit must be ms, s, or m, got %q", unit.text)
	}
	if err := t.expectEOL(); err != nil {
		return err
	}
	d := time.Duration(v * float64(scale))
	if d <= 0 {
		return errAt(p.file, num.pos, "deadline must be positive")
	}
	p.f.Deadline = d
	p.f.DeadlinePos = pos
	return nil
}

// parseBudget parses `budget EXPR` — the scenario's total cycle budget.
// The expression may use consts and nodes; the lowering evaluates it.
func (p *parser) parseBudget(t *toks, pos Pos) error {
	if p.f.Budget != nil {
		return errAt(p.file, pos, "duplicate budget directive")
	}
	e, err := parseExpr(t)
	if err != nil {
		return err
	}
	if err := t.expectEOL(); err != nil {
		return err
	}
	p.f.Budget = e
	p.f.BudgetPos = pos
	return nil
}

// parseProgram handles both `program NAME ... end` template blocks and
// one-line `generate NAME KIND key=expr ...` declarations.
func (p *parser) parseProgram(t *toks, kw token) (*ProgramDecl, error) {
	name, err := t.expectIdent()
	if err != nil {
		return nil, err
	}
	decl := &ProgramDecl{Pos: name.pos, Name: name.text}
	if kw.text == "generate" {
		kind, gerr := t.expectIdent()
		if gerr != nil {
			return nil, gerr
		}
		args, argPos, gerr := p.parseKeyArgs(t, nil)
		if gerr != nil {
			return nil, gerr
		}
		decl.Gen = &GenSpec{Pos: kind.pos, Kind: kind.text, Args: args, ArgPos: argPos}
		return decl, nil
	}
	if err := t.expectEOL(); err != nil {
		return nil, err
	}
	body, err := p.parseTemplBody(name.pos)
	if err != nil {
		return nil, err
	}
	decl.Body = body
	return decl, nil
}

// parseTemplBody consumes template lines until the matching 'end',
// handling nested repeat blocks. The opening directive is on p.i; the
// body starts on the next line. On return p.i is the 'end' line.
func (p *parser) parseTemplBody(open Pos) ([]TemplNode, error) {
	var body []TemplNode
	for {
		p.i++
		if p.i >= len(p.lines) {
			return nil, errAt(p.file, open, "block is never closed ('end' missing before end of file)")
		}
		raw := p.lines[p.i]
		lineNo := p.i + 1
		word, wordCol := firstWord(raw)
		switch word {
		case "end":
			if rest := strings.TrimSpace(stripComment(raw)[wordCol-1+len("end"):]); rest != "" {
				return nil, errAt(p.file, Pos{lineNo, wordCol + 4}, "unexpected text after 'end'")
			}
			return body, nil
		case "repeat":
			t, _, err := p.lexCurrent()
			if err != nil {
				return nil, err
			}
			t.next() // 'repeat'
			v, err := t.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := t.expectPunct("="); err != nil {
				return nil, err
			}
			lo, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			if err := t.expectPunct(".."); err != nil {
				return nil, err
			}
			hi, err := parseExpr(t)
			if err != nil {
				return nil, err
			}
			if err := t.expectEOL(); err != nil {
				return nil, err
			}
			inner, err := p.parseTemplBody(Pos{lineNo, wordCol})
			if err != nil {
				return nil, err
			}
			body = append(body, &Repeat{Pos: Pos{lineNo, wordCol}, Var: v.text, Lo: lo, Hi: hi, Body: inner})
		default:
			line, err := p.parseTemplLine(lineNo, raw)
			if err != nil {
				return nil, err
			}
			body = append(body, line)
		}
	}
}

// parseTemplLine splits one raw assembly line into literal runs and
// {expr} substitutions. A trailing ';' comment passes through verbatim —
// braces inside comments are prose, not substitutions.
func (p *parser) parseTemplLine(lineNo int, raw string) (*TemplLine, error) {
	line := &TemplLine{Pos: Pos{lineNo, 1}}
	rest := raw
	var comment string
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		rest, comment = raw[:i], raw[i:]
	}
	col := 1
	for {
		open := strings.IndexByte(rest, '{')
		if open < 0 {
			if strings.IndexByte(rest, '}') >= 0 {
				return nil, errAt(p.file, Pos{lineNo, col + strings.IndexByte(rest, '}')}, "'}' without matching '{'")
			}
			if rest+comment != "" {
				line.Parts = append(line.Parts, TemplPart{Lit: rest + comment})
			}
			return line, nil
		}
		closeOff := strings.IndexByte(rest[open:], '}')
		if closeOff < 0 {
			return nil, errAt(p.file, Pos{lineNo, col + open}, "'{' without matching '}'")
		}
		if open > 0 {
			line.Parts = append(line.Parts, TemplPart{Lit: rest[:open]})
		}
		inner := rest[open+1 : open+closeOff]
		e, err := parseExprString(p.file, lineNo, col+open+1, inner)
		if err != nil {
			return nil, err
		}
		line.Parts = append(line.Parts, TemplPart{Expr: e})
		rest = rest[open+closeOff+1:]
		col += open + closeOff + 1
	}
}

// parseStep parses the one-line step directives.
func (p *parser) parseStep(t *toks, kw token) (*Step, error) {
	s := &Step{Pos: kw.pos}
	switch kw.text {
	case "maplocal":
		s.Kind = StepMapLocal
		args, pos, err := p.parseKeyArgs(t, []string{"node", "page"})
		if err != nil {
			return nil, err
		}
		s.Node, s.Page = args["node"], args["page"]
		if err := requireArgs(p.file, kw.pos, args, pos, "node", "page"); err != nil {
			return nil, err
		}
		return s, nil

	case "poke":
		s.Kind = StepPoke
		var f *float64
		args, pos, err := p.parseKeyArgsFloat(t, []string{"node", "addr", "value", "float"}, &f)
		if err != nil {
			return nil, err
		}
		s.Node, s.Addr, s.Value, s.Float = args["node"], args["addr"], args["value"], f
		if err := requireArgs(p.file, kw.pos, args, pos, "node", "addr"); err != nil {
			return nil, err
		}
		if (s.Value == nil) == (s.Float == nil) {
			return nil, errAt(p.file, kw.pos, "poke wants exactly one of value= or float=")
		}
		return s, nil

	case "run":
		s.Kind = StepRun
		s.Phase, p.phase = p.phase, ""
		e, err := parseExpr(t)
		if err != nil {
			return nil, err
		}
		if err := t.expectEOL(); err != nil {
			return nil, err
		}
		s.Budget = e
		return s, nil

	case "load":
		return p.parseLoad(t, s)

	case "expect":
		return p.parseExpect(t, s)

	case "check":
		s.Kind = StepCheck
		kind, err := t.expectIdent()
		if err != nil {
			return nil, err
		}
		s.CheckKind = kind.text
		s.ProgPos = kind.pos
		s.Args, s.ArgPos, err = p.parseKeyArgs(t, nil)
		return s, err

	case "grant":
		s.Kind = StepGrant
		args, pos, err := p.parseKeyArgs(t, []string{"node", "vthread", "cluster", "reg", "perms", "seglen", "addr"})
		if err != nil {
			return nil, err
		}
		s.Args, s.ArgPos = args, pos
		return s, requireArgs(p.file, kw.pos, args, pos, "reg", "perms", "addr")
	}
	return nil, errAt(p.file, kw.pos, "internal: unhandled step %q", kw.text)
}

func (p *parser) parseLoad(t *toks, s *Step) (*Step, error) {
	s.Kind = StepLoad
	prog, err := t.expectIdent()
	if err != nil {
		return nil, err
	}
	s.Prog, s.ProgPos = prog.text, prog.pos
	on, err := t.expectIdent()
	if err != nil {
		return nil, err
	}
	if on.text != "on" {
		return nil, errAt(p.file, on.pos, "expected 'on', got %q", on.text)
	}
	target, err := t.expectIdent()
	if err != nil {
		return nil, err
	}
	switch target.text {
	case "all":
		s.OnAll = true
	case "node":
		if s.NodeLo, err = parseExpr(t); err != nil {
			return nil, err
		}
	case "nodes":
		if s.NodeLo, err = parseExpr(t); err != nil {
			return nil, err
		}
		if s.NodeHi, err = parseExpr(t); err != nil {
			return nil, err
		}
	default:
		return nil, errAt(p.file, target.pos, "expected 'all', 'node E', or 'nodes LO HI', got %q", target.text)
	}
	if tk := t.peek(); tk.kind == tokIdent && tk.text == "user" {
		t.next()
		s.User = true
	}
	args, _, err := p.parseKeyArgs(t, []string{"vthread", "cluster"})
	if err != nil {
		return nil, err
	}
	s.VThread, s.Cluster = args["vthread"], args["cluster"]
	return s, nil
}

func (p *parser) parseExpect(t *toks, s *Step) (*Step, error) {
	s.Kind = StepExpect
	kind, err := t.expectIdent()
	if err != nil {
		return nil, err
	}
	s.ExpectKind = kind.text
	var f *float64
	switch kind.text {
	case "reg":
		args, pos, err := p.parseKeyArgs(t, []string{"node", "vthread", "cluster", "reg", "value"})
		if err != nil {
			return nil, err
		}
		s.Node, s.VThread, s.Cluster = args["node"], args["vthread"], args["cluster"]
		s.Reg, s.Value = args["reg"], args["value"]
		return s, requireArgs(p.file, kind.pos, args, pos, "node", "reg", "value")
	case "mem":
		args, pos, err := p.parseKeyArgs(t, []string{"node", "addr", "value"})
		if err != nil {
			return nil, err
		}
		s.Node, s.Addr, s.Value = args["node"], args["addr"], args["value"]
		return s, requireArgs(p.file, kind.pos, args, pos, "node", "addr", "value")
	case "fmem":
		args, pos, err := p.parseKeyArgsFloat(t, []string{"node", "addr", "float"}, &f)
		if err != nil {
			return nil, err
		}
		s.Node, s.Addr, s.Float = args["node"], args["addr"], f
		if err := requireArgs(p.file, kind.pos, args, pos, "node", "addr"); err != nil {
			return nil, err
		}
		if s.Float == nil {
			return nil, errAt(p.file, kind.pos, "expect fmem wants float=")
		}
		return s, nil
	}
	return nil, errAt(p.file, kind.pos, "expected 'reg', 'mem', or 'fmem', got %q", kind.text)
}

// parseKeyArgs parses a trailing `key=expr ...` list. When allowed is
// non-nil, keys outside it are rejected.
func (p *parser) parseKeyArgs(t *toks, allowed []string) (map[string]Expr, map[string]Pos, error) {
	return p.parseKeyArgsFloat(t, allowed, nil)
}

// parseKeyArgsFloat is parseKeyArgs with optional support for one
// float-valued key named "float" (captured into *fOut rather than the
// expression map).
func (p *parser) parseKeyArgsFloat(t *toks, allowed []string, fOut **float64) (map[string]Expr, map[string]Pos, error) {
	args := map[string]Expr{}
	pos := map[string]Pos{}
	for {
		tk := t.peek()
		if tk.kind == tokEOL {
			return args, pos, nil
		}
		if tk.kind != tokIdent {
			return nil, nil, errAt(p.file, tk.pos, "expected key=value argument, got %s", tk.describe())
		}
		t.next()
		if allowed != nil && !contains(allowed, tk.text) {
			return nil, nil, errAt(p.file, tk.pos, "unknown argument %q (valid: %s)", tk.text, strings.Join(allowed, ", "))
		}
		if _, dup := pos[tk.text]; dup {
			return nil, nil, errAt(p.file, tk.pos, "duplicate argument %q", tk.text)
		}
		if fOut != nil && tk.text == "float" {
			if err := t.expectPunct("="); err != nil {
				return nil, nil, err
			}
			neg := false
			if nt := t.peek(); nt.kind == tokPunct && nt.text == "-" {
				t.next()
				neg = true
			}
			num := t.peek()
			if num.kind != tokFloat && num.kind != tokNumber {
				return nil, nil, errAt(p.file, num.pos, "float= wants a numeric literal, got %s", num.describe())
			}
			t.next()
			v := num.fval
			if num.kind == tokNumber {
				v = float64(num.ival)
			}
			if neg {
				v = -v
			}
			*fOut = &v
			pos[tk.text] = tk.pos // value carried out-of-band via fOut
			continue
		}
		if err := t.expectPunct("="); err != nil {
			return nil, nil, err
		}
		e, err := parseExpr(t)
		if err != nil {
			return nil, nil, err
		}
		args[tk.text] = e
		pos[tk.text] = tk.pos
	}
}

// requireArgs fails if any of the named keys is missing.
func requireArgs(file string, at Pos, args map[string]Expr, pos map[string]Pos, keys ...string) error {
	for _, k := range keys {
		if _, ok := pos[k]; !ok {
			if _, ok := args[k]; !ok {
				return errAt(file, at, "missing required argument %s=", k)
			}
		}
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// firstWord returns the first whitespace-delimited word of a line and
// its 1-based column.
func firstWord(line string) (string, int) {
	trimmed := strings.TrimLeft(line, " \t")
	col := len(line) - len(trimmed) + 1
	end := strings.IndexAny(trimmed, " \t;")
	if end < 0 {
		end = len(trimmed)
	}
	return trimmed[:end], col
}

// stripComment removes a trailing ';' comment.
func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		return line[:i]
	}
	return line
}

// Instantiate renders a program template to MAP assembly source under
// env (which supplies node, nodes, consts, dip bindings, and home()).
// Gen-backed declarations cannot be instantiated here; the lowering
// resolves them against internal/workload.
func (d *ProgramDecl) Instantiate(env *EvalEnv) (string, error) {
	if d.Body == nil {
		return "", fmt.Errorf("program %q is generator-backed, not a template", d.Name)
	}
	var b strings.Builder
	if err := renderNodes(d.Body, env, &b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func renderNodes(nodes []TemplNode, env *EvalEnv, b *strings.Builder) error {
	for _, n := range nodes {
		switch n := n.(type) {
		case *TemplLine:
			for _, part := range n.Parts {
				if part.Expr == nil {
					b.WriteString(part.Lit)
					continue
				}
				v, err := Eval(part.Expr, env)
				if err != nil {
					return err
				}
				fmt.Fprintf(b, "%d", v)
			}
			b.WriteByte('\n')
		case *Repeat:
			lo, err := Eval(n.Lo, env)
			if err != nil {
				return err
			}
			hi, err := Eval(n.Hi, env)
			if err != nil {
				return err
			}
			if hi-lo+1 > 4096 {
				return errAt(env.File, n.Pos, "repeat range [%d, %d] is too large (max 4096 iterations)", lo, hi)
			}
			if _, shadow := env.Vars[n.Var]; shadow {
				return errAt(env.File, n.Pos, "repeat variable %q shadows an existing binding", n.Var)
			}
			for v := lo; v <= hi; v++ {
				env.Vars[n.Var] = v
				if err := renderNodes(n.Body, env, b); err != nil {
					delete(env.Vars, n.Var)
					return err
				}
			}
			delete(env.Vars, n.Var)
		}
	}
	return nil
}
