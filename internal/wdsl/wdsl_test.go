package wdsl

import (
	"errors"
	"strings"
	"testing"
)

// TestParseBasics exercises a representative scenario: every directive
// kind, a template with substitutions and a repeat block, and constants.
func TestParseBasics(t *testing.T) {
	f, err := Parse("t.wl", `
workload "demo"
mesh 2 2 1
caching on
const K 8
const ADDR 0x100

program p
    movi i1, #{home(node)+K}
repeat k = 0 .. K-1
    st [i1+{k}], i2
end
    halt
end

generate g loopsync hthreads=2 iters=K

maplocal node=0 page=0
poke node=1 addr=ADDR value=K*2
poke node=1 addr=ADDR+1 float=2.5
phase main
load p on all vthread=3 cluster=1
load g on node 0
load p on nodes 1 nodes-1
run K*100+5
expect reg node=0 vthread=0 cluster=0 reg=5 value=42
expect mem node=0 addr=ADDR value=16
expect fmem node=0 addr=ADDR+1 float=2.5
check smooth total=64
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Title != "demo" || !f.Caching {
		t.Errorf("title/caching = %q/%v", f.Title, f.Caching)
	}
	if f.Mesh != [3]int{2, 2, 1} {
		t.Errorf("mesh = %v", f.Mesh)
	}
	if len(f.Consts) != 2 || len(f.Programs) != 2 {
		t.Fatalf("%d consts, %d programs", len(f.Consts), len(f.Programs))
	}
	if f.Lookup("p") == nil || f.Lookup("g") == nil || f.Lookup("zzz") != nil {
		t.Error("Lookup misbehaved")
	}
	if got := len(f.Steps); got != 11 {
		t.Errorf("%d steps, want 11", got)
	}
	// The phase name attaches to the run step.
	for _, s := range f.Steps {
		if s.Kind == StepRun && s.Phase != "main" {
			t.Errorf("run phase = %q, want main", s.Phase)
		}
	}
}

// TestParseSweepGrant exercises the DSL v2 forms: the sweep directive
// (list and range), mesh dimensions as expressions, user-mode loads,
// and grant steps.
func TestParseSweepGrant(t *testing.T) {
	f, err := Parse("t.wl", `
workload "v2 forms"
sweep MSGS 2 4 8
mesh 2
program p
    halt
end
load p on node 0 user vthread=1
grant node=0 vthread=1 reg=1 perms=rw seglen=6 addr=64
run 1000
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Sweep == nil || f.Sweep.Name != "MSGS" || len(f.Sweep.Values) != 3 || f.Sweep.Lo != nil {
		t.Fatalf("sweep = %+v", f.Sweep)
	}
	if len(f.Steps) != 3 {
		t.Fatalf("%d steps, want 3", len(f.Steps))
	}
	ld, gr := f.Steps[0], f.Steps[1]
	if ld.Kind != StepLoad || !ld.User {
		t.Errorf("load step = kind %v user %v", ld.Kind, ld.User)
	}
	if gr.Kind != StepGrant {
		t.Fatalf("grant step kind = %v", gr.Kind)
	}
	if name, ok := IdentName(gr.Args["perms"]); !ok || name != "rw" {
		t.Errorf("perms ident = %q, %v", name, ok)
	}
	if _, ok := IdentName(gr.Args["addr"]); ok {
		t.Error("IdentName accepted a number")
	}

	// Range form, and a swept mesh dimension.
	f2, err := Parse("t.wl", "sweep N 1 .. 4\nmesh N\n")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Sweep == nil || f2.Sweep.Lo == nil || f2.Sweep.Hi == nil || f2.Sweep.Values != nil {
		t.Fatalf("sweep = %+v", f2.Sweep)
	}
	if f2.Mesh != [3]int{} {
		t.Errorf("swept mesh should not mirror literals, got %v", f2.Mesh)
	}
	if f2.MeshExprs[0] == nil || !UsesIdent(f2.MeshExprs[0], func(s string) bool { return s == "N" }) {
		t.Error("mesh expr should reference N")
	}
	if UsesIdent(f2.MeshExprs[1], func(string) bool { return true }) {
		t.Error("defaulted dim should not reference identifiers")
	}
}

// TestUsesIdent covers the dependence walkers over program templates,
// including repeat-variable shadowing.
func TestUsesIdent(t *testing.T) {
	f, err := Parse("t.wl", `
program shadowed
repeat N = 0 .. 3
    st [i1+{N}], i2
end
    halt
end
program bound
repeat k = 0 .. N
    st [i1+{k}], i2
end
    halt
end
generate g exchange msgs=N
`)
	if err != nil {
		t.Fatal(err)
	}
	isN := func(s string) bool { return s == "N" }
	if f.Programs[0].UsesIdent(isN) {
		t.Error("repeat variable should shadow N")
	}
	if !f.Programs[1].UsesIdent(isN) {
		t.Error("repeat bound should count as a use of N")
	}
	if !f.Programs[2].UsesIdent(isN) {
		t.Error("generator arg should count as a use of N")
	}
}

// TestInstantiate renders a template under per-node bindings, including
// repeat unrolling and the home() function.
func TestInstantiate(t *testing.T) {
	f, err := Parse("t.wl", `
mesh 4
program p
    movi i1, #{home(node)+16}
repeat k = 1 .. 2
    st [i1+{k*8}], i2
end
    halt
end
`)
	if err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{
		File: "t.wl",
		Vars: map[string]int64{"node": 2, "nodes": 4},
		Home: func(n int64) (int64, error) { return n * 4096, nil },
	}
	src, err := f.Programs[0].Instantiate(env)
	if err != nil {
		t.Fatal(err)
	}
	want := "    movi i1, #8208\n    st [i1+8], i2\n    st [i1+16], i2\n    halt\n"
	if src != want {
		t.Errorf("instantiated:\n%q\nwant:\n%q", src, want)
	}
	// The repeat variable goes out of scope afterwards.
	if _, ok := env.Vars["k"]; ok {
		t.Error("repeat variable leaked into the environment")
	}
}

// TestTemplateComments pins that ';' comments on template lines pass
// through verbatim: braces inside them are prose, not substitutions.
func TestTemplateComments(t *testing.T) {
	f, err := Parse("t.wl", `
mesh 1
program p
    movi i1, #{node+5}     ; set {i1} to node+5 { prose braces
    halt                   ; done
end
`)
	if err != nil {
		t.Fatal(err)
	}
	src, err := f.Programs[0].Instantiate(&EvalEnv{
		File: "t.wl", Vars: map[string]int64{"node": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "movi i1, #6     ; set {i1} to node+5 { prose braces") {
		t.Errorf("comment not preserved verbatim:\n%s", src)
	}
}

// TestExprEval covers the operator set, precedence, and builtins.
func TestExprEval(t *testing.T) {
	env := &EvalEnv{
		File: "t.wl",
		Vars: map[string]int64{"n": 10},
		Home: func(n int64) (int64, error) { return n * 100, nil },
	}
	cases := []struct {
		src  string
		want int64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"-4+1", -3},
		{"17%5", 2},
		{"7/2", 3},
		{"1<<4", 16},
		{"256>>2", 64},
		{"xor(5, 3)", 6},
		{"min(4, n)", 4},
		{"max(4, n)", 10},
		{"home(3)+5", 305},
		{"n*(n+1)/2", 55},
		{"0x20", 32},
	}
	for _, c := range cases {
		e, err := parseExprString("t.wl", 1, 1, c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		got, err := Eval(e, env)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
	}
}

// TestParseErrors drives malformed sources through the parser and
// demands a positional error at the expected line:col — never a panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src  string
		line, col  int
		msgContain string
	}{
		{"unknown directive", "mesh 2\nfrobnicate 3\n", 2, 1, "unknown directive"},
		{"bad mesh dims", "mesh 2,\n", 1, 7, "expected expression"},
		{"duplicate mesh", "mesh 2\nmesh 3\n", 2, 1, "duplicate mesh directive"},
		{"duplicate sweep", "sweep N 1 2\nsweep M 1 2\n", 2, 1, "duplicate sweep directive"},
		{"sweep one value", "sweep N 4\n", 1, 9, "at least two values"},
		{"sweep missing name", "sweep\n", 1, 6, "expected identifier"},
		{"sweep bad range", "sweep N 1 ..\n", 1, 13, "expected expression"},
		{"grant missing required", "grant node=0 reg=1\n", 1, 1, "missing"},
		{"grant unknown arg", "grant reg=1 perms=rw addr=64 frob=2\n", 1, 30, "unknown argument"},
		{"mesh missing dims", "mesh\n", 1, 5, "1-3 integer dimensions"},
		{"bad caching", "caching maybe\n", 1, 9, "'on' or 'off'"},
		{"const missing expr", "const K\n", 1, 8, "expected expression"},
		{"unterminated string", "workload \"oops\n", 1, 10, "unterminated string"},
		{"unterminated program", "program p\n    halt\n", 1, 9, "never closed"},
		{"stray end", "mesh 1\nend\n", 2, 1, "'end' outside"},
		{"stray repeat", "repeat k = 0 .. 3\n", 1, 1, "only valid inside"},
		{"unclosed brace", "program p\n    movi i1, #{node+1\nend\n", 2, 15, "without matching"},
		{"stray close brace", "program p\n    movi i1, #1}\nend\n", 2, 16, "without matching"},
		{"bad repeat bounds", "program p\nrepeat k = 0 3\n    halt\nend\nend\n", 2, 14, `expected ".."`},
		{"bad expr in template", "program p\n    movi i1, #{1+*2}\nend\n", 2, 18, "expected expression"},
		{"duplicate program", "program p\nend\nprogram p\nend\n", 3, 9, "already declared"},
		{"load missing on", "mesh 1\nload p node 0\n", 2, 8, "expected 'on'"},
		{"load bad target", "mesh 1\nload p on cluster\n", 2, 11, "expected 'all'"},
		{"bad key", "maplocal node=0 color=3\n", 1, 17, "unknown argument"},
		{"duplicate key", "maplocal node=0 node=1\n", 1, 17, "duplicate argument"},
		{"missing required key", "maplocal node=0\n", 1, 1, "missing required argument page="},
		{"poke both values", "poke node=0 addr=1 value=2 float=3.0\n", 1, 1, "exactly one of"},
		{"expect bad kind", "expect flag node=0\n", 1, 8, "expected 'reg', 'mem', or 'fmem'"},
		{"trailing junk", "mesh 2 2 1 9\n", 1, 12, "unexpected"},
		{"bad char", "mesh 2 !\n", 1, 8, "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t.wl", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error %v is not a positional *Error", err)
			}
			if perr.Pos.Line != c.line || perr.Pos.Col != c.col {
				t.Errorf("error at %d:%d, want %d:%d (%v)", perr.Pos.Line, perr.Pos.Col, c.line, c.col, err)
			}
			if !strings.Contains(perr.Msg, c.msgContain) {
				t.Errorf("error %q does not mention %q", perr.Msg, c.msgContain)
			}
			if !strings.HasPrefix(err.Error(), "t.wl:") {
				t.Errorf("error string %q does not lead with the file position", err.Error())
			}
		})
	}
}

// TestEvalErrors covers the arithmetic error paths.
func TestEvalErrors(t *testing.T) {
	env := &EvalEnv{File: "t.wl", Vars: map[string]int64{}}
	for _, src := range []string{
		"1/0", "1%0", "1<<64", "1<<-1", "nope", "sqrt(4)", "home(0)",
		"min(1)", "xor(1,2,3)",
	} {
		e, err := parseExprString("t.wl", 1, 1, src)
		if err != nil {
			t.Errorf("%s failed to parse: %v", src, err)
			continue
		}
		if _, err := Eval(e, env); err == nil {
			t.Errorf("%s evaluated without error", src)
		}
	}
}

// TestRepeatGuards covers the unrolling safety rails.
func TestRepeatGuards(t *testing.T) {
	parse := func(src string) *File {
		f, err := Parse("t.wl", src)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	env := func() *EvalEnv {
		return &EvalEnv{File: "t.wl", Vars: map[string]int64{"node": 0}}
	}

	huge := parse("program p\nrepeat k = 0 .. 100000\n    halt\nend\nend\n")
	if _, err := huge.Programs[0].Instantiate(env()); err == nil ||
		!strings.Contains(err.Error(), "too large") {
		t.Errorf("huge repeat: %v", err)
	}

	shadow := parse("program p\nrepeat node = 0 .. 1\n    halt\nend\nend\n")
	if _, err := shadow.Programs[0].Instantiate(env()); err == nil ||
		!strings.Contains(err.Error(), "shadows") {
		t.Errorf("shadowing repeat: %v", err)
	}

	// An empty range (lo > hi) renders nothing and is not an error.
	empty := parse("program p\nrepeat k = 1 .. 0\n    halt\nend\n    halt\nend\n")
	src, err := empty.Programs[0].Instantiate(env())
	if err != nil || strings.Count(src, "halt") != 1 {
		t.Errorf("empty repeat: src=%q err=%v", src, err)
	}
}
