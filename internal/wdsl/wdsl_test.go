package wdsl

import (
	"errors"
	"strings"
	"testing"
)

// TestParseBasics exercises a representative scenario: every directive
// kind, a template with substitutions and a repeat block, and constants.
func TestParseBasics(t *testing.T) {
	f, err := Parse("t.wl", `
workload "demo"
mesh 2 2 1
caching on
const K 8
const ADDR 0x100

program p
    movi i1, #{home(node)+K}
repeat k = 0 .. K-1
    st [i1+{k}], i2
end
    halt
end

generate g loopsync hthreads=2 iters=K

maplocal node=0 page=0
poke node=1 addr=ADDR value=K*2
poke node=1 addr=ADDR+1 float=2.5
phase main
load p on all vthread=3 cluster=1
load g on node 0
load p on nodes 1 nodes-1
run K*100+5
expect reg node=0 vthread=0 cluster=0 reg=5 value=42
expect mem node=0 addr=ADDR value=16
expect fmem node=0 addr=ADDR+1 float=2.5
check smooth total=64
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Title != "demo" || !f.Caching {
		t.Errorf("title/caching = %q/%v", f.Title, f.Caching)
	}
	if f.Mesh != [3]int{2, 2, 1} {
		t.Errorf("mesh = %v", f.Mesh)
	}
	if len(f.Consts) != 2 || len(f.Programs) != 2 {
		t.Fatalf("%d consts, %d programs", len(f.Consts), len(f.Programs))
	}
	if f.Lookup("p") == nil || f.Lookup("g") == nil || f.Lookup("zzz") != nil {
		t.Error("Lookup misbehaved")
	}
	if got := len(f.Steps); got != 11 {
		t.Errorf("%d steps, want 11", got)
	}
	// The phase name attaches to the run step.
	for _, s := range f.Steps {
		if s.Kind == StepRun && s.Phase != "main" {
			t.Errorf("run phase = %q, want main", s.Phase)
		}
	}
}

// TestInstantiate renders a template under per-node bindings, including
// repeat unrolling and the home() function.
func TestInstantiate(t *testing.T) {
	f, err := Parse("t.wl", `
mesh 4
program p
    movi i1, #{home(node)+16}
repeat k = 1 .. 2
    st [i1+{k*8}], i2
end
    halt
end
`)
	if err != nil {
		t.Fatal(err)
	}
	env := &EvalEnv{
		File: "t.wl",
		Vars: map[string]int64{"node": 2, "nodes": 4},
		Home: func(n int64) (int64, error) { return n * 4096, nil },
	}
	src, err := f.Programs[0].Instantiate(env)
	if err != nil {
		t.Fatal(err)
	}
	want := "    movi i1, #8208\n    st [i1+8], i2\n    st [i1+16], i2\n    halt\n"
	if src != want {
		t.Errorf("instantiated:\n%q\nwant:\n%q", src, want)
	}
	// The repeat variable goes out of scope afterwards.
	if _, ok := env.Vars["k"]; ok {
		t.Error("repeat variable leaked into the environment")
	}
}

// TestTemplateComments pins that ';' comments on template lines pass
// through verbatim: braces inside them are prose, not substitutions.
func TestTemplateComments(t *testing.T) {
	f, err := Parse("t.wl", `
mesh 1
program p
    movi i1, #{node+5}     ; set {i1} to node+5 { prose braces
    halt                   ; done
end
`)
	if err != nil {
		t.Fatal(err)
	}
	src, err := f.Programs[0].Instantiate(&EvalEnv{
		File: "t.wl", Vars: map[string]int64{"node": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "movi i1, #6     ; set {i1} to node+5 { prose braces") {
		t.Errorf("comment not preserved verbatim:\n%s", src)
	}
}

// TestExprEval covers the operator set, precedence, and builtins.
func TestExprEval(t *testing.T) {
	env := &EvalEnv{
		File: "t.wl",
		Vars: map[string]int64{"n": 10},
		Home: func(n int64) (int64, error) { return n * 100, nil },
	}
	cases := []struct {
		src  string
		want int64
	}{
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"-4+1", -3},
		{"17%5", 2},
		{"7/2", 3},
		{"1<<4", 16},
		{"256>>2", 64},
		{"xor(5, 3)", 6},
		{"min(4, n)", 4},
		{"max(4, n)", 10},
		{"home(3)+5", 305},
		{"n*(n+1)/2", 55},
		{"0x20", 32},
	}
	for _, c := range cases {
		e, err := parseExprString("t.wl", 1, 1, c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		got, err := Eval(e, env)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %d, want %d", c.src, got, c.want)
		}
	}
}

// TestParseErrors drives malformed sources through the parser and
// demands a positional error at the expected line:col — never a panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src  string
		line, col  int
		msgContain string
	}{
		{"unknown directive", "mesh 2\nfrobnicate 3\n", 2, 1, "unknown directive"},
		{"bad mesh dims", "mesh two\n", 1, 6, "integer literals"},
		{"mesh missing dims", "mesh\n", 1, 5, "1-3 integer dimensions"},
		{"bad caching", "caching maybe\n", 1, 9, "'on' or 'off'"},
		{"const missing expr", "const K\n", 1, 8, "expected expression"},
		{"unterminated string", "workload \"oops\n", 1, 10, "unterminated string"},
		{"unterminated program", "program p\n    halt\n", 1, 9, "never closed"},
		{"stray end", "mesh 1\nend\n", 2, 1, "'end' outside"},
		{"stray repeat", "repeat k = 0 .. 3\n", 1, 1, "only valid inside"},
		{"unclosed brace", "program p\n    movi i1, #{node+1\nend\n", 2, 15, "without matching"},
		{"stray close brace", "program p\n    movi i1, #1}\nend\n", 2, 16, "without matching"},
		{"bad repeat bounds", "program p\nrepeat k = 0 3\n    halt\nend\nend\n", 2, 14, `expected ".."`},
		{"bad expr in template", "program p\n    movi i1, #{1+*2}\nend\n", 2, 18, "expected expression"},
		{"duplicate program", "program p\nend\nprogram p\nend\n", 3, 9, "already declared"},
		{"load missing on", "mesh 1\nload p node 0\n", 2, 8, "expected 'on'"},
		{"load bad target", "mesh 1\nload p on cluster\n", 2, 11, "expected 'all'"},
		{"bad key", "maplocal node=0 color=3\n", 1, 17, "unknown argument"},
		{"duplicate key", "maplocal node=0 node=1\n", 1, 17, "duplicate argument"},
		{"missing required key", "maplocal node=0\n", 1, 1, "missing required argument page="},
		{"poke both values", "poke node=0 addr=1 value=2 float=3.0\n", 1, 1, "exactly one of"},
		{"expect bad kind", "expect flag node=0\n", 1, 8, "expected 'reg', 'mem', or 'fmem'"},
		{"trailing junk", "mesh 2 2 1 9\n", 1, 12, "unexpected"},
		{"bad char", "mesh 2 !\n", 1, 8, "unexpected character"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t.wl", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error %v is not a positional *Error", err)
			}
			if perr.Pos.Line != c.line || perr.Pos.Col != c.col {
				t.Errorf("error at %d:%d, want %d:%d (%v)", perr.Pos.Line, perr.Pos.Col, c.line, c.col, err)
			}
			if !strings.Contains(perr.Msg, c.msgContain) {
				t.Errorf("error %q does not mention %q", perr.Msg, c.msgContain)
			}
			if !strings.HasPrefix(err.Error(), "t.wl:") {
				t.Errorf("error string %q does not lead with the file position", err.Error())
			}
		})
	}
}

// TestEvalErrors covers the arithmetic error paths.
func TestEvalErrors(t *testing.T) {
	env := &EvalEnv{File: "t.wl", Vars: map[string]int64{}}
	for _, src := range []string{
		"1/0", "1%0", "1<<64", "1<<-1", "nope", "sqrt(4)", "home(0)",
		"min(1)", "xor(1,2,3)",
	} {
		e, err := parseExprString("t.wl", 1, 1, src)
		if err != nil {
			t.Errorf("%s failed to parse: %v", src, err)
			continue
		}
		if _, err := Eval(e, env); err == nil {
			t.Errorf("%s evaluated without error", src)
		}
	}
}

// TestRepeatGuards covers the unrolling safety rails.
func TestRepeatGuards(t *testing.T) {
	parse := func(src string) *File {
		f, err := Parse("t.wl", src)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	env := func() *EvalEnv {
		return &EvalEnv{File: "t.wl", Vars: map[string]int64{"node": 0}}
	}

	huge := parse("program p\nrepeat k = 0 .. 100000\n    halt\nend\nend\n")
	if _, err := huge.Programs[0].Instantiate(env()); err == nil ||
		!strings.Contains(err.Error(), "too large") {
		t.Errorf("huge repeat: %v", err)
	}

	shadow := parse("program p\nrepeat node = 0 .. 1\n    halt\nend\nend\n")
	if _, err := shadow.Programs[0].Instantiate(env()); err == nil ||
		!strings.Contains(err.Error(), "shadows") {
		t.Errorf("shadowing repeat: %v", err)
	}

	// An empty range (lo > hi) renders nothing and is not an error.
	empty := parse("program p\nrepeat k = 1 .. 0\n    halt\nend\n    halt\nend\n")
	src, err := empty.Programs[0].Instantiate(env())
	if err != nil || strings.Count(src, "halt") != 1 {
		t.Errorf("empty repeat: src=%q err=%v", src, err)
	}
}
