package wdsl

import (
	"fmt"
	"strconv"
	"strings"
)

// Pos is a source position inside a .wl file, 1-based.
type Pos struct {
	Line, Col int
}

// Error is a positional DSL error. Every failure the parser, validator,
// or evaluator reports carries the file name and the 1-based line:col of
// the offending token, so `msim -workload bad.wl` diagnostics point at
// the exact character.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Pos.Line, e.Pos.Col, e.Msg)
}

// errAt builds a positional error.
func errAt(file string, pos Pos, format string, args ...any) *Error {
	return &Error{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tokKind enumerates lexical token classes.
type tokKind int

const (
	tokEOL    tokKind = iota // end of the directive line
	tokIdent                 // identifier / keyword
	tokNumber                // integer literal (decimal or 0x hex)
	tokFloat                 // floating-point literal (digits '.' digits)
	tokString                // "quoted string"
	tokPunct                 // = ( ) , + - * / % << >> ..
)

func (k tokKind) String() string {
	switch k {
	case tokEOL:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	}
	return "punctuation"
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	pos  Pos
}

// lexLine tokenizes one directive line. col0 is the 1-based column of
// text[0] in the original source line (used when tokenizing a {expr}
// substring of a template line). A ';' starts a comment running to the
// end of the line.
func lexLine(file string, line int, col0 int, text string) ([]token, error) {
	var toks []token
	i := 0
	pos := func() Pos { return Pos{line, col0 + i} }
	for i < len(text) {
		c := text[i]
		switch {
		case c == ';':
			i = len(text) // comment
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '"':
			p := pos()
			j := strings.IndexByte(text[i+1:], '"')
			if j < 0 {
				return nil, errAt(file, p, "unterminated string")
			}
			toks = append(toks, token{kind: tokString, text: text[i+1 : i+1+j], pos: p})
			i += j + 2
		case c >= '0' && c <= '9':
			p := pos()
			j := i
			for j < len(text) && isNumChar(text[j]) {
				j++
			}
			lit := text[i:j]
			if strings.ContainsAny(lit, ".") && !strings.HasPrefix(lit, "0x") {
				f, err := strconv.ParseFloat(lit, 64)
				if err != nil {
					return nil, errAt(file, p, "bad number %q", lit)
				}
				toks = append(toks, token{kind: tokFloat, text: lit, fval: f, pos: p})
			} else {
				v, err := strconv.ParseInt(lit, 0, 64)
				if err != nil {
					return nil, errAt(file, p, "bad number %q", lit)
				}
				toks = append(toks, token{kind: tokNumber, text: lit, ival: v, pos: p})
			}
			i = j
		case isIdentChar(c):
			p := pos()
			j := i
			for j < len(text) && (isIdentChar(text[j]) || text[j] >= '0' && text[j] <= '9') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: text[i:j], pos: p})
			i = j
		default:
			p := pos()
			two := ""
			if i+1 < len(text) {
				two = text[i : i+2]
			}
			switch two {
			case "<<", ">>", "..":
				toks = append(toks, token{kind: tokPunct, text: two, pos: p})
				i += 2
				continue
			}
			switch c {
			case '=', '(', ')', ',', '+', '-', '*', '/', '%':
				toks = append(toks, token{kind: tokPunct, text: string(c), pos: p})
				i++
			default:
				return nil, errAt(file, p, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOL, pos: pos()})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'x' || c == 'X' ||
		c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// toks is a token cursor over one directive line.
type toks struct {
	file string
	list []token
	i    int
}

func (t *toks) peek() token { return t.list[t.i] }

func (t *toks) next() token {
	tk := t.list[t.i]
	if tk.kind != tokEOL {
		t.i++
	}
	return tk
}

// expectPunct consumes the given punctuation token or fails with an
// expected-token message.
func (t *toks) expectPunct(p string) error {
	tk := t.peek()
	if tk.kind != tokPunct || tk.text != p {
		return errAt(t.file, tk.pos, "expected %q, got %s", p, tk.describe())
	}
	t.next()
	return nil
}

// expectIdent consumes an identifier and returns it.
func (t *toks) expectIdent() (token, error) {
	tk := t.peek()
	if tk.kind != tokIdent {
		return tk, errAt(t.file, tk.pos, "expected identifier, got %s", tk.describe())
	}
	return t.next(), nil
}

// expectEOL fails unless the line is exhausted.
func (t *toks) expectEOL() error {
	tk := t.peek()
	if tk.kind != tokEOL {
		return errAt(t.file, tk.pos, "unexpected %s after directive", tk.describe())
	}
	return nil
}

func (tk token) describe() string {
	if tk.kind == tokEOL {
		return "end of line"
	}
	return fmt.Sprintf("%q", tk.text)
}
