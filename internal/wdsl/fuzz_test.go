package wdsl_test

// FuzzParse pins the DSL front end's robustness contract: arbitrary
// input must parse deterministically and either succeed or produce a
// positional *wdsl.Error — never a panic, never an error without a
// file:line:col anchor. Inputs that parse are pushed on through
// workload.FromDSL, so the fuzzer also drives the lowering's semantic
// validation (sweep splitting, grant range checks, expression
// evaluation) with whatever step soup the mutator invents. The seed
// corpus (testdata/fuzz/FuzzParse) is slanted toward the v2 surface:
// sweep declarations in both forms, user-mode loads, and grants.
//
// The external test package is deliberate: workload imports wdsl, so
// lowering can only be exercised from outside the package.

import (
	"errors"
	"testing"

	"repro/internal/wdsl"
	"repro/internal/workload"
)

func FuzzParse(f *testing.F) {
	f.Add("mesh 2\nsweep N 1 2 4\nrun N\n")
	f.Add("mesh 1\nsweep N 1 .. 4\nprogram p\n    movi i1, #{N}\n    halt\nend\nload p on node 0\nrun 100\n")
	f.Add("mesh N\nsweep N 2 3\nrun 10\n")
	f.Add("mesh 1\nprogram p\n    halt\nend\nload p on node 0 user\ngrant node=0 reg=1 perms=rwxk seglen=6 addr=64\nrun 10\n")
	f.Add("grant reg=1 perms=q addr=0\n")
	f.Add("sweep P 1\n")
	f.Add("sweep P 9 ..\n")
	f.Add("mesh 1\nconst A 1<<40\ngrant reg=A perms=r addr=A\nrun A\n")
	f.Add("workload \"w\"\nmesh 2 2\ncaching on\ndeadline 5s\nbudget 100\n")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := wdsl.Parse("t.wl", src)
		if err != nil {
			requirePositional(t, err)
			// Parsing is a pure function of the source.
			if _, err2 := wdsl.Parse("t.wl", src); err2 == nil || err2.Error() != err.Error() {
				t.Fatalf("parse not deterministic: %v vs %v", err, err2)
			}
			return
		}
		if _, err := workload.FromDSL(file); err != nil {
			requirePositional(t, err)
		}
	})
}

// requirePositional fails unless err is a *wdsl.Error carrying a sane
// source anchor.
func requirePositional(t *testing.T, err error) {
	t.Helper()
	var perr *wdsl.Error
	if !errors.As(err, &perr) {
		t.Fatalf("error %v is not a positional *wdsl.Error", err)
	}
	if perr.File != "t.wl" || perr.Pos.Line < 1 || perr.Pos.Col < 1 {
		t.Fatalf("error %v has a bogus position (%q %d:%d)", err, perr.File, perr.Pos.Line, perr.Pos.Col)
	}
}
