package cluster

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestRegFileScoreboard(t *testing.T) {
	rf := NewRegFile(16)
	// Registers start full and zero so threads have defined state.
	for i := 0; i < 16; i++ {
		if !rf.Full(i) || rf.Get(i).Bits != 0 {
			t.Fatalf("reg %d not initialized full/zero", i)
		}
	}
	rf.MarkEmpty(3)
	if rf.Full(3) {
		t.Error("MarkEmpty did not clear scoreboard")
	}
	rf.Set(3, isa.Word{Bits: 42, Ptr: true})
	if !rf.Full(3) || rf.Get(3).Bits != 42 || !rf.Get(3).Ptr {
		t.Error("Set did not write value+tag and mark full")
	}
	if rf.Len() != 16 {
		t.Errorf("Len = %d", rf.Len())
	}
}

func TestHThreadLifecycle(t *testing.T) {
	h := NewHThread()
	if h.Status != ThreadEmpty || h.Current() != nil {
		t.Fatal("fresh thread should be empty with no instruction")
	}
	p := asm.MustAssemble("t", "nop\nhalt")
	h.Load(p, true)
	if h.Status != ThreadRunning || !h.Privileged {
		t.Fatal("Load did not start the thread")
	}
	in := h.Current()
	if in == nil || in != &p.Insts[0] {
		t.Fatal("Current returned wrong instruction")
	}
	h.PC = 2 // past the end
	if h.Current() != nil {
		t.Error("Current past program end should be nil")
	}
	h.Fault("bad")
	if h.Status != ThreadFaulted || h.FaultMsg != "bad" {
		t.Error("Fault did not record state")
	}
	if h.Current() != nil {
		t.Error("faulted thread should not present instructions")
	}
}

func TestHThreadFiles(t *testing.T) {
	h := NewHThread()
	if h.File(isa.RInt) != h.Ints || h.File(isa.RFP) != h.FPs {
		t.Error("File dispatch wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("File(RGCC) should panic: GCCs live on the cluster")
		}
	}()
	h.File(isa.RGCC)
}

func TestGCCFileStartsEmpty(t *testing.T) {
	g := NewGCCFile()
	for i := 0; i < isa.NumGCCRegs; i++ {
		if g.Full(i) {
			t.Fatalf("gcc%d should start empty: it must be produced before consumption", i)
		}
	}
	g.Set(1, isa.W(1))
	if !g.Full(1) || g.Get(1).Bits != 1 {
		t.Error("Set failed")
	}
	g.MarkEmpty(1)
	if g.Full(1) {
		t.Error("MarkEmpty failed")
	}
}

func TestClusterNew(t *testing.T) {
	c := New(2)
	if c.ID != 2 || len(c.Threads) != isa.NumVThreads {
		t.Fatalf("cluster = %+v", c)
	}
	for _, th := range c.Threads {
		if th == nil || th.Status != ThreadEmpty {
			t.Fatal("thread slots not initialized")
		}
	}
	if c.Running(0, 1, 2) {
		t.Error("no slot should be running")
	}
	c.Threads[1].Load(asm.MustAssemble("t", "halt"), false)
	if !c.Running(0, 1) {
		t.Error("slot 1 should be running")
	}
}

func TestThreadStatusString(t *testing.T) {
	want := map[ThreadStatus]string{
		ThreadEmpty: "empty", ThreadRunning: "running",
		ThreadHalted: "halted", ThreadFaulted: "faulted",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}
