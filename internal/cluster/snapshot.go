package cluster

// Checkpoint support (DESIGN.md, "Checkpoint/restore"). Each type follows
// the subsystem's three-part contract: EncodeState streams the complete
// architectural state, DecodeXState rebuilds a detached scratch object
// (all validation happens here, against the snap.Reader's sticky error),
// and Adopt commits a scratch into a live object in place — so restore
// never invalidates pointers other code holds (chips hand out *HThread and
// *RegFile freely) and never half-mutates on a bad snapshot.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/snap"
)

// Decode bounds: snapshots carry at most these many entries per field, so
// corrupt counts fail cleanly instead of driving huge allocations.
const (
	maxRegs      = 1024
	maxProgWords = 1 << 22
	maxNameLen   = 1 << 10
	maxFaultLen  = 1 << 12
)

// EncodeState writes the register values and scoreboard bits (packed —
// see isa.EncodeWords).
func (rf *RegFile) EncodeState(w *snap.Writer) {
	isa.EncodeWords(w, rf.vals)
	w.Bools(rf.full)
}

// DecodeRegFileState reads a register file written by EncodeState.
func DecodeRegFileState(r *snap.Reader) *RegFile {
	rf := &RegFile{vals: isa.DecodeWords(r, maxRegs), full: r.Bools(maxRegs)}
	if r.Err() == nil && len(rf.full) != len(rf.vals) {
		r.Fail(fmt.Errorf("cluster: register file with %d values, %d scoreboard bits", len(rf.vals), len(rf.full)))
	}
	return rf
}

// Adopt copies src's state into rf in place.
func (rf *RegFile) Adopt(src *RegFile) {
	copy(rf.vals, src.vals)
	copy(rf.full, src.full)
}

// EncodeState writes the GCC replica's values and scoreboard bits.
func (g *GCCFile) EncodeState(w *snap.Writer) {
	isa.EncodeWords(w, g.vals)
	w.Bools(g.full)
}

// DecodeGCCFileState reads a GCC replica written by EncodeState.
func DecodeGCCFileState(r *snap.Reader) *GCCFile {
	g := &GCCFile{vals: isa.DecodeWords(r, maxRegs), full: r.Bools(maxRegs)}
	if r.Err() == nil && len(g.full) != len(g.vals) {
		r.Fail(fmt.Errorf("cluster: GCC replica with %d values, %d scoreboard bits", len(g.vals), len(g.full)))
	}
	return g
}

// Adopt copies src's state into g in place.
func (g *GCCFile) Adopt(src *GCCFile) {
	copy(g.vals, src.vals)
	copy(g.full, src.full)
}

// decodeProgramMemo decodes an embedded program, deduplicating by full
// content within one stream: the runtime installs identical handler
// programs on every node, so an n-node restore decodes each once.
// Programs are immutable after assembly, so sharing the decoded object is
// safe (and Save re-encodes contents, so re-saves stay byte-identical).
func decodeProgramMemo(r *snap.Reader, name string, words []uint64) *isa.Program {
	key := make([]byte, 0, len(name)+1+len(words)*8)
	key = append(key, name...)
	key = append(key, 0)
	for _, w := range words {
		key = append(key,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	memo := r.Memo()
	if p, ok := memo[string(key)].(*isa.Program); ok {
		return p
	}
	p, err := isa.DecodeProgram(name, words)
	if err != nil {
		r.Fail(err)
		return nil
	}
	memo[string(key)] = p
	return p
}

// EncodeState writes the thread's control state, program (in the isa
// binary encoding — label names are an assembler artifact and are not
// preserved), statistics, and register files.
func (h *HThread) EncodeState(w *snap.Writer) {
	w.U64(uint64(h.Status))
	w.Bool(h.Privileged)
	w.Int(h.PC)
	w.String(h.FaultMsg)
	w.U64(h.Issued)
	w.U64(h.OpsIssued)
	w.U64(h.StallCycles)
	if h.Prog != nil {
		w.Bool(true)
		w.String(h.Prog.Name)
		w.U64s(isa.EncodeProgram(h.Prog))
	} else {
		w.Bool(false)
	}
	h.Ints.EncodeState(w)
	h.FPs.EncodeState(w)
}

// DecodeHThreadState reads a thread context written by EncodeState.
func DecodeHThreadState(r *snap.Reader) *HThread {
	h := &HThread{
		Status:      ThreadStatus(r.U64()),
		Privileged:  r.Bool(),
		PC:          r.Int(),
		FaultMsg:    r.String(maxFaultLen),
		Issued:      r.U64(),
		OpsIssued:   r.U64(),
		StallCycles: r.U64(),
	}
	if h.Status > ThreadFaulted {
		r.Fail(fmt.Errorf("cluster: bad thread status %d", h.Status))
	}
	if r.Bool() {
		name := r.String(maxNameLen)
		words := r.U64s(maxProgWords)
		if r.Err() == nil {
			h.Prog = decodeProgramMemo(r, name, words)
		}
	}
	h.Ints = DecodeRegFileState(r)
	h.FPs = DecodeRegFileState(r)
	if r.Err() == nil {
		if h.Ints.Len() != isa.NumIntRegs || h.FPs.Len() != isa.NumFPRegs {
			r.Fail(fmt.Errorf("cluster: bad register file sizes %d/%d", h.Ints.Len(), h.FPs.Len()))
		}
		if h.Prog != nil && (h.PC < 0 || h.PC > len(h.Prog.Insts)) {
			r.Fail(fmt.Errorf("cluster: PC %d outside program of %d instructions", h.PC, len(h.Prog.Insts)))
		}
	}
	return h
}

// Adopt copies src's state into h in place, including the program pointer
// (programs are immutable once assembled, so sharing is safe).
func (h *HThread) Adopt(src *HThread) {
	h.Prog = src.Prog
	h.PC = src.PC
	h.Status = src.Status
	h.Privileged = src.Privileged
	h.FaultMsg = src.FaultMsg
	h.Issued = src.Issued
	h.OpsIssued = src.OpsIssued
	h.StallCycles = src.StallCycles
	h.Ints.Adopt(src.Ints)
	h.FPs.Adopt(src.FPs)
}

// EncodeState writes the cluster's round-robin rotation point, GCC
// replica, and all six thread contexts.
func (c *Cluster) EncodeState(w *snap.Writer) {
	w.Int(c.LastIssued)
	c.GCC.EncodeState(w)
	for _, th := range c.Threads {
		th.EncodeState(w)
	}
}

// DecodeClusterState reads a cluster written by EncodeState.
func DecodeClusterState(r *snap.Reader, id int) *Cluster {
	c := &Cluster{ID: id, LastIssued: r.Int()}
	c.GCC = DecodeGCCFileState(r)
	for i := range c.Threads {
		c.Threads[i] = DecodeHThreadState(r)
	}
	if r.Err() == nil {
		if c.LastIssued < -1 || c.LastIssued >= isa.NumVThreads {
			r.Fail(fmt.Errorf("cluster: bad rotation point %d", c.LastIssued))
		}
		if len(c.GCC.vals) != isa.NumGCCRegs {
			r.Fail(fmt.Errorf("cluster: bad GCC size %d", len(c.GCC.vals)))
		}
	}
	return c
}

// Adopt copies src's state into c in place.
func (c *Cluster) Adopt(src *Cluster) {
	c.LastIssued = src.LastIssued
	c.GCC.Adopt(src.GCC)
	for i := range c.Threads {
		c.Threads[i].Adopt(src.Threads[i])
	}
}
