// Package cluster provides the architectural state of one MAP execution
// cluster (Figure 3): the scoreboarded integer and floating-point register
// files holding all six V-Thread contexts, the replicated global
// condition-code registers, and the per-H-Thread control state (program,
// PC, run status).
//
// The issue pipeline that operates on this state lives in internal/chip;
// this package owns only the state and its invariants, mirroring how the
// paper separates the register files from the synchronization pipeline
// stage that consults their scoreboard bits (Section 3.2).
package cluster

import (
	"fmt"

	"repro/internal/isa"
)

// RegFile is one scoreboarded register file bank: a value and a full/empty
// scoreboard bit per register (Section 3.1, "H-Thread Synchronization": "A
// scoreboard bit associated with the destination register is cleared
// (empty) when a multicycle operation ... issues and set (full) when the
// result is available").
type RegFile struct {
	vals []isa.Word
	full []bool
}

// NewRegFile creates a file of n registers, all full and zero. Threads
// start with a defined, readable register state.
func NewRegFile(n int) *RegFile {
	rf := &RegFile{vals: make([]isa.Word, n), full: make([]bool, n)}
	for i := range rf.full {
		rf.full[i] = true
	}
	return rf
}

// Full reports the scoreboard bit of register i.
func (rf *RegFile) Full(i int) bool { return rf.full[i] }

// Get returns the value of register i; the caller must have checked Full.
func (rf *RegFile) Get(i int) isa.Word { return rf.vals[i] }

// Set writes register i and marks it full (result writeback).
func (rf *RegFile) Set(i int, w isa.Word) {
	rf.vals[i] = w
	rf.full[i] = true
}

// MarkEmpty clears the scoreboard bit (issue of a multicycle op targeting
// i, or an explicit EMPTY operation preparing an inter-cluster transfer).
func (rf *RegFile) MarkEmpty(i int) { rf.full[i] = false }

// Len returns the number of registers.
func (rf *RegFile) Len() int { return len(rf.vals) }

// ThreadStatus describes an H-Thread slot's lifecycle.
type ThreadStatus uint8

const (
	ThreadEmpty   ThreadStatus = iota // no program loaded
	ThreadRunning                     // eligible for issue
	ThreadHalted                      // executed HALT
	ThreadFaulted                     // synchronous exception (e.g. protection)
)

func (s ThreadStatus) String() string {
	switch s {
	case ThreadEmpty:
		return "empty"
	case ThreadRunning:
		return "running"
	case ThreadHalted:
		return "halted"
	case ThreadFaulted:
		return "faulted"
	}
	return "?"
}

// HThread is the control state of one H-Thread: the instruction sequence it
// executes on this cluster and its program counter.
type HThread struct {
	Prog       *isa.Program
	PC         int
	Status     ThreadStatus
	Privileged bool // event/exception/boot threads may use privileged ops
	FaultMsg   string

	// Ints and FPs are this context's register files.
	Ints *RegFile
	FPs  *RegFile

	// Stats.
	Issued      uint64 // instructions issued
	OpsIssued   uint64 // operations issued (<= 3 per instruction)
	StallCycles uint64 // cycles this thread was resident but not issued
}

// NewHThread creates an empty H-Thread context with fresh register files.
func NewHThread() *HThread {
	return &HThread{
		Ints: NewRegFile(isa.NumIntRegs),
		FPs:  NewRegFile(isa.NumFPRegs),
	}
}

// Load installs a program and makes the thread runnable.
func (h *HThread) Load(p *isa.Program, privileged bool) {
	h.Prog = p
	h.PC = 0
	h.Status = ThreadRunning
	h.Privileged = privileged
	h.FaultMsg = ""
}

// Current returns the next instruction to issue, or nil if the thread is
// not running or has run off the end of its program.
func (h *HThread) Current() *isa.Inst {
	if h.Status != ThreadRunning || h.Prog == nil || h.PC >= len(h.Prog.Insts) {
		return nil
	}
	return &h.Prog.Insts[h.PC]
}

// Fault transitions the thread to the faulted state with a diagnostic.
// Protection violations are "detected in the first execution cycle" and
// handled synchronously (Section 3.3).
func (h *HThread) Fault(msg string) {
	h.Status = ThreadFaulted
	h.FaultMsg = msg
}

// File returns the register file for a class (integer or FP).
func (h *HThread) File(c isa.RegClass) *RegFile {
	switch c {
	case isa.RInt:
		return h.Ints
	case isa.RFP:
		return h.FPs
	}
	panic(fmt.Sprintf("cluster: no register file for class %d", c))
}

// GCCFile is a cluster's local copy of the global condition-code registers.
// Each cluster holds a physical replica; broadcasts update every replica,
// while reads and EMPTY operations act on the local copy only (Section 3.1,
// "the map global CC registers are physically replicated on each of the
// clusters").
type GCCFile struct {
	vals []isa.Word
	full []bool
}

// NewGCCFile creates the replica with all registers empty: a gcc must be
// produced (broadcast) before it can be consumed.
func NewGCCFile() *GCCFile {
	return &GCCFile{
		vals: make([]isa.Word, isa.NumGCCRegs),
		full: make([]bool, isa.NumGCCRegs),
	}
}

// Full reports the local scoreboard bit.
func (g *GCCFile) Full(i int) bool { return g.full[i] }

// Get reads the local copy.
func (g *GCCFile) Get(i int) isa.Word { return g.vals[i] }

// Set writes the local copy and marks it full (one leg of a broadcast).
func (g *GCCFile) Set(i int, w isa.Word) {
	g.vals[i] = w
	g.full[i] = true
}

// MarkEmpty empties the local copy (the EMPTY operation; each consumer
// empties its own replica, enabling the barrier protocol of Figure 6).
func (g *GCCFile) MarkEmpty(i int) { g.full[i] = false }

// Cluster is the architectural state of one execution cluster: six H-Thread
// contexts (one per V-Thread slot) and the local GCC replica. The
// instruction cache of Figure 3 is modelled as an always-hit store: the
// Program attached to each H-Thread.
type Cluster struct {
	ID      int `snap:"derived,fixed at construction; decode validates against it"`
	Threads [isa.NumVThreads]*HThread
	GCC     *GCCFile

	// LastIssued is the V-Thread slot that issued most recently, the
	// rotation point for round-robin selection among ready threads.
	LastIssued int
}

// New creates cluster id with empty thread slots.
func New(id int) *Cluster {
	c := &Cluster{ID: id, GCC: NewGCCFile(), LastIssued: -1}
	for i := range c.Threads {
		c.Threads[i] = NewHThread()
	}
	return c
}

// Running reports whether any thread in the given slot range is running.
func (c *Cluster) Running(slots ...int) bool {
	for _, s := range slots {
		if c.Threads[s].Status == ThreadRunning {
			return true
		}
	}
	return false
}
