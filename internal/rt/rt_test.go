package rt

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
)

func TestNewAssemblesAllHandlers(t *testing.T) {
	for _, caching := range []bool{false, true} {
		r, err := New(mem.DefaultConfig(), Options{Caching: caching})
		if err != nil {
			t.Fatalf("caching=%v: %v", caching, err)
		}
		for name, p := range map[string]*isa.Program{
			"fault": r.FaultHandler, "ltlb": r.LTLBHandler,
			"msg": r.MsgHandler, "reply": r.ReplyHandler,
		} {
			if p == nil || p.Len() == 0 {
				t.Errorf("caching=%v: %s handler empty", caching, name)
			}
		}
	}
}

func TestDIPsAreDistinctAndValid(t *testing.T) {
	r, err := New(mem.DefaultConfig(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dips := map[string]uint64{
		"rwrite":   r.DIPRemoteWrite,
		"rwritesy": r.DIPRemoteWriteSync,
		"rread":    r.DIPRemoteRead,
		"bfetch":   r.DIPBlockFetch,
		"rpcadd":   r.DIPFetchAdd,
		"bwrite":   r.DIPBlockWrite,
	}
	seen := map[uint64]string{}
	for name, d := range dips {
		if int(d) >= r.MsgHandler.Len() {
			t.Errorf("%s DIP %d outside message handler (%d insts)", name, d, r.MsgHandler.Len())
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("DIPs %s and %s collide at %d", prev, name, d)
		}
		seen[d] = name
	}
	for name, d := range map[string]uint64{"rreply": r.DIPReadReply, "breply": r.DIPBlockReply} {
		if int(d) >= r.ReplyHandler.Len() {
			t.Errorf("%s DIP %d outside reply handler", name, d)
		}
	}
	if r.DIPReadReply == r.DIPBlockReply {
		t.Error("reply DIPs collide")
	}
}

func TestHandlersAreLoops(t *testing.T) {
	// Every handler must loop forever: no HALT anywhere (a halted event
	// V-Thread would wedge the machine).
	r, err := New(mem.DefaultConfig(), Options{Caching: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*isa.Program{
		"fault": r.FaultHandler, "ltlb": r.LTLBHandler,
		"msg": r.MsgHandler, "reply": r.ReplyHandler,
	} {
		for i, in := range p.Insts {
			for _, op := range in.Ops() {
				if op.Code == isa.HALT {
					t.Errorf("%s handler has HALT at instruction %d", name, i)
				}
			}
		}
	}
}

func TestHandlersUseOnlyLegalRegisters(t *testing.T) {
	r, err := New(mem.DefaultConfig(), Options{Caching: true})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, p *isa.Program) {
		for i, in := range p.Insts {
			for _, op := range in.Ops() {
				for _, reg := range []isa.Reg{op.Dst, op.Src1, op.Src2} {
					if reg.Class == isa.RInt && reg.Index >= isa.NumIntRegs {
						t.Errorf("%s inst %d: bad register %v", name, i, reg)
					}
				}
				// Multi-register operands must stay in range.
				switch op.Code {
				case isa.TLBW, isa.MRETRY:
					if int(op.Src1.Index)+3 >= isa.NumIntRegs {
						t.Errorf("%s inst %d: %s operand block overflows file", name, i, op.Code)
					}
				case isa.SEND, isa.SENDN:
					if int(op.Dst.Index)+int(op.Imm) > isa.NumIntRegs {
						t.Errorf("%s inst %d: send body overflows file", name, i)
					}
				}
			}
		}
	}
	check("fault", r.FaultHandler)
	check("ltlb", r.LTLBHandler)
	check("msg", r.MsgHandler)
	check("reply", r.ReplyHandler)
}

func TestInstallLoadsEventSlots(t *testing.T) {
	m := machine.New(machine.DefaultConfig())
	r, err := Install(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumNodes(); i++ {
		for cl := 0; cl < isa.NumClusters; cl++ {
			th := m.Chip(i).Thread(isa.EventSlot, cl)
			if th.Prog == nil || !th.Privileged {
				t.Errorf("node %d cluster %d: event handler not installed/privileged", i, cl)
			}
		}
	}
	_ = r
}

func TestHandlerProgramsDifferByPolicy(t *testing.T) {
	nc, err := New(mem.DefaultConfig(), Options{Caching: false})
	if err != nil {
		t.Fatal(err)
	}
	ca, err := New(mem.DefaultConfig(), Options{Caching: true})
	if err != nil {
		t.Fatal(err)
	}
	if nc.LTLBHandler.Len() == ca.LTLBHandler.Len() &&
		nc.LTLBHandler.String() == ca.LTLBHandler.String() {
		t.Error("caching and non-cached LTLB handlers should differ")
	}
	// The message and reply handlers are shared between policies.
	if nc.MsgHandler.String() != ca.MsgHandler.String() {
		t.Error("message handlers should be identical across policies")
	}
}

func TestHandlersSurviveBinaryEncoding(t *testing.T) {
	// The real handler programs are the richest ISA streams in the
	// repository: round-trip them through the binary instruction encoding.
	r, err := New(mem.DefaultConfig(), Options{Caching: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*isa.Program{
		"fault": r.FaultHandler, "ltlb": r.LTLBHandler,
		"msg": r.MsgHandler, "reply": r.ReplyHandler, "exc": r.ExcHandler,
	} {
		ws := isa.EncodeProgram(p)
		got, err := isa.DecodeProgram(name, ws)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != p.Len() {
			t.Fatalf("%s: %d vs %d instructions", name, got.Len(), p.Len())
		}
		// Labels are an assembler artifact not carried by the binary form;
		// compare with branch targets rendered numerically on both sides.
		stripLabels := func(in isa.Inst) string {
			cp := in
			for _, set := range []**isa.Op{&cp.IOp, &cp.MOp, &cp.FOp} {
				if *set != nil {
					op := **set
					op.Label = ""
					*set = &op
				}
			}
			return cp.String()
		}
		for i := range p.Insts {
			if got.Insts[i].String() != stripLabels(p.Insts[i]) {
				t.Errorf("%s inst %d: %q vs %q", name, i,
					got.Insts[i].String(), stripLabels(p.Insts[i]))
			}
		}
	}
}
