// Package rt is the M-Machine's software runtime: the event and message
// handlers that, together with the hardware mechanisms, implement
// transparent remote memory access (Section 4.2) and software-controlled
// caching of remote data in local DRAM (Section 4.3).
//
// All handlers are MAP assembly programs running in the event V-Thread,
// one per cluster exactly as the paper assigns them:
//
//	cluster 0: memory synchronization and block status faults
//	cluster 1: LTLB misses (local page walk, or remote request generation)
//	cluster 2: arriving priority-0 messages (remote read/write/block fetch)
//	cluster 3: arriving priority-1 messages (replies)
//
// The measured software costs of Table 1 and Figure 9 come from executing
// these programs on the simulated pipeline.
package rt

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/mem"
)

// Options selects the runtime's remote-data policy.
type Options struct {
	// Caching enables caching of remote data in local DRAM using block
	// status bits (Section 4.3). When false, remote references are
	// satisfied by non-cached remote access messages (Section 4.2).
	Caching bool
}

// Runtime carries the assembled handler programs and their dispatch
// instruction pointers.
type Runtime struct {
	Opts Options

	FaultHandler *isa.Program // event slot, cluster 0
	LTLBHandler  *isa.Program // event slot, cluster 1
	MsgHandler   *isa.Program // event slot, cluster 2 (priority 0)
	ReplyHandler *isa.Program // event slot, cluster 3 (priority 1)
	ExcHandler   *isa.Program // exception slot, cluster 0

	// Dispatch instruction pointers: instruction indices within MsgHandler
	// (priority 0) and ReplyHandler (priority 1).
	DIPRemoteWrite     uint64 // store a word at the destination
	DIPRemoteWriteSync uint64 // store a word and set its sync bit full
	DIPRemoteRead      uint64 // read a word, reply with DIPReadReply
	DIPBlockFetch      uint64 // fetch an 8-word block, reply with DIPBlockReply
	DIPFetchAdd        uint64 // remote procedure call: atomic fetch-and-add
	DIPBlockWrite      uint64 // write back an 8-word block at its home
	DIPReadReply       uint64 // write reply data to the faulting register
	DIPBlockReply      uint64 // install a fetched block and retry
}

// rtCache memoizes assembled runtimes. Handler text depends only on the
// memory configuration and the options, both plain value structs, and a
// Runtime is immutable once assembled (Install only reads it and programs
// are never mutated after fixup), so machines sharing a configuration can
// share one runtime. Experiment harnesses build hundreds of fresh machines;
// without this every boot re-runs the assembler five times.
var (
	rtCacheMu sync.Mutex
	rtCache   = map[rtKey]*Runtime{}
)

type rtKey struct {
	cfg  mem.Config
	opts Options
}

// New assembles the runtime for the given memory configuration (or returns
// the cached assembly for an already-seen configuration).
func New(cfg mem.Config, opts Options) (*Runtime, error) {
	key := rtKey{cfg: cfg, opts: opts}
	rtCacheMu.Lock()
	cached := rtCache[key]
	rtCacheMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	rt, err := build(cfg, opts)
	if err != nil {
		return nil, err
	}
	rtCacheMu.Lock()
	rtCache[key] = rt
	rtCacheMu.Unlock()
	return rt, nil
}

// build performs the actual assembly.
func build(cfg mem.Config, opts Options) (*Runtime, error) {
	rt := &Runtime{Opts: opts}

	consts := fmt.Sprintf(`
.equ LPT_BASE %d
.equ LPT_MASK %d
.equ SCRATCH %d
.equ ALLOC_CTR %d
.equ STATUS_RW 0xAAAAAAAAAAAAAAAA
`,
		cfg.LPT.Base, cfg.LPT.Entries-1,
		machine.ScratchBase(cfg), machine.AllocCounterAddr(cfg))

	// The reply handler has no cross-handler references; assemble it first
	// so its DIPs are available to the message handler's reply sends.
	reply, err := asm.Assemble("rt-reply", consts+replyHandlerSrc)
	if err != nil {
		return nil, fmt.Errorf("rt: reply handler: %w", err)
	}
	rt.ReplyHandler = reply
	rt.DIPReadReply = uint64(reply.Labels["rreply"])
	rt.DIPBlockReply = uint64(reply.Labels["breply"])

	replyDips := fmt.Sprintf(".equ DIP_RREPLY %d\n.equ DIP_BREPLY %d\n",
		rt.DIPReadReply, rt.DIPBlockReply)
	msg, err := asm.Assemble("rt-msg", consts+replyDips+msgHandlerSrc)
	if err != nil {
		return nil, fmt.Errorf("rt: message handler: %w", err)
	}
	rt.MsgHandler = msg
	rt.DIPRemoteWrite = uint64(msg.Labels["rwrite"])
	rt.DIPRemoteWriteSync = uint64(msg.Labels["rwritesy"])
	rt.DIPRemoteRead = uint64(msg.Labels["rread"])
	rt.DIPBlockFetch = uint64(msg.Labels["bfetch"])
	rt.DIPFetchAdd = uint64(msg.Labels["rpcadd"])
	rt.DIPBlockWrite = uint64(msg.Labels["bwrite"])

	dips := fmt.Sprintf(`
.equ DIP_RWRITE %d
.equ DIP_RREAD %d
.equ DIP_BFETCH %d
.equ DIP_RREPLY %d
.equ DIP_BREPLY %d
`,
		rt.DIPRemoteWrite, rt.DIPRemoteRead, rt.DIPBlockFetch,
		rt.DIPReadReply, rt.DIPBlockReply)

	ltlbSrc := ltlbHandlerSrcNonCached
	if opts.Caching {
		ltlbSrc = ltlbHandlerSrcCaching
	}
	ltlb, err := asm.Assemble("rt-ltlb", consts+dips+ltlbSrc)
	if err != nil {
		return nil, fmt.Errorf("rt: LTLB handler: %w", err)
	}
	rt.LTLBHandler = ltlb

	fault, err := asm.Assemble("rt-fault", consts+dips+faultHandlerSrc)
	if err != nil {
		return nil, fmt.Errorf("rt: fault handler: %w", err)
	}
	rt.FaultHandler = fault

	exc, err := asm.Assemble("rt-exc",
		fmt.Sprintf(".equ EXLOG %d\n", ExceptionLogAddr(cfg))+excHandlerSrc)
	if err != nil {
		return nil, fmt.Errorf("rt: exception handler: %w", err)
	}
	rt.ExcHandler = exc
	return rt, nil
}

// ExceptionLogAddr returns the physical address of the exception log: one
// count word followed by 3-word entries (vthread, cluster, pc).
func ExceptionLogAddr(cfg mem.Config) uint64 {
	return machine.ScratchBase(cfg) + 128
}

// ExceptionCount reads a node's exception log count.
func ExceptionCount(m *machine.Machine, node int) uint64 {
	w, _ := m.Chip(node).Mem.SDRAM.Read(ExceptionLogAddr(m.Cfg.Chip.Mem))
	return w
}

// Install boots the runtime on every node of the machine: the four handler
// programs are loaded into the event V-Thread (privileged), and the
// user-safe DIPs are registered with the SEND protection check.
func Install(m *machine.Machine, opts Options) (*Runtime, error) {
	rt, err := New(m.Cfg.Chip.Mem, opts)
	if err != nil {
		return nil, err
	}
	for _, c := range m.Chips {
		c.LoadProgram(isa.EventSlot, 0, rt.FaultHandler, true)
		c.LoadProgram(isa.EventSlot, 1, rt.LTLBHandler, true)
		c.LoadProgram(isa.EventSlot, 2, rt.MsgHandler, true)
		c.LoadProgram(isa.EventSlot, 3, rt.ReplyHandler, true)
		c.LoadProgram(isa.ExceptionSlot, 0, rt.ExcHandler, true)
		c.RegisterDIP(rt.DIPRemoteWrite)
		c.RegisterDIP(rt.DIPRemoteWriteSync)
		c.RegisterDIP(rt.DIPFetchAdd)
	}
	return rt, nil
}

// FlushBlockSrc returns an assembly fragment that writes the dirty block
// containing the address in register i1 back to its home node and demotes
// the local copy to READ-ONLY — the write-back half of a software coherence
// policy. The fragment clobbers i1, i7-i15 and must run privileged.
func (r *Runtime) FlushBlockSrc() string {
	return fmt.Sprintf(`
    and i1, i1, #-8         ; block base
    ld i8,  [i1]
    ld i9,  [i1+1]
    ld i10, [i1+2]
    ld i11, [i1+3]
    ld i12, [i1+4]
    ld i13, [i1+5]
    ld i14, [i1+6]
    ld i15, [i1+7]
    movi i7, #%d
    send i1, i7, i8, #8     ; ship the block home
    movi i7, #1
    bsw i1, i7              ; local copy becomes READ-ONLY
`, r.DIPBlockWrite)
}

// msgHandlerSrc runs on cluster 2 of the event V-Thread and dispatches
// arriving priority-0 messages: the dispatch loop reads the DIP from the
// register-mapped queue and jumps to it, exactly the structure of
// Figure 7(b).
const msgHandlerSrc = `
; Priority-0 message dispatch (event V-Thread, cluster 2).
dispatch:
    mov i1, net             ; dequeue dispatch instruction pointer
    jmpr i1                 ; jump to handler (stalls until a message arrives)

; Remote store: message = [DIP, addr, data] (the paper's 3-word example).
rwrite:
    mov i2, net             ; destination virtual address
    mov i3, net             ; data word
    st [i2], i3             ; may LTLB-miss; completed asynchronously
    br dispatch

; Remote store + set synchronization bit full (producer side of
; synchronizing communication).
rwritesy:
    mov i2, net
    mov i3, net
    stsy.af [i2], i3
    br dispatch

; Remote read: message = [DIP, addr, regdesc, srcnode]. The load may miss
; or LTLB-miss at this node (the Remote Cache Miss / Remote LTLB Miss rows
; of Table 1); the reply SEND stalls on the scoreboard until data arrives.
rread:
    mov i2, net             ; referenced address
    mov i3, net             ; destination register descriptor
    mov i4, net             ; requesting node
    ld  i5, [i2]
    mov i8, i3              ; reply body word 0: regdesc
    mov i9, i5              ; reply body word 1: data (stalls until loaded)
    movi i6, #DIP_RREPLY
    sendn i4, i6, i8, #2
    br dispatch

; Remote procedure call: atomic fetch-and-add (Section 4.1 lists "remote
; procedure call" among the handler actions). Message = [DIP, addr, delta,
; regdesc, srcnode]. Serialized with every other handler action at this
; node because one H-Thread runs all priority-0 handlers.
rpcadd:
    mov i2, net             ; target address
    mov i3, net             ; delta
    mov i4, net             ; destination register descriptor
    mov i5, net             ; requesting node
    ld  i6, [i2]
    add i7, i6, i3
    st  [i2], i7
    mov i8, i4
    mov i9, i6              ; reply with the old value
    movi i10, #DIP_RREPLY
    sendn i5, i10, i8, #2
    br dispatch

; Block write-back: the software counterpart of a coherence flush
; (Section 4.3: handlers "may implement a variety of coherence policies").
; Message = [DIP, block base, w0..w7]; the home applies all eight words.
bwrite:
    mov i2, net
    mov i8, net
    mov i9, net
    mov i10, net
    mov i11, net
    mov i12, net
    mov i13, net
    mov i14, net
    mov i15, net
    st [i2],   i8
    st [i2+1], i9
    st [i2+2], i10
    st [i2+3], i11
    st [i2+4], i12
    st [i2+5], i13
    st [i2+6], i14
    st [i2+7], i15
    br dispatch

; Block fetch (caching policy): message = [DIP, addr, rec0..rec3, srcnode].
; The home node logs the requester in the software directory and returns
; the 8-word block (Section 4.3).
bfetch:
    mov i2, net             ; faulting virtual address
    mov i3, net             ; rec0
    mov i4, net             ; rec1
    mov i5, net             ; rec2
    mov i6, net             ; rec3
    mov i15, net            ; requesting node
    dirlog i2, i15
    and i1, i2, #-8         ; block base
    ld i7,  [i1]
    ld i8,  [i1+1]
    ld i9,  [i1+2]
    ld i10, [i1+3]
    ld i11, [i1+4]
    ld i12, [i1+5]
    ld i13, [i1+6]
    ld i14, [i1+7]
    movi i0, #DIP_BREPLY
    sendn i15, i0, i2, #13  ; body = [addr, rec0..rec3, w0..w7]
    br dispatch
`

// replyHandlerSrc runs on cluster 3 and handles priority-1 replies.
const replyHandlerSrc = `
; Priority-1 message dispatch (event V-Thread, cluster 3).
rdispatch:
    mov i1, net
    jmpr i1

; Read reply: [DIP, node, regdesc, data]. The handler decodes the original
; load destination and writes the data directly there (Section 4.2 step 7).
rreply:
    mov i2, net             ; destination-address word (unused)
    mov i3, net             ; register descriptor
    mov i4, net             ; data
    rstw i3, i4
    br rdispatch

; Block reply: [DIP, node, addr, rec0..rec3, w0..w7]. Install the block in
; local DRAM (allocating a shadow page if needed), mark it READ/WRITE, and
; retry the faulting operation (Section 4.3).
breply:
    mov i1, net             ; skip destination-address word
    mov i1, net             ; faulting virtual address
    movi i2, #SCRATCH       ; spill the 4-word record to runtime scratch
    mov i3, net
    stp [i2], i3
    mov i3, net
    stp [i2+1], i3
    mov i3, net
    stp [i2+2], i3
    mov i3, net
    stp [i2+3], i3
    mov i8, net             ; the 8 block words
    mov i9, net
    mov i10, net
    mov i11, net
    mov i12, net
    mov i13, net
    mov i14, net
    mov i15, net
    shr i3, i1, #9          ; vpn
    and i4, i3, #LPT_MASK
    shl i4, i4, #2
    add i4, i4, #LPT_BASE   ; LPT slot
    ldp i5, [i4]
    shl i6, i3, #1
    or  i6, i6, #1          ; expected tag
    eq  i7, i5, i6
    brt i7, bp_have
    movi i5, #ALLOC_CTR     ; allocate a fresh shadow page
    ldp i7, [i5]
    add i2, i7, #1
    stp [i5], i2
    stp [i4], i6
    stp [i4+1], i7
    movi i2, #0             ; all blocks INVALID until installed
    stp [i4+2], i2
    stp [i4+3], i2
    br bp_store
bp_have:
    ldp i7, [i4+1]          ; ppn
bp_store:
    shl i7, i7, #9
    and i2, i1, #511
    and i2, i2, #-8
    add i7, i7, i2          ; physical block base
    stp [i7],   i8
    stp [i7+1], i9
    stp [i7+2], i10
    stp [i7+3], i11
    stp [i7+4], i12
    stp [i7+5], i13
    stp [i7+6], i14
    stp [i7+7], i15
    movi i2, #2             ; READ/WRITE
    bsw i1, i2
    movi i6, #SCRATCH       ; reload the record and retry the access
    ldp i2, [i6]
    ldp i3, [i6+1]
    ldp i4, [i6+2]
    ldp i5, [i6+3]
    mretry i2
    br rdispatch
`

// ltlbHandlerSrcNonCached runs on cluster 1: the LTLB miss handler of
// Section 4.2. It probes the GTLB; local misses are satisfied by an LPT
// walk (allocating a page on first touch of a home page); remote references
// become remote read/write messages.
const ltlbHandlerSrcNonCached = `
loop:
    mov i1, evq             ; event record word 0 (type/kind)
    mov i2, evq             ; faulting virtual address
    mov i3, evq             ; store data
    mov i4, evq             ; destination register descriptor
    gprobe i5, i2           ; home node for the address
    mov i6, node
    eq  i7, i5, i6
    brf i7, remote
    shr i8, i2, #9          ; local: walk the LPT
    and i9, i8, #LPT_MASK
    shl i9, i9, #2
    add i9, i9, #LPT_BASE
    ldp i10, [i9]           ; tag word
    shl i11, i8, #1
    or  i11, i11, #1
    eq  i12, i10, i11
    brf i12, alloc
    ldp i11, [i9+1]         ; entry resident: install and retry
    ldp i12, [i9+2]
    ldp i13, [i9+3]
    tlbw i10
    mretry i1
    br loop
alloc:
    movi i5, #ALLOC_CTR     ; first touch of a home page: allocate it
    ldp i6, [i5]
    add i7, i6, #1
    stp [i5], i7
    shl i10, i8, #1
    or  i10, i10, #1
    mov i11, i6
    movi i12, #STATUS_RW
    mov i13, i12
    stp [i9], i10
    stp [i9+1], i11
    stp [i9+2], i12
    stp [i9+3], i13
    tlbw i10
    mretry i1
    br loop
remote:
    shr i8, i1, #4
    and i8, i8, #15         ; faulting operation kind
    brt i8, rwr
    mov i8, i4              ; remote read request: [regdesc, srcnode]
    mov i9, node
    movi i10, #DIP_RREAD
    send i2, i10, i8, #2
    br loop
rwr:
    mov i8, i3              ; remote write request: [data]
    movi i10, #DIP_RWRITE
    send i2, i10, i8, #1
    br loop
`

// ltlbHandlerSrcCaching replaces the remote path: instead of a remote
// access message, it creates a local shadow page with every block INVALID;
// the retried access then takes a block status fault and the block is
// fetched and cached in local DRAM (Section 4.3).
const ltlbHandlerSrcCaching = `
loop:
    mov i1, evq
    mov i2, evq
    mov i3, evq
    mov i4, evq
    gprobe i5, i2
    mov i6, node
    eq  i7, i5, i6
    brf i7, remote
    shr i8, i2, #9
    and i9, i8, #LPT_MASK
    shl i9, i9, #2
    add i9, i9, #LPT_BASE
    ldp i10, [i9]
    shl i11, i8, #1
    or  i11, i11, #1
    eq  i12, i10, i11
    brf i12, alloc
    ldp i11, [i9+1]
    ldp i12, [i9+2]
    ldp i13, [i9+3]
    tlbw i10
    mretry i1
    br loop
alloc:
    movi i5, #ALLOC_CTR
    ldp i6, [i5]
    add i7, i6, #1
    stp [i5], i7
    shl i10, i8, #1
    or  i10, i10, #1
    mov i11, i6
    movi i12, #STATUS_RW
    mov i13, i12
    stp [i9], i10
    stp [i9+1], i11
    stp [i9+2], i12
    stp [i9+3], i13
    tlbw i10
    mretry i1
    br loop
remote:
    shr i8, i2, #9          ; create an all-INVALID shadow page
    and i9, i8, #LPT_MASK
    shl i9, i9, #2
    add i9, i9, #LPT_BASE
    ldp i10, [i9]           ; if the shadow page already exists, reuse it
    shl i11, i8, #1
    or  i11, i11, #1
    eq  i12, i10, i11
    brt i12, rhave
    movi i5, #ALLOC_CTR
    ldp i6, [i5]
    add i7, i6, #1
    stp [i5], i7
    mov i10, i11
    mov i11, i6
    movi i12, #0
    movi i13, #0
    stp [i9], i10
    stp [i9+1], i11
    stp [i9+2], i12
    stp [i9+3], i13
    tlbw i10
    mretry i1
    br loop
rhave:
    ldp i11, [i9+1]
    ldp i12, [i9+2]
    ldp i13, [i9+3]
    tlbw i10
    mretry i1
    br loop
`

// excHandlerSrc runs in the exception V-Thread (Section 3.3: synchronous
// exceptions such as protection violations "are handled synchronously by
// the local H-Thread of the exception V-Thread"). It drains the exception
// queue's 3-word records (vthread, cluster, pc) into a log in physical
// memory: word 0 is the entry count, followed by 3-word entries.
const excHandlerSrc = `
xloop:
    mov i1, evq             ; faulting vthread
    mov i2, evq             ; faulting cluster
    mov i3, evq             ; faulting pc
    movi i4, #EXLOG
    ldp i5, [i4]            ; entry count
    mul i6, i5, #3
    add i6, i6, i4
    stp [i6+1], i1
    stp [i6+2], i2
    stp [i6+3], i3
    add i5, i5, #1
    stp [i4], i5
    br xloop
`

// faultHandlerSrc runs on cluster 0 and handles memory synchronization and
// block status faults (Section 3.3's cluster assignment).
const faultHandlerSrc = `
floop:
    mov i1, evq
    mov i2, evq
    mov i3, evq
    mov i4, evq
    and i5, i1, #15
    eq  i6, i5, #3          ; events.SyncFault
    brt i6, syncf
    gprobe i5, i2           ; block status fault
    mov i6, node
    eq  i7, i5, i6
    brt i7, floop           ; home-owned block: protection error, drop
    mov i5, node            ; fetch the block from its home node
    movi i6, #DIP_BFETCH
    send i2, i6, i1, #5     ; body = [rec0..rec3, srcnode]
    br floop
syncf:
    movi i8, #12            ; back off before retrying so producers can run
sfdelay:
    sub i8, i8, #1
    brt i8, sfdelay
    mretry i1               ; synchronizing fault: retry until satisfied
    br floop
`
