// Package asm implements an assembler for MAP assembly, the textual form of
// the instruction set defined in internal/isa. The software runtime's event
// and message handlers (internal/rt), the example applications, and the
// workload generators are all written in this language.
//
// Syntax overview (one 3-wide instruction per line, slots separated by '|'):
//
//	; comment                         .equ LPT_BASE 4096
//	loop:
//	    add i1, i2, i3 | ld i4, [i5+2] | fadd f1, f2, f3
//	    movi i6, #LPT_BASE
//	    eq gcc1, i1, i2               ; compare broadcast to a global CC
//	    brt gcc1, loop
//	    ldsy.fe i1, [i2]              ; sync load: pre=full, post=empty
//	    send i1, i2, i8, #3           ; SEND addr, dip, body-start, length
//	    st [i5], i6
//	    empty i3
//	    halt
//
// Registers: i0..i15, f0..f15, gcc0..gcc7, and the register-mapped specials
// net, evq, node, thr, cyc. A destination of the form @2.i5 writes cluster
// 2's register i5 through the C-Switch (cross-cluster transfer, Section 3.1).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error describes an assembly failure with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	name   string
	equs   map[string]int64
	labels map[string]int
	// fixups records branch ops whose label operand needs resolution.
	fixups []fixup
	insts  []isa.Inst
}

type fixup struct {
	op   *isa.Op
	line int
}

// Assemble parses MAP assembly source into a program. name is used in
// diagnostics and carried on the Program.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		name:   name,
		equs:   make(map[string]int64),
		labels: make(map[string]int),
	}
	for i, raw := range strings.Split(src, "\n") {
		if err := a.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	for _, f := range a.fixups {
		idx, ok := a.labels[f.op.Label]
		if !ok {
			return nil, &Error{f.line, fmt.Sprintf("undefined label %q", f.op.Label)}
		}
		f.op.Imm = int64(idx)
	}
	return &isa.Program{Name: name, Insts: a.insts, Labels: a.labels}, nil
}

// MustAssemble is Assemble for statically known-good sources (the runtime's
// handlers); it panics on error.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) line(n int, raw string) error {
	s := raw
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, ".equ") {
		fields := strings.Fields(s)
		if len(fields) != 3 {
			return &Error{n, ".equ wants: .equ NAME value"}
		}
		v, err := a.parseInt(fields[2])
		if err != nil {
			return &Error{n, fmt.Sprintf("bad .equ value %q: %v", fields[2], err)}
		}
		a.equs[fields[1]] = v
		return nil
	}
	// Leading labels, possibly several on one line.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			break
		}
		if _, dup := a.labels[label]; dup {
			return &Error{n, fmt.Sprintf("duplicate label %q", label)}
		}
		a.labels[label] = len(a.insts)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	inst := isa.Inst{Line: n}
	for _, slot := range strings.Split(s, "|") {
		op, err := a.parseOp(n, strings.TrimSpace(slot))
		if err != nil {
			return err
		}
		if op == nil {
			continue
		}
		if err := place(&inst, op); err != nil {
			return &Error{n, err.Error()}
		}
	}
	a.insts = append(a.insts, inst)
	return nil
}

// place assigns an op to an instruction slot. Memory ops go to the memory
// unit, FP ops to the FP unit; plain integer ops prefer the integer unit and
// fall back to the memory unit, which is also an integer ALU (Section 2).
func place(inst *isa.Inst, op *isa.Op) error {
	switch op.Code.UnitOf() {
	case isa.UnitMem:
		if inst.MOp != nil {
			return fmt.Errorf("memory unit slot already occupied")
		}
		inst.MOp = op
	case isa.UnitFP:
		if inst.FOp != nil {
			return fmt.Errorf("FP unit slot already occupied")
		}
		inst.FOp = op
	default:
		switch {
		case inst.IOp == nil:
			inst.IOp = op
		case inst.MOp == nil:
			inst.MOp = op
		default:
			return fmt.Errorf("no free integer slot")
		}
	}
	return nil
}

var mnemonics = map[string]isa.Opcode{
	"nop": isa.NOP, "add": isa.ADD, "sub": isa.SUB, "mul": isa.MUL,
	"div": isa.DIV, "mod": isa.MOD, "and": isa.AND, "or": isa.OR,
	"xor": isa.XOR, "shl": isa.SHL, "shr": isa.SHR, "sra": isa.SRA,
	"eq": isa.EQ, "ne": isa.NE, "lt": isa.LT, "le": isa.LE,
	"gt": isa.GT, "ge": isa.GE, "mov": isa.MOV, "movi": isa.MOVI,
	"empty": isa.EMPTY, "br": isa.BR, "brt": isa.BRT, "brf": isa.BRF,
	"jmpr": isa.JMPR, "halt": isa.HALT,
	"ld": isa.LD, "st": isa.ST, "ldsy": isa.LDSY, "stsy": isa.STSY,
	"ldp": isa.LDP, "stp": isa.STP, "lea": isa.LEA, "setptr": isa.SETPTR,
	"send": isa.SEND, "sendn": isa.SENDN, "gprobe": isa.GPROBE,
	"tlbw": isa.TLBW, "tlbinv": isa.TLBINV, "bsw": isa.BSW, "bsr": isa.BSR,
	"mretry": isa.MRETRY, "rstw": isa.RSTW,
	"dirlog": isa.DIRLOG, "dircnt": isa.DIRCNT,
	"fadd": isa.FADD, "fsub": isa.FSUB, "fmul": isa.FMUL, "fdiv": isa.FDIV,
	"fneg": isa.FNEG, "fmov": isa.FMOV, "feq": isa.FEQ, "flt": isa.FLT,
	"fle": isa.FLE, "itof": isa.ITOF, "ftoi": isa.FTOI,
}

func (a *assembler) parseOp(n int, s string) (*isa.Op, error) {
	if s == "" {
		return nil, nil
	}
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	var pre, post isa.SyncCond
	if i := strings.Index(mn, "."); i >= 0 {
		suffix := mn[i+1:]
		mn = mn[:i]
		if len(suffix) != 2 {
			return nil, &Error{n, fmt.Sprintf("bad sync suffix %q (want e.g. .fe)", suffix)}
		}
		var err error
		if pre, err = syncCond(suffix[0]); err != nil {
			return nil, &Error{n, err.Error()}
		}
		if post, err = syncCond(suffix[1]); err != nil {
			return nil, &Error{n, err.Error()}
		}
	}
	code, ok := mnemonics[strings.ToLower(mn)]
	if !ok {
		return nil, &Error{n, fmt.Sprintf("unknown mnemonic %q", mn)}
	}
	op := &isa.Op{Code: code, Pre: pre, Post: post}
	args := splitArgs(rest)
	if err := a.operands(n, op, args); err != nil {
		return nil, err
	}
	return op, nil
}

func syncCond(c byte) (isa.SyncCond, error) {
	switch c {
	case 'f':
		return isa.SyncFull, nil
	case 'e':
		return isa.SyncEmpty, nil
	case 'a':
		return isa.SyncAny, nil
	}
	return 0, fmt.Errorf("bad sync condition %q (want f, e or a)", string(c))
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// operands parses the operand list according to the opcode's shape.
func (a *assembler) operands(n int, op *isa.Op, args []string) error {
	need := func(k int) error {
		if len(args) != k {
			return &Error{n, fmt.Sprintf("%s wants %d operands, got %d", op.Code, k, len(args))}
		}
		return nil
	}
	switch op.Code {
	case isa.NOP, isa.HALT:
		return need(0)

	case isa.MOVI:
		if err := need(2); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		return a.imm(n, op, args[1])

	case isa.MOV:
		if err := need(2); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		if strings.HasPrefix(args[1], "#") {
			op.Code = isa.MOVI
			return a.imm(n, op, args[1])
		}
		return a.src(n, &op.Src1, args[1])

	case isa.EMPTY:
		if err := need(1); err != nil {
			return err
		}
		return a.dst(n, op, args[0])

	case isa.JMPR:
		if err := need(1); err != nil {
			return err
		}
		return a.src(n, &op.Src1, args[0])

	case isa.BR:
		if err := need(1); err != nil {
			return err
		}
		return a.branchTarget(n, op, args[0])

	case isa.BRT, isa.BRF:
		if err := need(2); err != nil {
			return err
		}
		if err := a.src(n, &op.Src1, args[0]); err != nil {
			return err
		}
		return a.branchTarget(n, op, args[1])

	case isa.LD, isa.LDSY, isa.LDP, isa.BSR, isa.DIRCNT:
		if err := need(2); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		return a.memOperand(n, op, args[1])

	case isa.ST, isa.STSY, isa.STP:
		if err := need(2); err != nil {
			return err
		}
		if err := a.memOperand(n, op, args[0]); err != nil {
			return err
		}
		return a.src(n, &op.Src2, args[1])

	case isa.LEA:
		if err := need(3); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		if err := a.src(n, &op.Src1, args[1]); err != nil {
			return err
		}
		return a.srcOrImm(n, op, args[2])

	case isa.SETPTR:
		if err := need(3); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		if err := a.src(n, &op.Src1, args[1]); err != nil {
			return err
		}
		return a.imm(n, op, args[2])

	case isa.SEND, isa.SENDN:
		// send addr, dip, body-start, #len
		if err := need(4); err != nil {
			return err
		}
		if err := a.src(n, &op.Src1, args[0]); err != nil {
			return err
		}
		if err := a.src(n, &op.Src2, args[1]); err != nil {
			return err
		}
		if err := a.dst(n, op, args[2]); err != nil { // body start register
			return err
		}
		if op.Code == isa.SENDN {
			op.Pri = 1
		}
		return a.imm(n, op, args[3])

	case isa.GPROBE:
		if err := need(2); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		return a.src(n, &op.Src1, args[1])

	case isa.TLBW, isa.TLBINV, isa.MRETRY:
		if err := need(1); err != nil {
			return err
		}
		return a.src(n, &op.Src1, args[0])

	case isa.BSW, isa.RSTW, isa.DIRLOG:
		if err := need(2); err != nil {
			return err
		}
		if err := a.src(n, &op.Src1, args[0]); err != nil {
			return err
		}
		return a.src(n, &op.Src2, args[1])

	case isa.FNEG, isa.FMOV, isa.ITOF, isa.FTOI:
		if err := need(2); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		return a.src(n, &op.Src1, args[1])

	default: // three-operand ALU shapes: dst, src1, src2|#imm
		if err := need(3); err != nil {
			return err
		}
		if err := a.dst(n, op, args[0]); err != nil {
			return err
		}
		if err := a.src(n, &op.Src1, args[1]); err != nil {
			return err
		}
		return a.srcOrImm(n, op, args[2])
	}
}

func (a *assembler) dst(n int, op *isa.Op, s string) error {
	r, err := a.reg(s)
	if err != nil {
		return &Error{n, err.Error()}
	}
	op.Dst = r
	return nil
}

func (a *assembler) src(n int, dst *isa.Reg, s string) error {
	r, err := a.reg(s)
	if err != nil {
		return &Error{n, err.Error()}
	}
	*dst = r
	return nil
}

func (a *assembler) srcOrImm(n int, op *isa.Op, s string) error {
	if strings.HasPrefix(s, "#") {
		return a.imm(n, op, s)
	}
	return a.src(n, &op.Src2, s)
}

func (a *assembler) imm(n int, op *isa.Op, s string) error {
	if !strings.HasPrefix(s, "#") {
		return &Error{n, fmt.Sprintf("expected immediate, got %q", s)}
	}
	v, err := a.parseInt(s[1:])
	if err != nil {
		return &Error{n, fmt.Sprintf("bad immediate %q: %v", s, err)}
	}
	op.Imm = v
	op.HasImm = true
	return nil
}

func (a *assembler) branchTarget(n int, op *isa.Op, s string) error {
	if strings.HasPrefix(s, "#") {
		return a.imm(n, op, s)
	}
	if !isIdent(s) {
		return &Error{n, fmt.Sprintf("bad branch target %q", s)}
	}
	op.Label = s
	op.HasImm = true
	a.fixups = append(a.fixups, fixup{op, n})
	return nil
}

// memOperand parses [reg], [reg+imm] or [reg-imm].
func (a *assembler) memOperand(n int, op *isa.Op, s string) error {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return &Error{n, fmt.Sprintf("bad memory operand %q (want [reg] or [reg+imm])", s)}
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, offPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, offPart = inner[:i], inner[i+1:]
	}
	r, err := a.reg(strings.TrimSpace(regPart))
	if err != nil {
		return &Error{n, err.Error()}
	}
	op.Src1 = r
	if offPart != "" {
		v, err := a.parseInt(strings.TrimSpace(offPart))
		if err != nil {
			return &Error{n, fmt.Sprintf("bad offset in %q: %v", s, err)}
		}
		op.Imm = sign * v
	}
	return nil
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	cluster := isa.ClusterSelf
	if strings.HasPrefix(s, "@") {
		dot := strings.Index(s, ".")
		if dot < 0 {
			return isa.Reg{}, fmt.Errorf("bad cross-cluster register %q (want @N.reg)", s)
		}
		c, err := strconv.Atoi(s[1:dot])
		if err != nil || c < 0 || c >= isa.NumClusters {
			return isa.Reg{}, fmt.Errorf("bad cluster in %q", s)
		}
		cluster = int8(c)
		s = s[dot+1:]
	}
	lower := strings.ToLower(s)
	switch lower {
	case "net":
		return isa.Reg{Class: isa.RSpec, Index: isa.SpecNet, Cluster: cluster}, nil
	case "evq":
		return isa.Reg{Class: isa.RSpec, Index: isa.SpecEvq, Cluster: cluster}, nil
	case "node":
		return isa.Reg{Class: isa.RSpec, Index: isa.SpecNode, Cluster: cluster}, nil
	case "thr":
		return isa.Reg{Class: isa.RSpec, Index: isa.SpecThr, Cluster: cluster}, nil
	case "cyc":
		return isa.Reg{Class: isa.RSpec, Index: isa.SpecCyc, Cluster: cluster}, nil
	}
	var class isa.RegClass
	var limit int
	var numPart string
	switch {
	case strings.HasPrefix(lower, "gcc"):
		class, limit, numPart = isa.RGCC, isa.NumGCCRegs, lower[3:]
	case strings.HasPrefix(lower, "i"):
		class, limit, numPart = isa.RInt, isa.NumIntRegs, lower[1:]
	case strings.HasPrefix(lower, "f"):
		class, limit, numPart = isa.RFP, isa.NumFPRegs, lower[1:]
	default:
		return isa.Reg{}, fmt.Errorf("bad register %q", s)
	}
	idx, err := strconv.Atoi(numPart)
	if err != nil || idx < 0 || idx >= limit {
		return isa.Reg{}, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg{Class: class, Index: uint8(idx), Cluster: cluster}, nil
}

func (a *assembler) parseInt(s string) (int64, error) {
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	if isIdent(s) {
		return 0, fmt.Errorf("undefined constant %q", s)
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Accept full 64-bit patterns like 0xAAAAAAAAAAAAAAAA.
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
	}
	return v, err
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
